// Set reconciliation over a real transport: two processes reconcile
// across a UNIX socketpair through the framed session layer.
//
// Before the session layer existed this example hand-rolled its own
// length-prefixed framing around the PbsAlice/PbsBob endpoints. Now both
// processes just hand their set and a ByteTransport to the session driver
// (core/wire_session.h): the child serves as the responder, the parent
// initiates with the scheme named on the command line (default pbs, with
// strong verification on), and the driver does the handshake, the ToW
// estimate exchange, the per-scheme rounds, and the byte accounting.
//
// Usage: example_socket_sync [scheme]     (any name from `--list-schemes`)

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <vector>

#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/sim/workload.h"

int main(int argc, char** argv) {
  const char* scheme = argc > 1 ? argv[1] : "pbs";
  if (!pbs::SchemeRegistry::Instance().Contains(scheme)) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme);
    return 2;
  }

  // A shared corpus with 600 records missing on Alice's side and 200
  // records only she has.
  pbs::SetPair pair = pbs::GenerateTwoSidedPair(80000, 200, 600, 32, 41);
  std::printf("Alice: %zu elements, Bob: %zu elements, true diff: %zu\n",
              pair.a.size(), pair.b.size(), pair.truth_diff.size());

  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    std::perror("socketpair");
    return 1;
  }
  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    close(fds[0]);
    auto transport = pbs::MakeFdTransport(fds[1]);
    const pbs::SessionResult r = pbs::RunResponderSession(*transport,
                                                          pair.b);
    _exit(r.ok ? 0 : 1);
  }
  close(fds[1]);

  auto transport = pbs::MakeFdTransport(fds[0]);
  pbs::SessionConfig config;
  config.scheme_name = scheme;
  config.options.pbs.max_rounds = 8;
  config.options.pbs.strong_verification = true;
  const pbs::SessionResult result =
      pbs::RunInitiatorSession(*transport, config, pair.a);
  transport.reset();  // EOF to the child if the session aborted early.
  int status = 0;
  waitpid(child, &status, 0);

  if (!result.ok) {
    std::fprintf(stderr, "session failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("scheme=%s d-hat=%.1f -> %s in %d rounds; params(%s)\n",
              result.scheme.c_str(), result.d_hat,
              result.outcome.success ? "reconciled" : "FAILED",
              result.outcome.rounds, result.outcome.params_summary.c_str());
  std::printf("recovered %zu differences: %zu payload bytes (+%zu estimator)"
              " carried in %zu wire bytes / %d frames\n",
              result.outcome.difference.size(), result.outcome.data_bytes,
              result.outcome.estimator_bytes, result.outcome.wire_bytes,
              result.outcome.wire_frames);
  const bool correct =
      result.outcome.success &&
      result.outcome.difference.size() == pair.truth_diff.size();
  std::printf("%s\n", correct ? "OK" : "MISMATCH");
  return correct ? 0 : 1;
}
