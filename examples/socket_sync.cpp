// PBS over a real transport: two processes reconcile across a UNIX
// socketpair.
//
// Demonstrates that the PbsAlice/PbsBob endpoints are transport-agnostic:
// the parent process (Alice) and a forked child (Bob) exchange
// length-prefixed frames over a socket, run the estimate phase plus as many
// rounds as needed, and the strong-verification digest (Section 2.2.3)
// certifies the result end to end.

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <vector>

#include "pbs/core/pbs_endpoints.h"
#include "pbs/sim/workload.h"

namespace {

// Length-prefixed framing over a stream socket.
bool SendFrame(int fd, const std::vector<uint8_t>& payload) {
  uint32_t len = static_cast<uint32_t>(payload.size());
  if (write(fd, &len, sizeof(len)) != sizeof(len)) return false;
  size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = write(fd, payload.data() + sent, payload.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

bool RecvFrame(int fd, std::vector<uint8_t>* payload) {
  uint32_t len = 0;
  size_t got = 0;
  while (got < sizeof(len)) {
    const ssize_t n = read(fd, reinterpret_cast<char*>(&len) + got,
                           sizeof(len) - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  payload->assign(len, 0);
  got = 0;
  while (got < len) {
    const ssize_t n = read(fd, payload->data() + got, len - got);
    if (n <= 0) return false;
    got += static_cast<size_t>(n);
  }
  return true;
}

constexpr uint64_t kSessionSeed = 0x50C4E7;

int RunBob(int fd, std::vector<uint64_t> elements) {
  pbs::PbsConfig config;
  config.max_rounds = 8;
  pbs::PbsBob bob(std::move(elements), config, kSessionSeed);

  std::vector<uint8_t> frame;
  if (!RecvFrame(fd, &frame)) return 1;
  if (!SendFrame(fd, bob.HandleEstimateRequest(frame))) return 1;

  // Serve rounds until Alice closes the connection, then ship the strong
  // digest when she asks with an empty frame.
  while (RecvFrame(fd, &frame)) {
    if (frame.empty()) {
      if (!SendFrame(fd, bob.MakeStrongDigest())) return 1;
      break;
    }
    if (!SendFrame(fd, bob.HandleRoundRequest(frame))) return 1;
  }
  return 0;
}

}  // namespace

int main() {
  // A shared corpus with 600 records missing on Alice's side and 200
  // records only she has.
  pbs::SetPair pair = pbs::GenerateTwoSidedPair(80000, 200, 600, 32, 41);
  std::printf("Alice: %zu elements, Bob: %zu elements, true diff: %zu\n",
              pair.a.size(), pair.b.size(), pair.truth_diff.size());

  int fds[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    std::perror("socketpair");
    return 1;
  }
  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    close(fds[0]);
    const int rc = RunBob(fds[1], std::move(pair.b));
    close(fds[1]);
    _exit(rc);
  }
  close(fds[1]);
  const int fd = fds[0];

  pbs::PbsConfig config;
  config.max_rounds = 8;
  pbs::PbsAlice alice(pair.a, config, kSessionSeed);

  size_t wire_bytes = 0;
  std::vector<uint8_t> frame = alice.MakeEstimateRequest();
  wire_bytes += frame.size();
  SendFrame(fd, frame);
  RecvFrame(fd, &frame);
  wire_bytes += frame.size();
  alice.HandleEstimateReply(frame);
  std::printf("estimated difference (gamma-inflated): %d -> plan g=%d n=%d "
              "t=%d\n",
              alice.plan().d_used, alice.plan().params.g,
              alice.plan().params.n, alice.plan().params.t);

  bool finished = false;
  while (!finished && alice.round() < config.max_rounds) {
    frame = alice.MakeRoundRequest();
    wire_bytes += frame.size();
    if (!SendFrame(fd, frame) || !RecvFrame(fd, &frame)) break;
    wire_bytes += frame.size();
    finished = alice.HandleRoundReply(frame);
    std::printf("round %d done (%s)\n", alice.round(),
                finished ? "settled" : "continuing");
  }

  bool verified = false;
  if (finished) {
    SendFrame(fd, {});  // Ask for the strong digest.
    if (RecvFrame(fd, &frame)) {
      wire_bytes += frame.size();
      verified = alice.VerifyStrongDigest(frame);
    }
  }
  close(fd);
  int status = 0;
  waitpid(child, &status, 0);

  std::printf("reconciled %zu differences over %zu wire bytes; strong "
              "verification: %s\n",
              alice.Difference().size(), wire_bytes,
              verified ? "PASS" : "FAIL");
  const bool correct =
      finished && verified &&
      alice.Difference().size() == pair.truth_diff.size();
  std::printf("%s\n", correct ? "OK" : "MISMATCH");
  return correct ? 0 : 1;
}
