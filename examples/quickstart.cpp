// Quickstart: reconcile two small sets through the SetReconciler
// interface in a dozen lines.
//
// Alice holds set A, Bob holds set B (32-bit signatures, 0 excluded).
// Every scheme in the repo -- PBS and the Section-7/8 baselines -- is
// constructible by name from the SchemeRegistry and speaks the same
// Reconcile() call, so the same code runs the full PBS protocol or any
// baseline, and new schemes plug in without touching callers.

#include <cstdio>
#include <vector>

#include "pbs/core/set_reconciler.h"

int main() {
  // Two overlapping sets; their symmetric difference is {5, 6, 1001, 1002}.
  std::vector<uint64_t> alice_set = {1, 2, 3, 4, 5, 6, 42, 777};
  std::vector<uint64_t> bob_set = {1, 2, 3, 4, 42, 777, 1001, 1002};

  pbs::SchemeOptions options;  // delta=5, r=3, p0=0.99 -- paper defaults.
  auto& registry = pbs::SchemeRegistry::Instance();

  // The flagship scheme, by name. In this toy setting both sides know the
  // exact difference cardinality, so we pass d_hat = 4 (a real deployment
  // would run the ToW estimator first; see examples/kv_replica_sync.cpp).
  auto reconciler = registry.Create("pbs", options);
  pbs::ReconcileOutcome result =
      reconciler->Reconcile(alice_set, bob_set, /*d_hat=*/4.0,
                            /*seed=*/2026);

  std::printf("%s: success=%s after %d round(s), plan %s\n",
              reconciler->display_name(), result.success ? "yes" : "no",
              result.rounds, result.params_summary.c_str());
  std::printf("difference (%zu elements):", result.difference.size());
  for (uint64_t e : result.difference) std::printf(" %llu",
                                                   (unsigned long long)e);
  std::printf("\nprotocol bytes: %zu\n\n", result.data_bytes);

  // Alice applies the difference to obtain the union A u B.
  std::vector<uint64_t> reconciled = alice_set;
  for (uint64_t e : result.difference) {
    bool in_a = false;
    for (uint64_t a : alice_set) in_a = in_a || a == e;
    if (!in_a) reconciled.push_back(e);
  }
  std::printf("Alice's reconciled set now has %zu elements (A u B)\n\n",
              reconciled.size());

  // The same call runs every registered scheme -- the point of the
  // interface. Compare their wire costs on this toy instance:
  std::printf("%-14s %-14s %8s %7s  %s\n", "scheme", "display", "bytes",
              "rounds", "params");
  for (const std::string& name : registry.Names()) {
    auto scheme = registry.Create(name, options);
    const auto r = scheme->Reconcile(alice_set, bob_set, 4.0, 2026);
    std::printf("%-14s %-14s %8zu %7d  %s\n", name.c_str(),
                scheme->display_name(), r.data_bytes, r.rounds,
                r.params_summary.c_str());
  }
  return result.success ? 0 : 1;
}
