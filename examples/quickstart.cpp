// Quickstart: reconcile two small sets with PBS in a dozen lines.
//
// Alice holds set A, Bob holds set B (32-bit signatures, 0 excluded).
// One PbsSession::Reconcile call runs the full protocol -- ToW estimation,
// parameter planning, sketch exchange, multi-round repair -- over an
// in-memory channel, and returns the symmetric difference plus the exact
// number of bytes a real deployment would have sent.

#include <cstdio>
#include <vector>

#include "pbs/core/reconciler.h"

int main() {
  // Two overlapping sets; their symmetric difference is {5, 6, 1001, 1002}.
  std::vector<uint64_t> alice_set = {1, 2, 3, 4, 5, 6, 42, 777};
  std::vector<uint64_t> bob_set = {1, 2, 3, 4, 42, 777, 1001, 1002};

  pbs::PbsConfig config;          // delta=5, r=3, p0=0.99 -- paper defaults.
  pbs::Transcript transcript;     // Records every message and its size.

  pbs::PbsResult result = pbs::PbsSession::Reconcile(
      alice_set, bob_set, config, /*seed=*/2026, /*d_used=*/-1, &transcript);

  std::printf("success: %s after %d round(s)\n",
              result.success ? "yes" : "no", result.rounds);
  std::printf("difference (%zu elements):", result.difference.size());
  for (uint64_t e : result.difference) std::printf(" %llu",
                                                   (unsigned long long)e);
  std::printf("\n");
  std::printf("protocol bytes: %zu (+%zu for the estimator)\n",
              result.data_bytes, result.estimator_bytes);
  for (const auto& entry : transcript.entries()) {
    std::printf("  round %d %s %-17s %zu bytes\n", entry.round,
                entry.direction == pbs::Direction::kAliceToBob ? "A->B"
                                                               : "B->A",
                entry.label.c_str(), entry.bytes);
  }

  // Alice applies the difference to obtain the union A u B.
  std::vector<uint64_t> reconciled = alice_set;
  for (uint64_t e : result.difference) {
    bool in_a = false;
    for (uint64_t a : alice_set) in_a = in_a || a == e;
    if (!in_a) reconciled.push_back(e);
  }
  std::printf("Alice's reconciled set now has %zu elements (A u B)\n",
              reconciled.size());
  return result.success ? 0 : 1;
}
