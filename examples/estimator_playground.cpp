// Estimator playground: how the Section-6 machinery behaves.
//
// Shows (1) ToW estimates converging as the number of sketches ell grows,
// (2) the gamma = 1.38 safety inflation in action, and (3) a side-by-side
// with the Strata and min-wise estimators on the same instance.

#include <cmath>
#include <cstdio>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/estimator/minwise.h"
#include "pbs/estimator/strata.h"
#include "pbs/estimator/tow.h"
#include "pbs/sim/workload.h"

int main() {
  constexpr size_t kSetSize = 50000;
  constexpr size_t kD = 750;
  pbs::SetPair pair = pbs::GenerateSetPair(kSetSize, kD, 32, 99);
  std::printf("|A| = %zu, |B| = %zu, true d = %zu\n\n", pair.a.size(),
              pair.b.size(), kD);

  std::printf("ToW estimate vs number of sketches (one draw each):\n");
  std::printf("%6s  %10s  %10s  %8s\n", "ell", "d-hat", "1.38*d-hat",
              "bytes");
  for (int ell : {8, 32, 128, 512}) {
    pbs::TowSketch a(ell, 7), b(ell, 7);
    a.AddAll(pair.a);
    b.AddAll(pair.b);
    const double d_hat = pbs::TowSketch::Estimate(a, b);
    std::printf("%6d  %10.1f  %10.1f  %8d\n", ell, d_hat,
                pbs::kTowGamma * d_hat,
                pbs::TowSketch::BitSize(ell, kSetSize) / 8);
  }

  std::printf("\nHow often does gamma*d-hat cover the true d? (ell = 128, "
              "200 draws)\n");
  pbs::SplitMix64 seeds(3);
  int covered = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const double d_hat =
        pbs::TowEstimateFromDifference(pair.truth_diff, 128, seeds.Next());
    if (kD <= pbs::kTowGamma * d_hat) ++covered;
  }
  std::printf("covered %d/200 draws (target: >= 99%%)\n", covered);

  std::printf("\nOther estimators on the same instance:\n");
  {
    pbs::StrataEstimator sa(pbs::kStrataDefaultLevels,
                            pbs::kStrataDefaultCells, 5, 32);
    pbs::StrataEstimator sb(pbs::kStrataDefaultLevels,
                            pbs::kStrataDefaultCells, 5, 32);
    sa.AddAll(pair.a);
    sb.AddAll(pair.b);
    std::printf("  Strata:   d-hat = %8.1f  (%zu bytes)\n",
                pbs::StrataEstimator::Estimate(sa, sb), sa.bit_size() / 8);
  }
  {
    pbs::MinwiseEstimator ma(512, 5), mb(512, 5);
    ma.AddAll(pair.a);
    mb.AddAll(pair.b);
    std::printf("  Min-wise: d-hat = %8.1f  (%zu bytes)\n",
                pbs::MinwiseEstimator::Estimate(ma, pair.a.size(), mb,
                                                pair.b.size()),
                pbs::MinwiseEstimator::BitSize(512, 32) / 8);
  }
  std::printf("  ToW(128): see above (336 bytes at |S| = 10^6) -- the most "
              "space-efficient, as Appendix B reports.\n");
  return 0;
}
