// Anti-entropy repair between two key-value replicas (the Cassandra /
// Spanner-style application from the paper's introduction).
//
// Each replica stores versioned key-value records. A record is summarized
// by a 32-bit signature hash(key, version); reconciling the signature sets
// with PBS identifies exactly the records that are missing or stale on
// either side, after which only those records travel.

#include <cstdio>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/set_reconciler.h"
#include "pbs/estimator/tow.h"
#include "pbs/hash/xxhash64.h"

namespace {

struct Record {
  std::string key;
  uint64_t version = 0;
  std::string value;
};

class Replica {
 public:
  void Put(const std::string& key, uint64_t version,
           const std::string& value) {
    auto it = store_.find(key);
    if (it == store_.end() || it->second.version < version) {
      store_[key] = Record{key, version, value};
    }
  }

  /// Signature of one (key, version) pair; the reconciliation universe.
  static uint64_t Signature(const std::string& key, uint64_t version) {
    uint64_t sig =
        pbs::XxHash64(key.data(), key.size(), version ^ 0x5167) & 0xFFFFFFFF;
    return sig == 0 ? 1 : sig;
  }

  std::vector<uint64_t> Signatures() const {
    std::vector<uint64_t> sigs;
    sigs.reserve(store_.size());
    for (const auto& [key, record] : store_) {
      sigs.push_back(Signature(key, record.version));
    }
    return sigs;
  }

  /// Index from signature to record, to answer fetch requests.
  const Record* FindBySignature(uint64_t sig) const {
    for (const auto& [key, record] : store_) {
      if (Signature(key, record.version) == sig) return &record;
    }
    return nullptr;
  }

  size_t size() const { return store_.size(); }
  const std::unordered_map<std::string, Record>& store() const {
    return store_;
  }

 private:
  std::unordered_map<std::string, Record> store_;
};

}  // namespace

int main() {
  pbs::Xoshiro256 rng(7);
  Replica primary, secondary;

  // Shared history: both replicas converged on 30000 records.
  for (int i = 0; i < 30000; ++i) {
    const std::string key = "user:" + std::to_string(i);
    const std::string value = "profile-" + std::to_string(rng.Next() % 997);
    primary.Put(key, 1, value);
    secondary.Put(key, 1, value);
  }
  // Divergence: fresh writes on the primary (new keys + updated versions)
  // and a few writes that only reached the secondary.
  for (int i = 0; i < 120; ++i) {
    primary.Put("user:" + std::to_string(30000 + i), 1, "new");
  }
  for (int i = 0; i < 80; ++i) {
    primary.Put("user:" + std::to_string(i * 7), 2, "updated");
  }
  for (int i = 0; i < 40; ++i) {
    secondary.Put("session:" + std::to_string(i), 1, "secondary-only");
  }

  std::printf("primary: %zu records, secondary: %zu records\n",
              primary.size(), secondary.size());

  // Reconcile the signature sets (secondary plays Alice: it learns the
  // difference and drives the repair). Any registered scheme would do --
  // swap the name to "graphene" or "ddigest" to compare.
  const std::vector<uint64_t> secondary_sigs = secondary.Signatures();
  const std::vector<uint64_t> primary_sigs = primary.Signatures();

  // Estimate exchange: both sides build ToW sketches under a shared seed
  // and the estimate is computed from the counter differences (Section 6).
  const pbs::TowExchange estimate = pbs::TowEstimateExchange(
      secondary_sigs, primary_sigs, pbs::kTowDefaultSketches, 0xE57);

  pbs::SchemeOptions options;
  options.pbs.max_rounds = 5;
  auto reconciler =
      pbs::SchemeRegistry::Instance().Create("pbs", options);
  auto result =
      reconciler->Reconcile(secondary_sigs, primary_sigs,
                            estimate.d_hat, 0xCA55);
  std::printf("%s: success=%s, %zu differing signatures, %zu bytes "
              "(+%zu estimator), %d rounds\n",
              reconciler->display_name(), result.success ? "yes" : "no",
              result.difference.size(), result.data_bytes, estimate.bytes,
              result.rounds);
  if (!result.success) return 1;

  // Repair: for each differing signature, whichever side has the record
  // pushes it; versioned Put keeps the newest copy.
  size_t repair_bytes = 0;
  int to_secondary = 0, to_primary = 0;
  for (uint64_t sig : result.difference) {
    if (const Record* r = primary.FindBySignature(sig)) {
      secondary.Put(r->key, r->version, r->value);
      repair_bytes += r->key.size() + r->value.size() + 8;
      ++to_secondary;
    } else if (const Record* r2 = secondary.FindBySignature(sig)) {
      primary.Put(r2->key, r2->version, r2->value);
      repair_bytes += r2->key.size() + r2->value.size() + 8;
      ++to_primary;
    }
  }
  std::printf("repair: %d records -> secondary, %d records -> primary, "
              "%zu payload bytes\n",
              to_secondary, to_primary, repair_bytes);

  // Verify convergence key by key.
  bool converged = primary.size() == secondary.size();
  for (const auto& [key, record] : primary.store()) {
    auto it = secondary.store().find(key);
    converged = converged && it != secondary.store().end() &&
                it->second.version == record.version &&
                it->second.value == record.value;
    if (!converged) break;
  }
  std::printf("replicas converged: %s (%zu records each)\n",
              converged ? "yes" : "NO", primary.size());

  const size_t naive = primary.size() * 4;
  std::printf("bandwidth: %zu B of reconciliation vs %zu B to ship every "
              "signature naively (%.0fx saving)\n",
              result.data_bytes + estimate.bytes, naive,
              static_cast<double>(naive) /
                  (result.data_bytes + estimate.bytes));
  return converged ? 0 : 1;
}
