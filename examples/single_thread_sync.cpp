// Sans-I/O demo: both sides of a reconciliation in ONE thread, no
// sockets, no blocking calls anywhere.
//
// The point of the SessionEngine split (core/session_engine.h) is that
// the protocol does not care where its bytes come from. This example
// pumps an initiator and a responder engine against each other through
// an in-memory loopback transport pair — Send() on one end, non-blocking
// TryRecv() on the other — exactly the shape of an event-loop
// integration: "readable" means TryRecv returned bytes to Feed,
// "writable" means Status() == kWantWrite and Poll() has bytes for you.
// Swap the loopback pair for epoll-driven sockets and this loop IS
// net/ReconcileServer's core (which multiplexes one such engine per
// connected peer).
//
// Usage: example_single_thread_sync [scheme]   (default pbs)

#include <algorithm>
#include <cstdio>
#include <vector>

#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"
#include "pbs/sim/workload.h"

int main(int argc, char** argv) {
  const char* scheme = argc > 1 ? argv[1] : "pbs";
  if (!pbs::SchemeRegistry::Instance().Contains(scheme)) {
    std::fprintf(stderr, "unknown scheme '%s'\n", scheme);
    return 2;
  }

  pbs::SetPair pair = pbs::GenerateTwoSidedPair(50000, 120, 180, 32, 97);
  std::printf("Alice: %zu elements, Bob: %zu elements, true diff: %zu\n",
              pair.a.size(), pair.b.size(), pair.truth_diff.size());

  pbs::SessionConfig config;
  config.scheme_name = scheme;
  config.options.pbs.max_rounds = 8;
  config.options.pbs.strong_verification = true;

  // Two engines, two transport ends, one thread. The blocking Recv (and
  // its single-thread deadlock) is never touched: TryRecv only ever
  // drains what is already buffered.
  auto transports = pbs::MakeLoopbackTransportPair();
  pbs::ByteTransport& alice_end = *transports.first;
  pbs::ByteTransport& bob_end = *transports.second;
  pbs::SessionEngine alice = pbs::SessionEngine::Initiator(config, pair.a);
  pbs::SessionEngine bob = pbs::SessionEngine::Responder(pair.b);

  uint8_t buffer[4096];
  int iterations = 0;
  bool progress = true;
  while (progress) {
    progress = false;
    ++iterations;
    while (alice.Status() == pbs::SessionStatus::kWantWrite) {
      const size_t n = alice.Poll(buffer, sizeof(buffer));
      if (!alice_end.Send(buffer, n)) alice.FailTransport();
      progress = true;
    }
    for (size_t n; (n = bob_end.TryRecv(buffer, sizeof(buffer))) > 0;) {
      bob.Feed(buffer, n);
      progress = true;
    }
    while (bob.Status() == pbs::SessionStatus::kWantWrite) {
      const size_t n = bob.Poll(buffer, sizeof(buffer));
      if (!bob_end.Send(buffer, n)) bob.FailTransport();
      progress = true;
    }
    for (size_t n; (n = alice_end.TryRecv(buffer, sizeof(buffer))) > 0;) {
      alice.Feed(buffer, n);
      progress = true;
    }
  }

  const pbs::SessionResult result = alice.TakeResult();
  if (!result.ok) {
    std::fprintf(stderr, "session failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("scheme=%s d-hat=%.1f -> %s in %d rounds over %d loop "
              "iterations; params(%s)\n",
              result.scheme.c_str(), result.d_hat,
              result.outcome.success ? "reconciled" : "FAILED",
              result.outcome.rounds, iterations,
              result.outcome.params_summary.c_str());
  std::printf("recovered %zu differences: %zu payload bytes (+%zu "
              "estimator) in %zu wire bytes / %d frames\n",
              result.outcome.difference.size(), result.outcome.data_bytes,
              result.outcome.estimator_bytes, result.outcome.wire_bytes,
              result.outcome.wire_frames);

  std::vector<uint64_t> recovered = result.outcome.difference;
  std::vector<uint64_t> truth = pair.truth_diff;
  std::sort(recovered.begin(), recovered.end());
  std::sort(truth.begin(), truth.end());
  const bool correct = result.outcome.success && recovered == truth;
  std::printf("%s\n", correct ? "OK" : "MISMATCH");
  return correct ? 0 : 1;
}
