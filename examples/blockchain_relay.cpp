// Blockchain transaction relay -- the paper's motivating application
// (Section 1.3.4, Erlay [31]).
//
// A small peer-to-peer network gossips transactions. Instead of flooding
// full inventories, each peer pair periodically runs PBS over the 32-bit
// short IDs of their mempools and transfers only the missing transactions.
// The demo measures the bandwidth of PBS reconciliation against the naive
// "send every ID" protocol.

#include <cstdio>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/reconciler.h"
#include "pbs/hash/xxhash64.h"

namespace {

struct Transaction {
  uint64_t txid;       // Full 64-bit id (stand-in for a 256-bit hash).
  uint32_t fee;        // Payload; travels only for genuinely missing txs.
};

// A peer's mempool: full transactions keyed by the 32-bit short id that the
// reconciliation protocol operates on (Erlay compresses txids the same way).
struct Peer {
  std::unordered_map<uint64_t, Transaction> mempool;

  static uint64_t ShortId(uint64_t txid) {
    const uint64_t sid = pbs::XxHash64(txid, 0xB17C01) & 0xFFFFFFFF;
    return sid == 0 ? 1 : sid;  // 0 is excluded from the universe.
  }

  void Accept(const Transaction& tx) { mempool[ShortId(tx.txid)] = tx; }

  std::vector<uint64_t> ShortIds() const {
    std::vector<uint64_t> ids;
    ids.reserve(mempool.size());
    for (const auto& [sid, tx] : mempool) ids.push_back(sid);
    return ids;
  }
};

}  // namespace

int main() {
  constexpr int kPeers = 4;
  constexpr int kSharedTxs = 20000;
  constexpr int kFreshTxsPerPeer = 150;

  pbs::Xoshiro256 rng(2026);
  std::vector<Peer> peers(kPeers);

  // Everyone has the historical transaction set...
  for (int i = 0; i < kSharedTxs; ++i) {
    Transaction tx{rng.Next(), static_cast<uint32_t>(rng.NextBounded(1000))};
    for (auto& peer : peers) peer.Accept(tx);
  }
  // ...plus fresh transactions that arrived at one peer each.
  for (int p = 0; p < kPeers; ++p) {
    for (int i = 0; i < kFreshTxsPerPeer; ++i) {
      Transaction tx{rng.Next(), static_cast<uint32_t>(rng.NextBounded(1000))};
      peers[p].Accept(tx);
    }
  }

  std::printf("relaying %d fresh txs among %d peers (mempool ~%d txs)\n\n",
              kFreshTxsPerPeer * kPeers, kPeers, kSharedTxs);

  // One gossip sweep: every (i, j) pair reconciles; the numerically lower
  // peer plays Alice and pulls what it misses, then pushes its own extras.
  size_t pbs_bytes = 0, naive_bytes = 0, payload_bytes = 0;
  pbs::PbsConfig config;
  config.max_rounds = 5;
  for (int i = 0; i < kPeers; ++i) {
    for (int j = i + 1; j < kPeers; ++j) {
      const auto ids_i = peers[i].ShortIds();
      const auto ids_j = peers[j].ShortIds();
      auto result = pbs::PbsSession::Reconcile(
          ids_i, ids_j, config, 0x9A5 + i * 16 + j);
      if (!result.success) {
        std::printf("pair (%d,%d): reconciliation failed!\n", i, j);
        continue;
      }
      pbs_bytes += result.data_bytes + result.estimator_bytes;
      naive_bytes += ids_j.size() * 4;  // Naive: Bob ships all short ids.

      // Transfer the actual transactions both ways.
      int moved = 0;
      for (uint64_t sid : result.difference) {
        payload_bytes += sizeof(Transaction);
        if (peers[i].mempool.count(sid)) {
          peers[j].Accept(peers[i].mempool[sid]);
        } else {
          peers[i].Accept(peers[j].mempool[sid]);
        }
        ++moved;
      }
      std::printf(
          "pair (%d,%d): %3d txs exchanged, %5zu B reconciliation, "
          "%d rounds\n",
          i, j, moved, result.data_bytes, result.rounds);
    }
  }

  // All mempools must now agree.
  bool consistent = true;
  for (int p = 1; p < kPeers; ++p) {
    consistent = consistent &&
                 peers[p].mempool.size() == peers[0].mempool.size();
  }
  std::printf("\nall mempools converged: %s (size %zu)\n",
              consistent ? "yes" : "NO", peers[0].mempool.size());
  std::printf("reconciliation bandwidth: PBS %zu B vs naive %zu B (%.1fx "
              "saving), tx payload %zu B\n",
              pbs_bytes, naive_bytes,
              static_cast<double>(naive_bytes) / pbs_bytes, payload_bytes);
  return consistent ? 0 : 1;
}
