// pbs_cli: command-line set reconciliation over signature files.
//
// A signature file is plain text, one hex signature per line (nonzero,
// up to 63 bits). Subcommands:
//
//   pbs_cli gen <file> <count> [--seed N]
//       Generate a file of distinct random 32-bit signatures.
//   pbs_cli mutate <in> <out> --drop N --add N [--seed N]
//       Derive a diverged copy (drop N random lines, add N fresh ones).
//   pbs_cli estimate <fileA> <fileB>
//       ToW estimate of |A triangle B| (ell = 128).
//   pbs_cli diff <fileA> <fileB> [--scheme S] [--rounds N] [--p0 X]
//           [--delta N] [--threads N]
//       Reconcile with scheme S (default pbs; see --list-schemes); print
//       the symmetric difference and stats. --threads sets the per-group
//       decode parallelism (PBS; 0 = all hardware threads).
//   pbs_cli plan <d> [--p0 X] [--rounds N] [--delta N]
//       Show the (g, n, t) parameterization the Section-5.1 optimizer
//       picks for an expected difference of d.
//   pbs_cli serve <file> [--port N] [--once] [--max-sessions N] [--stats]
//           [--threads N] [--shards N] [--mutable] [--layout-d D]
//           [--shards-keyspace S] [--phase-deadline MS]
//       Hold a key set and serve framed reconciliation sessions over TCP
//       from N event-loop shards (any scheme; the client picks; many
//       clients concurrently). --once exits after one session;
//       --max-sessions caps concurrent sessions (default 64); --stats
//       prints the server's counters on exit; --threads sets each
//       session's per-group decode parallelism; --shards sets the
//       event-loop thread count (default 1, 0 = all hardware threads).
//       --mutable serves the set from a live MutableElementStore: each
//       session pins one consistent snapshot epoch, `pbs_cli update`
//       sessions mutate the set in place, and the store maintains the PBS
//       sketches incrementally (sized for an expected difference of
//       --layout-d, default 100) so matching sessions skip the per-session
//       sketch rebuild. --shards-keyspace caps the keyspace-shard count a
//       sharded client may negotiate (proposals above S are clamped; 0 =
//       accept any), and with --mutable also pre-maintains the S
//       per-shard digests incrementally so sharded sessions skip the
//       O(|set|) leaf stream.
//   pbs_cli update --host H --port N [--insert <file>] [--delete <file>]
//           [--batch N]
//       Send insert/delete batches (signature files) to a --mutable serve
//       instance over one UPDATE session; --batch splits the changes into
//       chunks of N per direction (default: one batch).
//   pbs_cli connect <file> --host H --port N [--scheme S] [--rounds N]
//           [--p0 X] [--delta N] [--seed N] [--exact-d D] [--quiet]
//           [--threads N] [--shards-keyspace S] [--retries N]
//           [--retry-base-ms MS] [--deadline MS] [--fault SPEC]
//       Reconcile the local file against a remote serve instance and
//       print the symmetric difference (relative to the local set).
//       --shards-keyspace S runs the session sharded: the keyspace is
//       split into S hash-range shards, a Merkle pre-filter drops the
//       identical ones, and the rest reconcile as pipelined sub-sessions
//       over the same connection (docs/WIRE_FORMAT.md section 2.5).
//       --retries N reconnects with capped decorrelated-jitter backoff on
//       transport failure; an interrupted sharded session resumes via a
//       RESUME frame and finishes only the unsettled shards (section
//       2.6). --deadline MS fails a phase that makes no progress for that
//       long. --fault SPEC (or the PBS_FAULT_SPEC env var) wraps each
//       connection in the fault injector, e.g. "loss=0.01,seed=42"
//       (common/fault_injector.h lists the keys).
//   pbs_cli list-schemes   (also: pbs_cli --list-schemes)
//       List every scheme registered with the SchemeRegistry.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "pbs/common/cpu_features.h"
#include "pbs/common/fault_injector.h"
#include "pbs/common/rng.h"
#include "pbs/core/set_reconciler.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/estimator/tow.h"
#include "pbs/markov/optimizer.h"
#include "pbs/net/reconcile_server.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  pbs_cli gen <file> <count> [--seed N]\n"
      "  pbs_cli mutate <in> <out> --drop N --add N [--seed N]\n"
      "  pbs_cli estimate <fileA> <fileB>\n"
      "  pbs_cli diff <fileA> <fileB> [--scheme S] [--rounds N] [--p0 X]\n"
      "          [--delta N] [--threads N]\n"
      "  pbs_cli plan <d> [--p0 X] [--rounds N] [--delta N]\n"
      "  pbs_cli serve <file> [--port N] [--once] [--max-sessions N]\n"
      "          [--stats] [--threads N] [--shards N] [--mutable]\n"
      "          [--layout-d D] [--shards-keyspace S] [--phase-deadline MS]\n"
      "  pbs_cli update --host H --port N [--insert <file>]\n"
      "          [--delete <file>] [--batch N]\n"
      "  pbs_cli connect <file> --host H --port N [--scheme S] [--rounds N]\n"
      "          [--p0 X] [--delta N] [--seed N] [--exact-d D] [--quiet]\n"
      "          [--threads N] [--shards-keyspace S] [--retries N]\n"
      "          [--retry-base-ms MS] [--deadline MS] [--fault SPEC]\n"
      "  pbs_cli list-schemes\n");
  return 2;
}

uint64_t FlagU64(int argc, char** argv, const char* flag, uint64_t def) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return def;
}

double FlagDouble(int argc, char** argv, const char* flag, double def) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::atof(argv[i + 1]);
  }
  return def;
}

const char* FlagStr(int argc, char** argv, const char* flag,
                    const char* def) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return def;
}

bool LoadSignatures(const char* path, std::vector<uint64_t>* out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  std::string line;
  std::unordered_set<uint64_t> seen;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const uint64_t v = std::strtoull(line.c_str(), nullptr, 16);
    if (v == 0) {
      std::fprintf(stderr, "warning: skipping zero/invalid line '%s'\n",
                   line.c_str());
      continue;
    }
    if (seen.insert(v).second) out->push_back(v);
  }
  return true;
}

bool SaveSignatures(const char* path, const std::vector<uint64_t>& sigs) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return false;
  }
  for (uint64_t v : sigs) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIx64 "\n", v);
    out << buf;
  }
  return true;
}

int CmdGen(int argc, char** argv) {
  if (argc < 2) return Usage();
  const char* path = argv[0];
  const uint64_t count = std::strtoull(argv[1], nullptr, 10);
  pbs::Xoshiro256 rng(FlagU64(argc, argv, "--seed", 1));
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> sigs;
  while (sigs.size() < count) {
    const uint64_t v = rng.Next() & 0xFFFFFFFF;
    if (v != 0 && seen.insert(v).second) sigs.push_back(v);
  }
  if (!SaveSignatures(path, sigs)) return 1;
  std::printf("wrote %zu signatures to %s\n", sigs.size(), path);
  return 0;
}

int CmdMutate(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::vector<uint64_t> sigs;
  if (!LoadSignatures(argv[0], &sigs)) return 1;
  const uint64_t drop = FlagU64(argc, argv, "--drop", 0);
  const uint64_t add = FlagU64(argc, argv, "--add", 0);
  pbs::Xoshiro256 rng(FlagU64(argc, argv, "--seed", 2));
  if (drop > sigs.size()) {
    std::fprintf(stderr, "cannot drop %" PRIu64 " of %zu\n", drop,
                 sigs.size());
    return 1;
  }
  for (uint64_t i = 0; i < drop; ++i) {
    const size_t j = i + rng.NextBounded(sigs.size() - i);
    std::swap(sigs[i], sigs[j]);
  }
  sigs.erase(sigs.begin(), sigs.begin() + drop);
  std::unordered_set<uint64_t> seen(sigs.begin(), sigs.end());
  for (uint64_t i = 0; i < add;) {
    const uint64_t v = rng.Next() & 0xFFFFFFFF;
    if (v != 0 && seen.insert(v).second) {
      sigs.push_back(v);
      ++i;
    }
  }
  if (!SaveSignatures(argv[1], sigs)) return 1;
  std::printf("wrote %zu signatures to %s (dropped %" PRIu64 ", added %"
              PRIu64 ")\n",
              sigs.size(), argv[1], drop, add);
  return 0;
}

int CmdEstimate(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::vector<uint64_t> a, b;
  if (!LoadSignatures(argv[0], &a) || !LoadSignatures(argv[1], &b)) return 1;
  pbs::TowSketch sa(pbs::kTowDefaultSketches, 7);
  pbs::TowSketch sb(pbs::kTowDefaultSketches, 7);
  sa.AddAll(a);
  sb.AddAll(b);
  const double d_hat = pbs::TowSketch::Estimate(sa, sb);
  std::printf("|A|=%zu |B|=%zu d-hat=%.1f (use %d with gamma=%.2f)\n",
              a.size(), b.size(), d_hat,
              pbs::InflateEstimate(d_hat, pbs::kTowGamma), pbs::kTowGamma);
  return 0;
}

int CmdListSchemes() {
  const auto& registry = pbs::SchemeRegistry::Instance();
  const pbs::SchemeOptions options;
  std::printf("%-14s %-14s %7s %9s\n", "name", "display", "rounds",
              "estimate");
  for (const std::string& name : registry.Names()) {
    const auto scheme = registry.Create(name, options);
    std::printf("%-14s %-14s %7s %9s\n", name.c_str(),
                scheme->display_name(),
                scheme->supports_rounds() ? "multi" : "single",
                scheme->needs_estimate() ? "needs" : "-");
  }
  return 0;
}

int CmdDiff(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::vector<uint64_t> a, b;
  if (!LoadSignatures(argv[0], &a) || !LoadSignatures(argv[1], &b)) return 1;
  pbs::SchemeOptions options;
  options.pbs.max_rounds =
      static_cast<int>(FlagU64(argc, argv, "--rounds", 3));
  options.pbs.target_rounds = options.pbs.max_rounds;
  options.pbs.p0 = FlagDouble(argc, argv, "--p0", 0.99);
  options.pbs.delta = static_cast<int>(FlagU64(argc, argv, "--delta", 5));
  options.pbs.decode_threads =
      static_cast<int>(FlagU64(argc, argv, "--threads", 1));
  options.pbs.strong_verification = true;

  const char* scheme_name = FlagStr(argc, argv, "--scheme", "pbs");
  const auto reconciler =
      pbs::SchemeRegistry::Instance().Create(scheme_name, options);
  if (!reconciler) {
    std::fprintf(stderr, "unknown scheme '%s'; run pbs_cli list-schemes\n",
                 scheme_name);
    return 2;
  }

  // Estimate exchange (Section 6): ToW sketches under a shared seed.
  const pbs::TowExchange estimate =
      pbs::TowEstimateExchange(a, b, options.pbs.ell, 0xE57);

  auto result = reconciler->Reconcile(a, b, estimate.d_hat, 0xC11);
  std::fprintf(stderr,
               "scheme=%s success=%s rounds=%d bytes=%zu (+%zu estimator) "
               "params(%s)\n",
               reconciler->display_name(), result.success ? "yes" : "no",
               result.rounds, result.data_bytes,
               result.estimator_bytes + estimate.bytes,
               result.params_summary.c_str());
  if (!result.success) return 1;
  std::sort(result.difference.begin(), result.difference.end());
  std::unordered_set<uint64_t> in_a(a.begin(), a.end());
  for (uint64_t v : result.difference) {
    std::printf("%c %" PRIx64 "\n", in_a.count(v) ? '-' : '+', v);
  }
  return 0;
}

bool FlagPresent(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

int CmdServe(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::vector<uint64_t> elements;
  if (!LoadSignatures(argv[0], &elements)) return 1;
  const auto port = static_cast<uint16_t>(FlagU64(argc, argv, "--port", 7557));
  const bool once = FlagPresent(argc, argv, "--once");
  const bool print_stats = FlagPresent(argc, argv, "--stats");

  // N event-loop shards, one responder SessionEngine per connection:
  // clients no longer queue behind each other, and shards spread the
  // session work across cores (net/reconcile_server.h).
  pbs::ServerOptions options;
  options.port = port;
  options.shards = static_cast<int>(FlagU64(argc, argv, "--shards", 1));
  options.max_sessions =
      static_cast<int>(FlagU64(argc, argv, "--max-sessions", 64));
  options.idle_timeout_ms = 30000;
  options.serve_limit = once ? 1 : 0;
  options.decode_threads =
      static_cast<int>(FlagU64(argc, argv, "--threads", 1));
  options.keyspace_shards =
      static_cast<int>(FlagU64(argc, argv, "--shards-keyspace", 0));
  options.phase_deadline_ms =
      static_cast<int>(FlagU64(argc, argv, "--phase-deadline", 0));

  std::string error;
  const size_t key_count = elements.size();
  const bool mutable_store = FlagPresent(argc, argv, "--mutable");
  if (mutable_store) {
    // Live served set: sessions pin store snapshots and `pbs_cli update`
    // can mutate it. The layout config mirrors the `connect` defaults so
    // a default client's sessions adopt the store's pre-built sketches.
    auto store = std::make_shared<pbs::MutableElementStore>();
    pbs::PbsConfig layout_config;
    layout_config.max_rounds = 3;
    layout_config.target_rounds = 3;
    layout_config.p0 = 0.99;
    layout_config.delta = 5;
    layout_config.sig_bits = 32;
    const int layout_d =
        static_cast<int>(FlagU64(argc, argv, "--layout-d", 100));
    if (!store->ConfigureLayout(layout_config, /*seed=*/0xC11, layout_d,
                                &error)) {
      std::fprintf(stderr, "serve: %s\n", error.c_str());
      return 1;
    }
    pbs::UpdateBatch initial;
    initial.inserts = std::move(elements);
    elements.clear();
    store->Apply(initial);
    if (options.keyspace_shards > 0) {
      // Maintain the per-shard digests incrementally under the default
      // `connect` seed (the plan is keyed by the initiator's seed):
      // matching sharded sessions take their pre-filter leaves straight
      // off the snapshot instead of streaming the whole set.
      if (!store->ConfigureShardChecksums(options.keyspace_shards,
                                          /*seed=*/0xC11, &error)) {
        std::fprintf(stderr, "serve: %s\n", error.c_str());
        return 1;
      }
    }
    options.mutable_store = std::move(store);
  }
  auto server =
      pbs::ReconcileServer::Create(options, std::move(elements), &error);
  if (!server) {
    std::fprintf(stderr, "serve: %s\n", error.c_str());
    return 1;
  }
  bool last_session_ok = false;
  server->set_session_logger([&last_session_ok](
                                 const pbs::SessionResult& result) {
    if (result.ok) {
      std::fprintf(stderr,
                   "session scheme=%s success=%s rounds=%d d-hat=%.1f "
                   "wire=%zuB/%d frames\n",
                   result.scheme.c_str(),
                   result.outcome.success ? "yes" : "no",
                   result.outcome.rounds, result.d_hat,
                   result.outcome.wire_bytes, result.outcome.wire_frames);
    } else {
      std::fprintf(stderr, "session failed: %s\n", result.error.c_str());
    }
    last_session_ok = result.ok && result.outcome.success;
  });
  std::fprintf(stderr,
               "serving %zu keys on port %u (%s, max %d concurrent, "
               "%d shard%s, cpu %s)\n",
               key_count, server->port(),
               once ? "single session" : "loop", options.max_sessions,
               server->shard_count(),
               server->shard_count() == 1 ? "" : "s", pbs::cpu::FeatureString());
  server->Run();
  if (print_stats) {
    const pbs::ServerStats stats = server->stats();
    std::fprintf(stderr,
                 "stats: accepted=%llu completed=%llu failed=%llu "
                 "timed-out=%llu rejected=%llu in=%lluB out=%lluB\n",
                 static_cast<unsigned long long>(stats.accepted),
                 static_cast<unsigned long long>(stats.completed),
                 static_cast<unsigned long long>(stats.failed),
                 static_cast<unsigned long long>(stats.timed_out),
                 static_cast<unsigned long long>(stats.rejected_capacity),
                 static_cast<unsigned long long>(stats.bytes_in),
                 static_cast<unsigned long long>(stats.bytes_out));
    for (const auto& [scheme, count] : stats.completed_by_scheme) {
      std::fprintf(stderr, "stats: scheme %s completed=%llu\n",
                   scheme.c_str(),
                   static_cast<unsigned long long>(count));
    }
  }
  return once ? (last_session_ok ? 0 : 1) : 0;
}

int CmdUpdate(int argc, char** argv) {
  std::vector<uint64_t> inserts, deletes;
  const char* insert_path = FlagStr(argc, argv, "--insert", nullptr);
  const char* delete_path = FlagStr(argc, argv, "--delete", nullptr);
  if (insert_path == nullptr && delete_path == nullptr) {
    std::fprintf(stderr, "update: need --insert and/or --delete\n");
    return Usage();
  }
  if (insert_path != nullptr && !LoadSignatures(insert_path, &inserts)) {
    return 1;
  }
  if (delete_path != nullptr && !LoadSignatures(delete_path, &deletes)) {
    return 1;
  }

  std::vector<pbs::UpdateBatch> batches;
  const uint64_t batch_size = FlagU64(argc, argv, "--batch", 0);
  if (batch_size == 0) {
    pbs::UpdateBatch batch;
    batch.inserts = std::move(inserts);
    batch.deletes = std::move(deletes);
    batches.push_back(std::move(batch));
  } else {
    // Chunk each direction independently; a chunk may carry both kinds.
    const size_t total = std::max(inserts.size(), deletes.size());
    for (size_t start = 0; start < total; start += batch_size) {
      pbs::UpdateBatch batch;
      for (size_t i = start; i < inserts.size() && i < start + batch_size;
           ++i) {
        batch.inserts.push_back(inserts[i]);
      }
      for (size_t i = start; i < deletes.size() && i < start + batch_size;
           ++i) {
        batch.deletes.push_back(deletes[i]);
      }
      batches.push_back(std::move(batch));
    }
  }

  const char* host = FlagStr(argc, argv, "--host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(FlagU64(argc, argv, "--port", 7557));
  std::string error;
  auto transport = pbs::TcpConnect(host, port, &error);
  if (!transport) {
    std::fprintf(stderr, "update: %s\n", error.c_str());
    return 1;
  }
  const pbs::SessionResult result = pbs::RunUpdateSession(*transport, batches);
  if (!result.ok) {
    std::fprintf(stderr, "update failed: %s\n", result.error.c_str());
    return 1;
  }
  std::printf("update ok: %d batch%s, %s\n", result.outcome.rounds,
              result.outcome.rounds == 1 ? "" : "es",
              result.outcome.params_summary.c_str());
  return 0;
}

int CmdConnect(int argc, char** argv) {
  if (argc < 1) return Usage();
  std::vector<uint64_t> elements;
  if (!LoadSignatures(argv[0], &elements)) return 1;

  pbs::SessionConfig config;
  config.scheme_name = FlagStr(argc, argv, "--scheme", "pbs");
  // --rounds means the same as in `diff`: both the plan's round target
  // and the hard cap.
  config.options.pbs.max_rounds =
      static_cast<int>(FlagU64(argc, argv, "--rounds", 3));
  config.options.pbs.target_rounds = config.options.pbs.max_rounds;
  config.options.pbs.p0 = FlagDouble(argc, argv, "--p0", 0.99);
  config.options.pbs.delta =
      static_cast<int>(FlagU64(argc, argv, "--delta", 5));
  config.options.pbs.decode_threads =
      static_cast<int>(FlagU64(argc, argv, "--threads", 1));
  config.options.pbs.strong_verification = true;
  config.seed = FlagU64(argc, argv, "--seed", 0xC11);
  config.estimate_seed = config.seed ^ 0xE57A11CE;
  config.exact_d = FlagDouble(argc, argv, "--exact-d", -1.0);
  config.keyspace_shards =
      static_cast<int>(FlagU64(argc, argv, "--shards-keyspace", 0));
  config.phase_deadline_ms =
      static_cast<int>(FlagU64(argc, argv, "--deadline", 0));
  const bool quiet = FlagPresent(argc, argv, "--quiet");

  if (!pbs::SchemeRegistry::Instance().Contains(config.scheme_name)) {
    std::fprintf(stderr, "unknown scheme '%s'; run pbs_cli list-schemes\n",
                 config.scheme_name.c_str());
    return 2;
  }

  // Fault injection: --fault takes precedence, else the PBS_FAULT_SPEC
  // env var (inactive default when unset).
  pbs::FaultSpec fault;
  std::string fault_error;
  const char* fault_text = FlagStr(argc, argv, "--fault", nullptr);
  const bool fault_parsed =
      fault_text != nullptr
          ? pbs::FaultSpec::Parse(fault_text, &fault, &fault_error)
          : pbs::FaultSpec::FromEnv(&fault, &fault_error);
  if (!fault_parsed) {
    std::fprintf(stderr, "connect: bad fault spec: %s\n", fault_error.c_str());
    return 2;
  }

  const char* host = FlagStr(argc, argv, "--host", "127.0.0.1");
  const auto port = static_cast<uint16_t>(FlagU64(argc, argv, "--port", 7557));

  // Each (re)connect builds a fresh transport; with faults configured the
  // connection is wrapped in the injector under a per-connection seed so
  // every attempt sees an independent (but reproducible) schedule.
  // once=1 (first_conn_only) faults only the first connection — the
  // deterministic way to demo "fail once, then resume cleanly".
  int connections = 0;
  const auto factory =
      [&](std::string* err) -> std::unique_ptr<pbs::ByteTransport> {
    auto transport = pbs::TcpConnect(host, port, err);
    if (transport == nullptr) return nullptr;
    const int index = connections++;
    if (!fault.active() || (fault.first_conn_only && index > 0)) {
      return transport;
    }
    pbs::FaultSpec per_conn = fault;
    per_conn.seed = fault.seed + static_cast<uint64_t>(index);
    return pbs::MakeFaultyTransport(std::move(transport), per_conn);
  };

  pbs::ResilientOptions resilient;
  resilient.retry.max_attempts =
      static_cast<int>(FlagU64(argc, argv, "--retries", 1));
  resilient.retry.base_delay_ms =
      static_cast<int>(FlagU64(argc, argv, "--retry-base-ms", 100));
  resilient.retry.max_delay_ms =
      std::max(resilient.retry.base_delay_ms, 2000);
  resilient.retry.seed = config.seed;
  resilient.log = [](const std::string& message) {
    std::fprintf(stderr, "connect: %s\n", message.c_str());
  };
  pbs::ResilienceReport report;
  const pbs::SessionResult result = pbs::RunResilientInitiatorSession(
      factory, config, elements, resilient, &report);
  if (!result.ok) {
    std::fprintf(stderr, "session failed: %s\n", result.error.c_str());
    return 1;
  }
  if (report.sessions_run > 1 || report.used_resume) {
    std::fprintf(stderr,
                 "resilience: attempts=%d resumed=%s stale=%s "
                 "wire-last=%zuB wire-total=%zuB\n",
                 report.sessions_run, report.used_resume ? "yes" : "no",
                 report.stale_resume ? "yes" : "no", report.last_wire_bytes,
                 report.total_wire_bytes);
  }
  std::fprintf(stderr,
               "scheme=%s success=%s rounds=%d d-hat=%.1f payload=%zuB "
               "(+%zuB estimator) wire=%zuB in %d frames params(%s)\n",
               result.scheme.c_str(),
               result.outcome.success ? "yes" : "no", result.outcome.rounds,
               result.d_hat, result.outcome.data_bytes,
               result.outcome.estimator_bytes, result.outcome.wire_bytes,
               result.outcome.wire_frames,
               result.outcome.params_summary.c_str());
  if (!result.outcome.success) return 1;
  std::vector<uint64_t> difference = result.outcome.difference;
  std::sort(difference.begin(), difference.end());
  if (!quiet) {
    std::unordered_set<uint64_t> local(elements.begin(), elements.end());
    for (uint64_t v : difference) {
      std::printf("%c %" PRIx64 "\n", local.count(v) ? '-' : '+', v);
    }
  } else {
    std::printf("%zu differences\n", difference.size());
  }
  return 0;
}

int CmdPlan(int argc, char** argv) {
  if (argc < 1) return Usage();
  pbs::PbsConfig config;
  config.target_rounds = static_cast<int>(FlagU64(argc, argv, "--rounds", 3));
  config.p0 = FlagDouble(argc, argv, "--p0", 0.99);
  config.delta = static_cast<int>(FlagU64(argc, argv, "--delta", 5));
  const int d = std::atoi(argv[0]);
  const pbs::PbsPlan plan = pbs::PlanFor(config, d);
  std::printf("d=%d delta=%d r=%d p0=%.4f\n", d, config.delta,
              config.target_rounds, config.p0);
  std::printf("  groups g = %d\n", plan.params.g);
  std::printf("  bins   n = %d (m = %d)\n", plan.params.n, plan.params.m);
  std::printf("  BCH    t = %d\n", plan.params.t);
  std::printf("  success lower bound = %.4f\n", plan.params.lower_bound);
  std::printf("  first-round bits/group = %.0f (total ~%.1f KB)\n",
              plan.params.bits_per_group,
              plan.params.bits_per_group * plan.params.g / 8192.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc - 2, argv + 2);
  if (cmd == "mutate") return CmdMutate(argc - 2, argv + 2);
  if (cmd == "estimate") return CmdEstimate(argc - 2, argv + 2);
  if (cmd == "diff") return CmdDiff(argc - 2, argv + 2);
  if (cmd == "plan") return CmdPlan(argc - 2, argv + 2);
  if (cmd == "serve") return CmdServe(argc - 2, argv + 2);
  if (cmd == "connect") return CmdConnect(argc - 2, argv + 2);
  if (cmd == "update") return CmdUpdate(argc - 2, argv + 2);
  if (cmd == "list-schemes" || cmd == "--list-schemes") {
    return CmdListSchemes();
  }
  return Usage();
}
