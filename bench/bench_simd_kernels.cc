// Micro-benchmarks: the wide-lane SIMD kernel layer (Recorder harness).
//
// Head-to-head timings of every lane-batched kernel against the scalar
// reference it is pinned bit-identical to by the differential test suites:
// cross-group batch Chien search vs per-group incremental search, the
// cross-group sketch decode vs per-sketch DecodeInto, the lane-blocked
// parity-bitmap build / odd-bin scan / XOR-fold vs their scalar forms, the
// four-cell IBF subtract vs cell-at-a-time, and the batched xxhash64 vs a
// scalar hash loop. One table/JSON row per (kernel, path) pair; the `simd`
// rows carry the speedup over the scalar row they follow, so the recorded
// trajectory (BENCH_pbs.json) tracks both absolute cost and the win.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/cpu_features.h"
#include "pbs/common/rng.h"
#include "pbs/common/workspace.h"
#include "pbs/core/parity_bitmap.h"
#include "pbs/gf/gfpoly.h"
#include "pbs/gf/roots.h"
#include "pbs/hash/xxhash64.h"
#include "pbs/ibf/invertible_bloom_filter.h"

namespace {

using pbs::ChienBatchPoly;
using pbs::GF2m;
using pbs::GFPoly;
using pbs::InvertibleBloomFilter;
using pbs::ParityBitmap;
using pbs::PowerSumSketch;
using pbs::SaltedHash;
using pbs::Span;
using pbs::Workspace;
using pbs::Xoshiro256;

std::vector<uint64_t> Distinct(const GF2m& f, int count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng.NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

// prod_i (x + r_i) over `count` distinct nonzero roots: a full-capacity
// locator, the exact shape each group's decode hands to Chien search.
std::vector<uint64_t> PlantedLocator(const GF2m& f, int count, uint64_t seed) {
  GFPoly p = GFPoly::One(f);
  for (uint64_t r : Distinct(f, count, seed)) p = p.Mul(GFPoly(f, {r, 1}));
  return p.coeffs();
}

int main_impl() {
  const bool full = pbs::bench::FullMode();
  const double budget = full ? 0.6 : 0.15;
  std::printf("== wide-lane SIMD kernel micro-benchmarks ==\n");
  std::printf("mode=%s budget=%.2fs/case simd_backend=%s cpu=%s\n\n",
              full ? "FULL" : "quick", budget, pbs::cpu::SimdBackend(),
              pbs::cpu::FeatureString());

  pbs::bench::Recorder rec("simd_kernels", {"kernel", "path", "params",
                                            "ns_per_op", "speedup"});
  double scalar_ns = 0.0;
  const auto add = [&](const char* kernel, const char* path,
                       const std::string& params, double ns) {
    const bool is_ref = scalar_ns == 0.0;
    if (is_ref) scalar_ns = ns;
    rec.AddRow({kernel, path, params, pbs::FormatDouble(ns, 1),
                is_ref ? "1.00" : pbs::FormatDouble(scalar_ns / ns, 2)});
    if (!is_ref) scalar_ns = 0.0;
  };

  // ---- Cross-group batch Chien search (the tentpole's headline case). ----
  // Eight groups at the PBS plan shape (n = 2047, t = 16), each with a
  // full-capacity degree-16 locator: scalar = eight incremental searches,
  // simd = one ChienSearchBatch walking all lanes through the doubled exp
  // table together.
  {
    constexpr int kGroups = 8;
    constexpr int t = 16;
    const GF2m f(11);  // n = 2047.
    std::vector<std::vector<uint64_t>> coeffs(kGroups), roots(kGroups);
    std::vector<ChienBatchPoly> polys(kGroups);
    for (int p = 0; p < kGroups; ++p) {
      coeffs[p] = PlantedLocator(f, t, 100 + p);
      roots[p].assign(t, 0);
    }
    Workspace ws;
    const std::string params = "n=2047 t=16 groups=8";
    add("chien_batch", "scalar", params, pbs::bench::TimeNs([&] {
          for (int p = 0; p < kGroups; ++p) {
            (void)pbs::ChienSearchIncremental(
                f, coeffs[p], ws, Span<uint64_t>(roots[p].data(), t));
          }
        }, budget));
    add("chien_batch", pbs::cpu::SimdBackend(), params,
        pbs::bench::TimeNs([&] {
          for (int p = 0; p < kGroups; ++p) {
            polys[p] = ChienBatchPoly{coeffs[p], roots[p], 0};
          }
          pbs::ChienSearchBatch(f, Span<ChienBatchPoly>(polys.data(), kGroups),
                                ws);
        }, budget));
  }

  // ---- Cross-group sketch decode (batch Chien wired into the decoder). ----
  {
    constexpr int kGroups = 8;
    constexpr int t = 16;
    const GF2m f(11);
    std::vector<PowerSumSketch> sketches;
    for (int i = 0; i < kGroups; ++i) {
      sketches.emplace_back(f, t);
      for (uint64_t e : Distinct(f, t, 200 + i)) sketches[i].Toggle(e);
    }
    const PowerSumSketch* ptrs[kGroups];
    std::vector<std::vector<uint64_t>> outs(kGroups);
    std::vector<uint64_t>* out_ptrs[kGroups];
    uint8_t ok[kGroups];
    for (int i = 0; i < kGroups; ++i) {
      ptrs[i] = &sketches[i];
      out_ptrs[i] = &outs[i];
    }
    Workspace ws;
    const std::string params = "n=2047 t=16 groups=8 d=16";
    add("decode_batch", "scalar", params, pbs::bench::TimeNs([&] {
          for (int i = 0; i < kGroups; ++i) {
            (void)sketches[i].DecodeInto(&outs[i], ws);
          }
        }, budget));
    add("decode_batch", pbs::cpu::SimdBackend(), params,
        pbs::bench::TimeNs([&] {
          PowerSumSketch::DecodeBatchInto(
              Span<const PowerSumSketch* const>(ptrs, kGroups),
              Span<std::vector<uint64_t>* const>(out_ptrs, kGroups),
              Span<uint8_t>(ok, kGroups), ws);
        }, budget));
  }

  // ---- Parity-bitmap build at the paper's set size (1e6 elements). ----
  // Quick mode scales down to keep the suite fast; the recorded full-mode
  // run is the acceptance number.
  {
    const size_t count = full ? 1000000 : 200000;
    const int n = 2047;
    std::vector<uint64_t> elems(count);
    Xoshiro256 rng(77);
    for (auto& e : elems) e = rng.Next() | 1;
    const SaltedHash h(0xB17);
    ParityBitmap pb;
    const std::string params =
        "n=2047 elements=" + std::to_string(count);
    add("bitmap_build", "scalar", params, pbs::bench::TimeNs([&] {
          ParityBitmap::BuildIntoScalar(elems, h, n, &pb);
        }, budget));
    add("bitmap_build", pbs::cpu::SimdBackend(), params,
        pbs::bench::TimeNs([&] {
          ParityBitmap::BuildInto(elems, h, n, &pb);
        }, budget));
  }

  // ---- Odd-bin scan (bitmap -> sketch) and XOR-fold. ----
  {
    const int n = 2047;
    const GF2m f(11);
    const SaltedHash h(0x5C);
    Xoshiro256 rng(78);
    std::vector<uint64_t> elems(4096);
    for (auto& e : elems) e = rng.Next() | 1;
    ParityBitmap a = ParityBitmap::Build(elems, h, n);
    for (auto& e : elems) e = rng.Next() | 1;
    const ParityBitmap b = ParityBitmap::Build(elems, h, n);
    PowerSumSketch sketch(f, 16);
    const std::string params = "n=2047";
    add("bitmap_scan", "scalar", params, pbs::bench::TimeNs([&] {
          a.ToSketchIntoScalar(&sketch);
        }, budget));
    add("bitmap_scan", pbs::cpu::SimdBackend(), params,
        pbs::bench::TimeNs([&] { a.ToSketchInto(&sketch); }, budget));
    add("bitmap_fold", "scalar", params, pbs::bench::TimeNs([&] {
          a.FoldXorScalar(b);
        }, budget));
    add("bitmap_fold", pbs::cpu::SimdBackend(), params,
        pbs::bench::TimeNs([&] { a.FoldXor(b); }, budget));
  }

  // ---- IBF cell-stream subtract (Difference Digest / Graphene). ----
  {
    const size_t cells = full ? 30000 : 3000;
    InvertibleBloomFilter x(cells, 4, 0x1BF, 32);
    InvertibleBloomFilter y(cells, 4, 0x1BF, 32);
    Xoshiro256 rng(79);
    for (int i = 0; i < 2000; ++i) x.Insert((rng.Next() & 0xFFFFFFFFu) | 1);
    for (int i = 0; i < 2000; ++i) y.Insert((rng.Next() & 0xFFFFFFFFu) | 1);
    const std::string params = "cells=" + std::to_string(x.cell_count());
    add("ibf_subtract", "scalar", params, pbs::bench::TimeNs([&] {
          x.SubtractScalar(y);
        }, budget));
    add("ibf_subtract", pbs::cpu::SimdBackend(), params,
        pbs::bench::TimeNs([&] { x.Subtract(y); }, budget));
  }

  // ---- Batched xxhash64 (partitioning / IBF keying). ----
  {
    constexpr size_t kCount = 4096;
    std::vector<uint64_t> xs(kCount), out(kCount);
    Xoshiro256 rng(80);
    for (auto& v : xs) v = rng.Next();
    const uint64_t seed = 0x9E37;
    const std::string params = "batch=" + std::to_string(kCount);
    add("xxhash64", "scalar", params, pbs::bench::TimeNs([&] {
          for (size_t i = 0; i < kCount; ++i) {
            out[i] = pbs::XxHash64(xs[i], seed);
          }
        }, budget));
    add("xxhash64", pbs::cpu::SimdBackend(), params,
        pbs::bench::TimeNs([&] {
          pbs::XxHash64Batch(xs.data(), kCount, seed, out.data());
        }, budget));
  }

  rec.Print();
  std::printf(
      "\nEach simd row's speedup is against the scalar row above it; the\n"
      "differential suites (ChienBatchDiff, DecodeBatchDiff, BitmapSimdDiff,\n"
      "IbfSimdDiff, HashBatchDiff) pin every pair bit-identical.\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
