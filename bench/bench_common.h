// Shared plumbing for the figure/table reproduction binaries.
//
// Every binary runs a reduced-scale sweep by default so the whole bench
// suite finishes in minutes; set PBS_BENCH_FULL=1 to run the paper's scale
// (|A| = 10^6, 1000 instances, d up to 10^5). Scale notes are printed into
// the output so recorded runs are self-describing.

#ifndef PBS_BENCH_BENCH_COMMON_H_
#define PBS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace pbs::bench {

inline bool FullMode() {
  const char* env = std::getenv("PBS_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

struct Scale {
  size_t set_size;
  int instances;
  std::vector<size_t> d_grid;
  std::vector<size_t> slow_d_grid;  // For O(d^2) schemes (PinSketch).
};

inline Scale DefaultScale() {
  if (FullMode()) {
    return Scale{1000000, 1000,
                 {10, 100, 1000, 10000, 100000},
                 {10, 100, 1000, 10000, 30000}};
  }
  return Scale{100000, 10, {10, 100, 1000, 10000}, {10, 100, 1000}};
}

/// Instance count for schemes with O(d^2) (or worse) per-instance cost;
/// quick mode trades success-rate resolution for wall-clock time there.
inline int SlowSchemeInstances(const Scale& scale) {
  return FullMode() ? scale.instances : std::max(4, scale.instances / 4);
}

inline void PrintHeader(const char* what, const Scale& scale) {
  std::printf("== %s ==\n", what);
  std::printf("mode=%s |A|=%zu instances=%d\n", FullMode() ? "FULL" : "quick",
              scale.set_size, scale.instances);
  std::printf(
      "(set PBS_BENCH_FULL=1 for the paper's scale: |A|=1e6, 1000 "
      "instances)\n\n");
}

}  // namespace pbs::bench

#endif  // PBS_BENCH_BENCH_COMMON_H_
