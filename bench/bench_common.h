// Shared plumbing for the figure/table reproduction binaries.
//
// Every binary runs a reduced-scale sweep by default so the whole bench
// suite finishes in minutes; set PBS_BENCH_FULL=1 to run the paper's scale
// (|A| = 10^6, 1000 instances, d up to 10^5). Scale notes are printed into
// the output so recorded runs are self-describing.
//
// Machine-readable output: when PBS_BENCH_JSON=<path> is set, every
// Recorder row (and any direct JsonEmitter call) is appended to <path> as
// one JSON object per line, tagged with the bench name and scale mode.
// scripts/collect_bench.py merges such runs into BENCH_pbs.json, the
// repo's recorded perf trajectory (see docs/BENCHMARKS.md).

#ifndef PBS_BENCH_BENCH_COMMON_H_
#define PBS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "pbs/common/cpu_features.h"
#include "pbs/gf/gf2m.h"
#include "pbs/sim/metrics.h"

namespace pbs::bench {

inline bool FullMode() {
  const char* env = std::getenv("PBS_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

struct Scale {
  size_t set_size;
  int instances;
  std::vector<size_t> d_grid;
  std::vector<size_t> slow_d_grid;  // For O(d^2) schemes (PinSketch).
};

inline Scale DefaultScale() {
  if (FullMode()) {
    return Scale{1000000, 1000,
                 {10, 100, 1000, 10000, 100000},
                 {10, 100, 1000, 10000, 30000}};
  }
  return Scale{100000, 10, {10, 100, 1000, 10000}, {10, 100, 1000}};
}

/// Instance count for schemes with O(d^2) (or worse) per-instance cost;
/// quick mode trades success-rate resolution for wall-clock time there.
inline int SlowSchemeInstances(const Scale& scale) {
  return FullMode() ? scale.instances : std::max(4, scale.instances / 4);
}

inline void PrintHeader(const char* what, const Scale& scale) {
  std::printf("== %s ==\n", what);
  std::printf("mode=%s |A|=%zu instances=%d\n", FullMode() ? "FULL" : "quick",
              scale.set_size, scale.instances);
  std::printf(
      "(set PBS_BENCH_FULL=1 for the paper's scale: |A|=1e6, 1000 "
      "instances)\n\n");
}

/// Runs `op` repeatedly for ~`budget_seconds` of wall clock (after untimed
/// warm-up passes) split over several repetitions, and returns the best
/// (minimum) ns per operation -- the repetition least disturbed by
/// scheduling noise. Shared by the kernel microbenches (bench_hotpath,
/// bench_micro_gf, bench_micro_bch).
inline double TimeNs(const std::function<void()>& op, double budget_seconds) {
  using Clock = std::chrono::steady_clock;
  op();  // Warm-up: sizes every reused buffer, loads tables.
  op();
  constexpr int kRepetitions = 5;
  double best_ns = 1e18;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int i = 0; i < 16; ++i) op();
      iters += 16;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < budget_seconds / kRepetitions);
    best_ns = std::min(best_ns, elapsed * 1e9 / iters);
  }
  return best_ns;
}

/// ns/op -> million ops per second, formatted for a table cell. Shared by
/// the kernel microbenches.
inline std::string FormatMops(double ns) {
  return FormatDouble(1e9 / ns / 1e6, 3);
}

/// Dispatch label for single-element ops routed through a GF2m field: the
/// log/antilog table path below kMaxTableBits, the runtime-dispatched
/// carry-less path ("clmul" or "portable") above it.
inline const char* FieldPathLabel(const GF2m& f) {
  return f.has_tables() ? "table" : cpu::CarrylessMulBackend();
}

// ---------------------------------------------------------------------------
// JSON-lines emission (PBS_BENCH_JSON=<path>).
// ---------------------------------------------------------------------------

/// Appends one JSON object per emitted record to the file named by the
/// PBS_BENCH_JSON environment variable; inert when the variable is unset.
/// Values that parse fully as numbers are emitted as JSON numbers, all
/// others as escaped strings.
class JsonEmitter {
 public:
  static JsonEmitter& Instance() {
    static JsonEmitter emitter;
    return emitter;
  }

  bool enabled() const { return file_ != nullptr; }

  /// Emits {"bench": <bench>, "mode": quick|full, "cpu": <features>,
  /// <key>: <value>, ...}. The "cpu" tag (cpu::FeatureString(), e.g.
  /// "clmul+avx2" or "portable") attributes every record to the hardware
  /// capability it ran under; scripts/collect_bench.py treats it as
  /// metadata, not identity, so runs remain comparable across machines.
  void Emit(const std::string& bench,
            const std::vector<std::pair<std::string, std::string>>& fields) {
    if (file_ == nullptr) return;
    std::string line = "{\"bench\":" + Quote(bench) + ",\"mode\":" +
                       Quote(FullMode() ? "full" : "quick") + ",\"cpu\":" +
                       Quote(cpu::FeatureString());
    for (const auto& [key, value] : fields) {
      line += "," + Quote(key) + ":" + ValueLiteral(value);
    }
    line += "}\n";
    std::fputs(line.c_str(), file_);
    std::fflush(file_);
  }

 private:
  JsonEmitter() {
    const char* path = std::getenv("PBS_BENCH_JSON");
    if (path != nullptr && path[0] != '\0') file_ = std::fopen(path, "a");
  }
  ~JsonEmitter() {
    if (file_ != nullptr) std::fclose(file_);
  }

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  // True iff `s` matches the JSON number grammar exactly:
  // -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?. strtod alone is too
  // permissive ("inf", "nan", hex, ".5", "5.", "+5" all parse but are
  // invalid JSON literals and would make collectors drop the record).
  static bool IsJsonNumber(const std::string& s) {
    size_t i = 0;
    const size_t n = s.size();
    const auto digits = [&] {
      const size_t start = i;
      while (i < n && s[i] >= '0' && s[i] <= '9') ++i;
      return i > start;
    };
    if (i < n && s[i] == '-') ++i;
    if (i < n && s[i] == '0') {
      ++i;  // A leading 0 must stand alone before '.'/'e'.
    } else {
      if (!digits()) return false;
    }
    if (i < n && s[i] == '.') {
      ++i;
      if (!digits()) return false;
    }
    if (i < n && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < n && (s[i] == '+' || s[i] == '-')) ++i;
      if (!digits()) return false;
    }
    return i == n && n > 0;
  }

  static std::string ValueLiteral(const std::string& value) {
    return IsJsonNumber(value) ? value : Quote(value);
  }

  std::FILE* file_ = nullptr;
};

/// Drop-in wrapper around ResultTable that additionally streams every row
/// to the JSON emitter under a stable bench name. The figure/table benches
/// use this so one PBS_BENCH_JSON run captures the whole sweep.
class Recorder {
 public:
  Recorder(std::string bench, std::vector<std::string> columns)
      : bench_(std::move(bench)), columns_(columns), table_(std::move(columns)) {}

  void AddRow(std::vector<std::string> cells) {
    std::vector<std::pair<std::string, std::string>> fields;
    const size_t n = std::min(columns_.size(), cells.size());
    fields.reserve(n);
    for (size_t i = 0; i < n; ++i) fields.emplace_back(columns_[i], cells[i]);
    JsonEmitter::Instance().Emit(bench_, fields);
    table_.AddRow(std::move(cells));
  }

  void Print() const { table_.Print(); }

 private:
  std::string bench_;
  std::vector<std::string> columns_;
  ResultTable table_;
};

}  // namespace pbs::bench

#endif  // PBS_BENCH_BENCH_COMMON_H_
