// Micro-benchmarks: BCH power-sum sketch encode / decode.
//
// Confirms the complexity story of the paper: per-element encoding is
// O(t) field ops, decoding is O(t^2) -- the reason PinSketch (t ~ 1.38 d)
// cannot scale and PBS (t ~ 13 per group) can.

#include <benchmark/benchmark.h>

#include <set>

#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/rng.h"

namespace pbs {
namespace {

std::vector<uint64_t> Distinct(const GF2m& f, int count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng.NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

void BM_SketchToggle(benchmark::State& state) {
  GF2m f(static_cast<int>(state.range(0)));
  const int t = static_cast<int>(state.range(1));
  PowerSumSketch sketch(f, t);
  uint64_t x = 1;
  for (auto _ : state) {
    sketch.Toggle(x);
    x = (x % f.order()) + 1;
  }
}
BENCHMARK(BM_SketchToggle)->Args({7, 13})->Args({11, 13})->Args({32, 13})
    ->Args({32, 138})->Args({32, 1380});

void BM_SketchDecode(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int errors = static_cast<int>(state.range(1));
  GF2m f(m);
  const int t = errors + errors / 3 + 1;
  PowerSumSketch sketch(f, t);
  for (uint64_t e : Distinct(f, errors, 42)) sketch.Toggle(e);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Decode());
  }
}
// Bitmap-sized decodes (the per-group PBS cost) vs universe-sized decodes
// (the PinSketch cost): the latter explodes quadratically.
BENCHMARK(BM_SketchDecode)->Args({7, 5})->Args({11, 5})->Args({11, 17})
    ->Args({32, 10})->Args({32, 100})->Args({32, 300});

void BM_SketchSerialize(benchmark::State& state) {
  GF2m f(11);
  PowerSumSketch sketch(f, 13);
  for (uint64_t e : Distinct(f, 10, 7)) sketch.Toggle(e);
  for (auto _ : state) {
    BitWriter w;
    sketch.Serialize(&w);
    benchmark::DoNotOptimize(w.bytes());
  }
}
BENCHMARK(BM_SketchSerialize);

}  // namespace
}  // namespace pbs
