// Micro-benchmarks: BCH power-sum sketch kernels (Recorder harness).
//
// Confirms the complexity story of the paper: per-element encoding is
// O(t) field ops, decoding is O(t^2) -- the reason PinSketch (t ~ 1.38 d)
// cannot scale and PBS (t ~ 13 per group) can. One table/JSON row per
// (kernel, path, m, t, d); the toggle rows are tagged with the arithmetic
// path they run on (log-table walk vs dispatched carry-less multiply), so
// the trajectory file distinguishes the kernels across PRs.

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pbs/bch/berlekamp_massey.h"
#include "pbs/bch/levinson.h"
#include "pbs/bch/pgz_decoder.h"
#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/cpu_features.h"
#include "pbs/common/rng.h"
#include "pbs/common/workspace.h"

namespace {

using pbs::GF2m;
using pbs::PowerSumSketch;
using pbs::Span;
using pbs::Workspace;
using pbs::Xoshiro256;

std::vector<uint64_t> Distinct(const GF2m& f, int count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng.NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

int main_impl() {
  const bool full = pbs::bench::FullMode();
  const double budget = full ? 0.6 : 0.15;
  std::printf("== BCH power-sum sketch micro-benchmarks ==\n");
  std::printf("mode=%s budget=%.2fs/case clmul_backend=%s\n\n",
              full ? "FULL" : "quick", budget,
              pbs::cpu::CarrylessMulBackend());

  pbs::bench::Recorder rec(
      "micro_bch", {"kernel", "path", "m", "t", "d", "ns_per_op", "Mops"});
  const auto add = [&rec](const char* kernel, const std::string& path, int m,
                          int t, int d, double ns) {
    rec.AddRow({kernel, path, std::to_string(m), std::to_string(t),
                std::to_string(d), pbs::FormatDouble(ns, 1), pbs::bench::FormatMops(ns)});
  };

  // ---- Sketch toggle: one element's odd power sums (O(t) field ops). ----
  // Bitmap-sized fields run the log-domain walk (gf2m.h OddPowerAccum);
  // universe-sized fields the dispatched carry-less path.
  {
    const struct {
      int m;
      int t;
    } cases[] = {{7, 13}, {11, 13}, {32, 13}, {32, 138}, {32, 1380}};
    for (const auto& c : cases) {
      GF2m f(c.m);
      PowerSumSketch sketch(f, c.t);
      uint64_t x = 1;
      add("sketch_toggle", pbs::bench::FieldPathLabel(f), c.m, c.t, 1,
          pbs::bench::TimeNs(
              [&] {
                sketch.Toggle(x);
                x = (x % f.order()) + 1;
              },
              budget));
    }
  }

  // ---- Sketch decode: locator solve + root search (O(t^2) + search). ----
  // Bitmap-sized decodes (the per-group PBS cost) vs universe-sized
  // decodes (the PinSketch cost): the latter explodes quadratically.
  {
    const struct {
      int m;
      int errors;
    } cases[] = {{7, 5}, {11, 5}, {11, 17}, {32, 10}, {32, 100}, {32, 300}};
    Workspace ws;
    std::vector<uint64_t> positions;
    for (const auto& c : cases) {
      GF2m f(c.m);
      const int t = c.errors + c.errors / 3 + 1;
      PowerSumSketch sketch(f, t);
      for (uint64_t e : Distinct(f, c.errors, 42)) sketch.Toggle(e);
      add("sketch_decode", pbs::bench::FieldPathLabel(f), c.m, t, c.errors,
          pbs::bench::TimeNs(
              [&] { (void)sketch.DecodeInto(&positions, ws); }, budget));
    }
  }

  // ---- Locator solvers head-to-head at the per-group shape. ----
  // t = 16 syndromes, v = 8 actual differences: the (n = 2047, t = 16)
  // group decode's algebraic core, isolated from binning and root search.
  {
    constexpr int m = 11;
    constexpr int t = 16;
    constexpr int v = 8;
    GF2m f(m);
    PowerSumSketch sketch(f, t);
    for (uint64_t e : Distinct(f, v, 7)) sketch.Toggle(e);
    // Full even+odd syndrome window S_1..S_2t from the sketch's odd rows
    // (S_2k = S_k^2 in characteristic 2).
    std::vector<uint64_t> syndromes(2 * t, 0);
    for (int k = 1; k <= 2 * t; ++k) {
      syndromes[k - 1] = (k % 2 == 1) ? sketch.odd_syndromes()[(k - 1) / 2]
                                      : f.Sqr(syndromes[k / 2 - 1]);
    }
    Workspace ws;
    std::vector<uint64_t> lambda(t + 1, 0);
    add("bm", "ws", m, t, v, pbs::bench::TimeNs([&] {
          (void)pbs::BerlekampMasseyWs(f, Span<const uint64_t>(syndromes), ws,
                                       Span<uint64_t>(lambda));
        }, budget));
    add("levinson", "ws", m, t, v, pbs::bench::TimeNs([&] {
          (void)pbs::LevinsonLocatorWs(f, Span<const uint64_t>(syndromes), v,
                                       ws, Span<uint64_t>(lambda));
        }, budget));
    add("pgz", "ws", m, t, v, pbs::bench::TimeNs([&] {
          (void)pbs::PgzLocatorWs(f, Span<const uint64_t>(syndromes), ws,
                                  Span<uint64_t>(lambda));
        }, budget));
  }

  // ---- Serialization (t * m bits through the bit writer). ----
  {
    GF2m f(11);
    PowerSumSketch sketch(f, 13);
    for (uint64_t e : Distinct(f, 10, 7)) sketch.Toggle(e);
    pbs::BitWriter w;
    add("sketch_serialize", "ws", 11, 13, 10, pbs::bench::TimeNs([&] {
          w.Clear();
          sketch.Serialize(&w);
        }, budget));
  }

  rec.Print();
  std::printf(
      "\nsketch_toggle is the per-element encode cost (O(t)); sketch_decode "
      "the\nper-group recovery cost (O(t^2) solve + root search).\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
