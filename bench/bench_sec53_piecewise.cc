// Section 5.3 / Appendix G: expected fraction of the d distinct elements
// reconciled in each round ("piecewise reconciliability"), both from the
// Markov model and measured empirically.
//
// Paper reference (d=1000, n=127, t=13, delta=5, p0=0.99):
// 0.962 / 0.0380 / 3.61e-4 / 2.86e-6 for rounds 1-4.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "pbs/core/pbs_endpoints.h"
#include "pbs/markov/piecewise.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/workload.h"

using namespace pbs;

int main() {
  std::printf("== Section 5.3: piecewise reconciliability ==\n\n");

  std::printf("Analytical (d=1000, n=127, t=13, g=200):\n");
  const auto fractions = ExpectedRoundFractions(127, 13, 1000, 200, 4);
  bench::Recorder analytic("sec53_piecewise_analytic",
                           {"round", "expected_fraction", "paper"});
  const char* paper[] = {"0.962", "0.0380", "3.61e-04", "2.86e-06"};
  for (int k = 0; k < 4; ++k) {
    analytic.AddRow({std::to_string(k + 1),
                     FormatScientific(fractions[k], 3), paper[k]});
  }
  analytic.Print();

  // Empirical: drive the endpoints round by round and count how many truth
  // elements have been recovered after each round.
  const int instances = bench::FullMode() ? 200 : 30;
  const size_t set_size = bench::FullMode() ? 1000000 : 100000;
  std::printf("\nEmpirical (|A|=%zu, %d instances, d=1000, d known):\n",
              set_size, instances);
  std::vector<double> recovered_by_round(5, 0.0);
  for (int i = 0; i < instances; ++i) {
    SetPair pair = GenerateSetPair(set_size, 1000, 32, 0x5EC53 + i);
    PbsConfig config;
    config.max_rounds = 4;
    PbsAlice alice(pair.a, config, 100 + i);
    PbsBob bob(pair.b, config, 100 + i);
    alice.SetDifferenceEstimate(1000);
    bob.SetDifferenceEstimate(1000);
    std::unordered_set<uint64_t> truth(pair.truth_diff.begin(),
                                       pair.truth_diff.end());
    bool finished = false;
    for (int round = 1; round <= 4 && !finished; ++round) {
      finished = alice.HandleRoundReply(
          bob.HandleRoundRequest(alice.MakeRoundRequest()));
      size_t correct = 0;
      for (uint64_t e : alice.Difference()) {
        if (truth.count(e)) ++correct;
      }
      recovered_by_round[round] += static_cast<double>(correct) / 1000.0;
      if (finished) {
        for (int rest = round + 1; rest <= 4; ++rest) {
          recovered_by_round[rest] += static_cast<double>(correct) / 1000.0;
        }
      }
    }
  }
  bench::Recorder empirical("sec53_piecewise_empirical",
                            {"round", "measured_fraction_in_round"});
  double prev = 0.0;
  for (int round = 1; round <= 4; ++round) {
    const double cum = recovered_by_round[round] / instances;
    empirical.AddRow({std::to_string(round), FormatScientific(cum - prev, 3)});
    prev = cum;
  }
  empirical.Print();
  std::printf(
      "\nNote: the plan used here is the optimizer's (n=127, t=13); the "
      "empirical round-1 fraction should sit near the analytical 0.96.\n");
  return 0;
}
