// Hot-path microbench: allocating (seed-style) vs Workspace decode paths.
//
// Measures the per-unit PBS round cycle -- parity-bitmap binning, power-sum
// sketching, wire round-trip, BCH decode, element recovery -- in two
// implementations of the same arithmetic:
//   alloc: fresh std::vector-backed objects per call, the shape of the code
//          before the Workspace refactor (still exercised via the
//          convenience wrappers Build/ToSketch/Decode);
//   ws:    reused buffers + pbs::Workspace scratch (BuildInto/ToSketchInto/
//          DecodeInto), the production hot path, allocation-free in steady
//          state (tests/core/hotpath_alloc_test.cc).
// Also isolates the BCH decode kernel and the PGZ reference solver.
//
// Output: one table row per (kernel, path, n, t, d) with ns/op and op/s;
// JSON via PBS_BENCH_JSON (see docs/BENCHMARKS.md).

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pbs/bch/pgz_decoder.h"
#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/bitio.h"
#include "pbs/common/workspace.h"
#include "pbs/core/parity_bitmap.h"
#include "pbs/gf/gf2m.h"
#include "pbs/hash/hash_family.h"
#include "pbs/sim/metrics.h"

namespace {

using pbs::BitReader;
using pbs::BitWriter;
using pbs::GF2m;
using pbs::HashFamily;
using pbs::ParityBitmap;
using pbs::PowerSumSketch;
using pbs::SaltedHash;
using pbs::Workspace;

struct Case {
  int m;  // Field degree; n = 2^m - 1 bins.
  int t;  // BCH capacity.
  int d;  // Planted differences per unit.
};

// Runs `op` repeatedly for ~`budget_seconds` of wall clock (after untimed
// warm-up passes) split over several repetitions, and returns the best
// (minimum) ns per operation -- the repetition least disturbed by
// scheduling noise.
double TimeNs(const std::function<void()>& op, double budget_seconds) {
  using Clock = std::chrono::steady_clock;
  op();  // Warm-up: sizes every reused buffer, loads tables.
  op();
  constexpr int kRepetitions = 5;
  double best_ns = 1e18;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    int iters = 0;
    const auto start = Clock::now();
    double elapsed = 0.0;
    do {
      for (int i = 0; i < 16; ++i) op();
      iters += 16;
      elapsed = std::chrono::duration<double>(Clock::now() - start).count();
    } while (elapsed < budget_seconds / kRepetitions);
    best_ns = std::min(best_ns, elapsed * 1e9 / iters);
  }
  return best_ns;
}

std::string FormatOps(double ns) {
  return pbs::FormatDouble(1e9 / ns / 1e6, 3);  // Million ops per second.
}

int main_impl() {
  const bool full = pbs::bench::FullMode();
  const double budget = full ? 1.0 : 0.25;
  std::printf("== Hot path: allocating vs workspace decode cycle ==\n");
  std::printf("mode=%s budget=%.2fs/case\n\n", full ? "FULL" : "quick",
              budget);

  pbs::bench::Recorder rec(
      "hotpath", {"kernel", "path", "n", "t", "d", "ns_per_op", "Mops"});

  const std::vector<Case> cases = {{8, 8, 4}, {9, 12, 6}, {11, 16, 8}};
  const HashFamily family(0xBE7C4);

  for (const Case& c : cases) {
    const GF2m field(c.m);
    const int n = static_cast<int>(field.order());
    // One unit's elements: shared base + d Bob-only differences. Sized at
    // the paper's delta ~ 5 distinct elements per group times a few shared.
    std::vector<uint64_t> alice, bob;
    for (uint64_t e = 1; e <= 30; ++e) {
      alice.push_back(e * 2654435761u % 0xFFFFFFFFu + 1);
      bob.push_back(e * 2654435761u % 0xFFFFFFFFu + 1);
    }
    for (uint64_t e = 1; e <= static_cast<uint64_t>(c.d); ++e) {
      bob.push_back(e * 40503u + 7);
    }

    uint64_t round = 0;

    // ---- Full round cycle, allocating path (pre-refactor shape). ----
    const std::function<void()> cycle_alloc = [&] {
      const SaltedHash h(family.Salt(HashFamily::kBinPartition, ++round));
      BitWriter w;
      const ParityBitmap pb_a = ParityBitmap::Build(alice, h, n);
      pb_a.ToSketch(field, c.t).Serialize(&w);
      const std::vector<uint8_t> wire = w.TakeBytes();
      BitReader r(wire);
      PowerSumSketch from_wire = PowerSumSketch::Deserialize(&r, field, c.t);
      const ParityBitmap pb_b = ParityBitmap::Build(bob, h, n);
      PowerSumSketch diff = pb_b.ToSketch(field, c.t);
      diff.Merge(from_wire);
      const auto positions = diff.Decode();
      if (positions.has_value()) {
        std::vector<uint64_t> recovered;
        for (uint64_t pos : *positions) {
          const uint64_t s = pb_a.xor_sum[pos] ^ pb_b.xor_sum[pos];
          if (s != 0 && BinIndex(s, h, n) == pos) recovered.push_back(s);
        }
      }
    };

    // ---- Full round cycle, workspace path (production shape). ----
    Workspace ws;
    ParityBitmap pb_a, pb_b;
    PowerSumSketch sk_a(field, c.t), sk_wire(field, c.t), sk_diff(field, c.t);
    BitWriter writer;
    std::vector<uint64_t> positions, recovered;
    const std::function<void()> cycle_ws = [&] {
      const SaltedHash h(family.Salt(HashFamily::kBinPartition, ++round));
      ParityBitmap::BuildInto(alice, h, n, &pb_a);
      pb_a.ToSketchInto(&sk_a);
      writer.Clear();
      sk_a.Serialize(&writer);
      BitReader r(writer.bytes());
      sk_wire.ReadFrom(&r);
      ParityBitmap::BuildInto(bob, h, n, &pb_b);
      pb_b.ToSketchInto(&sk_diff);
      sk_diff.Merge(sk_wire);
      if (sk_diff.DecodeInto(&positions, ws)) {
        recovered.clear();
        for (uint64_t pos : positions) {
          const uint64_t s = pb_a.xor_sum[pos] ^ pb_b.xor_sum[pos];
          if (s != 0 && BinIndex(s, h, n) == pos) recovered.push_back(s);
        }
      }
    };

    // ---- BCH decode kernel only (fixed difference sketch). ----
    PowerSumSketch planted(field, c.t);
    for (uint64_t e = 1; e <= static_cast<uint64_t>(c.d); ++e) {
      planted.Toggle(e * 37 % field.order() + 1);
    }
    const std::function<void()> decode_alloc = [&] { (void)planted.Decode(); };
    const std::function<void()> decode_ws = [&] { (void)planted.DecodeInto(&positions, ws); };

    // ---- PGZ reference solver (wrapper vs in-place workspace). ----
    std::vector<uint64_t> syndromes(2 * c.t, 0);
    for (int k = 1; k <= 2 * c.t; ++k) {
      syndromes[k - 1] = (k % 2 == 1)
                             ? planted.odd_syndromes()[(k - 1) / 2]
                             : field.Sqr(syndromes[k / 2 - 1]);
    }
    std::vector<uint64_t> lambda(c.t + 1, 0);
    const std::function<void()> pgz_alloc = [&] { (void)pbs::PgzLocator(field, syndromes); };
    const std::function<void()> pgz_ws = [&] {
      (void)pbs::PgzLocatorWs(field, syndromes, ws, lambda);
    };

    const struct {
      const char* kernel;
      const char* path;
      const std::function<void()>* op;
    } rows[] = {
        {"round_cycle", "alloc", &cycle_alloc},
        {"round_cycle", "ws", &cycle_ws},
        {"bch_decode", "alloc", &decode_alloc},
        {"bch_decode", "ws", &decode_ws},
        {"pgz", "alloc", &pgz_alloc},
        {"pgz", "ws", &pgz_ws},
    };
    for (const auto& row : rows) {
      const double ns = TimeNs(*row.op, budget);
      rec.AddRow({row.kernel, row.path, std::to_string(n),
                  std::to_string(c.t), std::to_string(c.d),
                  pbs::FormatDouble(ns, 1), FormatOps(ns)});
    }
  }

  rec.Print();
  std::printf(
      "\nround_cycle = bin + sketch + wire + BCH-decode + recover for one "
      "unit;\nws rows reuse buffers through pbs::Workspace, alloc rows "
      "rebuild them per call.\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
