// Hot-path microbench: allocating (seed-style) vs Workspace decode paths.
//
// Measures the per-unit PBS round cycle -- parity-bitmap binning, power-sum
// sketching, wire round-trip, BCH decode, element recovery -- in two
// implementations of the same arithmetic:
//   alloc: fresh std::vector-backed objects per call, the shape of the code
//          before the Workspace refactor (still exercised via the
//          convenience wrappers Build/ToSketch/Decode);
//   ws:    reused buffers + pbs::Workspace scratch (BuildInto/ToSketchInto/
//          DecodeInto), the production hot path, allocation-free in steady
//          state (tests/core/hotpath_alloc_test.cc).
// Also isolates the BCH decode kernel and the PGZ reference solver.
//
// Output: one table row per (kernel, path, n, t, d, threads) with ns/op
// and op/s; JSON via PBS_BENCH_JSON (see docs/BENCHMARKS.md). The
// pbs_round_cycle rows drive the real PbsAlice/PbsBob endpoints over a
// multi-group plan at decode_threads = 1/2/4 -- the per-group parallel
// decode records (near-linear scaling expected on idle multi-core
// hardware; single-core machines record the pool's overhead instead).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pbs/bch/pgz_decoder.h"
#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/bitio.h"
#include "pbs/common/workspace.h"
#include "pbs/core/parity_bitmap.h"
#include "pbs/core/pbs_endpoints.h"
#include "pbs/gf/gf2m.h"
#include "pbs/hash/hash_family.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/workload.h"

namespace {

using pbs::BitReader;
using pbs::BitWriter;
using pbs::GF2m;
using pbs::HashFamily;
using pbs::ParityBitmap;
using pbs::PowerSumSketch;
using pbs::SaltedHash;
using pbs::Workspace;
using pbs::bench::TimeNs;

struct Case {
  int m;  // Field degree; n = 2^m - 1 bins.
  int t;  // BCH capacity.
  int d;  // Planted differences per unit.
};

int main_impl() {
  const bool full = pbs::bench::FullMode();
  const double budget = full ? 1.0 : 0.25;
  std::printf("== Hot path: allocating vs workspace decode cycle ==\n");
  std::printf("mode=%s budget=%.2fs/case\n\n", full ? "FULL" : "quick",
              budget);

  pbs::bench::Recorder rec(
      "hotpath",
      {"kernel", "path", "n", "t", "d", "threads", "ns_per_op", "Mops"});

  const std::vector<Case> cases = {{8, 8, 4}, {9, 12, 6}, {11, 16, 8}};
  const HashFamily family(0xBE7C4);

  for (const Case& c : cases) {
    const GF2m field(c.m);
    const int n = static_cast<int>(field.order());
    // One unit's elements: shared base + d Bob-only differences. Sized at
    // the paper's delta ~ 5 distinct elements per group times a few shared.
    std::vector<uint64_t> alice, bob;
    for (uint64_t e = 1; e <= 30; ++e) {
      alice.push_back(e * 2654435761u % 0xFFFFFFFFu + 1);
      bob.push_back(e * 2654435761u % 0xFFFFFFFFu + 1);
    }
    for (uint64_t e = 1; e <= static_cast<uint64_t>(c.d); ++e) {
      bob.push_back(e * 40503u + 7);
    }

    uint64_t round = 0;

    // ---- Full round cycle, allocating path (pre-refactor shape). ----
    const std::function<void()> cycle_alloc = [&] {
      const SaltedHash h(family.Salt(HashFamily::kBinPartition, ++round));
      BitWriter w;
      const ParityBitmap pb_a = ParityBitmap::Build(alice, h, n);
      pb_a.ToSketch(field, c.t).Serialize(&w);
      const std::vector<uint8_t> wire = w.TakeBytes();
      BitReader r(wire);
      PowerSumSketch from_wire = PowerSumSketch::Deserialize(&r, field, c.t);
      const ParityBitmap pb_b = ParityBitmap::Build(bob, h, n);
      PowerSumSketch diff = pb_b.ToSketch(field, c.t);
      diff.Merge(from_wire);
      const auto positions = diff.Decode();
      if (positions.has_value()) {
        std::vector<uint64_t> recovered;
        for (uint64_t pos : *positions) {
          const uint64_t s = pb_a.xor_sum[pos] ^ pb_b.xor_sum[pos];
          if (s != 0 && BinIndex(s, h, n) == pos) recovered.push_back(s);
        }
      }
    };

    // ---- Full round cycle, workspace path (production shape). ----
    Workspace ws;
    ParityBitmap pb_a, pb_b;
    PowerSumSketch sk_a(field, c.t), sk_wire(field, c.t), sk_diff(field, c.t);
    BitWriter writer;
    std::vector<uint64_t> positions, recovered;
    const std::function<void()> cycle_ws = [&] {
      const SaltedHash h(family.Salt(HashFamily::kBinPartition, ++round));
      ParityBitmap::BuildInto(alice, h, n, &pb_a);
      pb_a.ToSketchInto(&sk_a);
      writer.Clear();
      sk_a.Serialize(&writer);
      BitReader r(writer.bytes());
      sk_wire.ReadFrom(&r);
      ParityBitmap::BuildInto(bob, h, n, &pb_b);
      pb_b.ToSketchInto(&sk_diff);
      sk_diff.Merge(sk_wire);
      if (sk_diff.DecodeInto(&positions, ws)) {
        recovered.clear();
        for (uint64_t pos : positions) {
          const uint64_t s = pb_a.xor_sum[pos] ^ pb_b.xor_sum[pos];
          if (s != 0 && BinIndex(s, h, n) == pos) recovered.push_back(s);
        }
      }
    };

    // ---- BCH decode kernel only (fixed difference sketch). ----
    PowerSumSketch planted(field, c.t);
    for (uint64_t e = 1; e <= static_cast<uint64_t>(c.d); ++e) {
      planted.Toggle(e * 37 % field.order() + 1);
    }
    const std::function<void()> decode_alloc = [&] { (void)planted.Decode(); };
    const std::function<void()> decode_ws = [&] { (void)planted.DecodeInto(&positions, ws); };

    // ---- PGZ reference solver (wrapper vs in-place workspace). ----
    std::vector<uint64_t> syndromes(2 * c.t, 0);
    for (int k = 1; k <= 2 * c.t; ++k) {
      syndromes[k - 1] = (k % 2 == 1)
                             ? planted.odd_syndromes()[(k - 1) / 2]
                             : field.Sqr(syndromes[k / 2 - 1]);
    }
    std::vector<uint64_t> lambda(c.t + 1, 0);
    const std::function<void()> pgz_alloc = [&] { (void)pbs::PgzLocator(field, syndromes); };
    const std::function<void()> pgz_ws = [&] {
      (void)pbs::PgzLocatorWs(field, syndromes, ws, lambda);
    };

    const struct {
      const char* kernel;
      const char* path;
      const std::function<void()>* op;
    } rows[] = {
        {"round_cycle", "alloc", &cycle_alloc},
        {"round_cycle", "ws", &cycle_ws},
        {"bch_decode", "alloc", &decode_alloc},
        {"bch_decode", "ws", &decode_ws},
        {"pgz", "alloc", &pgz_alloc},
        {"pgz", "ws", &pgz_ws},
    };
    for (const auto& row : rows) {
      const double ns = TimeNs(*row.op, budget);
      rec.AddRow({row.kernel, row.path, std::to_string(n),
                  std::to_string(c.t), std::to_string(c.d), "1",
                  pbs::FormatDouble(ns, 1), pbs::bench::FormatMops(ns)});
    }
  }

  // ---- Endpoint rounds over a multi-group plan: parallel decode. ----
  // One op = the complete multi-round request/reply loop of a fresh
  // endpoint pair. Construction, planning, and the pool spawn happen
  // OUTSIDE the timed region (they are per-session setup, not per-round
  // work), so the threads=N rows isolate what decode_threads actually
  // parallelizes: the per-group encode/decode phases of every round.
  // Reported is the best rep (least scheduler noise); near-linear scaling
  // needs idle multi-core hardware -- single-core machines record the
  // pool's fork/join overhead instead.
  {
    const int d = full ? 512 : 256;
    const int reps = full ? 40 : 15;
    const pbs::SetPair pair =
        pbs::GenerateSetPair(4000, static_cast<size_t>(d), 32, 0x9A5EED);
    std::vector<uint64_t> truth = pair.truth_diff;
    std::sort(truth.begin(), truth.end());
    for (int threads : {1, 2, 4}) {
      pbs::PbsConfig cfg;
      cfg.decode_threads = threads;
      const uint64_t seed = 0xB0B;
      int plan_n = 0;
      int plan_t = 0;
      bool ok = true;
      double best_ns = 1e18;
      std::vector<uint8_t> req, reply;
      for (int rep = 0; rep < reps; ++rep) {
        pbs::PbsAlice alice(pair.a, cfg, seed);
        pbs::PbsBob bob(pair.b, cfg, seed);
        alice.SetDifferenceEstimate(d);
        bob.SetDifferenceEstimate(d);
        const auto start = std::chrono::steady_clock::now();
        for (int r = 0; r < cfg.max_rounds && !alice.finished(); ++r) {
          alice.MakeRoundRequest(&req);
          bob.HandleRoundRequest(req, &reply);
          alice.HandleRoundReply(reply);
        }
        const auto stop = std::chrono::steady_clock::now();
        best_ns = std::min(
            best_ns,
            std::chrono::duration<double, std::nano>(stop - start).count());
        plan_n = alice.plan().params.n;
        plan_t = alice.plan().params.t;
        ok = ok && alice.finished();
        auto diff = alice.Difference();
        std::sort(diff.begin(), diff.end());
        ok = ok && diff == truth;
      }
      if (!ok) {
        std::fprintf(stderr,
                     "FAIL: threads=%d endpoint reconcile diverged from the "
                     "planted difference\n",
                     threads);
        return 1;
      }
      rec.AddRow({"pbs_round_cycle", "endpoints", std::to_string(plan_n),
                  std::to_string(plan_t), std::to_string(d),
                  std::to_string(threads), pbs::FormatDouble(best_ns, 1),
                  pbs::bench::FormatMops(best_ns)});
    }
  }

  rec.Print();
  std::printf(
      "\nround_cycle = bin + sketch + wire + BCH-decode + recover for one "
      "unit;\nws rows reuse buffers through pbs::Workspace, alloc rows "
      "rebuild them per call.\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
