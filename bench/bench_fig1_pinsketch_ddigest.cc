// Figure 1 (a-d): PBS vs PinSketch vs D.Digest at a target success rate of
// 0.99 -- success rate, communication overhead, encoding time, decoding
// time, as functions of the set-difference cardinality d.
//
// Paper reference points (|A| = 10^6, i7-9800X):
//  * all schemes' comm overhead scales ~linearly in d;
//  * D.Digest ~ 6x the minimum, PBS 2.13-2.87x, PinSketch 1.38x;
//  * PinSketch decoding blows up as O(d^2) (3 orders of magnitude slower
//    than PBS at d = 10^4) and could not be run past d = 3*10^4.

#include <cstdio>

#include "bench_common.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  const auto scale = bench::DefaultScale();
  bench::PrintHeader("Figure 1: PBS vs PinSketch vs D.Digest (p0 = 0.99)",
                     scale);

  bench::Recorder table("fig1_pinsketch_ddigest", {"d", "scheme", "success", "KB", "xMin", "encode_s",
                     "decode_s", "rounds"});
  for (const std::string scheme : {"pbs", "pinsketch", "ddigest"}) {
    const auto& grid =
        scheme == "pinsketch" ? scale.slow_d_grid : scale.d_grid;
    for (size_t d : grid) {
      ExperimentConfig config;
      config.set_size = scale.set_size;
      config.d = d;
      config.instances = scheme == "pinsketch"
                             ? bench::SlowSchemeInstances(scale)
                             : scale.instances;
      config.threads = 0;
      config.seed = 0xF161 + d;
      config.pbs.p0 = 0.99;
      const RunStats stats = RunScheme(scheme, config);
      table.AddRow({std::to_string(d),
                    SchemeRegistry::Instance().DisplayName(scheme),
                    FormatDouble(stats.success_rate, 3),
                    FormatDouble(stats.mean_bytes / 1024.0, 3),
                    FormatDouble(stats.overhead_ratio, 2),
                    FormatDouble(stats.mean_encode_seconds, 4),
                    FormatDouble(stats.mean_decode_seconds, 5),
                    FormatDouble(stats.mean_rounds, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nShape checks vs paper: D.Digest xMin ~ 6, PBS xMin in [2.1, 2.9], "
      "PinSketch xMin ~ 1.38; PinSketch decode_s explodes with d.\n");
  return 0;
}
