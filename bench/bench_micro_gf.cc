// Micro-benchmarks: GF(2^m) field arithmetic (google-benchmark).
//
// The table path (m <= 16) vs the clmul path (m > 16), plus the polynomial
// primitives the BCH decoders are built from.

#include <benchmark/benchmark.h>

#include "pbs/common/rng.h"
#include "pbs/gf/gf2m.h"
#include "pbs/gf/gfpoly.h"

namespace pbs {
namespace {

void BM_FieldMul(benchmark::State& state) {
  GF2m f(static_cast<int>(state.range(0)));
  Xoshiro256 rng(1);
  const uint64_t a = rng.NextBounded(f.order()) + 1;
  uint64_t b = rng.NextBounded(f.order()) + 1;
  for (auto _ : state) {
    b = f.Mul(a, b) | 1;
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_FieldMul)->Arg(7)->Arg(11)->Arg(16)->Arg(32)->Arg(63);

void BM_FieldInv(benchmark::State& state) {
  GF2m f(static_cast<int>(state.range(0)));
  Xoshiro256 rng(2);
  uint64_t a = rng.NextBounded(f.order()) + 1;
  for (auto _ : state) {
    a = f.Inv(a) | 1;
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_FieldInv)->Arg(7)->Arg(11)->Arg(32)->Arg(63);

void BM_PolyEval(benchmark::State& state) {
  GF2m f(11);
  Xoshiro256 rng(3);
  std::vector<uint64_t> coeffs(state.range(0));
  for (auto& c : coeffs) c = rng.NextBounded(f.order()) + 1;
  GFPoly p(f, coeffs);
  uint64_t x = 5;
  for (auto _ : state) {
    x = (p.Eval(x) | 1) & f.order();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_PolyEval)->Arg(5)->Arg(13)->Arg(40);

void BM_PolyMul(benchmark::State& state) {
  GF2m f(32);
  Xoshiro256 rng(4);
  std::vector<uint64_t> ca(state.range(0)), cb(state.range(0));
  for (auto& c : ca) c = rng.NextBounded(f.order()) + 1;
  for (auto& c : cb) c = rng.NextBounded(f.order()) + 1;
  GFPoly a(f, ca), b(f, cb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Mul(b));
  }
}
BENCHMARK(BM_PolyMul)->Arg(13)->Arg(64);

}  // namespace
}  // namespace pbs
