// Micro-benchmarks: GF(2^m) field arithmetic kernels (Recorder harness).
//
// One table/JSON row per (kernel, path, m, size): the table path (m <= 16)
// vs the dispatched carry-less path (m > 16), the log-domain batch kernels
// against their scalar per-element loops, the hardware vs portable
// carry-less multiply, and Horner vs incremental Chien search -- the
// kernel records scripts/collect_bench.py tracks across PRs (path
// "horner" vs "incremental", "portable" vs "clmul"; see docs/BENCHMARKS.md).

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pbs/common/cpu_features.h"
#include "pbs/common/rng.h"
#include "pbs/common/workspace.h"
#include "pbs/gf/gf2m.h"
#include "pbs/gf/gfpoly.h"
#include "pbs/gf/roots.h"

namespace {

using pbs::GF2m;
using pbs::GFPoly;
using pbs::Span;
using pbs::Workspace;
using pbs::Xoshiro256;

int main_impl() {
  const bool full = pbs::bench::FullMode();
  const double budget = full ? 0.6 : 0.15;
  std::printf("== GF(2^m) kernel micro-benchmarks ==\n");
  std::printf("mode=%s budget=%.2fs/case clmul_backend=%s\n\n",
              full ? "FULL" : "quick", budget,
              pbs::cpu::CarrylessMulBackend());

  pbs::bench::Recorder rec(
      "micro_gf", {"kernel", "path", "m", "size", "ns_per_op", "Mops"});
  const auto add = [&rec](const char* kernel, const std::string& path, int m,
                          size_t size, double ns) {
    rec.AddRow({kernel, path, std::to_string(m), std::to_string(size),
                pbs::FormatDouble(ns, 1), pbs::bench::FormatMops(ns)});
  };

  // ---- Single-element Mul / Inv: table vs dispatched carry-less. ----
  for (int m : {7, 11, 16, 32, 63}) {
    GF2m f(m);
    Xoshiro256 rng(1);
    const uint64_t a = rng.NextBounded(f.order()) + 1;
    uint64_t b = rng.NextBounded(f.order()) + 1;
    add("field_mul", pbs::bench::FieldPathLabel(f), m, 1,
        pbs::bench::TimeNs([&] { b = f.Mul(a, b) | 1; }, budget));
    uint64_t v = rng.NextBounded(f.order()) + 1;
    add("field_inv", pbs::bench::FieldPathLabel(f), m, 1,
        pbs::bench::TimeNs([&] { v = f.Inv(v) | 1; }, budget));
  }

  // ---- Carry-less MulMod: hardware dispatch vs portable fallback. ----
  // The table-free path multiplies through gf2x; both kernels are always
  // compiled (modulo PBS_DISABLE_CLMUL), so both are recorded even when
  // dispatch would pick only one.
  for (int m : {17, 32, 63}) {
    GF2m f(m);
    Xoshiro256 rng(2);
    const uint64_t modulus = f.modulus();
    const uint64_t a = rng.NextBounded(f.order()) + 1;
    uint64_t b = rng.NextBounded(f.order()) + 1;
    add("mulmod", pbs::cpu::CarrylessMulBackend(), m, 1,
        pbs::bench::TimeNs(
            [&] { b = pbs::gf2x::MulMod(a, b, modulus) | 1; }, budget));
    uint64_t c = rng.NextBounded(f.order()) + 1;
    add("mulmod", "portable", m, 1,
        pbs::bench::TimeNs(
            [&] { c = pbs::gf2x::MulModPortable(a, c, modulus) | 1; },
            budget));
  }

  // ---- Log-domain batch kernels vs scalar per-element loops. ----
  {
    constexpr int m = 11;
    constexpr size_t size = 64;
    GF2m f(m);
    Xoshiro256 rng(3);
    std::vector<uint64_t> src(size), dst(size, 0);
    for (auto& x : src) x = rng.NextBounded(f.order()) + 1;
    const uint64_t c = rng.NextBounded(f.order()) + 1;
    add("mul_many_accum", "scalar", m, size, pbs::bench::TimeNs([&] {
          for (size_t i = 0; i < size; ++i) dst[i] ^= f.Mul(c, src[i]);
        }, budget));
    add("mul_many_accum", "batch", m, size, pbs::bench::TimeNs([&] {
          f.MulManyAccum(c, Span<const uint64_t>(src), Span<uint64_t>(dst));
        }, budget));

    std::vector<uint64_t> bvec(size);
    for (auto& x : bvec) x = rng.NextBounded(f.order()) + 1;
    uint64_t sink = 0;
    add("dot", "scalar", m, size, pbs::bench::TimeNs([&] {
          uint64_t acc = 0;
          for (size_t i = 0; i < size; ++i) acc ^= f.Mul(src[i], bvec[i]);
          sink ^= acc;
        }, budget));
    add("dot", "batch", m, size, pbs::bench::TimeNs([&] {
          sink ^= f.Dot(Span<const uint64_t>(src), Span<const uint64_t>(bvec));
        }, budget));

    std::vector<uint64_t> powers(size);
    const uint64_t base = rng.NextBounded(f.order()) + 1;
    add("pow_table", "scalar", m, size, pbs::bench::TimeNs([&] {
          powers[0] = 1;
          for (size_t i = 1; i < size; ++i) powers[i] = f.Mul(powers[i - 1], base);
        }, budget));
    add("pow_table", "batch", m, size, pbs::bench::TimeNs([&] {
          f.PowTableInto(base, Span<uint64_t>(powers));
        }, budget));
    if (sink == 0xDEAD) std::printf(" ");  // Defeat dead-code elimination.
  }

  // ---- Chien search: Horner reference vs incremental kernel. ----
  // A degree-t locator with t planted roots, the per-group decode shape
  // (n = 2^m - 1 candidate points, early exit once all roots found).
  for (int m : {8, 11}) {
    for (int deg : {8, 16}) {
      GF2m f(m);
      Xoshiro256 rng(static_cast<uint64_t>(m * 100 + deg));
      GFPoly locator = GFPoly::One(f);
      std::vector<bool> used(f.order() + 1, false);
      for (int planted = 0; planted < deg;) {
        const uint64_t r = rng.NextBounded(f.order()) + 1;
        if (used[r]) continue;
        used[r] = true;
        locator = locator.Mul(GFPoly(f, {r, 1}));
        ++planted;
      }
      const std::vector<uint64_t>& coeffs = locator.coeffs();
      std::vector<uint64_t> out(deg);
      Workspace ws;
      int found = 0;
      add("chien", "horner", m, deg, pbs::bench::TimeNs([&] {
            found = pbs::ChienSearchInto(f, Span<const uint64_t>(coeffs),
                                         Span<uint64_t>(out));
          }, budget));
      add("chien", "incremental", m, deg, pbs::bench::TimeNs([&] {
            found = pbs::ChienSearchIncremental(
                f, Span<const uint64_t>(coeffs), ws, Span<uint64_t>(out));
          }, budget));
      if (found != deg) {
        std::fprintf(stderr, "FAIL: chien m=%d deg=%d found %d roots\n", m,
                     deg, found);
        return 1;
      }
    }
  }

  // ---- Polynomial primitives (unchanged shape, for the trajectory). ----
  {
    GF2m f(11);
    Xoshiro256 rng(4);
    for (size_t size : {5u, 13u, 40u}) {
      std::vector<uint64_t> coeffs(size);
      for (auto& c : coeffs) c = rng.NextBounded(f.order()) + 1;
      GFPoly p(f, coeffs);
      uint64_t x = 5;
      add("poly_eval", "table", 11, size, pbs::bench::TimeNs([&] {
            x = (p.Eval(x) | 1) & f.order();
          }, budget));
    }
  }

  rec.Print();
  std::printf(
      "\nmulmod rows record both dispatch paths; chien rows compare the "
      "Horner\nreference against the incremental stride kernel the decode "
      "hot path uses.\n");
  return 0;
}

}  // namespace

int main() { return main_impl(); }
