// Figure 3 (a-d): PBS vs PinSketch-with-partition (PinSketch/WP) at a
// target success rate of 0.99.
//
// Paper reference: grouping fixes PinSketch's decoding cost, but its
// per-group safety margin costs (t - delta) log|U| instead of PBS's
// (t - delta) log n -- 3-4x more -- so PBS wins on communication while
// matching computation.

#include <cstdio>

#include "bench_common.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  const auto scale = bench::DefaultScale();
  bench::PrintHeader("Figure 3: PBS vs PinSketch/WP (p0 = 0.99)", scale);

  bench::Recorder table("fig3_pinsketch_wp", {"d", "scheme", "success", "KB", "xMin", "encode_s",
                     "decode_s", "rounds"});
  for (const std::string scheme : {"pbs", "pinsketch-wp"}) {
    for (size_t d : scale.d_grid) {
      ExperimentConfig config;
      config.set_size = scale.set_size;
      config.d = d;
      config.instances = scale.instances;
      config.threads = 0;
      config.seed = 0xF163 + d;
      const RunStats stats = RunScheme(scheme, config);
      table.AddRow({std::to_string(d),
                    SchemeRegistry::Instance().DisplayName(scheme),
                    FormatDouble(stats.success_rate, 3),
                    FormatDouble(stats.mean_bytes / 1024.0, 3),
                    FormatDouble(stats.overhead_ratio, 2),
                    FormatDouble(stats.mean_encode_seconds, 4),
                    FormatDouble(stats.mean_decode_seconds, 5),
                    FormatDouble(stats.mean_rounds, 2)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: PinSketch/WP KB > PBS KB at every d "
      "(the safety margin costs log|U| vs log n per unit).\n");
  return 0;
}
