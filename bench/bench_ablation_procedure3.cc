// Ablation: the Procedure-3 sub-universe check (Section 2.3).
//
// Type (II) exceptions hand Alice a "fake distinct element" (the XOR of
// >= 3 colliding distinct elements). The check h(s) == i discards fakes at
// zero communication cost; without it, fakes enter D-hat, poison the
// checksum, and must be unwound in later rounds. This bench forces heavy
// collision pressure (one group, small bitmap) and compares rounds/success
// with the check on and off.

#include <cstdio>

#include "bench_common.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  const int instances = bench::FullMode() ? 400 : 60;
  std::printf("== Ablation: Procedure-3 sub-universe check ==\n");
  std::printf(
      "forced collision pressure: d=60 known, one group (n=63 bitmap), "
      "%d instances\n\n",
      instances);

  bench::Recorder table("ablation_procedure3", 
      {"check", "success@r<=8", "mean_rounds", "KB"});
  for (bool check_on : {true, false}) {
    ExperimentConfig config;
    config.set_size = 3000;
    config.d = 60;
    config.instances = instances;
    config.seed = 0xAB1A7E;
    config.use_estimator = false;  // d known: isolates the exception path.
    config.threads = 0;
    config.pbs.max_rounds = 8;
    config.pbs.subuniverse_check = check_on;
    // Pin a deliberately small bitmap so type (I)/(II) exceptions abound.
    config.pbs.optimizer.min_m = 6;
    config.pbs.optimizer.max_m = 6;
    config.pbs.optimizer.t_high = 13.0;  // t up to 65 covers d = 60.
    const RunStats stats = RunScheme("pbs", config);
    table.AddRow({check_on ? "on" : "off",
                  FormatDouble(stats.success_rate, 3),
                  FormatDouble(stats.mean_rounds, 2),
                  FormatDouble(stats.mean_bytes / 1024.0, 3)});
  }
  table.Print();
  std::printf(
      "\nObservation: correctness is identical either way -- the checksum "
      "loop is the actual gatekeeper -- and the round-count impact of "
      "admitted fakes is below measurement noise even under heavy "
      "collision pressure: a fake toggled into the working set is simply "
      "re-discovered and removed by the next round's fresh partition. "
      "Procedure 3's value is avoiding that wasted work at zero cost, not "
      "correctness.\n");
  return 0;
}
