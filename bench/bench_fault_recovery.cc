// Fault recovery economics: sharded sync under packet loss and forced
// disconnects (common/fault_injector.h + the resilient session runner).
//
// One big two-sided pair (quick: 2*10^5 common keys, full: 10^6) with
// 512 differences spread over 64 keyspace shards, reconciled through a
// loopback responder thread with the initiator's send direction filtered
// by a FaultyTransport:
//
//   clean             no faults, one attempt — the wire/time baseline;
//   loss=0.01/0.05    every connection drops frames at that rate; the
//                     resilient runner reconnects under backoff and
//                     re-attaches via RESUME, so each attempt keeps the
//                     shards settled so far;
//   disconnect_resume the first connection is killed mid sub-session
//                     stream; the second finishes via RESUME.
//
// The binary enforces the recovery contract, not just records it: every
// scenario must settle with the exact difference, and the resumed
// attempt of disconnect_resume must cost strictly fewer wire bytes than
// the fresh clean session. The clean and disconnect_resume wire bytes
// are fully seed-determined, so their records gate exactly in CI
// (collect_bench.py --compare pr10); the lossy scenarios' attempt counts
// and byte totals are emitted as measurements under a separate bench
// name.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "pbs/common/fault_injector.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/workload.h"

using namespace pbs;

namespace {

constexpr int kShards = 64;
constexpr uint64_t kSeed = 0x5EED;

struct ScenarioOutcome {
  bool ok = false;
  bool diff_exact = false;
  ResilienceReport report;
  double wall_ms = 0.0;
};

// Runs one resilient initiator session against loopback responder
// threads, each connection's send direction wrapped in `spec` (seed
// shifted per connection, exactly like `pbs_cli connect --fault`; an
// inactive spec runs clean).
ScenarioOutcome RunScenario(const SessionConfig& config, const SetPair& pair,
                            const FaultSpec& spec, int max_attempts) {
  std::vector<std::thread> servers;
  int connections = 0;
  const TransportFactory factory =
      [&](std::string*) -> std::unique_ptr<ByteTransport> {
    auto ends = MakeLoopbackTransportPair();
    servers.emplace_back(
        [&pair, transport = std::move(ends.second)]() mutable {
          RunResponderSession(*transport, pair.b);
        });
    const int index = connections++;
    if (!spec.active() || (spec.first_conn_only && index > 0)) {
      return std::move(ends.first);
    }
    FaultSpec per_conn = spec;
    per_conn.seed = spec.seed + static_cast<uint64_t>(index);
    return MakeFaultyTransport(std::move(ends.first), per_conn);
  };

  ResilientOptions options;
  options.retry.max_attempts = max_attempts;
  options.retry.base_delay_ms = 1;
  options.retry.max_delay_ms = 8;
  options.retry.seed = kSeed;

  ScenarioOutcome out;
  const auto start = std::chrono::steady_clock::now();
  const SessionResult result = RunResilientInitiatorSession(
      factory, config, pair.a, options, &out.report);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  for (auto& t : servers) t.join();

  out.ok = result.ok && result.outcome.success;
  std::vector<uint64_t> recovered = result.outcome.difference;
  std::vector<uint64_t> truth = pair.truth_diff;
  std::sort(recovered.begin(), recovered.end());
  std::sort(truth.begin(), truth.end());
  out.diff_exact = out.ok && recovered == truth;
  return out;
}

}  // namespace

int main() {
  const bool full = bench::FullMode();
  const size_t common = full ? 1000000 : 200000;
  const size_t d_side = 256;  // 512 symmetric differences.
  std::printf("== Fault recovery: sharded sync under loss/disconnect ==\n");
  std::printf("mode=%s |A|~%zu d=%zu shards=%d\n\n", full ? "FULL" : "quick",
              common + d_side, 2 * d_side, kShards);

  const SetPair pair = GenerateTwoSidedPair(common, d_side, d_side, 48, 0xFA17);

  SessionConfig config;
  config.scheme_name = "pbs";
  config.options.pbs.max_rounds = 8;
  config.options.pbs.target_rounds = 3;
  config.options.sig_bits = 48;
  config.seed = kSeed;
  config.exact_d = 48.0;  // Per-shard bound, ample at 512 diffs / 64 shards.
  config.keyspace_shards = kShards;
  config.phase_deadline_ms = 250;  // Turns a dropped frame into a retry.

  // Deterministic rows: wire bytes are fully seed-determined, so these
  // records gate exactly against the committed pr10 baseline.
  bench::Recorder exact(
      "fault_recovery",
      {"scenario", "n", "shards", "d", "success", "attempts", "resumed",
       "wire_B", "wall_ms"});
  // Lossy rows: convergence cost under per-frame drop probabilities.
  bench::Recorder lossy(
      "fault_recovery_loss",
      {"scenario", "n", "shards", "d", "loss", "success", "attempts",
       "resumed", "wire_total_B", "wall_ms"});

  bool all_ok = true;
  const auto check = [&all_ok](const char* scenario,
                               const ScenarioOutcome& out) {
    if (!out.ok || !out.diff_exact) {
      std::fprintf(stderr,
                   "FAIL: scenario %s did not recover the exact "
                   "difference (ok=%d exact=%d)\n",
                   scenario, out.ok ? 1 : 0, out.diff_exact ? 1 : 0);
      all_ok = false;
    }
  };

  // --- clean baseline. ----------------------------------------------------
  const ScenarioOutcome clean =
      RunScenario(config, pair, FaultSpec{}, /*max_attempts=*/1);
  check("clean", clean);
  exact.AddRow({"clean", std::to_string(common), std::to_string(kShards),
                std::to_string(2 * d_side), clean.diff_exact ? "1" : "0",
                std::to_string(clean.report.sessions_run),
                std::to_string(clean.report.resumed_sessions),
                std::to_string(clean.report.last_wire_bytes),
                FormatDouble(clean.wall_ms, 1)});

  // --- forced mid-session disconnect, recovered via RESUME. ---------------
  FaultSpec cut;
  cut.disconnect_after_frames = 24;  // Mid sub-session stream.
  cut.first_conn_only = true;
  cut.seed = kSeed;
  const ScenarioOutcome resumed =
      RunScenario(config, pair, cut, /*max_attempts=*/3);
  check("disconnect_resume", resumed);
  if (resumed.report.resumed_sessions < 1) {
    std::fprintf(stderr, "FAIL: disconnect_resume never used RESUME\n");
    all_ok = false;
  }
  if (resumed.report.last_wire_bytes >= clean.report.last_wire_bytes) {
    std::fprintf(stderr,
                 "FAIL: resumed attempt cost %zu wire bytes, fresh "
                 "session costs %zu — resume must be strictly cheaper\n",
                 resumed.report.last_wire_bytes,
                 clean.report.last_wire_bytes);
    all_ok = false;
  }
  exact.AddRow({"disconnect_resume", std::to_string(common),
                std::to_string(kShards), std::to_string(2 * d_side),
                resumed.diff_exact ? "1" : "0",
                std::to_string(resumed.report.sessions_run),
                std::to_string(resumed.report.resumed_sessions),
                std::to_string(resumed.report.last_wire_bytes),
                FormatDouble(resumed.wall_ms, 1)});

  // --- per-frame loss sweep. ----------------------------------------------
  for (const double loss : {0.01, 0.05}) {
    FaultSpec spec;
    spec.loss = loss;
    spec.seed = kSeed;
    const ScenarioOutcome out =
        RunScenario(config, pair, spec, /*max_attempts=*/80);
    const std::string label = "loss=" + FormatDouble(loss, 2);
    check(label.c_str(), out);
    lossy.AddRow({label, std::to_string(common), std::to_string(kShards),
                  std::to_string(2 * d_side), FormatDouble(loss, 2),
                  out.diff_exact ? "1" : "0",
                  std::to_string(out.report.sessions_run),
                  std::to_string(out.report.resumed_sessions),
                  std::to_string(out.report.total_wire_bytes),
                  FormatDouble(out.wall_ms, 1)});
  }

  exact.Print();
  std::printf("\n");
  lossy.Print();
  std::printf(
      "\nattempts = sessions driven to a terminal state; resumed = those\n"
      "re-attached via RESUME. clean/disconnect_resume wire_B is fully\n"
      "seed-determined (exact CI gate); the lossy rows show what per-frame\n"
      "drop rates cost in reconnects and total wire.\n");
  return all_ok ? 0 : 1;
}
