// Mutable-store churn bench: what live updates cost, and what serving
// under churn costs.
//
// Stage 1 — update throughput. For |set| in {1e4, 1e6}, applies balanced
// insert/delete churn to a layout-configured MutableElementStore two
// ways: the incremental path (ApplyInsert/ApplyDelete fold the element
// into the per-group parity bitmaps, odd power sums, and checksums in
// O(t)) and the rebuild path (every mutation followed by RebuildLayout(),
// what a snapshot server without incremental maintenance would pay).
// The incremental path must be >= 10x faster at |set| = 1e6 — the bench
// exits nonzero otherwise, so CI gates the property.
//
// Stage 2 — serving under churn. 1,000 mixed-scheme sessions against a
// 4-shard server backed by a mutable store, once with the set frozen
// (static leg, the pr6 concurrent-sessions shape: |B| = 1000, d ~ 20)
// and once with a writer thread churning 10% of the set per batch while
// the clients reconcile. Reports sessions/s for both legs; the churn leg
// measures the cost of per-session snapshot adoption plus concurrent
// epoch publication.
//
// Env knobs: PBS_BENCH_SESSIONS=N overrides the per-leg session count,
// PBS_BENCH_SHARDS=N the server shard count (default 4). PBS_BENCH_FULL=1
// lengthens the stage-1 timing windows.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "pbs/core/element_store.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/net/reconcile_server.h"
#include "pbs/sim/workload.h"

namespace {

using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::string Format1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

// Unique nonzero 32-bit signatures: odd multiplier mod 2^32 is a bijection.
uint64_t Sig(uint64_t i) { return (i * 2654435761u) & 0xFFFFFFFFu; }

// ------------------------------------------------- stage 1: updates/s --

struct UpdateRates {
  double incremental_ns = 0.0;  // ns per mutation, incremental fold.
  double rebuild_ns = 0.0;      // ns per mutation, mutation + full rebuild.
};

UpdateRates MeasureUpdates(size_t set_size) {
  std::vector<uint64_t> initial;
  initial.reserve(set_size);
  for (uint64_t i = 1; i <= set_size; ++i) initial.push_back(Sig(i));
  pbs::MutableElementStore store(std::move(initial));
  pbs::PbsConfig config;
  config.sig_bits = 32;
  std::string error;
  if (!store.ConfigureLayout(config, 0xC11, /*d_used=*/100, &error)) {
    std::fprintf(stderr, "ConfigureLayout: %s\n", error.c_str());
    std::exit(1);
  }

  UpdateRates rates;
  const bool full = pbs::bench::FullMode();

  // Incremental: rotate live elements out, fresh ones in — every
  // mutation folds into bitmaps/syndromes/checksums in O(t).
  {
    const size_t pairs = full ? 200000 : 20000;
    // Warm-up pass sizes the index past its snap-fit reserve.
    store.ApplyInsert(Sig(set_size + 1));
    store.ApplyDelete(Sig(set_size + 1));
    const auto start = Clock::now();
    for (size_t k = 0; k < pairs; ++k) {
      store.ApplyDelete(Sig(1 + (k % set_size)));
      store.ApplyInsert(Sig(set_size + 2 + k));
    }
    const double seconds = SecondsSince(start);
    store.Publish();
    rates.incremental_ns = seconds * 1e9 / (2.0 * pairs);
    // Rotate back so the rebuild leg sees the same set size.
  }

  // Rebuild: each mutation pays a from-scratch layout recomputation,
  // the cost a non-incremental snapshot server would carry per update.
  {
    const int reps = full ? 10 : 3;
    (void)store.RebuildLayout();  // Warm-up.
    const auto start = Clock::now();
    for (int k = 0; k < reps; ++k) {
      store.ApplyInsert(Sig(2 * set_size + 7 + static_cast<uint64_t>(k)));
      auto layout = store.RebuildLayout();
      if (layout == nullptr) std::exit(1);
    }
    rates.rebuild_ns = SecondsSince(start) * 1e9 / reps;
  }
  return rates;
}

// ----------------------------------------- stage 2: sessions vs churn --

struct LegOutcome {
  double wall_ms = 0.0;
  size_t failures = 0;
  size_t decode_misses = 0;
  uint64_t epochs_published = 0;
};

// Drives `sessions` blocking initiator sessions from a fixed worker pool.
LegOutcome RunSessions(uint16_t port, size_t sessions,
                       const std::vector<std::string>& schemes,
                       pbs::SessionEngine::SharedElements elements,
                       double exact_d) {
  LegOutcome out;
  constexpr size_t kWorkers = 64;
  std::atomic<size_t> next{0};
  std::atomic<size_t> failures{0};
  std::atomic<size_t> misses{0};
  const auto start = Clock::now();
  std::vector<std::thread> workers;
  for (size_t w = 0; w < std::min(kWorkers, sessions); ++w) {
    workers.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < sessions;
           i = next.fetch_add(1)) {
        pbs::SessionConfig config;
        config.scheme_name = schemes[i % schemes.size()];
        config.options.pbs.max_rounds = 8;
        config.options.pbs.target_rounds = 3;
        config.seed = 0xBE9C + static_cast<uint64_t>(i) * 0x9E37;
        config.exact_d = exact_d;
        std::string error;
        auto transport = pbs::TcpConnect("127.0.0.1", port, &error);
        if (!transport) {
          failures.fetch_add(1);
          continue;
        }
        const pbs::SessionResult result =
            pbs::RunInitiatorSession(*transport, config, *elements);
        if (!result.ok) {
          failures.fetch_add(1);
        } else if (!result.outcome.success) {
          misses.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : workers) t.join();
  out.wall_ms = SecondsSince(start) * 1000.0;
  out.failures = failures.load();
  out.decode_misses = misses.load();
  return out;
}

}  // namespace

int main() {
  pbs::bench::Recorder updates_table(
      "mutable_churn_updates",
      {"path", "set_size", "d_used", "ns_per_op", "Mops"});

  std::printf("== mutable store churn: update + serving throughput ==\n");
  std::printf("mode=%s\n\n", pbs::bench::FullMode() ? "FULL" : "quick");

  // ---- Stage 1: incremental vs rebuild update throughput -------------
  bool speedup_ok = true;
  for (const size_t set_size : {size_t{10000}, size_t{1000000}}) {
    const UpdateRates rates = MeasureUpdates(set_size);
    const double speedup = rates.rebuild_ns / rates.incremental_ns;
    updates_table.AddRow({"incremental", std::to_string(set_size), "100",
                          Format1(rates.incremental_ns),
                          pbs::bench::FormatMops(rates.incremental_ns)});
    updates_table.AddRow({"rebuild", std::to_string(set_size), "100",
                          Format1(rates.rebuild_ns),
                          pbs::bench::FormatMops(rates.rebuild_ns)});
    std::printf("|set|=%zu: incremental %.0f ns/update, rebuild %.0f "
                "ns/update — %.0fx\n",
                set_size, rates.incremental_ns, rates.rebuild_ns, speedup);
    if (set_size == 1000000 && speedup < 10.0) speedup_ok = false;
  }
  updates_table.Print();

  // ---- Stage 2: mixed-scheme sessions/s, static vs 10% churn ---------
  const char* sessions_env = std::getenv("PBS_BENCH_SESSIONS");
  const size_t sessions =
      sessions_env != nullptr
          ? static_cast<size_t>(std::max(1L, std::strtol(sessions_env,
                                                         nullptr, 10)))
          : 1000;
  const char* shards_env = std::getenv("PBS_BENCH_SHARDS");
  const int shards =
      shards_env != nullptr ? std::max(1, std::atoi(shards_env)) : 4;

  // The pr6 concurrent-sessions throughput shape: |B| = 1000, d ~ 20.
  const pbs::SetPair small = pbs::GenerateTwoSidedPair(1000, 10, 10, 32, 11);
  auto shared_a = std::make_shared<const std::vector<uint64_t>>(small.a);
  const std::vector<std::string> schemes =
      pbs::SchemeRegistry::Instance().Names();
  // Covers the base divergence plus the bounded churn drift (the writer
  // oscillates within a 2 x 50-element pool, so any served epoch is at
  // most 100 elements from the base set).
  const double exact_d =
      static_cast<double>(small.truth_diff.size()) + 100.0;

  auto store = std::make_shared<pbs::MutableElementStore>(small.b);
  pbs::PbsConfig layout_config;
  layout_config.sig_bits = 32;
  std::string error;
  if (!store->ConfigureLayout(layout_config, 0xC11, /*d_used=*/120,
                              &error)) {
    std::fprintf(stderr, "ConfigureLayout: %s\n", error.c_str());
    return 1;
  }

  // Two disjoint 50-element pools, disjoint from both base sets.
  std::vector<uint64_t> pool_a, pool_b;
  for (uint64_t i = 0; i < 50; ++i) {
    pool_a.push_back(0xA0000000u + i);
    pool_b.push_back(0xB0000000u + i);
  }

  pbs::bench::Recorder sessions_table(
      "mutable_churn_sessions",
      {"leg", "sessions", "shards", "set_size", "churn_pct", "wall_ms",
       "sessions_per_s"});

  std::printf("\nserving: %zu mixed-scheme sessions, |B|=%zu, shards=%d\n\n",
              sessions, small.b.size(), shards);

  bool all_ok = true;
  for (const bool churn : {false, true}) {
    pbs::ServerOptions options;
    options.shards = shards;
    options.max_sessions = 128;
    options.idle_timeout_ms = 120000;
    options.mutable_store = store;
    auto server = pbs::ReconcileServer::Create(options, {}, &error);
    if (!server) {
      std::fprintf(stderr, "server: %s\n", error.c_str());
      return 1;
    }
    std::thread serving([&server] { server->Run(); });

    std::atomic<bool> stop{false};
    uint64_t batches_applied = 0;
    std::thread writer;
    if (churn) {
      writer = std::thread([&] {
        // Prime pool A in, then oscillate: each batch swaps one 50-pool
        // for the other — 100 mutations on a 1000-element set, 10% churn
        // per published epoch.
        pbs::UpdateBatch prime;
        prime.inserts = pool_a;
        store->Apply(prime);
        bool a_in = true;
        while (!stop.load(std::memory_order_relaxed)) {
          pbs::UpdateBatch batch;
          batch.inserts = a_in ? pool_b : pool_a;
          batch.deletes = a_in ? pool_a : pool_b;
          store->Apply(batch);
          a_in = !a_in;
          ++batches_applied;
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      });
    }

    const LegOutcome outcome = RunSessions(
        server->port(), sessions, schemes, shared_a, exact_d);

    if (churn) {
      stop.store(true);
      writer.join();
    }
    server->Stop();
    serving.join();

    const double per_s = sessions / (outcome.wall_ms / 1000.0);
    all_ok = all_ok && outcome.failures == 0;
    std::printf("%s: %.1f ms wall, %.1f sessions/s, %zu failures, %zu "
                "decode misses%s\n",
                churn ? "churn " : "static", outcome.wall_ms, per_s,
                outcome.failures, outcome.decode_misses,
                churn ? (" (" + std::to_string(batches_applied) +
                         " churn batches applied)")
                            .c_str()
                      : "");
    sessions_table.AddRow({churn ? "churn" : "static",
                           std::to_string(sessions), std::to_string(shards),
                           std::to_string(small.b.size()),
                           churn ? "10" : "0", Format1(outcome.wall_ms),
                           Format1(per_s)});
  }
  std::printf("\n");
  sessions_table.Print();

  if (!speedup_ok) {
    std::fprintf(stderr,
                 "FAIL: incremental maintenance < 10x faster than rebuild "
                 "at |set|=1e6\n");
    return 1;
  }
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: a session failed\n");
    return 1;
  }
  return 0;
}
