// Related-work study (Section 7): message-round and byte costs of the
// partition-based alternatives, plus the recall ceiling of approximate
// filter exchange.
//
//  * Minsky-Trachtenberg recursive bisection completes in O(log d) rounds
//    -- "generally much larger than that in PBS" (paper, Section 7).
//  * PBS completes in <= 3 rounds at p0 = 0.99.
//  * BF/cuckoo filter exchange is cheap but inexact (underestimates).

#include <cstdio>

#include "bench_common.h"
#include "pbs/baselines/approx_filter.h"
#include "pbs/baselines/recursive_cpi.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  const auto scale = bench::DefaultScale();
  const int instances = bench::FullMode() ? 100 : 10;
  const size_t set_size = bench::FullMode() ? 1000000 : 50000;
  std::printf("== Section 7 related-work study ==\n");
  std::printf("|A|=%zu instances=%d\n\n", set_size, instances);
  (void)scale;

  std::printf("(1) Rounds of message exchange: PBS vs recursive bisection\n");
  bench::Recorder rounds("related_rounds",
                         {"d", "scheme", "mean_rounds", "KB", "success"});
  for (size_t d : {size_t{10}, size_t{100}, size_t{1000}}) {
    {
      ExperimentConfig config;
      config.set_size = set_size;
      config.d = d;
      config.instances = instances;
      config.seed = 0x5EC7 + d;
      const RunStats stats = RunScheme("pbs", config);
      rounds.AddRow({std::to_string(d), "PBS",
                     FormatDouble(stats.mean_rounds, 2),
                     FormatDouble(stats.mean_bytes / 1024.0, 3),
                     FormatDouble(stats.success_rate, 3)});
    }
    {
      double mean_rounds = 0, mean_bytes = 0, success = 0;
      for (int i = 0; i < instances; ++i) {
        SetPair pair = GenerateSetPair(set_size, d, 32, 0xAB5 + d * 31 + i);
        auto out = RecursiveCpiReconcile(pair.a, pair.b, 5, 32, 48, i);
        mean_rounds += out.rounds;
        mean_bytes += static_cast<double>(out.data_bytes);
        success += out.success ? 1 : 0;
      }
      rounds.AddRow({std::to_string(d), "RecursiveCPI",
                     FormatDouble(mean_rounds / instances, 2),
                     FormatDouble(mean_bytes / instances / 1024.0, 3),
                     FormatDouble(success / instances, 3)});
    }
  }
  rounds.Print();
  std::printf(
      "\nCheck: RecursiveCPI rounds grow ~log2(d) while PBS stays <= 3.\n\n");

  std::printf("(2) Approximate filter exchange: recall vs budget\n");
  bench::Recorder approx("related_approx_filters",
                         {"filter", "fpr", "KB", "recall"});
  SetPair pair = GenerateTwoSidedPair(set_size / 2, 300, 300, 32, 99);
  for (FilterKind kind : {FilterKind::kBloom, FilterKind::kCuckoo}) {
    for (double fpr : {0.05, 0.01, 0.001}) {
      auto out = ApproxFilterReconcile(pair.a, pair.b, kind, fpr, 7);
      approx.AddRow({kind == FilterKind::kBloom ? "Bloom" : "Cuckoo",
                     FormatDouble(fpr, 3),
                     FormatDouble(out.data_bytes / 1024.0, 1),
                     FormatDouble(EvaluateRecall(out, pair.truth_diff), 4)});
    }
  }
  approx.Print();
  std::printf(
      "\nCheck: recall < 1 at practical budgets, and filter bytes scale "
      "with |A|+|B| -- why Section 7 rules these out for exact sync.\n");
  return 0;
}
