// Section 5.2: how the optimal per-group communication overhead depends on
// the round target r (d = 1000, p0 = 0.99).
//
// Paper reference: 591 / 402 / 318 / 288 bits for r = 1 / 2 / 3 / 4, with
// r = 3 the sweet spot. The r = 1 case needs a far larger bitmap than the
// production n-range (the ideal case must hold simultaneously in all 200
// groups), so the search range is widened for it, as the paper implicitly
// does.

#include <cstdio>

#include "pbs/markov/optimizer.h"
#include "pbs/sim/metrics.h"

#include "bench_common.h"

using namespace pbs;

int main() {
  std::printf("== Section 5.2: optimal comm/group vs round target r ==\n");
  std::printf("d=1000, delta=5, p0=0.99 (paper: 591/402/318/288 bits)\n\n");

  bench::Recorder table("sec52_round_tradeoff", {"r", "n", "t", "bits_per_group", "bound"});
  for (int r = 1; r <= 4; ++r) {
    OptimizerOptions options;
    options.d = 1000;
    options.r = r;
    options.max_m = r == 1 ? 22 : 13;
    options.t_high = r == 1 ? 5.0 : 3.5;
    auto plan = OptimizeParams(options);
    if (!plan.has_value()) {
      table.AddRow({std::to_string(r), "-", "-", "infeasible", "-"});
      continue;
    }
    table.AddRow({std::to_string(r), std::to_string(plan->n),
                  std::to_string(plan->t),
                  FormatDouble(plan->bits_per_group, 0),
                  FormatDouble(plan->lower_bound, 4)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: steep drops r=1 -> 2 -> 3, marginal gain at "
      "r=4; r=3 is the sweet spot.\n");
  return 0;
}
