// Figure 5 / Appendix J.3: PBS vs PinSketch/WP communication overhead when
// signatures are 256 bits (Bitcoin-style transaction IDs).
//
// Following the paper, computation runs over a 32-bit universe while the
// wire accounting scales the signature-width-dependent fields to 256 bits;
// only communication overhead is reported. PBS's advantage widens because
// its BCH codewords stay at t log n bits while PinSketch/WP's grow to
// t log|U| = 256 t bits per group.

#include <cstdio>

#include "bench_common.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  const auto scale = bench::DefaultScale();
  bench::PrintHeader(
      "Figure 5: PBS vs PinSketch/WP at log|U| = 256 (simulated)", scale);

  bench::Recorder table("fig5_signature256", {"d", "scheme", "KB@256", "xMin", "success"});
  for (const std::string scheme : {"pbs", "pinsketch-wp"}) {
    for (size_t d : scale.d_grid) {
      ExperimentConfig config;
      config.set_size = scale.set_size;
      config.d = d;
      config.instances = scale.instances;
      config.threads = 0;
      config.seed = 0xF165 + d;
      config.report_sig_bits = 256;
      const RunStats stats = RunScheme(scheme, config);
      table.AddRow({std::to_string(d),
                    SchemeRegistry::Instance().DisplayName(scheme),
                    FormatDouble(stats.mean_bytes / 1024.0, 3),
                    FormatDouble(stats.overhead_ratio, 2),
                    FormatDouble(stats.success_rate, 3)});
    }
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: the PBS advantage over PinSketch/WP is wider "
      "than at 32-bit signatures (compare bench_fig3 xMin columns).\n");
  return 0;
}
