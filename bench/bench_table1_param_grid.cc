// Table 1 / Appendix H: the success-probability lower bound
// 1 - 2(1 - alpha^g) over the (n, t) grid for d = 1000, delta = 5, r = 3,
// and the parameter-optimization procedure that picks (n = 127, t = 13).
//
// Printed side by side: the calibrated model (matches the paper's table),
// the raw split-aware model, and the pessimistic Appendix-D truncation.

#include <cstdio>

#include "pbs/markov/optimizer.h"
#include "pbs/markov/success_probability.h"
#include "pbs/sim/metrics.h"

#include "bench_common.h"

using namespace pbs;

namespace {

void PrintGrid(const char* title, const char* model, double (*fn)(int, int)) {
  std::printf("%s\n", title);
  // Distinct JSON bench name per model so BENCH_pbs.json rows stay
  // attributable (and identical cells across models don't dedupe away).
  bench::Recorder table(std::string("table1_param_grid_") + model,
                        {"t", "n=63", "n=127", "n=255", "n=511", "n=1023",
                         "n=2047"});
  for (int t = 8; t <= 17; ++t) {
    std::vector<std::string> row = {std::to_string(t)};
    for (int n : {63, 127, 255, 511, 1023, 2047}) {
      const double v = fn(n, t);
      row.push_back(v <= 0 ? "0" : FormatDouble(100 * v, 2) + "%");
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("== Table 1: success-probability lower bound grid ==\n");
  std::printf("d=1000, delta=5 (g=200), r=3\n\n");

  PrintGrid("Calibrated model (reproduces the paper's Table 1):", "calibrated",
            [](int n, int t) {
              return SuccessLowerBoundCalibrated(n, t, 3, 1000, 200);
            });
  PrintGrid("Raw split-aware model:", "splits", [](int n, int t) {
    return SuccessLowerBoundWithSplits(n, t, 3, 1000, 200);
  });
  PrintGrid("Appendix-D truncated model (Pr[x->0]=0 for x>t):", "truncated",
            [](int n, int t) { return SuccessLowerBound(n, t, 3, 1000, 200); });

  std::printf("Paper's Table 1 row t=13: 93.9%% 99.1%% 99.8%% >99.9%% ...\n");
  std::printf("Paper's optimal cell: n=127, t=13 (318 bits/group).\n\n");

  OptimizerOptions options;
  options.d = 1000;
  if (auto plan = OptimizeParams(options)) {
    std::printf(
        "Optimizer picks: n=%d t=%d g=%d -> %.0f bits/group (bound %.4f)\n",
        plan->n, plan->t, plan->g, plan->bits_per_group, plan->lower_bound);
  }
  return 0;
}
