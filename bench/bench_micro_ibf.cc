// Micro-benchmarks: invertible Bloom filter operations (the D.Digest /
// Graphene substrate) and the xxHash64 primitive everything hashes with.

#include <benchmark/benchmark.h>

#include "pbs/common/rng.h"
#include "pbs/hash/xxhash64.h"
#include "pbs/ibf/invertible_bloom_filter.h"

namespace pbs {
namespace {

void BM_XxHash64(benchmark::State& state) {
  uint64_t x = 0x1234;
  for (auto _ : state) {
    x = XxHash64(x, 7);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_XxHash64);

void BM_IbfInsert(benchmark::State& state) {
  InvertibleBloomFilter ibf(static_cast<size_t>(state.range(0)), 4, 1, 32);
  uint64_t x = 1;
  for (auto _ : state) {
    ibf.Insert(x++);
  }
}
BENCHMARK(BM_IbfInsert)->Arg(200)->Arg(20000);

void BM_IbfDecode(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  InvertibleBloomFilter a(2 * d, d > 200 ? 3 : 4, 2, 32);
  InvertibleBloomFilter b(2 * d, d > 200 ? 3 : 4, 2, 32);
  Xoshiro256 rng(3);
  for (int i = 0; i < d; ++i) a.Insert(rng.Next() | 1);
  a.Subtract(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Decode());
  }
}
BENCHMARK(BM_IbfDecode)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace pbs
