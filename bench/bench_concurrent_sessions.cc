// Concurrent-session bench: thousands of clients reconcile against ONE
// server process (net/ReconcileServer — N event-loop shards, one sans-I/O
// SessionEngine per connection).
//
// Two stages:
//  * parity — for every registered scheme, 32 concurrent sessions against
//    a --shards 1 server must recover a difference BYTE-IDENTICAL to the
//    blocking drivers (RunInitiatorSession / RunResponderSession over a
//    dedicated transport) run with the same config, elements, and seed;
//  * throughput — 1,000 then 10,000 mixed-scheme sessions against a
//    sharded server, driven by a single-threaded async client pump (a
//    thread per client would need 10k stacks; an EventLoop needs 10k
//    fds). Reports wall clock, sessions/s, and p50/p99 session latency
//    (connect initiation -> session settled).
//
// The pump opens connections through a rolling window: `window` sessions
// concurrently open (bounded by the process fd limit — each session costs
// two fds in-process, client end + server end), at most 512 connects in
// flight at once so a storm never outruns the listener backlog.
//
// Env knobs: PBS_BENCH_SESSIONS=N runs one throughput stage of N sessions
// instead of the 1k/10k pair; PBS_BENCH_SHARDS=N sets the server shard
// count (default 4); PBS_BENCH_THREADS=N hands every server-side session
// N per-group decode threads; PBS_BENCH_FULL=1 scales the parity stage to
// 128 clients over 100k-element sets.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_common.h"
#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/net/event_loop.h"
#include "pbs/net/reconcile_server.h"
#include "pbs/sim/workload.h"

namespace {

using Clock = std::chrono::steady_clock;
using pbs::SessionConfig;
using pbs::SessionEngine;
using pbs::SessionResult;

// The blocking-driver reference: same config, same sets, dedicated
// loopback transport pair, one thread per side.
SessionResult BlockingReference(const SessionConfig& config,
                                const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  auto transports = pbs::MakeLoopbackTransportPair();
  std::unique_ptr<pbs::ByteTransport> initiator_end =
      std::move(transports.first);
  std::unique_ptr<pbs::ByteTransport> responder_end =
      std::move(transports.second);
  std::thread responder([transport = std::move(responder_end), &b]() mutable {
    pbs::RunResponderSession(*transport, b);
  });
  SessionResult result = pbs::RunInitiatorSession(*initiator_end, config, a);
  initiator_end.reset();
  responder.join();
  return result;
}

SessionConfig ConfigFor(const std::string& scheme, size_t client,
                        double exact_d) {
  SessionConfig config;
  config.scheme_name = scheme;
  config.options.pbs.max_rounds = 8;
  config.options.pbs.target_rounds = 3;
  config.seed = 0xBE9C + static_cast<uint64_t>(client) * 0x9E37;
  config.exact_d = exact_d;
  return config;
}

// ------------------------------------------------------- async client pump --

// All `count` initiator sessions pumped from this one thread through a
// pbs::EventLoop: nonblocking connect, then Feed/Poll per readiness.
struct PumpOutcome {
  std::vector<SessionResult> results;  // One per session, in launch order.
  std::vector<double> latency_ms;     // connect() -> settled, per session.
  double wall_ms = 0.0;
  size_t failures = 0;       // Connect/transport/protocol failures (!ok).
  size_t decode_misses = 0;  // Protocol ok, but the scheme failed to
                             // recover the difference — expected at a low
                             // rate for the probabilistic schemes.
};

class ClientPump {
 public:
  ClientPump(uint16_t port, size_t count, size_t window,
             std::function<SessionConfig(size_t)> config_for,
             SessionEngine::SharedElements elements)
      : port_(port),
        count_(count),
        window_(std::min(window, count)),
        config_for_(std::move(config_for)),
        elements_(std::move(elements)) {
    clients_.resize(count);
  }

  PumpOutcome Run() {
    PumpOutcome out;
    out.results.resize(count_);
    out.latency_ms.resize(count_, 0.0);
    const auto start = Clock::now();
    auto last_progress = start;
    while (done_ < count_) {
      while (next_ < count_ && open_ < window_ &&
             connecting_ < kConnectWindow) {
        Launch(next_++);
      }
      const size_t done_before = done_;
      const int ready = loop_.Wait(1000);
      for (int i = 0; i < ready; ++i) {
        const pbs::EventLoop::Event event = loop_.events()[i];
        Service(static_cast<size_t>(event.tag), event.ready);
      }
      const auto now = Clock::now();
      if (done_ > done_before) {
        last_progress = now;
      } else if (now - last_progress > std::chrono::seconds(60)) {
        // Stalled: fail every unfinished session instead of hanging the
        // bench forever.
        for (size_t i = 0; i < count_; ++i) {
          if (clients_[i].fd >= 0) Abort(i, "client pump stalled");
          if (i >= next_) {
            clients_[i].failed = true;
            clients_[i].error = "never launched (pump stalled)";
          }
        }
        done_ = count_;
        next_ = count_;
        break;
      }
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(Clock::now() -
                                                            start)
                      .count();
    for (size_t i = 0; i < count_; ++i) {
      Client& c = clients_[i];
      out.results[i] = std::move(c.result);
      if (c.failed && out.results[i].error.empty()) {
        out.results[i].ok = false;
        out.results[i].error = c.error;
      }
      out.latency_ms[i] =
          std::chrono::duration<double, std::milli>(c.end - c.start).count();
      if (!out.results[i].ok) {
        ++out.failures;
      } else if (!out.results[i].outcome.success) {
        ++out.decode_misses;
      }
    }
    return out;
  }

 private:
  static constexpr size_t kConnectWindow = 512;

  struct Client {
    int fd = -1;
    std::unique_ptr<SessionEngine> engine;
    uint32_t interest = 0;
    bool connecting = false;
    bool failed = false;
    std::string error;
    Clock::time_point start{};
    Clock::time_point end{};
    SessionResult result;
  };

  void Launch(size_t index) {
    Client& c = clients_[index];
    c.start = Clock::now();
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      Fail(index, "socket");
      return;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);
    const int rc =
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    c.fd = fd;
    ++open_;
    if (rc == 0) {
      OnConnected(index);
      return;
    }
    if (errno != EINPROGRESS) {
      Abort(index, std::string("connect: ") + std::strerror(errno));
      return;
    }
    c.connecting = true;
    ++connecting_;
    c.interest = pbs::EventLoop::kWrite;
    if (!loop_.Add(fd, c.interest, index)) {
      --connecting_;
      c.connecting = false;
      Abort(index, "event loop add failed");
    }
  }

  void OnConnected(size_t index) {
    Client& c = clients_[index];
    const int one = 1;
    ::setsockopt(c.fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    c.engine = std::make_unique<SessionEngine>(
        SessionEngine::Initiator(config_for_(index), elements_));
    if (c.interest == 0) {
      // Fresh fd (connect completed synchronously): register it now.
      c.interest = pbs::EventLoop::kRead | pbs::EventLoop::kWrite;
      if (!loop_.Add(c.fd, c.interest, index)) {
        Abort(index, "event loop add failed");
        return;
      }
    }
    Drive(index);
  }

  void Service(size_t index, uint32_t ready) {
    Client& c = clients_[index];
    if (c.fd < 0) return;
    if (c.connecting) {
      c.connecting = false;
      --connecting_;
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(c.fd, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        Abort(index, std::string("connect: ") + std::strerror(err));
        return;
      }
      OnConnected(index);
      return;
    }
    if ((ready & (pbs::EventLoop::kRead | pbs::EventLoop::kHangup)) != 0) {
      while (true) {
        const ssize_t n =
            ::recv(c.fd, read_buffer_, sizeof(read_buffer_), MSG_DONTWAIT);
        if (n > 0) {
          c.engine->Feed(read_buffer_, static_cast<size_t>(n));
          continue;
        }
        if (n == 0) {
          c.engine->FeedEof();
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        c.engine->FeedEof();  // Hard read error == peer gone.
        break;
      }
    }
    Drive(index);
  }

  // Flushes pending outbound bytes, retires the session if settled, and
  // keeps the loop's interest set in sync with what the engine needs.
  void Drive(size_t index) {
    Client& c = clients_[index];
    while (c.engine->outbound_size() > 0) {
      const ssize_t n = ::send(c.fd, c.engine->outbound_data(),
                               c.engine->outbound_size(),
                               MSG_DONTWAIT | MSG_NOSIGNAL);
      if (n > 0) {
        c.engine->ConsumeOutbound(static_cast<size_t>(n));
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      c.engine->FailTransport();
      break;
    }
    const pbs::SessionStatus status = c.engine->Status();
    if ((status == pbs::SessionStatus::kDone ||
         status == pbs::SessionStatus::kError) &&
        c.engine->outbound_size() == 0) {
      c.result = c.engine->TakeResult();
      Finish(index, /*failed=*/false, "");
      return;
    }
    const uint32_t wanted =
        pbs::EventLoop::kRead |
        (c.engine->outbound_size() > 0 ? pbs::EventLoop::kWrite : 0u);
    if (wanted != c.interest) {
      c.interest = wanted;
      loop_.Modify(c.fd, wanted, index);
    }
  }

  // A session that failed before its engine could produce a result.
  void Abort(size_t index, const std::string& error) {
    Finish(index, /*failed=*/true, error);
  }

  void Fail(size_t index, const std::string& error) {
    Client& c = clients_[index];
    c.failed = true;
    c.error = error;
    c.end = Clock::now();
    ++done_;
  }

  void Finish(size_t index, bool failed, const std::string& error) {
    Client& c = clients_[index];
    if (c.interest != 0 || c.connecting) loop_.Remove(c.fd);
    if (c.connecting) {
      c.connecting = false;
      --connecting_;
    }
    ::close(c.fd);
    c.fd = -1;
    c.engine.reset();
    c.failed = failed;
    c.error = error;
    c.end = Clock::now();
    --open_;
    ++done_;
  }

  const uint16_t port_;
  const size_t count_;
  const size_t window_;
  const std::function<SessionConfig(size_t)> config_for_;
  const SessionEngine::SharedElements elements_;
  pbs::EventLoop loop_;
  std::vector<Client> clients_;
  size_t next_ = 0;
  size_t open_ = 0;
  size_t connecting_ = 0;
  size_t done_ = 0;
  uint8_t read_buffer_[64 * 1024];
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const size_t index = static_cast<size_t>(
      std::min(values.size() - 1.0, p * (values.size() - 1) / 100.0 + 0.5));
  return values[index];
}

std::string Format1(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

int main() {
  const bool full = pbs::bench::FullMode();
  const char* threads_env = std::getenv("PBS_BENCH_THREADS");
  const int decode_threads =
      threads_env != nullptr ? std::max(1, std::atoi(threads_env)) : 1;
  const char* shards_env = std::getenv("PBS_BENCH_SHARDS");
  const int shards =
      shards_env != nullptr ? std::max(1, std::atoi(shards_env)) : 4;

  pbs::bench::Recorder table(
      "concurrent_sessions",
      {"scheme", "sessions", "window", "shards", "threads", "wall_ms",
       "sessions_per_s", "p50_ms", "p99_ms", "wire_B_per_session", "parity"});

  // ---- Stage 1: per-scheme parity against the blocking drivers --------
  const int parity_clients = full ? 128 : 32;
  const size_t common = full ? 100000 : 20000;
  const pbs::SetPair pair = pbs::GenerateTwoSidedPair(common, 40, 60, 32, 7);
  const double exact_d = static_cast<double>(pair.truth_diff.size());
  auto shared_a =
      std::make_shared<const std::vector<uint64_t>>(pair.a);

  std::printf("== concurrent sessions: async clients vs one server ==\n");
  std::printf("mode=%s parity: %d clients/scheme |A|=%zu d=%zu "
              "decode_threads=%d\n\n",
              full ? "FULL" : "quick", parity_clients, pair.a.size(),
              pair.truth_diff.size(), decode_threads);

  bool all_parity = true;
  for (const std::string& scheme : pbs::SchemeRegistry::Instance().Names()) {
    pbs::ServerOptions options;
    options.shards = 1;  // Parity leg: the classic single-loop server.
    options.max_sessions = parity_clients;
    options.idle_timeout_ms = 120000;
    options.decode_threads = decode_threads;
    std::string error;
    auto server = pbs::ReconcileServer::Create(options, pair.b, &error);
    if (!server) {
      std::fprintf(stderr, "server: %s\n", error.c_str());
      return 1;
    }
    std::thread serving([&server] { server->Run(); });

    ClientPump pump(
        server->port(), static_cast<size_t>(parity_clients),
        static_cast<size_t>(parity_clients),
        [&](size_t i) { return ConfigFor(scheme, i, exact_d); }, shared_a);
    PumpOutcome outcome = pump.Run();
    server->Stop();
    serving.join();

    // Parity pass: every concurrent session vs its blocking-driver twin.
    bool parity = outcome.failures == 0;
    size_t wire_bytes = 0;
    for (int i = 0; i < parity_clients && parity; ++i) {
      const SessionResult& got = outcome.results[static_cast<size_t>(i)];
      const SessionResult reference =
          BlockingReference(ConfigFor(scheme, static_cast<size_t>(i),
                                      exact_d),
                            pair.a, pair.b);
      parity = got.ok == reference.ok &&
               got.outcome.success == reference.outcome.success &&
               got.outcome.rounds == reference.outcome.rounds &&
               got.outcome.difference == reference.outcome.difference &&
               got.outcome.wire_bytes == reference.outcome.wire_bytes &&
               got.outcome.wire_frames == reference.outcome.wire_frames;
      wire_bytes += got.outcome.wire_bytes;
    }
    all_parity = all_parity && parity;

    table.AddRow(
        {scheme, std::to_string(parity_clients),
         std::to_string(parity_clients), "1", std::to_string(decode_threads),
         Format1(outcome.wall_ms),
         Format1(parity_clients / (outcome.wall_ms / 1000.0)),
         Format1(Percentile(outcome.latency_ms, 50)),
         Format1(Percentile(outcome.latency_ms, 99)),
         std::to_string(wire_bytes /
                        static_cast<size_t>(parity ? parity_clients : 1)),
         parity ? "yes" : "NO"});
  }

  // ---- Stage 2: mixed-scheme throughput on the sharded server ---------
  // Small per-session sets (the bench measures the server's session
  // machinery, not decode kernels) so a 10k-session storm finishes in
  // seconds.
  const pbs::SetPair small = pbs::GenerateTwoSidedPair(1000, 10, 10, 32, 11);
  const double small_d = static_cast<double>(small.truth_diff.size());
  auto shared_small_a =
      std::make_shared<const std::vector<uint64_t>>(small.a);
  const std::vector<std::string> schemes =
      pbs::SchemeRegistry::Instance().Names();

  std::vector<size_t> stages = {1000, 10000};
  const char* sessions_env = std::getenv("PBS_BENCH_SESSIONS");
  if (sessions_env != nullptr) {
    stages = {static_cast<size_t>(
        std::max(1L, std::strtol(sessions_env, nullptr, 10)))};
  }

  std::printf("\nthroughput: mixed schemes, |B|=%zu d=%zu shards=%d\n\n",
              small.b.size(), small.truth_diff.size(), shards);

  bool all_ok = true;
  for (const size_t sessions : stages) {
    // Each in-process session pair costs two fds; stay well under the
    // 20k-ish default RLIMIT_NOFILE.
    const size_t window = std::min<size_t>(sessions, 8192);
    pbs::ServerOptions options;
    options.shards = shards;
    options.max_sessions = static_cast<int>(window) + 64;
    options.idle_timeout_ms = 120000;
    options.decode_threads = decode_threads;
    std::string error;
    auto server = pbs::ReconcileServer::Create(options, small.b, &error);
    if (!server) {
      std::fprintf(stderr, "server: %s\n", error.c_str());
      return 1;
    }
    std::thread serving([&server] { server->Run(); });

    ClientPump pump(
        server->port(), sessions, window,
        [&](size_t i) {
          return ConfigFor(schemes[i % schemes.size()], i, small_d);
        },
        shared_small_a);
    PumpOutcome outcome = pump.Run();
    server->Stop();
    serving.join();

    size_t wire_bytes = 0;
    for (const SessionResult& r : outcome.results) {
      wire_bytes += r.outcome.wire_bytes;
    }
    const bool ok = outcome.failures == 0;
    all_ok = all_ok && ok;
    if (outcome.decode_misses > 0) {
      std::printf("note: %zu/%zu sessions decoded unsuccessfully "
                  "(probabilistic schemes; protocol completed)\n",
                  outcome.decode_misses, sessions);
    }
    if (!ok) {
      std::map<std::string, size_t> failed_by_scheme;
      const char* example = nullptr;
      for (size_t i = 0; i < outcome.results.size(); ++i) {
        const SessionResult& r = outcome.results[i];
        if (r.ok) continue;
        ++failed_by_scheme[schemes[i % schemes.size()]];
        if (example == nullptr && !r.error.empty()) example = r.error.c_str();
      }
      for (const auto& [scheme, n] : failed_by_scheme) {
        std::fprintf(stderr, "failed: %zu x %s\n", n, scheme.c_str());
      }
      if (example != nullptr) std::fprintf(stderr, "example: %s\n", example);
    }
    table.AddRow(
        {"mixed", std::to_string(sessions), std::to_string(window),
         std::to_string(server->shard_count()),
         std::to_string(decode_threads), Format1(outcome.wall_ms),
         Format1(sessions / (outcome.wall_ms / 1000.0)),
         Format1(Percentile(outcome.latency_ms, 50)),
         Format1(Percentile(outcome.latency_ms, 99)),
         std::to_string(wire_bytes / sessions), ok ? "yes" : "NO"});
  }

  table.Print();
  if (!all_parity) {
    std::fprintf(stderr,
                 "FAIL: a concurrent session diverged from the blocking "
                 "drivers\n");
    return 1;
  }
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: a throughput-stage session failed\n");
    return 1;
  }
  std::printf("\nall sessions byte-identical to the blocking drivers\n");
  return 0;
}
