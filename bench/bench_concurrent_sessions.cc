// Concurrent-session bench: N clients reconcile against ONE server
// process (net/ReconcileServer — a single poll loop holding one sans-I/O
// SessionEngine per connection), for every registered scheme.
//
// Two things are measured and printed per scheme:
//  * throughput — wall-clock for all N interleaved sessions and the
//    derived sessions/s of the single-threaded server loop;
//  * parity — every concurrently-served session must recover a difference
//    BYTE-IDENTICAL to the blocking drivers (RunInitiatorSession /
//    RunResponderSession over a dedicated transport) run with the same
//    config, elements, and seed.
//
// Quick mode serves 32 clients over 20k-element sets; PBS_BENCH_FULL=1
// scales to 128 clients over 100k-element sets. PBS_BENCH_THREADS=N hands
// every server-side session N per-group decode threads
// (ServerOptions::decode_threads); parity is still asserted against the
// single-threaded blocking drivers, so the run doubles as an
// any-thread-count equivalence check.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "pbs/core/transport.h"
#include "pbs/core/wire_session.h"
#include "pbs/net/reconcile_server.h"
#include "pbs/sim/workload.h"

namespace {

using pbs::SessionConfig;
using pbs::SessionResult;

// The blocking-driver reference: same config, same sets, dedicated
// loopback transport pair, one thread per side.
SessionResult BlockingReference(const SessionConfig& config,
                                const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  auto transports = pbs::MakeLoopbackTransportPair();
  std::unique_ptr<pbs::ByteTransport> initiator_end =
      std::move(transports.first);
  std::unique_ptr<pbs::ByteTransport> responder_end =
      std::move(transports.second);
  std::thread responder([transport = std::move(responder_end), &b]() mutable {
    pbs::RunResponderSession(*transport, b);
  });
  SessionResult result = pbs::RunInitiatorSession(*initiator_end, config, a);
  initiator_end.reset();
  responder.join();
  return result;
}

SessionConfig ConfigFor(const std::string& scheme, int client,
                        double exact_d) {
  SessionConfig config;
  config.scheme_name = scheme;
  config.options.pbs.max_rounds = 8;
  config.options.pbs.target_rounds = 3;
  config.seed = 0xBE9C + static_cast<uint64_t>(client) * 0x9E37;
  config.exact_d = exact_d;
  return config;
}

}  // namespace

int main() {
  const bool full = pbs::bench::FullMode();
  const int clients = full ? 128 : 32;
  const size_t common = full ? 100000 : 20000;
  const char* threads_env = std::getenv("PBS_BENCH_THREADS");
  const int decode_threads =
      threads_env != nullptr ? std::max(1, std::atoi(threads_env)) : 1;
  const pbs::SetPair pair = pbs::GenerateTwoSidedPair(common, 40, 60, 32, 7);
  const double exact_d = static_cast<double>(pair.truth_diff.size());

  std::printf("== concurrent sessions: %d clients vs one server ==\n",
              clients);
  std::printf("mode=%s |A|=%zu d=%zu decode_threads=%d\n\n",
              full ? "FULL" : "quick", pair.a.size(),
              pair.truth_diff.size(), decode_threads);

  pbs::bench::Recorder table(
      "concurrent_sessions",
      {"scheme", "clients", "threads", "wall_ms", "sessions_per_s",
       "wire_B_per_session", "parity"});

  bool all_parity = true;
  for (const std::string& scheme : pbs::SchemeRegistry::Instance().Names()) {
    pbs::ServerOptions options;
    options.max_sessions = clients;
    options.decode_threads = decode_threads;
    std::string error;
    auto server = pbs::ReconcileServer::Create(options, pair.b, &error);
    if (!server) {
      std::fprintf(stderr, "server: %s\n", error.c_str());
      return 1;
    }
    std::thread serving([&server] { server->Run(); });

    std::vector<SessionResult> results(clients);
    std::atomic<int> failures{0};
    const auto start = std::chrono::steady_clock::now();
    {
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (int i = 0; i < clients; ++i) {
        threads.emplace_back([&, i] {
          std::string connect_error;
          auto transport =
              pbs::TcpConnect("127.0.0.1", server->port(), &connect_error);
          if (!transport) {
            failures.fetch_add(1);
            return;
          }
          results[i] = pbs::RunInitiatorSession(
              *transport, ConfigFor(scheme, i, exact_d), pair.a);
          if (!results[i].ok || !results[i].outcome.success) {
            failures.fetch_add(1);
          }
        });
      }
      for (auto& t : threads) t.join();
    }
    const auto wall = std::chrono::steady_clock::now() - start;
    server->Stop();
    serving.join();

    // Parity pass: every concurrent session vs its blocking-driver twin.
    bool parity = failures.load() == 0;
    size_t wire_bytes = 0;
    for (int i = 0; i < clients && parity; ++i) {
      const SessionResult reference =
          BlockingReference(ConfigFor(scheme, i, exact_d), pair.a, pair.b);
      parity = results[i].ok == reference.ok &&
               results[i].outcome.success == reference.outcome.success &&
               results[i].outcome.rounds == reference.outcome.rounds &&
               results[i].outcome.difference ==
                   reference.outcome.difference &&
               results[i].outcome.wire_bytes ==
                   reference.outcome.wire_bytes &&
               results[i].outcome.wire_frames ==
                   reference.outcome.wire_frames;
      wire_bytes += results[i].outcome.wire_bytes;
    }
    all_parity = all_parity && parity;

    const double wall_ms =
        std::chrono::duration<double, std::milli>(wall).count();
    char wall_buf[32], rate_buf[32];
    std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", wall_ms);
    std::snprintf(rate_buf, sizeof(rate_buf), "%.0f",
                  clients / (wall_ms / 1000.0));
    table.AddRow({scheme, std::to_string(clients),
                  std::to_string(decode_threads), wall_buf, rate_buf,
                  std::to_string(wire_bytes / (parity ? clients : 1)),
                  parity ? "yes" : "NO"});
  }
  table.Print();
  if (!all_parity) {
    std::fprintf(stderr,
                 "FAIL: a concurrent session diverged from the blocking "
                 "drivers\n");
    return 1;
  }
  std::printf("\nall sessions byte-identical to the blocking drivers\n");
  return 0;
}
