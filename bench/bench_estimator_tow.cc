// Section 6 / Appendices A-B: the Tug-of-War set-difference estimator.
//
// Validates the three claims PBS relies on: (1) unbiasedness and the
// variance (2d^2 - 2d)/ell, (2) Pr[d <= 1.38 d-hat] >= 99% at ell = 128,
// and (3) the space advantage over the Strata and min-wise estimators.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "pbs/common/rng.h"
#include "pbs/estimator/minwise.h"
#include "pbs/estimator/strata.h"
#include "pbs/estimator/tow.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/workload.h"

using namespace pbs;

int main() {
  const int trials = bench::FullMode() ? 5000 : 800;
  std::printf("== Section 6: ToW estimator (ell = 128, %d trials) ==\n\n",
              trials);

  bench::Recorder accuracy("estimator_tow_accuracy",
                           {"d", "mean_dhat", "rel_bias", "var", "var_theory",
                        "P[d<=1.38dhat]"});
  SplitMix64 seeds(0xE57);
  for (int d : {10, 100, 1000, 10000}) {
    std::vector<uint64_t> diff;
    for (int i = 0; i < d; ++i) diff.push_back(0x1000 + 37 * i);
    double sum = 0, sum_sq = 0;
    int covered = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const double est = TowEstimateFromDifference(diff, 128, seeds.Next());
      sum += est;
      sum_sq += est * est;
      if (d <= kTowGamma * est) ++covered;
    }
    const double mean = sum / trials;
    const double var = sum_sq / trials - mean * mean;
    const double var_theory = (2.0 * d * d - 2.0 * d) / 128.0;
    accuracy.AddRow({std::to_string(d), FormatDouble(mean, 1),
                     FormatDouble((mean - d) / d, 4),
                     FormatScientific(var, 2),
                     FormatScientific(var_theory, 2),
                     FormatDouble(static_cast<double>(covered) / trials, 4)});
  }
  accuracy.Print();
  std::printf(
      "\nChecks: rel_bias ~ 0 (unbiased); var ~ var_theory; coverage >= "
      "0.99 (the paper's gamma = 1.38 calibration).\n\n");

  // Space comparison (Appendix B).
  std::printf("Estimator space at |S| = 10^6 (bytes on the wire):\n");
  bench::Recorder space("estimator_tow_space", {"estimator", "bytes"});
  space.AddRow({"ToW (ell=128)",
                std::to_string(TowSketch::BitSize(128, 1000000) / 8)});
  StrataEstimator strata(kStrataDefaultLevels, kStrataDefaultCells, 1, 32);
  space.AddRow({"Strata (32x80 cells)", std::to_string(strata.bit_size() / 8)});
  space.AddRow({"Min-wise (k=1024)",
                std::to_string(MinwiseEstimator::BitSize(1024, 32) / 8)});
  space.Print();
  std::printf("\nCheck: ToW is the most space-efficient (336 bytes).\n");
  return 0;
}
