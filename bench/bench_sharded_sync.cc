// Sharded vs monolithic session economics (sync/sharded_session.h).
//
// Two stories, both forked per path so each gets an honest peak-RSS
// reading from wait4's ru_maxrss:
//
//  1. Identical-fraction sweep: one big set pair whose differences are
//     confined to a shrinking subset of keyspace shards. The Merkle
//     pre-filter prices identical shards at 8 leaf bytes each, and once
//     few enough shards survive, the coordinator skips the ToW estimate
//     exchange entirely -- the regime where the sharded session
//     undercuts the monolithic wire total. At 100% identical the roots
//     match and the whole session is four frames. At 0% identical the
//     sweep shows the honest loss: leaves plus per-shard scheme
//     quantization cost more than one monolithic sketch.
//
//  2. Peak-memory story: at 10^7 elements (full mode) the monolithic
//     initiator hands its scheme engine a full copy of the set, while
//     the sharded coordinator partitions only the differing shards'
//     slices (sync/shard_planner.h PartitionSelected) -- peak RSS stays
//     near the shared base set while the monolithic path exceeds it.
//
// Wire bytes, frames, rounds, wall time, and RSS per path land in
// BENCH_pbs.json via PBS_BENCH_JSON (scripts/collect_bench.py).

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pbs/common/rng.h"
#include "pbs/core/set_reconciler.h"
#include "pbs/core/wire_session.h"
#include "pbs/sim/metrics.h"
#include "pbs/sync/shard_planner.h"

using namespace pbs;

namespace {

constexpr uint64_t kSigMask = (uint64_t{1} << 48) - 1;
constexpr uint64_t kSeed = 0x5EED;

struct PathMetrics {
  double success = 0;
  double wire_bytes = 0;
  double frames = 0;
  double rounds = 0;
  double wall_ms = 0;
  double estimator_bytes = 0;
};

// Base set of `count` distinct nonzero 48-bit signatures.
std::vector<uint64_t> BaseSet(size_t count, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    while (out.size() < count) {
      const uint64_t v = rng.Next() & kSigMask;
      if (v != 0) out.push_back(v);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }
  return out;
}

// `count` fresh signatures owned by shards [0, allowed_shards) of `plan`,
// disjoint from the (sorted) base set and from each other.
std::vector<uint64_t> ClusteredDiffs(size_t count, int allowed_shards,
                                     const sync::ShardPlan& plan,
                                     const std::vector<uint64_t>& base,
                                     uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<uint64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const uint64_t v = rng.Next() & kSigMask;
    if (v == 0) continue;
    if (plan.ShardOf(v) >= static_cast<uint32_t>(allowed_shards)) continue;
    if (std::binary_search(base.begin(), base.end(), v)) continue;
    if (std::find(out.begin(), out.end(), v) != out.end()) continue;
    out.push_back(v);
  }
  return out;
}

// One reconciliation case: builds the pair inside the (forked) caller so
// peak RSS reflects this path alone, runs a loopback session, reports.
PathMetrics RunCase(size_t set_size, size_t d, int diff_shards,
                    int keyspace_shards, int plan_shards) {
  const auto base = BaseSet(set_size, 0xBA5E + set_size);
  const sync::ShardPlan plan = sync::ShardPlan::Derive(plan_shards, kSeed);
  const auto diffs =
      ClusteredDiffs(d, diff_shards, plan, base, 0xD1FF + d * 31);
  std::vector<uint64_t> a = base, b = base;
  for (size_t i = 0; i < diffs.size(); ++i) {
    (i % 2 == 0 ? a : b).push_back(diffs[i]);
  }

  SessionConfig config;
  config.scheme_name = "pbs";
  config.options.pbs.max_rounds = 8;
  config.options.pbs.target_rounds = 3;
  config.options.sig_bits = 48;
  config.seed = kSeed;
  config.estimate_seed = 0xE571;
  config.keyspace_shards = keyspace_shards;

  const auto start = std::chrono::steady_clock::now();
  const SessionResult r = RunLoopbackSession(config, a, b);
  const auto stop = std::chrono::steady_clock::now();

  PathMetrics m;
  m.success = (r.ok && r.outcome.success &&
               r.outcome.difference.size() == diffs.size())
                  ? 1
                  : 0;
  m.wire_bytes = static_cast<double>(r.outcome.wire_bytes);
  m.frames = r.outcome.wire_frames;
  m.rounds = r.outcome.rounds;
  m.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  m.estimator_bytes = static_cast<double>(r.outcome.estimator_bytes);
  return m;
}

// Forks, runs `fn` in the child, ships PathMetrics back over a pipe, and
// reads the child's peak RSS from wait4. The child does ALL the heavy
// allocation (set generation included), so ru_maxrss isolates the path.
template <typename Fn>
bool RunForked(const Fn& fn, PathMetrics* out, double* rss_mb) {
  int fds[2];
  if (pipe(fds) != 0) return false;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return false;
  }
  if (pid == 0) {
    close(fds[0]);
    const PathMetrics m = fn();
    ssize_t ignored = write(fds[1], &m, sizeof(m));
    (void)ignored;
    _exit(0);
  }
  close(fds[1]);
  PathMetrics m;
  const ssize_t got = read(fds[0], &m, sizeof(m));
  close(fds[0]);
  int status = 0;
  struct rusage usage;
  std::memset(&usage, 0, sizeof(usage));
  if (wait4(pid, &status, 0, &usage) != pid) return false;
  if (got != static_cast<ssize_t>(sizeof(m)) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return false;
  }
  *out = m;
  *rss_mb = static_cast<double>(usage.ru_maxrss) / 1024.0;  // KiB on Linux.
  return true;
}

}  // namespace

int main() {
  const bool full = bench::FullMode();
  const size_t sweep_n = full ? 10000000 : 1000000;
  std::printf("== Sharded vs monolithic sessions (scheme=pbs) ==\n");
  std::printf("mode=%s sweep |A|=%zu\n\n", full ? "FULL" : "quick", sweep_n);

  bench::Recorder table(
      "sharded_sync",
      {"n", "shards", "identical_pct", "d", "path", "success", "wire_B",
       "frames", "rounds", "wall_ms", "rss_mb"});

  // --- 1. Identical-fraction sweep (S=8, d=8). ---------------------------
  // diff_shards = how many shards the differences are confined to; the
  // identical fraction is 1 - diff_shards/S. Crossing the coordinator's
  // estimate-skip threshold (<= 4 differing shards) is where the sharded
  // wire total drops below the monolithic one.
  const int kSweepShards = 8;
  const size_t kSweepD = 8;
  struct SweepPoint {
    int identical_pct;
    int diff_shards;
  };
  const SweepPoint kSweep[] = {{0, 8}, {50, 4}, {99, 1}, {100, 0}};
  for (const SweepPoint& point : kSweep) {
    const size_t d = point.diff_shards == 0 ? 0 : kSweepD;
    for (const bool sharded : {false, true}) {
      PathMetrics m;
      double rss = 0;
      const int keyspace = sharded ? kSweepShards : 0;
      const bool ok = RunForked(
          [&] {
            return RunCase(sweep_n, d, std::max(point.diff_shards, 1),
                           keyspace, kSweepShards);
          },
          &m, &rss);
      if (!ok) {
        std::fprintf(stderr, "sweep case failed to run (fork/pipe)\n");
        return 1;
      }
      table.AddRow({std::to_string(sweep_n), std::to_string(kSweepShards),
                    std::to_string(point.identical_pct), std::to_string(d),
                    sharded ? "sharded" : "mono", FormatDouble(m.success, 0),
                    FormatDouble(m.wire_bytes, 0), FormatDouble(m.frames, 0),
                    FormatDouble(m.rounds, 0), FormatDouble(m.wall_ms, 1),
                    FormatDouble(rss, 1)});
    }
  }

  // --- 2. Peak-RSS story (S=512, d=64 in 4 shards). ----------------------
  // The monolithic initiator engine copies the full set; the sharded
  // coordinator partitions only the differing shards' slices. At 10^7
  // elements that is the difference between ~3x and ~1x the base set.
  const size_t rss_n = full ? 10000000 : 1000000;
  const int kRssShards = 512;
  const size_t kRssD = 64;
  for (const bool sharded : {false, true}) {
    PathMetrics m;
    double rss = 0;
    const int keyspace = sharded ? kRssShards : 0;
    const bool ok = RunForked(
        [&] { return RunCase(rss_n, kRssD, 4, keyspace, kRssShards); }, &m,
        &rss);
    if (!ok) {
      std::fprintf(stderr, "rss case failed to run (fork/pipe)\n");
      return 1;
    }
    table.AddRow({std::to_string(rss_n), std::to_string(kRssShards), "99",
                  std::to_string(kRssD), sharded ? "sharded" : "mono",
                  FormatDouble(m.success, 0), FormatDouble(m.wire_bytes, 0),
                  FormatDouble(m.frames, 0), FormatDouble(m.rounds, 0),
                  FormatDouble(m.wall_ms, 1), FormatDouble(rss, 1)});
  }

  table.Print();
  std::printf(
      "\nidentical_pct = share of keyspace shards with no differences.\n"
      "sharded wins the wire once few enough shards survive the Merkle\n"
      "pre-filter to skip the estimate exchange; at 100%% identical the\n"
      "session is four frames. rss_mb is the forked path's peak RSS --\n"
      "the sharded path partitions only differing slices, the monolithic\n"
      "engine copies the whole set.\n");
  return 0;
}
