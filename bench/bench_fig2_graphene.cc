// Figure 2 (a-d): PBS vs Graphene at a target success rate of 239/240, in
// Graphene's best-case scenario (B subset of A).
//
// Paper reference points: PBS communicates 1.2-7.4x less than Graphene
// until d approaches |A| (breakeven between d = 10^4 and 1.6*10^4 at
// |A| = 10^6, where Graphene's Bloom filter starts paying off and its
// per-element cost drops); PBS encodes 1.34-11.38x faster; PBS decodes
// somewhat slower (1.20-2.28x).

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  auto scale = bench::DefaultScale();
  // Ensure a point past the BF breakeven (scaled to |A|).
  const size_t breakeven_probe = scale.set_size / 10;
  if (std::find(scale.d_grid.begin(), scale.d_grid.end(), breakeven_probe) ==
      scale.d_grid.end()) {
    scale.d_grid.push_back(breakeven_probe);
  }
  bench::PrintHeader("Figure 2: PBS vs Graphene (p0 = 239/240, B in A)",
                     scale);

  bench::Recorder table("fig2_graphene", {"d", "scheme", "success", "KB", "xMin", "encode_s",
                     "decode_s"});
  for (const std::string scheme : {"pbs", "graphene"}) {
    for (size_t d : scale.d_grid) {
      ExperimentConfig config;
      config.set_size = scale.set_size;
      config.d = d;
      config.instances = scale.instances;
      config.threads = 0;
      config.seed = 0xF162 + d;
      config.pbs.p0 = 239.0 / 240.0;
      const RunStats stats = RunScheme(scheme, config);
      table.AddRow({std::to_string(d),
                    SchemeRegistry::Instance().DisplayName(scheme),
                    FormatDouble(stats.success_rate, 4),
                    FormatDouble(stats.mean_bytes / 1024.0, 3),
                    FormatDouble(stats.overhead_ratio, 2),
                    FormatDouble(stats.mean_encode_seconds, 4),
                    FormatDouble(stats.mean_decode_seconds, 5)});
    }
  }
  table.Print();
  std::printf(
      "\nShape checks vs paper: PBS KB < Graphene KB until d nears |A|/10; "
      "Graphene's per-element cost falls past the BF breakeven.\n");
  return 0;
}
