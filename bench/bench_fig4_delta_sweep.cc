// Figure 4 (a-d) / Appendix J.2: PBS as a function of delta (the average
// number of distinct elements per group), at d = 10^4.
//
// Paper reference: delta is the knob trading communication for
// computation -- communication overhead generally decreases with delta
// while encoding and decoding times increase.

#include <cstdio>

#include "bench_common.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  auto scale = bench::DefaultScale();
  const size_t d = bench::FullMode() ? 10000 : 3000;
  bench::PrintHeader("Figure 4: PBS delta sweep (p0 = 0.99)", scale);
  std::printf("d = %zu\n\n", d);

  bench::Recorder table("fig4_delta_sweep", {"delta", "success", "KB", "xMin", "encode_s",
                     "decode_s", "n", "t"});
  for (int delta : {3, 6, 9, 12, 15, 18, 21, 24, 27, 30}) {
    ExperimentConfig config;
    config.set_size = scale.set_size;
    config.d = d;
    config.instances = scale.instances;
    config.threads = 0;
    config.seed = 0xF164 + delta;
    config.pbs.delta = delta;
    // Wider bitmaps become attractive at large delta.
    config.pbs.optimizer.max_m = 13;
    const RunStats stats = RunScheme("pbs", config);
    const PbsPlan plan =
        PlanFor(config.pbs, static_cast<int>(1.38 * d));
    table.AddRow({std::to_string(delta), FormatDouble(stats.success_rate, 3),
                  FormatDouble(stats.mean_bytes / 1024.0, 3),
                  FormatDouble(stats.overhead_ratio, 2),
                  FormatDouble(stats.mean_encode_seconds, 4),
                  FormatDouble(stats.mean_decode_seconds, 5),
                  std::to_string(plan.params.n), std::to_string(plan.params.t)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: KB decreases as delta grows; encode/decode "
      "time increases.\n");
  return 0;
}
