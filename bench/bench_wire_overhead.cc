// True transfer sizes: abstract payload accounting vs framed wire bytes.
//
// The schemes' data_bytes reproduce the paper's accounting (tightly packed
// payloads, estimator excluded). A deployment pays more: the ToW estimate
// exchange, the handshake, and a 20-byte header + CRC per frame. This
// bench runs every registered scheme through a real loopback session
// (core/wire_session.h) and reports both numbers side by side, plus the
// frame count — the overhead a capacity planner actually provisions for.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "pbs/core/set_reconciler.h"
#include "pbs/core/wire_session.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/workload.h"

using namespace pbs;

int main() {
  const auto scale = bench::DefaultScale();
  const size_t set_size = bench::FullMode() ? 100000 : 20000;
  const int instances = bench::FullMode() ? 20 : 5;
  std::printf("== Wire overhead: payload vs framed bytes ==\n");
  std::printf("mode=%s |A|=%zu instances=%d\n\n",
              bench::FullMode() ? "FULL" : "quick", set_size, instances);
  (void)scale;

  bench::Recorder table("wire_overhead", {"d", "scheme", "payload_B", "estimator_B", "wire_B",
                     "frames", "overhead", "success"});
  for (size_t d : {size_t{10}, size_t{100}, size_t{1000}}) {
    for (const std::string& name : SchemeRegistry::Instance().Names()) {
      double payload = 0, estimator = 0, wire = 0, frames = 0, success = 0;
      for (int i = 0; i < instances; ++i) {
        const SetPair pair = GenerateSetPair(
            set_size, d, 32, 0x31BE + d * 131 + static_cast<uint64_t>(i));
        SessionConfig config;
        config.scheme_name = name;
        config.options.pbs.max_rounds = 8;
        config.seed = 0xBE7 + i;
        config.estimate_seed = 0xE57 + i;
        const SessionResult r = RunLoopbackSession(config, pair.a, pair.b);
        if (!r.ok) continue;
        payload += static_cast<double>(r.outcome.data_bytes);
        estimator += static_cast<double>(r.outcome.estimator_bytes);
        wire += static_cast<double>(r.outcome.wire_bytes);
        frames += r.outcome.wire_frames;
        success += r.outcome.success ? 1 : 0;
      }
      const double n = instances;
      table.AddRow({std::to_string(d), name, FormatDouble(payload / n, 0),
                    FormatDouble(estimator / n, 0), FormatDouble(wire / n, 0),
                    FormatDouble(frames / n, 1),
                    FormatDouble(wire / (payload + estimator), 3),
                    FormatDouble(success / n, 2)});
    }
  }
  table.Print();
  std::printf("\noverhead = framed wire bytes / (payload + estimator) -- the\n"
              "multiplier between the paper's accounting and a real socket.\n");
  return 0;
}
