// Table 2 / Appendix J.1: empirical PMF of the number of rounds PBS needs
// to reconcile everything, with the round cap lifted.
//
// Paper reference (|A| = 10^6, 1000 instances):
//   d=10:     1 -> 0.804, 2 -> 0.188, 3 -> 0.008
//   d=100:    1 -> 0.217, 2 -> 0.760, 3 -> 0.023
//   d=1000:   1 -> 0,     2 -> 0.957, 3 -> 0.043
//   d=10000:  1 -> 0,     2 -> 0.907, 3 -> 0.093
//   d=100000: 1 -> 0,     2 -> 0.818, 3 -> 0.182
// (average rounds 1.20 / 1.81 / 2.04 / 2.09 / 2.18).

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/runner.h"

using namespace pbs;

int main() {
  const auto scale = bench::DefaultScale();
  bench::PrintHeader("Table 2: rounds-to-completion PMF (unbounded rounds)",
                     scale);

  bench::Recorder table("table2_rounds_pmf", {"d", "r=1", "r=2", "r=3", "r>=4", "mean_rounds",
                     "success"});
  for (size_t d : scale.d_grid) {
    ExperimentConfig config;
    config.set_size = scale.set_size;
    config.d = d;
    config.instances = scale.instances;
    config.threads = 0;
    config.seed = 0x7AB2E + d;
    config.pbs.max_rounds = 64;  // Run to completion.
    std::map<int, int> pmf;
    const RunStats stats = RunSchemeWithCallback(
        "pbs", config,
        [&pmf](const InstanceOutcome& outcome) { ++pmf[outcome.rounds]; });
    const double n = config.instances;
    int tail = 0;
    for (const auto& [rounds, count] : pmf) {
      if (rounds >= 4) tail += count;
    }
    table.AddRow({std::to_string(d), FormatDouble(pmf[1] / n, 3),
                  FormatDouble(pmf[2] / n, 3), FormatDouble(pmf[3] / n, 3),
                  FormatDouble(tail / n, 3),
                  FormatDouble(stats.mean_rounds, 2),
                  FormatDouble(stats.success_rate, 3)});
  }
  table.Print();
  std::printf(
      "\nShape check vs paper: mass shifts from r=1 toward r=2..3 as d "
      "grows; mean rounds 1.2 -> ~2.2.\n");
  return 0;
}
