// Ablation: design choices inside the BCH stack.
//
//  (1) Berlekamp-Massey vs Peterson-Gorenstein-Zierler for the error
//      locator: BM is O(t^2), PGZ is O(t^3)+retries -- this quantifies why
//      the production path uses BM (the paper cites the O(t^2)
//      Levinson/Toeplitz bound; BM achieves it).
//  (2) Chien search vs Berlekamp trace splitting for root finding as the
//      field grows -- why bitmap fields (m <= 11) use Chien and the
//      PinSketch field (m = 32) must use trace splitting.

#include <chrono>
#include <cstdio>
#include <set>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/bch/pgz_decoder.h"
#include "pbs/common/rng.h"
#include "pbs/gf/roots.h"
#include "pbs/sim/metrics.h"

#include "bench_common.h"

using namespace pbs;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<uint64_t> Syndromes(const GF2m& f,
                                const std::vector<uint64_t>& locators,
                                int t) {
  std::vector<uint64_t> s(2 * t, 0);
  for (uint64_t x : locators) {
    uint64_t p = 1;
    for (int k = 1; k <= 2 * t; ++k) {
      p = f.Mul(p, x);
      s[k - 1] ^= p;
    }
  }
  return s;
}

std::vector<uint64_t> Distinct(const GF2m& f, int count, Xoshiro256* rng) {
  std::set<uint64_t> s;
  while (static_cast<int>(s.size()) < count) {
    s.insert(rng->NextBounded(f.order()) + 1);
  }
  return {s.begin(), s.end()};
}

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

int main() {
  std::printf("== Ablation: locator solvers and root finders ==\n\n");

  std::printf("(1) BM vs PGZ locator time (GF(2^32), 20 reps each):\n");
  bench::Recorder solver("ablation_decoders_solver",
                         {"t=errors", "bm_ms", "pgz_ms", "agree"});
  GF2m f32(32);
  Xoshiro256 rng(1);
  for (int t : {5, 10, 20, 40, 80}) {
    const auto locators = Distinct(f32, t, &rng);
    const auto syndromes = Syndromes(f32, locators, t);
    double bm_ms = 0, pgz_ms = 0;
    bool agree = true;
    for (int rep = 0; rep < 20; ++rep) {
      auto start = Clock::now();
      auto bm = BerlekampMassey(f32, syndromes);
      bm_ms += MsSince(start);
      start = Clock::now();
      auto pgz = PgzLocator(f32, syndromes);
      pgz_ms += MsSince(start);
      agree = agree && pgz.has_value() && *pgz == bm.lambda;
    }
    solver.AddRow({std::to_string(t), FormatDouble(bm_ms / 20, 3),
                   FormatDouble(pgz_ms / 20, 3), agree ? "yes" : "NO"});
  }
  solver.Print();

  std::printf("\n(2) Chien vs trace-split root finding (deg = 13):\n");
  bench::Recorder roots("ablation_decoders_roots",
                        {"field", "chien_ms", "trace_ms"});
  for (int m : {8, 10, 11, 13}) {
    GF2m f(m);
    Xoshiro256 local(m);
    const auto rs = Distinct(f, 13, &local);
    GFPoly p = GFPoly::One(f);
    for (uint64_t r : rs) p = p.Mul(GFPoly(f, {r, 1}));
    auto start = Clock::now();
    for (int rep = 0; rep < 20; ++rep) ChienSearch(p);
    const double chien_ms = MsSince(start) / 20;
    start = Clock::now();
    for (int rep = 0; rep < 20; ++rep) FindDistinctNonzeroRoots(p, rep);
    const double trace_ms = MsSince(start) / 20;
    roots.AddRow({"GF(2^" + std::to_string(m) + ")",
                  FormatDouble(chien_ms, 3), FormatDouble(trace_ms, 3)});
  }
  // m = 32: Chien is infeasible (2^32 evaluations); trace only.
  {
    GF2m f(32);
    Xoshiro256 local(32);
    const auto rs = Distinct(f, 13, &local);
    GFPoly p = GFPoly::One(f);
    for (uint64_t r : rs) p = p.Mul(GFPoly(f, {r, 1}));
    auto start = Clock::now();
    for (int rep = 0; rep < 20; ++rep) FindDistinctNonzeroRoots(p, rep);
    roots.AddRow({"GF(2^32)", "infeasible", FormatDouble(MsSince(start) / 20, 3)});
  }
  roots.Print();
  std::printf(
      "\nConclusion: Chien wins in bitmap-sized fields (the kChienThreshold "
      "cutover); trace splitting is mandatory at m = 32.\n");
  return 0;
}
