#!/usr/bin/env bash
# Loopback serve/connect smoke test: reconciles a 10k-element set with 100
# differences over TCP for EVERY scheme in the registry, as CI's end-to-end
# check of the framed session layer (docs/WIRE_FORMAT.md). Stage 2 then
# points 8 PARALLEL connects (mixed schemes) at ONE serve process to prove
# the event-loop server (net/ReconcileServer) multiplexes sessions, and
# stage 3 repeats that with 64 parallel connects against a `--shards 4`
# server to exercise the acceptor->shard fd handoff end to end.
#
# Usage: scripts/smoke_serve_connect.sh [path-to-pbs_cli]   (default build/pbs_cli)
set -euo pipefail

CLI="${1:-build/pbs_cli}"
PORT="${SMOKE_PORT:-7911}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen "$WORK/a.txt" 10000 --seed 7 >/dev/null
"$CLI" mutate "$WORK/a.txt" "$WORK/b.txt" --drop 50 --add 50 --seed 8 >/dev/null

schemes=$("$CLI" list-schemes | tail -n +2 | awk '{print $1}')
for scheme in $schemes; do
  : >"$WORK/serve.log"
  "$CLI" serve "$WORK/b.txt" --port "$PORT" --once 2>"$WORK/serve.log" &
  serve_pid=$!
  # Wait for the listener, not a fixed delay: serve logs "serving ..."
  # after bind+listen succeed.
  for _ in $(seq 1 100); do
    grep -q "^serving " "$WORK/serve.log" && break
    sleep 0.1
  done
  out=$("$CLI" connect "$WORK/a.txt" --host 127.0.0.1 --port "$PORT" \
        --scheme "$scheme" --quiet)
  wait "$serve_pid" || { echo "FAIL: serve side ($scheme)"; cat "$WORK/serve.log"; exit 1; }
  if [[ "$out" != "100 differences" ]]; then
    echo "FAIL: $scheme recovered '$out', expected '100 differences'"
    exit 1
  fi
  echo "OK: $scheme reconciled 10000 keys / 100 diffs over TCP"
done
echo "smoke test passed for all schemes"

# ---- stage 2: one server, 8 parallel clients ------------------------------
: >"$WORK/serve.log"
"$CLI" serve "$WORK/b.txt" --port "$PORT" --max-sessions 16 --stats \
  2>"$WORK/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for _ in $(seq 1 100); do
  grep -q "^serving " "$WORK/serve.log" && break
  sleep 0.1
done

# Mixed schemes, distinct seeds, all against the same serve process.
schemes_arr=($schemes)
pids=()
for i in $(seq 0 7); do
  scheme="${schemes_arr[$(( i % ${#schemes_arr[@]} ))]}"
  (
    out=$("$CLI" connect "$WORK/a.txt" --host 127.0.0.1 --port "$PORT" \
          --scheme "$scheme" --seed $(( 3000 + i )) --quiet)
    [[ "$out" == "100 differences" ]] || {
      echo "FAIL: parallel client $i ($scheme) got '$out'"
      exit 1
    }
  ) &
  pids+=($!)
done
fail=0
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
if [[ "$fail" != 0 ]]; then
  echo "FAIL: parallel stage"
  cat "$WORK/serve.log"
  exit 1
fi
sessions=$(grep -c "^session scheme=" "$WORK/serve.log" || true)
if [[ "$sessions" != 8 ]]; then
  echo "FAIL: server logged $sessions sessions, expected 8"
  cat "$WORK/serve.log"
  exit 1
fi
echo "smoke test passed: 8 parallel clients against one server"

# ---- stage 3: sharded server (--shards 4), 64 parallel clients ------------
: >"$WORK/serve.log"
"$CLI" serve "$WORK/b.txt" --port "$PORT" --shards 4 --max-sessions 64 \
  --stats 2>"$WORK/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for _ in $(seq 1 100); do
  grep -q "^serving " "$WORK/serve.log" && break
  sleep 0.1
done
grep -q "4 shards" "$WORK/serve.log" || {
  echo "FAIL: serve did not report 4 shards"
  cat "$WORK/serve.log"
  exit 1
}

pids=()
for i in $(seq 0 63); do
  scheme="${schemes_arr[$(( i % ${#schemes_arr[@]} ))]}"
  (
    out=$("$CLI" connect "$WORK/a.txt" --host 127.0.0.1 --port "$PORT" \
          --scheme "$scheme" --seed $(( 4000 + i )) --quiet)
    [[ "$out" == "100 differences" ]] || {
      echo "FAIL: sharded client $i ($scheme) got '$out'"
      exit 1
    }
  ) &
  pids+=($!)
done
fail=0
for pid in "${pids[@]}"; do
  wait "$pid" || fail=1
done
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
if [[ "$fail" != 0 ]]; then
  echo "FAIL: sharded stage"
  cat "$WORK/serve.log"
  exit 1
fi
sessions=$(grep -c "^session scheme=" "$WORK/serve.log" || true)
if [[ "$sessions" != 64 ]]; then
  echo "FAIL: sharded server logged $sessions sessions, expected 64"
  cat "$WORK/serve.log"
  exit 1
fi
echo "smoke test passed: 64 parallel clients against a 4-shard server"

# ---- stage 4: keyspace-sharded session on a 10^6-key set ------------------
# A near-identical million-key pair (2 differences): the Merkle pre-filter
# names the couple of differing keyspace shards, the estimate exchange is
# skipped, and the sharded session must land under the monolithic wire
# total (docs/WIRE_FORMAT.md section 2.5). wire= totals come from the
# connect summary line on stderr.
"$CLI" gen "$WORK/big_b.txt" 1000000 --seed 11 >/dev/null
"$CLI" mutate "$WORK/big_b.txt" "$WORK/big_a.txt" --drop 1 --add 1 \
  --seed 12 >/dev/null

run_big() {  # run_big <extra connect flags...> -> "<diffs>|<wire bytes>"
  : >"$WORK/serve.log"
  "$CLI" serve "$WORK/big_b.txt" --port "$PORT" --once 2>"$WORK/serve.log" &
  serve_pid=$!
  for _ in $(seq 1 100); do
    grep -q "^serving " "$WORK/serve.log" && break
    sleep 0.1
  done
  local out
  out=$("$CLI" connect "$WORK/big_a.txt" --host 127.0.0.1 --port "$PORT" \
        --scheme pbs --quiet "$@" 2>"$WORK/connect.log")
  wait "$serve_pid" || { echo "FAIL: big-set serve side"; cat "$WORK/serve.log"; exit 1; }
  local wire
  wire=$(sed -n 's/.*wire=\([0-9]*\)B.*/\1/p' "$WORK/connect.log")
  echo "${out}|${wire}"
}

mono=$(run_big)
sharded=$(run_big --shards-keyspace 16)
mono_bytes="${mono##*|}"
sharded_bytes="${sharded##*|}"
for result in "$mono" "$sharded"; do
  if [[ "${result%%|*}" != "2 differences" ]]; then
    echo "FAIL: big-set reconcile got '${result%%|*}', expected '2 differences'"
    cat "$WORK/connect.log"
    exit 1
  fi
done
if [[ -z "$mono_bytes" || -z "$sharded_bytes" ]]; then
  echo "FAIL: could not parse wire= totals (mono='$mono' sharded='$sharded')"
  cat "$WORK/connect.log"
  exit 1
fi
if (( sharded_bytes >= mono_bytes )); then
  echo "FAIL: sharded session spent ${sharded_bytes}B, monolithic ${mono_bytes}B"
  exit 1
fi
echo "smoke test passed: --shards-keyspace 16 reconciled 10^6 keys in ${sharded_bytes}B vs ${mono_bytes}B monolithic"

# ---- stage 5: kill mid-sharded-sync, reconnect, resume --------------------
# The injector cuts the first connection before its 10th outgoing frame
# (mid sub-session stream); the client reconnects under --retries and
# re-attaches via RESUME. The resumed attempt must settle only the
# remaining shards, so its wire-last= bytes land strictly under a fresh
# session's wire= total, with the exact same difference.
: >"$WORK/serve.log"
"$CLI" serve "$WORK/b.txt" --port "$PORT" --stats 2>"$WORK/serve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for _ in $(seq 1 100); do
  grep -q "^serving " "$WORK/serve.log" && break
  sleep 0.1
done

out=$("$CLI" connect "$WORK/a.txt" --host 127.0.0.1 --port "$PORT" \
      --shards-keyspace 16 --seed 5001 --quiet 2>"$WORK/fresh.log")
fresh_bytes=$(sed -n 's/.*wire=\([0-9]*\)B.*/\1/p' "$WORK/fresh.log")
if [[ "$out" != "100 differences" || -z "$fresh_bytes" ]]; then
  echo "FAIL: fresh sharded session got '$out' (wire='$fresh_bytes')"
  cat "$WORK/fresh.log"
  exit 1
fi

out=$("$CLI" connect "$WORK/a.txt" --host 127.0.0.1 --port "$PORT" \
      --shards-keyspace 16 --seed 5001 --retries 3 \
      --fault disconnect_after_frames=9,once=1,seed=1 \
      --quiet 2>"$WORK/resume.log")
if [[ "$out" != "100 differences" ]]; then
  echo "FAIL: resumed session got '$out', expected '100 differences'"
  cat "$WORK/resume.log"
  exit 1
fi
grep -q "resilience: attempts=2 resumed=yes stale=no" "$WORK/resume.log" || {
  echo "FAIL: client did not reconnect+resume after the injected disconnect"
  cat "$WORK/resume.log"
  exit 1
}
resumed_bytes=$(sed -n 's/.*wire-last=\([0-9]*\)B.*/\1/p' "$WORK/resume.log")
if [[ -z "$resumed_bytes" ]]; then
  echo "FAIL: could not parse wire-last= from resume summary"
  cat "$WORK/resume.log"
  exit 1
fi
if (( resumed_bytes >= fresh_bytes )); then
  echo "FAIL: resumed attempt spent ${resumed_bytes}B, fresh session ${fresh_bytes}B"
  cat "$WORK/resume.log"
  exit 1
fi
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
echo "smoke test passed: mid-sync disconnect resumed in ${resumed_bytes}B vs ${fresh_bytes}B fresh"
