#!/usr/bin/env bash
# Loopback serve/connect smoke test: reconciles a 10k-element set with 100
# differences over TCP for EVERY scheme in the registry, as CI's end-to-end
# check of the framed session layer (docs/WIRE_FORMAT.md).
#
# Usage: scripts/smoke_serve_connect.sh [path-to-pbs_cli]   (default build/pbs_cli)
set -euo pipefail

CLI="${1:-build/pbs_cli}"
PORT="${SMOKE_PORT:-7911}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

"$CLI" gen "$WORK/a.txt" 10000 --seed 7 >/dev/null
"$CLI" mutate "$WORK/a.txt" "$WORK/b.txt" --drop 50 --add 50 --seed 8 >/dev/null

schemes=$("$CLI" list-schemes | tail -n +2 | awk '{print $1}')
for scheme in $schemes; do
  : >"$WORK/serve.log"
  "$CLI" serve "$WORK/b.txt" --port "$PORT" --once 2>"$WORK/serve.log" &
  serve_pid=$!
  # Wait for the listener, not a fixed delay: serve logs "serving ..."
  # after bind+listen succeed.
  for _ in $(seq 1 100); do
    grep -q "^serving " "$WORK/serve.log" && break
    sleep 0.1
  done
  out=$("$CLI" connect "$WORK/a.txt" --host 127.0.0.1 --port "$PORT" \
        --scheme "$scheme" --quiet)
  wait "$serve_pid" || { echo "FAIL: serve side ($scheme)"; cat "$WORK/serve.log"; exit 1; }
  if [[ "$out" != "100 differences" ]]; then
    echo "FAIL: $scheme recovered '$out', expected '100 differences'"
    exit 1
  fi
  echo "OK: $scheme reconciled 10000 keys / 100 diffs over TCP"
done
echo "smoke test passed for all schemes"
