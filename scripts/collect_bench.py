#!/usr/bin/env python3
"""Merge PBS_BENCH_JSON runs into the repo's recorded perf trajectory.

Each bench binary, when run with PBS_BENCH_JSON=<path>, appends one JSON
object per result row to <path> (JSON lines). This script folds one or
more such files into BENCH_pbs.json, the cumulative machine-readable
record benches are tracked by (see docs/BENCHMARKS.md):

    PBS_BENCH_JSON=/tmp/run.jsonl build/bench_hotpath
    scripts/collect_bench.py /tmp/run.jsonl            # merge into BENCH_pbs.json

Records are deduplicated exactly (identical JSON objects collapse), so
re-merging the same run is idempotent. Pass --run-id to tag the records
of this merge (e.g. a git SHA or CI run number).
"""

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = 1


def load_jsonl(path):
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: skipping malformed line ({err})",
                      file=sys.stderr)
    return records


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="JSON-lines files written via PBS_BENCH_JSON")
    parser.add_argument("--out", default="BENCH_pbs.json",
                        help="merged trajectory file (default: %(default)s)")
    parser.add_argument("--run-id", default=None,
                        help="optional tag stored on this merge's records")
    args = parser.parse_args()

    out_path = Path(args.out)
    merged = {"schema": SCHEMA, "updated": None, "records": []}
    if out_path.exists():
        with open(out_path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and "records" in existing:
            merged["records"] = existing["records"]
        elif isinstance(existing, list):  # Tolerate a bare-array seed file.
            merged["records"] = existing

    seen = {json.dumps(r, sort_keys=True) for r in merged["records"]}
    added = 0
    for path in args.inputs:
        for record in load_jsonl(path):
            if args.run_id is not None:
                record.setdefault("run_id", args.run_id)
            key = json.dumps(record, sort_keys=True)
            if key in seen:
                continue
            seen.add(key)
            merged["records"].append(record)
            added += 1

    merged["updated"] = datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")
    merged["records"].sort(key=lambda r: (str(r.get("bench", "")),
                                          json.dumps(r, sort_keys=True)))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=1)
        fh.write("\n")
    print(f"{out_path}: {added} new record(s), "
          f"{len(merged['records'])} total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
