#!/usr/bin/env python3
"""Merge PBS_BENCH_JSON runs into the repo's recorded perf trajectory.

Each bench binary, when run with PBS_BENCH_JSON=<path>, appends one JSON
object per result row to <path> (JSON lines). This script folds one or
more such files into BENCH_pbs.json, the cumulative machine-readable
record benches are tracked by (see docs/BENCHMARKS.md):

    PBS_BENCH_JSON=/tmp/run.jsonl build/bench_hotpath
    scripts/collect_bench.py /tmp/run.jsonl            # merge into BENCH_pbs.json

Records are deduplicated exactly (identical JSON objects collapse), so
re-merging the same run is idempotent. Pass --run-id to tag the records
of this merge (e.g. a git SHA or CI run number).

Comparison mode: --compare <baseline_run_id> additionally matches every
just-merged ns_per_op or sessions_per_s record against the trajectory
records tagged with that baseline run id (same bench, same identity
fields -- kernel, path, n, t, ...; fields missing on either side, such as
columns added after the baseline was recorded, are ignored) and prints
per-record speedup ratios (> 1 is faster: baseline/new for ns_per_op,
new/baseline for sessions_per_s). Any record worse than baseline by more
than --regression-tolerance (default 10%) fails the script, so CI can
gate on kernel AND server-throughput regressions:

    scripts/collect_bench.py run.jsonl --run-id pr5 --compare pr3 \\
        --report bench_delta.txt
"""

import argparse
import json
import sys
from datetime import datetime, timezone
from pathlib import Path

SCHEMA = 1

# Fields that carry measurements or merge metadata rather than identity:
# two records describing the same kernel configuration differ only here.
MEASUREMENT_KEYS = {
    "ns_per_op", "Mops", "wall_ms", "sessions_per_s", "p50_ms", "p99_ms",
    "wire_B_per_session", "parity", "run_id",
    # Sharded-session economics (bench_sharded_sync): wire_B is the
    # deterministic gated metric, the rest are machine-dependent
    # observations riding on the same row.
    "wire_B", "frames", "rounds", "rss_mb",
    # Derived ratio (simd vs scalar ns_per_op): a measurement like its
    # inputs, never part of a record's identity.
    "speedup",
    # Fault-recovery economics (bench_fault_recovery): reconnect attempt
    # counts and cross-attempt byte totals are observations, not identity.
    "attempts", "resumed", "wire_total_B",
    # Hardware-capability tag (cpu::FeatureString()): metadata, not
    # identity, so records stay comparable across machines.
    "cpu",
}

# Metrics --compare gates on, and which direction is better. A record is
# compared on its first metric present in this order.
COMPARE_METRICS = (
    ("ns_per_op", "lower"),
    ("sessions_per_s", "higher"),
    # Framed session bytes (bench_sharded_sync): fully determined by the
    # seeds, so any drift at all is a protocol change -- the tolerance
    # only forgives one that got *cheaper*.
    ("wire_B", "lower"),
)


def compare_metric(record):
    for key, direction in COMPARE_METRICS:
        if key in record:
            return key, direction
    return None, None


def load_jsonl(path):
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as err:
                print(f"{path}:{lineno}: skipping malformed line ({err})",
                      file=sys.stderr)
    return records


def identity(record):
    return {k: v for k, v in record.items() if k not in MEASUREMENT_KEYS}


def matches(new, base):
    """Same kernel configuration: every identity field present on BOTH
    sides must agree (columns only one side has -- e.g. added after the
    baseline was recorded -- do not block the match)."""
    new_id, base_id = identity(new), identity(base)
    shared = set(new_id) & set(base_id)
    return bool(shared) and all(new_id[k] == base_id[k] for k in shared)


def describe(record):
    parts = [str(record.get("bench", "?"))]
    for key in ("kernel", "path", "scheme", "m", "n", "t", "d", "size",
                "sessions", "window", "shards", "identical_pct", "threads",
                "mode"):
        if key in record:
            parts.append(f"{key}={record[key]}")
    return " ".join(parts)


def compare(new_records, trajectory, baseline_run_id, tolerance, report_path):
    baseline = [r for r in trajectory
                if r.get("run_id") == baseline_run_id
                and compare_metric(r)[0] is not None]
    if not baseline:
        available = sorted({str(r["run_id"]) for r in trajectory
                            if r.get("run_id") is not None})
        print(f"--compare: no comparable records with run_id "
              f"'{baseline_run_id}' in the trajectory", file=sys.stderr)
        if available:
            print("available run_ids: " + ", ".join(available),
                  file=sys.stderr)
        else:
            print("the trajectory has no tagged records at all "
                  "(merge with --run-id first)", file=sys.stderr)
        return 1

    lines = [f"speedups vs run_id '{baseline_run_id}' "
             f"(ratio > 1 is faster, "
             f"regression threshold {tolerance:.0%}):", ""]
    regressions = []
    compared = 0
    matched_baseline_ids = set()
    for new in new_records:
        metric, direction = compare_metric(new)
        if metric is None:
            continue
        candidates = [b for b in baseline
                      if metric in b and matches(new, b)]
        if not candidates:
            continue
        matched_baseline_ids.update(id(b) for b in candidates)
        # Ambiguity (a baseline predating a new identity column) resolves
        # to the strictest bar for the new record: the fastest baseline.
        if direction == "lower":
            base = min(candidates, key=lambda r: float(r[metric]))
        else:
            base = max(candidates, key=lambda r: float(r[metric]))
        new_val = float(new[metric])
        base_val = float(base[metric])
        if direction == "lower":
            ratio = base_val / new_val if new_val > 0 else float("inf")
            regressed = new_val > base_val * (1.0 + tolerance)
        else:
            ratio = new_val / base_val if base_val > 0 else float("inf")
            regressed = new_val < base_val * (1.0 - tolerance)
        flag = ""
        if regressed:
            flag = "  << REGRESSION"
            regressions.append(describe(new))
        lines.append(f"  {describe(new):<60} {base_val:>12.1f} -> "
                     f"{new_val:>12.1f} {metric}   x{ratio:5.2f}{flag}")
        compared += 1

    # A baseline kernel the new run never produced would otherwise vanish
    # from the report silently -- exactly how a dropped bench or a renamed
    # identity column slips past CI. Warn loudly (but do not fail: the
    # baseline may legitimately contain benches this run did not execute).
    missing = [b for b in baseline if id(b) not in matched_baseline_ids]
    if missing:
        lines.append("")
        lines.append(f"WARNING: {len(missing)} baseline record(s) matched "
                     f"no record of this run (bench not run, kernel "
                     f"removed, or identity fields renamed):")
        for b in missing:
            lines.append(f"  {describe(b)}")
        print(f"--compare: WARNING: {len(missing)} baseline record(s) "
              f"from run_id '{baseline_run_id}' matched nothing in this "
              f"run", file=sys.stderr)

    lines.append("")
    lines.append(f"{compared} record(s) compared, "
                 f"{len(regressions)} regression(s)")
    text = "\n".join(lines)
    print(text)
    if report_path:
        Path(report_path).write_text(text + "\n", encoding="utf-8")
        print(f"delta report written to {report_path}")
    if regressions:
        print("FAIL: regression(s) beyond tolerance:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    if compared == 0:
        print("--compare: no new record matched the baseline",
              file=sys.stderr)
        return 1
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("inputs", nargs="+",
                        help="JSON-lines files written via PBS_BENCH_JSON")
    parser.add_argument("--out", default="BENCH_pbs.json",
                        help="merged trajectory file (default: %(default)s)")
    parser.add_argument("--run-id", default=None,
                        help="optional tag stored on this merge's records")
    parser.add_argument("--compare", metavar="BASELINE_RUN_ID", default=None,
                        help="compare the merged records against the "
                             "trajectory records with this run_id and fail "
                             "on regressions")
    parser.add_argument("--regression-tolerance", type=float, default=0.10,
                        help="fractional slowdown vs baseline that counts "
                             "as a regression (default: %(default)s)")
    parser.add_argument("--report", default=None,
                        help="also write the --compare delta report to this "
                             "file")
    args = parser.parse_args()

    out_path = Path(args.out)
    merged = {"schema": SCHEMA, "updated": None, "records": []}
    if out_path.exists():
        with open(out_path, "r", encoding="utf-8") as fh:
            existing = json.load(fh)
        if isinstance(existing, dict) and "records" in existing:
            merged["records"] = existing["records"]
        elif isinstance(existing, list):  # Tolerate a bare-array seed file.
            merged["records"] = existing

    seen = {json.dumps(r, sort_keys=True) for r in merged["records"]}
    added = 0
    new_records = []
    for path in args.inputs:
        for record in load_jsonl(path):
            if args.run_id is not None:
                record.setdefault("run_id", args.run_id)
            new_records.append(record)
            key = json.dumps(record, sort_keys=True)
            if key in seen:
                continue
            seen.add(key)
            merged["records"].append(record)
            added += 1

    merged["updated"] = datetime.now(timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%SZ")
    merged["records"].sort(key=lambda r: (str(r.get("bench", "")),
                                          json.dumps(r, sort_keys=True)))
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(merged, fh, indent=1)
        fh.write("\n")
    print(f"{out_path}: {added} new record(s), "
          f"{len(merged['records'])} total")

    if args.compare is not None:
        return compare(new_records, merged["records"], args.compare,
                       args.regression_tolerance, args.report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
