#include "pbs/hash/hash_family.h"

#include "pbs/common/rng.h"

namespace pbs {

uint64_t HashFamily::Salt(Role role, uint64_t a, uint64_t b, uint64_t c) const {
  // Chain SplitMix64 over the coordinates; each step is a bijective mix of
  // the accumulated state, so distinct (role, a, b, c) give distinct salts.
  SplitMix64 sm(master_seed_ ^ (static_cast<uint64_t>(role) * 0xA24BAED4963EE407ull));
  uint64_t s = sm.Next();
  s ^= SplitMix64(a ^ s).Next();
  s ^= SplitMix64(b ^ (s * 3)).Next();
  s ^= SplitMix64(c ^ (s * 5)).Next();
  return s;
}

}  // namespace pbs
