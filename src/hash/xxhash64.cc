#include "pbs/hash/xxhash64.h"

#include <cstring>

#include "pbs/common/cpu_features.h"

// The batched-u64 AVX2 kernel is compiled with a per-function target
// attribute (no global -mavx2 needed) and only called after cpu::HasAvx2()
// confirmed the instructions exist. PBS_DISABLE_SIMD (CMake:
// -DPBS_DISABLE_SIMD=ON) compiles it out, leaving the portable multi-chain
// path as the only one -- the CI leg that keeps the fallback honest.
// AArch64 has no 64-bit lane multiply, so NEON uses the same multi-chain
// scalar path (four independent dependency chains feed the OOO core).
#if !defined(PBS_DISABLE_SIMD) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#include <immintrin.h>
#define PBS_HAVE_AVX2_HASH_KERNEL 1
// The 512-bit kernel additionally wants AVX-512DQ's vpmullq (a true
// 64-bit lane multiply -- the operation the AVX2 path has to emulate with
// three 32x32 products) and F's vprolq lane rotate. Same source file,
// per-function target attributes; engaged only after cpu::HasAvx512().
#define PBS_HAVE_AVX512_HASH_KERNEL 1
#endif

namespace pbs {

namespace {

constexpr uint64_t kPrime1 = 0x9E3779B185EBCA87ull;
constexpr uint64_t kPrime2 = 0xC2B2AE3D27D4EB4Full;
constexpr uint64_t kPrime3 = 0x165667B19E3779F9ull;
constexpr uint64_t kPrime4 = 0x85EBCA77C2B2AE63ull;
constexpr uint64_t kPrime5 = 0x27D4EB2F165667C5ull;

inline uint64_t Rotl64(uint64_t x, int r) { return (x << r) | (x >> (64 - r)); }

inline uint64_t Read64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;  // Little-endian hosts only; asserted in tests.
}

inline uint32_t Read32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint64_t Round(uint64_t acc, uint64_t input) {
  acc += input * kPrime2;
  acc = Rotl64(acc, 31);
  acc *= kPrime1;
  return acc;
}

inline uint64_t MergeRound(uint64_t acc, uint64_t val) {
  val = Round(0, val);
  acc ^= val;
  acc = acc * kPrime1 + kPrime4;
  return acc;
}

inline uint64_t Avalanche(uint64_t h) {
  h ^= h >> 33;
  h *= kPrime2;
  h ^= h >> 29;
  h *= kPrime3;
  h ^= h >> 32;
  return h;
}

}  // namespace

uint64_t XxHash64(const void* data, size_t len, uint64_t seed) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  const uint8_t* end = p + len;
  uint64_t h;

  if (len >= 32) {
    const uint8_t* limit = end - 32;
    uint64_t v1 = seed + kPrime1 + kPrime2;
    uint64_t v2 = seed + kPrime2;
    uint64_t v3 = seed;
    uint64_t v4 = seed - kPrime1;
    do {
      v1 = Round(v1, Read64(p));
      v2 = Round(v2, Read64(p + 8));
      v3 = Round(v3, Read64(p + 16));
      v4 = Round(v4, Read64(p + 24));
      p += 32;
    } while (p <= limit);

    h = Rotl64(v1, 1) + Rotl64(v2, 7) + Rotl64(v3, 12) + Rotl64(v4, 18);
    h = MergeRound(h, v1);
    h = MergeRound(h, v2);
    h = MergeRound(h, v3);
    h = MergeRound(h, v4);
  } else {
    h = seed + kPrime5;
  }

  h += static_cast<uint64_t>(len);

  while (p + 8 <= end) {
    uint64_t k1 = Round(0, Read64(p));
    h ^= k1;
    h = Rotl64(h, 27) * kPrime1 + kPrime4;
    p += 8;
  }
  if (p + 4 <= end) {
    h ^= static_cast<uint64_t>(Read32(p)) * kPrime1;
    h = Rotl64(h, 23) * kPrime2 + kPrime3;
    p += 4;
  }
  while (p < end) {
    h ^= (*p) * kPrime5;
    h = Rotl64(h, 11) * kPrime1;
    ++p;
  }

  return Avalanche(h);
}

namespace {

// The full 8-byte-input pipeline of XxHash64 above, specialized so the
// batch kernels (and the u64 convenience overload) skip the generic
// length dispatch: h starts at seed + kPrime5 + len, absorbs the single
// 8-byte lane, and avalanches. Bit-identical to XxHash64(&v, 8, seed).
inline uint64_t HashU64(uint64_t value, uint64_t seed) {
  uint64_t h = seed + kPrime5 + 8;
  h ^= Round(0, value);
  h = Rotl64(h, 27) * kPrime1 + kPrime4;
  return Avalanche(h);
}

}  // namespace

uint64_t XxHash64(uint64_t value, uint64_t seed) { return HashU64(value, seed); }

void XxHash64BatchPortable(const uint64_t* values, size_t count, uint64_t seed,
                           uint64_t* out) {
  // Four independent chains per iteration: one u64 hash is a serial string
  // of five multiplies, so interleaving lets the OOO core overlap their
  // latencies even without SIMD.
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const uint64_t h0 = HashU64(values[i], seed);
    const uint64_t h1 = HashU64(values[i + 1], seed);
    const uint64_t h2 = HashU64(values[i + 2], seed);
    const uint64_t h3 = HashU64(values[i + 3], seed);
    out[i] = h0;
    out[i + 1] = h1;
    out[i + 2] = h2;
    out[i + 3] = h3;
  }
  for (; i < count; ++i) out[i] = HashU64(values[i], seed);
}

void XxHash64BucketBatchPortable(const uint64_t* values, size_t count,
                                 uint64_t seed, uint64_t buckets,
                                 uint64_t bias, uint64_t* out) {
  XxHash64BatchPortable(values, count, seed, out);
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<uint64_t>(
                 (static_cast<__uint128_t>(out[i]) * buckets) >> 64) +
             bias;
  }
}

void XxHash64BatchPortable(const uint64_t* values, const uint64_t* seeds,
                           size_t count, uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const uint64_t h0 = HashU64(values[i], seeds[i]);
    const uint64_t h1 = HashU64(values[i + 1], seeds[i + 1]);
    const uint64_t h2 = HashU64(values[i + 2], seeds[i + 2]);
    const uint64_t h3 = HashU64(values[i + 3], seeds[i + 3]);
    out[i] = h0;
    out[i + 1] = h1;
    out[i + 2] = h2;
    out[i + 3] = h3;
  }
  for (; i < count; ++i) out[i] = HashU64(values[i], seeds[i]);
}

#if defined(PBS_HAVE_AVX2_HASH_KERNEL)

namespace {

// 64x64 -> low-64 lane multiply (AVX2 has no vpmullq): three 32x32->64
// partial products per lane. The cross terms may wrap mod 2^64 before the
// shift; only their low 32 bits survive it, so the sum is still exact.
__attribute__((target("avx2"))) inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

__attribute__((target("avx2"))) inline __m256i Rotl64V(__m256i x, int r) {
  return _mm256_or_si256(_mm256_slli_epi64(x, r), _mm256_srli_epi64(x, 64 - r));
}

// Four u64 hashes in lanes, given the per-lane seeds: the exact HashU64
// pipeline, lane-parallel.
__attribute__((target("avx2"))) inline __m256i HashU64X4(__m256i v,
                                                         __m256i seed) {
  const __m256i p1 = _mm256_set1_epi64x(static_cast<long long>(kPrime1));
  const __m256i p2 = _mm256_set1_epi64x(static_cast<long long>(kPrime2));
  const __m256i p3 = _mm256_set1_epi64x(static_cast<long long>(kPrime3));
  const __m256i p4 = _mm256_set1_epi64x(static_cast<long long>(kPrime4));
  const __m256i p5_len =
      _mm256_set1_epi64x(static_cast<long long>(kPrime5 + 8));
  __m256i h = _mm256_add_epi64(seed, p5_len);
  const __m256i k1 = MulLo64(Rotl64V(MulLo64(v, p2), 31), p1);
  h = _mm256_xor_si256(h, k1);
  h = _mm256_add_epi64(MulLo64(Rotl64V(h, 27), p1), p4);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 33));
  h = MulLo64(h, p2);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 29));
  h = MulLo64(h, p3);
  h = _mm256_xor_si256(h, _mm256_srli_epi64(h, 32));
  return h;
}

__attribute__((target("avx2"))) void BatchAvx2(const uint64_t* values,
                                               size_t count, uint64_t seed,
                                               uint64_t* out) {
  const __m256i seedv = _mm256_set1_epi64x(static_cast<long long>(seed));
  size_t i = 0;
  // Two vectors in flight per iteration: eight hashes whose multiply
  // chains interleave, hiding the 3-instruction MulLo64 latency.
  for (; i + 8 <= count; i += 8) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4));
    const __m256i ha = HashU64X4(va, seedv);
    const __m256i hb = HashU64X4(vb, seedv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), ha);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4), hb);
  }
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        HashU64X4(v, seedv));
  }
  for (; i < count; ++i) out[i] = HashU64(values[i], seed);
}

// Fixed-point bucket reduce on hashed lanes: ((h * n) >> 64) + bias for
// n < 2^32. With n_hi = 0 the 128-bit product's high word collapses to
// (h_hi*n + (h_lo*n >> 32)) >> 32 -- two 32x32 lane multiplies, no
// overflow (h_hi*n <= (2^32-1)^2 leaves room for the carry term).
__attribute__((target("avx2"))) inline __m256i BucketReduce(__m256i h,
                                                            __m256i nv,
                                                            __m256i biasv) {
  const __m256i t1 = _mm256_mul_epu32(_mm256_srli_epi64(h, 32), nv);
  const __m256i t0 = _mm256_mul_epu32(h, nv);
  const __m256i s = _mm256_add_epi64(t1, _mm256_srli_epi64(t0, 32));
  return _mm256_add_epi64(_mm256_srli_epi64(s, 32), biasv);
}

__attribute__((target("avx2"))) void BucketBatchAvx2(const uint64_t* values,
                                                     size_t count,
                                                     uint64_t seed,
                                                     uint64_t buckets,
                                                     uint64_t bias,
                                                     uint64_t* out) {
  const __m256i seedv = _mm256_set1_epi64x(static_cast<long long>(seed));
  const __m256i nv = _mm256_set1_epi64x(static_cast<long long>(buckets));
  const __m256i biasv = _mm256_set1_epi64x(static_cast<long long>(bias));
  size_t i = 0;
  // Four vectors (sixteen hashes) in flight: each lane's five-multiply
  // dependency chain is long, so deep interleave is what actually buys
  // throughput over the scalar four-chain fallback.
  for (; i + 16 <= count; i += 16) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 4));
    const __m256i vc =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 8));
    const __m256i vd =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i + 12));
    const __m256i ha = HashU64X4(va, seedv);
    const __m256i hb = HashU64X4(vb, seedv);
    const __m256i hc = HashU64X4(vc, seedv);
    const __m256i hd = HashU64X4(vd, seedv);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        BucketReduce(ha, nv, biasv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 4),
                        BucketReduce(hb, nv, biasv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 8),
                        BucketReduce(hc, nv, biasv));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i + 12),
                        BucketReduce(hd, nv, biasv));
  }
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        BucketReduce(HashU64X4(v, seedv), nv, biasv));
  }
  for (; i < count; ++i) {
    out[i] = static_cast<uint64_t>((static_cast<__uint128_t>(HashU64(
                                        values[i], seed)) *
                                    buckets) >>
                                   64) +
             bias;
  }
}

__attribute__((target("avx2"))) void BatchAvx2Seeds(const uint64_t* values,
                                                    const uint64_t* seeds,
                                                    size_t count,
                                                    uint64_t* out) {
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(seeds + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), HashU64X4(v, s));
  }
  for (; i < count; ++i) out[i] = HashU64(values[i], seeds[i]);
}

#if defined(PBS_HAVE_AVX512_HASH_KERNEL)

// Eight u64 hashes in zmm lanes: the exact HashU64 pipeline. vpmullq and
// vprolq make each hash five 1-op multiplies plus two 1-op rotates --
// the serial-multiply chain that caps the AVX2 kernel at roughly scalar
// speed runs at full lane width here.
__attribute__((target("avx512f,avx512dq"))) inline __m512i HashU64X8(
    __m512i v, __m512i seed) {
  const __m512i p1 = _mm512_set1_epi64(static_cast<long long>(kPrime1));
  const __m512i p2 = _mm512_set1_epi64(static_cast<long long>(kPrime2));
  const __m512i p3 = _mm512_set1_epi64(static_cast<long long>(kPrime3));
  const __m512i p4 = _mm512_set1_epi64(static_cast<long long>(kPrime4));
  const __m512i p5_len =
      _mm512_set1_epi64(static_cast<long long>(kPrime5 + 8));
  __m512i h = _mm512_add_epi64(seed, p5_len);
  const __m512i k1 = _mm512_mullo_epi64(
      _mm512_rol_epi64(_mm512_mullo_epi64(v, p2), 31), p1);
  h = _mm512_xor_si512(h, k1);
  h = _mm512_add_epi64(_mm512_mullo_epi64(_mm512_rol_epi64(h, 27), p1), p4);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 33));
  h = _mm512_mullo_epi64(h, p2);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 29));
  h = _mm512_mullo_epi64(h, p3);
  h = _mm512_xor_si512(h, _mm512_srli_epi64(h, 32));
  return h;
}

// ((h * n) >> 64) + bias for n < 2^32, in zmm lanes (see BucketReduce).
__attribute__((target("avx512f,avx512dq"))) inline __m512i BucketReduce512(
    __m512i h, __m512i nv, __m512i biasv) {
  const __m512i t1 = _mm512_mul_epu32(_mm512_srli_epi64(h, 32), nv);
  const __m512i t0 = _mm512_mul_epu32(h, nv);
  const __m512i s = _mm512_add_epi64(t1, _mm512_srli_epi64(t0, 32));
  return _mm512_add_epi64(_mm512_srli_epi64(s, 32), biasv);
}

__attribute__((target("avx512f,avx512dq"))) void BatchAvx512(
    const uint64_t* values, size_t count, uint64_t seed, uint64_t* out) {
  const __m512i seedv = _mm512_set1_epi64(static_cast<long long>(seed));
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512i va = _mm512_loadu_si512(values + i);
    const __m512i vb = _mm512_loadu_si512(values + i + 8);
    const __m512i ha = HashU64X8(va, seedv);
    const __m512i hb = HashU64X8(vb, seedv);
    _mm512_storeu_si512(out + i, ha);
    _mm512_storeu_si512(out + i + 8, hb);
  }
  for (; i + 8 <= count; i += 8) {
    _mm512_storeu_si512(out + i,
                        HashU64X8(_mm512_loadu_si512(values + i), seedv));
  }
  for (; i < count; ++i) out[i] = HashU64(values[i], seed);
}

__attribute__((target("avx512f,avx512dq"))) void BucketBatchAvx512(
    const uint64_t* values, size_t count, uint64_t seed, uint64_t buckets,
    uint64_t bias, uint64_t* out) {
  const __m512i seedv = _mm512_set1_epi64(static_cast<long long>(seed));
  const __m512i nv = _mm512_set1_epi64(static_cast<long long>(buckets));
  const __m512i biasv = _mm512_set1_epi64(static_cast<long long>(bias));
  size_t i = 0;
  for (; i + 16 <= count; i += 16) {
    const __m512i va = _mm512_loadu_si512(values + i);
    const __m512i vb = _mm512_loadu_si512(values + i + 8);
    const __m512i ha = HashU64X8(va, seedv);
    const __m512i hb = HashU64X8(vb, seedv);
    _mm512_storeu_si512(out + i, BucketReduce512(ha, nv, biasv));
    _mm512_storeu_si512(out + i + 8, BucketReduce512(hb, nv, biasv));
  }
  for (; i + 8 <= count; i += 8) {
    const __m512i h = HashU64X8(_mm512_loadu_si512(values + i), seedv);
    _mm512_storeu_si512(out + i, BucketReduce512(h, nv, biasv));
  }
  for (; i < count; ++i) {
    out[i] = static_cast<uint64_t>((static_cast<__uint128_t>(HashU64(
                                        values[i], seed)) *
                                    buckets) >>
                                   64) +
             bias;
  }
}

__attribute__((target("avx512f,avx512dq"))) void BatchAvx512Seeds(
    const uint64_t* values, const uint64_t* seeds, size_t count,
    uint64_t* out) {
  size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m512i v = _mm512_loadu_si512(values + i);
    const __m512i s = _mm512_loadu_si512(seeds + i);
    _mm512_storeu_si512(out + i, HashU64X8(v, s));
  }
  for (; i < count; ++i) out[i] = HashU64(values[i], seeds[i]);
}

#endif  // PBS_HAVE_AVX512_HASH_KERNEL

}  // namespace

#endif  // PBS_HAVE_AVX2_HASH_KERNEL

void XxHash64Batch(const uint64_t* values, size_t count, uint64_t seed,
                   uint64_t* out) {
#if defined(PBS_HAVE_AVX512_HASH_KERNEL)
  static const bool use_512 = cpu::HasAvx512();
  if (use_512) {
    BatchAvx512(values, count, seed, out);
    return;
  }
#endif
#if defined(PBS_HAVE_AVX2_HASH_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    BatchAvx2(values, count, seed, out);
    return;
  }
#endif
  XxHash64BatchPortable(values, count, seed, out);
}

void XxHash64BucketBatch(const uint64_t* values, size_t count, uint64_t seed,
                         uint64_t buckets, uint64_t bias, uint64_t* out) {
  const bool small_buckets = buckets - 1 < 0xFFFFFFFFull;  // 0 < b < 2^32.
#if defined(PBS_HAVE_AVX512_HASH_KERNEL)
  static const bool use_512 = cpu::HasAvx512();
  if (use_512 && small_buckets) {
    BucketBatchAvx512(values, count, seed, buckets, bias, out);
    return;
  }
#endif
#if defined(PBS_HAVE_AVX2_HASH_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw && small_buckets) {
    BucketBatchAvx2(values, count, seed, buckets, bias, out);
    return;
  }
#endif
  (void)small_buckets;
  XxHash64BucketBatchPortable(values, count, seed, buckets, bias, out);
}

void XxHash64Batch(const uint64_t* values, const uint64_t* seeds, size_t count,
                   uint64_t* out) {
#if defined(PBS_HAVE_AVX512_HASH_KERNEL)
  static const bool use_512 = cpu::HasAvx512();
  if (use_512) {
    BatchAvx512Seeds(values, seeds, count, out);
    return;
  }
#endif
#if defined(PBS_HAVE_AVX2_HASH_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    BatchAvx2Seeds(values, seeds, count, out);
    return;
  }
#endif
  XxHash64BatchPortable(values, seeds, count, out);
}

}  // namespace pbs
