#include "pbs/hash/fourwise.h"

#include "pbs/common/rng.h"

namespace pbs {

namespace {

// (a * b) mod (2^61 - 1) using 128-bit products and Mersenne folding.
inline uint64_t MulMod(uint64_t a, uint64_t b) {
  __uint128_t prod = static_cast<__uint128_t>(a) * b;
  uint64_t lo = static_cast<uint64_t>(prod) & FourWiseHash::kPrime;
  uint64_t hi = static_cast<uint64_t>(prod >> 61);
  uint64_t s = lo + hi;
  if (s >= FourWiseHash::kPrime) s -= FourWiseHash::kPrime;
  return s;
}

inline uint64_t AddMod(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  if (s >= FourWiseHash::kPrime) s -= FourWiseHash::kPrime;
  return s;
}

}  // namespace

FourWiseHash::FourWiseHash(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& a : a_) {
    // Rejection-sample a uniform value in [0, p).
    uint64_t v;
    do {
      v = sm.Next() & ((uint64_t{1} << 61) - 1);
    } while (v >= kPrime);
    a = v;
  }
}

uint64_t FourWiseHash::Eval(uint64_t x) const {
  uint64_t xm = x % kPrime;
  // Horner evaluation: ((a3 x + a2) x + a1) x + a0.
  uint64_t acc = a_[3];
  acc = AddMod(MulMod(acc, xm), a_[2]);
  acc = AddMod(MulMod(acc, xm), a_[1]);
  acc = AddMod(MulMod(acc, xm), a_[0]);
  return acc;
}

}  // namespace pbs
