#include "pbs/core/wire_session.h"

#include <cmath>
#include <cstring>
#include <thread>
#include <utility>

#include "pbs/common/bitio.h"
#include "pbs/core/messages.h"
#include "pbs/estimator/tow.h"

namespace pbs {

namespace {

using wire::FrameStatus;
using wire::FrameType;
using wire::WireFrame;

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

const char* StatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kTruncated: return "truncated frame";
    case FrameStatus::kBadMagic: return "bad magic";
    case FrameStatus::kBadVersion: return "unsupported wire version";
    case FrameStatus::kBadLength: return "oversized frame";
    case FrameStatus::kBadChecksum: return "frame checksum mismatch";
  }
  return "unknown";
}

// Per-side accounting threaded through every frame send/receive.
struct WireCounters {
  size_t bytes = 0;
  int frames = 0;
};

bool SendFrame(ByteTransport& transport, uint8_t scheme_id, FrameType type,
               uint32_t round, std::vector<uint8_t> payload,
               WireCounters* counters) {
  WireFrame frame;
  frame.type = type;
  frame.scheme = scheme_id;
  frame.round = round;
  frame.payload = std::move(payload);
  const std::vector<uint8_t> encoded = wire::EncodeFrame(frame);
  if (!transport.Send(encoded.data(), encoded.size())) return false;
  counters->bytes += encoded.size();
  counters->frames += 1;
  return true;
}

// Receives one frame: header first (to learn the payload length), then the
// payload, then a full DecodeFrame pass so the checksum covers everything.
FrameStatus RecvFrame(ByteTransport& transport, WireFrame* frame,
                      WireCounters* counters, std::string* error) {
  std::vector<uint8_t> buffer(wire::kFrameHeaderSize);
  if (!transport.Recv(buffer.data(), buffer.size())) {
    *error = "transport closed while reading frame header";
    return FrameStatus::kTruncated;
  }
  size_t payload_length = 0;
  FrameStatus status = wire::InspectFrameHeader(buffer.data(), &payload_length);
  if (status != FrameStatus::kOk) {
    *error = StatusName(status);
    return status;
  }
  buffer.resize(wire::kFrameHeaderSize + payload_length);
  if (payload_length > 0 &&
      !transport.Recv(buffer.data() + wire::kFrameHeaderSize,
                      payload_length)) {
    *error = "transport closed while reading frame payload";
    return FrameStatus::kTruncated;
  }
  size_t consumed = 0;
  status = wire::DecodeFrame(buffer.data(), buffer.size(), frame, &consumed);
  if (status != FrameStatus::kOk) {
    *error = StatusName(status);
    return status;
  }
  counters->bytes += consumed;
  counters->frames += 1;
  return FrameStatus::kOk;
}

bool SendError(ByteTransport& transport, uint8_t scheme_id,
               const std::string& message, WireCounters* counters) {
  return SendFrame(transport, scheme_id, FrameType::kError, 0,
                   std::vector<uint8_t>(message.begin(), message.end()),
                   counters);
}

std::string ErrorText(const WireFrame& frame) {
  return std::string(frame.payload.begin(), frame.payload.end());
}

// ------------------------------------------------------------ handshake --

constexpr uint8_t kHelloHasExactD = 1u << 0;
constexpr uint8_t kHelloStrongVerification = 1u << 1;
constexpr uint8_t kHelloSubuniverseCheck = 1u << 2;

// Wire-carried difference estimates feed InflateEstimate's double->int
// conversion and size per-scheme allocations. The responder-side engines
// reject inflated capacities above 2^20 (kMaxWireDifference), so the
// initiator bounds the raw estimate to 2^19 — leaving 2x headroom for any
// sane inflation factor — and fails with a capacity error up front rather
// than letting the peer report "malformed request" later. Non-finite
// values are rejected outright.
constexpr double kMaxWireEstimate = static_cast<double>(1 << 19);

bool ValidEstimate(double d) {
  return std::isfinite(d) && d >= 0.0 && d <= kMaxWireEstimate;
}

// The HELLO encodes these fields at fixed widths; sending silently
// truncated values would make the responder plan with a different
// configuration than the initiator, so out-of-range configs fail the
// session up front with a diagnostic instead.
bool ValidateSessionConfig(const SessionConfig& config, std::string* error) {
  const PbsConfig& pbs = config.options.pbs;
  auto fail = [error](const char* what) {
    *error = std::string("config field out of wire range: ") + what;
    return false;
  };
  if (config.scheme_name.empty() || config.scheme_name.size() > 64) {
    return fail("scheme name (1-64 chars)");
  }
  if (config.options.sig_bits < 1 || config.options.sig_bits > 63) {
    return fail("sig_bits (1-63)");
  }
  if (config.options.report_sig_bits < 0 ||
      config.options.report_sig_bits > 255) {
    return fail("report_sig_bits (0-255)");
  }
  if (pbs.delta < 1 || pbs.delta > 255) return fail("delta (1-255)");
  if (pbs.target_rounds < 1 || pbs.target_rounds > 255) {
    return fail("target_rounds (1-255)");
  }
  if (pbs.max_rounds < 1 || pbs.max_rounds > 255) {
    return fail("max_rounds (1-255)");
  }
  if (pbs.max_split_depth < 0 || pbs.max_split_depth > 255) {
    return fail("max_split_depth (0-255)");
  }
  if (pbs.ell < 1 || pbs.ell > 65535) return fail("ell (1-65535)");
  if (config.exact_d >= 0.0 && !ValidEstimate(config.exact_d)) {
    return fail("exact_d (finite, <= 1e9)");
  }
  return true;
}

std::vector<uint8_t> EncodeHello(const SessionConfig& config) {
  BitWriter w;
  w.WriteBits(config.scheme_name.size(), 8);
  for (char c : config.scheme_name) {
    w.WriteBits(static_cast<uint8_t>(c), 8);
  }
  const PbsConfig& pbs = config.options.pbs;
  uint8_t flags = 0;
  if (config.exact_d >= 0.0) flags |= kHelloHasExactD;
  if (pbs.strong_verification) flags |= kHelloStrongVerification;
  if (pbs.subuniverse_check) flags |= kHelloSubuniverseCheck;
  w.WriteBits(flags, 8);
  w.WriteBits(static_cast<uint8_t>(config.options.sig_bits), 8);
  w.WriteBits(static_cast<uint8_t>(config.options.report_sig_bits), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.delta), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.target_rounds), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.max_rounds), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.max_split_depth), 8);
  w.WriteBits(static_cast<uint16_t>(pbs.ell), 16);
  w.WriteBits(DoubleBits(pbs.p0), 64);
  w.WriteBits(DoubleBits(pbs.gamma), 64);
  w.WriteBits(config.seed, 64);
  w.WriteBits(config.estimate_seed, 64);
  if (config.exact_d >= 0.0) w.WriteBits(DoubleBits(config.exact_d), 64);
  return w.TakeBytes();
}

bool DecodeHello(const std::vector<uint8_t>& payload, SessionConfig* config) {
  BitReader r(payload);
  const uint64_t name_len = r.ReadBits(8);
  if (name_len == 0 || name_len > 64) return false;
  std::string name;
  for (uint64_t i = 0; i < name_len; ++i) {
    name.push_back(static_cast<char>(r.ReadBits(8)));
  }
  const uint8_t flags = static_cast<uint8_t>(r.ReadBits(8));
  config->scheme_name = std::move(name);
  config->options.sig_bits = static_cast<int>(r.ReadBits(8));
  config->options.report_sig_bits = static_cast<int>(r.ReadBits(8));
  PbsConfig& pbs = config->options.pbs;
  pbs.delta = static_cast<int>(r.ReadBits(8));
  pbs.target_rounds = static_cast<int>(r.ReadBits(8));
  pbs.max_rounds = static_cast<int>(r.ReadBits(8));
  pbs.max_split_depth = static_cast<int>(r.ReadBits(8));
  pbs.ell = static_cast<int>(r.ReadBits(16));
  pbs.p0 = BitsToDouble(r.ReadBits(64));
  pbs.gamma = BitsToDouble(r.ReadBits(64));
  pbs.sig_bits = config->options.sig_bits;
  pbs.strong_verification = (flags & kHelloStrongVerification) != 0;
  pbs.subuniverse_check = (flags & kHelloSubuniverseCheck) != 0;
  config->seed = r.ReadBits(64);
  config->estimate_seed = r.ReadBits(64);
  config->exact_d = (flags & kHelloHasExactD) != 0
                        ? BitsToDouble(r.ReadBits(64))
                        : -1.0;
  if (r.overflowed()) return false;
  if ((flags & kHelloHasExactD) != 0 && !ValidEstimate(config->exact_d)) {
    return false;
  }
  if (pbs.delta < 1 || pbs.max_rounds < 1 || pbs.ell < 1) return false;
  if (config->options.sig_bits < 1 || config->options.sig_bits > 63) {
    return false;
  }
  return true;
}

// DONE summary: success flag, rounds, recovered-difference cardinality.
std::vector<uint8_t> EncodeDone(const ReconcileOutcome& outcome) {
  BitWriter w;
  w.WriteBits(outcome.success ? 1 : 0, 8);
  w.WriteBits(static_cast<uint32_t>(outcome.rounds), 32);
  w.WriteBits(outcome.difference.size(), 64);
  return w.TakeBytes();
}

bool DecodeDone(const std::vector<uint8_t>& payload, bool* success,
                int* rounds, uint64_t* diff_size) {
  BitReader r(payload);
  *success = r.ReadBits(8) != 0;
  *rounds = static_cast<int>(r.ReadBits(32));
  *diff_size = r.ReadBits(64);
  return !r.overflowed();
}

SessionResult Fail(SessionResult result, std::string error) {
  result.ok = false;
  result.error = std::move(error);
  return result;
}

}  // namespace

// -------------------------------------------------------------- initiator --

SessionResult RunInitiatorSession(ByteTransport& transport,
                                  const SessionConfig& config,
                                  const std::vector<uint64_t>& elements) {
  SessionResult result;
  result.scheme = config.scheme_name;
  WireCounters counters;
  const uint8_t scheme_id = wire::SchemeWireId(config.scheme_name);
  auto finish = [&](SessionResult r) {
    r.outcome.wire_bytes = counters.bytes;
    r.outcome.wire_frames = counters.frames;
    return r;
  };

  std::string config_error;
  if (!ValidateSessionConfig(config, &config_error)) {
    return finish(Fail(std::move(result), config_error));
  }
  const auto reconciler =
      SchemeRegistry::Instance().Create(config.scheme_name, config.options);
  if (!reconciler) {
    return finish(Fail(std::move(result),
                       "unknown scheme '" + config.scheme_name + "'"));
  }

  // HELLO / HELLO_ACK.
  if (!SendFrame(transport, scheme_id, FrameType::kHello, 0,
                 EncodeHello(config), &counters)) {
    return finish(Fail(std::move(result), "transport failed sending HELLO"));
  }
  WireFrame frame;
  std::string wire_error;
  if (RecvFrame(transport, &frame, &counters, &wire_error) !=
      FrameStatus::kOk) {
    return finish(Fail(std::move(result), wire_error));
  }
  if (frame.type == FrameType::kError) {
    return finish(
        Fail(std::move(result), "responder rejected: " + ErrorText(frame)));
  }
  if (frame.type != FrameType::kHelloAck) {
    return finish(Fail(std::move(result), "expected HELLO_ACK"));
  }

  // Estimate phase.
  size_t estimator_payload_bytes = 0;
  if (config.exact_d >= 0.0) {
    result.d_hat = config.exact_d;
  } else {
    TowSketch sketch(config.options.pbs.ell, config.estimate_seed);
    sketch.AddAll(elements);
    BitWriter w;
    w.WriteBits(elements.size(), 64);
    sketch.Serialize(&w, elements.size());
    estimator_payload_bytes += w.byte_size();
    if (!SendFrame(transport, scheme_id, FrameType::kEstimateRequest, 0,
                   w.TakeBytes(), &counters)) {
      return finish(
          Fail(std::move(result), "transport failed sending estimate"));
    }
    if (RecvFrame(transport, &frame, &counters, &wire_error) !=
        FrameStatus::kOk) {
      return finish(Fail(std::move(result), wire_error));
    }
    if (frame.type == FrameType::kError) {
      return finish(
          Fail(std::move(result), "responder error: " + ErrorText(frame)));
    }
    if (frame.type != FrameType::kEstimateReply) {
      return finish(Fail(std::move(result), "expected ESTIMATE_REPLY"));
    }
    BitReader r(frame.payload);
    result.d_hat = BitsToDouble(r.ReadBits(64));
    estimator_payload_bytes += frame.payload.size();
    if (r.overflowed() || !std::isfinite(result.d_hat) ||
        result.d_hat < 0.0) {
      return finish(Fail(std::move(result), "malformed estimate reply"));
    }
    if (result.d_hat > kMaxWireEstimate) {
      return finish(Fail(std::move(result),
                         "difference estimate exceeds wire session "
                         "capacity (d-hat > 2^19)"));
    }
  }

  // Scheme phase.
  auto engine =
      reconciler->CreateInitiator(elements, result.d_hat, config.seed);
  if (!engine) {
    SendError(transport, scheme_id, "scheme has no wire protocol", &counters);
    return finish(Fail(std::move(result),
                       "scheme '" + config.scheme_name +
                           "' does not implement a wire protocol"));
  }
  uint32_t exchange = 0;
  while (!engine->done()) {
    ++exchange;
    if (!SendFrame(transport, scheme_id, FrameType::kSchemeRequest, exchange,
                   engine->NextRequest(), &counters)) {
      return finish(
          Fail(std::move(result), "transport failed sending round request"));
    }
    if (RecvFrame(transport, &frame, &counters, &wire_error) !=
        FrameStatus::kOk) {
      return finish(Fail(std::move(result), wire_error));
    }
    if (frame.type == FrameType::kError) {
      return finish(
          Fail(std::move(result), "responder error: " + ErrorText(frame)));
    }
    if (frame.type != FrameType::kSchemeReply) {
      return finish(Fail(std::move(result), "expected SCHEME_REPLY"));
    }
    if (!engine->HandleReply(frame.payload)) {
      SendError(transport, scheme_id, "malformed scheme reply", &counters);
      return finish(Fail(std::move(result), "malformed scheme reply"));
    }
  }
  result.outcome = engine->TakeOutcome();
  result.outcome.estimator_bytes += estimator_payload_bytes;

  // DONE / DONE ack.
  if (!SendFrame(transport, scheme_id, FrameType::kDone, exchange,
                 EncodeDone(result.outcome), &counters)) {
    return finish(Fail(std::move(result), "transport failed sending DONE"));
  }
  if (RecvFrame(transport, &frame, &counters, &wire_error) !=
          FrameStatus::kOk ||
      frame.type != FrameType::kDone) {
    return finish(Fail(std::move(result), "expected DONE ack"));
  }
  result.ok = true;
  return finish(std::move(result));
}

// -------------------------------------------------------------- responder --

SessionResult RunResponderSession(ByteTransport& transport,
                                  const std::vector<uint64_t>& elements) {
  SessionResult result;
  WireCounters counters;
  auto finish = [&](SessionResult r) {
    r.outcome.wire_bytes = counters.bytes;
    r.outcome.wire_frames = counters.frames;
    return r;
  };

  WireFrame frame;
  std::string wire_error;
  if (RecvFrame(transport, &frame, &counters, &wire_error) !=
      FrameStatus::kOk) {
    return finish(Fail(std::move(result), wire_error));
  }
  if (frame.type != FrameType::kHello) {
    SendError(transport, 0, "expected HELLO", &counters);
    return finish(Fail(std::move(result), "expected HELLO"));
  }
  SessionConfig config;
  if (!DecodeHello(frame.payload, &config)) {
    SendError(transport, 0, "malformed HELLO", &counters);
    return finish(Fail(std::move(result), "malformed HELLO"));
  }
  result.scheme = config.scheme_name;
  const uint8_t scheme_id = wire::SchemeWireId(config.scheme_name);
  const auto reconciler =
      SchemeRegistry::Instance().Create(config.scheme_name, config.options);
  if (!reconciler) {
    SendError(transport, scheme_id,
              "unknown scheme '" + config.scheme_name + "'", &counters);
    return finish(Fail(std::move(result),
                       "unknown scheme '" + config.scheme_name + "'"));
  }
  if (!SendFrame(transport, scheme_id, FrameType::kHelloAck, 0, {},
                 &counters)) {
    return finish(Fail(std::move(result), "transport failed sending ack"));
  }

  double d_hat = config.exact_d;  // -1 until the estimate phase runs.
  std::unique_ptr<ReconcileResponder> engine;
  while (true) {
    if (RecvFrame(transport, &frame, &counters, &wire_error) !=
        FrameStatus::kOk) {
      return finish(Fail(std::move(result), wire_error));
    }
    switch (frame.type) {
      case FrameType::kEstimateRequest: {
        BitReader r(frame.payload);
        const uint64_t remote_size = r.ReadBits(64);
        // remote_size sets the per-counter width ceil(log2(2n+1)); cap it
        // so a hostile value cannot push the width past 64 bits (UB in
        // ReadBits) — real sets are orders of magnitude below this.
        if (remote_size > (uint64_t{1} << 48)) {
          SendError(transport, scheme_id, "malformed estimate request",
                    &counters);
          return finish(Fail(std::move(result), "malformed estimate request"));
        }
        TowSketch remote = TowSketch::Deserialize(
            &r, config.options.pbs.ell, config.estimate_seed, remote_size);
        if (r.overflowed()) {
          SendError(transport, scheme_id, "malformed estimate request",
                    &counters);
          return finish(Fail(std::move(result), "malformed estimate request"));
        }
        TowSketch local(config.options.pbs.ell, config.estimate_seed);
        local.AddAll(elements);
        d_hat = TowSketch::Estimate(remote, local);
        BitWriter w;
        w.WriteBits(DoubleBits(d_hat), 64);
        if (!SendFrame(transport, scheme_id, FrameType::kEstimateReply, 0,
                       w.TakeBytes(), &counters)) {
          return finish(
              Fail(std::move(result), "transport failed sending estimate"));
        }
        break;
      }
      case FrameType::kSchemeRequest: {
        if (!engine) {
          if (d_hat < 0.0) {
            SendError(transport, scheme_id,
                      "scheme round before estimate", &counters);
            return finish(
                Fail(std::move(result), "scheme round before estimate"));
          }
          engine = reconciler->CreateResponder(elements, d_hat, config.seed);
          if (!engine) {
            SendError(transport, scheme_id, "scheme has no wire protocol",
                      &counters);
            return finish(Fail(std::move(result),
                               "scheme '" + config.scheme_name +
                                   "' does not implement a wire protocol"));
          }
        }
        std::vector<uint8_t> reply;
        if (!engine->HandleRequest(frame.payload, &reply)) {
          SendError(transport, scheme_id, "malformed scheme request",
                    &counters);
          return finish(Fail(std::move(result), "malformed scheme request"));
        }
        if (!SendFrame(transport, scheme_id, FrameType::kSchemeReply,
                       frame.round, std::move(reply), &counters)) {
          return finish(
              Fail(std::move(result), "transport failed sending reply"));
        }
        break;
      }
      case FrameType::kDone: {
        bool success = false;
        int rounds = 0;
        uint64_t diff_size = 0;
        if (!DecodeDone(frame.payload, &success, &rounds, &diff_size)) {
          return finish(Fail(std::move(result), "malformed DONE"));
        }
        SendFrame(transport, scheme_id, FrameType::kDone, frame.round, {},
                  &counters);
        result.ok = true;
        result.d_hat = d_hat < 0.0 ? 0.0 : d_hat;
        result.outcome.success = success;
        result.outcome.rounds = rounds;
        return finish(std::move(result));
      }
      case FrameType::kError:
        return finish(
            Fail(std::move(result), "initiator error: " + ErrorText(frame)));
      default:
        SendError(transport, scheme_id, "unexpected frame", &counters);
        return finish(Fail(std::move(result), "unexpected frame"));
    }
  }
}

SessionResult RunLoopbackSession(const SessionConfig& config,
                                 const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b) {
  auto transports = MakeLoopbackTransportPair();
  std::unique_ptr<ByteTransport> initiator_end = std::move(transports.first);
  std::unique_ptr<ByteTransport> responder_end = std::move(transports.second);
  std::thread responder([transport = std::move(responder_end), &b]() mutable {
    RunResponderSession(*transport, b);
  });
  SessionResult result = RunInitiatorSession(*initiator_end, config, a);
  // Drop the initiator's end first: if the session aborted before DONE the
  // responder is still blocked in Recv, and the EOF unblocks it.
  initiator_end.reset();
  responder.join();
  return result;
}

}  // namespace pbs
