#include "pbs/core/wire_session.h"

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace pbs {

namespace {

// The blocking shell: one SessionEngine pumped over one ByteTransport.
// kWantRead receives exactly the bytes the engine needs to finish the
// frame in flight (header first, then payload), so the byte-for-byte
// read pattern — and therefore every transport-level failure mode — is
// identical to the historical hand-rolled drivers.
SessionResult DriveBlocking(SessionEngine* engine, ByteTransport& transport) {
  std::vector<uint8_t> buffer;
  for (;;) {
    switch (engine->Status()) {
      case SessionStatus::kWantWrite: {
        const size_t n = engine->outbound_size();
        if (!transport.Send(engine->outbound_data(), n)) {
          engine->FailTransport();
          break;
        }
        engine->ConsumeOutbound(n);
        break;
      }
      case SessionStatus::kWantRead: {
        const size_t need = engine->NeededBytes();
        buffer.resize(need);
        const int64_t remaining = engine->DeadlineRemainingMs();
        if (remaining < 0) {
          // No phase deadline: classic unbounded blocking read.
          if (!transport.Recv(buffer.data(), need)) {
            engine->FeedEof();
            break;
          }
        } else {
          if (remaining == 0) {
            engine->CheckDeadline();  // Fails with a phase diagnostic.
            break;
          }
          const RecvStatus status = transport.RecvTimed(
              buffer.data(), need, static_cast<int>(remaining));
          if (status == RecvStatus::kTimeout) {
            engine->CheckDeadline();
            break;
          }
          if (status == RecvStatus::kClosed) {
            engine->FeedEof();
            break;
          }
        }
        engine->Feed(buffer.data(), need);
        break;
      }
      case SessionStatus::kDone:
      case SessionStatus::kError:
        return engine->TakeResult();
    }
  }
}

}  // namespace

SessionResult RunInitiatorSession(ByteTransport& transport,
                                  const SessionConfig& config,
                                  const std::vector<uint64_t>& elements) {
  SessionEngine engine = SessionEngine::Initiator(config, elements);
  return DriveBlocking(&engine, transport);
}

SessionResult RunResponderSession(ByteTransport& transport,
                                  const std::vector<uint64_t>& elements) {
  SessionEngine engine = SessionEngine::Responder(elements);
  return DriveBlocking(&engine, transport);
}

SessionResult RunUpdateSession(ByteTransport& transport,
                               const std::vector<UpdateBatch>& batches) {
  SessionEngine engine = SessionEngine::Updater(batches);
  return DriveBlocking(&engine, transport);
}

SessionResult RunResilientInitiatorSession(
    const TransportFactory& factory, const SessionConfig& config,
    const std::vector<uint64_t>& elements, const ResilientOptions& options,
    ResilienceReport* report) {
  ResilienceReport local;
  ResilienceReport& rep = report != nullptr ? *report : local;
  rep = ResilienceReport();
  // One shared copy of the set across every attempt: re-attempts (and
  // especially resumes) must reconcile exactly the same elements.
  const auto shared =
      std::make_shared<const std::vector<uint64_t>>(elements);
  RetryBackoff backoff(options.retry);
  SessionConfig attempt_config = config;
  std::shared_ptr<const sync::ShardResumeState> resume;
  SessionResult last;
  last.ok = false;
  last.error = "no attempts made";
  const int max_attempts =
      options.retry.max_attempts < 1 ? 1 : options.retry.max_attempts;
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    ++rep.connect_attempts;
    std::string connect_error;
    std::unique_ptr<ByteTransport> transport = factory(&connect_error);
    if (transport == nullptr) {
      last = SessionResult();
      last.ok = false;
      last.error =
          connect_error.empty() ? "connect failed" : std::move(connect_error);
    } else {
      attempt_config.resume = resume;
      SessionEngine engine = SessionEngine::Initiator(attempt_config, shared);
      ++rep.sessions_run;
      if (resume != nullptr) {
        ++rep.resumed_sessions;
        rep.used_resume = true;
      }
      last = DriveBlocking(&engine, *transport);
      rep.last_wire_bytes = last.outcome.wire_bytes;
      rep.total_wire_bytes += last.outcome.wire_bytes;
      if (last.ok) return last;
      if (last.error.find("stale resume") != std::string::npos) {
        // The responder's set changed: the banked shard outcomes are
        // worthless. Drop the token and restart clean.
        rep.stale_resume = true;
        resume = nullptr;
        backoff.Reset();
      } else if (options.allow_resume && last.resume_state != nullptr) {
        resume = last.resume_state;
      }
    }
    if (attempt == max_attempts) break;
    const int delay = backoff.NextDelayMs();
    if (options.log) {
      options.log("session attempt " + std::to_string(attempt) + " failed (" +
                  last.error + "); " +
                  (resume != nullptr ? "resuming" : "restarting") + " in " +
                  std::to_string(delay) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }
  return last;
}

SessionResult RunLoopbackSession(const SessionConfig& config,
                                 const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b) {
  SessionEngine initiator = SessionEngine::Initiator(config, a);
  SessionEngine responder = SessionEngine::Responder(b);
  // Single-threaded pump: move whichever side's outbound bytes exist into
  // the other side until neither makes progress. The strict ping-pong
  // protocol guarantees that a healthy session always has exactly one
  // side with pending output; both sides idle means both settled (or one
  // failed before producing its next frame, e.g. a config error).
  uint8_t chunk[4096];
  bool progress = true;
  while (progress) {
    progress = false;
    while (initiator.Status() == SessionStatus::kWantWrite) {
      const size_t n = initiator.Poll(chunk, sizeof(chunk));
      responder.Feed(chunk, n);
      progress = true;
    }
    while (responder.Status() == SessionStatus::kWantWrite) {
      const size_t n = responder.Poll(chunk, sizeof(chunk));
      initiator.Feed(chunk, n);
      progress = true;
    }
  }
  if (initiator.Status() == SessionStatus::kWantRead) initiator.FeedEof();
  return initiator.TakeResult();
}

}  // namespace pbs
