#include "pbs/core/wire_session.h"

#include <vector>

namespace pbs {

namespace {

// The blocking shell: one SessionEngine pumped over one ByteTransport.
// kWantRead receives exactly the bytes the engine needs to finish the
// frame in flight (header first, then payload), so the byte-for-byte
// read pattern — and therefore every transport-level failure mode — is
// identical to the historical hand-rolled drivers.
SessionResult DriveBlocking(SessionEngine* engine, ByteTransport& transport) {
  std::vector<uint8_t> buffer;
  for (;;) {
    switch (engine->Status()) {
      case SessionStatus::kWantWrite: {
        const size_t n = engine->outbound_size();
        if (!transport.Send(engine->outbound_data(), n)) {
          engine->FailTransport();
          break;
        }
        engine->ConsumeOutbound(n);
        break;
      }
      case SessionStatus::kWantRead: {
        const size_t need = engine->NeededBytes();
        buffer.resize(need);
        if (!transport.Recv(buffer.data(), need)) {
          engine->FeedEof();
          break;
        }
        engine->Feed(buffer.data(), need);
        break;
      }
      case SessionStatus::kDone:
      case SessionStatus::kError:
        return engine->TakeResult();
    }
  }
}

}  // namespace

SessionResult RunInitiatorSession(ByteTransport& transport,
                                  const SessionConfig& config,
                                  const std::vector<uint64_t>& elements) {
  SessionEngine engine = SessionEngine::Initiator(config, elements);
  return DriveBlocking(&engine, transport);
}

SessionResult RunResponderSession(ByteTransport& transport,
                                  const std::vector<uint64_t>& elements) {
  SessionEngine engine = SessionEngine::Responder(elements);
  return DriveBlocking(&engine, transport);
}

SessionResult RunUpdateSession(ByteTransport& transport,
                               const std::vector<UpdateBatch>& batches) {
  SessionEngine engine = SessionEngine::Updater(batches);
  return DriveBlocking(&engine, transport);
}

SessionResult RunLoopbackSession(const SessionConfig& config,
                                 const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b) {
  SessionEngine initiator = SessionEngine::Initiator(config, a);
  SessionEngine responder = SessionEngine::Responder(b);
  // Single-threaded pump: move whichever side's outbound bytes exist into
  // the other side until neither makes progress. The strict ping-pong
  // protocol guarantees that a healthy session always has exactly one
  // side with pending output; both sides idle means both settled (or one
  // failed before producing its next frame, e.g. a config error).
  uint8_t chunk[4096];
  bool progress = true;
  while (progress) {
    progress = false;
    while (initiator.Status() == SessionStatus::kWantWrite) {
      const size_t n = initiator.Poll(chunk, sizeof(chunk));
      responder.Feed(chunk, n);
      progress = true;
    }
    while (responder.Status() == SessionStatus::kWantWrite) {
      const size_t n = responder.Poll(chunk, sizeof(chunk));
      initiator.Feed(chunk, n);
      progress = true;
    }
  }
  if (initiator.Status() == SessionStatus::kWantRead) initiator.FeedEof();
  return initiator.TakeResult();
}

}  // namespace pbs
