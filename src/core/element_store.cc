#include "pbs/core/element_store.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "pbs/common/checksum.h"
#include "pbs/common/mset_hash.h"
#include "pbs/core/group_state.h"
#include "pbs/gf/gf2m.h"
#include "pbs/hash/hash_family.h"
#include "pbs/sync/shard_planner.h"

namespace pbs {

namespace {

// Open-addressing key -> position map sized for zero-allocation steady
// state. Keys are nonzero signatures at most 63 bits wide (sig_bits <= 63
// would suffice; the store admits up to 64-bit values only when no layout
// is configured, and even then ~0 is reserved), so 0 marks an empty slot
// and ~0 a tombstone. Tombstones are reused on insert, which keeps a
// balanced insert/delete workload from ever growing the table.
class KeyIndex {
 public:
  static constexpr uint64_t kEmpty = 0;
  static constexpr uint64_t kTombstone = ~uint64_t{0};

  explicit KeyIndex(size_t expected = 0) { Rehash(CapacityFor(expected)); }

  // Returns the stored position of `key`, or SIZE_MAX if absent.
  size_t Find(uint64_t key) const {
    size_t i = Mix(key) & mask_;
    while (true) {
      const uint64_t k = keys_[i];
      if (k == key) return vals_[i];
      if (k == kEmpty) return SIZE_MAX;
      i = (i + 1) & mask_;
    }
  }

  // Inserts key -> pos. Returns false if the key is already present.
  bool Insert(uint64_t key, size_t pos) {
    if (used_ + 1 > (keys_.size() * 3) / 4) Rehash(keys_.size() * 2);
    size_t i = Mix(key) & mask_;
    size_t grave = SIZE_MAX;
    while (true) {
      const uint64_t k = keys_[i];
      if (k == key) return false;
      if (k == kTombstone && grave == SIZE_MAX) grave = i;
      if (k == kEmpty) break;
      i = (i + 1) & mask_;
    }
    if (grave != SIZE_MAX) {
      i = grave;  // Reuse the tombstone: used_ stays flat.
    } else {
      ++used_;
    }
    keys_[i] = key;
    vals_[i] = pos;
    ++size_;
    return true;
  }

  // Removes `key`. Returns its old position, or SIZE_MAX if absent.
  size_t Erase(uint64_t key) {
    size_t i = Mix(key) & mask_;
    while (true) {
      const uint64_t k = keys_[i];
      if (k == key) {
        keys_[i] = kTombstone;
        --size_;
        return vals_[i];
      }
      if (k == kEmpty) return SIZE_MAX;
      i = (i + 1) & mask_;
    }
  }

  // Repoints an existing key at a new position (swap-with-last deletes).
  void Reposition(uint64_t key, size_t pos) {
    size_t i = Mix(key) & mask_;
    while (keys_[i] != key) i = (i + 1) & mask_;
    vals_[i] = pos;
  }

  size_t size() const { return size_; }

 private:
  static uint64_t Mix(uint64_t x) {
    // SplitMix64 finalizer: full-avalanche so clustered signatures probe
    // uniformly.
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }

  static size_t CapacityFor(size_t expected) {
    size_t cap = 16;
    while (cap * 3 < (expected + 1) * 4) cap *= 2;
    return cap;
  }

  void Rehash(size_t new_capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<size_t> old_vals = std::move(vals_);
    keys_.assign(new_capacity, kEmpty);
    vals_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    used_ = 0;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      const uint64_t k = old_keys[i];
      if (k != kEmpty && k != kTombstone) {
        Insert(k, old_vals[i]);
      }
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<size_t> vals_;
  size_t mask_ = 0;
  size_t size_ = 0;  // Live keys.
  size_t used_ = 0;  // Live keys + tombstones (probe-chain load).
};

}  // namespace

struct MutableElementStore::Impl {
  mutable std::mutex mu;

  // Writer-side state (guarded by mu).
  std::vector<uint64_t> elements;
  KeyIndex index;
  uint64_t epoch = 0;

  // Incrementally maintained layout (guarded by mu; absent until
  // ConfigureLayout).
  bool configured = false;
  uint64_t seed = 0;
  PbsConfig config;
  PbsPlan plan;
  uint64_t sig_mask = ~uint64_t{0};
  GF2m field{2};  // Placeholder until ConfigureLayout (GF2m needs m >= 2).
  std::vector<uint64_t> bin_salts;    // Round-1 bin salt per root group.
  std::vector<ParityBitmap> bitmaps;  // g bitmaps over [1, n].
  std::vector<uint64_t> syndromes;    // g * t flat odd syndromes.
  std::vector<SetChecksum> checksums;
  PowerSumSketch toggle_scratch{GF2m(2), 1};  // Reused per parity flip.

  // Incrementally maintained per-shard multiset digests (guarded by mu;
  // absent until ConfigureShardChecksums).
  bool shards_configured = false;
  sync::ShardPlan shard_plan;
  std::vector<MsetHash> shard_sums;

  // Published snapshot, swapped atomically (C++17 shared_ptr atomics).
  std::shared_ptr<const StoreSnapshot> snapshot;

  Impl() { PublishLocked(); }

  // Toggles bin `bin` of group `group` in the flat syndrome block: the
  // bin entered or left the odd-parity set, either way its odd power sums
  // XOR in. O(t) field multiplies, no allocation once scratch is sized.
  void ToggleSyndrome(uint32_t group, uint64_t bin) {
    toggle_scratch.Reset();
    toggle_scratch.Toggle(bin);
    const std::vector<uint64_t>& odd = toggle_scratch.odd_syndromes();
    uint64_t* block = syndromes.data() + group * static_cast<size_t>(plan.params.t);
    for (int k = 0; k < plan.params.t; ++k) block[k] ^= odd[k];
  }

  // Folds element `e` in or out of its group's bitmap/sketch/checksum.
  void ToggleLayout(uint64_t e, bool add) {
    if (!configured) return;
    const HashFamily family(seed);
    const uint32_t group =
        GroupOf(family, e, static_cast<uint32_t>(plan.params.g));
    const SaltedHash h(bin_salts[group]);
    const uint64_t bin = BinIndex(e, h, plan.params.n);
    ParityBitmap& pb = bitmaps[group];
    pb.xor_sum[bin] ^= e;
    pb.parity[bin] ^= 1;
    ToggleSyndrome(group, bin);
    checksums[group].Toggle(e, add);
  }

  // Folds element `e` in or out of its keyspace shard's multiset digest
  // (amortized O(1): one bucket hash plus three lane updates).
  void ToggleShard(uint64_t e, bool add) {
    if (!shards_configured) return;
    shard_sums[shard_plan.ShardOf(e)].Toggle(e, add);
  }

  bool InsertLocked(uint64_t e) {
    if (e == 0 || e == KeyIndex::kTombstone) return false;
    if (configured && (e & ~sig_mask) != 0) return false;
    if (!index.Insert(e, elements.size())) return false;
    elements.push_back(e);
    ToggleLayout(e, /*add=*/true);
    ToggleShard(e, /*add=*/true);
    return true;
  }

  bool DeleteLocked(uint64_t e) {
    const size_t pos = index.Erase(e);
    if (pos == SIZE_MAX) return false;
    const uint64_t last = elements.back();
    elements.pop_back();
    if (pos < elements.size()) {
      elements[pos] = last;
      index.Reposition(last, pos);
    }
    ToggleLayout(e, /*add=*/false);
    ToggleShard(e, /*add=*/false);
    return true;
  }

  std::shared_ptr<const PbsStoreLayout> CopyLayoutLocked() const {
    if (!configured) return nullptr;
    auto out = std::make_shared<PbsStoreLayout>();
    out->seed = seed;
    out->config = config;
    out->plan = plan;
    out->bitmaps = bitmaps;
    out->syndromes = syndromes;
    out->checksums.reserve(checksums.size());
    for (const SetChecksum& c : checksums) out->checksums.push_back(c.value());
    return out;
  }

  // From-scratch layout rebuild (the differential oracle). Elements are
  // partitioned in hash-kernel-sized blocks: one batched hash computes the
  // block's groups, a second per-lane-salt batched hash computes each
  // element's bin under its own group's round-1 salt.
  std::shared_ptr<const PbsStoreLayout> RebuildLocked() const {
    if (!configured) return nullptr;
    auto out = std::make_shared<PbsStoreLayout>();
    out->seed = seed;
    out->config = config;
    out->plan = plan;
    const int g = plan.params.g;
    const int n = plan.params.n;
    const int t = plan.params.t;
    const HashFamily family(seed);
    out->bitmaps.assign(g, ParityBitmap{});
    for (ParityBitmap& pb : out->bitmaps) {
      pb.n = n;
      pb.xor_sum.assign(n + 1, 0);
      pb.parity.assign(n + 1, 0);
    }
    std::vector<SetChecksum> sums(g, SetChecksum(config.sig_bits));
    uint64_t groups[kXxHashBatch];
    uint64_t salts[kXxHashBatch];
    uint64_t bins[kXxHashBatch];
    for (size_t base = 0; base < elements.size(); base += kXxHashBatch) {
      const size_t blk = std::min(kXxHashBatch, elements.size() - base);
      const uint64_t* xs = elements.data() + base;
      GroupOfMany(family, xs, blk, static_cast<uint32_t>(g), groups);
      for (size_t i = 0; i < blk; ++i) salts[i] = bin_salts[groups[i]];
      BinIndexManySalted(xs, salts, blk, n, bins);
      for (size_t i = 0; i < blk; ++i) {
        out->bitmaps[groups[i]].xor_sum[bins[i]] ^= xs[i];
        out->bitmaps[groups[i]].parity[bins[i]] ^= 1;
        sums[groups[i]].Add(xs[i]);
      }
    }
    out->syndromes.assign(static_cast<size_t>(g) * t, 0);
    PowerSumSketch sketch(field, t);
    for (int u = 0; u < g; ++u) {
      out->bitmaps[u].ToSketchInto(&sketch);
      const std::vector<uint64_t>& odd = sketch.odd_syndromes();
      for (int k = 0; k < t; ++k) {
        out->syndromes[static_cast<size_t>(u) * t + k] = odd[k];
      }
    }
    out->checksums.reserve(g);
    for (const SetChecksum& c : sums) out->checksums.push_back(c.value());
    return out;
  }

  void PublishLocked() {
    auto snap = std::make_shared<StoreSnapshot>();
    snap->epoch = ++epoch;
    snap->elements =
        std::make_shared<const std::vector<uint64_t>>(elements);
    snap->layout = CopyLayoutLocked();
    if (shards_configured) {
      auto shards = std::make_shared<ShardChecksums>();
      shards->shard_count = shard_plan.shard_count;
      shards->seed = shard_plan.session_seed;
      shards->leaves.reserve(shard_sums.size());
      for (const MsetHash& h : shard_sums) shards->leaves.push_back(h.Fold64());
      snap->shard_checksums = std::move(shards);
    }
    std::atomic_store_explicit(
        &snapshot, std::shared_ptr<const StoreSnapshot>(std::move(snap)),
        std::memory_order_release);
  }
};

MutableElementStore::MutableElementStore(std::vector<uint64_t> initial)
    : impl_(std::make_unique<Impl>()) {
  if (initial.empty()) return;  // Impl() already published the empty epoch.
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->elements.reserve(initial.size());
  for (uint64_t e : initial) impl_->InsertLocked(e);
  impl_->PublishLocked();
}

MutableElementStore::~MutableElementStore() = default;

bool MutableElementStore::ConfigureLayout(const PbsConfig& config,
                                          uint64_t seed, int d_used,
                                          std::string* error) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl& s = *impl_;
  const uint64_t mask = SetChecksum::MaskFor(config.sig_bits);
  for (uint64_t e : s.elements) {
    if ((e & ~mask) != 0) {
      if (error) {
        *error = "stored element wider than config.sig_bits; cannot build "
                 "a layout for this session profile";
      }
      return false;
    }
  }
  s.configured = true;
  s.seed = seed;
  s.config = config;
  s.sig_mask = mask;
  s.plan = PlanFor(config, d_used);
  const int g = s.plan.params.g;
  const int n = s.plan.params.n;
  const int t = s.plan.params.t;
  s.field = GF2m(s.plan.params.m);
  s.toggle_scratch = PowerSumSketch(s.field, t);
  const HashFamily family(seed);
  s.bin_salts.resize(g);
  for (int i = 0; i < g; ++i) {
    s.bin_salts[i] =
        UnitCore::Root(family, static_cast<uint32_t>(i)).BinSalt(family, 1);
  }
  s.bitmaps.assign(g, ParityBitmap{});
  for (ParityBitmap& pb : s.bitmaps) {
    pb.n = n;
    pb.xor_sum.assign(n + 1, 0);
    pb.parity.assign(n + 1, 0);
  }
  s.syndromes.assign(static_cast<size_t>(g) * t, 0);
  s.checksums.assign(g, SetChecksum(config.sig_bits));
  for (uint64_t e : s.elements) s.ToggleLayout(e, /*add=*/true);
  s.PublishLocked();
  return true;
}

bool MutableElementStore::ConfigureShardChecksums(int shard_count,
                                                  uint64_t seed,
                                                  std::string* error) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  Impl& s = *impl_;
  if (shard_count < sync::kMinKeyspaceShards ||
      shard_count > sync::kMaxKeyspaceShards) {
    if (error) {
      *error = "shard_count outside [2, 4096]";
    }
    return false;
  }
  s.shards_configured = true;
  s.shard_plan = sync::ShardPlan::Derive(shard_count, seed);
  s.shard_sums.assign(static_cast<size_t>(shard_count),
                      MsetHash(s.shard_plan.checksum_salt));
  for (uint64_t e : s.elements) s.ToggleShard(e, /*add=*/true);
  s.PublishLocked();
  return true;
}

bool MutableElementStore::ApplyInsert(uint64_t element) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->InsertLocked(element);
}

bool MutableElementStore::ApplyDelete(uint64_t element) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->DeleteLocked(element);
}

ApplyResult MutableElementStore::Apply(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ApplyResult result;
  for (uint64_t e : batch.inserts) {
    if (impl_->InsertLocked(e)) {
      ++result.inserted;
    } else {
      ++result.rejected_inserts;
    }
  }
  for (uint64_t e : batch.deletes) {
    if (impl_->DeleteLocked(e)) {
      ++result.deleted;
    } else {
      ++result.rejected_deletes;
    }
  }
  impl_->PublishLocked();
  result.epoch = impl_->epoch;
  return result;
}

uint64_t MutableElementStore::Publish() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->PublishLocked();
  return impl_->epoch;
}

std::shared_ptr<const StoreSnapshot> MutableElementStore::snapshot() const {
  return std::atomic_load_explicit(&impl_->snapshot,
                                   std::memory_order_acquire);
}

uint64_t MutableElementStore::epoch() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->epoch;
}

size_t MutableElementStore::size() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->elements.size();
}

std::shared_ptr<const PbsStoreLayout> MutableElementStore::RebuildLayout()
    const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->RebuildLocked();
}

bool MutableElementStore::VerifyLayout() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const Impl& s = *impl_;
  if (!s.configured) return true;
  const auto rebuilt = s.RebuildLocked();
  const int g = s.plan.params.g;
  for (int i = 0; i < g; ++i) {
    if (!s.bitmaps[i].Equals(rebuilt->bitmaps[i])) return false;
  }
  if (s.syndromes != rebuilt->syndromes) return false;
  for (int i = 0; i < g; ++i) {
    if (s.checksums[i].value() != rebuilt->checksums[i]) return false;
  }
  return true;
}

}  // namespace pbs
