#include "pbs/core/params.h"

#include <cmath>

namespace pbs {

PbsPlan PlanFor(const PbsConfig& config, int d_used) {
  OptimizerOptions options = config.optimizer;
  options.d = d_used;
  options.delta = config.delta;
  options.r = config.target_rounds;
  options.p0 = config.p0;
  options.sig_bits = config.sig_bits;

  PbsPlan plan;
  plan.d_used = d_used;
  if (auto params = OptimizeParams(options)) {
    plan.params = *params;
    return plan;
  }

  // No feasible cell: take the most forgiving corner of the range so the
  // protocol still runs; correctness is guaranteed by the checksum loop.
  plan.params.g = d_used <= 0 ? 1 : (d_used + config.delta - 1) / config.delta;
  plan.params.m = options.max_m;
  plan.params.n = (1 << options.max_m) - 1;
  plan.params.t =
      static_cast<int>(std::floor(options.t_high * config.delta));
  plan.params.lower_bound = 0.0;
  plan.params.bits_per_group =
      static_cast<double>(plan.params.t + config.delta) * plan.params.m +
      static_cast<double>(config.delta + 1) * config.sig_bits;
  return plan;
}

int InflateEstimate(double d_hat, double gamma) {
  if (d_hat <= 0.0) return 0;
  return static_cast<int>(std::ceil(gamma * d_hat));
}

}  // namespace pbs
