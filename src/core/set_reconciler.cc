#include "pbs/core/set_reconciler.h"

#include <algorithm>

namespace pbs {

SchemeRegistry& SchemeRegistry::Instance() {
  static SchemeRegistry* registry = [] {
    auto* r = new SchemeRegistry();
    RegisterBuiltinSchemes(*r);
    return r;
  }();
  return *registry;
}

bool SchemeRegistry::Register(const std::string& name,
                              const std::string& display_name,
                              SchemeFactory factory) {
  if (Contains(name)) return false;
  entries_.emplace_back(name, Entry{display_name, std::move(factory)});
  return true;
}

std::unique_ptr<SetReconciler> SchemeRegistry::Create(
    const std::string& name, const SchemeOptions& options) const {
  for (const auto& [key, entry] : entries_) {
    if (key == name) return entry.factory(options);
  }
  return nullptr;
}

bool SchemeRegistry::Contains(const std::string& name) const {
  for (const auto& [key, entry] : entries_) {
    if (key == name) return true;
  }
  return false;
}

std::vector<std::string> SchemeRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) names.push_back(key);
  std::sort(names.begin(), names.end());
  return names;
}

std::string SchemeRegistry::DisplayName(const std::string& name) const {
  for (const auto& [key, entry] : entries_) {
    if (key == name) return entry.display_name;
  }
  return "";
}

}  // namespace pbs
