#include "pbs/core/group_state.h"

#include "pbs/common/rng.h"

namespace pbs {

UnitCore UnitCore::Root(const HashFamily& family, uint32_t g) {
  UnitCore unit;
  unit.group = g;
  unit.depth = 0;
  unit.key = SplitMix64(family.master_seed() ^
                        (0x726F6F74756E6974ull + g)).Next();
  return unit;
}

uint64_t UnitCore::SplitSalt(const HashFamily& family) const {
  return family.Salt(HashFamily::kSplitPartition, key, depth);
}

UnitCore UnitCore::Child(const HashFamily& family, uint8_t index) const {
  UnitCore child;
  child.group = group;
  child.depth = static_cast<uint8_t>(depth + 1);
  child.key = SplitMix64(key ^ (0xC0FFEEull + index)).Next();
  child.split_path = split_path;
  child.split_path.emplace_back(SplitSalt(family), index);
  return child;
}

bool UnitCore::InSubUniverse(const HashFamily& family, uint64_t x,
                             uint32_t num_groups) const {
  if (GroupOf(family, x, num_groups) != group) return false;
  for (const auto& [salt, index] : split_path) {
    if (ChildIndexOf(x, salt) != index) return false;
  }
  return true;
}

}  // namespace pbs
