#include "pbs/core/session_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <utility>

#include "pbs/common/bitio.h"
#include "pbs/estimator/tow.h"
#include "pbs/sync/merkle_prefilter.h"
#include "pbs/sync/sharded_session.h"

namespace pbs {

namespace {

using wire::FrameStatus;
using wire::FrameType;
using wire::WireFrame;

uint64_t DoubleBits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

const char* StatusName(FrameStatus status) {
  switch (status) {
    case FrameStatus::kOk: return "ok";
    case FrameStatus::kTruncated: return "truncated frame";
    case FrameStatus::kBadMagic: return "bad magic";
    case FrameStatus::kBadVersion: return "unsupported wire version";
    case FrameStatus::kBadLength: return "oversized frame";
    case FrameStatus::kBadChecksum: return "frame checksum mismatch";
  }
  return "unknown";
}

// ------------------------------------------------------------ handshake --

constexpr uint8_t kHelloHasExactD = 1u << 0;
constexpr uint8_t kHelloStrongVerification = 1u << 1;
constexpr uint8_t kHelloSubuniverseCheck = 1u << 2;

// Wire-carried difference estimates feed InflateEstimate's double->int
// conversion and size per-scheme allocations. The responder-side engines
// reject inflated capacities above 2^20 (kMaxWireDifference), so the
// initiator bounds the raw estimate to 2^19 — leaving 2x headroom for any
// sane inflation factor — and fails with a capacity error up front rather
// than letting the peer report "malformed request" later. Non-finite
// values are rejected outright.
constexpr double kMaxWireEstimate = static_cast<double>(1 << 19);

bool ValidEstimate(double d) {
  return std::isfinite(d) && d >= 0.0 && d <= kMaxWireEstimate;
}

// The HELLO encodes these fields at fixed widths; sending silently
// truncated values would make the responder plan with a different
// configuration than the initiator, so out-of-range configs fail the
// session up front with a diagnostic instead.
bool ValidateSessionConfig(const SessionConfig& config, std::string* error) {
  const PbsConfig& pbs = config.options.pbs;
  auto fail = [error](const char* what) {
    *error = std::string("config field out of wire range: ") + what;
    return false;
  };
  if (config.scheme_name.empty() || config.scheme_name.size() > 64) {
    return fail("scheme name (1-64 chars)");
  }
  if (config.options.sig_bits < 1 || config.options.sig_bits > 63) {
    return fail("sig_bits (1-63)");
  }
  if (config.options.report_sig_bits < 0 ||
      config.options.report_sig_bits > 255) {
    return fail("report_sig_bits (0-255)");
  }
  if (pbs.delta < 1 || pbs.delta > 255) return fail("delta (1-255)");
  if (pbs.target_rounds < 1 || pbs.target_rounds > 255) {
    return fail("target_rounds (1-255)");
  }
  if (pbs.max_rounds < 1 || pbs.max_rounds > 255) {
    return fail("max_rounds (1-255)");
  }
  if (pbs.max_split_depth < 0 || pbs.max_split_depth > 255) {
    return fail("max_split_depth (0-255)");
  }
  if (pbs.ell < 1 || pbs.ell > 65535) return fail("ell (1-65535)");
  if (config.exact_d >= 0.0 && !ValidEstimate(config.exact_d)) {
    return fail("exact_d (finite, <= 1e9)");
  }
  // 0 and 1 both mean "monolithic"; a sharded session's count must fit
  // the u16 SHARD_PLAN field and the negotiation bounds.
  if (config.keyspace_shards < 0 ||
      config.keyspace_shards > sync::kMaxKeyspaceShards) {
    return fail("keyspace_shards (0-4096)");
  }
  if (config.shard_pipeline < 1 || config.shard_pipeline > 65535) {
    return fail("shard_pipeline (1-65535)");
  }
  if (config.phase_deadline_ms < 0) {
    return fail("phase_deadline_ms (>= 0)");
  }
  return true;
}

std::vector<uint8_t> EncodeHello(const SessionConfig& config) {
  BitWriter w;
  w.WriteBits(config.scheme_name.size(), 8);
  for (char c : config.scheme_name) {
    w.WriteBits(static_cast<uint8_t>(c), 8);
  }
  const PbsConfig& pbs = config.options.pbs;
  uint8_t flags = 0;
  if (config.exact_d >= 0.0) flags |= kHelloHasExactD;
  if (pbs.strong_verification) flags |= kHelloStrongVerification;
  if (pbs.subuniverse_check) flags |= kHelloSubuniverseCheck;
  w.WriteBits(flags, 8);
  w.WriteBits(static_cast<uint8_t>(config.options.sig_bits), 8);
  w.WriteBits(static_cast<uint8_t>(config.options.report_sig_bits), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.delta), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.target_rounds), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.max_rounds), 8);
  w.WriteBits(static_cast<uint8_t>(pbs.max_split_depth), 8);
  w.WriteBits(static_cast<uint16_t>(pbs.ell), 16);
  w.WriteBits(DoubleBits(pbs.p0), 64);
  w.WriteBits(DoubleBits(pbs.gamma), 64);
  w.WriteBits(config.seed, 64);
  w.WriteBits(config.estimate_seed, 64);
  if (config.exact_d >= 0.0) w.WriteBits(DoubleBits(config.exact_d), 64);
  return w.TakeBytes();
}

bool DecodeHello(const std::vector<uint8_t>& payload, SessionConfig* config) {
  BitReader r(payload);
  const uint64_t name_len = r.ReadBits(8);
  if (name_len == 0 || name_len > 64) return false;
  std::string name;
  for (uint64_t i = 0; i < name_len; ++i) {
    name.push_back(static_cast<char>(r.ReadBits(8)));
  }
  const uint8_t flags = static_cast<uint8_t>(r.ReadBits(8));
  config->scheme_name = std::move(name);
  config->options.sig_bits = static_cast<int>(r.ReadBits(8));
  config->options.report_sig_bits = static_cast<int>(r.ReadBits(8));
  PbsConfig& pbs = config->options.pbs;
  pbs.delta = static_cast<int>(r.ReadBits(8));
  pbs.target_rounds = static_cast<int>(r.ReadBits(8));
  pbs.max_rounds = static_cast<int>(r.ReadBits(8));
  pbs.max_split_depth = static_cast<int>(r.ReadBits(8));
  pbs.ell = static_cast<int>(r.ReadBits(16));
  pbs.p0 = BitsToDouble(r.ReadBits(64));
  pbs.gamma = BitsToDouble(r.ReadBits(64));
  pbs.sig_bits = config->options.sig_bits;
  pbs.strong_verification = (flags & kHelloStrongVerification) != 0;
  pbs.subuniverse_check = (flags & kHelloSubuniverseCheck) != 0;
  config->seed = r.ReadBits(64);
  config->estimate_seed = r.ReadBits(64);
  config->exact_d = (flags & kHelloHasExactD) != 0
                        ? BitsToDouble(r.ReadBits(64))
                        : -1.0;
  if (r.overflowed()) return false;
  if ((flags & kHelloHasExactD) != 0 && !ValidEstimate(config->exact_d)) {
    return false;
  }
  if (pbs.delta < 1 || pbs.max_rounds < 1 || pbs.ell < 1) return false;
  if (config->options.sig_bits < 1 || config->options.sig_bits > 63) {
    return false;
  }
  return true;
}

// DONE summary: success flag, rounds, recovered-difference cardinality.
std::vector<uint8_t> EncodeDone(const ReconcileOutcome& outcome) {
  BitWriter w;
  w.WriteBits(outcome.success ? 1 : 0, 8);
  w.WriteBits(static_cast<uint32_t>(outcome.rounds), 32);
  w.WriteBits(outcome.difference.size(), 64);
  return w.TakeBytes();
}

bool DecodeDone(const std::vector<uint8_t>& payload, bool* success,
                int* rounds, uint64_t* diff_size) {
  BitReader r(payload);
  *success = r.ReadBits(8) != 0;
  *rounds = static_cast<int>(r.ReadBits(32));
  *diff_size = r.ReadBits(64);
  return !r.overflowed();
}

std::string ErrorText(const WireFrame& frame) {
  return std::string(frame.payload.begin(), frame.payload.end());
}

// ---------------------------------------------------------------- sharded --

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v & 0xFF));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<uint8_t>(v >> (8 * b)));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int b = 0; b < 8; ++b) v |= static_cast<uint64_t>(p[b]) << (8 * b);
  return v;
}

// SHARD_PLAN payload: u16 proposed shard count (LE), u64 Merkle root of
// the initiator's per-shard digests (LE), then the HELLO payload
// verbatim (docs/WIRE_FORMAT.md section 2.5).
std::vector<uint8_t> EncodeShardPlan(int shards, uint64_t root,
                                     const std::vector<uint8_t>& hello) {
  std::vector<uint8_t> payload;
  payload.reserve(10 + hello.size());
  PutU16(static_cast<uint16_t>(shards), &payload);
  PutU64(root, &payload);
  payload.insert(payload.end(), hello.begin(), hello.end());
  return payload;
}

bool DecodeShardPlanHeader(const std::vector<uint8_t>& payload, int* shards,
                           uint64_t* root, std::vector<uint8_t>* hello) {
  if (payload.size() < 10) return false;
  *shards = GetU16(payload.data());
  *root = GetU64(payload.data() + 2);
  hello->assign(payload.begin() + 10, payload.end());
  return true;
}

// SHARD_PLAN_ACK payload: u16 accepted shard count, u64 responder root.
std::vector<uint8_t> EncodeShardPlanAck(int accepted, uint64_t root) {
  std::vector<uint8_t> payload;
  payload.reserve(10);
  PutU16(static_cast<uint16_t>(accepted), &payload);
  PutU64(root, &payload);
  return payload;
}

// RESUME payload: u16 negotiated shard count, u64 responder root the
// initiator saw before the disconnect, u16 pending count, pending count
// x (u16 shard, u8 last attempt) ascending, then the HELLO payload
// verbatim (docs/WIRE_FORMAT.md section 2.6). Only the ladder positions
// travel; settled differences stay banked on the client.
std::vector<uint8_t> EncodeResume(const sync::ShardResumeState& token,
                                  const std::vector<uint8_t>& hello) {
  std::vector<uint8_t> payload;
  payload.reserve(12 + token.pending.size() * 3 + hello.size());
  PutU16(static_cast<uint16_t>(token.shard_count), &payload);
  PutU64(token.remote_root, &payload);
  PutU16(static_cast<uint16_t>(token.pending.size()), &payload);
  for (const auto& p : token.pending) {
    PutU16(static_cast<uint16_t>(p.shard), &payload);
    payload.push_back(p.attempt);
  }
  payload.insert(payload.end(), hello.begin(), hello.end());
  return payload;
}

bool DecodeResumeHeader(const std::vector<uint8_t>& payload, int* shards,
                        uint64_t* root,
                        std::vector<std::pair<uint32_t, uint8_t>>* entries,
                        std::vector<uint8_t>* hello) {
  if (payload.size() < 12) return false;
  *shards = GetU16(payload.data());
  *root = GetU64(payload.data() + 2);
  const size_t count = GetU16(payload.data() + 10);
  if (payload.size() < 12 + count * 3) return false;
  entries->clear();
  entries->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const uint8_t* p = payload.data() + 12 + i * 3;
    entries->emplace_back(GetU16(p), p[2]);
  }
  hello->assign(payload.begin() + 12 + count * 3, payload.end());
  return true;
}

// Resume tokens come from a prior session of this same binary, but the
// driver may hold them across reconnects; reject anything that could not
// have been produced by a sane coordinator before trusting it with a
// wire frame. Attempt counters beyond this bound cannot advance without
// overflowing the 7-bit attempt field (the top bit flags a scheme
// override).
constexpr int kMaxResumeAttempt = 120;

bool ValidResumeToken(const sync::ShardResumeState& token) {
  if (token.shard_count < sync::kMinKeyspaceShards ||
      token.shard_count > sync::kMaxKeyspaceShards) {
    return false;
  }
  if (token.pending.size() > static_cast<size_t>(token.shard_count)) {
    return false;
  }
  uint32_t prev = 0;
  bool first = true;
  for (const auto& p : token.pending) {
    if (p.shard >= static_cast<uint32_t>(token.shard_count)) return false;
    if (p.attempt > kMaxResumeAttempt) return false;
    if (!first && p.shard <= prev) return false;
    prev = p.shard;
    first = false;
  }
  return true;
}

// ---------------------------------------------------------------- update --

// Per-direction cap on one UPDATE batch, mirroring the d_used cap: the
// counts size the responder's decode buffers before validation finishes.
constexpr uint64_t kMaxUpdateBatch = 1u << 20;

// UPDATE payload: varint insert count, varint delete count, then each
// element as 64 bits (inserts first). The whole payload must parse and the
// counts must match the payload size exactly before anything is applied —
// a truncated or padded frame is rejected with no store mutation at all.
void EncodeUpdate(const UpdateBatch& batch, BitWriter* w) {
  w->Clear();
  w->WriteVarint(batch.inserts.size());
  w->WriteVarint(batch.deletes.size());
  for (uint64_t e : batch.inserts) w->WriteBits(e, 64);
  for (uint64_t e : batch.deletes) w->WriteBits(e, 64);
}

bool DecodeUpdate(const std::vector<uint8_t>& payload, UpdateBatch* batch) {
  BitReader r(payload);
  const uint64_t n_inserts = r.ReadVarint();
  const uint64_t n_deletes = r.ReadVarint();
  if (r.overflowed() || n_inserts > kMaxUpdateBatch ||
      n_deletes > kMaxUpdateBatch ||
      (n_inserts + n_deletes) * 64 > r.remaining_bits()) {
    return false;
  }
  batch->inserts.clear();
  batch->deletes.clear();
  batch->inserts.reserve(n_inserts);
  batch->deletes.reserve(n_deletes);
  for (uint64_t i = 0; i < n_inserts; ++i) {
    batch->inserts.push_back(r.ReadBits(64));
  }
  for (uint64_t i = 0; i < n_deletes; ++i) {
    batch->deletes.push_back(r.ReadBits(64));
  }
  // Anything beyond byte-rounding slack is a length/content mismatch.
  return !r.overflowed() && r.remaining_bits() < 8;
}

// UPDATE_ACK payload: published epoch, then applied/rejected counts.
constexpr size_t kUpdateAckBits = 64 + 4 * 32;

}  // namespace

// ------------------------------------------------------------ lifecycle --

SessionEngine SessionEngine::Initiator(const SessionConfig& config,
                                       std::vector<uint64_t> elements,
                                       const SchemeRegistry* registry) {
  return Initiator(config,
                   std::make_shared<const std::vector<uint64_t>>(
                       std::move(elements)),
                   registry);
}

SessionEngine SessionEngine::Initiator(const SessionConfig& config,
                                       SharedElements elements,
                                       const SchemeRegistry* registry) {
  return SessionEngine(/*is_initiator=*/true, config, std::move(elements),
                       registry);
}

SessionEngine SessionEngine::Responder(std::vector<uint64_t> elements,
                                       const SchemeRegistry* registry) {
  return Responder(std::make_shared<const std::vector<uint64_t>>(
                       std::move(elements)),
                   registry);
}

SessionEngine SessionEngine::Responder(SharedElements elements,
                                       const SchemeRegistry* registry) {
  return Responder(SessionConfig(), std::move(elements), registry);
}

SessionEngine SessionEngine::Responder(const SessionConfig& local_config,
                                       SharedElements elements,
                                       const SchemeRegistry* registry) {
  // The HELLO decode overwrites every wire-carried field of config_;
  // side-local knobs (decode_threads) are simply never written by it, so
  // seeding config_ here is all that "honoring local defaults" takes.
  return SessionEngine(/*is_initiator=*/false, local_config,
                       std::move(elements), registry);
}

SessionEngine SessionEngine::Responder(
    const SessionConfig& local_config,
    std::shared_ptr<const StoreSnapshot> snapshot,
    std::shared_ptr<MutableElementStore> store,
    const SchemeRegistry* registry) {
  SessionEngine engine(/*is_initiator=*/false, local_config,
                       snapshot != nullptr ? snapshot->elements : nullptr,
                       registry);
  engine.snapshot_ = std::move(snapshot);
  engine.store_ = std::move(store);
  return engine;
}

SessionEngine SessionEngine::Updater(std::vector<UpdateBatch> batches,
                                     const SchemeRegistry* registry) {
  // Built through the responder-shaped ctor (no HELLO, no reconciler),
  // then flipped to the initiating role: the updater speaks only
  // kUpdate/kUpdateAck/kDone and needs neither a scheme nor elements.
  SessionEngine engine(/*is_initiator=*/false, SessionConfig(), nullptr,
                       registry);
  engine.is_initiator_ = true;
  engine.is_updater_ = true;
  engine.result_.scheme = "update";
  engine.batches_ = std::move(batches);
  if (engine.batches_.empty()) {
    engine.FinishUpdater();  // Nothing to send: go straight to DONE.
  } else {
    engine.EmitNextUpdate();
  }
  return engine;
}

SessionEngine::SessionEngine(bool is_initiator, const SessionConfig& config,
                             SharedElements elements,
                             const SchemeRegistry* registry)
    : is_initiator_(is_initiator),
      state_(is_initiator ? State::kAwaitHelloAck : State::kAwaitHello),
      config_(config),
      elements_(std::move(elements)),
      registry_(registry) {
  phase_start_ = std::chrono::steady_clock::now();
  if (!is_initiator_) return;

  result_.scheme = config_.scheme_name;
  scheme_id_ = wire::SchemeWireId(config_.scheme_name);
  std::string config_error;
  if (!ValidateSessionConfig(config_, &config_error)) {
    Fail(std::move(config_error));
    return;
  }
  reconciler_ = this->registry().Create(config_.scheme_name, config_.options);
  if (!reconciler_) {
    Fail("unknown scheme '" + config_.scheme_name + "'");
    return;
  }
  if (config_.resume != nullptr) {
    StartResumedInitiator();
    return;
  }
  if (config_.keyspace_shards >= sync::kMinKeyspaceShards) {
    StartShardedInitiator();
    return;
  }
  const std::vector<uint8_t> hello = EncodeHello(config_);
  AppendOutbound(FrameType::kHello, 0, hello.data(), hello.size(),
                 "sending HELLO");
}

SessionEngine::~SessionEngine() = default;
SessionEngine::SessionEngine(SessionEngine&&) noexcept = default;
SessionEngine& SessionEngine::operator=(SessionEngine&&) noexcept = default;

const SchemeRegistry& SessionEngine::registry() const {
  return registry_ != nullptr ? *registry_ : SchemeRegistry::Instance();
}

// ---------------------------------------------------------------- status --

SessionStatus SessionEngine::Status() const {
  // Outbound bytes drain first even when the session already settled or
  // failed: a queued ERROR/DONE frame should still reach the peer.
  if (out_pos_ < outbound_.size()) return SessionStatus::kWantWrite;
  if (state_ == State::kSettled) return SessionStatus::kDone;
  if (state_ == State::kFailed) return SessionStatus::kError;
  return SessionStatus::kWantRead;
}

const char* SessionEngine::phase_name() const {
  switch (state_) {
    case State::kAwaitHelloAck: return "awaiting HELLO_ACK";
    case State::kAwaitEstimateReply: return "awaiting estimate reply";
    case State::kAwaitSchemeReply: return "awaiting scheme reply";
    case State::kAwaitUpdateAck: return "awaiting UPDATE_ACK";
    case State::kAwaitShardPlanAck: return "awaiting SHARD_PLAN_ACK";
    case State::kAwaitResumeAck: return "awaiting RESUME_ACK";
    case State::kAwaitDigestReply: return "awaiting digest reply";
    case State::kShardMux: return "running sub-sessions";
    case State::kAwaitDoneAck: return "awaiting DONE ack";
    case State::kAwaitHello: return "awaiting HELLO";
    case State::kServing: return "serving";
    case State::kSettled: return "settled";
    case State::kFailed: return "failed";
  }
  return "unknown";
}

int64_t SessionEngine::DeadlineRemainingMs() const {
  if (config_.phase_deadline_ms <= 0) return -1;
  if (state_ == State::kSettled || state_ == State::kFailed) return -1;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - phase_start_)
                           .count();
  const int64_t remaining = config_.phase_deadline_ms - elapsed;
  return remaining > 0 ? remaining : 0;
}

bool SessionEngine::CheckDeadline() {
  if (DeadlineRemainingMs() != 0) return false;
  const std::string message =
      std::string("phase deadline exceeded while ") + phase_name();
  // The responder tells the stalled peer why it is being dropped; the
  // initiator's driver reads the error from the result.
  if (!is_initiator_) AppendError(message);
  Fail(message);
  return true;
}

size_t SessionEngine::NeededBytes() const {
  if (Status() != SessionStatus::kWantRead) return 0;
  const size_t buffered = BufferedBytes();
  if (buffered < wire::kFrameHeaderSize) {
    return wire::kFrameHeaderSize - buffered;
  }
  // ProcessInbound consumed every complete frame and validated the
  // buffered header, so what remains is a partial frame with a sane
  // length field.
  size_t payload_length = 0;
  if (wire::InspectFrameHeader(inbound_.data() + in_pos_, &payload_length) !=
      FrameStatus::kOk) {
    return 1;  // Unreachable; defensive so a caller can still make progress.
  }
  return wire::kFrameHeaderSize + payload_length - buffered;
}

// ------------------------------------------------------------- outbound --

void SessionEngine::AppendOutbound(FrameType type, uint32_t round,
                                   const uint8_t* payload, size_t size,
                                   const char* label) {
  // Compact a fully-drained buffer before growing it again (keeps the
  // buffer at its frame-peak size instead of creeping per session round).
  if (out_pos_ == outbound_.size()) {
    outbound_.clear();
    out_pos_ = 0;
  }
  wire_bytes_ += wire::AppendFrame(type, scheme_id_, round, payload, size,
                                   &outbound_);
  wire_frames_ += 1;
  write_label_ = label;
  result_.outcome.wire_bytes = wire_bytes_;
  result_.outcome.wire_frames = wire_frames_;
}

void SessionEngine::AppendError(const std::string& message) {
  AppendOutbound(FrameType::kError, 0,
                 reinterpret_cast<const uint8_t*>(message.data()),
                 message.size(), "sending error");
}

size_t SessionEngine::Poll(uint8_t* out, size_t max) {
  const size_t n = std::min(max, outbound_size());
  if (n > 0) {
    std::memcpy(out, outbound_data(), n);
    ConsumeOutbound(n);
  }
  return n;
}

void SessionEngine::ConsumeOutbound(size_t n) {
  out_pos_ += n;
  if (out_pos_ >= outbound_.size()) {
    outbound_.clear();
    out_pos_ = 0;
  }
}

void SessionEngine::FailTransport() {
  if (state_ == State::kSettled || state_ == State::kFailed) {
    // Already settled: the undeliverable bytes were courtesy frames (DONE
    // ack, ERROR); drop them so Status() can report the terminal state.
    outbound_.clear();
    out_pos_ = 0;
    return;
  }
  outbound_.clear();
  out_pos_ = 0;
  Fail(std::string("transport failed ") + write_label_);
}

// -------------------------------------------------------------- inbound --

void SessionEngine::Feed(const uint8_t* data, size_t size) {
  if (state_ == State::kSettled || state_ == State::kFailed) return;
  inbound_.insert(inbound_.end(), data, data + size);
  ProcessInbound();
}

void SessionEngine::FeedEof() {
  if (state_ == State::kSettled || state_ == State::kFailed) return;
  Fail(BufferedBytes() < wire::kFrameHeaderSize
           ? "transport closed while reading frame header"
           : "transport closed while reading frame payload");
}

void SessionEngine::ProcessInbound() {
  while (state_ != State::kSettled && state_ != State::kFailed) {
    const size_t buffered = BufferedBytes();
    if (buffered < wire::kFrameHeaderSize) break;
    size_t payload_length = 0;
    FrameStatus status =
        wire::InspectFrameHeader(inbound_.data() + in_pos_, &payload_length);
    if (status == FrameStatus::kOk &&
        buffered < wire::kFrameHeaderSize + payload_length) {
      break;  // Partial frame: wait for more bytes.
    }
    size_t consumed = 0;
    if (status == FrameStatus::kOk) {
      status = wire::DecodeFrame(inbound_.data() + in_pos_, buffered, &frame_,
                                 &consumed);
    }
    if (status != FrameStatus::kOk) {
      // A malformed envelope is fatal for the stream. The responder tells
      // the peer why before giving up (e.g. an initiator speaking a newer
      // wire version learns "unsupported wire version" instead of
      // watching the connection drop); the initiator just reports it.
      if (!is_initiator_) AppendError(StatusName(status));
      Fail(StatusName(status));
      return;
    }
    in_pos_ += consumed;
    wire_bytes_ += consumed;
    wire_frames_ += 1;
    result_.outcome.wire_bytes = wire_bytes_;
    result_.outcome.wire_frames = wire_frames_;
    DispatchFrame();
    // The deadline is per *phase*, not per session: any complete frame
    // from the peer is progress and restarts the clock.
    if (config_.phase_deadline_ms > 0) {
      phase_start_ = std::chrono::steady_clock::now();
    }
  }
  // Sharded sessions batch inbound sub-frames per Feed; process the batch
  // now that the frame loop drained (sync/sharded_session.h batch model).
  if (shard_coordinator_ != nullptr || shard_mux_ != nullptr) {
    FlushShardFrames();
  }
  // Compact the consumed prefix. Memmove, not erase-with-realloc: the
  // buffer stays at peak capacity, so steady-state rounds never allocate.
  if (in_pos_ == inbound_.size()) {
    inbound_.clear();
    in_pos_ = 0;
  } else if (in_pos_ > 0) {
    const size_t remaining = inbound_.size() - in_pos_;
    std::memmove(inbound_.data(), inbound_.data() + in_pos_, remaining);
    inbound_.resize(remaining);
    in_pos_ = 0;
  }
}

void SessionEngine::DispatchFrame() {
  if (is_initiator_) {
    DispatchInitiator();
  } else {
    DispatchResponder();
  }
}

// ------------------------------------------------------------- initiator --

void SessionEngine::DispatchInitiator() {
  if (frame_.type == FrameType::kError) {
    Fail((state_ == State::kAwaitHelloAck ? "responder rejected: "
                                          : "responder error: ") +
         ErrorText(frame_));
    return;
  }
  switch (state_) {
    case State::kAwaitHelloAck: {
      if (frame_.type != FrameType::kHelloAck) {
        Fail("expected HELLO_ACK");
        return;
      }
      if (config_.exact_d >= 0.0) {
        result_.d_hat = d_hat_ = config_.exact_d;
        StartSchemePhase();
        return;
      }
      SendEstimateRequest();
      return;
    }
    case State::kAwaitEstimateReply: {
      if (frame_.type != FrameType::kEstimateReply) {
        Fail("expected ESTIMATE_REPLY");
        return;
      }
      BitReader r(frame_.payload);
      d_hat_ = BitsToDouble(r.ReadBits(64));
      estimator_payload_bytes_ += frame_.payload.size();
      if (r.overflowed() || !std::isfinite(d_hat_) || d_hat_ < 0.0) {
        Fail("malformed estimate reply");
        return;
      }
      if (d_hat_ > kMaxWireEstimate) {
        Fail("difference estimate exceeds wire session capacity "
             "(d-hat > 2^19)");
        return;
      }
      result_.d_hat = d_hat_;
      if (shard_coordinator_ != nullptr) {
        // Sharded path: apportion the global estimate across the
        // differing shards; FlushShardFrames (end of this ProcessInbound
        // pass) opens the first sub-sessions.
        shard_coordinator_->SetTotalEstimate(d_hat_);
        state_ = State::kShardMux;
        return;
      }
      StartSchemePhase();
      return;
    }
    case State::kAwaitSchemeReply: {
      if (frame_.type != FrameType::kSchemeReply) {
        Fail("expected SCHEME_REPLY");
        return;
      }
      if (!initiator_engine_->HandleReply(frame_.payload)) {
        AppendError("malformed scheme reply");
        Fail("malformed scheme reply");
        return;
      }
      if (!initiator_engine_->done()) {
        EmitNextRequest();
        return;
      }
      result_.outcome = initiator_engine_->TakeOutcome();
      result_.outcome.estimator_bytes += estimator_payload_bytes_;
      const std::vector<uint8_t> done = EncodeDone(result_.outcome);
      AppendOutbound(FrameType::kDone, exchange_, done.data(), done.size(),
                     "sending DONE");
      state_ = State::kAwaitDoneAck;
      return;
    }
    case State::kAwaitUpdateAck: {
      if (frame_.type != FrameType::kUpdateAck) {
        Fail("expected UPDATE_ACK");
        return;
      }
      BitReader r(frame_.payload);
      update_epoch_ = r.ReadBits(64);
      update_inserted_ += static_cast<uint32_t>(r.ReadBits(32));
      update_deleted_ += static_cast<uint32_t>(r.ReadBits(32));
      update_rejected_ += static_cast<uint32_t>(r.ReadBits(32));
      update_rejected_ += static_cast<uint32_t>(r.ReadBits(32));
      if (r.overflowed()) {
        Fail("malformed UPDATE_ACK");
        return;
      }
      ++batch_pos_;
      if (batch_pos_ < batches_.size()) {
        EmitNextUpdate();
      } else {
        FinishUpdater();
      }
      return;
    }
    case State::kAwaitShardPlanAck:
      HandleShardPlanAck();
      return;
    case State::kAwaitResumeAck:
      HandleResumeAck();
      return;
    case State::kAwaitDigestReply:
      HandleDigestReply();
      return;
    case State::kShardMux:
      HandleSubSession();
      return;
    case State::kAwaitDoneAck: {
      if (frame_.type != FrameType::kDone) {
        Fail("expected DONE ack");
        return;
      }
      result_.ok = true;
      Settle();
      return;
    }
    default:
      Fail("unexpected frame");
      return;
  }
}

// --------------------------------------------------------------- sharded --

void SessionEngine::StartShardedInitiator() {
  shard_coordinator_ = std::make_unique<sync::ShardedCoordinator>(
      config_, elements_, registry_);
  if (!shard_coordinator_->ok()) {
    Fail(shard_coordinator_->error());
    return;
  }
  const std::vector<uint8_t> hello = EncodeHello(config_);
  const std::vector<uint8_t> plan =
      EncodeShardPlan(config_.keyspace_shards, shard_coordinator_->root(),
                      hello);
  AppendOutbound(FrameType::kShardPlan, 0, plan.data(), plan.size(),
                 "sending SHARD_PLAN");
  state_ = State::kAwaitShardPlanAck;
}

void SessionEngine::HandleShardPlanAck() {
  if (frame_.type != FrameType::kShardPlanAck) {
    Fail("expected SHARD_PLAN_ACK");
    return;
  }
  if (frame_.payload.size() != 10) {
    Fail("malformed SHARD_PLAN_ACK");
    return;
  }
  const int accepted = GetU16(frame_.payload.data());
  const uint64_t remote_root = GetU64(frame_.payload.data() + 2);
  remote_root_ = remote_root;  // A later resume token must carry it.
  std::string error;
  if (!shard_coordinator_->AdoptShardCount(accepted, &error)) {
    Fail(std::move(error));
    return;
  }
  if (shard_coordinator_->root() == remote_root) {
    // Equal roots certify every shard identical: settle right here, four
    // frames total, without ever shipping the digest leaves.
    result_.outcome.success = true;
    result_.outcome.rounds = 0;
    char summary[64];
    std::snprintf(summary, sizeof(summary),
                  "shards=%d identical=%d differing=0", accepted, accepted);
    result_.outcome.params_summary = summary;
    result_.d_hat = d_hat_ = 0.0;
    const std::vector<uint8_t> done = EncodeDone(result_.outcome);
    AppendOutbound(FrameType::kDone, exchange_, done.data(), done.size(),
                   "sending DONE");
    state_ = State::kAwaitDoneAck;
    return;
  }
  shard_coordinator_->EncodeDigestTree(&payload_scratch_);
  AppendOutbound(FrameType::kDigestTree, 0, payload_scratch_.data(),
                 payload_scratch_.size(), "sending DIGEST_TREE");
  state_ = State::kAwaitDigestReply;
}

void SessionEngine::StartResumedInitiator() {
  const sync::ShardResumeState& token = *config_.resume;
  if (!ValidResumeToken(token)) {
    Fail("invalid resume token");
    return;
  }
  shard_coordinator_ = std::make_unique<sync::ShardedCoordinator>(
      config_, elements_, registry_, token);
  if (!shard_coordinator_->ok()) {
    Fail(shard_coordinator_->error());
    return;
  }
  remote_root_ = token.remote_root;
  const std::vector<uint8_t> hello = EncodeHello(config_);
  const std::vector<uint8_t> payload = EncodeResume(token, hello);
  AppendOutbound(FrameType::kResume, 0, payload.data(), payload.size(),
                 "sending RESUME");
  state_ = State::kAwaitResumeAck;
}

void SessionEngine::HandleResumeAck() {
  if (frame_.type != FrameType::kResumeAck) {
    Fail("expected RESUME_ACK");
    return;
  }
  if (frame_.payload.size() != 8) {
    Fail("malformed RESUME_ACK");
    return;
  }
  if (GetU64(frame_.payload.data()) != remote_root_) {
    // The responder accepted but reports a different root than the token
    // carries: its set changed under us. Same taxonomy as the responder's
    // own rejection so drivers can fall back to a fresh session.
    Fail("stale resume: responder set changed");
    return;
  }
  // FlushShardFrames (end of this ProcessInbound pass) reopens the
  // pending sub-sessions -- or settles directly when none were staged.
  state_ = State::kShardMux;
}

void SessionEngine::HandleDigestReply() {
  if (frame_.type != FrameType::kDigestReply) {
    Fail("expected DIGEST_REPLY");
    return;
  }
  std::string error;
  if (!shard_coordinator_->BeginSubSessions(frame_.payload, &error)) {
    Fail(std::move(error));
    return;
  }
  if (shard_coordinator_->NeedsEstimate()) {
    // Enough shards differ that one global sketch beats blind retry
    // ladders: run the same estimate exchange a monolithic session uses
    // and apportion the total. Sub-sessions stay parked until the reply.
    SendEstimateRequest();
    return;
  }
  // FlushShardFrames (end of this ProcessInbound pass) opens the first
  // `shard_pipeline` sub-sessions -- or settles directly when the bitmap
  // named no differing shard.
  state_ = State::kShardMux;
}

void SessionEngine::SendEstimateRequest() {
  TowSketch sketch(config_.options.pbs.ell, config_.estimate_seed);
  sketch.AddAll(*elements_);
  BitWriter w;
  w.WriteBits(elements_->size(), 64);
  sketch.Serialize(&w, elements_->size());
  estimator_payload_bytes_ += w.byte_size();
  const std::vector<uint8_t> payload = w.TakeBytes();
  AppendOutbound(FrameType::kEstimateRequest, 0, payload.data(),
                 payload.size(), "sending estimate");
  state_ = State::kAwaitEstimateReply;
}

void SessionEngine::HandleSubSession() {
  std::vector<sync::SubFrame> records;
  if (frame_.type != FrameType::kSubSession ||
      !sync::ParseSubRecords(frame_.payload, &records) || records.empty()) {
    if (!is_initiator_) AppendError("malformed SUB_SESSION");
    Fail("malformed SUB_SESSION");
    return;
  }
  std::string error;
  for (auto& sub : records) {
    const bool ok =
        is_initiator_
            ? shard_coordinator_->HandleSubFrame(std::move(sub), &error)
            : shard_mux_->HandleSubFrame(std::move(sub), &error);
    if (!ok) {
      if (!is_initiator_) AppendError(error);
      Fail(std::move(error));
      return;
    }
  }
}

void SessionEngine::FlushShardFrames() {
  if (state_ == State::kSettled || state_ == State::kFailed) return;
  // One outer frame carries every record the flush produced: the 23-byte
  // envelope amortizes across all shards with traffic this round.
  std::vector<uint8_t> batch;
  const auto emit = [&batch](uint32_t shard, uint8_t inner_type,
                             const uint8_t* data, size_t size) {
    sync::AppendSubRecord(shard, inner_type, data, size, &batch);
  };
  if (is_initiator_) {
    if (state_ != State::kShardMux) return;
    std::string error;
    if (!shard_coordinator_->Flush(emit, &error)) {
      Fail(std::move(error));
      return;
    }
    if (!batch.empty()) {
      ++exchange_;
      AppendOutbound(FrameType::kSubSession, exchange_, batch.data(),
                     batch.size(), "sending sub-session batch");
    }
    if (shard_coordinator_->done()) FinishShardedInitiator();
    return;
  }
  std::string error;
  if (!shard_mux_->Flush(emit, &error)) {
    AppendError(error);
    Fail(std::move(error));
    return;
  }
  if (!batch.empty()) {
    AppendOutbound(FrameType::kSubSession, frame_.round, batch.data(),
                   batch.size(), "sending sub-session batch");
  }
}

void SessionEngine::FinishShardedInitiator() {
  result_.outcome = shard_coordinator_->TakeOutcome();
  result_.outcome.estimator_bytes += estimator_payload_bytes_;
  result_.degraded_shards = shard_coordinator_->degraded_shards();
  result_.d_hat = d_hat_ = shard_coordinator_->total_d_hat();
  const std::vector<uint8_t> done = EncodeDone(result_.outcome);
  ++exchange_;
  AppendOutbound(FrameType::kDone, exchange_, done.data(), done.size(),
                 "sending DONE");
  state_ = State::kAwaitDoneAck;
}

void SessionEngine::StartSchemePhase() {
  initiator_engine_ =
      reconciler_->CreateInitiator(*elements_, d_hat_, config_.seed);
  if (!initiator_engine_) {
    AppendError("scheme has no wire protocol");
    Fail("scheme '" + config_.scheme_name +
         "' does not implement a wire protocol");
    return;
  }
  state_ = State::kAwaitSchemeReply;
  EmitNextRequest();
}

void SessionEngine::EmitNextRequest() {
  ++exchange_;
  initiator_engine_->NextRequestInto(&payload_scratch_);
  AppendOutbound(FrameType::kSchemeRequest, exchange_, payload_scratch_.data(),
                 payload_scratch_.size(), "sending round request");
}

// --------------------------------------------------------------- updater --

void SessionEngine::EmitNextUpdate() {
  ++exchange_;
  BitWriter w;
  EncodeUpdate(batches_[batch_pos_], &w);
  AppendOutbound(FrameType::kUpdate, exchange_, w.bytes().data(),
                 w.byte_size(), "sending update");
  state_ = State::kAwaitUpdateAck;
}

void SessionEngine::FinishUpdater() {
  result_.outcome.success = true;
  result_.outcome.rounds = static_cast<int>(batch_pos_);
  char summary[96];
  std::snprintf(summary, sizeof(summary),
                "epoch=%llu inserted=%u deleted=%u rejected=%u",
                static_cast<unsigned long long>(update_epoch_),
                update_inserted_, update_deleted_, update_rejected_);
  result_.outcome.params_summary = summary;
  const std::vector<uint8_t> done = EncodeDone(result_.outcome);
  AppendOutbound(FrameType::kDone, exchange_, done.data(), done.size(),
                 "sending DONE");
  state_ = State::kAwaitDoneAck;
}

// ------------------------------------------------------------- responder --

void SessionEngine::DispatchResponder() {
  if (frame_.type == FrameType::kError) {
    Fail("initiator error: " + ErrorText(frame_));
    return;
  }
  if (frame_.type == FrameType::kUpdate) {
    // UPDATE sessions skip the HELLO: the first kUpdate frame *is* the
    // handshake. Interception before HandleHello keeps the two session
    // kinds from interleaving (see HandleUpdate for the rejections).
    HandleUpdate();
    return;
  }
  if (frame_.type == FrameType::kShardPlan) {
    // Sharded sessions skip the plain HELLO: the SHARD_PLAN embeds it.
    // Interception mirrors kUpdate above (see HandleShardPlan's checks).
    HandleShardPlan();
    return;
  }
  if (frame_.type == FrameType::kResume) {
    // A resumed sharded session: the RESUME embeds the HELLO just like
    // SHARD_PLAN does, and replaces the digest exchange entirely.
    HandleResume();
    return;
  }
  if (state_ == State::kAwaitHello) {
    HandleHello();
    return;
  }
  if (update_session_ && frame_.type != FrameType::kDone) {
    // An update session carries only kUpdate frames and a final kDone.
    AppendError("unexpected frame");
    Fail("unexpected frame");
    return;
  }
  switch (frame_.type) {
    case FrameType::kEstimateRequest:
      HandleEstimateRequest();
      return;
    case FrameType::kSchemeRequest:
      HandleSchemeRequest();
      return;
    case FrameType::kDigestTree:
      HandleDigestTree();
      return;
    case FrameType::kSubSession:
      if (shard_mux_ == nullptr) {
        AppendError("unexpected frame");
        Fail("unexpected frame");
        return;
      }
      HandleSubSession();
      return;
    case FrameType::kDone: {
      bool success = false;
      int rounds = 0;
      uint64_t diff_size = 0;
      if (!DecodeDone(frame_.payload, &success, &rounds, &diff_size)) {
        Fail("malformed DONE");
        return;
      }
      AppendOutbound(FrameType::kDone, frame_.round, nullptr, 0,
                     "sending ack");
      result_.ok = true;
      result_.d_hat = d_hat_ < 0.0 ? 0.0 : d_hat_;
      result_.outcome.success = success;
      result_.outcome.rounds = rounds;
      if (shard_mux_ != nullptr) {
        result_.degraded_shards = shard_mux_->degraded_shards();
      }
      Settle();
      return;
    }
    default:
      AppendError("unexpected frame");
      Fail("unexpected frame");
      return;
  }
}

void SessionEngine::HandleHello() {
  if (frame_.type != FrameType::kHello) {
    AppendError("expected HELLO");
    Fail("expected HELLO");
    return;
  }
  if (!DecodeHello(frame_.payload, &config_)) {
    AppendError("malformed HELLO");
    Fail("malformed HELLO");
    return;
  }
  result_.scheme = config_.scheme_name;
  scheme_id_ = wire::SchemeWireId(config_.scheme_name);
  reconciler_ = registry().Create(config_.scheme_name, config_.options);
  if (!reconciler_) {
    const std::string message = "unknown scheme '" + config_.scheme_name + "'";
    AppendError(message);
    Fail(message);
    return;
  }
  d_hat_ = config_.exact_d;  // -1 until the estimate phase runs.
  AppendOutbound(FrameType::kHelloAck, 0, nullptr, 0, "sending ack");
  state_ = State::kServing;
}

void SessionEngine::HandleShardPlan() {
  if (state_ != State::kAwaitHello || update_session_) {
    AppendError("unexpected frame");
    Fail("unexpected frame");
    return;
  }
  if (elements_ == nullptr) {
    AppendError("server has no element set");
    Fail("SHARD_PLAN on a server with no element set");
    return;
  }
  int proposed = 0;
  uint64_t remote_root = 0;
  std::vector<uint8_t> hello;
  if (!DecodeShardPlanHeader(frame_.payload, &proposed, &remote_root,
                             &hello)) {
    AppendError("malformed SHARD_PLAN");
    Fail("malformed SHARD_PLAN");
    return;
  }
  if (proposed < sync::kMinKeyspaceShards ||
      proposed > sync::kMaxKeyspaceShards) {
    AppendError("shard count out of range");
    Fail("shard count out of range");
    return;
  }
  // DecodeHello overwrites every wire-carried field; side-local knobs
  // (decode_threads, keyspace_shards) survive in config_, which is what
  // lets a smaller locally-configured shard count clamp the proposal.
  if (!DecodeHello(hello, &config_)) {
    AppendError("malformed HELLO");
    Fail("malformed HELLO");
    return;
  }
  result_.scheme = config_.scheme_name;
  scheme_id_ = wire::SchemeWireId(config_.scheme_name);
  if (!registry().Contains(config_.scheme_name)) {
    const std::string message = "unknown scheme '" + config_.scheme_name + "'";
    AppendError(message);
    Fail(message);
    return;
  }
  int accepted = proposed;
  if (config_.keyspace_shards >= sync::kMinKeyspaceShards &&
      config_.keyspace_shards < proposed) {
    accepted = config_.keyspace_shards;
  }
  shard_mux_ = std::make_unique<sync::ShardedResponderMux>(
      config_, elements_, registry_, accepted, snapshot_);
  if (!shard_mux_->ok()) {
    const std::string message = shard_mux_->error();
    AppendError(message);
    Fail(message);
    return;
  }
  d_hat_ = config_.exact_d;
  const std::vector<uint8_t> ack =
      EncodeShardPlanAck(accepted, shard_mux_->root());
  AppendOutbound(FrameType::kShardPlanAck, 0, ack.data(), ack.size(),
                 "sending SHARD_PLAN_ACK");
  state_ = State::kServing;
}

void SessionEngine::HandleResume() {
  if (state_ != State::kAwaitHello || update_session_) {
    AppendError("unexpected frame");
    Fail("unexpected frame");
    return;
  }
  if (elements_ == nullptr) {
    AppendError("server has no element set");
    Fail("RESUME on a server with no element set");
    return;
  }
  int shards = 0;
  uint64_t remote_root = 0;
  std::vector<std::pair<uint32_t, uint8_t>> entries;
  std::vector<uint8_t> hello;
  if (!DecodeResumeHeader(frame_.payload, &shards, &remote_root, &entries,
                          &hello)) {
    AppendError("malformed RESUME");
    Fail("malformed RESUME");
    return;
  }
  if (shards < sync::kMinKeyspaceShards || shards > sync::kMaxKeyspaceShards) {
    AppendError("shard count out of range");
    Fail("shard count out of range");
    return;
  }
  if (!DecodeHello(hello, &config_)) {
    AppendError("malformed HELLO");
    Fail("malformed HELLO");
    return;
  }
  result_.scheme = config_.scheme_name;
  scheme_id_ = wire::SchemeWireId(config_.scheme_name);
  if (!registry().Contains(config_.scheme_name)) {
    const std::string message = "unknown scheme '" + config_.scheme_name + "'";
    AppendError(message);
    Fail(message);
    return;
  }
  // The resumed count was *negotiated* by the interrupted session, but
  // this server's local clamp still binds (the reconnect may have landed
  // on a differently-configured replica).
  if (config_.keyspace_shards >= sync::kMinKeyspaceShards &&
      config_.keyspace_shards < shards) {
    const std::string message = "resume shard count exceeds server limit";
    AppendError(message);
    Fail(message);
    return;
  }
  shard_mux_ = std::make_unique<sync::ShardedResponderMux>(
      config_, elements_, registry_, shards, snapshot_);
  if (!shard_mux_->ok()) {
    const std::string message = shard_mux_->error();
    AppendError(message);
    Fail(message);
    return;
  }
  if (shard_mux_->root() != remote_root) {
    // The served set changed between the interrupted session and this
    // resume, so the shard outcomes the client banked may be invalid.
    // Reject; the client falls back to a fresh session against the
    // current set.
    const std::string message = "stale resume: responder set changed";
    AppendError(message);
    Fail(message);
    return;
  }
  std::string error;
  if (!shard_mux_->BeginResume(entries, &error)) {
    AppendError(error);
    Fail(std::move(error));
    return;
  }
  d_hat_ = config_.exact_d;
  std::vector<uint8_t> ack;
  ack.reserve(8);
  PutU64(shard_mux_->root(), &ack);
  AppendOutbound(FrameType::kResumeAck, 0, ack.data(), ack.size(),
                 "sending RESUME_ACK");
  state_ = State::kServing;
}

void SessionEngine::HandleDigestTree() {
  if (shard_mux_ == nullptr) {
    AppendError("unexpected frame");
    Fail("unexpected frame");
    return;
  }
  std::string error;
  if (!shard_mux_->HandleDigestTree(frame_.payload, &payload_scratch_,
                                    &error)) {
    AppendError(error);
    Fail(std::move(error));
    return;
  }
  AppendOutbound(FrameType::kDigestReply, frame_.round,
                 payload_scratch_.data(), payload_scratch_.size(),
                 "sending DIGEST_REPLY");
}

void SessionEngine::HandleEstimateRequest() {
  BitReader r(frame_.payload);
  const uint64_t remote_size = r.ReadBits(64);
  // remote_size sets the per-counter width ceil(log2(2n+1)); cap it so a
  // hostile value cannot push the width past 64 bits (UB in ReadBits) —
  // real sets are orders of magnitude below this.
  if (remote_size > (uint64_t{1} << 48)) {
    AppendError("malformed estimate request");
    Fail("malformed estimate request");
    return;
  }
  TowSketch remote = TowSketch::Deserialize(
      &r, config_.options.pbs.ell, config_.estimate_seed, remote_size);
  if (r.overflowed()) {
    AppendError("malformed estimate request");
    Fail("malformed estimate request");
    return;
  }
  TowSketch local(config_.options.pbs.ell, config_.estimate_seed);
  local.AddAll(*elements_);
  d_hat_ = TowSketch::Estimate(remote, local);
  BitWriter w;
  w.WriteBits(DoubleBits(d_hat_), 64);
  const std::vector<uint8_t> payload = w.TakeBytes();
  AppendOutbound(FrameType::kEstimateReply, 0, payload.data(), payload.size(),
                 "sending estimate");
}

void SessionEngine::HandleUpdate() {
  if (store_ == nullptr) {
    AppendError("server is read-only");
    Fail("update on read-only server");
    return;
  }
  if (state_ != State::kAwaitHello && !update_session_) {
    // kUpdate arriving mid-reconciliation: sessions are single-purpose.
    AppendError("unexpected frame");
    Fail("unexpected frame");
    return;
  }
  update_session_ = true;
  state_ = State::kServing;
  result_.scheme = "update";
  if (!DecodeUpdate(frame_.payload, &update_scratch_)) {
    // Nothing was applied: DecodeUpdate validates the entire payload
    // before HandleUpdate touches the store.
    AppendError("malformed UPDATE");
    Fail("malformed UPDATE");
    return;
  }
  const ApplyResult applied = store_->Apply(update_scratch_);
  update_epoch_ = applied.epoch;
  update_inserted_ += applied.inserted;
  update_deleted_ += applied.deleted;
  update_rejected_ += applied.rejected_inserts + applied.rejected_deletes;
  BitWriter w;
  w.WriteBits(applied.epoch, 64);
  w.WriteBits(applied.inserted, 32);
  w.WriteBits(applied.deleted, 32);
  w.WriteBits(applied.rejected_inserts, 32);
  w.WriteBits(applied.rejected_deletes, 32);
  static_assert(kUpdateAckBits == 64 + 4 * 32, "ack layout drifted");
  AppendOutbound(FrameType::kUpdateAck, frame_.round, w.bytes().data(),
                 w.byte_size(), "sending update ack");
}

void SessionEngine::HandleSchemeRequest() {
  if (!responder_engine_) {
    if (d_hat_ < 0.0) {
      AppendError("scheme round before estimate");
      Fail("scheme round before estimate");
      return;
    }
    if (snapshot_ != nullptr) {
      // Snapshot fast path: schemes that can adopt the store's pre-built
      // sketch state skip the per-session O(|B|) rebuild. nullptr means
      // "no fast path"; fall through to the classic copying responder.
      responder_engine_ =
          reconciler_->CreateSnapshotResponder(snapshot_, d_hat_, config_.seed);
    }
    if (!responder_engine_) {
      responder_engine_ =
          reconciler_->CreateResponder(*elements_, d_hat_, config_.seed);
    }
    if (!responder_engine_) {
      AppendError("scheme has no wire protocol");
      Fail("scheme '" + config_.scheme_name +
           "' does not implement a wire protocol");
      return;
    }
  }
  if (!responder_engine_->HandleRequest(frame_.payload, &payload_scratch_)) {
    AppendError("malformed scheme request");
    Fail("malformed scheme request");
    return;
  }
  AppendOutbound(FrameType::kSchemeReply, frame_.round, payload_scratch_.data(),
                 payload_scratch_.size(), "sending reply");
}

// --------------------------------------------------------------- terminal --

void SessionEngine::Fail(std::string error) {
  result_.ok = false;
  result_.error = std::move(error);
  result_.outcome.wire_bytes = wire_bytes_;
  result_.outcome.wire_frames = wire_frames_;
  // A failing sharded initiator leaves a resume token behind so a
  // reconnecting driver can finish only the unsettled shards.
  // MakeResumeState returns null when there is nothing worth resuming
  // (plan not agreed yet, or every shard settled).
  if (is_initiator_ && shard_coordinator_ != nullptr &&
      result_.resume_state == nullptr && state_ != State::kFailed) {
    result_.resume_state = shard_coordinator_->MakeResumeState(remote_root_);
  }
  state_ = State::kFailed;
}

void SessionEngine::Settle() {
  result_.outcome.wire_bytes = wire_bytes_;
  result_.outcome.wire_frames = wire_frames_;
  state_ = State::kSettled;
}

}  // namespace pbs
