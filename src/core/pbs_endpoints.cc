#include "pbs/core/pbs_endpoints.h"

#include <cassert>
#include <chrono>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include <array>

#include "pbs/common/bitio.h"
#include "pbs/common/mset_hash.h"
#include "pbs/common/parallel.h"
#include "pbs/common/workspace.h"
#include <algorithm>

#include "pbs/core/element_store.h"
#include "pbs/core/group_state.h"
#include "pbs/core/messages.h"
#include "pbs/core/parity_bitmap.h"
#include "pbs/estimator/tow.h"

namespace pbs {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

// Signatures must be nonzero (Section 2.1 excludes 0 from the universe so
// Procedure 1 can distinguish "no difference" from "difference is 0") and
// fit the configured width. Violations are caller bugs, reported loudly.
void ValidateElements(const std::vector<uint64_t>& elements, int sig_bits,
                      const char* who) {
  const uint64_t limit =
      sig_bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << sig_bits) - 1;
  for (uint64_t e : elements) {
    if (e == 0) {
      throw std::invalid_argument(
          std::string(who) +
          ": element 0 is excluded from the universe (Section 2.1)");
    }
    if (e > limit) {
      throw std::invalid_argument(
          std::string(who) + ": element exceeds sig_bits width");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Alice
// ---------------------------------------------------------------------------

struct PbsAlice::Impl {
  PbsConfig config;
  HashFamily family;
  std::vector<uint64_t> elements;
  PbsPlan plan;
  bool plan_ready = false;
  GF2m field{6};  // Replaced once the plan is known.

  // One active reconciliation unit (Alice side).
  struct Unit {
    UnitCore core;
    std::unordered_set<uint64_t> working;  // A_unit /\triangle D-hat so far.
    SetChecksum checksum;
    bool decoded_ok = false;   // Bob's last decode succeeded.
    bool settled = false;      // Checksum verified.
  };

  std::vector<Unit> units;        // Canonical order, active units only.
  std::vector<bool> last_settled; // Settled flags to ship in the next request.
  bool have_flags = false;
  std::unordered_set<uint64_t> diff;  // Accumulated D-hat (toggle semantics).
  int round = 0;
  PbsTimers timers;
  uint64_t set_size_hint = 0;  // |A| sent in the estimate request.

  // Round-processing scratch, reused across rounds so steady-state
  // encoding/decoding allocates nothing: the named buffers keep their
  // peak capacity. Allocations that remain are proportional to productive
  // events only (recovered differences entering `diff`/`working`, unit
  // splits). Alice's paths need no Workspace -- the BCH decode (which
  // does) runs on Bob's side.
  BitWriter writer;
  ParityBitmap pb_scratch;
  std::vector<uint64_t> positions_scratch;
  std::vector<uint64_t> xors_scratch;
  std::vector<Unit> next_units_scratch;
  std::vector<bool> flags_scratch;

  // Per-group parallel encode (config.decode_threads != 1): the groups'
  // parity bitmaps and sketches are independent, so phase A builds them
  // concurrently -- one scratch block per worker, one flat staging slice
  // per unit -- and phase B serializes the staged syndromes in canonical
  // unit order, byte-identical to the serial writer.
  struct WorkerScratch {
    ParityBitmap pb;
    std::optional<PowerSumSketch> sketch;  // Re-made per plan.
  };
  std::vector<std::unique_ptr<WorkerScratch>> workers;
  std::unique_ptr<ParallelFor> pool;  // Null when decode_threads == 1.
  std::vector<uint64_t> enc_syndromes;  // units.size() * t staging slots.

  Impl(std::vector<uint64_t> elems, const PbsConfig& cfg, uint64_t seed)
      : config(cfg), family(seed), elements(std::move(elems)) {}

  void BuildUnits() {
    const uint32_t g = static_cast<uint32_t>(plan.params.g);
    field = GF2m(plan.params.m);
    const int nthreads = ParallelFor::ResolveThreads(config.decode_threads);
    if (nthreads > 1 && pool == nullptr) {
      pool = std::make_unique<ParallelFor>(nthreads);
    }
    const int scratch_count = pool != nullptr ? pool->threads() : 1;
    workers.clear();
    for (int i = 0; i < scratch_count; ++i) {
      workers.push_back(std::make_unique<WorkerScratch>());
      workers.back()->sketch.emplace(field, plan.params.t);
    }
    units.clear();
    units.resize(g);
    for (uint32_t i = 0; i < g; ++i) {
      units[i].core = UnitCore::Root(family, i);
      units[i].checksum = SetChecksum(config.sig_bits);
    }
    uint64_t groups[kXxHashBatch];
    for (size_t base = 0; base < elements.size(); base += kXxHashBatch) {
      const size_t blk = std::min(kXxHashBatch, elements.size() - base);
      GroupOfMany(family, elements.data() + base, blk, g, groups);
      for (size_t i = 0; i < blk; ++i) {
        Unit& u = units[groups[i]];
        u.working.insert(elements[base + i]);
        u.checksum.Add(elements[base + i]);
      }
    }
  }

  // Replaces a decode-failed unit by its three children (in place).
  std::vector<Unit> SplitUnit(Unit& parent) {
    std::vector<Unit> children(3);
    const uint64_t salt = parent.core.SplitSalt(family);
    for (int c = 0; c < 3; ++c) {
      children[c].core = parent.core.Child(family, static_cast<uint8_t>(c));
      children[c].checksum = SetChecksum(config.sig_bits);
    }
    for (uint64_t e : parent.working) {
      Unit& child = children[UnitCore::ChildIndexOf(e, salt)];
      child.working.insert(e);
      child.checksum.Add(e);
    }
    return children;
  }

  void Toggle(Unit& unit, uint64_t s) {
    if (auto it = unit.working.find(s); it != unit.working.end()) {
      unit.working.erase(it);
      unit.checksum.Remove(s);
    } else {
      unit.working.insert(s);
      unit.checksum.Add(s);
    }
    if (auto it = diff.find(s); it != diff.end()) {
      diff.erase(it);
    } else {
      diff.insert(s);
    }
  }
};

PbsAlice::PbsAlice(std::vector<uint64_t> elements, const PbsConfig& config,
                   uint64_t seed)
    : impl_(std::make_unique<Impl>(std::move(elements), config, seed)) {
  ValidateElements(impl_->elements, config.sig_bits, "PbsAlice");
}

PbsAlice::~PbsAlice() = default;

std::vector<uint8_t> PbsAlice::MakeEstimateRequest() {
  Impl& a = *impl_;
  a.set_size_hint = a.elements.size();
  TowSketch sketch(a.config.ell,
                   a.family.Salt(HashFamily::kEstimator));
  sketch.AddAll(a.elements);
  BitWriter w;
  w.WriteVarint(a.set_size_hint);
  sketch.Serialize(&w, a.set_size_hint);
  return w.TakeBytes();
}

void PbsAlice::HandleEstimateReply(const std::vector<uint8_t>& reply) {
  BitReader r(reply);
  const int d_used = static_cast<int>(r.ReadBits(32));
  SetDifferenceEstimate(d_used);
}

void PbsAlice::SetDifferenceEstimate(int d_used) {
  Impl& a = *impl_;
  a.plan = PlanFor(a.config, d_used);
  a.plan_ready = true;
  a.BuildUnits();
}

std::vector<uint8_t> PbsAlice::MakeRoundRequest() {
  std::vector<uint8_t> out;
  MakeRoundRequest(&out);
  return out;
}

void PbsAlice::MakeRoundRequest(std::vector<uint8_t>* out) {
  Impl& a = *impl_;
  assert(a.plan_ready);
  ++a.round;
  const auto start = Clock::now();
  const int t = a.plan.params.t;
  const int m = a.plan.params.m;
  const size_t n_units = a.units.size();

  // Phase A (parallel over units): bin each group and stage its sketch's
  // odd syndromes in the unit's flat slice.
  a.enc_syndromes.resize(n_units * static_cast<size_t>(t));
  const auto encode_unit = [&a, t](size_t u, int worker) {
    const Impl::Unit& unit = a.units[u];
    if (unit.settled) return;
    Impl::WorkerScratch& scratch = *a.workers[worker];
    const SaltedHash h(unit.core.BinSalt(a.family, a.round));
    ParityBitmap::BuildInto(unit.working, h, a.plan.params.n, &scratch.pb);
    scratch.pb.ToSketchInto(&*scratch.sketch);
    const std::vector<uint64_t>& odd = scratch.sketch->odd_syndromes();
    std::copy(odd.begin(), odd.end(),
              a.enc_syndromes.begin() + u * static_cast<size_t>(t));
  };
  if (a.pool != nullptr) {
    a.pool->Run(n_units, encode_unit);
  } else {
    for (size_t u = 0; u < n_units; ++u) encode_unit(u, 0);
  }

  // Phase B (serial): settled flags, then the staged syndromes in
  // canonical unit order -- byte-identical to serializing each sketch
  // inline, for any thread count.
  BitWriter& w = a.writer;
  w.Clear();
  if (a.have_flags) {
    for (bool settled : a.last_settled) w.WriteBit(settled);
    a.have_flags = false;
  }
  for (size_t u = 0; u < n_units; ++u) {
    if (a.units[u].settled) continue;
    const uint64_t* syn = a.enc_syndromes.data() + u * static_cast<size_t>(t);
    for (int i = 0; i < t; ++i) w.WriteBits(syn[i], m);
  }

  a.timers.encode_seconds += Seconds(start, Clock::now());
  out->assign(w.bytes().begin(), w.bytes().end());
}

bool PbsAlice::HandleRoundReply(const std::vector<uint8_t>& reply) {
  Impl& a = *impl_;
  const auto start = Clock::now();
  BitReader r(reply);
  const int count_bits = wire::CountBits(a.plan.params.t);
  const int m = a.plan.params.m;
  const int sig_bits = a.config.sig_bits;
  const uint32_t g = static_cast<uint32_t>(a.plan.params.g);

  std::vector<Impl::Unit>& next_units = a.next_units_scratch;
  std::vector<bool>& flags = a.flags_scratch;
  next_units.clear();
  flags.clear();
  next_units.reserve(a.units.size());

  for (Impl::Unit& unit : a.units) {
    if (unit.settled) continue;
    const bool failed = r.ReadBit();
    if (failed) {
      // Three-way split (Section 3.2); children reconcile from next round.
      if (unit.core.depth < a.config.max_split_depth) {
        for (Impl::Unit& child : a.SplitUnit(unit)) {
          next_units.push_back(std::move(child));
        }
      } else {
        next_units.push_back(std::move(unit));  // Depth cap: retry as-is.
      }
      continue;
    }

    const int count = static_cast<int>(r.ReadBits(count_bits));
    std::vector<uint64_t>& positions = a.positions_scratch;
    std::vector<uint64_t>& xors = a.xors_scratch;
    positions.resize(count);
    xors.resize(count);
    for (int i = 0; i < count; ++i) positions[i] = r.ReadBits(m);
    for (int i = 0; i < count; ++i) xors[i] = r.ReadBits(sig_bits);
    const uint64_t bob_checksum = r.ReadBits(sig_bits);

    // Recover each candidate distinct element (Procedures 1 and 3).
    const SaltedHash h(unit.core.BinSalt(a.family, a.round));
    ParityBitmap& pb = a.pb_scratch;
    ParityBitmap::BuildInto(unit.working, h, a.plan.params.n, &pb);
    for (int i = 0; i < count; ++i) {
      const uint64_t pos = positions[i];
      if (pos < 1 || pos > static_cast<uint64_t>(a.plan.params.n)) continue;
      const uint64_t s = pb.xor_sum[pos] ^ xors[i];
      if (s == 0) continue;  // XOR-cancelled fake.
      if (a.config.subuniverse_check) {
        if (BinIndex(s, h, a.plan.params.n) != pos) continue;  // Procedure 3.
        if (!unit.core.InSubUniverse(a.family, s, g)) continue;
      }
      a.Toggle(unit, s);
    }

    const bool settled = unit.checksum.value() == bob_checksum;
    flags.push_back(settled);
    if (!settled) {
      unit.decoded_ok = true;
      next_units.push_back(std::move(unit));
    }
  }

  a.units.swap(next_units);
  next_units.clear();  // Frees settled/moved-from units promptly.
  a.last_settled.assign(flags.begin(), flags.end());
  a.have_flags = true;
  a.timers.decode_seconds += Seconds(start, Clock::now());
  return a.units.empty();
}

bool PbsAlice::finished() const {
  return impl_->plan_ready && impl_->round > 0 && impl_->units.empty();
}

int PbsAlice::round() const { return impl_->round; }

std::vector<uint64_t> PbsAlice::Difference() const {
  return {impl_->diff.begin(), impl_->diff.end()};
}

bool PbsAlice::VerifyStrongDigest(
    const std::vector<uint8_t>& digest_msg) const {
  BitReader r(digest_msg);
  std::array<uint64_t, 3> theirs;
  for (auto& lane : theirs) lane = r.ReadBits(64);
  if (r.overflowed()) return false;
  // H(A /\triangle D-hat): start from A, toggle every recovered element.
  MsetHash mine(impl_->family.Salt(HashFamily::kEstimator, 0x5742));
  std::unordered_set<uint64_t> in_a(impl_->elements.begin(),
                                    impl_->elements.end());
  for (uint64_t e : impl_->elements) mine.Add(e);
  for (uint64_t e : impl_->diff) mine.Toggle(e, !in_a.count(e));
  return mine.digest() == theirs;
}

std::vector<uint64_t> PbsAlice::ElementsOnlyInA() const {
  std::unordered_set<uint64_t> in_a(impl_->elements.begin(),
                                    impl_->elements.end());
  std::vector<uint64_t> only_in_a;
  for (uint64_t e : impl_->diff) {
    if (in_a.count(e)) only_in_a.push_back(e);
  }
  return only_in_a;
}

const PbsPlan& PbsAlice::plan() const { return impl_->plan; }
const PbsTimers& PbsAlice::timers() const { return impl_->timers; }

// ---------------------------------------------------------------------------
// Bob
// ---------------------------------------------------------------------------

struct PbsBob::Impl {
  PbsConfig config;
  HashFamily family;
  std::vector<uint64_t> elements;
  // Snapshot mode (core/element_store.h): the set is shared, not owned,
  // and `layout` (when non-null and matching the session plan) supplies
  // round 1's bitmaps/syndromes/checksums so BuildUnits' O(|B|) partition
  // can be deferred until a second round actually happens.
  std::shared_ptr<const std::vector<uint64_t>> shared_elements;
  std::shared_ptr<const PbsStoreLayout> layout;
  bool partitioned = true;  // False while adopted units' elements are lazy.
  PbsPlan plan;
  bool plan_ready = false;
  GF2m field{6};

  const std::vector<uint64_t>& elems() const {
    return shared_elements != nullptr ? *shared_elements : elements;
  }

  struct Unit {
    UnitCore core;
    std::vector<uint64_t> elements;
    uint64_t checksum = 0;
    bool decode_failed = false;  // Last round's decode failed -> will split.
  };

  std::vector<Unit> units;
  int round = 0;
  PbsTimers timers;

  // Round-processing scratch (see PbsAlice::Impl): reused so steady-state
  // request handling allocates nothing.
  BitWriter writer;
  std::vector<Unit> next_units_scratch;

  // Per-group parallel decode (config.decode_threads != 1). The round is
  // a three-phase pipeline: (1) serial -- stage every unit's peer sketch
  // out of the request bitstream; (2) parallel over units -- bin, sketch,
  // merge, BCH-decode each group into its flat result slice, each worker
  // using its own Workspace/bitmap/sketch scratch; (3) serial -- write
  // the reply in canonical unit order. Results are written to per-unit
  // slots and serialized in order, so the reply bytes are identical for
  // every thread count.
  struct WorkerScratch {
    Workspace ws;
    ParityBitmap pb;
    std::optional<PowerSumSketch> diff_sketch;  // Re-made per plan.
    std::vector<uint64_t> positions;
  };
  std::vector<std::unique_ptr<WorkerScratch>> workers;
  std::unique_ptr<ParallelFor> pool;  // Null when decode_threads == 1.
  // Serial lane-blocked decode scratch (decode_threads == 1): up to
  // PowerSumSketch::kDecodeBatch units are staged and handed to one
  // DecodeBatchInto call, so neighboring groups' Chien searches advance in
  // SIMD lanes instead of serially. Results are identical to the per-unit
  // path (DecodeBatchInto is pinned bit-identical to DecodeInto).
  struct LaneScratch {
    std::vector<ParityBitmap> bitmaps;
    std::vector<PowerSumSketch> sketches;  // Re-made per plan.
    std::vector<std::vector<uint64_t>> positions;
  };
  LaneScratch lanes;
  std::vector<uint64_t> alice_syndromes;  // units.size() * t, wire order.
  std::vector<uint64_t> unit_positions;   // units.size() * t result slots.
  std::vector<uint64_t> unit_xors;        // Matching per-position XOR sums.
  std::vector<int> unit_counts;           // Recovered count, -1 = failed.

  Impl(std::vector<uint64_t> elems, const PbsConfig& cfg, uint64_t seed)
      : config(cfg), family(seed), elements(std::move(elems)) {}

  uint64_t ChecksumOf(const std::vector<uint64_t>& elems) const {
    SetChecksum c(config.sig_bits);
    for (uint64_t e : elems) c.Add(e);
    return c.value();
  }

  void SetupWorkers() {
    field = GF2m(plan.params.m);
    const int nthreads = ParallelFor::ResolveThreads(config.decode_threads);
    if (nthreads > 1 && pool == nullptr) {
      pool = std::make_unique<ParallelFor>(nthreads);
    }
    const int scratch_count = pool != nullptr ? pool->threads() : 1;
    workers.clear();
    for (int i = 0; i < scratch_count; ++i) {
      workers.push_back(std::make_unique<WorkerScratch>());
      workers.back()->diff_sketch.emplace(field, plan.params.t);
    }
    const size_t kB = static_cast<size_t>(PowerSumSketch::kDecodeBatch);
    lanes.bitmaps.resize(kB);
    lanes.positions.resize(kB);
    lanes.sketches.clear();
    lanes.sketches.reserve(kB);
    for (size_t i = 0; i < kB; ++i) {
      lanes.sketches.emplace_back(field, plan.params.t);
    }
  }

  void BuildUnits() {
    const uint32_t g = static_cast<uint32_t>(plan.params.g);
    SetupWorkers();
    units.clear();
    units.resize(g);
    for (uint32_t i = 0; i < g; ++i) units[i].core = UnitCore::Root(family, i);
    PartitionIntoUnits(g);
    for (Unit& u : units) u.checksum = ChecksumOf(u.elements);
    partitioned = true;
  }

  // Scatters the element list into the g root units, computing groups in
  // hash-kernel-sized blocks through the batched lanes.
  void PartitionIntoUnits(uint32_t g) {
    const std::vector<uint64_t>& xs = elems();
    uint64_t groups[kXxHashBatch];
    for (size_t base = 0; base < xs.size(); base += kXxHashBatch) {
      const size_t blk = std::min(kXxHashBatch, xs.size() - base);
      GroupOfMany(family, xs.data() + base, blk, g, groups);
      for (size_t i = 0; i < blk; ++i) {
        units[groups[i]].elements.push_back(xs[base + i]);
      }
    }
  }

  /// True when the adopted layout is exactly what this session would have
  /// built: layout contents depend only on (seed, sig_bits, g, n, m, t),
  /// so a d_used mismatch is fine as long as the planned shape coincides.
  bool LayoutMatchesPlan() const {
    return layout != nullptr && layout->seed == family.master_seed() &&
           layout->config.sig_bits == config.sig_bits &&
           layout->plan.params.g == plan.params.g &&
           layout->plan.params.n == plan.params.n &&
           layout->plan.params.m == plan.params.m &&
           layout->plan.params.t == plan.params.t;
  }

  /// Snapshot fast path: root units carry the store's checksums; their
  /// element lists stay empty until EnsurePartitioned. Round 1 then reads
  /// bitmaps/syndromes straight out of the layout.
  void AdoptLayout() {
    const uint32_t g = static_cast<uint32_t>(plan.params.g);
    SetupWorkers();
    units.clear();
    units.resize(g);
    for (uint32_t i = 0; i < g; ++i) {
      units[i].core = UnitCore::Root(family, i);
      units[i].checksum = layout->checksums[i];
    }
    partitioned = false;
  }

  /// Deferred O(|B|) group partition of the adopted path. Must run while
  /// the unit table is still exactly the g roots in group order -- i.e. at
  /// the top of round 2, before any split/settle evolution.
  void EnsurePartitioned() {
    if (partitioned) return;
    partitioned = true;
    PartitionIntoUnits(static_cast<uint32_t>(plan.params.g));
  }

  std::vector<Unit> SplitUnit(Unit& parent) {
    std::vector<Unit> children(3);
    const uint64_t salt = parent.core.SplitSalt(family);
    for (int c = 0; c < 3; ++c) {
      children[c].core = parent.core.Child(family, static_cast<uint8_t>(c));
    }
    for (uint64_t e : parent.elements) {
      children[UnitCore::ChildIndexOf(e, salt)].elements.push_back(e);
    }
    for (Unit& child : children) child.checksum = ChecksumOf(child.elements);
    return children;
  }
};

PbsBob::PbsBob(std::vector<uint64_t> elements, const PbsConfig& config,
               uint64_t seed)
    : impl_(std::make_unique<Impl>(std::move(elements), config, seed)) {
  ValidateElements(impl_->elements, config.sig_bits, "PbsBob");
}

PbsBob::PbsBob(std::shared_ptr<const std::vector<uint64_t>> elements,
               std::shared_ptr<const PbsStoreLayout> layout,
               const PbsConfig& config, uint64_t seed)
    : impl_(std::make_unique<Impl>(std::vector<uint64_t>{}, config, seed)) {
  // The store's insert path already enforces the ValidateElements
  // invariants; re-checking here would reintroduce the O(|B|) setup scan
  // this constructor exists to avoid.
  impl_->shared_elements = std::move(elements);
  impl_->layout = std::move(layout);
}

PbsBob::~PbsBob() = default;

std::vector<uint8_t> PbsBob::HandleEstimateRequest(
    const std::vector<uint8_t>& request) {
  Impl& b = *impl_;
  BitReader r(request);
  const uint64_t alice_size = r.ReadVarint();
  TowSketch alice_sketch = TowSketch::Deserialize(
      &r, b.config.ell, b.family.Salt(HashFamily::kEstimator), alice_size);
  TowSketch bob_sketch(b.config.ell, b.family.Salt(HashFamily::kEstimator));
  bob_sketch.AddAll(b.elems());
  const double d_hat = TowSketch::Estimate(alice_sketch, bob_sketch);
  const int d_used = InflateEstimate(d_hat, b.config.gamma);
  SetDifferenceEstimate(d_used);
  BitWriter w;
  w.WriteBits(static_cast<uint64_t>(d_used), 32);
  return w.TakeBytes();
}

void PbsBob::SetDifferenceEstimate(int d_used) {
  Impl& b = *impl_;
  b.plan = PlanFor(b.config, d_used);
  b.plan_ready = true;
  if (b.LayoutMatchesPlan()) {
    b.AdoptLayout();
  } else {
    b.layout.reset();  // Mismatched layout is useless; drop it.
    b.BuildUnits();
  }
}

std::vector<uint8_t> PbsBob::HandleRoundRequest(
    const std::vector<uint8_t>& request) {
  std::vector<uint8_t> reply;
  HandleRoundRequest(request, &reply);
  return reply;
}

void PbsBob::HandleRoundRequest(const std::vector<uint8_t>& request,
                                std::vector<uint8_t>* reply) {
  Impl& b = *impl_;
  assert(b.plan_ready);
  ++b.round;
  BitReader r(request);

  // Evolve the unit table exactly as Alice did: consume her settled flags
  // for units whose decode succeeded last round, split the failed ones.
  if (b.round > 1) {
    // Adopted sessions deferred the O(|B|) partition; any second round
    // needs real per-unit element lists (for splits and later bin salts),
    // and the table is still exactly the g roots here.
    b.EnsurePartitioned();
    std::vector<Impl::Unit>& next_units = b.next_units_scratch;
    next_units.clear();
    next_units.reserve(b.units.size());
    for (Impl::Unit& unit : b.units) {
      if (unit.decode_failed) {
        if (unit.core.depth < b.config.max_split_depth) {
          for (Impl::Unit& child : b.SplitUnit(unit)) {
            next_units.push_back(std::move(child));
          }
        } else {
          unit.decode_failed = false;
          next_units.push_back(std::move(unit));
        }
        continue;
      }
      const bool settled = r.ReadBit();
      if (!settled) next_units.push_back(std::move(unit));
    }
    b.units.swap(next_units);
    next_units.clear();  // Frees settled/moved-from units promptly.
  }

  BitWriter& w = b.writer;
  w.Clear();
  const int count_bits = wire::CountBits(b.plan.params.t);
  const int m = b.plan.params.m;
  const int n = b.plan.params.n;
  const int t = b.plan.params.t;
  const int sig_bits = b.config.sig_bits;
  const size_t n_units = b.units.size();
  const size_t stride = static_cast<size_t>(t);

  // Phase 1 (serial): stage every unit's peer sketch out of the request
  // bitstream (the bit-serial reader forces canonical order here).
  const auto read_start = Clock::now();
  b.alice_syndromes.resize(n_units * stride);
  for (size_t u = 0; u < n_units; ++u) {
    uint64_t* syn = b.alice_syndromes.data() + u * stride;
    for (int i = 0; i < t; ++i) syn[i] = r.ReadBits(m);
  }
  b.unit_counts.resize(n_units);
  b.unit_positions.resize(n_units * stride);
  b.unit_xors.resize(n_units * stride);

  // Phase 2 (parallel over units): bin, sketch, merge, BCH-decode each
  // group into its flat result slice. Shared state is read-only (element
  // lists, field tables, hash family); every mutable object is per-worker
  // or per-unit, as common/parallel.h's ownership rules require.
  const auto decode_start = Clock::now();
  b.timers.encode_seconds += Seconds(read_start, decode_start);
  const auto decode_unit = [&b, n, stride](size_t u, int worker) {
    const Impl::Unit& unit = b.units[u];
    Impl::WorkerScratch& scratch = *b.workers[worker];
    PowerSumSketch& diff_sketch = *scratch.diff_sketch;
    const ParityBitmap* pb;
    if (!b.partitioned) {
      // Adopted round 1: units are the g roots in group order, and the
      // store maintained exactly the bitmap/sketch this unit would have
      // built (same seed, same round-1 bin salt), so read both straight
      // out of the layout instead of re-binning the group.
      pb = &b.layout->bitmaps[u];
      diff_sketch.Reset();
      diff_sketch.MergeOdd(Span<const uint64_t>(
          b.layout->syndromes.data() + u * stride, stride));
    } else {
      const SaltedHash h(unit.core.BinSalt(b.family, b.round));
      ParityBitmap::BuildInto(unit.elements, h, n, &scratch.pb);
      pb = &scratch.pb;
      scratch.pb.ToSketchInto(&diff_sketch);
    }
    diff_sketch.MergeOdd(Span<const uint64_t>(
        b.alice_syndromes.data() + u * stride, stride));
    if (!diff_sketch.DecodeInto(&scratch.positions, scratch.ws)) {
      b.unit_counts[u] = -1;
      return;
    }
    const int count = static_cast<int>(scratch.positions.size());
    b.unit_counts[u] = count;
    uint64_t* positions = b.unit_positions.data() + u * stride;
    uint64_t* xors = b.unit_xors.data() + u * stride;
    for (int i = 0; i < count; ++i) {
      const uint64_t pos = scratch.positions[i];
      positions[i] = pos;
      xors[i] = pb->xor_sum[pos];
    }
  };
  if (b.pool != nullptr) {
    b.pool->Run(n_units, decode_unit);
  } else {
    // Serial path: stage up to kDecodeBatch units per block and decode them
    // through one DecodeBatchInto call, so the per-group Chien searches run
    // in SIMD lanes. Per-unit results are bit-identical to decode_unit, so
    // the reply bytes stay the same as the pool path's.
    constexpr size_t kB = static_cast<size_t>(PowerSumSketch::kDecodeBatch);
    const PowerSumSketch* lane_sketch[kB];
    std::vector<uint64_t>* lane_out[kB];
    const ParityBitmap* lane_pb[kB];
    uint8_t lane_ok[kB];
    Workspace& ws = b.workers[0]->ws;
    for (size_t base = 0; base < n_units; base += kB) {
      const size_t blk = std::min(kB, n_units - base);
      for (size_t l = 0; l < blk; ++l) {
        const size_t u = base + l;
        const Impl::Unit& unit = b.units[u];
        PowerSumSketch& diff_sketch = b.lanes.sketches[l];
        if (!b.partitioned) {
          lane_pb[l] = &b.layout->bitmaps[u];
          diff_sketch.Reset();
          diff_sketch.MergeOdd(Span<const uint64_t>(
              b.layout->syndromes.data() + u * stride, stride));
        } else {
          const SaltedHash h(unit.core.BinSalt(b.family, b.round));
          ParityBitmap::BuildInto(unit.elements, h, n, &b.lanes.bitmaps[l]);
          lane_pb[l] = &b.lanes.bitmaps[l];
          b.lanes.bitmaps[l].ToSketchInto(&diff_sketch);
        }
        diff_sketch.MergeOdd(Span<const uint64_t>(
            b.alice_syndromes.data() + u * stride, stride));
        lane_sketch[l] = &diff_sketch;
        lane_out[l] = &b.lanes.positions[l];
      }
      PowerSumSketch::DecodeBatchInto(
          Span<const PowerSumSketch* const>(lane_sketch, blk),
          Span<std::vector<uint64_t>* const>(lane_out, blk),
          Span<uint8_t>(lane_ok, blk), ws);
      for (size_t l = 0; l < blk; ++l) {
        const size_t u = base + l;
        if (!lane_ok[l]) {
          b.unit_counts[u] = -1;
          continue;
        }
        const std::vector<uint64_t>& decoded = b.lanes.positions[l];
        const int count = static_cast<int>(decoded.size());
        b.unit_counts[u] = count;
        uint64_t* positions = b.unit_positions.data() + u * stride;
        uint64_t* xors = b.unit_xors.data() + u * stride;
        for (int i = 0; i < count; ++i) {
          const uint64_t pos = decoded[i];
          positions[i] = pos;
          xors[i] = lane_pb[l]->xor_sum[pos];
        }
      }
    }
  }

  // Phase 3 (serial): the reply in canonical unit order -- byte-identical
  // to the serial per-unit writer for any thread count.
  const auto write_start = Clock::now();
  b.timers.decode_seconds += Seconds(decode_start, write_start);
  for (size_t u = 0; u < n_units; ++u) {
    Impl::Unit& unit = b.units[u];
    const int count = b.unit_counts[u];
    if (count < 0) {
      unit.decode_failed = true;
      w.WriteBit(true);
      continue;
    }
    unit.decode_failed = false;
    w.WriteBit(false);
    w.WriteBits(static_cast<uint64_t>(count), count_bits);
    const uint64_t* positions = b.unit_positions.data() + u * stride;
    const uint64_t* xors = b.unit_xors.data() + u * stride;
    for (int i = 0; i < count; ++i) w.WriteBits(positions[i], m);
    for (int i = 0; i < count; ++i) w.WriteBits(xors[i], sig_bits);
    w.WriteBits(unit.checksum, sig_bits);
  }
  b.timers.encode_seconds += Seconds(write_start, Clock::now());

  reply->assign(w.bytes().begin(), w.bytes().end());
}

std::vector<uint8_t> PbsBob::MakeStrongDigest() const {
  MsetHash hash(impl_->family.Salt(HashFamily::kEstimator, 0x5742));
  for (uint64_t e : impl_->elems()) hash.Add(e);
  BitWriter w;
  for (uint64_t lane : hash.digest()) w.WriteBits(lane, 64);
  return w.TakeBytes();
}

const PbsPlan& PbsBob::plan() const { return impl_->plan; }
const PbsTimers& PbsBob::timers() const { return impl_->timers; }

}  // namespace pbs
