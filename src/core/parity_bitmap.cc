#include "pbs/core/parity_bitmap.h"

// ParityBitmap is header-only (template Build); this translation unit
// anchors the module in the build graph.
