#include "pbs/core/parity_bitmap.h"

#include <cassert>
#include <cstring>

#include "pbs/common/cpu_features.h"

// 32-byte-wide bitmap kernels (odd-bin scan, XOR fold, equality). Same
// dispatch pattern as gf/gf2x.cc: the AVX2 bodies are compiled per-function
// via target attributes, selected once at runtime through cpu::HasAvx2(),
// and every scalar reference stays live for the differential tests and as
// the portable / PBS_DISABLE_SIMD fallback. NEON gains little here (the
// scan is movemask-shaped), so AArch64 uses the scalar forms.
#if !defined(PBS_DISABLE_SIMD) && defined(__x86_64__)
#include <immintrin.h>
#define PBS_HAVE_AVX2_BITMAP_KERNEL 1
#endif

namespace pbs {

namespace {

#if defined(PBS_HAVE_AVX2_BITMAP_KERNEL)

// Toggles every odd-parity bin in [1, n] into the sketch, testing 32
// parity bytes per step: a zero-compare + movemask yields one bit per
// byte, and only the (typically sparse) set bits reach the O(t) field
// toggle.
__attribute__((target("avx2"))) void ScanOddBinsAvx2(const uint8_t* parity,
                                                     int n,
                                                     PowerSumSketch* sketch) {
  const __m256i zero = _mm256_setzero_si256();
  int i = 1;
  for (; i + 32 <= n + 1; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(parity + i));
    uint32_t mask = ~static_cast<uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    while (mask != 0) {
      const int bit = __builtin_ctz(mask);
      mask &= mask - 1;
      sketch->Toggle(static_cast<uint64_t>(i + bit));
    }
  }
  for (; i <= n; ++i) {
    if (parity[i]) sketch->Toggle(static_cast<uint64_t>(i));
  }
}

__attribute__((target("avx2"))) void XorBytesAvx2(uint8_t* dst,
                                                  const uint8_t* src,
                                                  size_t bytes) {
  size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  for (; i < bytes; ++i) dst[i] ^= src[i];
}

__attribute__((target("avx2"))) bool BytesEqualAvx2(const uint8_t* a,
                                                    const uint8_t* b,
                                                    size_t bytes) {
  size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (static_cast<uint32_t>(
            _mm256_movemask_epi8(_mm256_cmpeq_epi8(va, vb))) != 0xFFFFFFFFu) {
      return false;
    }
  }
  for (; i < bytes; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

#endif  // PBS_HAVE_AVX2_BITMAP_KERNEL

}  // namespace

void ParityBitmap::ToSketchInto(PowerSumSketch* sketch) const {
#if defined(PBS_HAVE_AVX2_BITMAP_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    sketch->Reset();
    ScanOddBinsAvx2(parity.data(), n, sketch);
    return;
  }
#endif
  ToSketchIntoScalar(sketch);
}

void ParityBitmap::FoldXorScalar(const ParityBitmap& other) {
  assert(n == other.n);
  for (size_t i = 0; i < xor_sum.size(); ++i) xor_sum[i] ^= other.xor_sum[i];
  for (size_t i = 0; i < parity.size(); ++i) parity[i] ^= other.parity[i];
}

void ParityBitmap::FoldXor(const ParityBitmap& other) {
#if defined(PBS_HAVE_AVX2_BITMAP_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    assert(n == other.n);
    XorBytesAvx2(reinterpret_cast<uint8_t*>(xor_sum.data()),
                 reinterpret_cast<const uint8_t*>(other.xor_sum.data()),
                 xor_sum.size() * sizeof(uint64_t));
    XorBytesAvx2(parity.data(), other.parity.data(), parity.size());
    return;
  }
#endif
  FoldXorScalar(other);
}

bool ParityBitmap::EqualsScalar(const ParityBitmap& other) const {
  return n == other.n && xor_sum == other.xor_sum && parity == other.parity;
}

bool ParityBitmap::Equals(const ParityBitmap& other) const {
#if defined(PBS_HAVE_AVX2_BITMAP_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    return n == other.n && xor_sum.size() == other.xor_sum.size() &&
           parity.size() == other.parity.size() &&
           BytesEqualAvx2(reinterpret_cast<const uint8_t*>(xor_sum.data()),
                          reinterpret_cast<const uint8_t*>(
                              other.xor_sum.data()),
                          xor_sum.size() * sizeof(uint64_t)) &&
           BytesEqualAvx2(parity.data(), other.parity.data(), parity.size());
  }
#endif
  return EqualsScalar(other);
}

}  // namespace pbs
