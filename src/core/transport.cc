#include "pbs/core/transport.h"

#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>

#include <arpa/inet.h>
#include <cerrno>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pbs {

namespace {

// ------------------------------------------------------------- loopback --

// One direction of the loopback pair. Senders append, receivers block on
// the condition variable; `closed` turns pending and future reads into EOF.
struct LoopbackPipe {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<uint8_t> buffer;
  bool closed = false;

  void Close() {
    std::lock_guard<std::mutex> lock(mutex);
    closed = true;
    ready.notify_all();
  }
};

class LoopbackTransport : public ByteTransport {
 public:
  LoopbackTransport(std::shared_ptr<LoopbackPipe> out,
                    std::shared_ptr<LoopbackPipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~LoopbackTransport() override {
    out_->Close();
    in_->Close();
  }

  bool Send(const uint8_t* data, size_t size) override {
    std::lock_guard<std::mutex> lock(out_->mutex);
    if (out_->closed) return false;
    out_->buffer.insert(out_->buffer.end(), data, data + size);
    out_->ready.notify_all();
    return true;
  }

  bool Recv(uint8_t* data, size_t size) override {
    std::unique_lock<std::mutex> lock(in_->mutex);
    size_t got = 0;
    while (got < size) {
      in_->ready.wait(lock, [this] {
        return !in_->buffer.empty() || in_->closed;
      });
      if (in_->buffer.empty()) return false;  // Closed with nothing left.
      while (got < size && !in_->buffer.empty()) {
        data[got++] = in_->buffer.front();
        in_->buffer.pop_front();
      }
    }
    return true;
  }

  RecvStatus RecvTimed(uint8_t* data, size_t size, int timeout_ms) override {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    std::unique_lock<std::mutex> lock(in_->mutex);
    size_t got = 0;
    while (got < size) {
      if (!in_->ready.wait_until(lock, deadline, [this] {
            return !in_->buffer.empty() || in_->closed;
          })) {
        return RecvStatus::kTimeout;
      }
      if (in_->buffer.empty()) return RecvStatus::kClosed;
      while (got < size && !in_->buffer.empty()) {
        data[got++] = in_->buffer.front();
        in_->buffer.pop_front();
      }
    }
    return RecvStatus::kOk;
  }

  // Drains whatever is buffered without ever touching the condition
  // variable, so one thread can pump both ends of a pair (sans-I/O
  // session engines) with no deadlock path.
  size_t TryRecv(uint8_t* data, size_t size) override {
    std::lock_guard<std::mutex> lock(in_->mutex);
    size_t got = 0;
    while (got < size && !in_->buffer.empty()) {
      data[got++] = in_->buffer.front();
      in_->buffer.pop_front();
    }
    return got;
  }

 private:
  std::shared_ptr<LoopbackPipe> out_;
  std::shared_ptr<LoopbackPipe> in_;
};

// ------------------------------------------------------------------- fd --

class FdTransport : public ByteTransport {
 public:
  explicit FdTransport(int fd) : fd_(fd) {}

  ~FdTransport() override {
    if (fd_ >= 0) ::close(fd_);
  }

  bool Send(const uint8_t* data, size_t size) override {
    size_t sent = 0;
    while (sent < size) {
      // send(MSG_NOSIGNAL) so a peer that vanished mid-session fails this
      // one transport instead of SIGPIPE-killing a serving process; fall
      // back to write() for non-socket fds (pipes).
      ssize_t n;
      if (is_socket_) {
        n = ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == ENOTSOCK) {
          is_socket_ = false;
          continue;
        }
      } else {
        n = ::write(fd_, data + sent, size - sent);
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  bool Recv(uint8_t* data, size_t size) override {
    size_t got = 0;
    while (got < size) {
      const ssize_t n = ::read(fd_, data + got, size - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // EOF mid-message.
      got += static_cast<size_t>(n);
    }
    return true;
  }

  RecvStatus RecvTimed(uint8_t* data, size_t size, int timeout_ms) override {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    size_t got = 0;
    while (got < size) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) return RecvStatus::kTimeout;
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count();
      pollfd pfd{};
      pfd.fd = fd_;
      pfd.events = POLLIN;
      const int pr = ::poll(&pfd, 1, static_cast<int>(remaining));
      if (pr < 0) {
        if (errno == EINTR) continue;
        return RecvStatus::kClosed;
      }
      if (pr == 0) return RecvStatus::kTimeout;
      const ssize_t n = ::read(fd_, data + got, size - got);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
        return RecvStatus::kClosed;
      }
      if (n == 0) return RecvStatus::kClosed;  // EOF mid-message.
      got += static_cast<size_t>(n);
    }
    return RecvStatus::kOk;
  }

  size_t TryRecv(uint8_t* data, size_t size) override {
    while (true) {
      ssize_t n;
      if (is_socket_) {
        n = ::recv(fd_, data, size, MSG_DONTWAIT);
        if (n < 0 && errno == ENOTSOCK) {
          is_socket_ = false;
          continue;
        }
      } else {
        // Non-socket fds (pipes): poll with zero timeout, then read.
        pollfd pfd{};
        pfd.fd = fd_;
        pfd.events = POLLIN;
        if (::poll(&pfd, 1, 0) <= 0 || (pfd.revents & POLLIN) == 0) return 0;
        n = ::read(fd_, data, size);
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        return 0;  // EAGAIN or a hard error: nothing available now.
      }
      return static_cast<size_t>(n);  // n == 0 is EOF: also "nothing".
    }
  }

 private:
  int fd_;
  bool is_socket_ = true;  // Downgraded on the first ENOTSOCK.
};

void SetErr(std::string* error, const char* what) {
  if (error) *error = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

std::pair<std::unique_ptr<ByteTransport>, std::unique_ptr<ByteTransport>>
MakeLoopbackTransportPair() {
  auto a_to_b = std::make_shared<LoopbackPipe>();
  auto b_to_a = std::make_shared<LoopbackPipe>();
  return {std::make_unique<LoopbackTransport>(a_to_b, b_to_a),
          std::make_unique<LoopbackTransport>(b_to_a, a_to_b)};
}

std::unique_ptr<ByteTransport> MakeFdTransport(int fd) {
  return std::make_unique<FdTransport>(fd);
}

std::unique_ptr<ByteTransport> TcpConnect(const std::string& host,
                                          uint16_t port, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints, &result);
  if (rc != 0) {
    if (error) *error = std::string("getaddrinfo: ") + gai_strerror(rc);
    return nullptr;
  }
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  if (fd < 0) {
    SetErr(error, "connect");
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::make_unique<FdTransport>(fd);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
  }
  return *this;
}

std::unique_ptr<TcpListener> TcpListener::Listen(uint16_t port,
                                                 std::string* error) {
  const int fd = ::socket(AF_INET6, SOCK_STREAM, 0);
  int bound = -1;
  if (fd >= 0) {
    // Dual-stack: accept IPv4 and IPv6 clients on one socket.
    const int off = 0;
    ::setsockopt(fd, IPPROTO_IPV6, IPV6_V6ONLY, &off, sizeof(off));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in6 addr{};
    addr.sin6_family = AF_INET6;
    addr.sin6_addr = in6addr_any;
    addr.sin6_port = htons(port);
    bound = ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  }
  int use_fd = fd;
  if (fd < 0 || bound != 0) {
    if (fd >= 0) ::close(fd);
    // IPv6 unavailable (containers): fall back to plain IPv4.
    use_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (use_fd < 0) {
      SetErr(error, "socket");
      return nullptr;
    }
    const int one = 1;
    ::setsockopt(use_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr4{};
    addr4.sin_family = AF_INET;
    addr4.sin_addr.s_addr = htonl(INADDR_ANY);
    addr4.sin_port = htons(port);
    if (::bind(use_fd, reinterpret_cast<sockaddr*>(&addr4), sizeof(addr4)) !=
        0) {
      SetErr(error, "bind");
      ::close(use_fd);
      return nullptr;
    }
  }
  // Deep backlog: the sharded server batch-accepts from an event loop and
  // the concurrency bench opens thousands of connections in one storm; a
  // tiny backlog would drop SYNs and stall those clients on kernel
  // retransmit timers. The kernel clamps to net.core.somaxconn.
  if (::listen(use_fd, 4096) != 0) {
    SetErr(error, "listen");
    ::close(use_fd);
    return nullptr;
  }
  sockaddr_storage bound_addr{};
  socklen_t len = sizeof(bound_addr);
  uint16_t actual = port;
  if (::getsockname(use_fd, reinterpret_cast<sockaddr*>(&bound_addr), &len) ==
      0) {
    if (bound_addr.ss_family == AF_INET6) {
      actual = ntohs(reinterpret_cast<sockaddr_in6*>(&bound_addr)->sin6_port);
    } else {
      actual = ntohs(reinterpret_cast<sockaddr_in*>(&bound_addr)->sin_port);
    }
  }
  return std::unique_ptr<TcpListener>(new TcpListener(use_fd, actual));
}

std::unique_ptr<ByteTransport> TcpListener::Accept() {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Idle cap on served connections: a client that connects and then
      // sends nothing must not wedge a sequential accept loop forever.
      // Recv fails with EAGAIN after the timeout and the session aborts.
      timeval idle{};
      idle.tv_sec = 30;
      ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &idle, sizeof(idle));
      return std::make_unique<FdTransport>(client);
    }
    if (errno != EINTR) return nullptr;
  }
}

int TcpListener::AcceptRaw() {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) {
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return client;
    }
    if (errno != EINTR) return -1;  // Includes EAGAIN on a non-blocking fd.
  }
}

bool TcpListener::SetNonBlocking(bool enabled) {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  const int wanted = enabled ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd_, F_SETFL, wanted) == 0;
}

}  // namespace pbs
