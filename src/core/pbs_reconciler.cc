#include "pbs/core/pbs_reconciler.h"

#include <cstdio>

#include "pbs/core/reconciler.h"

namespace pbs {

PbsReconciler::PbsReconciler(const SchemeOptions& options)
    : config_(options.pbs), report_sig_bits_(options.report_sig_bits) {
  config_.sig_bits = options.sig_bits;
}

ReconcileOutcome PbsReconciler::Reconcile(const std::vector<uint64_t>& a,
                                          const std::vector<uint64_t>& b,
                                          double d_hat, uint64_t seed) const {
  const int d_used = InflateEstimate(d_hat, config_.gamma);
  const PbsResult r =
      PbsSession::Reconcile(a, b, config_, seed, d_used, nullptr);

  ReconcileOutcome outcome;
  outcome.success = r.success;
  outcome.rounds = r.rounds;
  outcome.difference = r.difference;
  outcome.data_bytes = r.data_bytes;
  outcome.estimator_bytes = r.estimator_bytes;
  outcome.encode_seconds = r.encode_seconds;
  outcome.decode_seconds = r.decode_seconds;
  if (report_sig_bits_ > config_.sig_bits) {
    // Appendix J.3 accounting: XOR sums and checksums scale with the
    // signature width; sketches and bin positions do not. The XOR-sum
    // count is the *recovered* difference (the fields actually sent);
    // the pre-refactor runner used the ground-truth size, which only
    // differs on instances that failed or mis-recovered.
    const double extra_per_sig =
        static_cast<double>(report_sig_bits_ - config_.sig_bits) / 8.0;
    const double sig_fields =
        static_cast<double>(r.difference.size()) +   // XOR sums.
        static_cast<double>(r.plan.params.g);        // Checksums.
    outcome.data_bytes += static_cast<size_t>(extra_per_sig * sig_fields);
  }
  char summary[64];
  std::snprintf(summary, sizeof(summary), "g=%d n=%d t=%d d_used=%d",
                r.plan.params.g, r.plan.params.n, r.plan.params.t,
                r.plan.d_used);
  outcome.params_summary = summary;
  return outcome;
}

}  // namespace pbs
