#include "pbs/core/pbs_reconciler.h"

#include <cstdio>

#include "pbs/common/bitio.h"
#include "pbs/core/element_store.h"
#include "pbs/core/pbs_endpoints.h"
#include "pbs/core/reconciler.h"

namespace pbs {

namespace {

// Scheme-payload kinds for the pbs wire protocol (docs/WIRE_FORMAT.md).
constexpr uint8_t kPbsRound = 1;   // Round request/reply (endpoint bytes).
constexpr uint8_t kPbsDigest = 2;  // Strong-verification digest exchange.

std::string PbsSummary(const PbsPlan& plan) {
  char summary[64];
  std::snprintf(summary, sizeof(summary), "g=%d n=%d t=%d d_used=%d",
                plan.params.g, plan.params.n, plan.params.t, plan.d_used);
  return summary;
}

// Initiator engine: drives PbsAlice exactly like PbsSession::Reconcile,
// one wire exchange per protocol round, plus the optional strong digest.
// The first round request carries d_used so the responder can size its
// plan identically; round payloads embed the endpoints' packed messages.
class PbsInitiator : public ReconcileInitiator {
 public:
  PbsInitiator(std::vector<uint64_t> elements, double d_hat, uint64_t seed,
               const PbsConfig& config, int report_sig_bits)
      : config_(config),
        report_sig_bits_(report_sig_bits),
        d_used_(InflateEstimate(d_hat, config.gamma)),
        alice_(std::move(elements), config, seed) {
    alice_.SetDifferenceEstimate(d_used_);
  }

  std::vector<uint8_t> NextRequest() override {
    std::vector<uint8_t> out;
    NextRequestInto(&out);
    return out;
  }

  void NextRequestInto(std::vector<uint8_t>* out) override {
    if (awaiting_digest_) {
      out->assign(1, kPbsDigest);
      return;
    }
    // Round body, frame writer, and the caller's `out` are all reused
    // scratch: once every buffer has seen its peak round size, building a
    // request performs zero heap allocations.
    alice_.MakeRoundRequest(&body_scratch_);
    pending_request_bytes_ = body_scratch_.size();
    BitWriter& w = frame_writer_;
    w.Clear();
    w.WriteBits(kPbsRound, 8);
    if (alice_.round() == 1) {
      // First round: ship d_used so Bob plans the same (g, n, t).
      w.WriteBits(static_cast<uint32_t>(d_used_), 32);
    }
    w.WriteBytes(body_scratch_.data(), body_scratch_.size());
    out->assign(w.bytes().begin(), w.bytes().end());
  }

  bool HandleReply(const std::vector<uint8_t>& reply) override {
    if (awaiting_digest_) {
      success_ = alice_.VerifyStrongDigest(reply);
      data_bytes_ += reply.size();
      done_ = true;
      return true;
    }
    const bool finished = alice_.HandleRoundReply(reply);
    data_bytes_ += pending_request_bytes_ + reply.size();
    if (finished) {
      if (config_.strong_verification) {
        awaiting_digest_ = true;
      } else {
        success_ = true;
        done_ = true;
      }
    } else if (alice_.round() >= config_.max_rounds) {
      success_ = false;
      done_ = true;
    }
    return true;
  }

  bool done() const override { return done_; }

  ReconcileOutcome TakeOutcome() override {
    ReconcileOutcome outcome;
    outcome.success = success_;
    outcome.rounds = alice_.round();
    outcome.difference = alice_.Difference();
    outcome.data_bytes = data_bytes_;
    outcome.encode_seconds = alice_.timers().encode_seconds;
    outcome.decode_seconds = alice_.timers().decode_seconds;
    if (report_sig_bits_ > config_.sig_bits) {
      // Appendix J.3 accounting, as in PbsReconciler::Reconcile.
      const double extra_per_sig =
          static_cast<double>(report_sig_bits_ - config_.sig_bits) / 8.0;
      const double sig_fields =
          static_cast<double>(outcome.difference.size()) +
          static_cast<double>(alice_.plan().params.g);
      outcome.data_bytes += static_cast<size_t>(extra_per_sig * sig_fields);
    }
    outcome.params_summary = PbsSummary(alice_.plan());
    return outcome;
  }

 private:
  PbsConfig config_;
  int report_sig_bits_;
  int d_used_;
  PbsAlice alice_;
  std::vector<uint8_t> body_scratch_;
  BitWriter frame_writer_;
  size_t pending_request_bytes_ = 0;
  size_t data_bytes_ = 0;
  bool awaiting_digest_ = false;
  bool success_ = false;
  bool done_ = false;
};

class PbsResponder : public ReconcileResponder {
 public:
  PbsResponder(std::vector<uint64_t> elements, uint64_t seed,
               const PbsConfig& config)
      : bob_(std::move(elements), config, seed) {}

  /// Snapshot form: shared elements + optional pre-built layout (adopted
  /// inside PbsBob iff it matches the session's plan).
  PbsResponder(std::shared_ptr<const std::vector<uint64_t>> elements,
               std::shared_ptr<const PbsStoreLayout> layout, uint64_t seed,
               const PbsConfig& config)
      : bob_(std::move(elements), std::move(layout), config, seed) {}

  bool HandleRequest(const std::vector<uint8_t>& request,
                     std::vector<uint8_t>* reply) override {
    BitReader r(request);
    const uint8_t kind = static_cast<uint8_t>(r.ReadBits(8));
    if (r.overflowed()) return false;
    if (kind == kPbsDigest) {
      *reply = bob_.MakeStrongDigest();
      return true;
    }
    if (kind != kPbsRound) return false;
    if (first_round_) {
      // Caps the peer-requested plan size (~10x the paper's largest d):
      // d_used drives the responder's group-table allocation.
      const uint32_t d_used = static_cast<uint32_t>(r.ReadBits(32));
      if (r.overflowed() || d_used > (1u << 20)) return false;
      bob_.SetDifferenceEstimate(static_cast<int>(d_used));
      first_round_ = false;
    }
    body_scratch_.resize(r.remaining_bits() / 8);
    if (!r.ReadBytes(body_scratch_.data(), body_scratch_.size())) return false;
    bob_.HandleRoundRequest(body_scratch_, reply);
    return true;
  }

 private:
  PbsBob bob_;
  std::vector<uint8_t> body_scratch_;
  bool first_round_ = true;
};

}  // namespace

PbsReconciler::PbsReconciler(const SchemeOptions& options)
    : config_(options.pbs), report_sig_bits_(options.report_sig_bits) {
  config_.sig_bits = options.sig_bits;
}

ReconcileOutcome PbsReconciler::Reconcile(const std::vector<uint64_t>& a,
                                          const std::vector<uint64_t>& b,
                                          double d_hat, uint64_t seed) const {
  const int d_used = InflateEstimate(d_hat, config_.gamma);
  const PbsResult r =
      PbsSession::Reconcile(a, b, config_, seed, d_used, nullptr);

  ReconcileOutcome outcome;
  outcome.success = r.success;
  outcome.rounds = r.rounds;
  outcome.difference = r.difference;
  outcome.data_bytes = r.data_bytes;
  outcome.estimator_bytes = r.estimator_bytes;
  outcome.encode_seconds = r.encode_seconds;
  outcome.decode_seconds = r.decode_seconds;
  if (report_sig_bits_ > config_.sig_bits) {
    // Appendix J.3 accounting: XOR sums and checksums scale with the
    // signature width; sketches and bin positions do not. The XOR-sum
    // count is the *recovered* difference (the fields actually sent);
    // the pre-refactor runner used the ground-truth size, which only
    // differs on instances that failed or mis-recovered.
    const double extra_per_sig =
        static_cast<double>(report_sig_bits_ - config_.sig_bits) / 8.0;
    const double sig_fields =
        static_cast<double>(r.difference.size()) +   // XOR sums.
        static_cast<double>(r.plan.params.g);        // Checksums.
    outcome.data_bytes += static_cast<size_t>(extra_per_sig * sig_fields);
  }
  outcome.params_summary = PbsSummary(r.plan);
  return outcome;
}

std::unique_ptr<ReconcileInitiator> PbsReconciler::CreateInitiator(
    std::vector<uint64_t> elements, double d_hat, uint64_t seed) const {
  return std::make_unique<PbsInitiator>(std::move(elements), d_hat, seed,
                                        config_, report_sig_bits_);
}

std::unique_ptr<ReconcileResponder> PbsReconciler::CreateResponder(
    std::vector<uint64_t> elements, double /*d_hat*/, uint64_t seed) const {
  return std::make_unique<PbsResponder>(std::move(elements), seed, config_);
}

std::unique_ptr<ReconcileResponder> PbsReconciler::CreateSnapshotResponder(
    std::shared_ptr<const StoreSnapshot> snapshot, double /*d_hat*/,
    uint64_t seed) const {
  if (snapshot == nullptr || snapshot->elements == nullptr ||
      snapshot->layout == nullptr) {
    return nullptr;  // No pre-built state: use the validating plain path.
  }
  return std::make_unique<PbsResponder>(snapshot->elements, snapshot->layout,
                                        seed, config_);
}

}  // namespace pbs
