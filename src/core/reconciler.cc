#include "pbs/core/reconciler.h"

namespace pbs {

PbsResult PbsSession::Reconcile(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b,
                                const PbsConfig& config, uint64_t seed,
                                int d_used, Transcript* transcript) {
  PbsAlice alice(a, config, seed);
  PbsBob bob(b, config, seed);
  PbsResult result;

  if (d_used >= 0) {
    alice.SetDifferenceEstimate(d_used);
    bob.SetDifferenceEstimate(d_used);
  } else {
    const auto request = alice.MakeEstimateRequest();
    const auto reply = bob.HandleEstimateRequest(request);
    alice.HandleEstimateReply(reply);
    result.estimator_bytes = request.size() + reply.size();
    if (transcript) {
      transcript->Record(0, Direction::kAliceToBob, "estimate_request",
                         request.size());
      transcript->Record(0, Direction::kBobToAlice, "estimate_reply",
                         reply.size());
    }
  }

  bool finished = false;
  std::vector<uint8_t> request, reply;  // Reused across the rounds.
  while (!finished && alice.round() < config.max_rounds) {
    alice.MakeRoundRequest(&request);
    bob.HandleRoundRequest(request, &reply);
    finished = alice.HandleRoundReply(reply);
    result.data_bytes += request.size() + reply.size();
    if (transcript) {
      transcript->Record(alice.round(), Direction::kAliceToBob,
                         "round_request", request.size());
      transcript->Record(alice.round(), Direction::kBobToAlice, "round_reply",
                         reply.size());
    }
  }

  if (finished && config.strong_verification) {
    const auto digest = bob.MakeStrongDigest();
    finished = alice.VerifyStrongDigest(digest);
    result.data_bytes += digest.size();
    if (transcript) {
      transcript->Record(alice.round(), Direction::kBobToAlice,
                         "strong_digest", digest.size());
    }
  }

  result.success = finished;
  result.rounds = alice.round();
  result.difference = alice.Difference();
  result.encode_seconds =
      alice.timers().encode_seconds + bob.timers().encode_seconds;
  result.decode_seconds =
      alice.timers().decode_seconds + bob.timers().decode_seconds;
  result.plan = alice.plan();
  return result;
}

}  // namespace pbs
