#include "pbs/core/messages.h"

#include <cstring>

#include "pbs/common/checksum.h"

namespace pbs::wire {

namespace {

constexpr uint8_t kMagic[4] = {'P', 'B', 'S', 'W'};

void PutU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
  p[2] = static_cast<uint8_t>(v >> 16);
  p[3] = static_cast<uint8_t>(v >> 24);
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

}  // namespace

uint8_t SchemeWireId(const std::string& name) {
  if (name == "pbs") return 1;
  if (name == "pinsketch") return 2;
  if (name == "pinsketch-wp") return 3;
  if (name == "ddigest") return 4;
  if (name == "graphene") return 5;
  return 0;
}

std::string SchemeNameFromWireId(uint8_t id) {
  switch (id) {
    case 1: return "pbs";
    case 2: return "pinsketch";
    case 3: return "pinsketch-wp";
    case 4: return "ddigest";
    case 5: return "graphene";
    default: return std::string();
  }
}

std::vector<uint8_t> EncodeFrame(const WireFrame& frame) {
  std::vector<uint8_t> out(kFrameHeaderSize + frame.payload.size());
  std::memcpy(out.data(), kMagic, 4);
  out[4] = frame.version;
  out[5] = static_cast<uint8_t>(frame.type);
  out[6] = frame.scheme;
  out[7] = 0;  // flags, reserved.
  PutU32(out.data() + 8, frame.round);
  PutU32(out.data() + 12, static_cast<uint32_t>(frame.payload.size()));
  // CRC over the header (with the checksum field still zero) chained over
  // the payload, so corruption anywhere in the frame is caught.
  uint32_t crc = Crc32(out.data(), 16);
  crc = Crc32(frame.payload.data(), frame.payload.size(), crc);
  PutU32(out.data() + 16, crc);
  if (!frame.payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderSize, frame.payload.data(),
                frame.payload.size());
  }
  return out;
}

size_t AppendFrame(FrameType type, uint8_t scheme, uint32_t round,
                   const uint8_t* payload, size_t payload_size,
                   std::vector<uint8_t>* out) {
  const size_t start = out->size();
  out->resize(start + kFrameHeaderSize + payload_size);
  uint8_t* p = out->data() + start;
  std::memcpy(p, kMagic, 4);
  p[4] = kWireVersion;
  p[5] = static_cast<uint8_t>(type);
  p[6] = scheme;
  p[7] = 0;  // flags, reserved.
  PutU32(p + 8, round);
  PutU32(p + 12, static_cast<uint32_t>(payload_size));
  uint32_t crc = Crc32(p, 16);
  crc = Crc32(payload, payload_size, crc);
  PutU32(p + 16, crc);
  if (payload_size > 0) {
    std::memcpy(p + kFrameHeaderSize, payload, payload_size);
  }
  return kFrameHeaderSize + payload_size;
}

FrameStatus DecodeFrame(const uint8_t* data, size_t size, WireFrame* frame,
                        size_t* consumed) {
  if (size < kFrameHeaderSize) return FrameStatus::kTruncated;
  if (std::memcmp(data, kMagic, 4) != 0) return FrameStatus::kBadMagic;
  if (data[4] != kWireVersion) return FrameStatus::kBadVersion;
  const uint32_t length = GetU32(data + 12);
  if (length > kMaxFramePayload) return FrameStatus::kBadLength;
  if (size < kFrameHeaderSize + length) return FrameStatus::kTruncated;
  uint32_t crc = Crc32(data, 16);
  crc = Crc32(data + kFrameHeaderSize, length, crc);
  if (crc != GetU32(data + 16)) return FrameStatus::kBadChecksum;
  frame->version = data[4];
  frame->type = static_cast<FrameType>(data[5]);
  frame->scheme = data[6];
  frame->round = GetU32(data + 8);
  frame->payload.assign(data + kFrameHeaderSize,
                        data + kFrameHeaderSize + length);
  *consumed = kFrameHeaderSize + length;
  return FrameStatus::kOk;
}

FrameStatus InspectFrameHeader(const uint8_t* header, size_t* payload_length) {
  if (std::memcmp(header, kMagic, 4) != 0) return FrameStatus::kBadMagic;
  if (header[4] != kWireVersion) return FrameStatus::kBadVersion;
  const uint32_t length = GetU32(header + 12);
  if (length > kMaxFramePayload) return FrameStatus::kBadLength;
  *payload_length = length;
  return FrameStatus::kOk;
}

}  // namespace pbs::wire
