#include "pbs/core/messages.h"

// The wire helpers are constexpr and header-only; this translation unit
// anchors the module in the build graph.
