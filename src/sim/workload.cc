#include "pbs/sim/workload.h"

#include <cassert>
#include <unordered_set>

#include "pbs/common/rng.h"

namespace pbs {

namespace {

// Draws `count` distinct nonzero values of `sig_bits` width not already in
// `used`, appending them to `used` and returning them.
std::vector<uint64_t> DrawDistinct(size_t count, int sig_bits,
                                   std::unordered_set<uint64_t>* used,
                                   Xoshiro256* rng) {
  const uint64_t mask = sig_bits >= 64 ? ~uint64_t{0}
                                       : (uint64_t{1} << sig_bits) - 1;
  std::vector<uint64_t> out;
  out.reserve(count);
  while (out.size() < count) {
    const uint64_t v = rng->Next() & mask;
    if (v == 0) continue;  // 0 is excluded from the universe (Section 2.1).
    if (used->insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace

SetPair GenerateSetPair(size_t size_a, size_t d, int sig_bits, uint64_t seed) {
  assert(d <= size_a);
  Xoshiro256 rng(seed);
  std::unordered_set<uint64_t> used;
  used.reserve(size_a * 2);

  SetPair pair;
  pair.a = DrawDistinct(size_a, sig_bits, &used, &rng);

  // Remove d random positions from A to form B: Fisher-Yates the first d
  // slots, which leaves a[0..d) as the exclusive elements.
  for (size_t i = 0; i < d; ++i) {
    const size_t j = i + static_cast<size_t>(rng.NextBounded(size_a - i));
    std::swap(pair.a[i], pair.a[j]);
  }
  pair.truth_diff.assign(pair.a.begin(), pair.a.begin() + d);
  pair.b.assign(pair.a.begin() + d, pair.a.end());
  return pair;
}

SetPair GenerateTwoSidedPair(size_t common, size_t d_a_only, size_t d_b_only,
                             int sig_bits, uint64_t seed) {
  Xoshiro256 rng(seed);
  std::unordered_set<uint64_t> used;
  used.reserve((common + d_a_only + d_b_only) * 2);

  const auto shared = DrawDistinct(common, sig_bits, &used, &rng);
  const auto a_only = DrawDistinct(d_a_only, sig_bits, &used, &rng);
  const auto b_only = DrawDistinct(d_b_only, sig_bits, &used, &rng);

  SetPair pair;
  pair.a = shared;
  pair.a.insert(pair.a.end(), a_only.begin(), a_only.end());
  pair.b = shared;
  pair.b.insert(pair.b.end(), b_only.begin(), b_only.end());
  pair.truth_diff = a_only;
  pair.truth_diff.insert(pair.truth_diff.end(), b_only.begin(), b_only.end());
  return pair;
}

}  // namespace pbs
