#include "pbs/sim/runner.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "pbs/baselines/ddigest.h"
#include "pbs/baselines/graphene.h"
#include "pbs/baselines/pinsketch.h"
#include "pbs/baselines/pinsketch_wp.h"
#include "pbs/core/reconciler.h"
#include "pbs/estimator/tow.h"

namespace pbs {

const char* SchemeName(Scheme scheme) {
  switch (scheme) {
    case Scheme::kPbs: return "PBS";
    case Scheme::kPinSketch: return "PinSketch";
    case Scheme::kDDigest: return "D.Digest";
    case Scheme::kGraphene: return "Graphene";
    case Scheme::kPinSketchWp: return "PinSketch/WP";
  }
  return "?";
}

namespace {

bool DifferenceMatches(std::vector<uint64_t> got,
                       std::vector<uint64_t> truth) {
  std::sort(got.begin(), got.end());
  std::sort(truth.begin(), truth.end());
  return got == truth;
}

}  // namespace

InstanceOutcome RunInstance(Scheme scheme, const ExperimentConfig& config,
                            const SetPair& pair, uint64_t seed) {
  InstanceOutcome outcome;

  // Estimation phase, shared across schemes (Section 6.2). The shortcut is
  // statistically identical to the full exchange; see runner.h.
  double d_hat = static_cast<double>(pair.truth_diff.size());
  if (config.use_estimator) {
    d_hat = TowEstimateFromDifference(pair.truth_diff, config.pbs.ell,
                                      seed ^ 0xE571A70Eull);
  }
  const int d_raw = std::max(0, static_cast<int>(std::llround(d_hat)));
  const int d_inflated = InflateEstimate(d_hat, config.pbs.gamma);

  switch (scheme) {
    case Scheme::kPbs: {
      PbsConfig cfg = config.pbs;
      cfg.sig_bits = config.sig_bits;
      PbsResult r = PbsSession::Reconcile(pair.a, pair.b, cfg, seed,
                                          d_inflated, nullptr);
      outcome.correct =
          r.success && DifferenceMatches(r.difference, pair.truth_diff);
      outcome.bytes = r.data_bytes;
      if (config.report_sig_bits > config.sig_bits) {
        // Appendix J.3 accounting: XOR sums and checksums scale with the
        // signature width; sketches and positions do not.
        const double extra_per_sig =
            static_cast<double>(config.report_sig_bits - config.sig_bits) /
            8.0;
        const double sig_fields =
            static_cast<double>(pair.truth_diff.size()) +  // XOR sums.
            static_cast<double>(r.plan.params.g);          // Checksums.
        outcome.bytes += static_cast<size_t>(extra_per_sig * sig_fields);
      }
      outcome.encode_seconds = r.encode_seconds;
      outcome.decode_seconds = r.decode_seconds;
      outcome.rounds = r.rounds;
      break;
    }
    case Scheme::kPinSketch: {
      const int t = std::max(1, d_inflated);
      BaselineOutcome r =
          PinSketchReconcile(pair.a, pair.b, t, config.sig_bits, seed);
      outcome.correct =
          r.success && DifferenceMatches(r.difference, pair.truth_diff);
      outcome.bytes = r.data_bytes;
      outcome.encode_seconds = r.encode_seconds;
      outcome.decode_seconds = r.decode_seconds;
      outcome.rounds = r.rounds;
      break;
    }
    case Scheme::kDDigest: {
      BaselineOutcome r =
          DDigestReconcile(pair.a, pair.b, std::max(d_raw, 1),
                           config.sig_bits, seed);
      outcome.correct =
          r.success && DifferenceMatches(r.difference, pair.truth_diff);
      outcome.bytes = r.data_bytes;
      outcome.encode_seconds = r.encode_seconds;
      outcome.decode_seconds = r.decode_seconds;
      outcome.rounds = r.rounds;
      break;
    }
    case Scheme::kGraphene: {
      BaselineOutcome r = GrapheneReconcile(pair.a, pair.b,
                                            std::max(d_inflated, 1),
                                            config.sig_bits, seed);
      outcome.correct =
          r.success && DifferenceMatches(r.difference, pair.truth_diff);
      outcome.bytes = r.data_bytes;
      outcome.encode_seconds = r.encode_seconds;
      outcome.decode_seconds = r.decode_seconds;
      outcome.rounds = r.rounds;
      break;
    }
    case Scheme::kPinSketchWp: {
      // Same delta and t as PBS (Section 8.3): derive t from the PBS plan.
      PbsConfig cfg = config.pbs;
      cfg.sig_bits = config.sig_bits;
      const PbsPlan plan = PlanFor(cfg, d_inflated);
      BaselineOutcome r = PinSketchWpReconcile(
          pair.a, pair.b, d_inflated, cfg.delta, plan.params.t,
          config.sig_bits, cfg.max_rounds, seed, config.report_sig_bits);
      outcome.correct =
          r.success && DifferenceMatches(r.difference, pair.truth_diff);
      outcome.bytes = r.data_bytes;
      outcome.encode_seconds = r.encode_seconds;
      outcome.decode_seconds = r.decode_seconds;
      outcome.rounds = r.rounds;
      break;
    }
  }
  return outcome;
}

RunStats RunSchemeWithCallback(
    Scheme scheme, const ExperimentConfig& config,
    const std::function<void(const InstanceOutcome&)>& callback) {
  RunStats stats;
  stats.instances = config.instances;

  auto run_one = [&](int i) {
    const uint64_t instance_seed =
        config.seed * 0x9E3779B97F4A7C15ull + 0xABCDEFull * (i + 1);
    const SetPair pair = GenerateSetPair(config.set_size, config.d,
                                         config.sig_bits, instance_seed);
    return RunInstance(scheme, config, pair, instance_seed ^ 0x5CE1E);
  };
  auto accumulate = [&stats](const InstanceOutcome& outcome) {
    stats.success_rate += outcome.correct ? 1.0 : 0.0;
    stats.mean_bytes += static_cast<double>(outcome.bytes);
    stats.mean_encode_seconds += outcome.encode_seconds;
    stats.mean_decode_seconds += outcome.decode_seconds;
    stats.mean_rounds += outcome.rounds;
  };

  int threads = config.threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, std::max(1, config.instances));

  if (threads == 1) {
    for (int i = 0; i < config.instances; ++i) {
      const InstanceOutcome outcome = run_one(i);
      accumulate(outcome);
      if (callback) callback(outcome);
    }
  } else {
    std::vector<InstanceOutcome> outcomes(config.instances);
    std::atomic<int> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        for (int i = next.fetch_add(1); i < config.instances;
             i = next.fetch_add(1)) {
          outcomes[i] = run_one(i);
        }
      });
    }
    for (auto& worker : pool) worker.join();
    for (const InstanceOutcome& outcome : outcomes) {
      accumulate(outcome);
      if (callback) callback(outcome);
    }
  }
  const double n = std::max(config.instances, 1);
  stats.success_rate /= n;
  stats.mean_bytes /= n;
  stats.mean_encode_seconds /= n;
  stats.mean_decode_seconds /= n;
  stats.mean_rounds /= n;
  const int effective_sig =
      config.report_sig_bits > 0 ? config.report_sig_bits : config.sig_bits;
  const double minimum =
      static_cast<double>(config.d) * effective_sig / 8.0;
  stats.overhead_ratio = minimum > 0 ? stats.mean_bytes / minimum : 0.0;
  return stats;
}

RunStats RunScheme(Scheme scheme, const ExperimentConfig& config) {
  return RunSchemeWithCallback(scheme, config, nullptr);
}

}  // namespace pbs
