#include "pbs/sim/runner.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "pbs/estimator/tow.h"

namespace pbs {

namespace {

bool DifferenceMatches(std::vector<uint64_t> got,
                       std::vector<uint64_t> truth) {
  std::sort(got.begin(), got.end());
  std::sort(truth.begin(), truth.end());
  return got == truth;
}

std::unique_ptr<SetReconciler> CreateOrThrow(const std::string& scheme,
                                             const ExperimentConfig& config) {
  auto reconciler =
      SchemeRegistry::Instance().Create(scheme, SchemeOptionsFrom(config));
  if (!reconciler) {
    std::string known;
    for (const std::string& name : SchemeRegistry::Instance().Names()) {
      known += known.empty() ? name : ", " + name;
    }
    throw std::invalid_argument("unknown scheme '" + scheme +
                                "' (registered: " + known + ")");
  }
  return reconciler;
}

}  // namespace

SchemeOptions SchemeOptionsFrom(const ExperimentConfig& config) {
  SchemeOptions options;
  options.sig_bits = config.sig_bits;
  options.report_sig_bits = config.report_sig_bits;
  options.pbs = config.pbs;
  return options;
}

InstanceOutcome RunInstance(const SetReconciler& reconciler,
                            const ExperimentConfig& config,
                            const SetPair& pair, uint64_t seed) {
  // Estimation phase, shared across schemes (Section 6.2). The shortcut is
  // statistically identical to the full exchange; see runner.h.
  double d_hat = static_cast<double>(pair.truth_diff.size());
  if (config.use_estimator && reconciler.needs_estimate()) {
    d_hat = TowEstimateFromDifference(pair.truth_diff, config.pbs.ell,
                                      seed ^ 0xE571A70Eull);
  }

  const ReconcileOutcome r = reconciler.Reconcile(pair.a, pair.b, d_hat, seed);

  InstanceOutcome outcome;
  outcome.correct =
      r.success && DifferenceMatches(r.difference, pair.truth_diff);
  outcome.bytes = r.data_bytes;
  outcome.encode_seconds = r.encode_seconds;
  outcome.decode_seconds = r.decode_seconds;
  outcome.rounds = r.rounds;
  return outcome;
}

RunStats RunSchemeWithCallback(
    const std::string& scheme, const ExperimentConfig& config,
    const std::function<void(const InstanceOutcome&)>& callback) {
  const std::unique_ptr<SetReconciler> reconciler =
      CreateOrThrow(scheme, config);

  RunStats stats;
  stats.instances = config.instances;

  auto run_one = [&](int i) {
    const uint64_t instance_seed =
        config.seed * 0x9E3779B97F4A7C15ull + 0xABCDEFull * (i + 1);
    const SetPair pair = GenerateSetPair(config.set_size, config.d,
                                         config.sig_bits, instance_seed);
    return RunInstance(*reconciler, config, pair, instance_seed ^ 0x5CE1E);
  };
  auto accumulate = [&stats](const InstanceOutcome& outcome) {
    stats.success_rate += outcome.correct ? 1.0 : 0.0;
    stats.mean_bytes += static_cast<double>(outcome.bytes);
    stats.mean_encode_seconds += outcome.encode_seconds;
    stats.mean_decode_seconds += outcome.decode_seconds;
    stats.mean_rounds += outcome.rounds;
  };

  int threads = config.threads;
  if (threads == 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
  }
  threads = std::clamp(threads, 1, std::max(1, config.instances));

  if (threads == 1) {
    for (int i = 0; i < config.instances; ++i) {
      const InstanceOutcome outcome = run_one(i);
      accumulate(outcome);
      if (callback) callback(outcome);
    }
  } else {
    std::vector<InstanceOutcome> outcomes(config.instances);
    std::atomic<int> next{0};
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      pool.emplace_back([&] {
        for (int i = next.fetch_add(1); i < config.instances;
             i = next.fetch_add(1)) {
          outcomes[i] = run_one(i);
        }
      });
    }
    for (auto& worker : pool) worker.join();
    for (const InstanceOutcome& outcome : outcomes) {
      accumulate(outcome);
      if (callback) callback(outcome);
    }
  }
  const double n = std::max(config.instances, 1);
  stats.success_rate /= n;
  stats.mean_bytes /= n;
  stats.mean_encode_seconds /= n;
  stats.mean_decode_seconds /= n;
  stats.mean_rounds /= n;
  const int effective_sig =
      config.report_sig_bits > 0 ? config.report_sig_bits : config.sig_bits;
  const double minimum =
      static_cast<double>(config.d) * effective_sig / 8.0;
  stats.overhead_ratio = minimum > 0 ? stats.mean_bytes / minimum : 0.0;
  return stats;
}

RunStats RunScheme(const std::string& scheme,
                   const ExperimentConfig& config) {
  return RunSchemeWithCallback(scheme, config, nullptr);
}

}  // namespace pbs
