#include "pbs/sim/gossip.h"

#include "pbs/common/rng.h"
#include "pbs/core/pbs_endpoints.h"

namespace pbs {

namespace {

// Runs one pairwise PBS session; applies the difference to both peers.
// Returns bytes used, or 0 on failure (round cap exceeded).
size_t ReconcilePeers(std::unordered_set<uint64_t>* alice_set,
                      std::unordered_set<uint64_t>* bob_set,
                      const PbsConfig& config, uint64_t seed,
                      bool* ok) {
  std::vector<uint64_t> a(alice_set->begin(), alice_set->end());
  std::vector<uint64_t> b(bob_set->begin(), bob_set->end());
  PbsAlice alice(std::move(a), config, seed);
  PbsBob bob(std::move(b), config, seed);

  size_t bytes = 0;
  {
    const auto request = alice.MakeEstimateRequest();
    const auto reply = bob.HandleEstimateRequest(request);
    alice.HandleEstimateReply(reply);
    bytes += request.size() + reply.size();
  }
  bool finished = false;
  while (!finished && alice.round() < config.max_rounds) {
    const auto request = alice.MakeRoundRequest();
    const auto reply = bob.HandleRoundRequest(request);
    finished = alice.HandleRoundReply(reply);
    bytes += request.size() + reply.size();
  }
  *ok = finished;
  if (!finished) return bytes;

  // Both sides adopt the union: Alice learns the full difference; the
  // elements only she had are "pushed" to Bob (their payload transfer is
  // outside the reconciliation byte count, as in the paper).
  for (uint64_t e : alice.Difference()) {
    if (!alice_set->count(e)) alice_set->insert(e);
  }
  for (uint64_t e : alice.ElementsOnlyInA()) bob_set->insert(e);
  // Elements only Bob had are now in Alice's set via the difference; Bob
  // already has them.
  return bytes;
}

}  // namespace

GossipResult RunGossip(const GossipConfig& config) {
  GossipResult result;
  Xoshiro256 rng(config.seed);
  const uint64_t mask = config.sig_bits >= 64
                            ? ~uint64_t{0}
                            : (uint64_t{1} << config.sig_bits) - 1;

  // Build peer sets: shared history + per-peer fresh elements.
  std::vector<std::unordered_set<uint64_t>> peers(config.num_peers);
  std::unordered_set<uint64_t> used;
  auto fresh_element = [&]() {
    while (true) {
      const uint64_t v = rng.Next() & mask;
      if (v != 0 && used.insert(v).second) return v;
    }
  };
  for (size_t i = 0; i < config.shared_elements; ++i) {
    const uint64_t v = fresh_element();
    for (auto& peer : peers) peer.insert(v);
  }
  for (auto& peer : peers) {
    for (size_t i = 0; i < config.fresh_per_peer; ++i) {
      peer.insert(fresh_element());
    }
  }

  // Topology: provided edges or complete graph.
  std::vector<std::pair<int, int>> edges = config.topology;
  if (edges.empty()) {
    for (int i = 0; i < config.num_peers; ++i) {
      for (int j = i + 1; j < config.num_peers; ++j) edges.emplace_back(i, j);
    }
  }

  auto all_equal = [&peers]() {
    for (size_t p = 1; p < peers.size(); ++p) {
      if (peers[p] != peers[0]) return false;
    }
    return true;
  };

  while (result.sweeps < config.max_sweeps && !all_equal()) {
    ++result.sweeps;
    for (const auto& [i, j] : edges) {
      bool ok = false;
      result.naive_bytes += peers[j].size() * (config.sig_bits / 8);
      result.pbs_bytes += ReconcilePeers(
          &peers[i], &peers[j], config.pbs,
          config.seed * 1000003 + result.sweeps * 131 + i * 17 + j, &ok);
      ++result.reconciliations;
      if (!ok) ++result.failed_sessions;
    }
  }

  result.converged = all_equal();
  result.final_set_size = peers[0].size();
  return result;
}

}  // namespace pbs
