#include "pbs/sim/metrics.h"

#include <cstdio>
#include <sstream>

namespace pbs {

ResultTable::ResultTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {}

void ResultTable::AddRow(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
}

std::string ResultTable::ToString() const {
  std::vector<size_t> widths(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ");
      os << row[c];
      for (size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(columns_);
  {
    size_t total = 0;
    for (size_t c = 0; c < columns_.size(); ++c) {
      total += widths[c] + (c == 0 ? 0 : 2);
    }
    os << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit_row(row);

  os << "# csv: ";
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << (c == 0 ? "" : ",") << columns_[c];
  }
  os << '\n';
  for (const auto& row : rows_) {
    os << "# csv: ";
    for (size_t c = 0; c < row.size(); ++c) os << (c == 0 ? "" : ",") << row[c];
    os << '\n';
  }
  return os.str();
}

void ResultTable::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FormatScientific(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

std::string FormatBytes(double bytes) {
  char buf[64];
  if (bytes >= 1024.0 * 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fMB", bytes / (1024.0 * 1024.0));
  } else if (bytes >= 1024.0) {
    std::snprintf(buf, sizeof(buf), "%.2fKB", bytes / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fB", bytes);
  }
  return buf;
}

}  // namespace pbs
