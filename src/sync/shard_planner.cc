#include "pbs/sync/shard_planner.h"

#include "pbs/common/mset_hash.h"
#include "pbs/hash/xxhash64.h"

namespace pbs::sync {

ShardPlan ShardPlan::Derive(int shard_count, uint64_t session_seed) {
  const HashFamily family(session_seed);
  ShardPlan plan;
  plan.shard_count = shard_count;
  plan.partition_salt = family.Salt(HashFamily::kShardPartition);
  plan.checksum_salt = family.Salt(HashFamily::kShardChecksum);
  plan.session_seed = session_seed;
  return plan;
}

std::vector<uint64_t> ComputeShardLeaves(const ShardPlan& plan,
                                         const uint64_t* elements,
                                         size_t count) {
  std::vector<MsetHash> sums(static_cast<size_t>(plan.shard_count),
                             MsetHash(plan.checksum_salt));
  uint64_t shards[kXxHashBatch];
  for (size_t base = 0; base < count; base += kXxHashBatch) {
    const size_t blk =
        count - base < kXxHashBatch ? count - base : kXxHashBatch;
    plan.ShardOfMany(elements + base, blk, shards);
    for (size_t i = 0; i < blk; ++i) {
      sums[shards[i]].Add(elements[base + i]);
    }
  }
  std::vector<uint64_t> leaves;
  leaves.reserve(sums.size());
  for (const MsetHash& h : sums) leaves.push_back(h.Fold64());
  return leaves;
}

void PartitionSelected(const uint64_t* elements, size_t count,
                       const ShardPlan& plan,
                       const std::vector<uint32_t>& shard_ids,
                       std::vector<std::vector<uint64_t>>* out) {
  out->assign(shard_ids.size(), {});
  // Dense shard -> output-slot map (S entries, SIZE_MAX = unselected):
  // the inner loop stays a single load instead of a search per element.
  std::vector<size_t> slot_of(static_cast<size_t>(plan.shard_count),
                              SIZE_MAX);
  for (size_t i = 0; i < shard_ids.size(); ++i) {
    slot_of[shard_ids[i]] = i;
  }
  uint64_t shards[kXxHashBatch];
  for (size_t base = 0; base < count; base += kXxHashBatch) {
    const size_t blk =
        count - base < kXxHashBatch ? count - base : kXxHashBatch;
    plan.ShardOfMany(elements + base, blk, shards);
    for (size_t i = 0; i < blk; ++i) {
      const size_t slot = slot_of[shards[i]];
      if (slot != SIZE_MAX) (*out)[slot].push_back(elements[base + i]);
    }
  }
}

}  // namespace pbs::sync
