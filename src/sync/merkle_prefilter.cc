#include "pbs/sync/merkle_prefilter.h"

#include "pbs/common/merkle.h"

namespace pbs::sync {

uint64_t MerkleRootOf(const std::vector<uint64_t>& leaves) {
  return MerkleTree(leaves).root();
}

std::vector<uint8_t> EncodeDigestLeaves(const std::vector<uint64_t>& leaves) {
  std::vector<uint8_t> payload;
  payload.reserve(leaves.size() * 8);
  for (uint64_t leaf : leaves) {
    for (int b = 0; b < 8; ++b) {
      payload.push_back(static_cast<uint8_t>(leaf >> (8 * b)));
    }
  }
  return payload;
}

bool DecodeDigestLeaves(const std::vector<uint8_t>& payload, size_t expected,
                        std::vector<uint64_t>* leaves) {
  if (payload.size() != expected * 8) return false;
  leaves->clear();
  leaves->reserve(expected);
  for (size_t i = 0; i < expected; ++i) {
    uint64_t leaf = 0;
    for (int b = 0; b < 8; ++b) {
      leaf |= static_cast<uint64_t>(payload[i * 8 + b]) << (8 * b);
    }
    leaves->push_back(leaf);
  }
  return true;
}

std::vector<uint8_t> EncodeDiffBitmap(const std::vector<uint8_t>& differs) {
  std::vector<uint8_t> payload((differs.size() + 7) / 8, 0);
  for (size_t k = 0; k < differs.size(); ++k) {
    if (differs[k]) payload[k / 8] |= static_cast<uint8_t>(1u << (k % 8));
  }
  return payload;
}

bool DecodeDiffBitmap(const std::vector<uint8_t>& payload, size_t shard_count,
                      std::vector<uint8_t>* differs) {
  if (payload.size() != (shard_count + 7) / 8) return false;
  // Padding bits past shard_count must be zero (reject sloppy peers so a
  // future field can safely live there).
  if (shard_count % 8 != 0 &&
      (payload.back() & static_cast<uint8_t>(~((1u << (shard_count % 8)) -
                                               1u))) != 0) {
    return false;
  }
  differs->assign(shard_count, 0);
  for (size_t k = 0; k < shard_count; ++k) {
    (*differs)[k] = (payload[k / 8] >> (k % 8)) & 1u;
  }
  return true;
}

std::vector<uint32_t> DiffDigestLeaves(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b) {
  std::vector<uint32_t> diff;
  const size_t shared = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < shared; ++i) {
    if (a[i] != b[i]) diff.push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = shared; i < a.size(); ++i) {
    diff.push_back(static_cast<uint32_t>(i));
  }
  for (size_t i = shared; i < b.size(); ++i) {
    diff.push_back(static_cast<uint32_t>(i));
  }
  return diff;
}

}  // namespace pbs::sync
