#include "pbs/sync/sharded_session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "pbs/common/bitio.h"
#include "pbs/sync/merkle_prefilter.h"

namespace pbs::sync {
namespace {

using wire::FrameType;

// Mirrors the outer session's estimate-bounds policy
// (core/session_engine.cc): an estimate above this is a protocol
// violation, not a big set.
constexpr double kMaxSubEstimate = static_cast<double>(1 << 19);
// A failed sub-session attempt retries with its difference bound
// escalated by this factor: the wasted bytes of the whole ladder stay
// within a constant factor of the final successful attempt.
constexpr double kSubRetryGrowth = 4.0;
constexpr int kMaxSubAttempts = 6;
// When the pre-filter names at most this many differing shards, the
// global estimate exchange is skipped: a few retry-ladder escalations
// from kSkipInitialD cost less than a full-set ToW sketch on the wire.
constexpr size_t kEstimateSkipShards = 4;
constexpr double kSkipInitialD = 4.0;

// Per-shard scheme-request prefix: u8 attempt + f64 difference bound.
constexpr size_t kSubRequestPrefix = 9;

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string ShardError(const char* what, uint32_t shard) {
  return std::string(what) + " (shard " + std::to_string(shard) + ")";
}

}  // namespace

void AppendSubRecord(uint32_t shard, uint8_t inner_type, const uint8_t* data,
                     size_t size, std::vector<uint8_t>* out) {
  out->reserve(out->size() + 7 + size);
  out->push_back(static_cast<uint8_t>(shard & 0xFF));
  out->push_back(static_cast<uint8_t>((shard >> 8) & 0xFF));
  out->push_back(inner_type);
  const uint32_t len = static_cast<uint32_t>(size);
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<uint8_t>((len >> (8 * b)) & 0xFF));
  }
  out->insert(out->end(), data, data + size);
}

bool ParseSubRecords(const std::vector<uint8_t>& payload,
                     std::vector<SubFrame>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < payload.size()) {
    if (payload.size() - pos < 7) return false;
    SubFrame frame;
    frame.shard = static_cast<uint32_t>(payload[pos]) |
                  (static_cast<uint32_t>(payload[pos + 1]) << 8);
    frame.inner_type = payload[pos + 2];
    uint32_t len = 0;
    for (int b = 0; b < 4; ++b) {
      len |= static_cast<uint32_t>(payload[pos + 3 + b]) << (8 * b);
    }
    pos += 7;
    if (payload.size() - pos < len) return false;
    frame.payload.assign(payload.begin() + pos, payload.begin() + pos + len);
    pos += len;
    out->push_back(std::move(frame));
  }
  return true;
}

// ---------------------------------------------------------------------------
// ShardedCoordinator (initiator side)
// ---------------------------------------------------------------------------

struct ShardedCoordinator::Sub {
  enum Phase : uint8_t {
    kUnopened,
    kAwaitScheme,
    kAwaitDoneAck,
    kComplete,
  };

  uint32_t shard = 0;
  // Retained across attempts (each attempt's engine gets a copy): a
  // failed decode restarts from the same shard slice.
  std::vector<uint64_t> elements;
  std::unique_ptr<ReconcileInitiator> engine;
  double d_attempt = 1.0;
  uint8_t attempt = 0;
  uint8_t phase = kUnopened;
  bool queued = false;       // An inbound record for this shard is queued.
  uint8_t pending_type = 0;  // Inner type to emit after Process (0 = none).
  std::vector<uint8_t> scratch;  // Reused outbound inner payload.
  std::vector<uint8_t> raw;      // Engine request before prefixing.
  // Byte/time accounting accumulated across every attempt.
  uint64_t acc_data_bytes = 0;
  int acc_rounds = 0;
  double acc_encode = 0.0;
  double acc_decode = 0.0;
  ReconcileOutcome outcome;
  bool has_outcome = false;
  std::string error;

  void StageRequest() {
    scratch.clear();
    scratch.reserve(9 + raw.size());
    scratch.push_back(attempt);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d_attempt), "double width");
    std::memcpy(&bits, &d_attempt, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      scratch.push_back(static_cast<uint8_t>((bits >> (8 * b)) & 0xFF));
    }
    scratch.insert(scratch.end(), raw.begin(), raw.end());
    pending_type = static_cast<uint8_t>(FrameType::kSchemeRequest);
  }
};

ShardedCoordinator::ShardedCoordinator(const SessionConfig& config,
                                       SessionEngine::SharedElements elements,
                                       const SchemeRegistry* registry)
    : config_(config), elements_(std::move(elements)) {
  pipeline_ = config_.shard_pipeline < 1 ? 1 : config_.shard_pipeline;
  plan_ = ShardPlan::Derive(config_.keyspace_shards, config_.seed);
  // Per-shard engines run serial: the shard loop owns the parallelism.
  SchemeOptions options = config_.options;
  options.pbs.decode_threads = 1;
  const SchemeRegistry& reg =
      registry != nullptr ? *registry : SchemeRegistry::Instance();
  reconciler_ = reg.Create(config_.scheme_name, options);
  if (reconciler_ == nullptr) {
    error_ = "unknown scheme '" + config_.scheme_name + "'";
  }
}

ShardedCoordinator::~ShardedCoordinator() = default;

const std::vector<uint64_t>& ShardedCoordinator::leaves() {
  if (!leaves_valid_) {
    leaves_ = ComputeShardLeaves(plan_, elements_->data(), elements_->size());
    leaves_valid_ = true;
  }
  return leaves_;
}

uint64_t ShardedCoordinator::root() { return MerkleRootOf(leaves()); }

bool ShardedCoordinator::AdoptShardCount(int accepted, std::string* error) {
  if (accepted == plan_.shard_count) return true;
  if (accepted < kMinKeyspaceShards || accepted > plan_.shard_count) {
    *error = "responder accepted shard count " + std::to_string(accepted) +
             " outside [" + std::to_string(kMinKeyspaceShards) + ", " +
             std::to_string(plan_.shard_count) + "]";
    return false;
  }
  plan_ = ShardPlan::Derive(accepted, config_.seed);
  leaves_valid_ = false;
  return true;
}

void ShardedCoordinator::EncodeDigestTree(std::vector<uint8_t>* out) {
  *out = EncodeDigestLeaves(leaves());
}

bool ShardedCoordinator::BeginSubSessions(const std::vector<uint8_t>& payload,
                                          std::string* error) {
  if (begun_) {
    *error = "duplicate DIGEST_REPLY";
    return false;
  }
  if (payload.size() !=
      (static_cast<size_t>(plan_.shard_count) + 7) / 8) {
    *error = "malformed DIGEST_REPLY";
    return false;
  }
  std::vector<uint8_t> differs;
  if (!DecodeDiffBitmap(payload, static_cast<size_t>(plan_.shard_count),
                        &differs)) {
    *error = "malformed DIGEST_REPLY bitmap";
    return false;
  }
  std::vector<uint32_t> ids;
  for (size_t k = 0; k < differs.size(); ++k) {
    if (differs[k] != 0) ids.push_back(static_cast<uint32_t>(k));
  }
  identical_ = plan_.shard_count - static_cast<int>(ids.size());
  if (config_.exact_d >= 0.0) {
    // exact_d is documented as a valid per-shard upper bound.
    initial_d_ = std::min(std::max(config_.exact_d, 1.0), kMaxSubEstimate);
    ready_ = true;
  } else if (ids.size() <= kEstimateSkipShards) {
    // Few enough survivors that a sketch costs more than it saves: start
    // from a small default bound and let the retry ladder escalate.
    initial_d_ = kSkipInitialD;
    ready_ = true;
  }
  // Otherwise stay unready: the owning engine sees NeedsEstimate(), runs
  // the global estimate exchange, and SetTotalEstimate unblocks Flush.
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements_->data(), elements_->size(), plan_, ids, &parts);
  subs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto sub = std::make_unique<Sub>();
    sub->shard = ids[i];
    sub->elements = std::move(parts[i]);
    subs_.push_back(std::move(sub));
  }
  begun_ = true;
  return true;
}

void ShardedCoordinator::SetTotalEstimate(double d_hat) {
  d_hat_total_ = d_hat;
  // Mean apportioned share plus a one-sigma Poisson cushion; the retry
  // ladder covers shards whose slice clusters beyond it.
  const double mean =
      d_hat / static_cast<double>(std::max<size_t>(1, subs_.size()));
  initial_d_ = std::ceil(mean + std::sqrt(mean) + 1.0);
  initial_d_ = std::min(std::max(initial_d_, 1.0), kMaxSubEstimate);
  ready_ = true;
}

ShardedCoordinator::Sub* ShardedCoordinator::FindSub(uint32_t shard) {
  auto it = std::lower_bound(
      subs_.begin(), subs_.end(), shard,
      [](const std::unique_ptr<Sub>& s, uint32_t id) { return s->shard < id; });
  if (it == subs_.end() || (*it)->shard != shard) return nullptr;
  return it->get();
}

bool ShardedCoordinator::HandleSubFrame(SubFrame frame, std::string* error) {
  if (!begun_) {
    *error = "sub-session record before DIGEST_REPLY";
    return false;
  }
  Sub* sub = FindSub(frame.shard);
  if (sub == nullptr) {
    *error = ShardError("sub-session record for unknown shard", frame.shard);
    return false;
  }
  if (sub->phase == Sub::kUnopened || sub->phase == Sub::kComplete) {
    *error = ShardError("sub-session record for inactive shard", frame.shard);
    return false;
  }
  if (sub->queued) {
    *error = ShardError("overlapping sub-session records", frame.shard);
    return false;
  }
  sub->queued = true;
  queue_.push_back(std::move(frame));
  return true;
}

void ShardedCoordinator::StartAttempt(Sub& sub) {
  sub.engine = reconciler_->CreateInitiator(sub.elements, sub.d_attempt,
                                            plan_.SubSeed(sub.shard));
  if (sub.engine == nullptr) {
    sub.error = "scheme '" + config_.scheme_name + "' has no wire protocol";
    return;
  }
  sub.engine->NextRequestInto(&sub.raw);
  sub.StageRequest();
  sub.phase = Sub::kAwaitScheme;
}

void ShardedCoordinator::Open(Sub& sub) {
  sub.attempt = 1;
  sub.d_attempt = initial_d_;
  StartAttempt(sub);
}

void ShardedCoordinator::Process(Sub& sub, const SubFrame& frame) {
  switch (sub.phase) {
    case Sub::kAwaitScheme: {
      if (frame.inner_type != static_cast<uint8_t>(FrameType::kSchemeReply)) {
        sub.error = ShardError("unexpected sub-session reply", sub.shard);
        return;
      }
      if (!sub.engine->HandleReply(frame.payload)) {
        sub.error = ShardError("malformed sub-session reply", sub.shard);
        return;
      }
      if (!sub.engine->done()) {
        // Later rounds of the same attempt keep the prefix: the record
        // format stays uniform and the responder re-checks consistency.
        sub.engine->NextRequestInto(&sub.raw);
        sub.StageRequest();
        return;
      }
      ReconcileOutcome attempt_outcome = sub.engine->TakeOutcome();
      sub.engine.reset();
      sub.acc_data_bytes += attempt_outcome.data_bytes;
      sub.acc_rounds += attempt_outcome.rounds;
      sub.acc_encode += attempt_outcome.encode_seconds;
      sub.acc_decode += attempt_outcome.decode_seconds;
      if (!attempt_outcome.success && sub.attempt < kMaxSubAttempts &&
          sub.d_attempt < kMaxSubEstimate) {
        // Escalate the bound and retry from scratch. Every scheme's
        // responder sizes itself from the request prefix, so the remote
        // engine follows without renegotiation.
        ++sub.attempt;
        sub.d_attempt =
            std::min(sub.d_attempt * kSubRetryGrowth, kMaxSubEstimate);
        StartAttempt(sub);
        return;
      }
      sub.outcome = std::move(attempt_outcome);
      sub.outcome.data_bytes = sub.acc_data_bytes;
      sub.outcome.rounds = sub.acc_rounds;
      sub.outcome.encode_seconds = sub.acc_encode;
      sub.outcome.decode_seconds = sub.acc_decode;
      sub.has_outcome = true;
      BitWriter w;
      w.WriteBits(sub.outcome.success ? 1 : 0, 8);
      w.WriteBits(static_cast<uint64_t>(sub.outcome.rounds), 32);
      w.WriteBits(static_cast<uint64_t>(sub.outcome.difference.size()), 64);
      sub.scratch = w.TakeBytes();
      sub.pending_type = static_cast<uint8_t>(FrameType::kDone);
      sub.phase = Sub::kAwaitDoneAck;
      return;
    }
    case Sub::kAwaitDoneAck: {
      if (frame.inner_type != static_cast<uint8_t>(FrameType::kDone)) {
        sub.error = ShardError("unexpected sub-session done ack", sub.shard);
        return;
      }
      sub.phase = Sub::kComplete;
      sub.elements = {};
      return;
    }
    default:
      sub.error =
          ShardError("sub-session record for inactive shard", sub.shard);
  }
}

bool ShardedCoordinator::Flush(const SubEmit& emit, std::string* error) {
  if (!queue_.empty()) {
    const size_t n = queue_.size();
    if (pool_ == nullptr && n > 1) {
      const int threads =
          ParallelFor::ResolveThreads(config_.options.pbs.decode_threads);
      if (threads > 1) pool_ = std::make_unique<ParallelFor>(threads);
    }
    // Every queued record targets a distinct shard (enforced at enqueue),
    // so the processing loop is embarrassingly parallel; emissions below
    // stay in arrival order regardless of the thread count.
    if (pool_ != nullptr && n > 1) {
      pool_->Run(n, [this](size_t i, int /*worker*/) {
        Process(*FindSub(queue_[i].shard), queue_[i]);
      });
    } else {
      for (size_t i = 0; i < n; ++i) {
        Process(*FindSub(queue_[i].shard), queue_[i]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      Sub* sub = FindSub(queue_[i].shard);
      sub->queued = false;
      if (!sub->error.empty()) {
        *error = sub->error;
        queue_.clear();
        return false;
      }
      if (sub->phase == Sub::kComplete) {
        ++completed_;
        --open_;
      }
      if (sub->pending_type != 0) {
        emit(sub->shard, sub->pending_type, sub->scratch.data(),
             sub->scratch.size());
        sub->pending_type = 0;
      }
    }
    queue_.clear();
  }
  while (begun_ && ready_ && open_ < static_cast<size_t>(pipeline_) &&
         next_open_ < subs_.size()) {
    Sub& sub = *subs_[next_open_++];
    Open(sub);
    if (!sub.error.empty()) {
      *error = sub.error;
      return false;
    }
    emit(sub.shard, sub.pending_type, sub.scratch.data(), sub.scratch.size());
    sub.pending_type = 0;
    ++open_;
  }
  return true;
}

double ShardedCoordinator::total_d_hat() const {
  if (d_hat_total_ >= 0.0) return d_hat_total_;
  if (config_.exact_d >= 0.0) return config_.exact_d;
  // Estimation was skipped: report the negotiated bound the sub-sessions
  // actually settled at.
  double sum = 0.0;
  for (const auto& sub : subs_) sum += sub->d_attempt;
  return sum;
}

ReconcileOutcome ShardedCoordinator::TakeOutcome() {
  ReconcileOutcome out;
  out.success = true;
  out.rounds = 0;
  size_t total_diff = 0;
  int retries = 0;
  for (const auto& sub : subs_) {
    if (sub->has_outcome) total_diff += sub->outcome.difference.size();
    retries += sub->attempt > 1 ? sub->attempt - 1 : 0;
  }
  out.difference.reserve(total_diff);
  for (auto& subp : subs_) {
    Sub& sub = *subp;
    if (!sub.has_outcome) {
      out.success = false;
      continue;
    }
    out.success = out.success && sub.outcome.success;
    out.rounds = std::max(out.rounds, sub.outcome.rounds);
    out.difference.insert(out.difference.end(),
                          sub.outcome.difference.begin(),
                          sub.outcome.difference.end());
    out.data_bytes += sub.outcome.data_bytes;
    out.estimator_bytes += sub.outcome.estimator_bytes;
    out.encode_seconds += sub.outcome.encode_seconds;
    out.decode_seconds += sub.outcome.decode_seconds;
  }
  char summary[112];
  std::snprintf(summary, sizeof(summary),
                "shards=%d identical=%d differing=%zu pipeline=%d retries=%d",
                plan_.shard_count, identical_, subs_.size(), pipeline_,
                retries);
  out.params_summary = summary;
  return out;
}

// ---------------------------------------------------------------------------
// ShardedResponderMux (responder side)
// ---------------------------------------------------------------------------

struct ShardedResponderMux::Sub {
  uint32_t shard = 0;
  // Retained until the inner done: a retried attempt rebuilds the
  // responder engine from the same shard slice.
  std::vector<uint64_t> elements;
  std::unique_ptr<ReconcileResponder> engine;
  uint8_t attempt = 0;
  bool complete = false;
  bool queued = false;
  uint8_t pending_type = 0;
  std::vector<uint8_t> scratch;
  std::string error;
};

ShardedResponderMux::ShardedResponderMux(
    const SessionConfig& config, SessionEngine::SharedElements elements,
    const SchemeRegistry* registry, int accepted_shards,
    std::shared_ptr<const StoreSnapshot> snapshot)
    : config_(config), elements_(std::move(elements)) {
  plan_ = ShardPlan::Derive(accepted_shards, config_.seed);
  SchemeOptions options = config_.options;
  options.pbs.decode_threads = 1;
  const SchemeRegistry& reg =
      registry != nullptr ? *registry : SchemeRegistry::Instance();
  reconciler_ = reg.Create(config_.scheme_name, options);
  if (reconciler_ == nullptr) {
    error_ = "unknown scheme '" + config_.scheme_name + "'";
    return;
  }
  // A store snapshot that maintained checksums for exactly this layout
  // hands us the leaves for free (core/element_store.h).
  if (snapshot != nullptr && snapshot->shard_checksums != nullptr &&
      snapshot->shard_checksums->shard_count == accepted_shards &&
      snapshot->shard_checksums->seed == config_.seed) {
    leaves_ = snapshot->shard_checksums->leaves;
    leaves_valid_ = true;
  }
}

ShardedResponderMux::~ShardedResponderMux() = default;

void ShardedResponderMux::EnsureLeaves() {
  if (!leaves_valid_) {
    leaves_ = ComputeShardLeaves(plan_, elements_->data(), elements_->size());
    leaves_valid_ = true;
  }
}

uint64_t ShardedResponderMux::root() {
  EnsureLeaves();
  return MerkleRootOf(leaves_);
}

bool ShardedResponderMux::HandleDigestTree(const std::vector<uint8_t>& payload,
                                           std::vector<uint8_t>* reply,
                                           std::string* error) {
  if (partitioned_) {
    *error = "duplicate DIGEST_TREE";
    return false;
  }
  std::vector<uint64_t> remote;
  if (!DecodeDigestLeaves(payload, static_cast<size_t>(plan_.shard_count),
                          &remote)) {
    *error = "malformed DIGEST_TREE payload";
    return false;
  }
  EnsureLeaves();
  std::vector<uint8_t> differs(static_cast<size_t>(plan_.shard_count), 0);
  std::vector<uint32_t> ids;
  for (size_t k = 0; k < differs.size(); ++k) {
    if (remote[k] != leaves_[k]) {
      differs[k] = 1;
      ids.push_back(static_cast<uint32_t>(k));
    }
  }
  *reply = EncodeDiffBitmap(differs);
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements_->data(), elements_->size(), plan_, ids, &parts);
  subs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto sub = std::make_unique<Sub>();
    sub->shard = ids[i];
    sub->elements = std::move(parts[i]);
    subs_.push_back(std::move(sub));
  }
  partitioned_ = true;
  return true;
}

ShardedResponderMux::Sub* ShardedResponderMux::FindSub(uint32_t shard) {
  auto it = std::lower_bound(
      subs_.begin(), subs_.end(), shard,
      [](const std::unique_ptr<Sub>& s, uint32_t id) { return s->shard < id; });
  if (it == subs_.end() || (*it)->shard != shard) return nullptr;
  return it->get();
}

bool ShardedResponderMux::HandleSubFrame(SubFrame frame, std::string* error) {
  if (!partitioned_) {
    *error = "sub-session record before DIGEST_TREE";
    return false;
  }
  Sub* sub = FindSub(frame.shard);
  if (sub == nullptr) {
    *error = ShardError("sub-session record for unknown shard", frame.shard);
    return false;
  }
  if (sub->complete) {
    *error = ShardError("sub-session record for settled shard", frame.shard);
    return false;
  }
  if (sub->queued) {
    *error = ShardError("overlapping sub-session records", frame.shard);
    return false;
  }
  sub->queued = true;
  queue_.push_back(std::move(frame));
  return true;
}

void ShardedResponderMux::Process(Sub& sub, const SubFrame& frame) {
  switch (static_cast<FrameType>(frame.inner_type)) {
    case FrameType::kSchemeRequest: {
      if (frame.payload.size() < kSubRequestPrefix) {
        sub.error = ShardError("malformed sub-session request", sub.shard);
        return;
      }
      const uint8_t attempt = frame.payload[0];
      uint64_t bits = 0;
      for (int b = 0; b < 8; ++b) {
        bits |= static_cast<uint64_t>(frame.payload[1 + b]) << (8 * b);
      }
      const double d = BitsToDouble(bits);
      if (!std::isfinite(d) || d < 0.0 || d > kMaxSubEstimate) {
        sub.error = ShardError("sub-session bound out of range", sub.shard);
        return;
      }
      if (sub.engine == nullptr || attempt != sub.attempt) {
        // First round of a (possibly retried) attempt: build a fresh
        // responder engine sized from the carried bound. Attempts only
        // ever advance by one.
        if (attempt != sub.attempt + 1) {
          sub.error =
              ShardError("sub-session attempt out of order", sub.shard);
          return;
        }
        sub.attempt = attempt;
        sub.engine = reconciler_->CreateResponder(sub.elements, d,
                                                  plan_.SubSeed(sub.shard));
        if (sub.engine == nullptr) {
          sub.error =
              "scheme '" + config_.scheme_name + "' has no wire protocol";
          return;
        }
      }
      const std::vector<uint8_t> inner(
          frame.payload.begin() + kSubRequestPrefix, frame.payload.end());
      if (!sub.engine->HandleRequest(inner, &sub.scratch)) {
        sub.error = ShardError("malformed sub-session request", sub.shard);
        return;
      }
      sub.pending_type = static_cast<uint8_t>(FrameType::kSchemeReply);
      return;
    }
    case FrameType::kDone: {
      // 13-byte summary: u8 success, u32 rounds, u64 recovered diff size.
      if (frame.payload.size() < 13) {
        sub.error = ShardError("malformed sub-session done", sub.shard);
        return;
      }
      sub.complete = true;
      sub.engine.reset();
      sub.elements = {};
      sub.scratch.clear();
      sub.pending_type = static_cast<uint8_t>(FrameType::kDone);
      return;
    }
    default:
      sub.error = ShardError("unexpected sub-session record type", sub.shard);
  }
}

bool ShardedResponderMux::Flush(const SubEmit& emit, std::string* error) {
  if (queue_.empty()) return true;
  const size_t n = queue_.size();
  if (pool_ == nullptr && n > 1) {
    const int threads =
        ParallelFor::ResolveThreads(config_.options.pbs.decode_threads);
    if (threads > 1) pool_ = std::make_unique<ParallelFor>(threads);
  }
  if (pool_ != nullptr && n > 1) {
    pool_->Run(n, [this](size_t i, int /*worker*/) {
      Process(*FindSub(queue_[i].shard), queue_[i]);
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      Process(*FindSub(queue_[i].shard), queue_[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Sub* sub = FindSub(queue_[i].shard);
    sub->queued = false;
    if (!sub->error.empty()) {
      *error = sub->error;
      queue_.clear();
      return false;
    }
    if (sub->pending_type != 0) {
      emit(sub->shard, sub->pending_type, sub->scratch.data(),
           sub->scratch.size());
      sub->pending_type = 0;
    }
  }
  queue_.clear();
  return true;
}

}  // namespace pbs::sync
