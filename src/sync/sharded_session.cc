#include "pbs/sync/sharded_session.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "pbs/common/bitio.h"
#include "pbs/sync/merkle_prefilter.h"

namespace pbs::sync {
namespace {

using wire::FrameType;

// Mirrors the outer session's estimate-bounds policy
// (core/session_engine.cc): an estimate above this is a protocol
// violation, not a big set.
constexpr double kMaxSubEstimate = static_cast<double>(1 << 19);
// A failed sub-session attempt retries with its difference bound
// escalated by this factor: the wasted bytes of the whole ladder stay
// within a constant factor of the final successful attempt.
constexpr double kSubRetryGrowth = 4.0;
constexpr int kMaxSubAttempts = 6;
// When the pre-filter names at most this many differing shards, the
// global estimate exchange is skipped: a few retry-ladder escalations
// from kSkipInitialD cost less than a full-set ToW sketch on the wire.
constexpr size_t kEstimateSkipShards = 4;
constexpr double kSkipInitialD = 4.0;

// Per-shard scheme-request prefix: u8 attempt + f64 difference bound.
// When the attempt byte's top bit is set (graceful degradation), one
// scheme-id byte follows the attempt before the bound — clean sessions
// keep the classic 9-byte prefix bit-for-bit.
constexpr size_t kSubRequestPrefix = 9;
constexpr uint8_t kSubSchemeOverride = 0x80;
// Attempt counters share the byte with the override bit, so they are
// capped well below 0x80 (the ladders never get near this in practice).
constexpr uint8_t kMaxAttemptCounter = 120;

// Degradation ladder: when a shard's retry ladder exhausts under the
// primary scheme, it falls back to the first usable alternate from this
// list, then the next. Ordered by robustness under a wrong bound.
constexpr const char* kFallbackSchemes[] = {"graphene", "ddigest",
                                            "pinsketch"};

// The `level`-th (1-based) usable fallback for `primary`: registered,
// different from the primary, and with a nonzero wire id (the id is how
// the choice travels). Empty when the ladder is out of options.
std::string FallbackSchemeAt(const std::string& primary, int level,
                             const SchemeRegistry& reg) {
  int found = 0;
  for (const char* name : kFallbackSchemes) {
    if (primary == name) continue;
    if (!reg.Contains(name)) continue;
    if (wire::SchemeWireId(name) == 0) continue;
    if (++found == level) return name;
  }
  return std::string();
}

double BitsToDouble(uint64_t bits) {
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string ShardError(const char* what, uint32_t shard) {
  return std::string(what) + " (shard " + std::to_string(shard) + ")";
}

}  // namespace

void AppendSubRecord(uint32_t shard, uint8_t inner_type, const uint8_t* data,
                     size_t size, std::vector<uint8_t>* out) {
  out->reserve(out->size() + 7 + size);
  out->push_back(static_cast<uint8_t>(shard & 0xFF));
  out->push_back(static_cast<uint8_t>((shard >> 8) & 0xFF));
  out->push_back(inner_type);
  const uint32_t len = static_cast<uint32_t>(size);
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<uint8_t>((len >> (8 * b)) & 0xFF));
  }
  out->insert(out->end(), data, data + size);
}

bool ParseSubRecords(const std::vector<uint8_t>& payload,
                     std::vector<SubFrame>* out) {
  out->clear();
  size_t pos = 0;
  while (pos < payload.size()) {
    if (payload.size() - pos < 7) return false;
    SubFrame frame;
    frame.shard = static_cast<uint32_t>(payload[pos]) |
                  (static_cast<uint32_t>(payload[pos + 1]) << 8);
    frame.inner_type = payload[pos + 2];
    uint32_t len = 0;
    for (int b = 0; b < 4; ++b) {
      len |= static_cast<uint32_t>(payload[pos + 3 + b]) << (8 * b);
    }
    pos += 7;
    if (payload.size() - pos < len) return false;
    frame.payload.assign(payload.begin() + pos, payload.begin() + pos + len);
    pos += len;
    out->push_back(std::move(frame));
  }
  return true;
}

// ---------------------------------------------------------------------------
// ShardedCoordinator (initiator side)
// ---------------------------------------------------------------------------

struct ShardedCoordinator::Sub {
  enum Phase : uint8_t {
    kUnopened,
    kAwaitScheme,
    kAwaitDoneAck,
    kComplete,
  };

  uint32_t shard = 0;
  // Retained across attempts (each attempt's engine gets a copy): a
  // failed decode restarts from the same shard slice.
  std::vector<uint64_t> elements;
  std::unique_ptr<ReconcileInitiator> engine;
  double d_attempt = 1.0;
  uint8_t attempt = 0;
  // First attempt of the current ladder: fresh shards start at 1; a
  // resumed or degraded shard restarts its retry budget here, so
  // (attempt - ladder_start + 1) attempts have run on this ladder.
  uint8_t ladder_start = 1;
  // Graceful degradation: 0 = primary scheme; >0 indexes the fallback
  // list. `alt` is the fallback reconciler, announced to the responder
  // via the override prefix (attempt | 0x80, then the scheme id).
  uint8_t degrade_level = 0;
  uint8_t scheme_wire_id = 0;
  std::string scheme_name;
  std::unique_ptr<SetReconciler> alt;
  uint8_t phase = kUnopened;
  bool queued = false;       // An inbound record for this shard is queued.
  uint8_t pending_type = 0;  // Inner type to emit after Process (0 = none).
  std::vector<uint8_t> scratch;  // Reused outbound inner payload.
  std::vector<uint8_t> raw;      // Engine request before prefixing.
  // Byte/time accounting accumulated across every attempt.
  uint64_t acc_data_bytes = 0;
  int acc_rounds = 0;
  double acc_encode = 0.0;
  double acc_decode = 0.0;
  ReconcileOutcome outcome;
  bool has_outcome = false;
  std::string error;

  void StageRequest() {
    scratch.clear();
    const bool degraded = scheme_wire_id != 0;
    scratch.reserve((degraded ? 10 : 9) + raw.size());
    scratch.push_back(degraded
                          ? static_cast<uint8_t>(attempt | kSubSchemeOverride)
                          : attempt);
    if (degraded) scratch.push_back(scheme_wire_id);
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d_attempt), "double width");
    std::memcpy(&bits, &d_attempt, sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      scratch.push_back(static_cast<uint8_t>((bits >> (8 * b)) & 0xFF));
    }
    scratch.insert(scratch.end(), raw.begin(), raw.end());
    pending_type = static_cast<uint8_t>(FrameType::kSchemeRequest);
  }
};

ShardedCoordinator::ShardedCoordinator(const SessionConfig& config,
                                       SessionEngine::SharedElements elements,
                                       const SchemeRegistry* registry)
    : config_(config), elements_(std::move(elements)), registry_(registry) {
  pipeline_ = config_.shard_pipeline < 1 ? 1 : config_.shard_pipeline;
  plan_ = ShardPlan::Derive(config_.keyspace_shards, config_.seed);
  // Per-shard engines run serial: the shard loop owns the parallelism.
  SchemeOptions options = config_.options;
  options.pbs.decode_threads = 1;
  const SchemeRegistry& reg =
      registry != nullptr ? *registry : SchemeRegistry::Instance();
  reconciler_ = reg.Create(config_.scheme_name, options);
  if (reconciler_ == nullptr) {
    error_ = "unknown scheme '" + config_.scheme_name + "'";
  }
}

ShardedCoordinator::ShardedCoordinator(const SessionConfig& config,
                                       SessionEngine::SharedElements elements,
                                       const SchemeRegistry* registry,
                                       const ShardResumeState& token)
    : ShardedCoordinator(config, std::move(elements), registry) {
  if (!error_.empty()) return;
  // The plan comes from the token, not the config: the interrupted
  // session may have been clamped by the responder.
  plan_ = ShardPlan::Derive(token.shard_count, config_.seed);
  leaves_valid_ = false;
  resumed_ = true;
  initial_d_ = std::min(std::max(token.initial_d, 1.0), kMaxSubEstimate);
  identical_ = token.identical_shards;
  degraded_.store(token.degraded, std::memory_order_relaxed);
  carried_retries_ = token.retries;
  carried_difference_ = token.settled_difference;
  carried_data_bytes_ = token.settled_data_bytes;
  carried_rounds_ = token.settled_rounds;
  carried_encode_ = token.settled_encode_seconds;
  carried_decode_ = token.settled_decode_seconds;
  carried_settled_ = token.settled_count;
  const SchemeRegistry& reg =
      registry_ != nullptr ? *registry_ : SchemeRegistry::Instance();
  // Stage exactly the unsettled shards, each ladder where it stood.
  std::vector<uint32_t> ids;
  ids.reserve(token.pending.size());
  for (const auto& p : token.pending) ids.push_back(p.shard);
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements_->data(), elements_->size(), plan_, ids, &parts);
  subs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    const ShardResumeState::Pending& p = token.pending[i];
    auto sub = std::make_unique<Sub>();
    sub->shard = ids[i];
    sub->elements = std::move(parts[i]);
    sub->attempt = p.attempt;
    sub->d_attempt = std::isfinite(p.d_attempt)
                         ? std::min(std::max(p.d_attempt, 1.0), kMaxSubEstimate)
                         : initial_d_;
    if (p.degrade_level > 0) {
      // Rebuild the fallback reconciler the interrupted ladder reached.
      sub->degrade_level = p.degrade_level;
      sub->scheme_name =
          FallbackSchemeAt(config_.scheme_name, p.degrade_level, reg);
      sub->scheme_wire_id = wire::SchemeWireId(sub->scheme_name);
      SchemeOptions options = config_.options;
      options.pbs.decode_threads = 1;
      if (!sub->scheme_name.empty()) {
        sub->alt = reg.Create(sub->scheme_name, options);
      }
      if (sub->alt == nullptr || sub->scheme_wire_id == 0) {
        error_ = "resume token names an unavailable fallback scheme";
        return;
      }
    }
    subs_.push_back(std::move(sub));
  }
  begun_ = true;
  ready_ = true;
}

ShardedCoordinator::~ShardedCoordinator() = default;

const std::vector<uint64_t>& ShardedCoordinator::leaves() {
  if (!leaves_valid_) {
    leaves_ = ComputeShardLeaves(plan_, elements_->data(), elements_->size());
    leaves_valid_ = true;
  }
  return leaves_;
}

uint64_t ShardedCoordinator::root() { return MerkleRootOf(leaves()); }

bool ShardedCoordinator::AdoptShardCount(int accepted, std::string* error) {
  if (accepted == plan_.shard_count) return true;
  if (accepted < kMinKeyspaceShards || accepted > plan_.shard_count) {
    *error = "responder accepted shard count " + std::to_string(accepted) +
             " outside [" + std::to_string(kMinKeyspaceShards) + ", " +
             std::to_string(plan_.shard_count) + "]";
    return false;
  }
  plan_ = ShardPlan::Derive(accepted, config_.seed);
  leaves_valid_ = false;
  return true;
}

void ShardedCoordinator::EncodeDigestTree(std::vector<uint8_t>* out) {
  *out = EncodeDigestLeaves(leaves());
}

bool ShardedCoordinator::BeginSubSessions(const std::vector<uint8_t>& payload,
                                          std::string* error) {
  if (begun_) {
    *error = "duplicate DIGEST_REPLY";
    return false;
  }
  if (payload.size() !=
      (static_cast<size_t>(plan_.shard_count) + 7) / 8) {
    *error = "malformed DIGEST_REPLY";
    return false;
  }
  std::vector<uint8_t> differs;
  if (!DecodeDiffBitmap(payload, static_cast<size_t>(plan_.shard_count),
                        &differs)) {
    *error = "malformed DIGEST_REPLY bitmap";
    return false;
  }
  std::vector<uint32_t> ids;
  for (size_t k = 0; k < differs.size(); ++k) {
    if (differs[k] != 0) ids.push_back(static_cast<uint32_t>(k));
  }
  identical_ = plan_.shard_count - static_cast<int>(ids.size());
  if (config_.exact_d >= 0.0) {
    // exact_d is documented as a valid per-shard upper bound.
    initial_d_ = std::min(std::max(config_.exact_d, 1.0), kMaxSubEstimate);
    ready_ = true;
  } else if (ids.size() <= kEstimateSkipShards) {
    // Few enough survivors that a sketch costs more than it saves: start
    // from a small default bound and let the retry ladder escalate.
    initial_d_ = kSkipInitialD;
    ready_ = true;
  }
  // Otherwise stay unready: the owning engine sees NeedsEstimate(), runs
  // the global estimate exchange, and SetTotalEstimate unblocks Flush.
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements_->data(), elements_->size(), plan_, ids, &parts);
  subs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto sub = std::make_unique<Sub>();
    sub->shard = ids[i];
    sub->elements = std::move(parts[i]);
    subs_.push_back(std::move(sub));
  }
  begun_ = true;
  return true;
}

void ShardedCoordinator::SetTotalEstimate(double d_hat) {
  d_hat_total_ = d_hat;
  // Mean apportioned share plus a one-sigma Poisson cushion; the retry
  // ladder covers shards whose slice clusters beyond it.
  const double mean =
      d_hat / static_cast<double>(std::max<size_t>(1, subs_.size()));
  initial_d_ = std::ceil(mean + std::sqrt(mean) + 1.0);
  initial_d_ = std::min(std::max(initial_d_, 1.0), kMaxSubEstimate);
  ready_ = true;
}

ShardedCoordinator::Sub* ShardedCoordinator::FindSub(uint32_t shard) {
  auto it = std::lower_bound(
      subs_.begin(), subs_.end(), shard,
      [](const std::unique_ptr<Sub>& s, uint32_t id) { return s->shard < id; });
  if (it == subs_.end() || (*it)->shard != shard) return nullptr;
  return it->get();
}

bool ShardedCoordinator::HandleSubFrame(SubFrame frame, std::string* error) {
  if (!begun_) {
    *error = "sub-session record before DIGEST_REPLY";
    return false;
  }
  Sub* sub = FindSub(frame.shard);
  if (sub == nullptr) {
    *error = ShardError("sub-session record for unknown shard", frame.shard);
    return false;
  }
  if (sub->phase == Sub::kUnopened || sub->phase == Sub::kComplete) {
    *error = ShardError("sub-session record for inactive shard", frame.shard);
    return false;
  }
  if (sub->queued) {
    *error = ShardError("overlapping sub-session records", frame.shard);
    return false;
  }
  sub->queued = true;
  queue_.push_back(std::move(frame));
  return true;
}

void ShardedCoordinator::StartAttempt(Sub& sub) {
  SetReconciler* maker = sub.alt != nullptr ? sub.alt.get() : reconciler_.get();
  sub.engine = maker->CreateInitiator(sub.elements, sub.d_attempt,
                                      plan_.SubSeed(sub.shard));
  if (sub.engine == nullptr) {
    const std::string& name =
        sub.alt != nullptr ? sub.scheme_name : config_.scheme_name;
    sub.error = "scheme '" + name + "' has no wire protocol";
    return;
  }
  sub.engine->NextRequestInto(&sub.raw);
  sub.StageRequest();
  sub.phase = Sub::kAwaitScheme;
}

// Exhausted retry ladder: switch the shard to the next fallback scheme
// (fresh retry budget, current bound) instead of failing the session.
bool ShardedCoordinator::TryDegrade(Sub& sub) {
  if (sub.attempt >= kMaxAttemptCounter) return false;
  const SchemeRegistry& reg =
      registry_ != nullptr ? *registry_ : SchemeRegistry::Instance();
  const std::string name =
      FallbackSchemeAt(config_.scheme_name, sub.degrade_level + 1, reg);
  if (name.empty()) return false;
  SchemeOptions options = config_.options;
  options.pbs.decode_threads = 1;
  auto alt = reg.Create(name, options);
  if (alt == nullptr) return false;
  if (sub.degrade_level == 0) {
    degraded_.fetch_add(1, std::memory_order_relaxed);
  }
  ++sub.degrade_level;
  sub.alt = std::move(alt);
  sub.scheme_name = name;
  sub.scheme_wire_id = wire::SchemeWireId(name);
  ++sub.attempt;
  sub.ladder_start = sub.attempt;  // Fresh retry budget under the fallback.
  StartAttempt(sub);
  return true;
}

void ShardedCoordinator::Open(Sub& sub) {
  if (sub.attempt == 0) {
    sub.attempt = 1;
    sub.ladder_start = 1;
    sub.d_attempt = initial_d_;
  } else {
    // Resumed shard: the new connection needs a new attempt (the
    // responder rebuilds its engine), continuing at the carried bound.
    ++sub.attempt;
    sub.ladder_start = sub.attempt;
  }
  StartAttempt(sub);
}

void ShardedCoordinator::Process(Sub& sub, const SubFrame& frame) {
  switch (sub.phase) {
    case Sub::kAwaitScheme: {
      if (frame.inner_type != static_cast<uint8_t>(FrameType::kSchemeReply)) {
        sub.error = ShardError("unexpected sub-session reply", sub.shard);
        return;
      }
      if (!sub.engine->HandleReply(frame.payload)) {
        sub.error = ShardError("malformed sub-session reply", sub.shard);
        return;
      }
      if (!sub.engine->done()) {
        // Later rounds of the same attempt keep the prefix: the record
        // format stays uniform and the responder re-checks consistency.
        sub.engine->NextRequestInto(&sub.raw);
        sub.StageRequest();
        return;
      }
      ReconcileOutcome attempt_outcome = sub.engine->TakeOutcome();
      sub.engine.reset();
      sub.acc_data_bytes += attempt_outcome.data_bytes;
      sub.acc_rounds += attempt_outcome.rounds;
      sub.acc_encode += attempt_outcome.encode_seconds;
      sub.acc_decode += attempt_outcome.decode_seconds;
      if (!attempt_outcome.success) {
        if (sub.attempt - sub.ladder_start + 1 < kMaxSubAttempts &&
            sub.d_attempt < kMaxSubEstimate &&
            sub.attempt < kMaxAttemptCounter) {
          // Escalate the bound and retry from scratch. Every scheme's
          // responder sizes itself from the request prefix, so the remote
          // engine follows without renegotiation.
          ++sub.attempt;
          sub.d_attempt =
              std::min(sub.d_attempt * kSubRetryGrowth, kMaxSubEstimate);
          StartAttempt(sub);
          return;
        }
        // Ladder exhausted: degrade to a fallback scheme for this shard
        // instead of failing the whole session.
        if (TryDegrade(sub)) return;
      }
      sub.outcome = std::move(attempt_outcome);
      sub.outcome.data_bytes = sub.acc_data_bytes;
      sub.outcome.rounds = sub.acc_rounds;
      sub.outcome.encode_seconds = sub.acc_encode;
      sub.outcome.decode_seconds = sub.acc_decode;
      sub.has_outcome = true;
      BitWriter w;
      w.WriteBits(sub.outcome.success ? 1 : 0, 8);
      w.WriteBits(static_cast<uint64_t>(sub.outcome.rounds), 32);
      w.WriteBits(static_cast<uint64_t>(sub.outcome.difference.size()), 64);
      sub.scratch = w.TakeBytes();
      sub.pending_type = static_cast<uint8_t>(FrameType::kDone);
      sub.phase = Sub::kAwaitDoneAck;
      return;
    }
    case Sub::kAwaitDoneAck: {
      if (frame.inner_type != static_cast<uint8_t>(FrameType::kDone)) {
        sub.error = ShardError("unexpected sub-session done ack", sub.shard);
        return;
      }
      sub.phase = Sub::kComplete;
      sub.elements = {};
      return;
    }
    default:
      sub.error =
          ShardError("sub-session record for inactive shard", sub.shard);
  }
}

bool ShardedCoordinator::Flush(const SubEmit& emit, std::string* error) {
  if (!queue_.empty()) {
    const size_t n = queue_.size();
    if (pool_ == nullptr && n > 1) {
      const int threads =
          ParallelFor::ResolveThreads(config_.options.pbs.decode_threads);
      if (threads > 1) pool_ = std::make_unique<ParallelFor>(threads);
    }
    // Every queued record targets a distinct shard (enforced at enqueue),
    // so the processing loop is embarrassingly parallel; emissions below
    // stay in arrival order regardless of the thread count.
    if (pool_ != nullptr && n > 1) {
      pool_->Run(n, [this](size_t i, int /*worker*/) {
        Process(*FindSub(queue_[i].shard), queue_[i]);
      });
    } else {
      for (size_t i = 0; i < n; ++i) {
        Process(*FindSub(queue_[i].shard), queue_[i]);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      Sub* sub = FindSub(queue_[i].shard);
      sub->queued = false;
      if (!sub->error.empty()) {
        *error = sub->error;
        queue_.clear();
        return false;
      }
      if (sub->phase == Sub::kComplete) {
        ++completed_;
        --open_;
      }
      if (sub->pending_type != 0) {
        emit(sub->shard, sub->pending_type, sub->scratch.data(),
             sub->scratch.size());
        sub->pending_type = 0;
      }
    }
    queue_.clear();
  }
  while (begun_ && ready_ && open_ < static_cast<size_t>(pipeline_) &&
         next_open_ < subs_.size()) {
    Sub& sub = *subs_[next_open_++];
    Open(sub);
    if (!sub.error.empty()) {
      *error = sub.error;
      return false;
    }
    emit(sub.shard, sub.pending_type, sub.scratch.data(), sub.scratch.size());
    sub.pending_type = 0;
    ++open_;
  }
  return true;
}

double ShardedCoordinator::total_d_hat() const {
  if (d_hat_total_ >= 0.0) return d_hat_total_;
  if (config_.exact_d >= 0.0) return config_.exact_d;
  // Estimation was skipped: report the negotiated bound the sub-sessions
  // actually settled at.
  double sum = 0.0;
  for (const auto& sub : subs_) sum += sub->d_attempt;
  return sum;
}

std::shared_ptr<ShardResumeState> ShardedCoordinator::MakeResumeState(
    uint64_t remote_root) const {
  // Resumable only once the shard plan was agreed and the sub-sessions
  // could open (an estimate-phase failure restarts fresh — nothing is
  // banked yet anyway).
  if (!begun_ || !ready_) return nullptr;
  auto token = std::make_shared<ShardResumeState>();
  token->shard_count = plan_.shard_count;
  token->remote_root = remote_root;
  token->initial_d = initial_d_;
  token->identical_shards = identical_;
  token->degraded = degraded_.load(std::memory_order_relaxed);
  token->settled_difference = carried_difference_;
  token->settled_data_bytes = carried_data_bytes_;
  token->settled_rounds = carried_rounds_;
  token->settled_encode_seconds = carried_encode_;
  token->settled_decode_seconds = carried_decode_;
  token->settled_count = carried_settled_;
  int retries = carried_retries_;
  for (const auto& subp : subs_) {
    const Sub& sub = *subp;
    if (sub.attempt > sub.ladder_start) {
      retries += sub.attempt - sub.ladder_start;
    }
    if (sub.has_outcome && sub.outcome.success) {
      // Settled this connection (possibly still awaiting the sub DONE
      // ack — the responder already served the data; don't re-open).
      token->settled_difference.insert(token->settled_difference.end(),
                                       sub.outcome.difference.begin(),
                                       sub.outcome.difference.end());
      token->settled_data_bytes += sub.outcome.data_bytes;
      token->settled_rounds =
          std::max(token->settled_rounds, sub.outcome.rounds);
      token->settled_encode_seconds += sub.outcome.encode_seconds;
      token->settled_decode_seconds += sub.outcome.decode_seconds;
      ++token->settled_count;
      continue;
    }
    ShardResumeState::Pending p;
    p.shard = sub.shard;
    p.attempt = sub.attempt;  // 0 for never-opened shards.
    p.degrade_level = sub.degrade_level;
    p.d_attempt = sub.attempt == 0 ? initial_d_ : sub.d_attempt;
    token->pending.push_back(p);
  }
  token->retries = retries;
  return token;
}

ReconcileOutcome ShardedCoordinator::TakeOutcome() {
  ReconcileOutcome out;
  out.success = true;
  out.rounds = carried_rounds_;
  size_t total_diff = carried_difference_.size();
  int retries = carried_retries_;
  for (const auto& sub : subs_) {
    if (sub->has_outcome) total_diff += sub->outcome.difference.size();
    retries += sub->attempt > sub->ladder_start
                   ? sub->attempt - sub->ladder_start
                   : 0;
  }
  out.difference.reserve(total_diff);
  out.difference.insert(out.difference.end(), carried_difference_.begin(),
                        carried_difference_.end());
  out.data_bytes += carried_data_bytes_;
  out.encode_seconds += carried_encode_;
  out.decode_seconds += carried_decode_;
  for (auto& subp : subs_) {
    Sub& sub = *subp;
    if (!sub.has_outcome) {
      out.success = false;
      continue;
    }
    out.success = out.success && sub.outcome.success;
    out.rounds = std::max(out.rounds, sub.outcome.rounds);
    out.difference.insert(out.difference.end(),
                          sub.outcome.difference.begin(),
                          sub.outcome.difference.end());
    out.data_bytes += sub.outcome.data_bytes;
    out.estimator_bytes += sub.outcome.estimator_bytes;
    out.encode_seconds += sub.outcome.encode_seconds;
    out.decode_seconds += sub.outcome.decode_seconds;
  }
  const size_t differing = subs_.size() + static_cast<size_t>(carried_settled_);
  char summary[112];
  std::snprintf(summary, sizeof(summary),
                "shards=%d identical=%d differing=%zu pipeline=%d retries=%d",
                plan_.shard_count, identical_, differing, pipeline_, retries);
  out.params_summary = summary;
  // Appended only when they happened, so clean sessions keep the classic
  // summary (and the pr9 byte-exact bench gate) untouched.
  const int degraded = degraded_.load(std::memory_order_relaxed);
  if (degraded > 0) {
    out.params_summary += " degraded=" + std::to_string(degraded);
  }
  if (resumed_) {
    out.params_summary += " resumed=" + std::to_string(carried_settled_);
  }
  return out;
}

// ---------------------------------------------------------------------------
// ShardedResponderMux (responder side)
// ---------------------------------------------------------------------------

struct ShardedResponderMux::Sub {
  uint32_t shard = 0;
  // Retained until the inner done: a retried attempt rebuilds the
  // responder engine from the same shard slice.
  std::vector<uint64_t> elements;
  std::unique_ptr<ReconcileResponder> engine;
  uint8_t attempt = 0;
  // Graceful degradation: the fallback reconciler announced by the
  // initiator's override prefix (0 = still on the primary scheme).
  std::unique_ptr<SetReconciler> alt;
  uint8_t alt_wire_id = 0;
  bool complete = false;
  bool queued = false;
  uint8_t pending_type = 0;
  std::vector<uint8_t> scratch;
  std::string error;
};

ShardedResponderMux::ShardedResponderMux(
    const SessionConfig& config, SessionEngine::SharedElements elements,
    const SchemeRegistry* registry, int accepted_shards,
    std::shared_ptr<const StoreSnapshot> snapshot)
    : config_(config), elements_(std::move(elements)), registry_(registry) {
  plan_ = ShardPlan::Derive(accepted_shards, config_.seed);
  SchemeOptions options = config_.options;
  options.pbs.decode_threads = 1;
  const SchemeRegistry& reg =
      registry != nullptr ? *registry : SchemeRegistry::Instance();
  reconciler_ = reg.Create(config_.scheme_name, options);
  if (reconciler_ == nullptr) {
    error_ = "unknown scheme '" + config_.scheme_name + "'";
    return;
  }
  // A store snapshot that maintained checksums for exactly this layout
  // hands us the leaves for free (core/element_store.h).
  if (snapshot != nullptr && snapshot->shard_checksums != nullptr &&
      snapshot->shard_checksums->shard_count == accepted_shards &&
      snapshot->shard_checksums->seed == config_.seed) {
    leaves_ = snapshot->shard_checksums->leaves;
    leaves_valid_ = true;
  }
}

ShardedResponderMux::~ShardedResponderMux() = default;

void ShardedResponderMux::EnsureLeaves() {
  if (!leaves_valid_) {
    leaves_ = ComputeShardLeaves(plan_, elements_->data(), elements_->size());
    leaves_valid_ = true;
  }
}

uint64_t ShardedResponderMux::root() {
  EnsureLeaves();
  return MerkleRootOf(leaves_);
}

bool ShardedResponderMux::HandleDigestTree(const std::vector<uint8_t>& payload,
                                           std::vector<uint8_t>* reply,
                                           std::string* error) {
  if (partitioned_) {
    *error = "duplicate DIGEST_TREE";
    return false;
  }
  std::vector<uint64_t> remote;
  if (!DecodeDigestLeaves(payload, static_cast<size_t>(plan_.shard_count),
                          &remote)) {
    *error = "malformed DIGEST_TREE payload";
    return false;
  }
  EnsureLeaves();
  std::vector<uint8_t> differs(static_cast<size_t>(plan_.shard_count), 0);
  std::vector<uint32_t> ids;
  for (size_t k = 0; k < differs.size(); ++k) {
    if (remote[k] != leaves_[k]) {
      differs[k] = 1;
      ids.push_back(static_cast<uint32_t>(k));
    }
  }
  *reply = EncodeDiffBitmap(differs);
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements_->data(), elements_->size(), plan_, ids, &parts);
  subs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto sub = std::make_unique<Sub>();
    sub->shard = ids[i];
    sub->elements = std::move(parts[i]);
    subs_.push_back(std::move(sub));
  }
  partitioned_ = true;
  return true;
}

bool ShardedResponderMux::BeginResume(
    const std::vector<std::pair<uint32_t, uint8_t>>& entries,
    std::string* error) {
  if (partitioned_) {
    *error = "duplicate RESUME";
    return false;
  }
  std::vector<uint32_t> ids;
  ids.reserve(entries.size());
  for (const auto& e : entries) {
    if (e.first >= static_cast<uint32_t>(plan_.shard_count)) {
      *error = ShardError("resume names an unknown shard", e.first);
      return false;
    }
    if (!ids.empty() && e.first <= ids.back()) {
      *error = "resume shard list not ascending";
      return false;
    }
    ids.push_back(e.first);
  }
  std::vector<std::vector<uint64_t>> parts;
  PartitionSelected(elements_->data(), elements_->size(), plan_, ids, &parts);
  subs_.reserve(ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto sub = std::make_unique<Sub>();
    sub->shard = ids[i];
    sub->elements = std::move(parts[i]);
    // The initiator reopens at the carried attempt + 1, which the
    // in-order check in Process then accepts.
    sub->attempt = entries[i].second;
    subs_.push_back(std::move(sub));
  }
  partitioned_ = true;
  return true;
}

ShardedResponderMux::Sub* ShardedResponderMux::FindSub(uint32_t shard) {
  auto it = std::lower_bound(
      subs_.begin(), subs_.end(), shard,
      [](const std::unique_ptr<Sub>& s, uint32_t id) { return s->shard < id; });
  if (it == subs_.end() || (*it)->shard != shard) return nullptr;
  return it->get();
}

bool ShardedResponderMux::HandleSubFrame(SubFrame frame, std::string* error) {
  if (!partitioned_) {
    *error = "sub-session record before DIGEST_TREE";
    return false;
  }
  Sub* sub = FindSub(frame.shard);
  if (sub == nullptr) {
    *error = ShardError("sub-session record for unknown shard", frame.shard);
    return false;
  }
  if (sub->complete) {
    *error = ShardError("sub-session record for settled shard", frame.shard);
    return false;
  }
  if (sub->queued) {
    *error = ShardError("overlapping sub-session records", frame.shard);
    return false;
  }
  sub->queued = true;
  queue_.push_back(std::move(frame));
  return true;
}

void ShardedResponderMux::Process(Sub& sub, const SubFrame& frame) {
  switch (static_cast<FrameType>(frame.inner_type)) {
    case FrameType::kSchemeRequest: {
      if (frame.payload.empty()) {
        sub.error = ShardError("malformed sub-session request", sub.shard);
        return;
      }
      // Override prefix (graceful degradation): attempt byte's top bit
      // set means one scheme-id byte follows before the bound.
      const uint8_t attempt_byte = frame.payload[0];
      const bool degraded = (attempt_byte & kSubSchemeOverride) != 0;
      const uint8_t attempt =
          static_cast<uint8_t>(attempt_byte & ~kSubSchemeOverride);
      const size_t prefix =
          degraded ? kSubRequestPrefix + 1 : kSubRequestPrefix;
      if (frame.payload.size() < prefix) {
        sub.error = ShardError("malformed sub-session request", sub.shard);
        return;
      }
      const size_t d_off = prefix - 8;
      uint64_t bits = 0;
      for (int b = 0; b < 8; ++b) {
        bits |= static_cast<uint64_t>(frame.payload[d_off + b]) << (8 * b);
      }
      const double d = BitsToDouble(bits);
      if (!std::isfinite(d) || d < 0.0 || d > kMaxSubEstimate) {
        sub.error = ShardError("sub-session bound out of range", sub.shard);
        return;
      }
      if (sub.engine == nullptr || attempt != sub.attempt) {
        // First round of a (possibly retried) attempt: build a fresh
        // responder engine sized from the carried bound. Attempts only
        // ever advance by one.
        if (attempt != sub.attempt + 1) {
          sub.error =
              ShardError("sub-session attempt out of order", sub.shard);
          return;
        }
        sub.attempt = attempt;
        SetReconciler* maker = reconciler_.get();
        if (degraded) {
          const uint8_t wire_id = frame.payload[1];
          if (sub.alt == nullptr || sub.alt_wire_id != wire_id) {
            const std::string name = wire::SchemeNameFromWireId(wire_id);
            const SchemeRegistry& reg = registry_ != nullptr
                                            ? *registry_
                                            : SchemeRegistry::Instance();
            std::unique_ptr<SetReconciler> alt;
            if (!name.empty() && reg.Contains(name)) {
              SchemeOptions options = config_.options;
              options.pbs.decode_threads = 1;
              alt = reg.Create(name, options);
            }
            if (alt == nullptr) {
              sub.error = ShardError(
                  "sub-session names an unavailable fallback scheme",
                  sub.shard);
              return;
            }
            if (sub.alt_wire_id == 0) {
              degraded_.fetch_add(1, std::memory_order_relaxed);
            }
            sub.alt = std::move(alt);
            sub.alt_wire_id = wire_id;
          }
          maker = sub.alt.get();
        }
        sub.engine = maker->CreateResponder(sub.elements, d,
                                            plan_.SubSeed(sub.shard));
        if (sub.engine == nullptr) {
          sub.error =
              "scheme '" + config_.scheme_name + "' has no wire protocol";
          return;
        }
      }
      const std::vector<uint8_t> inner(frame.payload.begin() + prefix,
                                       frame.payload.end());
      if (!sub.engine->HandleRequest(inner, &sub.scratch)) {
        sub.error = ShardError("malformed sub-session request", sub.shard);
        return;
      }
      sub.pending_type = static_cast<uint8_t>(FrameType::kSchemeReply);
      return;
    }
    case FrameType::kDone: {
      // 13-byte summary: u8 success, u32 rounds, u64 recovered diff size.
      if (frame.payload.size() < 13) {
        sub.error = ShardError("malformed sub-session done", sub.shard);
        return;
      }
      sub.complete = true;
      sub.engine.reset();
      sub.elements = {};
      sub.scratch.clear();
      sub.pending_type = static_cast<uint8_t>(FrameType::kDone);
      return;
    }
    default:
      sub.error = ShardError("unexpected sub-session record type", sub.shard);
  }
}

bool ShardedResponderMux::Flush(const SubEmit& emit, std::string* error) {
  if (queue_.empty()) return true;
  const size_t n = queue_.size();
  if (pool_ == nullptr && n > 1) {
    const int threads =
        ParallelFor::ResolveThreads(config_.options.pbs.decode_threads);
    if (threads > 1) pool_ = std::make_unique<ParallelFor>(threads);
  }
  if (pool_ != nullptr && n > 1) {
    pool_->Run(n, [this](size_t i, int /*worker*/) {
      Process(*FindSub(queue_[i].shard), queue_[i]);
    });
  } else {
    for (size_t i = 0; i < n; ++i) {
      Process(*FindSub(queue_[i].shard), queue_[i]);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Sub* sub = FindSub(queue_[i].shard);
    sub->queued = false;
    if (!sub->error.empty()) {
      *error = sub->error;
      queue_.clear();
      return false;
    }
    if (sub->pending_type != 0) {
      emit(sub->shard, sub->pending_type, sub->scratch.data(),
           sub->scratch.size());
      sub->pending_type = 0;
    }
  }
  queue_.clear();
  return true;
}

}  // namespace pbs::sync
