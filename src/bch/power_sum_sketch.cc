#include "pbs/bch/power_sum_sketch.h"

#include <cassert>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/gf/roots.h"

namespace pbs {

PowerSumSketch::PowerSumSketch(const GF2m& field, int t)
    : field_(field), t_(t), odd_(t, 0) {
  assert(t >= 1);
}

void PowerSumSketch::Toggle(uint64_t element) {
  assert(element >= 1 && element <= field_.order());
  // Accumulate x^1, x^3, x^5, ... via repeated multiplication by x^2.
  const uint64_t x2 = field_.Sqr(element);
  uint64_t power = element;
  for (int i = 0; i < t_; ++i) {
    odd_[i] ^= power;
    if (i + 1 < t_) power = field_.Mul(power, x2);
  }
}

void PowerSumSketch::Merge(const PowerSumSketch& other) {
  assert(t_ == other.t_ && field_ == other.field_);
  for (int i = 0; i < t_; ++i) odd_[i] ^= other.odd_[i];
}

bool PowerSumSketch::IsZero() const {
  for (uint64_t s : odd_) {
    if (s != 0) return false;
  }
  return true;
}

std::optional<std::vector<uint64_t>> PowerSumSketch::Decode(
    bool verify, uint64_t seed) const {
  if (IsZero()) return std::vector<uint64_t>{};

  // Expand to the full syndrome sequence S_1..S_2t using S_2k = S_k^2.
  std::vector<uint64_t> syndromes(2 * t_, 0);
  for (int k = 1; k <= 2 * t_; ++k) {
    if (k % 2 == 1) {
      syndromes[k - 1] = odd_[(k - 1) / 2];
    } else {
      syndromes[k - 1] = field_.Sqr(syndromes[k / 2 - 1]);
    }
  }

  BmResult bm = BerlekampMassey(field_, syndromes);
  if (!bm.IsConsistent() || bm.linear_complexity > t_) return std::nullopt;

  // Roots of Lambda are the inverses of the sketched elements.
  auto roots = FindDistinctNonzeroRoots(bm.lambda, seed);
  if (!roots.has_value()) return std::nullopt;
  std::vector<uint64_t> elements;
  elements.reserve(roots->size());
  for (uint64_t r : *roots) elements.push_back(field_.Inv(r));

  if (verify) {
    PowerSumSketch check(field_, t_);
    for (uint64_t e : elements) check.Toggle(e);
    if (check.odd_ != odd_) return std::nullopt;
  }
  return elements;
}

void PowerSumSketch::Serialize(BitWriter* writer) const {
  for (uint64_t s : odd_) writer->WriteBits(s, field_.m());
}

PowerSumSketch PowerSumSketch::Deserialize(BitReader* reader,
                                           const GF2m& field, int t) {
  PowerSumSketch sketch(field, t);
  for (int i = 0; i < t; ++i) sketch.odd_[i] = reader->ReadBits(field.m());
  return sketch;
}

}  // namespace pbs
