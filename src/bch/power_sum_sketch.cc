#include "pbs/bch/power_sum_sketch.h"

#include <algorithm>
#include <cassert>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/gf/roots.h"

namespace pbs {

PowerSumSketch::PowerSumSketch(const GF2m& field, int t)
    : field_(field), t_(t), odd_(t, 0) {
  assert(t >= 1);
}

void PowerSumSketch::ToggleInto(const GF2m& field, uint64_t element,
                                Span<uint64_t> odd) {
  // One log-domain walk over x^1, x^3, x^5, ... (table-free fields fall
  // back to repeated carry-less multiplication by x^2 internally).
  field.OddPowerAccum(element, odd);
}

void PowerSumSketch::Toggle(uint64_t element) {
  assert(element >= 1 && element <= field_.order());
  ToggleInto(field_, element, odd_);
}

void PowerSumSketch::Merge(const PowerSumSketch& other) {
  assert(t_ == other.t_ && field_ == other.field_);
  for (int i = 0; i < t_; ++i) odd_[i] ^= other.odd_[i];
}

void PowerSumSketch::MergeOdd(Span<const uint64_t> odd_syndromes) {
  assert(static_cast<int>(odd_syndromes.size()) == t_);
  for (int i = 0; i < t_; ++i) odd_[i] ^= odd_syndromes[i];
}

void PowerSumSketch::Reset() {
  std::fill(odd_.begin(), odd_.end(), 0);
}

bool PowerSumSketch::IsZero() const {
  for (uint64_t s : odd_) {
    if (s != 0) return false;
  }
  return true;
}

bool PowerSumSketch::DecodeInto(std::vector<uint64_t>* out, Workspace& ws,
                                bool verify, uint64_t seed) const {
  out->clear();
  if (IsZero()) return true;

  // Expand to the full syndrome sequence S_1..S_2t using S_2k = S_k^2.
  auto syndromes = ws.Take<uint64_t>(2 * t_);
  for (int k = 1; k <= 2 * t_; ++k) {
    if (k % 2 == 1) {
      syndromes[k - 1] = odd_[(k - 1) / 2];
    } else {
      syndromes[k - 1] = field_.Sqr(syndromes[k / 2 - 1]);
    }
  }

  auto lambda = ws.Take<uint64_t>(2 * t_ + 1);
  const BmWsResult bm =
      BerlekampMasseyWs(field_, syndromes.cspan(), ws, lambda.span());
  if (!bm.IsConsistent() || bm.linear_complexity > t_) return false;

  // Roots of Lambda are the inverses of the sketched elements. A nonzero
  // sketch never yields a degree-0 locator (L = 0 would mean an all-zero
  // syndrome sequence), so bm.degree >= 1 here.
  auto roots = ws.Take<uint64_t>(bm.degree);
  const int count = FindDistinctNonzeroRootsWs(
      field_, lambda.cspan().first(bm.degree + 1), ws, roots.span(), seed);
  if (count < 0) return false;
  for (int i = 0; i < count; ++i) out->push_back(field_.Inv(roots[i]));

  if (verify) {
    auto check = ws.Take<uint64_t>(t_);
    for (uint64_t e : *out) ToggleInto(field_, e, check.span());
    for (int i = 0; i < t_; ++i) {
      if (check[i] != odd_[i]) {
        out->clear();
        return false;
      }
    }
  }
  return true;
}

void PowerSumSketch::DecodeBatchInto(Span<const PowerSumSketch* const> sketches,
                                     Span<std::vector<uint64_t>* const> outs,
                                     Span<uint8_t> ok, Workspace& ws,
                                     bool verify, uint64_t seed) {
  const size_t n = sketches.size();
  assert(outs.size() == n && ok.size() == n);
  if (n == 0) return;
  const GF2m& field = sketches[0]->field_;
  const int t = sketches[0]->t_;

  if (field.order() >= kChienThreshold || !field.has_tables()) {
    // Large (PinSketch) fields root-find by trace splitting, which has no
    // batched form; decode serially.
    for (size_t i = 0; i < n; ++i) {
      ok[i] = sketches[i]->DecodeInto(outs[i], ws, verify, seed) ? 1 : 0;
    }
    return;
  }

  // Pass 1: per-sketch syndrome expansion + Berlekamp-Massey. Every locator
  // that reaches root finding is staged into one flat coefficient/root
  // arena so a single cross-group Chien search can walk them in lock-step.
  const size_t stride = static_cast<size_t>(2 * t) + 1;
  auto syndromes = ws.Take<uint64_t>(2 * t);
  auto lambdas = ws.Take<uint64_t>(n * stride);
  auto roots = ws.Take<uint64_t>(n * static_cast<size_t>(t));
  auto deg = ws.Take<int>(n);            // -1: settled (ok already final).
  auto polys = ws.Take<ChienBatchPoly>(n);
  auto sketch_of_poly = ws.Take<size_t>(n);
  size_t n_polys = 0;

  for (size_t i = 0; i < n; ++i) {
    const PowerSumSketch& s = *sketches[i];
    assert(s.field_ == field && s.t_ == t);
    outs[i]->clear();
    ok[i] = 0;
    deg[i] = -1;
    if (s.IsZero()) {
      ok[i] = 1;
      continue;
    }
    for (int k = 1; k <= 2 * t; ++k) {
      if (k % 2 == 1) {
        syndromes[k - 1] = s.odd_[(k - 1) / 2];
      } else {
        syndromes[k - 1] = field.Sqr(syndromes[k / 2 - 1]);
      }
    }
    Span<uint64_t> lambda(lambdas.data() + i * stride, stride);
    const BmWsResult bm =
        BerlekampMasseyWs(field, syndromes.cspan(), ws, lambda);
    if (!bm.IsConsistent() || bm.linear_complexity > t) continue;
    // Mirrors FindDistinctNonzeroRootsWs's Chien-path pre-checks exactly.
    const Span<const uint64_t> coeffs =
        Span<const uint64_t>(lambda.data(), lambda.size())
            .first(static_cast<size_t>(bm.degree) + 1);
    const int d = PolyDegree(coeffs);
    if (d < 0) continue;
    if (d == 0) {
      deg[i] = 0;  // Zero roots to find; still runs the push/verify tail.
      continue;
    }
    if (coeffs[0] == 0) continue;  // Root at zero: miscorrected decode.
    deg[i] = d;
    sketch_of_poly[n_polys] = i;
    polys[n_polys] = ChienBatchPoly{
        coeffs.first(static_cast<size_t>(d) + 1),
        Span<uint64_t>(roots.data() + i * static_cast<size_t>(t),
                       static_cast<size_t>(d)),
        0};
    ++n_polys;
  }

  ChienSearchBatch(field, Span<ChienBatchPoly>(polys.data(), n_polys), ws);

  for (size_t p = 0; p < n_polys; ++p) {
    const size_t i = sketch_of_poly[p];
    if (polys[p].count != deg[i]) deg[i] = -1;  // Not deg distinct roots.
  }

  // Pass 2: invert roots into the output sets and (optionally) verify, in
  // the same order DecodeInto would have.
  for (size_t i = 0; i < n; ++i) {
    if (deg[i] < 0) continue;
    const PowerSumSketch& s = *sketches[i];
    const uint64_t* r = roots.data() + i * static_cast<size_t>(t);
    for (int j = 0; j < deg[i]; ++j) outs[i]->push_back(field.Inv(r[j]));
    if (verify) {
      auto check = ws.Take<uint64_t>(t);
      for (uint64_t e : *outs[i]) ToggleInto(field, e, check.span());
      bool match = true;
      for (int k = 0; k < t; ++k) {
        if (check[k] != s.odd_[k]) {
          match = false;
          break;
        }
      }
      if (!match) {
        outs[i]->clear();
        continue;
      }
    }
    ok[i] = 1;
  }
}

std::optional<std::vector<uint64_t>> PowerSumSketch::Decode(
    bool verify, uint64_t seed) const {
  Workspace ws;
  std::vector<uint64_t> elements;
  if (!DecodeInto(&elements, ws, verify, seed)) return std::nullopt;
  return elements;
}

void PowerSumSketch::Serialize(BitWriter* writer) const {
  for (uint64_t s : odd_) writer->WriteBits(s, field_.m());
}

PowerSumSketch PowerSumSketch::Deserialize(BitReader* reader,
                                           const GF2m& field, int t) {
  PowerSumSketch sketch(field, t);
  sketch.ReadFrom(reader);
  return sketch;
}

void PowerSumSketch::ReadFrom(BitReader* reader) {
  for (int i = 0; i < t_; ++i) odd_[i] = reader->ReadBits(field_.m());
}

}  // namespace pbs
