#include "pbs/bch/power_sum_sketch.h"

#include <algorithm>
#include <cassert>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/gf/roots.h"

namespace pbs {

PowerSumSketch::PowerSumSketch(const GF2m& field, int t)
    : field_(field), t_(t), odd_(t, 0) {
  assert(t >= 1);
}

void PowerSumSketch::ToggleInto(const GF2m& field, uint64_t element,
                                Span<uint64_t> odd) {
  // One log-domain walk over x^1, x^3, x^5, ... (table-free fields fall
  // back to repeated carry-less multiplication by x^2 internally).
  field.OddPowerAccum(element, odd);
}

void PowerSumSketch::Toggle(uint64_t element) {
  assert(element >= 1 && element <= field_.order());
  ToggleInto(field_, element, odd_);
}

void PowerSumSketch::Merge(const PowerSumSketch& other) {
  assert(t_ == other.t_ && field_ == other.field_);
  for (int i = 0; i < t_; ++i) odd_[i] ^= other.odd_[i];
}

void PowerSumSketch::MergeOdd(Span<const uint64_t> odd_syndromes) {
  assert(static_cast<int>(odd_syndromes.size()) == t_);
  for (int i = 0; i < t_; ++i) odd_[i] ^= odd_syndromes[i];
}

void PowerSumSketch::Reset() {
  std::fill(odd_.begin(), odd_.end(), 0);
}

bool PowerSumSketch::IsZero() const {
  for (uint64_t s : odd_) {
    if (s != 0) return false;
  }
  return true;
}

bool PowerSumSketch::DecodeInto(std::vector<uint64_t>* out, Workspace& ws,
                                bool verify, uint64_t seed) const {
  out->clear();
  if (IsZero()) return true;

  // Expand to the full syndrome sequence S_1..S_2t using S_2k = S_k^2.
  auto syndromes = ws.Take<uint64_t>(2 * t_);
  for (int k = 1; k <= 2 * t_; ++k) {
    if (k % 2 == 1) {
      syndromes[k - 1] = odd_[(k - 1) / 2];
    } else {
      syndromes[k - 1] = field_.Sqr(syndromes[k / 2 - 1]);
    }
  }

  auto lambda = ws.Take<uint64_t>(2 * t_ + 1);
  const BmWsResult bm =
      BerlekampMasseyWs(field_, syndromes.cspan(), ws, lambda.span());
  if (!bm.IsConsistent() || bm.linear_complexity > t_) return false;

  // Roots of Lambda are the inverses of the sketched elements. A nonzero
  // sketch never yields a degree-0 locator (L = 0 would mean an all-zero
  // syndrome sequence), so bm.degree >= 1 here.
  auto roots = ws.Take<uint64_t>(bm.degree);
  const int count = FindDistinctNonzeroRootsWs(
      field_, lambda.cspan().first(bm.degree + 1), ws, roots.span(), seed);
  if (count < 0) return false;
  for (int i = 0; i < count; ++i) out->push_back(field_.Inv(roots[i]));

  if (verify) {
    auto check = ws.Take<uint64_t>(t_);
    for (uint64_t e : *out) ToggleInto(field_, e, check.span());
    for (int i = 0; i < t_; ++i) {
      if (check[i] != odd_[i]) {
        out->clear();
        return false;
      }
    }
  }
  return true;
}

std::optional<std::vector<uint64_t>> PowerSumSketch::Decode(
    bool verify, uint64_t seed) const {
  Workspace ws;
  std::vector<uint64_t> elements;
  if (!DecodeInto(&elements, ws, verify, seed)) return std::nullopt;
  return elements;
}

void PowerSumSketch::Serialize(BitWriter* writer) const {
  for (uint64_t s : odd_) writer->WriteBits(s, field_.m());
}

PowerSumSketch PowerSumSketch::Deserialize(BitReader* reader,
                                           const GF2m& field, int t) {
  PowerSumSketch sketch(field, t);
  sketch.ReadFrom(reader);
  return sketch;
}

void PowerSumSketch::ReadFrom(BitReader* reader) {
  for (int i = 0; i < t_; ++i) odd_[i] = reader->ReadBits(field_.m());
}

}  // namespace pbs
