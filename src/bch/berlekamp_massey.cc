#include "pbs/bch/berlekamp_massey.h"

namespace pbs {

BmResult BerlekampMassey(const GF2m& field,
                         const std::vector<uint64_t>& syndromes) {
  const int n_syms = static_cast<int>(syndromes.size());
  std::vector<uint64_t> c{1};  // C(x): current connection polynomial.
  std::vector<uint64_t> b{1};  // B(x): last C before L changed.
  int l = 0;                   // Current linear complexity.
  int shift = 1;               // x^shift multiplier for B.
  uint64_t bd = 1;             // Discrepancy when B was saved.

  for (int pos = 0; pos < n_syms; ++pos) {
    // Discrepancy d = S_{pos+1} + sum_{i=1..L} C_i * S_{pos+1-i}.
    uint64_t d = syndromes[pos];
    for (int i = 1; i <= l && i <= pos; ++i) {
      if (i < static_cast<int>(c.size())) {
        d ^= field.Mul(c[i], syndromes[pos - i]);
      }
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    const uint64_t coef = field.Div(d, bd);
    if (2 * l <= pos) {
      std::vector<uint64_t> t = c;
      if (c.size() < b.size() + shift) c.resize(b.size() + shift, 0);
      for (size_t i = 0; i < b.size(); ++i) {
        c[i + shift] ^= field.Mul(coef, b[i]);
      }
      l = pos + 1 - l;
      b = std::move(t);
      bd = d;
      shift = 1;
    } else {
      if (c.size() < b.size() + shift) c.resize(b.size() + shift, 0);
      for (size_t i = 0; i < b.size(); ++i) {
        c[i + shift] ^= field.Mul(coef, b[i]);
      }
      ++shift;
    }
  }

  return BmResult{GFPoly(field, std::move(c)), l};
}

}  // namespace pbs
