#include "pbs/bch/berlekamp_massey.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

namespace pbs {

BmWsResult BerlekampMasseyWs(const GF2m& field, Span<const uint64_t> syndromes,
                             Workspace& ws, Span<uint64_t> lambda_out) {
  const int n_syms = static_cast<int>(syndromes.size());
  assert(static_cast<int>(lambda_out.size()) >= n_syms + 1);
  // C(x) lives in lambda_out; B(x) and the save-copy T in workspace
  // scratch. All sizes stay <= n_syms + 1; slots past the tracked size are
  // kept zero so the final trim and callers can read lambda_out directly.
  for (size_t i = 0; i < lambda_out.size(); ++i) lambda_out[i] = 0;
  lambda_out[0] = 1;
  size_t c_size = 1;
  auto b_buf = ws.Take<uint64_t>(n_syms + 1);  // B(x): last C before L grew.
  auto t_buf = ws.Take<uint64_t>(n_syms + 1);
  b_buf[0] = 1;
  size_t b_size = 1;
  int l = 0;        // Current linear complexity.
  int shift = 1;    // x^shift multiplier for B.
  uint64_t bd = 1;  // Discrepancy when B was saved.

  for (int pos = 0; pos < n_syms; ++pos) {
    // Discrepancy d = S_{pos+1} + sum_{i=1..L} C_i * S_{pos+1-i}, batched
    // as a reversed inner product (gf2m.h DotRev: log-domain, zero-skip).
    const int window = std::min({l, pos, static_cast<int>(c_size) - 1});
    uint64_t d = syndromes[pos];
    if (window > 0) {
      d ^= field.DotRev(
          Span<const uint64_t>(lambda_out.data() + 1, window),
          Span<const uint64_t>(syndromes.data() + pos - window, window));
    }
    if (d == 0) {
      ++shift;
      continue;
    }
    const uint64_t coef = field.Div(d, bd);
    if (2 * l <= pos) {
      std::memcpy(t_buf.data(), lambda_out.data(), c_size * sizeof(uint64_t));
      const size_t t_size = c_size;
      if (c_size < b_size + shift) c_size = b_size + shift;
      field.MulManyAccum(coef, Span<const uint64_t>(b_buf.data(), b_size),
                         Span<uint64_t>(lambda_out.data() + shift, b_size));
      l = pos + 1 - l;
      // B <- old C: swap the scratch buffers instead of copying again.
      std::swap(b_buf, t_buf);
      b_size = t_size;
      bd = d;
      shift = 1;
    } else {
      if (c_size < b_size + shift) c_size = b_size + shift;
      field.MulManyAccum(coef, Span<const uint64_t>(b_buf.data(), b_size),
                         Span<uint64_t>(lambda_out.data() + shift, b_size));
      ++shift;
    }
  }

  return BmWsResult{
      PolyDegree(lambda_out.first(c_size)), l};
}

BmResult BerlekampMassey(const GF2m& field,
                         const std::vector<uint64_t>& syndromes) {
  Workspace ws;
  std::vector<uint64_t> lambda(syndromes.size() + 1, 0);
  const BmWsResult r = BerlekampMasseyWs(field, syndromes, ws, lambda);
  return BmResult{GFPoly(field, std::move(lambda)), r.linear_complexity};
}

}  // namespace pbs
