#include "pbs/bch/levinson.h"

#include <cassert>
#include <utility>

namespace pbs {

namespace {

// Core Levinson recursion for a general (nonsymmetric) Toeplitz system
// T x = rhs over GF(2^m), where T(i, j) = diags[(i - j) + (v - 1)] with
// the 2v-1 lag diagonals packed densely (lag -(v-1) first). Maintains the
// solution x_k of the k x k leading system plus forward/backward auxiliary
// vectors f_k, g_k with T_k f_k = e_0 and T_k g_k = e_{k-1}. In
// characteristic 2, + and - coincide, which simplifies the updates. The
// dense-diagonal layout (instead of the previous lag functor) is what lets
// the residual sums and vector updates run through the log-domain batch
// kernels of gf2m.h: every inner loop is a DotRev window or a
// MulManyAccum. Writes the solution into `x` (v slots) and returns false
// when a leading principal minor is singular (the recursion's regularity
// condition).
bool LevinsonSolveToeplitzWs(const GF2m& field, Span<const uint64_t> diags,
                             Span<const uint64_t> rhs, Workspace& ws,
                             Span<uint64_t> x) {
  const size_t v = rhs.size();
  if (v == 0) return true;
  assert(diags.size() == 2 * v - 1);
  assert(x.size() >= v);
  const uint64_t diag0 = diags[v - 1];
  if (diag0 == 0) return false;  // 1x1 leading minor singular.

  x[0] = field.Div(rhs[0], diag0);
  // f/g are double-buffered: each step's update reads both old vectors.
  auto f = ws.Take<uint64_t>(v);
  auto g = ws.Take<uint64_t>(v);
  auto f_next = ws.Take<uint64_t>(v);
  auto g_next = ws.Take<uint64_t>(v);
  f[0] = field.Inv(diag0);
  g[0] = f[0];

  for (size_t k = 1; k < v; ++k) {
    const Span<const uint64_t> fk(f.data(), k);
    const Span<const uint64_t> gk(g.data(), k);
    // Residual of [f, 0] at the new last row: sum_j T(k, j) f_j =
    // sum_j diags[(v-1) + (k-j)] f[j].
    const uint64_t ef =
        field.DotRev(fk, Span<const uint64_t>(diags.data() + v, k));
    // Residual of [0, g] at the first row: sum_j T(0, j+1) g_j =
    // sum_j diags[(v-2) - j] g[j].
    const uint64_t eg =
        field.DotRev(gk, Span<const uint64_t>(diags.data() + (v - 1 - k), k));

    // [f, 0] solves e_0 + ef e_k; [0, g] solves eg e_0 + e_k. Combine with
    // denominator 1 - ef eg (char 2: XOR).
    const uint64_t denom = 1 ^ field.Mul(ef, eg);
    if (denom == 0) return false;  // Singular leading minor.
    const uint64_t dinv = field.Inv(denom);

    for (size_t j = 0; j <= k; ++j) {
      f_next[j] = 0;
      g_next[j] = 0;
    }
    field.MulManyAccum(dinv, fk, Span<uint64_t>(f_next.data(), k));
    field.MulManyAccum(dinv, gk, Span<uint64_t>(g_next.data() + 1, k));
    field.MulManyAccum(field.Mul(dinv, ef), gk,
                       Span<uint64_t>(f_next.data() + 1, k));
    field.MulManyAccum(field.Mul(dinv, eg), fk,
                       Span<uint64_t>(g_next.data(), k));
    std::swap(f, f_next);
    std::swap(g, g_next);

    // Extend the solution: residual of [x, 0] at the new last row; patch
    // it with g (which excites only that row).
    const uint64_t ex =
        field.DotRev(Span<const uint64_t>(x.data(), k),
                     Span<const uint64_t>(diags.data() + v, k));
    const uint64_t correction = ex ^ rhs[k];
    x[k] = 0;
    field.MulManyAccum(correction, Span<const uint64_t>(g.data(), k + 1), x);
  }
  return true;
}

}  // namespace

std::optional<std::vector<uint64_t>> LevinsonSolveHankel(
    const GF2m& field, const std::vector<uint64_t>& h,
    const std::vector<uint64_t>& b) {
  const size_t v = b.size();
  if (v == 0) return std::vector<uint64_t>{};
  assert(h.size() == 2 * v - 1);

  // Row-reverse into Toeplitz form: (J H)(i, j) = h[(v-1-i) + j] depends
  // only on i - j, with lag diagonal h[(v-1) - lag] -- i.e. the dense
  // diagonal array is h reversed; the right-hand side reverses with the
  // rows and the solution vector is unchanged.
  Workspace ws;
  std::vector<uint64_t> diags(h.rbegin(), h.rend());
  std::vector<uint64_t> reversed_b(b.rbegin(), b.rend());
  std::vector<uint64_t> x(v, 0);
  if (!LevinsonSolveToeplitzWs(field, diags, reversed_b, ws, x)) {
    return std::nullopt;
  }
  return x;
}

bool LevinsonLocatorWs(const GF2m& field, Span<const uint64_t> syndromes,
                       int v, Workspace& ws, Span<uint64_t> lambda_out) {
  assert(v >= 0 && 2 * v <= static_cast<int>(syndromes.size()));
  assert(static_cast<int>(lambda_out.size()) >= v + 1);
  for (size_t i = 0; i < lambda_out.size(); ++i) lambda_out[i] = 0;
  lambda_out[0] = 1;
  if (v == 0) return true;

  // The Hankel system H(i, j) = S_{i + j + 1}, b_i = S_{v + i + 1},
  // row-reversed into Toeplitz form as in LevinsonSolveHankel: the lag
  // diagonal is S_{v - lag}, so the dense array is the first 2v-1
  // syndromes reversed, and the reversed right-hand side is
  // b_rev[i] = S_{2v - i}.
  auto diags = ws.Take<uint64_t>(2 * v - 1);
  for (int i = 0; i < 2 * v - 1; ++i) diags[i] = syndromes[2 * v - 2 - i];
  auto rhs = ws.Take<uint64_t>(v);
  for (int i = 0; i < v; ++i) rhs[i] = syndromes[2 * v - i - 1];
  auto solution = ws.Take<uint64_t>(v);
  if (!LevinsonSolveToeplitzWs(field, diags.cspan(), rhs.cspan(), ws,
                               solution.span())) {
    return false;
  }

  // solution[j] multiplies S_{k - (j+1)}... map back to Lambda: the system
  // rows are sum_j Lambda_j S_{k-j} = S_k with matrix entry S_{k-j} =
  // S_{(v + i + 1) - j}; with H(i, jj) = S_{i + jj + 1} we used jj = v - j,
  // so Lambda_j = solution[v - j].
  for (int j = 1; j <= v; ++j) lambda_out[j] = solution[v - j];
  if (lambda_out[v] == 0) return false;  // Degree collapsed.

  // Verify the recurrence across all provided syndromes (the DotRev
  // discrepancy form: S_k + sum_j Lambda_j S_{k-j}).
  const int total = static_cast<int>(syndromes.size());
  for (int k = v + 1; k <= total; ++k) {
    const uint64_t acc =
        syndromes[k - 1] ^
        field.DotRev(Span<const uint64_t>(lambda_out.data() + 1, v),
                     Span<const uint64_t>(syndromes.data() + (k - v - 1), v));
    if (acc != 0) return false;
  }
  return true;
}

std::optional<std::vector<uint64_t>> LevinsonLocator(
    const GF2m& field, const std::vector<uint64_t>& syndromes, int v) {
  Workspace ws;
  std::vector<uint64_t> lambda(v + 1, 0);
  if (!LevinsonLocatorWs(field, syndromes, v, ws, lambda)) {
    return std::nullopt;
  }
  return lambda;
}

}  // namespace pbs
