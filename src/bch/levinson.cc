#include "pbs/bch/levinson.h"

#include <cassert>
#include <utility>

namespace pbs {

namespace {

// Core Levinson recursion for a general (nonsymmetric) Toeplitz system
// T x = rhs over GF(2^m), where T(i, j) = diag(i - j) and diag is defined
// for lags -(v-1)..(v-1). Maintains the solution x_k of the k x k leading
// system plus forward/backward auxiliary vectors f_k, g_k with
// T_k f_k = e_0 and T_k g_k = e_{k-1}. In characteristic 2, + and -
// coincide, which simplifies the updates. Writes the solution into `x`
// (v slots) and returns false when a leading principal minor is singular
// (the recursion's regularity condition). `Diag` is a compile-time functor
// so the lag lookup inlines (a std::function here would cost an indirect
// call -- and possibly an allocation -- per coefficient).
template <typename Diag>
bool LevinsonSolveToeplitzWs(const GF2m& field, const Diag& diag,
                             Span<const uint64_t> rhs, Workspace& ws,
                             Span<uint64_t> x) {
  const size_t v = rhs.size();
  if (v == 0) return true;
  assert(x.size() >= v);
  if (diag(0) == 0) return false;  // 1x1 leading minor singular.

  x[0] = field.Div(rhs[0], diag(0));
  // f/g are double-buffered: each step's update reads both old vectors.
  auto f = ws.Take<uint64_t>(v);
  auto g = ws.Take<uint64_t>(v);
  auto f_next = ws.Take<uint64_t>(v);
  auto g_next = ws.Take<uint64_t>(v);
  f[0] = field.Inv(diag(0));
  g[0] = f[0];

  for (size_t k = 1; k < v; ++k) {
    // Residual of [f, 0] at the new last row: sum_j T(k, j) f_j.
    uint64_t ef = 0;
    for (size_t j = 0; j < k; ++j) {
      ef ^= field.Mul(diag(static_cast<int>(k - j)), f[j]);
    }
    // Residual of [0, g] at the first row: sum_j T(0, j+1) g_j.
    uint64_t eg = 0;
    for (size_t j = 0; j < k; ++j) {
      eg ^= field.Mul(diag(-static_cast<int>(j) - 1), g[j]);
    }

    // [f, 0] solves e_0 + ef e_k; [0, g] solves eg e_0 + e_k. Combine with
    // denominator 1 - ef eg (char 2: XOR).
    const uint64_t denom = 1 ^ field.Mul(ef, eg);
    if (denom == 0) return false;  // Singular leading minor.
    const uint64_t dinv = field.Inv(denom);

    for (size_t j = 0; j <= k; ++j) {
      f_next[j] = 0;
      g_next[j] = 0;
    }
    for (size_t j = 0; j < k; ++j) {
      f_next[j] ^= field.Mul(dinv, f[j]);
      g_next[j + 1] ^= field.Mul(dinv, g[j]);
      f_next[j + 1] ^= field.Mul(field.Mul(dinv, ef), g[j]);
      g_next[j] ^= field.Mul(field.Mul(dinv, eg), f[j]);
    }
    std::swap(f, f_next);
    std::swap(g, g_next);

    // Extend the solution: residual of [x, 0] at the new last row; patch
    // it with g (which excites only that row).
    uint64_t ex = 0;
    for (size_t j = 0; j < k; ++j) {
      ex ^= field.Mul(diag(static_cast<int>(k - j)), x[j]);
    }
    const uint64_t correction = ex ^ rhs[k];
    x[k] = 0;
    for (size_t j = 0; j <= k; ++j) x[j] ^= field.Mul(correction, g[j]);
  }
  return true;
}

}  // namespace

std::optional<std::vector<uint64_t>> LevinsonSolveHankel(
    const GF2m& field, const std::vector<uint64_t>& h,
    const std::vector<uint64_t>& b) {
  const size_t v = b.size();
  if (v == 0) return std::vector<uint64_t>{};
  assert(h.size() == 2 * v - 1);

  // Row-reverse into Toeplitz form: (J H)(i, j) = h[(v-1-i) + j] depends
  // only on i - j, with diagonal value h[(v-1) - (i-j)]; the right-hand
  // side reverses with the rows and the solution vector is unchanged.
  Workspace ws;
  auto diag = [&h, v](int lag) {
    return h[static_cast<size_t>(static_cast<int>(v) - 1 - lag)];
  };
  std::vector<uint64_t> reversed_b(b.rbegin(), b.rend());
  std::vector<uint64_t> x(v, 0);
  if (!LevinsonSolveToeplitzWs(field, diag, reversed_b, ws, x)) {
    return std::nullopt;
  }
  return x;
}

bool LevinsonLocatorWs(const GF2m& field, Span<const uint64_t> syndromes,
                       int v, Workspace& ws, Span<uint64_t> lambda_out) {
  assert(v >= 0 && 2 * v <= static_cast<int>(syndromes.size()));
  assert(static_cast<int>(lambda_out.size()) >= v + 1);
  for (size_t i = 0; i < lambda_out.size(); ++i) lambda_out[i] = 0;
  lambda_out[0] = 1;
  if (v == 0) return true;

  // The Hankel system H(i, j) = S_{i + j + 1}, b_i = S_{v + i + 1},
  // row-reversed into Toeplitz form as in LevinsonSolveHankel: the lag
  // diagonal is h[(v-1) - lag] = S_{v - lag}, and the reversed right-hand
  // side is b_rev[i] = S_{2v - i}.
  auto diag = [&syndromes, v](int lag) {
    return syndromes[static_cast<size_t>(v - 1 - lag)];
  };
  auto rhs = ws.Take<uint64_t>(v);
  for (int i = 0; i < v; ++i) rhs[i] = syndromes[2 * v - i - 1];
  auto solution = ws.Take<uint64_t>(v);
  if (!LevinsonSolveToeplitzWs(field, diag, rhs.cspan(), ws,
                               solution.span())) {
    return false;
  }

  // solution[j] multiplies S_{k - (j+1)}... map back to Lambda: the system
  // rows are sum_j Lambda_j S_{k-j} = S_k with matrix entry S_{k-j} =
  // S_{(v + i + 1) - j}; with H(i, jj) = S_{i + jj + 1} we used jj = v - j,
  // so Lambda_j = solution[v - j].
  for (int j = 1; j <= v; ++j) lambda_out[j] = solution[v - j];
  if (lambda_out[v] == 0) return false;  // Degree collapsed.

  // Verify the recurrence across all provided syndromes.
  const int total = static_cast<int>(syndromes.size());
  for (int k = v + 1; k <= total; ++k) {
    uint64_t acc = syndromes[k - 1];
    for (int j = 1; j <= v; ++j) {
      acc ^= field.Mul(lambda_out[j], syndromes[k - j - 1]);
    }
    if (acc != 0) return false;
  }
  return true;
}

std::optional<std::vector<uint64_t>> LevinsonLocator(
    const GF2m& field, const std::vector<uint64_t>& syndromes, int v) {
  Workspace ws;
  std::vector<uint64_t> lambda(v + 1, 0);
  if (!LevinsonLocatorWs(field, syndromes, v, ws, lambda)) {
    return std::nullopt;
  }
  return lambda;
}

}  // namespace pbs
