#include "pbs/bch/levinson.h"

#include <cassert>
#include <functional>

namespace pbs {

namespace {

// Core Levinson recursion for a general (nonsymmetric) Toeplitz system
// T x = rhs over GF(2^m), where T(i, j) = diag(i - j) and diag is defined
// for lags -(v-1)..(v-1). Maintains the solution x_k of the k x k leading
// system plus forward/backward auxiliary vectors f_k, g_k with
// T_k f_k = e_0 and T_k g_k = e_{k-1}. In characteristic 2, + and -
// coincide, which simplifies the updates. Returns nullopt when a leading
// principal minor is singular (the recursion's regularity condition).
std::optional<std::vector<uint64_t>> LevinsonSolveToeplitz(
    const GF2m& field, const std::function<uint64_t(int)>& diag,
    const std::vector<uint64_t>& rhs) {
  const size_t v = rhs.size();
  if (v == 0) return std::vector<uint64_t>{};
  if (diag(0) == 0) return std::nullopt;  // 1x1 leading minor singular.

  std::vector<uint64_t> x{field.Div(rhs[0], diag(0))};
  std::vector<uint64_t> f{field.Inv(diag(0))};
  std::vector<uint64_t> g{field.Inv(diag(0))};

  for (size_t k = 1; k < v; ++k) {
    // Residual of [f, 0] at the new last row: sum_j T(k, j) f_j.
    uint64_t ef = 0;
    for (size_t j = 0; j < k; ++j) {
      ef ^= field.Mul(diag(static_cast<int>(k - j)), f[j]);
    }
    // Residual of [0, g] at the first row: sum_j T(0, j+1) g_j.
    uint64_t eg = 0;
    for (size_t j = 0; j < k; ++j) {
      eg ^= field.Mul(diag(-static_cast<int>(j) - 1), g[j]);
    }

    // [f, 0] solves e_0 + ef e_k; [0, g] solves eg e_0 + e_k. Combine with
    // denominator 1 - ef eg (char 2: XOR).
    const uint64_t denom = 1 ^ field.Mul(ef, eg);
    if (denom == 0) return std::nullopt;  // Singular leading minor.
    const uint64_t dinv = field.Inv(denom);

    std::vector<uint64_t> f_new(k + 1, 0), g_new(k + 1, 0);
    for (size_t j = 0; j < k; ++j) {
      f_new[j] ^= field.Mul(dinv, f[j]);
      g_new[j + 1] ^= field.Mul(dinv, g[j]);
      f_new[j + 1] ^= field.Mul(field.Mul(dinv, ef), g[j]);
      g_new[j] ^= field.Mul(field.Mul(dinv, eg), f[j]);
    }
    f = std::move(f_new);
    g = std::move(g_new);

    // Extend the solution: residual of [x, 0] at the new last row; patch
    // it with g (which excites only that row).
    uint64_t ex = 0;
    for (size_t j = 0; j < k; ++j) {
      ex ^= field.Mul(diag(static_cast<int>(k - j)), x[j]);
    }
    const uint64_t correction = ex ^ rhs[k];
    x.push_back(0);
    for (size_t j = 0; j <= k; ++j) x[j] ^= field.Mul(correction, g[j]);
  }
  return x;
}

}  // namespace

std::optional<std::vector<uint64_t>> LevinsonSolveHankel(
    const GF2m& field, const std::vector<uint64_t>& h,
    const std::vector<uint64_t>& b) {
  const size_t v = b.size();
  if (v == 0) return std::vector<uint64_t>{};
  assert(h.size() == 2 * v - 1);

  // Row-reverse into Toeplitz form: (J H)(i, j) = h[(v-1-i) + j] depends
  // only on i - j, with diagonal value h[(v-1) - (i-j)]; the right-hand
  // side reverses with the rows and the solution vector is unchanged.
  auto diag = [&h, v](int lag) {
    return h[static_cast<size_t>(static_cast<int>(v) - 1 - lag)];
  };
  std::vector<uint64_t> reversed_b(b.rbegin(), b.rend());
  return LevinsonSolveToeplitz(field, diag, reversed_b);
}

std::optional<std::vector<uint64_t>> LevinsonLocator(
    const GF2m& field, const std::vector<uint64_t>& syndromes, int v) {
  assert(v >= 0 && 2 * v <= static_cast<int>(syndromes.size()));
  if (v == 0) return std::vector<uint64_t>{1};

  // H(i, j) = S_{i + j + 1} (i, j 0-based), b_i = S_{v + i + 1}.
  std::vector<uint64_t> h(2 * v - 1);
  for (int i = 0; i < 2 * v - 1; ++i) h[i] = syndromes[i + 1 - 1];
  std::vector<uint64_t> b(v);
  for (int i = 0; i < v; ++i) b[i] = syndromes[v + i + 1 - 1];

  auto solution = LevinsonSolveHankel(field, h, b);
  if (!solution.has_value()) return std::nullopt;

  // solution[j] multiplies S_{k - (j+1)}... map back to Lambda: the system
  // rows are sum_j Lambda_j S_{k-j} = S_k with matrix entry S_{k-j} =
  // S_{(v + i + 1) - j}; with H(i, jj) = S_{i + jj + 1} we used jj = v - j,
  // so Lambda_j = solution[v - j].
  std::vector<uint64_t> lambda(v + 1, 0);
  lambda[0] = 1;
  for (int j = 1; j <= v; ++j) lambda[j] = (*solution)[v - j];
  if (lambda[v] == 0) return std::nullopt;  // Degree collapsed.

  // Verify the recurrence across all provided syndromes.
  const int total = static_cast<int>(syndromes.size());
  for (int k = v + 1; k <= total; ++k) {
    uint64_t acc = syndromes[k - 1];
    for (int j = 1; j <= v; ++j) {
      acc ^= field.Mul(lambda[j], syndromes[k - j - 1]);
    }
    if (acc != 0) return std::nullopt;
  }
  return lambda;
}

}  // namespace pbs
