#include "pbs/bch/channel_code.h"

#include <cassert>

#include "pbs/bch/berlekamp_massey.h"
#include "pbs/common/bitio.h"
#include "pbs/gf/roots.h"

namespace pbs {

BchChannelCode::BchChannelCode(int m, int t)
    : field_(m), m_(m), t_(t), n_((1 << m) - 1) {
  assert(t >= 1 && t * m < n_);
}

std::vector<uint64_t> BchChannelCode::SyndromesOf(
    const std::vector<uint8_t>& bits) const {
  // Odd power sums of the positions whose bit is 1 (positions 1..n map to
  // the nonzero field elements), identical to PowerSumSketch's kernel.
  std::vector<uint64_t> odd(t_, 0);
  Span<uint64_t> odd_span(odd);
  for (int pos = 1; pos <= static_cast<int>(bits.size()); ++pos) {
    if (!bits[pos - 1]) continue;
    field_.OddPowerAccum(static_cast<uint64_t>(pos), odd_span);
  }
  return odd;
}

std::vector<uint8_t> BchChannelCode::Encode(
    const std::vector<uint8_t>& message) const {
  assert(static_cast<int>(message.size()) == message_bits());
  std::vector<uint8_t> block(n_, 0);
  for (int i = 0; i < message_bits(); ++i) block[i] = message[i] ? 1 : 0;

  // Check part: the t syndromes of the padded message bits, bit-packed
  // into the trailing t*m positions. (Systematic w.r.t. the message; the
  // check symbols are syndromes rather than polynomial remainders, which
  // decodes with the same BM machinery PBS uses.)
  std::vector<uint8_t> message_part(block.begin(),
                                    block.begin() + message_bits());
  message_part.resize(n_, 0);
  const auto syndromes = SyndromesOf(message_part);
  BitWriter w;
  for (uint64_t s : syndromes) w.WriteBits(s, m_);
  BitReader r(w.bytes());
  for (int i = message_bits(); i < n_; ++i) {
    block[i] = r.ReadBit() ? 1 : 0;
  }
  return block;
}

std::optional<std::vector<uint8_t>> BchChannelCode::Decode(
    const std::vector<uint8_t>& block) const {
  assert(static_cast<int>(block.size()) == n_);

  // Received message part and received check part.
  std::vector<uint8_t> message_part(block.begin(),
                                    block.begin() + message_bits());
  message_part.resize(n_, 0);
  const auto recomputed = SyndromesOf(message_part);

  BitWriter w;
  for (int i = message_bits(); i < n_; ++i) w.WriteBit(block[i] != 0);
  BitReader r(w.bytes());
  std::vector<uint64_t> received(t_, 0);
  for (int i = 0; i < t_; ++i) received[i] = r.ReadBits(m_);

  // The syndrome difference is linear in the error pattern on the message
  // part; check-part errors perturb `received` directly. Model both: the
  // combined error locator comes from the XOR, but check-bit errors do not
  // correspond to field positions of the message range. Standard practice
  // (and Appendix I's point) is that the full block is one BCH codeword;
  // we emulate that by treating check-bit errors as erasures found via
  // re-encoding after message correction.
  std::vector<uint64_t> diff(t_);
  for (int i = 0; i < t_; ++i) diff[i] = recomputed[i] ^ received[i];

  bool all_zero = true;
  for (uint64_t s : diff) all_zero = all_zero && s == 0;
  if (all_zero) {
    return std::vector<uint8_t>(block.begin(),
                                block.begin() + message_bits());
  }

  // Expand to 2t syndromes and locate errors in the message part.
  std::vector<uint64_t> full(2 * t_, 0);
  for (int k = 1; k <= 2 * t_; ++k) {
    full[k - 1] = k % 2 == 1 ? diff[(k - 1) / 2]
                             : field_.Sqr(full[k / 2 - 1]);
  }
  BmResult bm = BerlekampMassey(field_, full);
  std::vector<uint8_t> corrected(block.begin(),
                                 block.begin() + message_bits());
  if (bm.IsConsistent() && bm.linear_complexity <= t_) {
    auto roots = FindDistinctNonzeroRoots(bm.lambda);
    if (roots.has_value()) {
      bool plausible = true;
      for (uint64_t root : *roots) {
        const uint64_t pos = field_.Inv(root);
        if (pos < 1 || pos > static_cast<uint64_t>(message_bits())) {
          plausible = false;  // Error located in the check range.
          break;
        }
      }
      if (plausible) {
        for (uint64_t root : *roots) {
          const uint64_t pos = field_.Inv(root);
          corrected[pos - 1] ^= 1;
        }
        // Accept only if re-encoding reproduces a block within t bits of
        // the received one (bounds total errors by t).
        const auto reencoded = Encode(corrected);
        int mismatches = 0;
        for (int i = 0; i < n_; ++i) {
          if (reencoded[i] != block[i]) ++mismatches;
        }
        if (mismatches <= t_) return corrected;
      }
    }
  }

  // Locator failed inside the message range: the errors may live in the
  // check bits alone. Re-encode the received message part; if it differs
  // from the received block in at most t (check) positions, the message
  // was clean.
  const auto reencoded = Encode(corrected);
  int mismatches = 0;
  for (int i = 0; i < n_; ++i) {
    if (reencoded[i] != block[i]) ++mismatches;
  }
  if (mismatches <= t_) return corrected;
  return std::nullopt;
}

}  // namespace pbs
