#include "pbs/bch/pgz_decoder.h"

#include <algorithm>
#include <cassert>

namespace pbs {

namespace {

// In-place Gaussian elimination over GF(2^m) on the row-major n x n matrix
// `a` with right-hand side `rhs`; on success `rhs` holds the solution.
// Returns false if singular. Destroys `a` either way -- callers refill the
// scratch per attempt instead of deep-copying it (the seed code took the
// matrix by value, costing a heap copy per shrink step).
bool SolveInPlace(const GF2m& field, uint64_t* a, uint64_t* rhs, int n) {
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int row = col; row < n; ++row) {
      if (a[row * n + col] != 0) {
        pivot = row;
        break;
      }
    }
    if (pivot < 0) return false;
    if (pivot != col) {
      std::swap_ranges(a + col * n, a + (col + 1) * n, a + pivot * n);
      std::swap(rhs[col], rhs[pivot]);
    }
    // Row scaling and elimination run through the log-domain batch
    // kernels (gf2m.h): the pivot row's suffix from the pivot column on.
    const int tail = n - col;
    const uint64_t inv = field.Inv(a[col * n + col]);
    const Span<uint64_t> pivot_row(a + col * n + col, tail);
    field.MulManyInto(inv, pivot_row, pivot_row);
    rhs[col] = field.Mul(rhs[col], inv);
    for (int row = 0; row < n; ++row) {
      if (row == col || a[row * n + col] == 0) continue;
      const uint64_t factor = a[row * n + col];
      field.MulManyAccum(factor, pivot_row,
                         Span<uint64_t>(a + row * n + col, tail));
      rhs[row] ^= field.Mul(factor, rhs[col]);
    }
  }
  return true;
}

}  // namespace

int PgzLocatorWs(const GF2m& field, Span<const uint64_t> syndromes,
                 Workspace& ws, Span<uint64_t> lambda_out) {
  const int t = static_cast<int>(syndromes.size()) / 2;
  assert(static_cast<int>(lambda_out.size()) >= t + 1);
  for (size_t i = 0; i < lambda_out.size(); ++i) lambda_out[i] = 0;
  lambda_out[0] = 1;

  bool all_zero = true;
  for (uint64_t s : syndromes) {
    if (s != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) return 0;  // Lambda = 1.

  // S(k) accessor with 1-based BCH indexing.
  auto s = [&syndromes](int k) { return syndromes[k - 1]; };

  auto matrix = ws.Take<uint64_t>(static_cast<size_t>(t) * t);
  auto rhs = ws.Take<uint64_t>(t);
  for (int v = t; v >= 1; --v) {
    // Rows k = v+1 .. 2v; unknowns Lambda_1..Lambda_v. Refill the scratch
    // in place -- SolveInPlace destroyed last attempt's contents.
    for (int row = 0; row < v; ++row) {
      const int k = v + 1 + row;
      for (int j = 1; j <= v; ++j) matrix[row * v + j - 1] = s(k - j);
      rhs[row] = s(k);
    }
    if (!SolveInPlace(field, matrix.data(), rhs.data(), v)) continue;
    if (rhs[v - 1] == 0) continue;  // Leading coefficient vanished.

    // Verify the recurrence over the full syndrome window: acc = S_k +
    // sum_j Lambda_j S_{k-j}, the DotRev discrepancy form.
    bool ok = true;
    for (int k = v + 1; k <= 2 * t && ok; ++k) {
      const uint64_t acc =
          s(k) ^ field.DotRev(
                     Span<const uint64_t>(rhs.data(), v),
                     Span<const uint64_t>(syndromes.data() + (k - v - 1), v));
      if (acc != 0) ok = false;
    }
    if (!ok) continue;

    for (int j = 1; j <= v; ++j) lambda_out[j] = rhs[j - 1];
    return v;
  }
  return -1;
}

std::optional<GFPoly> PgzLocator(const GF2m& field,
                                 const std::vector<uint64_t>& syndromes) {
  Workspace ws;
  const int t = static_cast<int>(syndromes.size()) / 2;
  std::vector<uint64_t> lambda(t + 1, 0);
  if (PgzLocatorWs(field, syndromes, ws, lambda) < 0) return std::nullopt;
  return GFPoly(field, std::move(lambda));
}

}  // namespace pbs
