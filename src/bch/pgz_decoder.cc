#include "pbs/bch/pgz_decoder.h"

namespace pbs {

namespace {

// Gaussian elimination over GF(2^m). Returns false if singular.
bool Solve(const GF2m& field, std::vector<std::vector<uint64_t>> a,
           std::vector<uint64_t> rhs, std::vector<uint64_t>* out) {
  const int n = static_cast<int>(rhs.size());
  for (int col = 0; col < n; ++col) {
    int pivot = -1;
    for (int row = col; row < n; ++row) {
      if (a[row][col] != 0) {
        pivot = row;
        break;
      }
    }
    if (pivot < 0) return false;
    std::swap(a[col], a[pivot]);
    std::swap(rhs[col], rhs[pivot]);
    const uint64_t inv = field.Inv(a[col][col]);
    for (int j = col; j < n; ++j) a[col][j] = field.Mul(a[col][j], inv);
    rhs[col] = field.Mul(rhs[col], inv);
    for (int row = 0; row < n; ++row) {
      if (row == col || a[row][col] == 0) continue;
      const uint64_t factor = a[row][col];
      for (int j = col; j < n; ++j) {
        a[row][j] ^= field.Mul(factor, a[col][j]);
      }
      rhs[row] ^= field.Mul(factor, rhs[col]);
    }
  }
  *out = std::move(rhs);
  return true;
}

}  // namespace

std::optional<GFPoly> PgzLocator(const GF2m& field,
                                 const std::vector<uint64_t>& syndromes) {
  const int t = static_cast<int>(syndromes.size()) / 2;
  bool all_zero = true;
  for (uint64_t s : syndromes) {
    if (s != 0) {
      all_zero = false;
      break;
    }
  }
  if (all_zero) return GFPoly::One(field);

  // S(k) accessor with 1-based BCH indexing.
  auto s = [&](int k) { return syndromes[k - 1]; };

  for (int v = t; v >= 1; --v) {
    // Rows k = v+1 .. 2v; unknowns Lambda_1..Lambda_v.
    std::vector<std::vector<uint64_t>> a(v, std::vector<uint64_t>(v, 0));
    std::vector<uint64_t> rhs(v, 0);
    for (int row = 0; row < v; ++row) {
      const int k = v + 1 + row;
      for (int j = 1; j <= v; ++j) a[row][j - 1] = s(k - j);
      rhs[row] = s(k);
    }
    std::vector<uint64_t> lambda_coeffs;
    if (!Solve(field, std::move(a), std::move(rhs), &lambda_coeffs)) continue;

    std::vector<uint64_t> poly(v + 1, 0);
    poly[0] = 1;
    for (int j = 1; j <= v; ++j) poly[j] = lambda_coeffs[j - 1];
    GFPoly lambda(field, std::move(poly));
    if (lambda.degree() != v) continue;  // Leading coefficient vanished.

    // Verify the recurrence over the full syndrome window.
    bool ok = true;
    for (int k = v + 1; k <= 2 * t && ok; ++k) {
      uint64_t acc = s(k);
      for (int j = 1; j <= v; ++j) {
        acc ^= field.Mul(lambda.coeff(j), s(k - j));
      }
      if (acc != 0) ok = false;
    }
    if (ok) return lambda;
  }
  return std::nullopt;
}

}  // namespace pbs
