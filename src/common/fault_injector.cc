#include "pbs/common/fault_injector.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "pbs/core/messages.h"

namespace pbs {

namespace {

bool ParseDouble(const std::string& text, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == text.c_str()) return false;
  *out = v;
  return true;
}

bool ParseInt64(const std::string& text, long long* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == text.c_str()) return false;
  *out = v;
  return true;
}

bool ParseU64(const std::string& text, uint64_t* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || end == text.c_str()) return false;
  *out = v;
  return true;
}

}  // namespace

bool FaultSpec::active() const {
  return loss > 0.0 || corrupt > 0.0 || truncate > 0.0 || delay_ms > 0 ||
         disconnect_after_frames >= 0 || disconnect_after_bytes >= 0 ||
         short_writes;
}

bool FaultSpec::Parse(const std::string& text, FaultSpec* spec,
                      std::string* error) {
  FaultSpec parsed;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      if (error) *error = "fault spec item '" + item + "' is not key=value";
      return false;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    auto fail = [error, &item](const char* what) {
      if (error) {
        *error = std::string("fault spec item '") + item + "': " + what;
      }
      return false;
    };
    if (key == "loss" || key == "corrupt" || key == "truncate" ||
        key == "trunc") {
      double p = 0.0;
      if (!ParseDouble(value, &p) || p < 0.0 || p > 1.0) {
        return fail("expected a probability in [0, 1]");
      }
      if (key == "loss") {
        parsed.loss = p;
      } else if (key == "corrupt") {
        parsed.corrupt = p;
      } else {
        parsed.truncate = p;
      }
    } else if (key == "delay_ms") {
      long long ms = 0;
      if (!ParseInt64(value, &ms) || ms < 0 || ms > 60'000) {
        return fail("expected milliseconds in [0, 60000]");
      }
      parsed.delay_ms = static_cast<int>(ms);
    } else if (key == "seed") {
      if (!ParseU64(value, &parsed.seed)) return fail("expected an integer");
    } else if (key == "disconnect_after_frames") {
      if (!ParseInt64(value, &parsed.disconnect_after_frames) ||
          parsed.disconnect_after_frames < -1) {
        return fail("expected a frame index >= -1");
      }
    } else if (key == "disconnect_after_bytes") {
      if (!ParseInt64(value, &parsed.disconnect_after_bytes) ||
          parsed.disconnect_after_bytes < -1) {
        return fail("expected a byte count >= -1");
      }
    } else if (key == "short_writes") {
      long long v = 0;
      if (!ParseInt64(value, &v) || (v != 0 && v != 1)) {
        return fail("expected 0 or 1");
      }
      parsed.short_writes = v != 0;
    } else if (key == "once") {
      long long v = 0;
      if (!ParseInt64(value, &v) || (v != 0 && v != 1)) {
        return fail("expected 0 or 1");
      }
      parsed.first_conn_only = v != 0;
    } else {
      if (error) *error = "unknown fault spec key '" + key + "'";
      return false;
    }
  }
  *spec = parsed;
  return true;
}

bool FaultSpec::FromEnv(FaultSpec* spec, std::string* error) {
  const char* raw = std::getenv("PBS_FAULT_SPEC");
  if (raw == nullptr || raw[0] == '\0') {
    *spec = FaultSpec{};
    return true;
  }
  return Parse(raw, spec, error);
}

FaultyTransport::FaultyTransport(std::unique_ptr<ByteTransport> inner,
                                 const FaultSpec& spec)
    : inner_(std::move(inner)),
      spec_(spec),
      rng_(spec.seed != 0 ? spec.seed : 1) {}

FaultyTransport::~FaultyTransport() = default;

bool FaultyTransport::Send(const uint8_t* data, size_t size) {
  if (dead_) return false;
  pending_.insert(pending_.end(), data, data + size);
  // Carve complete frames off the front; a trailing partial frame waits
  // for the caller's next Send.
  size_t pos = 0;
  while (pending_.size() - pos >= wire::kFrameHeaderSize) {
    size_t payload_length = 0;
    if (wire::InspectFrameHeader(pending_.data() + pos, &payload_length) !=
        wire::FrameStatus::kOk) {
      // Not a frame boundary (a caller sending non-frame bytes): forward
      // the remainder verbatim and stop carving this batch.
      if (!ForwardFrame(pending_.data() + pos, pending_.size() - pos)) {
        pending_.clear();
        return false;
      }
      pos = pending_.size();
      break;
    }
    const size_t frame_size = wire::kFrameHeaderSize + payload_length;
    if (pending_.size() - pos < frame_size) break;
    if (!ApplyFaults(pending_.data() + pos, frame_size)) {
      pending_.clear();
      return false;
    }
    pos += frame_size;
  }
  pending_.erase(pending_.begin(), pending_.begin() + pos);
  return true;
}

bool FaultyTransport::ApplyFaults(const uint8_t* frame, size_t size) {
  const uint64_t index = stats_.frames_seen++;
  if (spec_.disconnect_after_frames >= 0 &&
      index >= static_cast<uint64_t>(spec_.disconnect_after_frames)) {
    ++stats_.disconnects;
    dead_ = true;
    return false;
  }
  if (spec_.delay_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(spec_.delay_ms));
  }
  if (spec_.loss > 0.0 && rng_.NextDouble() < spec_.loss) {
    ++stats_.frames_dropped;
    return true;  // The stream stays parseable: the next frame aligns.
  }
  if (spec_.truncate > 0.0 && rng_.NextDouble() < spec_.truncate) {
    ++stats_.frames_truncated;
    const size_t cut = 1 + static_cast<size_t>(rng_.NextBounded(size - 1));
    ForwardFrame(frame, cut);
    ++stats_.disconnects;
    dead_ = true;  // A truncated frame is only observable if the link dies.
    return false;
  }
  if (spec_.corrupt > 0.0 && rng_.NextDouble() < spec_.corrupt) {
    ++stats_.frames_corrupted;
    scratch_.assign(frame, frame + size);
    const uint64_t bit = rng_.NextBounded(size * 8);
    scratch_[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    return ForwardFrame(scratch_.data(), size);
  }
  return ForwardFrame(frame, size);
}

bool FaultyTransport::ForwardFrame(const uint8_t* data, size_t size) {
  if (spec_.disconnect_after_bytes >= 0 &&
      stats_.bytes_forwarded + size >
          static_cast<uint64_t>(spec_.disconnect_after_bytes)) {
    const size_t room = static_cast<size_t>(
        static_cast<uint64_t>(spec_.disconnect_after_bytes) -
        stats_.bytes_forwarded);
    if (room > 0) {
      inner_->Send(data, room);
      stats_.bytes_forwarded += room;
    }
    ++stats_.disconnects;
    dead_ = true;
    return false;
  }
  if (spec_.short_writes) {
    size_t sent = 0;
    while (sent < size) {
      const size_t chunk = std::min<size_t>(
          size - sent, 1 + static_cast<size_t>(rng_.NextBounded(17)));
      if (!inner_->Send(data + sent, chunk)) {
        dead_ = true;
        return false;
      }
      sent += chunk;
      stats_.bytes_forwarded += chunk;
    }
    return true;
  }
  if (!inner_->Send(data, size)) {
    dead_ = true;
    return false;
  }
  stats_.bytes_forwarded += size;
  return true;
}

bool FaultyTransport::Recv(uint8_t* data, size_t size) {
  if (dead_) return false;
  return inner_->Recv(data, size);
}

size_t FaultyTransport::TryRecv(uint8_t* data, size_t size) {
  if (dead_) return 0;
  return inner_->TryRecv(data, size);
}

RecvStatus FaultyTransport::RecvTimed(uint8_t* data, size_t size,
                                      int timeout_ms) {
  if (dead_) return RecvStatus::kClosed;
  return inner_->RecvTimed(data, size, timeout_ms);
}

std::unique_ptr<ByteTransport> MakeFaultyTransport(
    std::unique_ptr<ByteTransport> inner, const FaultSpec& spec) {
  return std::make_unique<FaultyTransport>(std::move(inner), spec);
}

}  // namespace pbs
