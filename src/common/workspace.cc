#include "pbs/common/workspace.h"

#include <algorithm>

namespace pbs {

std::vector<unsigned char>* Workspace::Borrow(size_t bytes) {
  std::vector<unsigned char>* buf;
  if (!free_.empty()) {
    buf = free_.back();
    free_.pop_back();
  } else {
    owned_.push_back(std::make_unique<std::vector<unsigned char>>());
    buf = owned_.back().get();
  }
  ++outstanding_;
  FitAndZero(buf, bytes, /*preserve=*/0);
  return buf;
}

void Workspace::FitAndZero(std::vector<unsigned char>* buf, size_t bytes,
                           size_t preserve) {
  const size_t old_capacity = buf->capacity();
  buf->resize(bytes);
  bytes_reserved_ += buf->capacity() - old_capacity;
  preserve = std::min(preserve, bytes);
  if (bytes > preserve) {
    std::memset(buf->data() + preserve, 0, bytes - preserve);
  }
}

void Workspace::Return(std::vector<unsigned char>* buf) {
  free_.push_back(buf);
  --outstanding_;
}

}  // namespace pbs
