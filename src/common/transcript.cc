#include "pbs/common/transcript.h"

namespace pbs {

void Transcript::Record(int round, Direction direction,
                        const std::string& label, size_t bytes) {
  entries_.push_back({round, direction, label, bytes});
  total_bytes_ += bytes;
  if (round > max_round_) max_round_ = round;
}

size_t Transcript::BytesInRound(int round) const {
  size_t sum = 0;
  for (const auto& e : entries_) {
    if (e.round == round) sum += e.bytes;
  }
  return sum;
}

size_t Transcript::BytesInDirection(Direction direction) const {
  size_t sum = 0;
  for (const auto& e : entries_) {
    if (e.direction == direction) sum += e.bytes;
  }
  return sum;
}

void Transcript::Clear() {
  entries_.clear();
  total_bytes_ = 0;
  max_round_ = 0;
}

}  // namespace pbs
