#include "pbs/common/checksum.h"

// SetChecksum is header-only; this translation unit exists so the module has
// a home in the build graph and a place for future non-inline helpers.
