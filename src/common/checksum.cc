#include "pbs/common/checksum.h"

#include <array>

namespace pbs {

namespace {

// Nibble-at-a-time table: 16 entries keep the footprint trivial while
// staying ~4x faster than the bitwise loop; frame headers and payloads are
// small enough that a full 256-entry (or sliced) table buys nothing here.
constexpr std::array<uint32_t, 16> MakeCrcTable() {
  std::array<uint32_t, 16> table{};
  for (uint32_t i = 0; i < 16; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 4; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 16> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed) {
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc ^= data[i];
    crc = (crc >> 4) ^ kCrcTable[crc & 0xF];
    crc = (crc >> 4) ^ kCrcTable[crc & 0xF];
  }
  return ~crc;
}

}  // namespace pbs
