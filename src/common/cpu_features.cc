#include "pbs/common/cpu_features.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_PMULL
#define HWCAP_PMULL (1 << 4)
#endif
#endif

namespace pbs::cpu {

namespace {

bool DetectCarrylessMul() {
#if defined(PBS_DISABLE_CLMUL)
  return false;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // The gf2x kernel uses _mm_clmulepi64_si128 + _mm_extract_epi64.
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
#elif defined(__aarch64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__))
  return (getauxval(AT_HWCAP) & HWCAP_PMULL) != 0;
#else
  return false;
#endif
}

bool DetectAvx2() {
#if defined(PBS_DISABLE_SIMD)
  return false;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

bool DetectAvx512() {
#if defined(PBS_DISABLE_SIMD)
  return false;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // The wide-lane kernels that dispatch above AVX2 rely on AVX-512F zmm
  // ops plus DQ's vpmullq (native 64-bit lane multiply); VL is required
  // as well so future kernels may use EVEX forms on 256-bit registers.
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

bool DetectNeon() {
#if defined(PBS_DISABLE_SIMD)
  return false;
#elif defined(__aarch64__)
  return true;  // NEON (AdvSIMD) is architecturally mandatory on AArch64.
#else
  return false;
#endif
}

}  // namespace

bool HasCarrylessMul() {
  static const bool has = DetectCarrylessMul();
  return has;
}

const char* CarrylessMulBackend() {
  return HasCarrylessMul() ? "clmul" : "portable";
}

bool HasAvx2() {
  static const bool has = DetectAvx2();
  return has;
}

bool HasAvx512() {
  static const bool has = DetectAvx512();
  return has;
}

bool HasNeon() {
  static const bool has = DetectNeon();
  return has;
}

const char* SimdBackend() {
  if (HasAvx512()) return "avx512";
  if (HasAvx2()) return "avx2";
  if (HasNeon()) return "neon";
  return "portable";
}

const char* FeatureString() {
  static const char* const str = [] {
    static char buf[32];
    char* p = buf;
    const auto append = [&p](const char* s) {
      if (p != buf) *p++ = '+';
      while (*s != '\0') *p++ = *s++;
    };
    if (HasCarrylessMul()) append("clmul");
    if (HasAvx2()) append("avx2");
    if (HasAvx512()) append("avx512");
    if (HasNeon()) append("neon");
    if (p == buf) append("portable");
    *p = '\0';
    return buf;
  }();
  return str;
}

}  // namespace pbs::cpu
