#include "pbs/common/cpu_features.h"

#if defined(__aarch64__) && defined(__linux__)
#include <sys/auxv.h>
#ifndef HWCAP_PMULL
#define HWCAP_PMULL (1 << 4)
#endif
#endif

namespace pbs::cpu {

namespace {

bool DetectCarrylessMul() {
#if defined(PBS_DISABLE_CLMUL)
  return false;
#elif defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  // The gf2x kernel uses _mm_clmulepi64_si128 + _mm_extract_epi64.
  return __builtin_cpu_supports("pclmul") && __builtin_cpu_supports("sse4.1");
#elif defined(__aarch64__) && defined(__linux__) && \
    (defined(__GNUC__) || defined(__clang__))
  return (getauxval(AT_HWCAP) & HWCAP_PMULL) != 0;
#else
  return false;
#endif
}

}  // namespace

bool HasCarrylessMul() {
  static const bool has = DetectCarrylessMul();
  return has;
}

const char* CarrylessMulBackend() {
  return HasCarrylessMul() ? "clmul" : "portable";
}

}  // namespace pbs::cpu
