#include "pbs/common/merkle.h"

#include "pbs/hash/xxhash64.h"

namespace pbs {

namespace {
constexpr uint64_t kLeafDomain = 0x4C454146ull;      // "LEAF"
constexpr uint64_t kInteriorDomain = 0x4E4F4445ull;  // "NODE"
constexpr uint64_t kEmptyRoot = 0xE3B0C44298FC1C14ull;
}  // namespace

uint64_t MerkleTree::HashLeaf(uint64_t value) {
  return XxHash64(value, kLeafDomain);
}

uint64_t MerkleTree::HashInterior(uint64_t left, uint64_t right) {
  uint64_t pair[2] = {left, right};
  return XxHash64(pair, sizeof(pair), kInteriorDomain);
}

MerkleTree::MerkleTree(const std::vector<uint64_t>& leaves)
    : leaf_count_(leaves.size()) {
  std::vector<uint64_t> level;
  level.reserve(leaves.size());
  for (uint64_t v : leaves) level.push_back(HashLeaf(v));
  if (level.empty()) level.push_back(kEmptyRoot);
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& below = levels_.back();
    std::vector<uint64_t> above;
    above.reserve((below.size() + 1) / 2);
    for (size_t i = 0; i < below.size(); i += 2) {
      // Odd node promotes by pairing with itself (Bitcoin convention).
      const uint64_t right = i + 1 < below.size() ? below[i + 1] : below[i];
      above.push_back(HashInterior(below[i], right));
    }
    levels_.push_back(std::move(above));
  }
}

uint64_t MerkleTree::root() const { return levels_.back()[0]; }

bool MerkleTree::UpdateLeaf(size_t index, uint64_t value) {
  if (index >= leaf_count_) return false;
  levels_[0][index] = HashLeaf(value);
  for (size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const auto& below = levels_[depth];
    const size_t left = index & ~size_t{1};
    // Odd node promotes by pairing with itself (matches the constructor).
    const size_t right = left + 1 < below.size() ? left + 1 : left;
    index /= 2;
    levels_[depth + 1][index] = HashInterior(below[left], below[right]);
  }
  return true;
}

std::vector<size_t> MerkleTree::DiffLeaves(const MerkleTree& a,
                                           const MerkleTree& b) {
  std::vector<size_t> diff;
  const size_t shared = a.leaf_count_ < b.leaf_count_ ? a.leaf_count_
                                                      : b.leaf_count_;
  const size_t longest = a.leaf_count_ < b.leaf_count_ ? b.leaf_count_
                                                       : a.leaf_count_;
  for (size_t i = 0; i < shared; ++i) {
    if (a.levels_[0][i] != b.levels_[0][i]) diff.push_back(i);
  }
  for (size_t i = shared; i < longest; ++i) diff.push_back(i);
  return diff;
}

std::vector<MerkleTree::ProofNode> MerkleTree::Prove(size_t index) const {
  std::vector<ProofNode> proof;
  for (size_t depth = 0; depth + 1 < levels_.size(); ++depth) {
    const auto& level = levels_[depth];
    const size_t sibling = index ^ 1;
    const uint64_t digest =
        sibling < level.size() ? level[sibling] : level[index];
    proof.push_back({digest, (index & 1) != 0});
    index /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(uint64_t leaf_value,
                        const std::vector<ProofNode>& proof,
                        uint64_t root_digest) {
  uint64_t digest = HashLeaf(leaf_value);
  for (const ProofNode& node : proof) {
    digest = node.sibling_on_left
                 ? HashInterior(node.sibling_digest, digest)
                 : HashInterior(digest, node.sibling_digest);
  }
  return digest == root_digest;
}

}  // namespace pbs
