#include "pbs/common/mset_hash.h"

#include "pbs/hash/xxhash64.h"

namespace pbs {

void MsetHash::Add(uint64_t element) {
  const uint64_t h1 = XxHash64(element, salt_ ^ 0x4D534554ull);  // "MSET"
  const uint64_t h2 = XxHash64(element, salt_ ^ 0x58303152ull);
  const uint64_t h3 = XxHash64(element, salt_ ^ 0x4D495833ull);
  xor_ ^= h1;
  sum_ += h2;
  mix_ += h3 ^ (h1 * 0x9E3779B97F4A7C15ull);
}

uint64_t MsetHash::Fold64() const {
  // SplitMix64 finalizer over the three lanes (plus the salt, so folds
  // under different salts stay incomparable even for equal states).
  uint64_t h = xor_ + 0x9E3779B97F4A7C15ull * sum_;
  h ^= mix_ + 0x517CC1B727220A95ull * salt_;
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

void MsetHash::Remove(uint64_t element) {
  const uint64_t h1 = XxHash64(element, salt_ ^ 0x4D534554ull);
  const uint64_t h2 = XxHash64(element, salt_ ^ 0x58303152ull);
  const uint64_t h3 = XxHash64(element, salt_ ^ 0x4D495833ull);
  xor_ ^= h1;
  sum_ -= h2;
  mix_ -= h3 ^ (h1 * 0x9E3779B97F4A7C15ull);
}

}  // namespace pbs
