#include "pbs/common/mset_hash.h"

#include "pbs/hash/xxhash64.h"

namespace pbs {

void MsetHash::Add(uint64_t element) {
  const uint64_t h1 = XxHash64(element, salt_ ^ 0x4D534554ull);  // "MSET"
  const uint64_t h2 = XxHash64(element, salt_ ^ 0x58303152ull);
  const uint64_t h3 = XxHash64(element, salt_ ^ 0x4D495833ull);
  xor_ ^= h1;
  sum_ += h2;
  mix_ += h3 ^ (h1 * 0x9E3779B97F4A7C15ull);
}

void MsetHash::Remove(uint64_t element) {
  const uint64_t h1 = XxHash64(element, salt_ ^ 0x4D534554ull);
  const uint64_t h2 = XxHash64(element, salt_ ^ 0x58303152ull);
  const uint64_t h3 = XxHash64(element, salt_ ^ 0x4D495833ull);
  xor_ ^= h1;
  sum_ -= h2;
  mix_ -= h3 ^ (h1 * 0x9E3779B97F4A7C15ull);
}

}  // namespace pbs
