#include "pbs/common/bitio.h"

namespace pbs {

void BitWriter::WriteBits(uint64_t value, int bits) {
  if (bits <= 0) return;
  if (bits < 64) value &= (uint64_t{1} << bits) - 1;
  int written = 0;
  while (written < bits) {
    size_t byte_index = bit_size_ / 8;
    int bit_offset = static_cast<int>(bit_size_ % 8);
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    int room = 8 - bit_offset;
    int take = bits - written < room ? bits - written : room;
    uint8_t chunk = static_cast<uint8_t>((value >> written) & ((1u << take) - 1));
    bytes_[byte_index] |= static_cast<uint8_t>(chunk << bit_offset);
    bit_size_ += take;
    written += take;
  }
}

void BitWriter::WriteVarint(uint64_t value) {
  while (true) {
    uint64_t group = value & 0x7F;
    value >>= 7;
    WriteBits(group, 7);
    WriteBit(value != 0);
    if (value == 0) break;
  }
}

std::vector<uint8_t> BitWriter::TakeBytes() {
  std::vector<uint8_t> out = std::move(bytes_);
  bytes_.clear();
  bit_size_ = 0;
  return out;
}

uint64_t BitReader::ReadBits(int bits) {
  if (bits <= 0) return 0;
  if (pos_ + static_cast<size_t>(bits) > size_bits_) {
    overflowed_ = true;
    pos_ = size_bits_;
    return 0;
  }
  uint64_t value = 0;
  int read = 0;
  while (read < bits) {
    size_t byte_index = pos_ / 8;
    int bit_offset = static_cast<int>(pos_ % 8);
    int room = 8 - bit_offset;
    int take = bits - read < room ? bits - read : room;
    uint64_t chunk = (data_[byte_index] >> bit_offset) & ((1u << take) - 1);
    value |= chunk << read;
    pos_ += take;
    read += take;
  }
  return value;
}

uint64_t BitReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    uint64_t group = ReadBits(7);
    value |= group << shift;
    shift += 7;
    if (!ReadBit() || overflowed_ || shift >= 64) break;
  }
  return value;
}

}  // namespace pbs
