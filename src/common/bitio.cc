#include "pbs/common/bitio.h"

#include <cassert>
#include <cstring>

namespace pbs {

void BitWriter::WriteBits(uint64_t value, int bits) {
  if (bits <= 0) return;
  if (bits < 64) value &= (uint64_t{1} << bits) - 1;
  int written = 0;
  while (written < bits) {
    size_t byte_index = bit_size_ / 8;
    int bit_offset = static_cast<int>(bit_size_ % 8);
    if (byte_index == bytes_.size()) bytes_.push_back(0);
    int room = 8 - bit_offset;
    int take = bits - written < room ? bits - written : room;
    uint8_t chunk = static_cast<uint8_t>((value >> written) & ((1u << take) - 1));
    bytes_[byte_index] |= static_cast<uint8_t>(chunk << bit_offset);
    bit_size_ += take;
    written += take;
  }
}

void BitWriter::WriteVarint(uint64_t value) {
  while (true) {
    uint64_t group = value & 0x7F;
    value >>= 7;
    WriteBits(group, 7);
    WriteBit(value != 0);
    if (value == 0) break;
  }
}

void BitWriter::AlignToByte() {
  const int slack = static_cast<int>(bit_size_ % 8);
  if (slack != 0) WriteBits(0, 8 - slack);
}

void BitWriter::WriteBytes(const uint8_t* data, size_t size) {
  assert(bit_size_ % 8 == 0 && "WriteBytes requires byte alignment");
  bytes_.insert(bytes_.end(), data, data + size);
  bit_size_ += size * 8;
}

std::vector<uint8_t> BitWriter::TakeBytes() {
  std::vector<uint8_t> out = std::move(bytes_);
  bytes_.clear();
  bit_size_ = 0;
  return out;
}

uint64_t BitReader::ReadBits(int bits) {
  if (bits <= 0) return 0;
  if (pos_ + static_cast<size_t>(bits) > size_bits_) {
    overflowed_ = true;
    pos_ = size_bits_;
    return 0;
  }
  uint64_t value = 0;
  int read = 0;
  while (read < bits) {
    size_t byte_index = pos_ / 8;
    int bit_offset = static_cast<int>(pos_ % 8);
    int room = 8 - bit_offset;
    int take = bits - read < room ? bits - read : room;
    uint64_t chunk = (data_[byte_index] >> bit_offset) & ((1u << take) - 1);
    value |= chunk << read;
    pos_ += take;
    read += take;
  }
  return value;
}

void BitReader::AlignToByte() {
  const int slack = static_cast<int>(pos_ % 8);
  if (slack != 0) ReadBits(8 - slack);
}

bool BitReader::ReadBytes(uint8_t* out, size_t size) {
  assert(pos_ % 8 == 0 && "ReadBytes requires byte alignment");
  if (pos_ + size * 8 > size_bits_) {
    overflowed_ = true;
    pos_ = size_bits_;
    return false;
  }
  std::memcpy(out, data_ + pos_ / 8, size);
  pos_ += size * 8;
  return true;
}

uint64_t BitReader::ReadVarint() {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    uint64_t group = ReadBits(7);
    value |= group << shift;
    shift += 7;
    if (!ReadBit() || overflowed_ || shift >= 64) break;
  }
  return value;
}

}  // namespace pbs
