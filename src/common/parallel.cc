#include "pbs/common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace pbs {

struct ParallelFor::Impl {
  std::mutex mu;
  std::condition_variable work_ready;
  std::condition_variable work_done;
  // Guarded by mu: a new job is published by bumping `generation` with
  // `body`/`count` set; workers snapshot the generation they last served.
  uint64_t generation = 0;
  size_t count = 0;
  const std::function<void(size_t, int)>* body = nullptr;
  int active_workers = 0;  // Spawned workers still running the current job.
  bool shutting_down = false;
  // Work distribution: each worker claims indices with fetch_add. Plain
  // increments (chunk size 1) are right for this pool's use -- a few
  // hundred group decodes of microseconds each.
  std::atomic<size_t> next{0};
  std::vector<std::thread> workers;

  void WorkerLoop(int worker_index) {
    uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(size_t, int)>* job = nullptr;
      size_t job_count = 0;
      {
        std::unique_lock<std::mutex> lock(mu);
        work_ready.wait(lock, [&] {
          return shutting_down || generation != seen_generation;
        });
        if (shutting_down) return;
        seen_generation = generation;
        job = body;
        job_count = count;
      }
      size_t i;
      while ((i = next.fetch_add(1, std::memory_order_relaxed)) < job_count) {
        (*job)(i, worker_index);
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--active_workers == 0) work_done.notify_one();
      }
    }
  }
};

int ParallelFor::ResolveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ParallelFor::ParallelFor(int threads) : threads_(threads < 1 ? 1 : threads) {
  if (threads_ == 1) return;
  impl_ = std::make_unique<Impl>();
  impl_->workers.reserve(threads_ - 1);
  for (int w = 1; w < threads_; ++w) {
    impl_->workers.emplace_back([this, w] { impl_->WorkerLoop(w); });
  }
}

ParallelFor::~ParallelFor() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down = true;
  }
  impl_->work_ready.notify_all();
  for (std::thread& t : impl_->workers) t.join();
}

void ParallelFor::Run(size_t count,
                      const std::function<void(size_t, int)>& body) {
  if (count == 0) return;
  if (!impl_ || count == 1) {
    // Inline: a 1-thread pool, or nothing worth waking workers for.
    for (size_t i = 0; i < count; ++i) body(i, 0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->body = &body;
    impl_->count = count;
    impl_->next.store(0, std::memory_order_relaxed);
    impl_->active_workers = static_cast<int>(impl_->workers.size());
    ++impl_->generation;
  }
  impl_->work_ready.notify_all();

  // The calling thread is worker 0.
  size_t i;
  while ((i = impl_->next.fetch_add(1, std::memory_order_relaxed)) < count) {
    body(i, 0);
  }

  std::unique_lock<std::mutex> lock(impl_->mu);
  impl_->work_done.wait(lock, [&] { return impl_->active_workers == 0; });
  impl_->body = nullptr;
}

}  // namespace pbs
