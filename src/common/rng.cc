#include "pbs/common/rng.h"

namespace pbs {

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

uint64_t Xoshiro256::Next() {
  uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Xoshiro256::NextBounded(uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's multiply-then-reject method.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

}  // namespace pbs
