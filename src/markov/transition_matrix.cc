#include "pbs/markov/transition_matrix.h"

#include <cassert>

#include "pbs/markov/balls_in_bins.h"

namespace pbs {

TransitionMatrix TransitionMatrix::ForRound(int n, int t) {
  BallsInBinsTable dp(n, t);
  TransitionMatrix m(t + 1);
  for (int i = 0; i <= t; ++i) {
    for (int j = 0; j <= t; ++j) {
      m.data_[i * m.dim_ + j] = dp.Transition(i, j);
    }
  }
  return m;
}

TransitionMatrix TransitionMatrix::Multiply(const TransitionMatrix& other) const {
  assert(dim_ == other.dim_);
  TransitionMatrix out(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    for (size_t k = 0; k < dim_; ++k) {
      const double v = data_[i * dim_ + k];
      if (v == 0.0) continue;
      for (size_t j = 0; j < dim_; ++j) {
        out.data_[i * dim_ + j] += v * other.data_[k * dim_ + j];
      }
    }
  }
  return out;
}

TransitionMatrix TransitionMatrix::Power(int r) const {
  assert(r >= 0);
  TransitionMatrix result(dim_);
  for (size_t i = 0; i < dim_; ++i) result.data_[i * dim_ + i] = 1.0;
  TransitionMatrix base = *this;
  while (r > 0) {
    if (r & 1) result = result.Multiply(base);
    r >>= 1;
    if (r > 0) base = base.Multiply(base);
  }
  return result;
}

double TransitionMatrix::RowSum(int i) const {
  double sum = 0.0;
  for (size_t j = 0; j < dim_; ++j) sum += data_[i * dim_ + j];
  return sum;
}

}  // namespace pbs
