#include "pbs/markov/success_probability.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace pbs {

namespace {

// Thread-safe log-gamma: libm's lgamma() writes the process-global
// `signgam`, a data race when concurrent sessions plan parameters at the
// same time (flagged by the TSan CI job). All arguments here are
// positive integers + 1, where the sign is always +, so the signgam
// side channel carries no information anyway; lgamma_r discards it into
// a local instead.
double LGamma(double v) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(v, &sign);
#else
  return std::lgamma(v);
#endif
}

}  // namespace

double BinomialPmf(int d, double p, int x) {
  if (x < 0 || x > d) return 0.0;
  if (p <= 0.0) return x == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return x == d ? 1.0 : 0.0;
  const double log_choose =
      LGamma(d + 1.0) - LGamma(x + 1.0) - LGamma(d - x + 1.0);
  const double log_pmf = log_choose + x * std::log(p) +
                         (d - x) * std::log1p(-p);
  return std::exp(log_pmf);
}

double SingleGroupSuccess(int n, int t, int r, int x) {
  assert(x >= 0);
  if (x == 0) return 1.0;
  if (x > t) return 0.0;  // Appendix D: pessimistic truncation.
  const TransitionMatrix m = TransitionMatrix::ForRound(n, t);
  return m.Power(r).At(x, 0);
}

double Alpha(int n, int t, int r, int d, int g) {
  assert(g >= 1);
  const TransitionMatrix mr = TransitionMatrix::ForRound(n, t).Power(r);
  const double p = 1.0 / static_cast<double>(g);
  double alpha = 0.0;
  for (int x = 0; x <= t && x <= d; ++x) {
    const double w = BinomialPmf(d, p, x);
    const double success = x == 0 ? 1.0 : mr.At(x, 0);
    alpha += w * success;
  }
  return alpha;
}

double OverallSuccessLowerBound(double alpha, int g) {
  const double alpha_g = std::pow(alpha, g);
  return 1.0 - 2.0 * (1.0 - alpha_g);
}

double SuccessLowerBound(int n, int t, int r, int d, int g) {
  return OverallSuccessLowerBound(Alpha(n, t, r, d, g), g);
}

namespace {

// S_r(x) with three-way splits, memoized over (r, x). `mp[r]` caches M^r.
class SplitSuccessModel {
 public:
  SplitSuccessModel(int n, int t, int max_r, int max_x)
      : t_(t), max_x_(max_x),
        cache_(static_cast<size_t>(max_r + 1) * (max_x + 1), -1.0) {
    TransitionMatrix m = TransitionMatrix::ForRound(n, t);
    powers_.reserve(max_r + 1);
    powers_.push_back(m.Power(0));
    for (int r = 1; r <= max_r; ++r) {
      powers_.push_back(powers_.back().Multiply(m));
    }
    // Precompute log-factorials for multinomial weights.
    log_fact_.resize(max_x + 1, 0.0);
    for (int i = 1; i <= max_x; ++i) {
      log_fact_[i] = log_fact_[i - 1] + std::log(static_cast<double>(i));
    }
  }

  double Success(int r, int x) {
    if (x == 0) return 1.0;
    if (r <= 0) return 0.0;
    if (x > max_x_) return 0.0;  // Beyond tracked range: pessimistic.
    double& slot = cache_[static_cast<size_t>(r) * (max_x_ + 1) + x];
    if (slot >= 0.0) return slot;
    double result;
    if (x <= t_) {
      result = powers_[r].At(x, 0);
    } else {
      // BCH failure burns this round; the group splits into three
      // sub-group pairs by an independent hash (multinomial 1/3 each),
      // and every part must finish within r - 1 rounds.
      const double log3 = std::log(3.0);
      double acc = 0.0;
      for (int x1 = 0; x1 <= x; ++x1) {
        const double s1 = Success(r - 1, x1);
        if (s1 == 0.0) continue;
        for (int x2 = 0; x2 <= x - x1; ++x2) {
          const int x3 = x - x1 - x2;
          const double s2 = Success(r - 1, x2);
          if (s2 == 0.0) continue;
          const double s3 = Success(r - 1, x3);
          if (s3 == 0.0) continue;
          const double log_w = log_fact_[x] - log_fact_[x1] -
                               log_fact_[x2] - log_fact_[x3] - x * log3;
          acc += std::exp(log_w) * s1 * s2 * s3;
        }
      }
      result = acc;
    }
    slot = result;
    return result;
  }

 private:
  int t_;
  int max_x_;
  std::vector<TransitionMatrix> powers_;
  std::vector<double> cache_;
  std::vector<double> log_fact_;
};

// Track the Binomial tail far enough that the ignored mass is < 1e-12.
int TailCutoff(int d, double p, int t) {
  int x = t;
  double tail = 1.0;
  // Crude but safe: extend until pmf < 1e-13 and x > 4 * mean.
  const double mean = d * p;
  while (x < d && (BinomialPmf(d, p, x) > 1e-13 || x < 4 * mean + 10)) {
    ++x;
    if (x > t + 200) break;  // Defensive cap; pmf is long gone by here.
  }
  (void)tail;
  return x;
}

}  // namespace

double SingleGroupSuccessWithSplits(int n, int t, int r, int x) {
  SplitSuccessModel model(n, t, r, std::max(x, t) + 1);
  return model.Success(r, x);
}

double AlphaWithSplits(int n, int t, int r, int d, int g) {
  assert(g >= 1);
  const double p = 1.0 / static_cast<double>(g);
  const int x_max = std::min(d, TailCutoff(d, p, t));
  SplitSuccessModel model(n, t, r, x_max);
  double alpha = 0.0;
  for (int x = 0; x <= x_max; ++x) {
    alpha += BinomialPmf(d, p, x) * model.Success(r, x);
  }
  return alpha;
}

double SuccessLowerBoundWithSplits(int n, int t, int r, int d, int g) {
  return OverallSuccessLowerBound(AlphaWithSplits(n, t, r, d, g), g);
}

double AlphaCalibrated(int n, int t, int r, int d, int g, double base_penalty,
                       double split_penalty) {
  assert(g >= 1);
  const double p = 1.0 / static_cast<double>(g);
  const int x_max = std::min(d, TailCutoff(d, p, t));
  SplitSuccessModel model(n, t, r, x_max);
  double fail = 0.0;
  for (int x = 1; x <= x_max; ++x) {
    const double w = BinomialPmf(d, p, x);
    const double path_fail = 1.0 - model.Success(r, x);
    fail += w * path_fail * (x <= t ? base_penalty : split_penalty);
  }
  // Mass beyond the tracked tail counts as full failure.
  double tracked = 0.0;
  for (int x = 0; x <= x_max; ++x) tracked += BinomialPmf(d, p, x);
  fail += std::max(0.0, 1.0 - tracked);
  return std::max(0.0, 1.0 - fail);
}

double SuccessLowerBoundCalibrated(int n, int t, int r, int d, int g,
                                   double base_penalty,
                                   double split_penalty) {
  return OverallSuccessLowerBound(
      AlphaCalibrated(n, t, r, d, g, base_penalty, split_penalty), g);
}

}  // namespace pbs
