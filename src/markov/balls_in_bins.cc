#include "pbs/markov/balls_in_bins.h"

#include <cassert>

namespace pbs {

BallsInBinsTable::BallsInBinsTable(int n, int t_max)
    : n_(n), t_max_(t_max) {
  assert(n >= 1 && t_max >= 0);
  const size_t dim = static_cast<size_t>(t_max_ + 1);
  table_.assign(dim * dim * dim, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n_);

  // Base case i = 0: no balls, no bad balls, no bad bins.
  table_[Index(0, 0, 0)] = 1.0;

  for (int i = 1; i <= t_max_; ++i) {
    for (int j = 0; j <= i; ++j) {
      // k bad bins each hold >= 2 bad balls, so k <= j / 2.
      for (int k = 0; k <= j / 2; ++k) {
        double p = 0.0;
        // Case 1: the i-th ball joins a bin holding a single (good) ball,
        // converting it to a bad bin with two bad balls. The previous
        // sub-state was (j-2, k-1) with (i-1)-(j-2) = i-j+1 good bins.
        if (j >= 2 && k >= 1) {
          p += static_cast<double>(i - j + 1) * inv_n *
               table_[Index(i - 1, j - 2, k - 1)];
        }
        // Case 2: the i-th ball joins one of the k existing bad bins.
        if (j >= 1) {
          p += static_cast<double>(k) * inv_n *
               table_[Index(i - 1, j - 1, k)];
        }
        // Case 3: the i-th ball opens an empty bin (becomes a good ball).
        // Previous sub-state (j, k) had (i-1-j) good bins and k bad bins.
        {
          const double occupied =
              static_cast<double>((i - 1 - j) + k) * inv_n;
          if (i - 1 - j >= 0) {
            p += (1.0 - occupied) * table_[Index(i - 1, j, k)];
          }
        }
        table_[Index(i, j, k)] = p;
      }
    }
  }
}

double BallsInBinsTable::Prob(int i, int j, int k) const {
  if (i < 0 || j < 0 || k < 0 || i > t_max_ || j > t_max_ || k > t_max_) {
    return 0.0;
  }
  return table_[Index(i, j, k)];
}

double BallsInBinsTable::Transition(int i, int j) const {
  if (i < 0 || j < 0 || i > t_max_ || j > t_max_) return 0.0;
  double sum = 0.0;
  for (int k = 0; k <= j / 2; ++k) sum += Prob(i, j, k);
  return sum;
}

double IdealCaseProbability(int d, int n) {
  double p = 1.0;
  for (int k = 1; k < d; ++k) {
    p *= 1.0 - static_cast<double>(k) / static_cast<double>(n);
    if (p <= 0.0) return 0.0;
  }
  return p;
}

}  // namespace pbs
