#include "pbs/markov/piecewise.h"

#include "pbs/markov/success_probability.h"
#include "pbs/markov/transition_matrix.h"

namespace pbs {

double ExpectedReconciledWithin(int n, int t, int k, int x) {
  if (x <= 0) return 0.0;
  if (x > t) return 0.0;  // Truncated as in Appendix D.
  const TransitionMatrix mk = TransitionMatrix::ForRound(n, t).Power(k);
  double expected = 0.0;
  for (int y = 0; y <= x; ++y) {
    expected += static_cast<double>(x - y) * mk.At(x, y);
  }
  return expected;
}

std::vector<double> ExpectedRoundFractions(int n, int t, int d, int g,
                                           int rounds) {
  const TransitionMatrix m = TransitionMatrix::ForRound(n, t);
  const double p = 1.0 / static_cast<double>(g);

  // within[k] = E[reconciled within k rounds] for one group, unconditioned.
  std::vector<double> within(rounds + 1, 0.0);
  TransitionMatrix mk = m.Power(0);
  for (int k = 1; k <= rounds; ++k) {
    mk = mk.Multiply(m);
    double acc = 0.0;
    for (int x = 1; x <= t && x <= d; ++x) {
      const double w = BinomialPmf(d, p, x);
      double cond = 0.0;
      for (int y = 0; y <= x; ++y) {
        cond += static_cast<double>(x - y) * mk.At(x, y);
      }
      acc += w * cond;
    }
    within[k] = acc;
  }

  std::vector<double> fractions(rounds, 0.0);
  for (int k = 1; k <= rounds; ++k) {
    fractions[k - 1] = (within[k] - within[k - 1]) * static_cast<double>(g) /
                       static_cast<double>(d);
  }
  return fractions;
}

}  // namespace pbs
