#include "pbs/markov/optimizer.h"

#include <cmath>

#include "pbs/markov/success_probability.h"

namespace pbs {

namespace {

int GroupsFor(int d, int delta) {
  if (d <= 0) return 1;
  return (d + delta - 1) / delta;
}

}  // namespace

std::vector<OptimizerCell> EvaluateGrid(const OptimizerOptions& options) {
  std::vector<OptimizerCell> cells;
  const int g = GroupsFor(options.d, options.delta);
  const int t_min = static_cast<int>(std::ceil(options.t_low * options.delta));
  const int t_max =
      static_cast<int>(std::floor(options.t_high * options.delta));

  for (int m = options.min_m; m <= options.max_m; ++m) {
    const int n = (1 << m) - 1;
    for (int t = t_min; t <= t_max; ++t) {
      OptimizerCell cell;
      cell.n = n;
      cell.t = t;
      cell.lower_bound =
          SuccessLowerBoundCalibrated(n, t, options.r, options.d, g,
                                      options.base_penalty,
                                      options.split_penalty);
      cell.variable_bits = static_cast<double>(t + options.delta) * m;
      cell.total_bits =
          cell.variable_bits +
          static_cast<double>(options.delta + 1) * options.sig_bits;
      cell.feasible = cell.lower_bound >= options.p0;
      cells.push_back(cell);
    }
  }
  return cells;
}

std::optional<PbsPlanParams> OptimizeParams(const OptimizerOptions& options) {
  const auto cells = EvaluateGrid(options);
  const OptimizerCell* best = nullptr;
  for (const auto& cell : cells) {
    if (!cell.feasible) continue;
    if (best == nullptr || cell.variable_bits < best->variable_bits ||
        (cell.variable_bits == best->variable_bits &&
         cell.lower_bound > best->lower_bound)) {
      best = &cell;
    }
  }
  if (best == nullptr) return std::nullopt;

  PbsPlanParams params;
  params.g = GroupsFor(options.d, options.delta);
  params.n = best->n;
  params.m = static_cast<int>(std::round(std::log2(best->n + 1)));
  params.t = best->t;
  params.lower_bound = best->lower_bound;
  params.bits_per_group = best->total_bits;
  return params;
}

}  // namespace pbs
