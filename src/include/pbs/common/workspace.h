// Reusable scratch memory for the decode/encode hot path.
//
// The paper's computational claim (Section 7: PBS decodes an order of
// magnitude faster than PinSketch because each per-group BCH decode is
// tiny) only survives implementation if the per-decode constant stays
// small -- and a heap allocation per temporary vector per layer per round
// dwarfs the field arithmetic it wraps. A Workspace is an arena of
// growable, recyclable byte buffers from which every hot-path layer
// (gf/ root search, bch/ decoders, ibf/ peeling, core/ round processing)
// borrows typed scratch via RAII leases. Buffers are returned on lease
// destruction and reused by later borrows, so once a steady state is
// reached (every call site has seen its peak size), borrowing allocates
// nothing: tests/core/hotpath_alloc_test.cc pins this with counting
// global new/delete hooks.
//
// Ownership rules (see docs/ARCHITECTURE.md, "Hot path & Workspace"):
//  * A Workspace is single-threaded state. Sessions/endpoints own one;
//    kernels take `Workspace&` and may borrow freely, including from
//    nested calls (leases need not be released LIFO).
//  * A Scratch<T> lease pins its bytes until destroyed; Resize() may move
//    them (re-fetch data() afterwards), returning the lease recycles them.
//  * Functions taking `Workspace&` must not keep references to borrowed
//    memory past their return unless the lease itself is handed back to
//    the caller.

#ifndef PBS_COMMON_WORKSPACE_H_
#define PBS_COMMON_WORKSPACE_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace pbs {

/// Minimal non-owning view of a contiguous T range (C++17 stand-in for
/// std::span). Hot-path kernel signatures take Span instead of
/// std::vector so callers can pass workspace scratch, vector storage, or
/// sub-ranges without copying.
template <typename T>
class Span {
 public:
  Span() = default;
  Span(T* data, size_t size) : data_(data), size_(size) {}
  /// Implicit view of vector storage (const and mutable).
  template <typename U, typename = std::enable_if_t<
                            std::is_same_v<std::remove_const_t<T>, U>>>
  Span(std::vector<U>& v) : data_(v.data()), size_(v.size()) {}  // NOLINT
  template <typename U, typename = std::enable_if_t<
                            std::is_same_v<std::remove_const_t<T>, U>>>
  Span(const std::vector<U>& v)  // NOLINT
      : data_(v.data()), size_(v.size()) {
    static_assert(std::is_const_v<T>,
                  "mutable Span over const vector storage");
  }

  T* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) const {
    assert(i < size_);
    return data_[i];
  }
  T* begin() const { return data_; }
  T* end() const { return data_ + size_; }
  /// The first `n` elements (n <= size()).
  Span<T> first(size_t n) const {
    assert(n <= size_);
    return Span<T>(data_, n);
  }
  /// Conversion to a const view.
  operator Span<const T>() const { return {data_, size_}; }  // NOLINT

 private:
  T* data_ = nullptr;
  size_t size_ = 0;
};

class Workspace;

/// RAII lease of a typed scratch buffer drawn from a Workspace. Move-only;
/// destruction returns the underlying bytes to the pool for reuse.
template <typename T>
class Scratch {
  static_assert(std::is_trivially_copyable_v<T>,
                "Workspace scratch holds raw bytes; T must be trivially "
                "copyable");

 public:
  Scratch() = default;
  Scratch(Scratch&& other) noexcept { *this = std::move(other); }
  Scratch& operator=(Scratch&& other) noexcept {
    Release();
    ws_ = other.ws_;
    buf_ = other.buf_;
    size_ = other.size_;
    other.ws_ = nullptr;
    other.buf_ = nullptr;
    other.size_ = 0;
    return *this;
  }
  Scratch(const Scratch&) = delete;
  Scratch& operator=(const Scratch&) = delete;
  ~Scratch() { Release(); }

  T* data() const {
    return buf_ ? reinterpret_cast<T*>(buf_->data()) : nullptr;
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T& operator[](size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  Span<T> span() const { return Span<T>(data(), size_); }
  Span<const T> cspan() const { return Span<const T>(data(), size_); }

  /// Grows (or shrinks) the lease to `n` elements; existing contents are
  /// preserved up to min(old, new) and any new tail is zeroed. May move
  /// the bytes -- re-fetch data() after calling. Allocates only when `n`
  /// exceeds every size this underlying buffer has ever had.
  void Resize(size_t n);

  /// Returns the buffer to the pool early (also done by the destructor).
  void Release();

 private:
  friend class Workspace;
  Scratch(Workspace* ws, std::vector<unsigned char>* buf, size_t n)
      : ws_(ws), buf_(buf), size_(n) {}

  Workspace* ws_ = nullptr;
  std::vector<unsigned char>* buf_ = nullptr;
  size_t size_ = 0;
};

/// A pool of recyclable scratch buffers. See the file comment for the
/// ownership rules; see Take<T>() for the borrowing primitive.
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// Borrows a zero-filled scratch buffer of `n` elements of T. The
  /// lease's bytes stay valid (and exclusively owned) until the returned
  /// Scratch is destroyed or Release()d.
  template <typename T>
  Scratch<T> Take(size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "pool buffers are new-aligned only");
    std::vector<unsigned char>* buf = Borrow(n * sizeof(T));
    return Scratch<T>(this, buf, n);
  }

  /// Number of buffers currently held by the pool (not leased out).
  size_t free_buffers() const { return free_.size(); }
  /// Number of leases currently outstanding.
  size_t outstanding() const { return outstanding_; }
  /// Total bytes of backing capacity across all pool-owned buffers,
  /// leased or free. Stable across iterations == steady state reached.
  size_t bytes_reserved() const { return bytes_reserved_; }

 private:
  template <typename T>
  friend class Scratch;

  std::vector<unsigned char>* Borrow(size_t bytes);
  void FitAndZero(std::vector<unsigned char>* buf, size_t bytes,
                  size_t preserve);
  void Return(std::vector<unsigned char>* buf);

  // All buffers ever created, owned here; free_ holds the subset not
  // currently leased. Raw pointers into owned_ stay stable because the
  // unique_ptr targets never move.
  std::vector<std::unique_ptr<std::vector<unsigned char>>> owned_;
  std::vector<std::vector<unsigned char>*> free_;
  size_t outstanding_ = 0;
  size_t bytes_reserved_ = 0;
};

template <typename T>
void Scratch<T>::Resize(size_t n) {
  assert(ws_ != nullptr);
  ws_->FitAndZero(buf_, n * sizeof(T), size_ * sizeof(T));
  size_ = n;
}

template <typename T>
void Scratch<T>::Release() {
  if (ws_ != nullptr) ws_->Return(buf_);
  ws_ = nullptr;
  buf_ = nullptr;
  size_ = 0;
}

}  // namespace pbs

#endif  // PBS_COMMON_WORKSPACE_H_
