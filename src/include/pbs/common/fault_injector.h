// Deterministic fault injection for the framed session layer.
//
// FaultyTransport decorates any ByteTransport with a *seeded* schedule of
// send-side faults: whole-frame drops, single-bit corruption, truncation,
// fixed delays, short writes, and mid-session disconnects at an exact
// frame or byte boundary. Because the decorator is frame-aware (it carves
// the outbound byte stream into wire frames with InspectFrameHeader
// before deciding each frame's fate), every fault lands on a protocol
// boundary the tests can reason about: "drop the 3rd frame" or
// "disconnect before frame k" reproduce bit-identically from the seed.
//
// The schedule is configured by a FaultSpec, parsed from a compact
// key=value string (`loss=0.01,seed=42`) that travels through the
// PBS_FAULT_SPEC environment variable (CI fault legs) or a CLI flag
// (`pbs_cli connect --fault ...`). An all-defaults spec is inactive: the
// decorator then forwards bytes untouched but still counts frames, which
// the disconnect-at-every-frame tests use to size their schedules.
//
// Faults are send-side only; wrap both endpoints (with distinct seeds)
// for bidirectional damage. Receive paths forward to the inner transport
// unchanged, so a FaultyTransport composes with the blocking drivers,
// the resilient reconnect runner, and the benches alike.

#ifndef PBS_COMMON_FAULT_INJECTOR_H_
#define PBS_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pbs/common/rng.h"
#include "pbs/core/transport.h"

namespace pbs {

/// One reproducible fault schedule. Probabilities are per *frame*, not
/// per byte, so a spec means the same thing for a 60-byte handshake frame
/// and a 2 MiB sketch frame.
struct FaultSpec {
  double loss = 0.0;      ///< P(drop a frame entirely).
  double corrupt = 0.0;   ///< P(flip one random payload/header bit).
  double truncate = 0.0;  ///< P(send a prefix, then kill the link).
  int delay_ms = 0;       ///< Fixed delay before each forwarded frame.
  uint64_t seed = 1;      ///< Drives every probabilistic choice.
  /// Kill the link immediately before the Nth outgoing frame (0-based).
  /// -1 = never.
  long long disconnect_after_frames = -1;
  /// Kill the link once this many bytes were forwarded. -1 = never.
  long long disconnect_after_bytes = -1;
  /// Deliver each frame in random 1..17-byte chunks (stresses the
  /// peer's partial-frame reassembly).
  bool short_writes = false;
  /// Apply the schedule to the first connection only (reconnects run
  /// clean). Used by `pbs_cli connect --fault ...,once=1` so a forced
  /// disconnect exercises resume instead of looping forever.
  bool first_conn_only = false;

  /// True when any fault can ever fire.
  bool active() const;

  /// Parses `loss=0.01,corrupt=0.001,seed=42,...` (keys: loss, corrupt,
  /// truncate, delay_ms, seed, disconnect_after_frames,
  /// disconnect_after_bytes, short_writes, once). Unknown keys and
  /// out-of-range values fail with a diagnostic; an empty string parses
  /// to the inactive default spec.
  static bool Parse(const std::string& text, FaultSpec* spec,
                    std::string* error);

  /// Parses the PBS_FAULT_SPEC environment variable. Unset or empty
  /// yields the inactive default spec (and returns true).
  static bool FromEnv(FaultSpec* spec, std::string* error);
};

/// Monotonic tallies of what the injector actually did — assertions pin
/// determinism ("same seed, same counts") and schedules size themselves
/// ("a clean session is N frames; now disconnect before each of them").
struct FaultStats {
  uint64_t frames_seen = 0;       ///< Complete frames carved from sends.
  uint64_t frames_dropped = 0;    ///< Frames silently discarded.
  uint64_t frames_corrupted = 0;  ///< Frames forwarded with one bit flipped.
  uint64_t frames_truncated = 0;  ///< Frames cut short (link then killed).
  uint64_t disconnects = 0;       ///< Scheduled link kills that fired.
  uint64_t bytes_forwarded = 0;   ///< Bytes actually handed to the inner
                                  ///< transport.
};

/// ByteTransport decorator applying a FaultSpec to the send direction.
/// Owns the inner transport. Once a truncation or scheduled disconnect
/// kills the link, every further Send/Recv fails like a closed peer.
class FaultyTransport : public ByteTransport {
 public:
  FaultyTransport(std::unique_ptr<ByteTransport> inner, const FaultSpec& spec);
  ~FaultyTransport() override;

  bool Send(const uint8_t* data, size_t size) override;
  bool Recv(uint8_t* data, size_t size) override;
  size_t TryRecv(uint8_t* data, size_t size) override;
  RecvStatus RecvTimed(uint8_t* data, size_t size, int timeout_ms) override;

  const FaultStats& stats() const { return stats_; }
  const FaultSpec& spec() const { return spec_; }

 private:
  bool ForwardFrame(const uint8_t* data, size_t size);
  bool ApplyFaults(const uint8_t* frame, size_t size);

  std::unique_ptr<ByteTransport> inner_;
  FaultSpec spec_;
  Xoshiro256 rng_;
  std::vector<uint8_t> pending_;  // Send bytes awaiting a frame boundary.
  std::vector<uint8_t> scratch_;  // Mutable copy for corruption faults.
  bool dead_ = false;
  FaultStats stats_;
};

/// Convenience factory mirroring MakeFdTransport and friends.
std::unique_ptr<ByteTransport> MakeFaultyTransport(
    std::unique_ptr<ByteTransport> inner, const FaultSpec& spec);

}  // namespace pbs

#endif  // PBS_COMMON_FAULT_INJECTOR_H_
