// Bit-level serialization used for all PBS wire messages.
//
// The PBS protocol (and its baselines) transmit quantities whose natural
// width is not byte-aligned: BCH syndromes are m bits each (m = log2(n+1)),
// bin indices are m bits, signatures are log|U| bits. To measure the
// communication overhead the paper reports (e.g., formula (1) in Section 3.1)
// the implementation packs every message tightly with BitWriter and unpacks
// it with BitReader; the byte counts recorded in a Transcript are the sizes
// of these packed buffers.

#ifndef PBS_COMMON_BITIO_H_
#define PBS_COMMON_BITIO_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace pbs {

/// Append-only bit stream writer. Bits are packed LSB-first within bytes.
class BitWriter {
 public:
  BitWriter() = default;

  /// Appends the `bits` low-order bits of `value` (0 <= bits <= 64).
  void WriteBits(uint64_t value, int bits);

  /// Appends a single bit.
  void WriteBit(bool bit) { WriteBits(bit ? 1 : 0, 1); }

  /// Appends an unsigned integer with Elias-gamma-style varint coding
  /// (7 bits + continuation per group). Used for small counts whose width
  /// is not fixed by the protocol.
  void WriteVarint(uint64_t value);

  /// Zero-pads to the next byte boundary (no-op when already aligned).
  /// The framed wire format aligns before embedding opaque sub-messages so
  /// they can be copied out without shifting.
  void AlignToByte();

  /// Appends `size` raw bytes. The stream must be byte-aligned (call
  /// AlignToByte() first); enforced with an assert in debug builds.
  void WriteBytes(const uint8_t* data, size_t size);

  /// Number of bits written so far.
  size_t bit_size() const { return bit_size_; }

  /// Number of bytes the packed stream occupies (ceil(bit_size / 8)).
  size_t byte_size() const { return (bit_size_ + 7) / 8; }

  /// Returns the packed bytes. The final partial byte (if any) is
  /// zero-padded in its unused high bits.
  const std::vector<uint8_t>& bytes() const { return bytes_; }

  /// Moves the packed bytes out; the writer is left empty.
  std::vector<uint8_t> TakeBytes();

  /// Empties the stream but keeps the byte buffer's capacity, so a writer
  /// reused across protocol rounds stops allocating once it has seen its
  /// peak message size.
  void Clear() {
    bytes_.clear();
    bit_size_ = 0;
  }

 private:
  std::vector<uint8_t> bytes_;
  size_t bit_size_ = 0;
};

/// Sequential reader over a bit stream produced by BitWriter.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size_bytes)
      : data_(data), size_bits_(size_bytes * 8) {}
  explicit BitReader(const std::vector<uint8_t>& bytes)
      : BitReader(bytes.data(), bytes.size()) {}

  /// Reads `bits` bits (0 <= bits <= 64). Returns 0 and sets overflow on
  /// reads past the end.
  uint64_t ReadBits(int bits);

  /// Reads a single bit.
  bool ReadBit() { return ReadBits(1) != 0; }

  /// Reads a varint written by BitWriter::WriteVarint.
  uint64_t ReadVarint();

  /// Skips to the next byte boundary (no-op when already aligned).
  void AlignToByte();

  /// Reads `size` raw bytes into `out`. The stream must be byte-aligned;
  /// returns false (and sets overflow) if fewer than `size` bytes remain.
  bool ReadBytes(uint8_t* out, size_t size);

  /// True if a read has run past the end of the stream.
  bool overflowed() const { return overflowed_; }

  /// Bits remaining.
  size_t remaining_bits() const { return size_bits_ - pos_; }

 private:
  const uint8_t* data_;
  size_t size_bits_;
  size_t pos_ = 0;
  bool overflowed_ = false;
};

}  // namespace pbs

#endif  // PBS_COMMON_BITIO_H_
