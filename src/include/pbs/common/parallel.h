// A small reusable worker pool for data-parallel loops over independent
// work items.
//
// PBS's structural parallelism (Section 2.1: the g groups are hashed
// independently and their per-group BCH sketches never interact) makes the
// per-round decode an embarrassingly parallel loop. A ParallelFor owns
// threads()-1 persistent worker threads (the calling thread is worker 0)
// and partitions [0, count) over them by atomic work stealing, so a pool
// created once per endpoint amortizes thread spawn cost over every round.
//
// Ownership rules (see docs/ARCHITECTURE.md, "Hot path & Workspace"):
//  * The *endpoint* (PbsAlice/PbsBob impl) owns the pool, created lazily
//    when its config asks for more than one decode thread; kernels never
//    spawn threads themselves.
//  * Every mutable per-task state (Workspace, ParityBitmap, sketch
//    scratch, output slices) must be per-worker or per-item; the body
//    receives its worker index precisely so callers can index per-worker
//    scratch. Shared inputs (field tables, hash family, element sets)
//    must be read-only during Run().
//  * Run() is not reentrant and must always be called from the same
//    (owning) thread; the pool is otherwise content-free between calls.

#ifndef PBS_COMMON_PARALLEL_H_
#define PBS_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <memory>

namespace pbs {

/// Persistent fork-join worker pool; see the file comment.
class ParallelFor {
 public:
  /// Resolves a thread-count knob: n >= 1 means n total workers, 0 means
  /// one per hardware thread (at least 1).
  static int ResolveThreads(int requested);

  /// Creates a pool with `threads` total workers (the calling thread
  /// counts as one, so this spawns threads - 1 OS threads). `threads`
  /// is clamped to at least 1; a 1-thread pool runs bodies inline.
  explicit ParallelFor(int threads);
  ~ParallelFor();
  ParallelFor(const ParallelFor&) = delete;
  ParallelFor& operator=(const ParallelFor&) = delete;

  /// Total workers (including the calling thread).
  int threads() const { return threads_; }

  /// Runs body(index, worker) for every index in [0, count), partitioned
  /// over the pool; `worker` is in [0, threads()). Blocks until every
  /// index completed. The body must not throw and must not call Run() on
  /// the same pool.
  void Run(size_t count, const std::function<void(size_t, int)>& body);

 private:
  struct Impl;
  int threads_;
  std::unique_ptr<Impl> impl_;  // Null for the 1-thread inline pool.
};

}  // namespace pbs

#endif  // PBS_COMMON_PARALLEL_H_
