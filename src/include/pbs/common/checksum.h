// The "plain-vanilla summation" set checksum of Section 2.2.3.
//
// c(S) = (sum of all elements of S, viewed as integers) mod 2^w, where
// w = log|U| is the signature width. The paper chooses this checksum because
// (a) '+' is a very different operation from the XOR used by reconciliation,
// making false verification nearly uncorrelated with reconciliation errors,
// and (b) it is incrementally computable: adding/removing one element is a
// single modular add/subtract.

#ifndef PBS_COMMON_CHECKSUM_H_
#define PBS_COMMON_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace pbs {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `size` bytes.
/// Used by the framed wire format (core/messages.h) to reject corrupted
/// frames; `seed` chains incremental computations (pass a previous result
/// to continue where it left off).
uint32_t Crc32(const uint8_t* data, size_t size, uint32_t seed = 0);

/// Incremental modular-sum checksum over a multiset of fixed-width
/// signatures. Width `bits` must be in [1, 64].
class SetChecksum {
 public:
  explicit SetChecksum(int bits = 32) : mask_(MaskFor(bits)) {}

  /// Adds one element.
  void Add(uint64_t element) { sum_ = (sum_ + element) & mask_; }

  /// Removes one previously added element.
  void Remove(uint64_t element) { sum_ = (sum_ - element) & mask_; }

  /// Toggles membership for symmetric-difference updates: elements of
  /// A triangle D that were in A are removed, the rest are added. The caller
  /// decides which; Toggle(add=...) makes call sites explicit.
  void Toggle(uint64_t element, bool add) { add ? Add(element) : Remove(element); }

  /// Current checksum value.
  uint64_t value() const { return sum_; }

  /// Resets to the empty set.
  void Reset() { sum_ = 0; }

  static uint64_t MaskFor(int bits) {
    return bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1;
  }

 private:
  uint64_t mask_;
  uint64_t sum_ = 0;
};

}  // namespace pbs

#endif  // PBS_COMMON_CHECKSUM_H_
