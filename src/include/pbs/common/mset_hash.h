// Incremental multiset hash (MSet-XOR-Hash style [10]).
//
// Section 2.2.3: applications that cannot tolerate even the O(10^-12)
// false-verification probability of the 32-bit modular checksum can verify
// H(A /\triangle D-hat) == H(B) with a one-way multiset hash at
// O(max{|A|+d, |B|}) extra computation and constant communication. This is
// that hash: each element contributes XxHash64-derived digests XORed (and
// summed) into a fixed-size state, so the hash is order-independent and
// incrementally updatable -- exactly the properties the checksum loop
// needs, with a 192-bit state in place of a 32-bit sum.

#ifndef PBS_COMMON_MSET_HASH_H_
#define PBS_COMMON_MSET_HASH_H_

#include <array>
#include <cstdint>

namespace pbs {

/// 192-bit incremental multiset hash over 64-bit elements.
class MsetHash {
 public:
  /// Both parties must agree on the salt.
  explicit MsetHash(uint64_t salt = 0) : salt_(salt) {}

  /// Adds one element occurrence.
  void Add(uint64_t element);

  /// Removes one previously added occurrence.
  void Remove(uint64_t element);

  /// Toggle for symmetric-difference updates.
  void Toggle(uint64_t element, bool add) {
    add ? Add(element) : Remove(element);
  }

  /// The 192-bit digest (xor-lane, sum-lane, count-entangled lane).
  std::array<uint64_t, 3> digest() const { return {xor_, sum_, mix_}; }

  /// The 192-bit state folded to one 64-bit word (SplitMix64-style
  /// finalization over all three lanes). Used where a compact per-set
  /// fingerprint is enough -- e.g. the per-shard digest leaves of the
  /// sharded-session Merkle pre-filter (sync/merkle_prefilter.h), where
  /// each leaf certifies one shard's multiset. Equal states fold equal;
  /// the 2^-64 collision rate is the pre-filter's false-skip rate per
  /// shard pair, on par with the tree's own 64-bit digests.
  uint64_t Fold64() const;

  friend bool operator==(const MsetHash& a, const MsetHash& b) {
    return a.xor_ == b.xor_ && a.sum_ == b.sum_ && a.mix_ == b.mix_ &&
           a.salt_ == b.salt_;
  }
  friend bool operator!=(const MsetHash& a, const MsetHash& b) {
    return !(a == b);
  }

  void Reset() { xor_ = sum_ = mix_ = 0; }

 private:
  uint64_t salt_;
  // Three independent accumulation lanes; an adversary must defeat all of
  // them simultaneously. The xor lane alone would be vulnerable to
  // even-multiplicity erasure; the sum lane restores multiplicity
  // sensitivity modulo 2^64.
  uint64_t xor_ = 0;
  uint64_t sum_ = 0;
  uint64_t mix_ = 0;
};

}  // namespace pbs

#endif  // PBS_COMMON_MSET_HASH_H_
