// Communication accounting for reconciliation protocols.
//
// Every protocol in this repository (PBS and all baselines) routes its
// messages through a Transcript, which records, per round and per direction,
// the exact number of bytes serialized on the wire. The evaluation section
// of the paper reports "Data Transmitted (KB)"; those numbers come from
// Transcript::total_bytes().

#ifndef PBS_COMMON_TRANSCRIPT_H_
#define PBS_COMMON_TRANSCRIPT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pbs {

/// Direction of a protocol message.
enum class Direction { kAliceToBob, kBobToAlice };

/// One recorded message.
struct TranscriptEntry {
  int round = 0;
  Direction direction = Direction::kAliceToBob;
  std::string label;
  size_t bytes = 0;
};

/// Byte/round ledger for one protocol execution.
class Transcript {
 public:
  /// Records a message of `bytes` bytes sent in `direction` during `round`.
  void Record(int round, Direction direction, const std::string& label,
              size_t bytes);

  /// Total bytes across all messages and rounds.
  size_t total_bytes() const { return total_bytes_; }

  /// Total bytes sent during one round.
  size_t BytesInRound(int round) const;

  /// Bytes for one direction across all rounds.
  size_t BytesInDirection(Direction direction) const;

  /// Highest round index recorded (0 if nothing recorded).
  int max_round() const { return max_round_; }

  const std::vector<TranscriptEntry>& entries() const { return entries_; }

  void Clear();

 private:
  std::vector<TranscriptEntry> entries_;
  size_t total_bytes_ = 0;
  int max_round_ = 0;
};

}  // namespace pbs

#endif  // PBS_COMMON_TRANSCRIPT_H_
