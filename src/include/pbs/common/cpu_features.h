// Runtime CPU feature detection for the dispatched arithmetic kernels.
//
// The table-free GF(2^m) path (signatures/checksums over the 32-bit-plus
// universe) multiplies 64-bit carry-less polynomials. x86 has PCLMULQDQ and
// AArch64 has PMULL for exactly this, but neither can be assumed at compile
// time for a portable binary, so gf2x.cc compiles both the hardware kernel
// (with a per-function target attribute -- no global -m flags needed) and
// the portable shift-and-XOR fallback, and picks one at process start based
// on what the running CPU reports. Building with -DPBS_DISABLE_CLMUL=ON
// forces the portable path (CI keeps that leg compiled and tested).

#ifndef PBS_COMMON_CPU_FEATURES_H_
#define PBS_COMMON_CPU_FEATURES_H_

namespace pbs::cpu {

/// True when the running CPU offers a carry-less-multiply instruction the
/// build has a kernel for (x86 PCLMULQDQ + SSE4.1, AArch64 PMULL).
/// Detection runs once and is cached; always false under PBS_DISABLE_CLMUL.
bool HasCarrylessMul();

/// Dispatch label for logs and bench records: "clmul" or "portable".
const char* CarrylessMulBackend();

}  // namespace pbs::cpu

#endif  // PBS_COMMON_CPU_FEATURES_H_
