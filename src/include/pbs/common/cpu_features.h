// Runtime CPU feature detection for the dispatched arithmetic kernels.
//
// Two families of optional hardware paths exist, each with its own build
// toggle so CI keeps the portable fallbacks compiled and tested:
//
//  * Carry-less multiply (x86 PCLMULQDQ, AArch64 PMULL), used by the
//    table-free GF(2^m) path (gf2x.cc). Disabled by -DPBS_DISABLE_CLMUL=ON.
//  * Wide-lane SIMD (x86 AVX2 / AVX-512, AArch64 NEON), used by the
//    lane-batched kernels: cross-group batch Chien search (gf/roots.cc),
//    batched xxhash64 (hash/xxhash64.cc), vectorized parity-bitmap scan
//    (core/parity_bitmap.cc) and IBF cell arithmetic (ibf/). Disabled by
//    -DPBS_DISABLE_SIMD=ON.
//
// Every kernel follows the same pattern: the hardware variant is compiled
// with a per-function target attribute (no global -m flags needed), the
// portable variant stays as the differential reference, and the choice is
// made once at process start from what the running CPU reports.

#ifndef PBS_COMMON_CPU_FEATURES_H_
#define PBS_COMMON_CPU_FEATURES_H_

namespace pbs::cpu {

/// True when the running CPU offers a carry-less-multiply instruction the
/// build has a kernel for (x86 PCLMULQDQ + SSE4.1, AArch64 PMULL).
/// Detection runs once and is cached; always false under PBS_DISABLE_CLMUL.
bool HasCarrylessMul();

/// Dispatch label for logs and bench records: "clmul" or "portable".
const char* CarrylessMulBackend();

/// True when the running CPU offers 256-bit integer SIMD the build has
/// kernels for (x86 AVX2). Detection runs once and is cached; always false
/// under PBS_DISABLE_SIMD.
bool HasAvx2();

/// True when the running CPU offers the AVX-512 subset the 512-bit-lane
/// kernels need (F + DQ's native 64-bit lane multiply + VL). Detection
/// runs once and is cached; always false under PBS_DISABLE_SIMD.
bool HasAvx512();

/// True when the AArch64 NEON kernels are compiled in (NEON is baseline on
/// AArch64, so this is a build-configuration fact: false on other targets
/// and under PBS_DISABLE_SIMD).
bool HasNeon();

/// Dispatch label for the wide-lane kernels: "avx512", "avx2", "neon" or
/// "portable" (the widest family the CPU offers; individual kernels may
/// dispatch below it when they have no kernel at that width).
const char* SimdBackend();

/// Combined capability string for bench records and the serve startup
/// line, e.g. "clmul+avx2+avx512", "clmul+avx2", "neon" or "portable".
/// Stable for the process lifetime (points at a static buffer).
const char* FeatureString();

}  // namespace pbs::cpu

#endif  // PBS_COMMON_CPU_FEATURES_H_
