// Deterministic pseudo-random number generation for experiments and tests.
//
// All randomness in the repository flows through these generators so that
// every experiment is reproducible from a single seed. SplitMix64 is used
// for seeding / salting; Xoshiro256** is the workhorse generator.

#ifndef PBS_COMMON_RNG_H_
#define PBS_COMMON_RNG_H_

#include <cstdint>

namespace pbs {

/// SplitMix64: tiny, full-period 2^64 generator; ideal for deriving
/// independent seeds and hash salts from one master seed.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 256-bit-state generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.Next();
  }

  uint64_t Next();

  /// Uniform value in [0, bound) without modulo bias (Lemire reduction).
  uint64_t NextBounded(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return Next(); }

 private:
  uint64_t state_[4];
};

}  // namespace pbs

#endif  // PBS_COMMON_RNG_H_
