// Binary Merkle tree over 64-bit leaves.
//
// Section 2.2.3 points out that blockchain platforms already carry
// Merkle-tree verification (each parent certifies its children; the root
// certifies the whole transaction set), which reduces PBS's residual
// false-verification probability to practically zero at no extra protocol
// cost. This is that substrate, used by the blockchain example to certify
// reconciled mempools and available to applications that want
// per-element inclusion proofs.

#ifndef PBS_COMMON_MERKLE_H_
#define PBS_COMMON_MERKLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// Immutable Merkle tree built over a list of 64-bit leaf values.
/// Leaf order matters (callers reconciling sets should sort first).
class MerkleTree {
 public:
  /// One step of an inclusion proof.
  struct ProofNode {
    uint64_t sibling_digest;
    bool sibling_on_left;
  };

  /// Builds the tree; an empty leaf list yields a fixed sentinel root.
  explicit MerkleTree(const std::vector<uint64_t>& leaves);

  /// Root digest certifying all leaves.
  uint64_t root() const;

  size_t leaf_count() const { return leaf_count_; }

  /// Inclusion proof for the leaf at `index` (root-exclusive, leaf-first).
  std::vector<ProofNode> Prove(size_t index) const;

  /// Verifies a proof produced by Prove against a root digest.
  static bool Verify(uint64_t leaf_value, const std::vector<ProofNode>& proof,
                     uint64_t root_digest);

  /// Digest of one leaf (domain-separated from interior nodes).
  static uint64_t HashLeaf(uint64_t value);
  /// Digest of an interior node.
  static uint64_t HashInterior(uint64_t left, uint64_t right);

 private:
  // levels_[0] = leaf digests, levels_.back() = {root}.
  std::vector<std::vector<uint64_t>> levels_;
  size_t leaf_count_;
};

}  // namespace pbs

#endif  // PBS_COMMON_MERKLE_H_
