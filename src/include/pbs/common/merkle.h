// Binary Merkle tree over 64-bit leaves.
//
// Section 2.2.3 points out that blockchain platforms already carry
// Merkle-tree verification (each parent certifies its children; the root
// certifies the whole transaction set), which reduces PBS's residual
// false-verification probability to practically zero at no extra protocol
// cost. This is that substrate, used by the blockchain example to certify
// reconciled mempools and available to applications that want
// per-element inclusion proofs.

#ifndef PBS_COMMON_MERKLE_H_
#define PBS_COMMON_MERKLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// Immutable Merkle tree built over a list of 64-bit leaf values.
/// Leaf order matters (callers reconciling sets should sort first).
class MerkleTree {
 public:
  /// One step of an inclusion proof.
  struct ProofNode {
    uint64_t sibling_digest;
    bool sibling_on_left;
  };

  /// Builds the tree; an empty leaf list yields a fixed sentinel root.
  explicit MerkleTree(const std::vector<uint64_t>& leaves);

  /// Root digest certifying all leaves.
  uint64_t root() const;

  size_t leaf_count() const { return leaf_count_; }

  /// Digest of the leaf at `index` (level-0 node). `index < leaf_count()`.
  uint64_t leaf_digest(size_t index) const { return levels_[0][index]; }

  /// Inclusion proof for the leaf at `index` (root-exclusive, leaf-first).
  std::vector<ProofNode> Prove(size_t index) const;

  /// Replaces the leaf at `index` with `value` and recomputes the O(log n)
  /// interior nodes on its root path -- the incremental form of
  /// rebuilding the whole tree with one leaf changed (bit-identical, by
  /// test). Returns false (tree untouched) when `index` is out of range.
  bool UpdateLeaf(size_t index, uint64_t value);

  /// Indices of leaves whose digests differ between two trees built over
  /// leaf lists of equal length (the sharded-session pre-filter's diff
  /// set). Trees of unequal leaf_count() additionally report every index
  /// past the shorter tree's end as differing.
  static std::vector<size_t> DiffLeaves(const MerkleTree& a,
                                        const MerkleTree& b);

  /// Verifies a proof produced by Prove against a root digest.
  static bool Verify(uint64_t leaf_value, const std::vector<ProofNode>& proof,
                     uint64_t root_digest);

  /// Digest of one leaf (domain-separated from interior nodes).
  static uint64_t HashLeaf(uint64_t value);
  /// Digest of an interior node.
  static uint64_t HashInterior(uint64_t left, uint64_t right);

 private:
  // levels_[0] = leaf digests, levels_.back() = {root}.
  std::vector<std::vector<uint64_t>> levels_;
  size_t leaf_count_;
};

}  // namespace pbs

#endif  // PBS_COMMON_MERKLE_H_
