// Classic Bloom filter.
//
// Substrate for the Graphene baseline (Section 7): Graphene sends a Bloom
// filter of B so the receiver can prune its candidate set before the IBF
// stage, and drops the BF when its O(|B|) cost outweighs the IBF savings.

#ifndef PBS_IBF_BLOOM_FILTER_H_
#define PBS_IBF_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pbs/common/bitio.h"

namespace pbs {

/// Standard Bloom filter over 64-bit keys with k independent salted hashes.
class BloomFilter {
 public:
  /// `bits` cells, `num_hashes` probes per key, salts derived from `salt`.
  BloomFilter(size_t bits, int num_hashes, uint64_t salt);

  /// Sizes a filter for `n` keys at target false-positive rate `fpr`
  /// (standard 1.44 n log2(1/fpr) formula, k = ln2 * bits/n).
  static BloomFilter ForCapacity(size_t n, double fpr, uint64_t salt);

  void Insert(uint64_t key);
  bool Contains(uint64_t key) const;

  size_t bit_count() const { return bits_.size(); }
  size_t byte_size() const { return (bits_.size() + 7) / 8; }
  int num_hashes() const { return num_hashes_; }

  /// Serializes the raw bit array (bit_count() bits; geometry travels
  /// separately — the Graphene wire payload carries bit count and hash
  /// count next to the array).
  void Serialize(BitWriter* writer) const;

  /// Reads a filter serialized by Serialize. `bits`, `num_hashes`, and
  /// `salt` must match the sender's construction.
  static BloomFilter Deserialize(BitReader* reader, size_t bits,
                                 int num_hashes, uint64_t salt);

 private:
  size_t Index(uint64_t key, int probe) const;

  std::vector<bool> bits_;
  int num_hashes_;
  uint64_t salt_;
};

}  // namespace pbs

#endif  // PBS_IBF_BLOOM_FILTER_H_
