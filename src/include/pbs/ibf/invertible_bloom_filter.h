// Invertible Bloom filter (IBF / IBLT).
//
// The data structure behind Difference Digest [15] and the IBF stage of
// Graphene [32] (Section 7). Each cell holds three fields of log|U| bits
// each -- count, keySum, hashSum -- so an IBF with c cells costs 3*c*log|U|
// bits on the wire; D.Digest uses c = 2*d-hat cells, hence the "roughly
// 6 d log|U|" communication overhead the paper quotes.
//
// The table is partitioned into k equal subtables and each key maps to one
// cell per subtable, guaranteeing k *distinct* cells per key (the layout
// used by the reference IBLT implementations). Subtracting two IBFs yields
// an IBF of the symmetric difference, which is recovered by peeling pure
// cells, exactly like the erasure-decoding of Tornado codes the paper
// mentions.

#ifndef PBS_IBF_INVERTIBLE_BLOOM_FILTER_H_
#define PBS_IBF_INVERTIBLE_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "pbs/common/bitio.h"
#include "pbs/common/workspace.h"

namespace pbs {

/// One IBF cell. `count` is interpreted modulo 2^sig_bits with two's
/// complement semantics (the wire carries sig_bits per field).
struct IbfCell {
  int64_t count = 0;
  uint64_t key_sum = 0;   // XOR of keys.
  uint64_t hash_sum = 0;  // XOR of check-hashes of keys.
};

/// Invertible Bloom filter over nonzero keys of width sig_bits.
class InvertibleBloomFilter {
 public:
  /// `cells` total cells (rounded up to a multiple of `num_hashes`),
  /// `num_hashes` subtables, hash salts derived from `salt`,
  /// `sig_bits` signature width (wire width of each cell field).
  InvertibleBloomFilter(size_t cells, int num_hashes, uint64_t salt,
                        int sig_bits);

  /// Adds a key (count +1 in each mapped cell).
  void Insert(uint64_t key);
  /// Removes a key (count -1); need not have been inserted (deletions of
  /// foreign keys are what subtraction produces).
  void Erase(uint64_t key);

  /// Cell-wise subtraction: afterwards this IBF represents
  /// (this-set) minus (other-set) with signed counts. Under AVX2 the cell
  /// stream is processed four cells (three 32-byte vectors) per step, with
  /// the count lanes subtracted and the key/hash lanes XORed in one blend;
  /// bit-identical to SubtractScalar.
  void Subtract(const InvertibleBloomFilter& other);

  /// Cell-at-a-time reference for Subtract; the differential tests pin the
  /// vectorized path against this.
  void SubtractScalar(const InvertibleBloomFilter& other);

  struct DecodeResult {
    std::vector<uint64_t> positive;  ///< Keys with net count +1 (this side).
    std::vector<uint64_t> negative;  ///< Keys with net count -1 (other side).
    bool complete = false;           ///< True iff peeling emptied the IBF.
  };

  /// Peels the IBF (non-destructively). complete == false means decoding
  /// failed: too many differences for the cell budget.
  DecodeResult Decode() const;

  /// Workspace variant of Decode: the peeled working copy and the pending
  /// pure-cell queue live in `ws` scratch, and `out`'s vectors are cleared
  /// and refilled in place. No heap allocation once `ws` and `out` are at
  /// steady-state capacity.
  void DecodeInto(Workspace& ws, DecodeResult* out) const;

  /// Wire size: cells * 3 fields * sig_bits.
  size_t bit_size() const { return cells_.size() * 3 * sig_bits_; }
  size_t byte_size() const { return (bit_size() + 7) / 8; }

  void Serialize(BitWriter* writer) const;
  static InvertibleBloomFilter Deserialize(BitReader* reader, size_t cells,
                                           int num_hashes, uint64_t salt,
                                           int sig_bits);

  size_t cell_count() const { return cells_.size(); }
  int num_hashes() const { return num_hashes_; }
  const IbfCell& cell(size_t i) const { return cells_[i]; }

 private:
  size_t CellIndex(uint64_t key, int subtable) const;
  uint64_t CheckHash(uint64_t key) const;
  void Apply(uint64_t key, int64_t delta);
  // Apply against an external cell array laid out like cells_ (the
  // peeling working copy). The per-subtable cell indices are hashed in
  // lane-batched blocks (one lane per subtable salt).
  void ApplyTo(IbfCell* cells, uint64_t key, int64_t delta) const;
  // Peeling helper: is this cell recoverable right now?
  bool IsPure(const IbfCell& cell) const;

  std::vector<IbfCell> cells_;
  int num_hashes_;
  uint64_t salt_;
  int sig_bits_;
  size_t subtable_size_;
};

}  // namespace pbs

#endif  // PBS_IBF_INVERTIBLE_BLOOM_FILTER_H_
