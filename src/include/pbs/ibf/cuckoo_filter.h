// Cuckoo filter (Fan et al.), the substrate of the cuckoo-filter
// reconciliation scheme [25] the paper surveys in Section 7.
//
// Buckets of 4 fingerprint slots with partial-key cuckoo hashing: an item
// occupies bucket h or bucket h XOR hash(fingerprint), so membership tests
// and deletions work from the fingerprint alone. Like Bloom filters it
// yields false positives, which is why filter-exchange reconciliation is
// approximate (underestimates the difference) -- the property
// baselines/approx_filter.h quantifies.

#ifndef PBS_IBF_CUCKOO_FILTER_H_
#define PBS_IBF_CUCKOO_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// Cuckoo filter over 64-bit keys with 4-slot buckets.
class CuckooFilter {
 public:
  /// `capacity` items at ~95% load, `fingerprint_bits` in [4, 16].
  CuckooFilter(size_t capacity, int fingerprint_bits, uint64_t salt);

  /// Inserts a key; returns false if the filter is too full (insert failed
  /// after the eviction budget). A failed insert leaves a random victim
  /// fingerprint displaced (standard cuckoo-filter semantics).
  bool Insert(uint64_t key);

  /// Membership test (false positives possible, no false negatives for
  /// successfully inserted keys).
  bool Contains(uint64_t key) const;

  /// Deletes one copy of a key's fingerprint; returns false if absent.
  bool Delete(uint64_t key);

  /// Wire size: buckets * 4 slots * fingerprint bits. (buckets_ stores one
  /// entry per slot, so its size is already buckets * kSlots.)
  size_t bit_size() const { return buckets_.size() * fp_bits_; }
  size_t byte_size() const { return (bit_size() + 7) / 8; }

  size_t bucket_count() const { return buckets_.size() / kSlots; }
  int fingerprint_bits() const { return fp_bits_; }

  static constexpr int kSlots = 4;
  static constexpr int kMaxEvictions = 500;

 private:
  uint16_t FingerprintOf(uint64_t key) const;
  size_t IndexOf(uint64_t key) const;
  size_t AltIndex(size_t index, uint16_t fingerprint) const;
  bool InsertIntoBucket(size_t bucket, uint16_t fingerprint);

  std::vector<uint16_t> buckets_;  // bucket-major, kSlots per bucket; 0 = empty.
  size_t num_buckets_;
  int fp_bits_;
  uint64_t salt_;
};

}  // namespace pbs

#endif  // PBS_IBF_CUCKOO_FILTER_H_
