// Workload generation matching the paper's experiment setup (Section 8).
//
// "Elements in A are drawn from U uniformly at random without replacement.
//  |A| - d of the elements in A are then sampled, also uniformly at random
//  without replacement, to make up set B, so that A /\triangle B contains
//  exactly d elements." The universe is all nonzero `sig_bits`-wide strings
// (0 is excluded per Section 2.1).

#ifndef PBS_SIM_WORKLOAD_H_
#define PBS_SIM_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// One generated instance: B is a subset of A and |A \ B| = d.
struct SetPair {
  std::vector<uint64_t> a;
  std::vector<uint64_t> b;
  std::vector<uint64_t> truth_diff;  ///< A \ B (== A /\triangle B here).
};

/// Generates a set pair per the paper's recipe.
/// Requires d <= size_a and size_a << 2^sig_bits.
SetPair GenerateSetPair(size_t size_a, size_t d, int sig_bits, uint64_t seed);

/// Generates a pair where both sides have exclusive elements:
/// |A \ B| = d_a_only, |B \ A| = d_b_only, |A n B| = common.
/// Exercises the general (non-subset) reconciliation paths.
SetPair GenerateTwoSidedPair(size_t common, size_t d_a_only, size_t d_b_only,
                             int sig_bits, uint64_t seed);

}  // namespace pbs

#endif  // PBS_SIM_WORKLOAD_H_
