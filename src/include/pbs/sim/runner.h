// Experiment runner: executes a reconciliation scheme over a batch of
// generated set pairs and aggregates the Section-8 metrics.
//
// Schemes are resolved by name through pbs::SchemeRegistry ("pbs",
// "pinsketch", "ddigest", "graphene", "pinsketch-wp", plus anything
// registered by out-of-tree backends), so new schemes run through every
// experiment without touching this file.
//
// Estimation follows the paper's accounting: PBS, PinSketch and D.Digest
// are all driven by the same ToW estimate (ell = 128 sketches, 336 bytes at
// |S| = 10^6), whose bytes are *excluded* from the reported communication
// overhead; Graphene receives the same estimate for free (Section 6.2).
// The runner computes the estimate with TowEstimateFromDifference -- an
// O(ell*d) shortcut that is distributed identically to the full two-sided
// exchange (common elements cancel) -- and hands the raw d-hat to the
// scheme, which applies its own inflation policy.

#ifndef PBS_SIM_RUNNER_H_
#define PBS_SIM_RUNNER_H_

#include <cstdint>
#include <functional>
#include <string>

#include "pbs/core/set_reconciler.h"
#include "pbs/sim/metrics.h"
#include "pbs/sim/workload.h"

namespace pbs {

/// One experiment configuration (a point on a figure's x-axis).
struct ExperimentConfig {
  size_t set_size = 100000;  ///< |A| (paper: 10^6).
  size_t d = 100;            ///< |A \ B|.
  int sig_bits = 32;         ///< Signature width log|U|.
  int instances = 50;        ///< Set pairs per point (paper: 1000).
  uint64_t seed = 0xB5;      ///< Master seed (instance i derives from it).
  bool use_estimator = true; ///< false: d is known exactly (Sections 2-5).
  PbsConfig pbs;             ///< PBS knobs (r, p0, delta, optimizer ranges).
  /// Appendix J.3: account PinSketch/WP + PBS signatures at this width
  /// while computing over sig_bits (0 = off).
  int report_sig_bits = 0;
  /// Worker threads for independent instances (1 = serial). Results are
  /// identical regardless of thread count: every instance derives its own
  /// seed and timing/byte metrics are summed commutatively. Set to 0 to
  /// use the hardware concurrency.
  int threads = 1;
};

/// The SchemeOptions a given experiment config hands to the registry.
SchemeOptions SchemeOptionsFrom(const ExperimentConfig& config);

/// Per-instance measurement (also usable for custom aggregation).
struct InstanceOutcome {
  bool correct = false;  ///< Protocol succeeded AND difference == truth.
  size_t bytes = 0;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  int rounds = 1;
};

/// Runs one instance of `reconciler` on `pair`: computes the shared ToW
/// estimate (or uses the exact d), reconciles, and checks the recovered
/// difference against the ground truth.
InstanceOutcome RunInstance(const SetReconciler& reconciler,
                            const ExperimentConfig& config,
                            const SetPair& pair, uint64_t seed);

/// Generates config.instances pairs and aggregates. `scheme` is a
/// SchemeRegistry name; throws std::invalid_argument if unknown.
RunStats RunScheme(const std::string& scheme, const ExperimentConfig& config);

/// Like RunScheme but with a caller-supplied per-instance callback (used by
/// the rounds-PMF experiment of Appendix J.1).
RunStats RunSchemeWithCallback(
    const std::string& scheme, const ExperimentConfig& config,
    const std::function<void(const InstanceOutcome&)>& callback);

}  // namespace pbs

#endif  // PBS_SIM_RUNNER_H_
