// Multi-peer gossip convergence simulation.
//
// The paper motivates PBS with blockchain transaction relay (Section
// 1.3.4): every peer holds a transaction set, new transactions appear at
// individual peers, and periodic pairwise reconciliations spread them until
// all peers agree. This module simulates that process over an arbitrary
// peer topology with PBS as the reconciliation primitive and reports the
// system-level quantities a protocol designer cares about: sweeps to
// convergence and total reconciliation bandwidth vs. the naive
// inventory-exchange baseline.

#ifndef PBS_SIM_GOSSIP_H_
#define PBS_SIM_GOSSIP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "pbs/core/params.h"

namespace pbs {

/// Configuration of a gossip simulation.
struct GossipConfig {
  int num_peers = 8;
  size_t shared_elements = 10000;  ///< Converged history at every peer.
  size_t fresh_per_peer = 100;     ///< New elements arriving at each peer.
  int sig_bits = 32;
  /// Edges as peer-index pairs; empty = complete graph.
  std::vector<std::pair<int, int>> topology;
  PbsConfig pbs;
  uint64_t seed = 1;
  int max_sweeps = 16;
};

/// Result of a gossip simulation.
struct GossipResult {
  bool converged = false;
  int sweeps = 0;                 ///< Full passes over the edge list.
  size_t reconciliations = 0;     ///< Pairwise sessions executed.
  size_t pbs_bytes = 0;           ///< Reconciliation traffic (incl. estimator).
  size_t naive_bytes = 0;         ///< Cost of shipping full inventories.
  size_t failed_sessions = 0;     ///< Sessions that hit the round cap.
  size_t final_set_size = 0;      ///< |union| at convergence.
};

/// Runs the simulation: each sweep reconciles every edge once (the lower
/// peer index acts as Alice and pushes its exclusive elements back), until
/// all peers hold the same set or max_sweeps elapses.
GossipResult RunGossip(const GossipConfig& config);

}  // namespace pbs

#endif  // PBS_SIM_GOSSIP_H_
