// Aggregation and table formatting for experiment output.

#ifndef PBS_SIM_METRICS_H_
#define PBS_SIM_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace pbs {

/// Aggregated statistics over a batch of reconciliation instances.
struct RunStats {
  int instances = 0;
  double success_rate = 0.0;
  double mean_bytes = 0.0;
  double mean_encode_seconds = 0.0;
  double mean_decode_seconds = 0.0;
  double mean_rounds = 0.0;
  /// mean_bytes / (d * sig_bits/8): multiples of the information-theoretic
  /// minimum d log|U| (Section 1.1).
  double overhead_ratio = 0.0;
};

/// Column-aligned text table with a CSV echo (easy to plot).
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> columns);

  void AddRow(std::vector<std::string> cells);

  /// Renders aligned text followed by a `# csv:`-prefixed CSV block.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formatting helpers.
std::string FormatDouble(double v, int precision = 4);
std::string FormatScientific(double v, int precision = 2);
std::string FormatBytes(double bytes);

}  // namespace pbs

#endif  // PBS_SIM_METRICS_H_
