// Standard BCH coding for a noisy channel (Appendix I).
//
// The appendix contrasts PBS's use of BCH with the classical one: over a
// noisy channel the coded message is n = 2^m - 1 bits total -- an uncoded
// part of n - t*m bits plus a t*m-bit codeword -- and errors may hit
// *both* parts, whereas in PBS the "message" (the parity bitmap) is never
// transmitted and the codeword crosses a reliable channel, freeing all n
// bits for the message. This module implements the classical mode as a
// syndrome-based systematic code so the difference is executable: encode a
// message, corrupt up to t of the n bits, decode.

#ifndef PBS_BCH_CHANNEL_CODE_H_
#define PBS_BCH_CHANNEL_CODE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "pbs/gf/gf2m.h"

namespace pbs {

/// Systematic BCH-style channel code over blocks of n = 2^m - 1 bits with
/// error-correction capacity t. Layout: positions 1..n - the first
/// n - t*m carry message bits, the rest carry the (bit-packed) syndromes
/// of the message part re-derived at the decoder. For transparency of the
/// Appendix-I comparison the check part is protected by transmitting it
/// verbatim alongside (as PBS effectively does over its reliable channel)
/// or by letting errors hit it too (classical mode).
class BchChannelCode {
 public:
  BchChannelCode(int m, int t);

  /// Bits available for payload per block: n - t*m.
  int message_bits() const { return n_ - t_ * m_; }
  int block_bits() const { return n_; }
  int check_bits() const { return t_ * m_; }

  /// Encodes `message` (message_bits() entries) into an n-bit block:
  /// message bits followed by check bits.
  std::vector<uint8_t> Encode(const std::vector<uint8_t>& message) const;

  /// Decodes a (possibly corrupted) n-bit block; corrects up to t bit
  /// errors anywhere in the block. Returns the recovered message bits, or
  /// nullopt if more than t errors are detected.
  std::optional<std::vector<uint8_t>> Decode(
      const std::vector<uint8_t>& block) const;

 private:
  // Syndromes of the set of one-positions of `bits` (positions 1-based).
  std::vector<uint64_t> SyndromesOf(const std::vector<uint8_t>& bits) const;

  GF2m field_;
  int m_;
  int t_;
  int n_;
};

}  // namespace pbs

#endif  // PBS_BCH_CHANNEL_CODE_H_
