// The BCH "sketch": odd power sums of a set of nonzero field elements.
//
// This is the codeword xi_A of Sections 1.3.1 / 2.5. A set P of nonzero
// elements of GF(2^m) is summarized by its t odd power sums
//     S_k = sum_{p in P} p^k,   k = 1, 3, 5, ..., 2t-1,
// which is exactly a syndrome vector of a binary BCH code with designed
// distance 2t+1 (even-indexed syndromes are implied: S_2k = S_k^2 in
// characteristic 2). Two crucial properties:
//
//  * Linearity: the XOR of two sketches is the sketch of the symmetric
//    difference of the two sets. Bob XORs Alice's sketch of her parity
//    bitmap with his own to get the sketch of the *difference* bitmap.
//  * Decodability: if the difference has at most t elements, they are
//    recovered by Berlekamp-Massey + root finding; if it has more, the
//    decoder detects failure with high probability (Section 3.2's
//    "BCH decoding exception").
//
// Wire size is exactly t*m bits -- the paper's "t log n" term (PBS, with
// m = log2(n+1)) or "t log |U|" (PinSketch).

#ifndef PBS_BCH_POWER_SUM_SKETCH_H_
#define PBS_BCH_POWER_SUM_SKETCH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "pbs/common/bitio.h"
#include "pbs/common/workspace.h"
#include "pbs/gf/gf2m.h"

namespace pbs {

/// BCH power-sum sketch with capacity t over GF(2^m).
class PowerSumSketch {
 public:
  PowerSumSketch(const GF2m& field, int t);

  /// Toggles membership of `element` (must be in [1, 2^m - 1]). Adding an
  /// element twice removes it -- the sketch is a symmetric-difference
  /// accumulator, mirroring parity-bitmap semantics.
  void Toggle(uint64_t element);

  /// XORs `other` into this sketch (same field and t required): the result
  /// sketches the symmetric difference of the two underlying sets.
  void Merge(const PowerSumSketch& other);

  /// Resets to the empty set (all syndromes zero), keeping the storage.
  void Reset();

  /// Attempts to recover the sketched set. Succeeds iff the set has at most
  /// t elements and the decode is structurally consistent; otherwise
  /// returns nullopt (decode failure). Recovered elements are unsorted.
  /// If `verify` is set, the decoded set's power sums are recomputed and
  /// compared against the syndromes, catching silent miscorrections.
  /// `seed` randomizes trace-based root finding in large fields.
  std::optional<std::vector<uint64_t>> Decode(
      bool verify = true, uint64_t seed = 0x9E3779B97F4A7C15ull) const;

  /// Workspace variant of Decode: clears `*out` and appends the recovered
  /// elements. Returns false on decode failure. Once `ws` and `out` have
  /// reached their steady-state capacities this performs no heap
  /// allocation for Chien-searchable fields (every PBS parity-bitmap
  /// field); large PinSketch fields fall back to allocating root finding.
  bool DecodeInto(std::vector<uint64_t>* out, Workspace& ws,
                  bool verify = true,
                  uint64_t seed = 0x9E3779B97F4A7C15ull) const;

  /// Preferred number of sketches per DecodeBatchInto call: two quads of
  /// Chien lanes (gf/roots.h kChienBatchLanes) in flight.
  static constexpr int kDecodeBatch = 8;

  /// Cross-group batched decode: for each i,
  /// `ok[i] = sketches[i]->DecodeInto(outs[i], ws, verify, seed)`
  /// bit-for-bit (same recovered elements in the same order), but the
  /// per-sketch Berlekamp-Massey locators are root-searched together
  /// through ChienSearchBatch, so groups advance through the Chien scan in
  /// SIMD lanes instead of serially. All sketches must share one field and
  /// t. Chien-sized fields (every PBS parity-bitmap field) are zero-alloc
  /// at steady state; large fields degrade to per-sketch DecodeInto.
  static void DecodeBatchInto(Span<const PowerSumSketch* const> sketches,
                              Span<std::vector<uint64_t>* const> outs,
                              Span<uint8_t> ok, Workspace& ws,
                              bool verify = true,
                              uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Serializes as t fields of m bits each.
  void Serialize(BitWriter* writer) const;

  /// Reads a sketch serialized by Serialize.
  static PowerSumSketch Deserialize(BitReader* reader, const GF2m& field,
                                    int t);

  /// Overwrites this sketch from the wire, reusing its storage (same field
  /// and t as at serialization time required).
  void ReadFrom(BitReader* reader);

  /// Wire size in bits: t * m.
  int bit_size() const { return t_ * field_.m(); }

  int t() const { return t_; }
  const GF2m& field() const { return field_; }
  /// Odd syndromes (S_1, S_3, ..., S_{2t-1}).
  const std::vector<uint64_t>& odd_syndromes() const { return odd_; }

  /// True if every syndrome is zero (empty symmetric difference, or -- with
  /// negligible probability -- an undetectable error pattern).
  bool IsZero() const;

  /// XORs a raw odd-syndrome block (t entries of another sketch over the
  /// same field, e.g. a wire-read slice of a peer's sketch) into this one:
  /// Merge() without materializing a second PowerSumSketch. Used by the
  /// parallel per-group decode, which stages every peer sketch in one flat
  /// buffer (core/pbs_endpoints.cc).
  void MergeOdd(Span<const uint64_t> odd_syndromes);

 private:
  /// XORs the odd power sums x^1, x^3, ..., x^(2t-1) of `element` into
  /// `odd` (t = odd.size()).
  static void ToggleInto(const GF2m& field, uint64_t element,
                         Span<uint64_t> odd);

  GF2m field_;
  int t_;
  std::vector<uint64_t> odd_;
};

}  // namespace pbs

#endif  // PBS_BCH_POWER_SUM_SKETCH_H_
