// Levinson-style recursive solver for the BCH key equation.
//
// Section 2.5: "since this matrix takes a special form called Toeplitz, it
// can be inverted in O(t^2) operations over GF(2^m) using the Levinson
// algorithm [23]". The syndrome system
//     sum_{j=1..v} Lambda_j S_{k-j} = S_k,  k = v+1..2v
// has constant anti-diagonals (Hankel = row-reversed Toeplitz). The
// classical Levinson recursion assumes the leading principal minors are
// nonsingular, which error-locator systems do not guarantee, so production
// code uses Berlekamp-Massey (the singularity-robust equivalent with the
// same O(t^2) bound). This module provides the literal citation: a
// Levinson-Durbin recursion over GF(2^m) that solves the system whenever
// the regularity condition holds, reporting failure otherwise; tests
// cross-check it against BM and PGZ on regular instances.

#ifndef PBS_BCH_LEVINSON_H_
#define PBS_BCH_LEVINSON_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "pbs/common/workspace.h"
#include "pbs/gf/gf2m.h"

namespace pbs {

/// Solves the v x v Hankel system H x = b over GF(2^m), where
/// H(i, j) = h[i + j] (h has 2v - 1 entries) and b has v entries, by the
/// O(v^2) Levinson-Durbin recursion. Returns nullopt if any leading
/// principal submatrix is singular (the recursion's regularity condition).
std::optional<std::vector<uint64_t>> LevinsonSolveHankel(
    const GF2m& field, const std::vector<uint64_t>& h,
    const std::vector<uint64_t>& b);

/// Error-locator front end: given syndromes (S_1..S_2t) and a trial error
/// count v, solves for Lambda via the Hankel system. Returns the locator
/// polynomial (1, Lambda_1, ..., Lambda_v) or nullopt if the system is
/// Levinson-irregular or inconsistent with the remaining syndromes.
std::optional<std::vector<uint64_t>> LevinsonLocator(
    const GF2m& field, const std::vector<uint64_t>& syndromes, int v);

/// Workspace variant of LevinsonLocator: writes (1, Lambda_1, ...,
/// Lambda_v) into `lambda_out` (at least v + 1 slots) and returns true on
/// success. The recursion's working vectors are drawn from `ws`;
/// allocation-free once `ws` is warm.
bool LevinsonLocatorWs(const GF2m& field, Span<const uint64_t> syndromes,
                       int v, Workspace& ws, Span<uint64_t> lambda_out);

}  // namespace pbs

#endif  // PBS_BCH_LEVINSON_H_
