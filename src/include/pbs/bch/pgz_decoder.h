// Peterson-Gorenstein-Zierler (PGZ) error-locator solver.
//
// Reference decoder used to cross-validate Berlekamp-Massey: the locator
// coefficients satisfy the Hankel linear system
//     sum_{j=1..v} Lambda_j S_{k-j} = S_k,   k = v+1 .. 2v,
// which PGZ solves directly by Gaussian elimination, shrinking v until the
// system is nonsingular. Section 2.5 notes this Toeplitz-structured system
// can be solved in O(t^2) by Levinson's algorithm; BM achieves the same
// bound and is what the production path uses. PGZ is O(v^3) and exists for
// verification and ablation benchmarks.

#ifndef PBS_BCH_PGZ_DECODER_H_
#define PBS_BCH_PGZ_DECODER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "pbs/common/workspace.h"
#include "pbs/gf/gfpoly.h"

namespace pbs {

/// Solves for the error-locator polynomial from `syndromes` =
/// (S_1, ..., S_2t), assuming at most t errors. Returns nullopt if no
/// consistent locator of degree <= t exists.
std::optional<GFPoly> PgzLocator(const GF2m& field,
                                 const std::vector<uint64_t>& syndromes);

/// Workspace variant: writes (1, Lambda_1, ..., Lambda_v) into `lambda_out`
/// (at least t + 1 slots; slots past the degree are zeroed) and returns the
/// locator degree v >= 0, or -1 if no consistent locator exists. The
/// elimination runs in place on one flat workspace matrix -- no per-attempt
/// copies. Allocation-free once `ws` is warm.
int PgzLocatorWs(const GF2m& field, Span<const uint64_t> syndromes,
                 Workspace& ws, Span<uint64_t> lambda_out);

}  // namespace pbs

#endif  // PBS_BCH_PGZ_DECODER_H_
