// Deterministic keyspace sharding for huge-set reconciliation.
//
// A monolithic session materializes one sketch over the whole set, so
// 10^8-element sets blow past bounded memory even though the protocol's
// wire cost scales with the difference d. The shard planner splits the
// *keyspace* (not the element list) into S hash-ranges via the session's
// SaltedHash, so both endpoints assign every element to the same shard
// with no communication, and each shard reconciles as an independent
// sub-session over the same connection (sync/sharded_session.h). The
// per-shard multiset checksums feed the Merkle pre-filter
// (sync/merkle_prefilter.h) that lets identical shards cost O(1) bytes.
//
// All salts derive from the session seed through disjoint HashFamily
// roles (kShardPartition / kShardChecksum / kShardSession), so the shard
// partition, the checksum leaves, and each shard's sub-session hashes
// are mutually independent yet reproducible on both sides.

#ifndef PBS_SYNC_SHARD_PLANNER_H_
#define PBS_SYNC_SHARD_PLANNER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pbs/hash/hash_family.h"

namespace pbs::sync {

/// Negotiation bounds for the wire-carried shard count.
inline constexpr int kMinKeyspaceShards = 2;
inline constexpr int kMaxKeyspaceShards = 4096;

/// The deterministic shard layout of one sharded session: both sides
/// derive an identical plan from (shard_count, session seed).
struct ShardPlan {
  int shard_count = 0;
  uint64_t partition_salt = 0;  ///< Keyspace-partition hash salt.
  uint64_t checksum_salt = 0;   ///< Per-shard MsetHash salt.
  uint64_t session_seed = 0;    ///< The seed the plan was derived from.

  /// Derives the plan. `shard_count` must be in
  /// [kMinKeyspaceShards, kMaxKeyspaceShards].
  static ShardPlan Derive(int shard_count, uint64_t session_seed);

  /// Shard owning element `x`: SaltedHash bucket in [0, shard_count).
  uint32_t ShardOf(uint64_t x) const {
    return static_cast<uint32_t>(SaltedHash(partition_salt)
                                     .Bucket(x, static_cast<uint64_t>(
                                                    shard_count)));
  }

  /// Batch form of ShardOf through the lane-batched hash kernel
  /// (out may alias xs). Bit-identical to the scalar form.
  void ShardOfMany(const uint64_t* xs, size_t count, uint64_t* out) const {
    SaltedHash(partition_salt)
        .BucketMany(xs, count, static_cast<uint64_t>(shard_count), out);
  }

  /// Scheme seed of shard k's sub-session: derived from the session seed
  /// under the kShardSession role so no two shards (and no shard and the
  /// outer session) share hash functions.
  uint64_t SubSeed(uint32_t shard) const {
    return HashFamily(session_seed)
        .Salt(HashFamily::kShardSession, shard);
  }

  /// Estimator seed of shard k's sub-session, derived from the session's
  /// estimate seed (kept separate from SubSeed exactly like the outer
  /// session keeps seed and estimate_seed apart).
  static uint64_t SubEstimateSeed(uint64_t estimate_seed, uint32_t shard) {
    return HashFamily(estimate_seed)
        .Salt(HashFamily::kShardSession, shard);
  }
};

/// Streams `elements` once and returns the S folded per-shard multiset
/// digests (MsetHash::Fold64 of each shard's element multiset under the
/// plan's checksum salt) -- the Merkle pre-filter's leaves. O(S) memory,
/// never materializes a partition; elements are sharded in hash-batch
/// blocks through ShardOfMany.
std::vector<uint64_t> ComputeShardLeaves(const ShardPlan& plan,
                                         const uint64_t* elements,
                                         size_t count);

/// Partitions only the *selected* shards of `elements`: out[i] receives
/// the elements owned by shard_ids[i] (ascending, deduplicated ids in
/// [0, shard_count)). Elements of unselected shards are never copied,
/// which is what bounds the sharded session's peak memory to the
/// differing fraction of the set plus O(S).
void PartitionSelected(const uint64_t* elements, size_t count,
                       const ShardPlan& plan,
                       const std::vector<uint32_t>& shard_ids,
                       std::vector<std::vector<uint64_t>>* out);

}  // namespace pbs::sync

#endif  // PBS_SYNC_SHARD_PLANNER_H_
