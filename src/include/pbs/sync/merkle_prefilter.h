// Merkle pre-filter over per-shard digests: the O(1)-bytes skip path of
// sharded reconciliation.
//
// Both sides fold each shard's multiset into a 64-bit leaf
// (sync/shard_planner.h ComputeShardLeaves) and build a Merkle tree over
// the S leaves (common/merkle.h). The roots travel in the
// SHARD_PLAN / SHARD_PLAN_ACK exchange: equal roots certify every shard
// identical and the whole session settles in four frames. Differing
// roots trigger one DIGEST_TREE frame (the initiator's S leaves, 8 bytes
// each) answered by a DIGEST_REPLY bitmap (bit k = shard k differs), so
// only surviving shards pay sub-session costs.

#ifndef PBS_SYNC_MERKLE_PREFILTER_H_
#define PBS_SYNC_MERKLE_PREFILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs::sync {

/// Merkle root over `leaves` (MerkleTree's empty-list sentinel for S=0).
uint64_t MerkleRootOf(const std::vector<uint64_t>& leaves);

/// DIGEST_TREE payload: each leaf as 64 little-endian bits.
std::vector<uint8_t> EncodeDigestLeaves(const std::vector<uint64_t>& leaves);

/// Decodes a DIGEST_TREE payload of exactly `expected` leaves. Returns
/// false on any size mismatch.
bool DecodeDigestLeaves(const std::vector<uint8_t>& payload, size_t expected,
                        std::vector<uint64_t>* leaves);

/// DIGEST_REPLY payload: ceil(S/8) bytes, bit k (byte k/8, bit k%8) set
/// when shard k differs.
std::vector<uint8_t> EncodeDiffBitmap(const std::vector<uint8_t>& differs);

/// Decodes a DIGEST_REPLY payload for `shard_count` shards into a
/// per-shard byte vector (1 = differs). Trailing padding bits must be
/// zero. Returns false on size mismatch or dirty padding.
bool DecodeDiffBitmap(const std::vector<uint8_t>& payload, size_t shard_count,
                      std::vector<uint8_t>* differs);

/// Leafwise diff of two equal-length digest lists: ascending indices
/// where they disagree.
std::vector<uint32_t> DiffDigestLeaves(const std::vector<uint64_t>& a,
                                       const std::vector<uint64_t>& b);

}  // namespace pbs::sync

#endif  // PBS_SYNC_MERKLE_PREFILTER_H_
