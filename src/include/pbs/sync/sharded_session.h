// Pipelined per-shard sub-sessions multiplexed over one connection.
//
// After the Merkle pre-filter (sync/merkle_prefilter.h) has named the
// shards whose digests disagree, each surviving shard reconciles as an
// independent sub-session: its own scheme engines under a shard-derived
// seed, its own outcome. Estimation is *conditional on the pre-filter*:
// when the diff bitmap names only a handful of shards, the coordinator
// skips the ToW sketch exchange entirely (a small default bound plus the
// retry ladder is cheaper than shipping the sketch); otherwise one
// *global* estimate exchange runs -- the same ESTIMATE_REQUEST /
// ESTIMATE_REPLY frames as a monolithic session -- and the total is
// apportioned across the differing shards, so per-shard estimator bytes
// never hit the wire either way. A sub-session whose scheme decode fails
// is retried with a geometrically escalated difference bound (the
// per-attempt bound travels in the scheme-request prefix, and every
// scheme's responder sizes itself from request bytes), which bounds
// wasted bytes by a constant factor of the final successful attempt.
//
// Sub-sessions ride inside kSubSession frames; each frame carries a
// *batch* of records (u16 shard, u8 inner type, u32 length, payload), so
// the 23-byte outer envelope amortizes across every shard that had
// traffic in the flush. Up to SessionConfig::shard_pipeline shards are
// in flight at once -- shard k+1's request overlaps shard k's decode, so
// one connection keeps both endpoints busy instead of serializing S
// round trips.
//
// Batch model: the owning SessionEngine *enqueues* inbound sub-records
// as they decode and calls Flush() once per Feed() after the frame loop
// drains. Flush processes every queued record -- in parallel via
// pbs::ParallelFor when the session's decode_threads allows (each queued
// record touches a distinct shard, so the loop is embarrassingly
// parallel) -- then emits the resulting replies/requests in arrival
// order, so the recovered difference is identical for every thread count
// and every byte chunking. Per-shard scheme engines always run with
// decode_threads = 1: the shard loop owns the parallelism.
//
// Both endpoints of the sub-session layer live here: ShardedCoordinator
// drives the initiator side (opens shards, consumes replies, retries
// failed attempts, aggregates outcomes), ShardedResponderMux the
// responder side (demuxes requests to per-shard responder engines). The
// SessionEngine owns the wire envelope and the SHARD_PLAN / DIGEST_TREE
// exchange; see docs/WIRE_FORMAT.md section 2.5 and docs/ARCHITECTURE.md
// section 7.

#ifndef PBS_SYNC_SHARDED_SESSION_H_
#define PBS_SYNC_SHARDED_SESSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pbs/common/parallel.h"
#include "pbs/core/session_engine.h"
#include "pbs/sync/shard_planner.h"

namespace pbs::sync {

/// One decoded kSubSession record: shard id, inner frame type
/// (wire::FrameType as a byte), and the inner payload bytes.
struct SubFrame {
  uint32_t shard = 0;
  uint8_t inner_type = 0;
  std::vector<uint8_t> payload;
};

/// Appends one sub-session record to a kSubSession batch payload:
/// u16 shard (LE), u8 inner type, u32 payload length (LE), payload.
void AppendSubRecord(uint32_t shard, uint8_t inner_type, const uint8_t* data,
                     size_t size, std::vector<uint8_t>* out);

/// Parses a kSubSession batch payload into its records. Returns false
/// when any record header is truncated or a length overruns the buffer.
bool ParseSubRecords(const std::vector<uint8_t>& payload,
                     std::vector<SubFrame>* out);

/// Emission hook: the owning engine appends (shard, inner type, payload)
/// as a record of the current outbound kSubSession batch.
using SubEmit = std::function<void(uint32_t shard, uint8_t inner_type,
                                   const uint8_t* data, size_t size)>;

/// Everything a reconnecting initiator needs to finish an interrupted
/// sharded session. Captured by SessionEngine::Fail() from the
/// coordinator (SessionResult::resume_state), carried across the
/// reconnect by the resilient driver, and handed back via
/// SessionConfig::resume. The settled_* fields keep the work already
/// banked (differences recovered, accounting) on the client; only
/// `pending` travels to the responder inside the RESUME frame.
struct ShardResumeState {
  /// The negotiated (post-clamp) shard count of the interrupted session.
  int shard_count = 0;
  /// The responder's Merkle root from SHARD_PLAN_ACK / RESUME_ACK. The
  /// responder re-validates it on resume: a mismatch means its set
  /// changed between attempts and the resume is stale.
  uint64_t remote_root = 0;
  /// The per-shard first-attempt bound the interrupted session used.
  double initial_d = 1.0;
  /// Pre-filter / ladder accounting carried into the final summary.
  int identical_shards = 0;
  int retries = 0;
  int degraded = 0;

  /// One unsettled shard: where its retry/degradation ladder stood.
  struct Pending {
    uint32_t shard = 0;
    uint8_t attempt = 0;        ///< Last attempt number used (>= 1).
    uint8_t degrade_level = 0;  ///< 0 = primary scheme; >0 = fallback index.
    double d_attempt = 1.0;     ///< The bound that attempt ran with.
  };
  std::vector<Pending> pending;  ///< Ascending shard id.

  /// Work already settled before the disconnect, kept client-side.
  std::vector<uint64_t> settled_difference;
  uint64_t settled_data_bytes = 0;
  int settled_rounds = 0;
  double settled_encode_seconds = 0.0;
  double settled_decode_seconds = 0.0;
  int settled_count = 0;  ///< Differing shards that completed.
};

/// Initiator-side orchestrator of one sharded session.
///
/// Lifecycle: construct (derives the plan, streams the per-shard digest
/// leaves), exchange roots via the engine's SHARD_PLAN round
/// (AdoptShardCount if the responder clamped), EncodeDigestTree /
/// BeginSubSessions around the digest exchange, then
/// HandleSubFrame/Flush until done(), and TakeOutcome for the
/// aggregated result.
class ShardedCoordinator {
 public:
  ShardedCoordinator(const SessionConfig& config,
                     SessionEngine::SharedElements elements,
                     const SchemeRegistry* registry);

  /// Resuming constructor: re-attaches to the session `token` describes.
  /// The plan is derived from the token's shard count, the settled work
  /// is banked, and only the token's pending shards are staged (each
  /// continuing its ladder one attempt past where it stood). The engine
  /// sends RESUME instead of SHARD_PLAN / DIGEST_TREE, so no pre-filter
  /// runs again.
  ShardedCoordinator(const SessionConfig& config,
                     SessionEngine::SharedElements elements,
                     const SchemeRegistry* registry,
                     const ShardResumeState& token);
  ~ShardedCoordinator();

  /// False when construction failed (unknown scheme); error() says why.
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  int shard_count() const { return plan_.shard_count; }

  /// The per-shard digest leaves / their Merkle root for the current
  /// shard count (computed once per negotiated count, O(|A|) stream).
  const std::vector<uint64_t>& leaves();
  uint64_t root();

  /// Adopts the responder's accepted shard count (it may clamp the
  /// proposal down, never up). Re-derives the plan and leaves when it
  /// differs. False (with *error) outside [kMinKeyspaceShards, proposed].
  bool AdoptShardCount(int accepted, std::string* error);

  /// Builds the DIGEST_TREE payload: the S leaf digests, nothing else.
  void EncodeDigestTree(std::vector<uint8_t>* out);

  /// Consumes the responder's DIGEST_REPLY diff bitmap: partitions the
  /// local set for the differing shards only and stages their
  /// sub-sessions (opened lazily by Flush, `shard_pipeline` at a time).
  /// Afterwards NeedsEstimate() says whether a global estimate exchange
  /// must run before the sub-sessions may open.
  bool BeginSubSessions(const std::vector<uint8_t>& payload,
                        std::string* error);

  /// True when the coordinator wants one global ToW estimate exchange
  /// before opening sub-sessions: enough shards differ that a sketch is
  /// cheaper than blind retry ladders. False when config.exact_d
  /// pre-empted estimation or few enough shards differ to skip it.
  bool NeedsEstimate() const { return begun_ && !ready_; }

  /// Supplies the global difference estimate (the ESTIMATE_REPLY value);
  /// apportions it across the differing shards and unblocks Flush.
  void SetTotalEstimate(double d_hat);

  /// Enqueues one inbound sub-record (validated against the shard's
  /// phase). Call Flush afterwards to process and emit.
  bool HandleSubFrame(SubFrame frame, std::string* error);

  /// Processes every queued inbound record (in parallel across shards
  /// when decode_threads > 1), emits replies in arrival order, then
  /// opens further shards up to the pipeline cap.
  bool Flush(const SubEmit& emit, std::string* error);

  /// True once every differing shard's sub-session completed (vacuously
  /// true right after BeginSubSessions saw an all-identical bitmap).
  bool done() const { return begun_ && completed_ == subs_.size(); }

  int differing_shards() const { return static_cast<int>(subs_.size()); }
  int identical_shards() const { return identical_; }

  /// Shards that settled only after degrading to a fallback scheme
  /// (includes degradations carried in by a resume token).
  int degraded_shards() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the session for a later resume: the settled work plus
  /// each unsettled shard's ladder position. `remote_root` is the
  /// responder root the owning engine saw in SHARD_PLAN_ACK/RESUME_ACK.
  /// Null before the shard plan was agreed (nothing to resume) or once
  /// every shard settled.
  std::shared_ptr<ShardResumeState> MakeResumeState(uint64_t remote_root) const;

  /// The negotiated total difference bound: the global ToW estimate,
  /// config.exact_d when estimation was pre-empted, or -- when the
  /// pre-filter let the session skip estimation -- the sum of the final
  /// per-shard attempt bounds.
  double total_d_hat() const;

  /// Aggregated outcome: differences concatenated in ascending shard
  /// order, rounds = max over shards, byte/time accounting summed.
  /// Call once, after done().
  ReconcileOutcome TakeOutcome();

 private:
  struct Sub;
  void Open(Sub& sub);
  void StartAttempt(Sub& sub);
  bool TryDegrade(Sub& sub);
  void Process(Sub& sub, const SubFrame& frame);
  Sub* FindSub(uint32_t shard);

  SessionConfig config_;
  SessionEngine::SharedElements elements_;
  const SchemeRegistry* registry_;  // nullptr = SchemeRegistry::Instance().
  std::unique_ptr<SetReconciler> reconciler_;  // decode_threads forced to 1.
  ShardPlan plan_;
  std::vector<uint64_t> leaves_;
  bool leaves_valid_ = false;
  std::string error_;

  bool ready_ = false;        // Sub-sessions may open (estimate resolved).
  double d_hat_total_ = -1.0;  // Global estimate; -1 = exact_d / skipped.
  double initial_d_ = 1.0;     // Per-shard first-attempt bound.

  std::vector<std::unique_ptr<Sub>> subs_;  // Ascending shard id.
  bool begun_ = false;
  int identical_ = 0;
  int retries_ = 0;
  // Incremented from Process(), which may run on ParallelFor workers.
  std::atomic<int> degraded_{0};
  size_t completed_ = 0;
  size_t open_ = 0;
  size_t next_open_ = 0;
  int pipeline_ = 1;
  std::vector<SubFrame> queue_;
  std::unique_ptr<ParallelFor> pool_;  // Lazily created; null = serial.
  // Work banked by a resume token (empty/zero on fresh sessions).
  bool resumed_ = false;
  std::vector<uint64_t> carried_difference_;
  uint64_t carried_data_bytes_ = 0;
  int carried_rounds_ = 0;
  double carried_encode_ = 0.0;
  double carried_decode_ = 0.0;
  int carried_settled_ = 0;
  int carried_retries_ = 0;
};

/// Responder-side demultiplexer of one sharded session.
class ShardedResponderMux {
 public:
  /// `accepted_shards` is the negotiated (possibly clamped) shard count.
  /// When `snapshot` carries shard checksums matching (accepted_shards,
  /// config.seed), its incrementally-maintained leaves are adopted and
  /// the O(|B|) digest stream is skipped.
  ShardedResponderMux(const SessionConfig& config,
                      SessionEngine::SharedElements elements,
                      const SchemeRegistry* registry, int accepted_shards,
                      std::shared_ptr<const StoreSnapshot> snapshot);
  ~ShardedResponderMux();

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  uint64_t root();

  /// Consumes the initiator's DIGEST_TREE: diffs its leaves against the
  /// local ones, encodes the DIGEST_REPLY diff bitmap into *reply, and
  /// partitions the local set for the differing shards.
  bool HandleDigestTree(const std::vector<uint8_t>& payload,
                        std::vector<uint8_t>* reply, std::string* error);

  /// Resume path: skips the digest exchange and stages exactly the
  /// shards a RESUME frame named, seeding each shard's attempt counter
  /// where the interrupted session left it (the reconnecting initiator
  /// opens at attempt + 1, which the in-order check then accepts).
  /// `entries` are (shard id, last attempt) pairs, ascending and unique.
  bool BeginResume(const std::vector<std::pair<uint32_t, uint8_t>>& entries,
                   std::string* error);

  /// Shards this responder served with a degraded (fallback) scheme.
  int degraded_shards() const {
    return degraded_.load(std::memory_order_relaxed);
  }

  /// Enqueues one inbound sub-record; Flush processes and emits.
  bool HandleSubFrame(SubFrame frame, std::string* error);

  /// Processes every queued record (parallel across shards when
  /// decode_threads > 1) and emits the replies in arrival order.
  bool Flush(const SubEmit& emit, std::string* error);

 private:
  struct Sub;
  void EnsureLeaves();
  void Process(Sub& sub, const SubFrame& frame);
  Sub* FindSub(uint32_t shard);

  SessionConfig config_;
  SessionEngine::SharedElements elements_;
  const SchemeRegistry* registry_;  // nullptr = SchemeRegistry::Instance().
  std::unique_ptr<SetReconciler> reconciler_;  // decode_threads forced to 1.
  ShardPlan plan_;
  std::vector<uint64_t> leaves_;
  bool leaves_valid_ = false;
  std::string error_;

  std::vector<std::unique_ptr<Sub>> subs_;
  bool partitioned_ = false;
  // Incremented from Process(), which may run on ParallelFor workers.
  std::atomic<int> degraded_{0};
  std::vector<SubFrame> queue_;
  std::unique_ptr<ParallelFor> pool_;
};

}  // namespace pbs::sync

#endif  // PBS_SYNC_SHARDED_SESSION_H_
