// xxHash64, reimplemented from the public algorithm specification.
//
// The paper's implementation uses the xxHash library [11] for all hash
// functions in PBS (group partitioning, bin partitioning, ToW, ...). This is
// a from-scratch implementation of the same algorithm: it produces the
// canonical xxHash64 digest (verified against published test vectors in
// tests/hash/xxhash64_test.cc), so hash quality characteristics match the
// paper's setup.

#ifndef PBS_HASH_XXHASH64_H_
#define PBS_HASH_XXHASH64_H_

#include <cstddef>
#include <cstdint>

namespace pbs {

/// Computes xxHash64 of `len` bytes at `data` with the given seed.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

/// Convenience overload hashing one 64-bit integer (little-endian bytes).
uint64_t XxHash64(uint64_t value, uint64_t seed);

/// Preferred block size for the batched u64 hashing kernels below: feeding
/// multiples of this many keys per call keeps every SIMD lane busy.
inline constexpr size_t kXxHashBatch = 8;

/// Hashes `count` 64-bit keys under one shared seed:
/// `out[i] = XxHash64(values[i], seed)` bit-for-bit. Dispatches to the
/// AVX2 4-lane kernel when the CPU has it; otherwise runs the portable
/// multi-chain fallback. Any `count` is accepted (ragged tails are hashed
/// scalar); `out` may alias `values`.
void XxHash64Batch(const uint64_t* values, size_t count, uint64_t seed,
                   uint64_t* out);

/// Per-lane-seed variant: `out[i] = XxHash64(values[i], seeds[i])`. Used
/// where consecutive keys hash under different salts (per-group bin salts,
/// IBF subtable salts). `out` may alias `values` or `seeds`.
void XxHash64Batch(const uint64_t* values, const uint64_t* seeds, size_t count,
                   uint64_t* out);

/// Fused hash + bucket reduce: `out[i] = ((XxHash64(values[i], seed) *
/// buckets) >> 64) + bias` (the fixed-point bucket map of
/// SaltedHash::Bucket, bias-shifted for 1-based bin indices). Keeping the
/// reduce in vector registers avoids the extra memory pass a separate
/// BucketMany would cost; the AVX2 path engages for buckets < 2^32 (every
/// bin/group/bucket count in PBS), larger bucket counts run scalar.
/// `out` may alias `values`.
void XxHash64BucketBatch(const uint64_t* values, size_t count, uint64_t seed,
                         uint64_t buckets, uint64_t bias, uint64_t* out);

/// Portable reference for the batched kernels (multi-chain scalar, no SIMD
/// dispatch): the differential tests pin the dispatched paths against this.
void XxHash64BatchPortable(const uint64_t* values, size_t count, uint64_t seed,
                           uint64_t* out);

/// Portable reference for XxHash64BucketBatch.
void XxHash64BucketBatchPortable(const uint64_t* values, size_t count,
                                 uint64_t seed, uint64_t buckets,
                                 uint64_t bias, uint64_t* out);

/// Portable reference, per-lane-seed form.
void XxHash64BatchPortable(const uint64_t* values, const uint64_t* seeds,
                           size_t count, uint64_t* out);

}  // namespace pbs

#endif  // PBS_HASH_XXHASH64_H_
