// xxHash64, reimplemented from the public algorithm specification.
//
// The paper's implementation uses the xxHash library [11] for all hash
// functions in PBS (group partitioning, bin partitioning, ToW, ...). This is
// a from-scratch implementation of the same algorithm: it produces the
// canonical xxHash64 digest (verified against published test vectors in
// tests/hash/xxhash64_test.cc), so hash quality characteristics match the
// paper's setup.

#ifndef PBS_HASH_XXHASH64_H_
#define PBS_HASH_XXHASH64_H_

#include <cstddef>
#include <cstdint>

namespace pbs {

/// Computes xxHash64 of `len` bytes at `data` with the given seed.
uint64_t XxHash64(const void* data, size_t len, uint64_t seed);

/// Convenience overload hashing one 64-bit integer (little-endian bytes).
uint64_t XxHash64(uint64_t value, uint64_t seed);

}  // namespace pbs

#endif  // PBS_HASH_XXHASH64_H_
