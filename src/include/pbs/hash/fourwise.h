// Four-wise independent hashing onto {+1, -1} for the Tug-of-War estimator.
//
// Section 6.1 requires a family F of four-wise independent hash functions
// mapping U to {+1, -1} with equal probability (Fact 1 in Appendix A). The
// classic construction is a uniformly random degree-3 polynomial over a
// prime field: h(x) = a3 x^3 + a2 x^2 + a1 x + a0 mod p with p = 2^61 - 1,
// mapped to +/-1 by a balanced predicate on the result.

#ifndef PBS_HASH_FOURWISE_H_
#define PBS_HASH_FOURWISE_H_

#include <cstdint>

namespace pbs {

/// Degree-3 polynomial hash over GF(p), p = 2^61 - 1 (Mersenne), giving a
/// 4-wise independent family. Sign() maps the field value to +/-1.
class FourWiseHash {
 public:
  /// Coefficients are derived deterministically from `seed`; drawing seeds
  /// independently yields independent family members.
  explicit FourWiseHash(uint64_t seed);

  /// The polynomial value in [0, p).
  uint64_t Eval(uint64_t x) const;

  /// Balanced +/-1 map: parity of the low bit of Eval. Because the field
  /// size is odd, the bias is < 2^-60 and irrelevant in practice.
  int Sign(uint64_t x) const { return (Eval(x) & 1) ? 1 : -1; }

  static constexpr uint64_t kPrime = (uint64_t{1} << 61) - 1;

 private:
  uint64_t a_[4];  // a_[k] multiplies x^k.
};

}  // namespace pbs

#endif  // PBS_HASH_FOURWISE_H_
