// Salted hash families for consistent hash-partitioning.
//
// PBS needs an unbounded supply of mutually independent hash functions:
// h' partitions a set into g groups (Section 3); within each group a fresh h
// per round partitions the group into n bins (Sections 2.2.1, 2.4); a fresh
// salt per three-way split partitions failed groups into sub-groups
// (Section 3.2). HashFamily derives each function from (master seed, role,
// round, group, split-depth) via SplitMix64-mixed salts over xxHash64, so
// both endpoints construct identical functions without communication.

#ifndef PBS_HASH_HASH_FAMILY_H_
#define PBS_HASH_HASH_FAMILY_H_

#include <cstdint>

#include "pbs/hash/xxhash64.h"

namespace pbs {

/// One keyed hash function u64 -> u64.
class SaltedHash {
 public:
  explicit SaltedHash(uint64_t salt) : salt_(salt) {}

  uint64_t operator()(uint64_t x) const { return XxHash64(x, salt_); }

  /// Hash reduced to [0, buckets). `buckets` must be > 0.
  uint64_t Bucket(uint64_t x, uint64_t buckets) const {
    // Fixed-point multiply avoids modulo bias for buckets << 2^64.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(operator()(x)) * buckets) >> 64);
  }

  /// Batch form of Bucket: `out[i] = Bucket(xs[i], buckets)` for `count`
  /// keys, hashing through the lane-batched xxHash64 kernel (out may alias
  /// xs). Bit-identical to the scalar form; feeding multiples of
  /// kXxHashBatch keys keeps every lane busy.
  void BucketMany(const uint64_t* xs, size_t count, uint64_t buckets,
                  uint64_t* out) const {
    XxHash64BucketBatch(xs, count, salt_, buckets, /*bias=*/0, out);
  }

  uint64_t salt() const { return salt_; }

 private:
  uint64_t salt_;
};

/// Derives the salts used across a PBS session. A fixed role constant keeps
/// the group-partition hash, per-round bin hashes, and estimator hashes
/// disjoint even though they share the master seed.
class HashFamily {
 public:
  enum Role : uint64_t {
    kGroupPartition = 1,
    kBinPartition = 2,
    kSplitPartition = 3,
    kEstimator = 4,
    kIbf = 5,
    kBloom = 6,
    kStrata = 7,
    // Sharded huge-set reconciliation (sync/shard_planner.h): the
    // keyspace-partition hash, the per-shard multiset-checksum salt, and
    // the per-shard sub-session seed derivation. Disjoint roles keep the
    // shard partition independent of every in-shard hash choice.
    kShardPartition = 8,
    kShardChecksum = 9,
    kShardSession = 10,
  };

  explicit HashFamily(uint64_t master_seed) : master_seed_(master_seed) {}

  /// Deterministic salt for (role, index triple).
  uint64_t Salt(Role role, uint64_t a = 0, uint64_t b = 0,
                uint64_t c = 0) const;

  /// Hash function for a (role, indices) slot.
  SaltedHash Get(Role role, uint64_t a = 0, uint64_t b = 0,
                 uint64_t c = 0) const {
    return SaltedHash(Salt(role, a, b, c));
  }

  uint64_t master_seed() const { return master_seed_; }

 private:
  uint64_t master_seed_;
};

}  // namespace pbs

#endif  // PBS_HASH_HASH_FAMILY_H_
