// EventLoop: readiness notification behind one small interface.
//
// The sharded server (net/shard.h, net/reconcile_server.h) watches
// hundreds to tens of thousands of fds per shard; poll(2)'s O(watched)
// kernel scan per wakeup is what caps the old single-loop server. This
// wrapper exposes level-triggered readiness over two backends:
//
//   * epoll  — Linux. O(ready) wakeups, fd set maintained in the kernel.
//   * poll   — everywhere. The registration table is PERSISTENT: Add /
//              Modify / Remove update one pollfd vector in place, so the
//              historical rebuild-the-array-every-iteration waste is gone
//              even on the fallback path.
//
// Backend selection: Backend::kAuto picks epoll on Linux and poll
// elsewhere; the PBS_EVENT_LOOP environment variable ("epoll" / "poll")
// overrides kAuto so CI can drive the fallback on Linux without a
// separate build. Non-Linux builds compile only the poll backend
// (requesting kEpoll degrades to poll).
//
// Thread contract: an EventLoop belongs to exactly one thread; every
// method is loop-thread-only. Cross-thread wakeups are the OWNER's job
// (register a pipe/eventfd and write to it from elsewhere) — see
// Shard::Wake().
//
// Steady-state Wait() performs zero heap allocations: the ready-event
// array and the backend's kernel-event scratch warm to the watched-fd
// count and are reused.

#ifndef PBS_NET_EVENT_LOOP_H_
#define PBS_NET_EVENT_LOOP_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct pollfd;  // The poll backend's table lives in the header-free pimpl.

namespace pbs {

/// Level-triggered readiness multiplexer; see the file comment.
class EventLoop {
 public:
  /// Interest / readiness bits (backend-independent).
  static constexpr uint32_t kRead = 1u << 0;   ///< fd readable (or EOF).
  static constexpr uint32_t kWrite = 1u << 1;  ///< fd writable.
  /// Peer hangup or fd error. Reported even when not requested; callers
  /// should treat it like kRead (the next read surfaces EOF/the error).
  static constexpr uint32_t kHangup = 1u << 2;

  /// One ready fd, identified by the caller's registration tag (the fd
  /// itself is deliberately absent: shards tag with session-slot indices
  /// and never need a reverse lookup).
  struct Event {
    uint64_t tag;
    uint32_t ready;  ///< kRead / kWrite / kHangup bits.
  };

  enum class Backend {
    kAuto,   ///< epoll on Linux, poll elsewhere; PBS_EVENT_LOOP overrides.
    kEpoll,  ///< epoll_wait (degrades to poll off Linux).
    kPoll,   ///< poll(2) over the persistent registration table.
  };

  explicit EventLoop(Backend preferred = Backend::kAuto);
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// False when the backend could not initialize (epoll_create failure);
  /// every later call is then a safe no-op returning failure.
  bool ok() const { return ok_; }

  /// "epoll" or "poll" — which backend actually runs.
  const char* backend_name() const;

  /// Registers `fd` for the `interest` bits under `tag`. One registration
  /// per fd; re-adding an fd without removing it first is an error
  /// (returns false).
  bool Add(int fd, uint32_t interest, uint64_t tag);

  /// Updates the interest bits and tag of a registered fd.
  bool Modify(int fd, uint32_t interest, uint64_t tag);

  /// Deregisters a fd (before or after closing is both fine for poll; for
  /// epoll call BEFORE close, as the kernel drops closed fds itself and a
  /// second removal would fail). Returns false if the fd was not
  /// registered.
  bool Remove(int fd);

  /// Number of registered fds.
  size_t watched() const { return watched_; }

  /// Waits up to `timeout_ms` (-1 = forever) and fills events(). Returns
  /// the number of ready events, 0 on timeout, and -1 on a backend error
  /// (EINTR is swallowed and reported as 0). The events() view is valid
  /// until the next Wait().
  int Wait(int timeout_ms);

  /// The ready events of the last Wait(), [0, its return value).
  const Event* events() const { return ready_.data(); }

 private:
  bool use_epoll_ = false;
  bool ok_ = false;
  size_t watched_ = 0;
  std::vector<Event> ready_;

#ifdef __linux__
  int epoll_fd_ = -1;
  std::vector<uint8_t> epoll_scratch_;  // epoll_event array, opaque here.
#endif

  // poll backend: the persistent table. fds_[i] pairs with tags_[i];
  // index_of_fd_ maps fd -> i; Remove swap-erases.
  std::vector<struct pollfd> fds_;
  std::vector<uint64_t> tags_;
  std::unordered_map<int, size_t> index_of_fd_;
};

}  // namespace pbs

#endif  // PBS_NET_EVENT_LOOP_H_
