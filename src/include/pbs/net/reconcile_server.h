// ReconcileServer: many concurrent reconciliations from N event-loop
// shards.
//
// The sans-I/O split (core/session_engine.h) is what makes this layer
// small: the server owns sockets, readiness, timeouts, and counters; each
// accepted connection owns one responder-side SessionEngine, and a shard
// loop just moves bytes between the two.
//
// Topology (net/shard.h, net/event_loop.h):
//
//   Run() caller thread          N shard threads (--shards)
//   ┌─────────────────────┐      ┌──────────────────────────────────┐
//   │ acceptor event loop │  fd  │ shard event loop (epoll / poll)  │
//   │  listener + wake    │─────▶│  slot-based session table        │
//   │  batch accept       │ pipe │  one SessionEngine per session   │
//   │  EMFILE backoff     │      │  LRU idle list, 64 KiB buffer    │
//   │  capacity rejects   │      │  per-shard atomic counters       │
//   └─────────────────────┘      └──────────────────────────────────┘
//
// Accepted connections are distributed round-robin by fd handoff (a
// 4-byte write into the shard's pipe, which doubles as its wakeup
// channel). A session lives its whole life on one shard: its engine,
// buffers, idle bookkeeping, and counters are shard-local, so the
// steady-state Feed/Poll path takes no locks and performs no heap
// allocations; stats() aggregates the per-shard counters on demand.
//
// Policy knobs:
//   * shards          — event-loop threads (1 keeps the old one-loop
//                       behavior, results identical by test);
//   * max_sessions    — connections beyond the cap are told why (a
//                       best-effort ERROR frame) and closed;
//   * idle timeout    — a peer that goes quiet mid-session is dropped;
//   * serve_limit     — stop after N finished sessions (pbs_cli --once);
//   * accept backoff  — on EMFILE/ENFILE the listener leaves the accept
//                       loop for a short window instead of spinning hot.
//
// Run() owns the calling thread until Stop() (thread-safe, wakes the
// loop via a self-pipe) or the serve limit; RunOnce() exposes single
// acceptor iterations for embeddings that already have a loop of their
// own (shard threads still run in the background between calls).

#ifndef PBS_NET_RECONCILE_SERVER_H_
#define PBS_NET_RECONCILE_SERVER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pbs/core/session_engine.h"
#include "pbs/net/event_loop.h"

namespace pbs {

/// Construction-time server policy.
struct ServerOptions {
  /// TCP port to listen on (0 picks an ephemeral port; read it back with
  /// port()).
  uint16_t port = 0;
  /// Event-loop shard threads. 1 = one loop (the classic single-threaded
  /// server, wire-identical results); 0 = one shard per hardware thread.
  int shards = 1;
  /// Concurrent-session cap, server-wide. Peers accepted beyond it
  /// receive an ERROR frame ("server at session capacity") and are
  /// closed immediately.
  int max_sessions = 64;
  /// Drop a connection with no inbound/outbound progress for this long.
  int idle_timeout_ms = 30000;
  /// Stop serving after this many sessions finished (completed, failed,
  /// or timed out). 0 = serve until Stop().
  uint64_t serve_limit = 0;
  /// After accept(2) fails with EMFILE/ENFILE/ENOBUFS/ENOMEM, stop
  /// watching the listener for this long instead of spinning on a
  /// readiness the kernel cannot satisfy.
  int accept_backoff_ms = 100;
  /// Readiness backend for every loop (acceptor + shards). kAuto picks
  /// epoll on Linux, poll elsewhere; PBS_EVENT_LOOP overrides kAuto.
  EventLoop::Backend event_backend = EventLoop::Backend::kAuto;
  /// Scheme registry served to every session's responder engine.
  /// nullptr = the process-wide SchemeRegistry::Instance(); tests inject
  /// their own.
  const SchemeRegistry* registry = nullptr;
  /// Live mutable served set (core/element_store.h). When set, the
  /// `elements` vector passed to Create() is ignored: every admitted
  /// session pins the store's snapshot at admit time (one consistent
  /// epoch per session, however fast writers churn the set), schemes
  /// with a snapshot fast path adopt the store's incrementally-maintained
  /// sketches instead of rebuilding per session, and UPDATE sessions
  /// (kUpdate frames, e.g. `pbs_cli update`) mutate the store in place.
  /// The store must outlive the server; writers may call Apply() from any
  /// thread concurrently with serving. nullptr = classic immutable set.
  std::shared_ptr<MutableElementStore> mutable_store;
  /// Per-group decode parallelism handed to every session's responder
  /// engine (PbsConfig::decode_threads: 1 = serial, 0 = one worker per
  /// hardware thread). A server-local knob -- it never affects the wire
  /// bytes or the recovered difference, only how fast a round's g
  /// independent BCH decodes finish. Note each in-flight session owns its
  /// own pool, so the thread budget is decode_threads * active sessions.
  int decode_threads = 1;
  /// Local keyspace-shard cap for sharded sessions (SHARD_PLAN): a
  /// proposal above this is clamped down to it in the SHARD_PLAN_ACK.
  /// 0 = accept whatever the initiator proposes.
  int keyspace_shards = 0;
  /// Per-phase deadline for every served session (SessionConfig::
  /// phase_deadline_ms): a peer that sends no complete frame for this
  /// long is failed with "phase deadline exceeded while <phase>" rather
  /// than holding a slot until the idle timeout. 0 = disabled.
  int phase_deadline_ms = 0;
};

/// Monotonic counters, snapshot via ReconcileServer::stats() — an
/// on-demand aggregation of the per-shard counter blocks plus the
/// acceptor's own tallies.
struct ServerStats {
  uint64_t accepted = 0;           ///< Connections admitted into a session.
  uint64_t completed = 0;          ///< Sessions that reached DONE.
  uint64_t failed = 0;             ///< Sessions that ended in an error.
  uint64_t timed_out = 0;          ///< Sessions dropped by the idle timeout.
  uint64_t rejected_capacity = 0;  ///< Connections refused at max_sessions.
  uint64_t bytes_in = 0;           ///< Total bytes read from peers.
  uint64_t bytes_out = 0;          ///< Total bytes written to peers.
  /// Completed sessions per scheme registry key.
  std::map<std::string, uint64_t> completed_by_scheme;
  /// Sessions currently in flight (gauge, not a counter).
  uint64_t active = 0;
  /// Keyspace sub-sessions served with a degraded (fallback) scheme
  /// after the initiator's retry ladder exhausted its primary.
  uint64_t degraded_shards = 0;
};

/// What the accept loop should do about a failed accept(2). Exposed for
/// tests; the classification is the load-bearing part of the server's
/// accept resilience.
enum class AcceptErrorAction {
  /// Transient, per-connection: the next accept may succeed right away
  /// (ECONNABORTED, EINTR, EPROTO, and the transient network errnos).
  kRetry,
  /// Resource exhaustion (EMFILE/ENFILE/ENOBUFS/ENOMEM) or anything
  /// unrecognized: retrying immediately would spin hot on a readiness
  /// the kernel cannot satisfy, so leave the accept loop for a backoff
  /// window.
  kBackoff,
};

/// Maps an accept(2) errno to the loop's reaction.
AcceptErrorAction ClassifyAcceptError(int error);

/// Sharded event-loop server holding one responder SessionEngine per
/// accepted connection. Construct with Create(), then either hand the
/// calling thread to Run() or drive RunOnce() from an existing loop.
/// Thread contract: Run()/RunOnce() from one thread; Stop()/stats()/
/// port() from any thread. The session logger runs on shard threads,
/// serialized by an internal mutex.
class ReconcileServer {
 public:
  /// Per-finished-session hook (called on the owning shard's thread,
  /// after the session closed): the responder-side SessionResult.
  using SessionLogger = std::function<void(const SessionResult&)>;

  /// Binds and listens. `elements` is the served key set (the responder
  /// set of every session). Returns nullptr and fills *error on failure.
  static std::unique_ptr<ReconcileServer> Create(
      const ServerOptions& options, std::vector<uint64_t> elements,
      std::string* error);

  ~ReconcileServer();
  ReconcileServer(const ReconcileServer&) = delete;
  ReconcileServer& operator=(const ReconcileServer&) = delete;

  /// The bound port (resolves ephemeral port-0 requests).
  uint16_t port() const;

  /// The number of shard threads actually serving.
  int shard_count() const;

  /// Serves until Stop() or the serve limit: spawns the shard threads,
  /// runs the acceptor on the calling thread, joins the shards before
  /// returning. Returns the number of sessions finished over this call.
  uint64_t Run();

  /// One acceptor iteration: waits up to `timeout_ms` for listener/wake
  /// readiness and performs every ready accept. Shard threads are
  /// started on the first call and keep serving between calls. Returns
  /// false once the server should stop (Stop() called or serve limit
  /// reached) — shard threads are joined before that false returns.
  bool RunOnce(int timeout_ms);

  /// Asks the loop to stop; safe from any thread and from the logger.
  void Stop();

  /// Snapshot of the counters; safe from any thread.
  ServerStats stats() const;

  /// Installs the per-session hook. Call before Run().
  void set_session_logger(SessionLogger logger);

 private:
  class Impl;
  explicit ReconcileServer(std::unique_ptr<Impl> impl);
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbs

#endif  // PBS_NET_RECONCILE_SERVER_H_
