// Reconnect backoff policy for resilient session drivers.
//
// RunResilientInitiatorSession (core/wire_session.h) and `pbs_cli
// connect --retries` sleep between connection attempts according to a
// RetryPolicy: capped exponential backoff with *decorrelated jitter*
// (each delay is drawn uniformly from [base, 3 * previous] and clamped
// to the cap), which avoids the synchronized retry stampedes plain
// exponential backoff produces when many clients lose the same server
// at once. The jitter stream is seeded, so a given policy replays the
// same delay sequence — tests assert exact schedules.

#ifndef PBS_NET_RETRY_POLICY_H_
#define PBS_NET_RETRY_POLICY_H_

#include <cstdint>

#include "pbs/common/rng.h"

namespace pbs {

/// Tunables for one reconnect ladder.
struct RetryPolicy {
  int max_attempts = 3;    ///< Total connection attempts (>= 1).
  int base_delay_ms = 50;  ///< Floor of every delay draw.
  int max_delay_ms = 2000; ///< Cap on any single delay.
  uint64_t seed = 0x9E37;  ///< Jitter stream seed (deterministic replay).
};

/// Stateful delay generator for one reconnect sequence. Not thread-safe;
/// make one per session attempt loop.
class RetryBackoff {
 public:
  explicit RetryBackoff(const RetryPolicy& policy);

  /// The delay to sleep before the *next* attempt. Successive calls grow
  /// toward the cap; Reset() restarts the ladder (e.g. after a success).
  int NextDelayMs();

  /// Restarts the ladder at the base delay.
  void Reset();

 private:
  RetryPolicy policy_;
  Xoshiro256 rng_;
  int prev_ms_;
};

}  // namespace pbs

#endif  // PBS_NET_RETRY_POLICY_H_
