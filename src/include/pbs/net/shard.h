// Shard: one event-loop thread's worth of the sharded reconcile server.
//
// A shard owns, exclusively and forever on its own thread:
//
//   * an EventLoop (epoll on Linux, persistent-table poll elsewhere);
//   * a slot-based session table — one responder SessionEngine per live
//     connection, slots recycled through a free list so the steady state
//     never touches a hash map or allocates;
//   * an intrusive LRU idle list threaded through the slots (O(1) touch
//     on progress, O(reaped) sweep, and the head bounds the epoll
//     timeout so silent peers are reaped on time);
//   * a 64 KiB read buffer;
//   * its stats block: relaxed atomic counters written only by the shard
//     thread and read by anyone (ReconcileServer::stats() aggregates all
//     shards on demand — no shared mutex anywhere near the byte path).
//
// Connections arrive by fd handoff: the acceptor writes the 4-byte fd
// value into the shard's handoff pipe (atomic below PIPE_BUF), which
// doubles as the shard's wakeup channel — Wake() writes the -1 sentinel.
// Everything else the shard does — Feed/Poll pumping, interest updates,
// idle reaping, finalization — happens without locks; the only mutexes
// are per-shard around the (once-per-session) scheme tally map and the
// server-wide logger serialization, neither of which is on the
// steady-state Feed/Poll path. tests/core/hotpath_alloc_test.cc pins the
// shard loop's steady-state round processing at zero heap allocations.
//
// This header is an internal building block of net/reconcile_server.h;
// it is public so tests can drive a shard directly, but the stable API
// is ReconcileServer.

#ifndef PBS_NET_SHARD_H_
#define PBS_NET_SHARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pbs/core/session_engine.h"
#include "pbs/net/event_loop.h"

namespace pbs {

/// Counters one shard maintains. Plain relaxed atomics: the shard thread
/// is the only writer, aggregation reads are racy-by-design snapshots
/// (exact once the shard quiesces). The scheme tally map is the one
/// mutex-guarded member, touched once per COMPLETED session.
struct ShardStats {
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> timed_out{0};
  std::atomic<uint64_t> bytes_in{0};
  std::atomic<uint64_t> bytes_out{0};
  std::atomic<uint64_t> active{0};  ///< Sessions adopted, not yet finished.
  /// Sub-sessions served with a degraded (fallback) scheme, summed over
  /// completed sessions (SessionResult::degraded_shards).
  std::atomic<uint64_t> degraded{0};

  mutable std::mutex scheme_mutex;
  std::map<std::string, uint64_t> completed_by_scheme;
};

/// State shared between the acceptor and every shard (one instance per
/// ReconcileServer).
struct ShardShared {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> finished{0};  ///< Sessions finished, server-wide.
  std::atomic<uint64_t> active{0};    ///< Admitted and not yet finished.
  uint64_t serve_limit = 0;           ///< Immutable after start; 0 = none.
  /// Acceptor wake pipe (write end); a shard that trips the serve limit
  /// pokes it so Run() returns promptly. -1 = none.
  int acceptor_wake_fd = -1;
  /// Serializes the user's session logger across shard threads (the
  /// logger contract stays "called once per finished session", now from
  /// whichever shard owned it).
  std::mutex logger_mutex;
  std::function<void(const SessionResult&)> logger;
};

/// One event-loop shard. Construct, then either hand a thread to Loop()
/// or drive LoopOnce() inline (the shards=1 embedding). Handoff()/Wake()
/// are the only cross-thread entry points.
class Shard {
 public:
  struct Options {
    int idle_timeout_ms = 30000;
    int decode_threads = 1;
    int keyspace_shards = 0;  // Local SHARD_PLAN clamp; 0 = accept any.
    // Per-phase deadline handed to every session engine (SessionConfig::
    // phase_deadline_ms): a session whose peer sends no complete frame
    // for this long is failed with a phase diagnostic instead of waiting
    // for the (longer) idle timeout. 0 = disabled.
    int phase_deadline_ms = 0;
    EventLoop::Backend backend = EventLoop::Backend::kAuto;
  };

  /// `store` is optional: when non-null, each adopted connection pins the
  /// store's current snapshot (one consistent epoch per session) instead
  /// of using `elements`, and the session accepts UPDATE frames.
  Shard(int index, const Options& options,
        SessionEngine::SharedElements elements,
        std::shared_ptr<MutableElementStore> store,
        const SchemeRegistry* registry, ShardShared* shared);
  ~Shard();
  Shard(const Shard&) = delete;
  Shard& operator=(const Shard&) = delete;

  /// False when construction failed (pipe/event-loop); error() says why.
  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  /// Which readiness backend this shard runs on ("epoll"/"poll").
  const char* backend_name() const { return loop_.backend_name(); }

  /// Hands a connected, non-blocking fd to the shard (acceptor thread).
  /// Returns false when the handoff pipe is full — thousands of adoptions
  /// already pending — which callers treat as overload and reject.
  bool Handoff(int fd);

  /// Wakes the shard loop without handing it a connection (any thread).
  void Wake();

  /// Runs LoopOnce until ShardShared::stop. Thread body.
  void Loop();

  /// One loop iteration: waits up to `timeout_ms` (clamped to the nearest
  /// idle deadline), adopts handed-off fds, services ready sessions,
  /// reaps idle ones. Returns false once the shard should stop.
  bool LoopOnce(int timeout_ms);

  const ShardStats& stats() const { return stats_; }
  int index() const { return index_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct Slot {
    int fd = -1;
    std::unique_ptr<SessionEngine> engine;
    Clock::time_point last_active{};
    uint32_t interest = 0;
    // Intrusive idle-LRU links (head = oldest) and the free list.
    int lru_prev = -1;
    int lru_next = -1;
    int next_free = -1;
  };

  void DrainHandoffPipe();
  void Adopt(int fd);
  int PopFreeSlot();
  void PushFreeSlot(int slot);
  void LruUnlink(int slot);
  void LruAppend(int slot);
  void LruTouch(int slot);
  int ClampToIdleDeadline(int timeout_ms) const;
  void ServiceSlot(int slot, uint32_t ready);
  bool ReadReady(Slot& s);
  void FlushWrites(Slot& s);
  void UpdateInterest(int slot);
  void MaybeFinalize(int slot, bool peer_gone);
  void SweepIdle();
  void SweepDeadlines();
  void FinishSession(int slot, bool timed_out);

  const int index_;
  const Options options_;
  const SessionEngine::SharedElements elements_;
  const std::shared_ptr<MutableElementStore> store_;
  const SchemeRegistry* const registry_;
  ShardShared* const shared_;

  EventLoop loop_;
  int handoff_read_ = -1;
  int handoff_write_ = -1;
  bool ok_ = false;
  std::string error_;

  std::vector<Slot> slots_;
  int free_head_ = -1;
  int lru_head_ = -1;
  int lru_tail_ = -1;

  // Partial 4-byte handoff messages can straddle pipe reads.
  uint8_t carry_[512];
  size_t carry_len_ = 0;
  uint8_t read_buffer_[64 * 1024];

  ShardStats stats_;
};

}  // namespace pbs

#endif  // PBS_NET_SHARD_H_
