// Tug-of-War (ToW) set-difference cardinality estimator (Section 6).
//
// One ToW sketch of a set S under a 4-wise independent +/-1 hash f is
// Y_f(S) = sum_{s in S} f(s). For two sets, (Y_f(A) - Y_f(B))^2 is an
// unbiased estimator of d = |A /\triangle B| with variance 2d^2 - 2d
// (Appendix A); averaging ell independent sketches divides the variance by
// ell. PBS uses ell = 128 and conservatively inflates the estimate by
// gamma = 1.38, the smallest factor for which Pr[d <= gamma * d-hat] >= 99%.
//
// Wire size: each counter lies in [-|S|, |S|], so ell sketches cost
// ell * ceil(log2(2|S|+1)) bits -- 336 bytes for ell = 128, |S| = 10^6.

#ifndef PBS_ESTIMATOR_TOW_H_
#define PBS_ESTIMATOR_TOW_H_

#include <cstdint>
#include <vector>

#include "pbs/common/bitio.h"

namespace pbs {

/// A bank of ell ToW counters for one set.
class TowSketch {
 public:
  /// Builds ell sketches whose hash functions are derived from `seed`
  /// (both parties must use the same seed).
  TowSketch(int ell, uint64_t seed);

  /// Accumulates one element into every counter.
  void Add(uint64_t element);

  /// Convenience: accumulate a whole set.
  void AddAll(const std::vector<uint64_t>& elements);

  int ell() const { return static_cast<int>(counters_.size()); }
  const std::vector<int64_t>& counters() const { return counters_; }

  /// The ToW estimate d-hat = (1/ell) * sum_i (Y_i(A) - Y_i(B))^2.
  /// Both sketches must share ell and seed.
  static double Estimate(const TowSketch& a, const TowSketch& b);

  /// Serializes counters at fixed width ceil(log2(2*set_size+1)) bits each
  /// (the space accounting of Section 6.1).
  void Serialize(BitWriter* writer, uint64_t set_size) const;
  static TowSketch Deserialize(BitReader* reader, int ell, uint64_t seed,
                               uint64_t set_size);

  /// Wire size in bits for a set of `set_size` elements.
  static int BitSize(int ell, uint64_t set_size);

 private:
  std::vector<int64_t> counters_;
  std::vector<uint64_t> hash_seeds_;
};

/// One full estimate exchange between two in-memory sets: both sides
/// build ell sketches under the shared `seed`, and d-hat is computed from
/// the counter differences. `bytes` is the one-direction wire cost of
/// shipping the responder's sketches (the Section-6.1 accounting callers
/// such as pbs_cli and the examples report next to the protocol bytes).
struct TowExchange {
  double d_hat = 0.0;
  size_t bytes = 0;
};
TowExchange TowEstimateExchange(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b, int ell,
                                uint64_t seed);

/// Computes the ToW estimate directly from the symmetric difference.
/// Because common elements cancel in Y_i(A) - Y_i(B), the returned value is
/// distributed *identically* to Estimate(sketch(A), sketch(B)) -- the
/// experiment runner uses this O(ell * d) shortcut instead of the
/// O(ell * (|A|+|B|)) full pass when it already knows the ground-truth
/// difference, without changing any measured statistic.
double TowEstimateFromDifference(const std::vector<uint64_t>& sym_diff,
                                 int ell, uint64_t seed);

/// Inflation factor gamma such that Pr[d <= gamma * d-hat] >= 0.99 at
/// ell = 128 (determined by the paper via Monte-Carlo; re-validated in
/// bench_estimator_tow).
inline constexpr double kTowGamma = 1.38;
inline constexpr int kTowDefaultSketches = 128;

}  // namespace pbs

#endif  // PBS_ESTIMATOR_TOW_H_
