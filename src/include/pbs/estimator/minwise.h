// Min-wise set-difference estimator (Appendix B baseline).
//
// k independent min-hashes estimate the Jaccard similarity J = |A n B| /
// |A u B| as the fraction of matching minima [8]; the difference cardinality
// follows as d = (1 - J) / (1 + J) * (|A| + |B|).

#ifndef PBS_ESTIMATOR_MINWISE_H_
#define PBS_ESTIMATOR_MINWISE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// One party's bank of k min-hash values.
class MinwiseEstimator {
 public:
  MinwiseEstimator(int k, uint64_t seed);

  void Add(uint64_t element);
  void AddAll(const std::vector<uint64_t>& elements);

  /// Estimated |A /\triangle B| given both sketches and both set sizes.
  static double Estimate(const MinwiseEstimator& a, uint64_t size_a,
                         const MinwiseEstimator& b, uint64_t size_b);

  /// Wire size: k hash values of `value_bits` bits.
  static size_t BitSize(int k, int value_bits) {
    return static_cast<size_t>(k) * value_bits;
  }

  const std::vector<uint64_t>& minima() const { return minima_; }

 private:
  std::vector<uint64_t> minima_;
  std::vector<uint64_t> seeds_;
};

}  // namespace pbs

#endif  // PBS_ESTIMATOR_MINWISE_H_
