// Strata estimator (Eppstein et al. [15]), reproduced as an estimator
// baseline for Appendix B.
//
// Elements are assigned to stratum i with probability 2^-(i+1) (the number
// of trailing zero bits of a hash); each stratum holds a small IBF. To
// estimate |A /\triangle B|, the per-stratum IBFs are subtracted and decoded
// from the deepest stratum downward; the first stratum that fails to decode
// scales the count of everything recovered so far by 2^(i+1).

#ifndef PBS_ESTIMATOR_STRATA_H_
#define PBS_ESTIMATOR_STRATA_H_

#include <cstdint>
#include <vector>

#include "pbs/ibf/invertible_bloom_filter.h"

namespace pbs {

/// One party's strata sketch.
class StrataEstimator {
 public:
  /// `num_strata` IBF levels of `cells_per_stratum` cells each.
  StrataEstimator(int num_strata, size_t cells_per_stratum, uint64_t seed,
                  int sig_bits);

  void Add(uint64_t element);
  void AddAll(const std::vector<uint64_t>& elements);

  /// Estimates |A /\triangle B| from two strata sketches built with the
  /// same parameters and seed.
  static double Estimate(const StrataEstimator& a, const StrataEstimator& b);

  /// Wire size in bits (all strata IBFs).
  size_t bit_size() const;

  int num_strata() const { return static_cast<int>(strata_.size()); }

 private:
  int StratumOf(uint64_t element) const;

  std::vector<InvertibleBloomFilter> strata_;
  uint64_t seed_;
  int sig_bits_;
};

/// Default sizing from [15]: 32 strata of 80 cells.
inline constexpr int kStrataDefaultLevels = 32;
inline constexpr size_t kStrataDefaultCells = 80;

}  // namespace pbs

#endif  // PBS_ESTIMATOR_STRATA_H_
