// Hash-partitioning of a group into n bins and its parity-bitmap encoding
// (Section 2.2.1).
//
// Bin indices run 1..n so that, with n = 2^m - 1, every index is a nonzero
// element of GF(2^m) and the parity bitmap's BCH sketch (power_sum_sketch.h)
// can treat odd-parity bins directly as field elements.
//
// The build path hashes elements through the lane-batched xxHash64 kernel
// (hash/xxhash64.h) in kXxHashBatch-sized blocks, and the bitmap-wide
// operations (odd-bin scan, XOR fold, equality) have 32-byte-wide AVX2
// forms in core/parity_bitmap.cc under the common/cpu_features dispatch
// pattern. Every vectorized form is bit-identical to its *Scalar reference,
// pinned by tests/core/parity_bitmap_simd_test.cc.

#ifndef PBS_CORE_PARITY_BITMAP_H_
#define PBS_CORE_PARITY_BITMAP_H_

#include <cstdint>
#include <vector>

#include "pbs/bch/power_sum_sketch.h"
#include "pbs/hash/hash_family.h"

namespace pbs {

/// Bin index of `x` under hash `h`: a value in [1, n].
inline uint64_t BinIndex(uint64_t x, const SaltedHash& h, int n) {
  return h.Bucket(x, static_cast<uint64_t>(n)) + 1;
}

/// Batch form of BinIndex: `out[i] = BinIndex(xs[i], h, n)` for `count`
/// elements through the lane-batched hash kernel (out may alias xs).
inline void BinIndexMany(const uint64_t* xs, size_t count, const SaltedHash& h,
                         int n, uint64_t* out) {
  // Fused hash + bucket reduce + 1-bias, all in vector registers.
  XxHash64BucketBatch(xs, count, h.salt(), static_cast<uint64_t>(n),
                      /*bias=*/1, out);
}

/// Per-element-salt batch form: `out[i] = BinIndex(xs[i], SaltedHash(
/// salts[i]), n)`. Used where consecutive elements land in different groups
/// (element_store layout rebuild), so each lane hashes under its own
/// group's bin salt.
inline void BinIndexManySalted(const uint64_t* xs, const uint64_t* salts,
                               size_t count, int n, uint64_t* out) {
  XxHash64Batch(xs, salts, count, out);
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<uint64_t>((static_cast<__uint128_t>(out[i]) *
                                    static_cast<uint64_t>(n)) >>
                                   64) +
             1;
  }
}

/// One group's elements scattered into n bins: per-bin XOR sums (the
/// Procedure-1 "XOR sum" s_B of each subset) and per-bin parities (the
/// parity bitmap A[1..n]).
struct ParityBitmap {
  int n = 0;
  std::vector<uint64_t> xor_sum;  ///< Index 0 unused; 1..n valid.
  std::vector<uint8_t> parity;    ///< Cardinality parity per bin.

  /// Stack-block size for BuildInto's hash batches: large enough to
  /// amortize the batched kernel's per-call setup (constant broadcasts,
  /// dispatch) to noise, small enough to live on the stack (at most 2 KiB
  /// of scratch). Measured flat from 128 upward on AVX-512 hardware.
  static constexpr size_t kBuildBlock = 128;

  /// Contiguous-input form of BuildInto: hashes straight from `elements`
  /// in kBuildBlock-sized chunks (no staging copy), bins into the stack
  /// scratch, scatters. The hot-path form of Build; bit-identical to
  /// BuildIntoScalar.
  static void BuildInto(const uint64_t* elements, size_t count,
                        const SaltedHash& h, int n, ParityBitmap* pb) {
    pb->n = n;
    pb->xor_sum.assign(n + 1, 0);
    pb->parity.assign(n + 1, 0);
    uint64_t bins[kBuildBlock];
    for (size_t base = 0; base < count; base += kBuildBlock) {
      const size_t blk =
          count - base < kBuildBlock ? count - base : kBuildBlock;
      BinIndexMany(elements + base, blk, h, n, bins);
      Scatter(pb, elements + base, bins, blk);
    }
  }

  static void BuildInto(const std::vector<uint64_t>& elements,
                        const SaltedHash& h, int n, ParityBitmap* pb) {
    BuildInto(elements.data(), elements.size(), h, n, pb);
  }

  /// Generic-container form (non-contiguous iteration): stages elements
  /// into a stack block, then runs the same fused hash+scatter blocks.
  /// Bit-identical to BuildIntoScalar.
  template <typename Container>
  static void BuildInto(const Container& elements, const SaltedHash& h, int n,
                        ParityBitmap* pb) {
    pb->n = n;
    pb->xor_sum.assign(n + 1, 0);
    pb->parity.assign(n + 1, 0);
    uint64_t block[kBuildBlock];
    uint64_t bins[kBuildBlock];
    size_t filled = 0;
    for (uint64_t e : elements) {
      block[filled++] = e;
      if (filled == kBuildBlock) {
        BinIndexMany(block, filled, h, n, bins);
        Scatter(pb, block, bins, filled);
        filled = 0;
      }
    }
    if (filled > 0) {
      BinIndexMany(block, filled, h, n, bins);
      Scatter(pb, block, bins, filled);
    }
  }

  /// Element-at-a-time reference for BuildInto (scalar hash per element);
  /// the differential tests pin the batched build against this.
  template <typename Container>
  static void BuildIntoScalar(const Container& elements, const SaltedHash& h,
                              int n, ParityBitmap* pb) {
    pb->n = n;
    pb->xor_sum.assign(n + 1, 0);
    pb->parity.assign(n + 1, 0);
    for (uint64_t e : elements) {
      const uint64_t bin = BinIndex(e, h, n);
      pb->xor_sum[bin] ^= e;
      pb->parity[bin] ^= 1;
    }
  }

  /// Bins `elements` under `h` into a fresh bitmap.
  template <typename Container>
  static ParityBitmap Build(const Container& elements, const SaltedHash& h,
                            int n) {
    ParityBitmap pb;
    BuildInto(elements, h, n, &pb);
    return pb;
  }

  /// BCH sketch of the odd-parity bin set (the codeword xi of Procedure 2),
  /// written into `*sketch` (which must already have the target field and
  /// t; its previous contents are discarded). The odd-bin scan runs 32
  /// parity bytes per step under AVX2; bit-identical to ToSketchIntoScalar.
  void ToSketchInto(PowerSumSketch* sketch) const;

  /// Byte-at-a-time reference for ToSketchInto's odd-bin scan.
  void ToSketchIntoScalar(PowerSumSketch* sketch) const {
    sketch->Reset();
    for (int i = 1; i <= n; ++i) {
      if (parity[i]) sketch->Toggle(static_cast<uint64_t>(i));
    }
  }

  /// BCH sketch of the odd-parity bin set, freshly allocated.
  PowerSumSketch ToSketch(const GF2m& field, int t) const {
    PowerSumSketch sketch(field, t);
    ToSketchInto(&sketch);
    return sketch;
  }

  /// XOR-folds `other` into this bitmap (same n required): the result is
  /// the bitmap of the symmetric difference of the two underlying
  /// multisets -- parity and XOR sums are both linear. 32 bytes per step
  /// under AVX2; bit-identical to FoldXorScalar.
  void FoldXor(const ParityBitmap& other);

  /// Word-at-a-time reference for FoldXor.
  void FoldXorScalar(const ParityBitmap& other);

  /// True iff `other` has the same n, XOR sums, and parities. 32-byte-wide
  /// compare under AVX2; bit-identical to EqualsScalar.
  bool Equals(const ParityBitmap& other) const;

  /// Word-at-a-time reference for Equals.
  bool EqualsScalar(const ParityBitmap& other) const;

 private:
  // Binned-scatter policy: once the XOR-sum table outgrows L1, a
  // random-order scatter touches a fresh cache line for almost every
  // element. Bucketing each block's (element, bin) pairs by the bin's
  // top bits first -- a 16-way counting sort over at most kBuildBlock
  // pairs -- turns the scatter into 16 sweeps over compact, disjoint
  // regions of the table. XOR's commutativity makes any within-block
  // reorder bit-identical to the direct scatter (pinned against
  // BuildIntoScalar by tests/core/parity_bitmap_simd_test.cc).
  static constexpr int kScatterBuckets = 16;
  static constexpr int kScatterMinBins = 1 << 12;

  // The restrict-qualified locals matter: parity is uint8_t (which aliases
  // everything under C++ rules), so without them every parity store forces
  // the compiler to reload and re-order around the next xor_sum access,
  // serializing the scatter.
  static void ScatterDirect(ParityBitmap* pb,
                            const uint64_t* __restrict elements,
                            const uint64_t* __restrict bins, size_t count) {
    uint64_t* __restrict xs = pb->xor_sum.data();
    uint8_t* __restrict par = pb->parity.data();
    for (size_t i = 0; i < count; ++i) {
      xs[bins[i]] ^= elements[i];
      par[bins[i]] ^= 1;
    }
  }

  // `count` never exceeds kBuildBlock (every caller feeds block-sized
  // slices), so the permutation scratch lives on the stack.
  static void ScatterBinned(ParityBitmap* pb,
                            const uint64_t* __restrict elements,
                            const uint64_t* __restrict bins, size_t count) {
    int shift = 0;
    while ((static_cast<uint64_t>(pb->n) >> shift) >=
           static_cast<uint64_t>(kScatterBuckets)) {
      ++shift;
    }
    uint32_t offsets[kScatterBuckets] = {0};
    for (size_t i = 0; i < count; ++i) {
      ++offsets[bins[i] >> shift];
    }
    uint32_t run = 0;
    for (int b = 0; b < kScatterBuckets; ++b) {
      const uint32_t c = offsets[b];
      offsets[b] = run;
      run += c;
    }
    uint64_t elems_by_bucket[kBuildBlock];
    uint64_t bins_by_bucket[kBuildBlock];
    for (size_t i = 0; i < count; ++i) {
      const uint32_t slot = offsets[bins[i] >> shift]++;
      elems_by_bucket[slot] = elements[i];
      bins_by_bucket[slot] = bins[i];
    }
    ScatterDirect(pb, elems_by_bucket, bins_by_bucket, count);
  }

  static void Scatter(ParityBitmap* pb, const uint64_t* elements,
                      const uint64_t* bins, size_t count) {
    if (pb->n >= kScatterMinBins &&
        count > static_cast<size_t>(kScatterBuckets)) {
      ScatterBinned(pb, elements, bins, count);
    } else {
      ScatterDirect(pb, elements, bins, count);
    }
  }
};

}  // namespace pbs

#endif  // PBS_CORE_PARITY_BITMAP_H_
