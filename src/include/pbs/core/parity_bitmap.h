// Hash-partitioning of a group into n bins and its parity-bitmap encoding
// (Section 2.2.1).
//
// Bin indices run 1..n so that, with n = 2^m - 1, every index is a nonzero
// element of GF(2^m) and the parity bitmap's BCH sketch (power_sum_sketch.h)
// can treat odd-parity bins directly as field elements.

#ifndef PBS_CORE_PARITY_BITMAP_H_
#define PBS_CORE_PARITY_BITMAP_H_

#include <cstdint>
#include <vector>

#include "pbs/bch/power_sum_sketch.h"
#include "pbs/hash/hash_family.h"

namespace pbs {

/// Bin index of `x` under hash `h`: a value in [1, n].
inline uint64_t BinIndex(uint64_t x, const SaltedHash& h, int n) {
  return h.Bucket(x, static_cast<uint64_t>(n)) + 1;
}

/// One group's elements scattered into n bins: per-bin XOR sums (the
/// Procedure-1 "XOR sum" s_B of each subset) and per-bin parities (the
/// parity bitmap A[1..n]).
struct ParityBitmap {
  int n = 0;
  std::vector<uint64_t> xor_sum;  ///< Index 0 unused; 1..n valid.
  std::vector<uint8_t> parity;    ///< Cardinality parity per bin.

  /// Bins `elements` under `h` into `*pb`, reusing its buffers (assign
  /// keeps capacity, so a bitmap reused across rounds stops allocating
  /// once sized). The hot-path form of Build.
  template <typename Container>
  static void BuildInto(const Container& elements, const SaltedHash& h, int n,
                        ParityBitmap* pb) {
    pb->n = n;
    pb->xor_sum.assign(n + 1, 0);
    pb->parity.assign(n + 1, 0);
    for (uint64_t e : elements) {
      const uint64_t bin = BinIndex(e, h, n);
      pb->xor_sum[bin] ^= e;
      pb->parity[bin] ^= 1;
    }
  }

  /// Bins `elements` under `h` into a fresh bitmap.
  template <typename Container>
  static ParityBitmap Build(const Container& elements, const SaltedHash& h,
                            int n) {
    ParityBitmap pb;
    BuildInto(elements, h, n, &pb);
    return pb;
  }

  /// BCH sketch of the odd-parity bin set (the codeword xi of Procedure 2),
  /// written into `*sketch` (which must already have the target field and
  /// t; its previous contents are discarded).
  void ToSketchInto(PowerSumSketch* sketch) const {
    sketch->Reset();
    for (int i = 1; i <= n; ++i) {
      if (parity[i]) sketch->Toggle(static_cast<uint64_t>(i));
    }
  }

  /// BCH sketch of the odd-parity bin set, freshly allocated.
  PowerSumSketch ToSketch(const GF2m& field, int t) const {
    PowerSumSketch sketch(field, t);
    ToSketchInto(&sketch);
    return sketch;
  }
};

}  // namespace pbs

#endif  // PBS_CORE_PARITY_BITMAP_H_
