// Reconciliation-unit bookkeeping shared by both PBS endpoints.
//
// A "unit" is one independently reconciled pair: initially one of the g
// group pairs of Section 3; after a BCH decoding exception it is one of the
// three sub-group pairs of Section 3.2 (recursively). Both endpoints must
// evolve identical unit tables from the same observable events (Bob's
// decode failures, Alice's settled flags), so all lineage-dependent
// derivations -- child keys, split salts, sub-universe membership -- live
// here.

#ifndef PBS_CORE_GROUP_STATE_H_
#define PBS_CORE_GROUP_STATE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "pbs/hash/hash_family.h"

namespace pbs {

/// Identity and lineage of one reconciliation unit.
struct UnitCore {
  uint64_t key = 0;    ///< Deterministic lineage key (salts derive from it).
  uint32_t group = 0;  ///< Root group index.
  uint8_t depth = 0;   ///< Number of three-way splits above this unit.
  /// (split salt, child index) per ancestor split, root-first. Used both to
  /// partition elements and to verify recovered elements' sub-universe
  /// membership (Procedure 3 extended to split lineage).
  std::vector<std::pair<uint64_t, uint8_t>> split_path;

  /// Root unit for group `g` of a session keyed by `family`.
  static UnitCore Root(const HashFamily& family, uint32_t g);

  /// The salt partitioning this unit three ways when it splits.
  uint64_t SplitSalt(const HashFamily& family) const;

  /// The `index`-th child (0..2) produced by a split.
  UnitCore Child(const HashFamily& family, uint8_t index) const;

  /// Which child (0..2) element `x` belongs to under this unit's split.
  static uint8_t ChildIndexOf(uint64_t x, uint64_t split_salt) {
    return static_cast<uint8_t>(SaltedHash(split_salt).Bucket(x, 3));
  }

  /// True iff `x` hashes into this unit: correct root group under the
  /// session's group-partition hash and the correct child at every split.
  bool InSubUniverse(const HashFamily& family, uint64_t x,
                     uint32_t num_groups) const;

  /// Bin-partition salt for this unit in round `round`.
  uint64_t BinSalt(const HashFamily& family, int round) const {
    return family.Salt(HashFamily::kBinPartition, static_cast<uint64_t>(round),
                       key);
  }
};

/// Group index of `x` for a session with `num_groups` groups.
inline uint32_t GroupOf(const HashFamily& family, uint64_t x,
                        uint32_t num_groups) {
  return static_cast<uint32_t>(
      family.Get(HashFamily::kGroupPartition).Bucket(x, num_groups));
}

/// Batch form of GroupOf: `out[i] = GroupOf(family, xs[i], num_groups)` for
/// `count` elements, hashed through the lane-batched xxHash64 kernel (out
/// may alias xs). Used by the endpoint/store partition loops, which walk
/// their element lists in kXxHashBatch-sized blocks.
inline void GroupOfMany(const HashFamily& family, const uint64_t* xs,
                        size_t count, uint32_t num_groups, uint64_t* out) {
  family.Get(HashFamily::kGroupPartition).BucketMany(xs, count, num_groups,
                                                     out);
}

}  // namespace pbs

#endif  // PBS_CORE_GROUP_STATE_H_
