// Epoch-versioned mutable element store with incremental PBS sketch
// maintenance.
//
// The paper's protocol reconciles a frozen set per session, but a serving
// deployment mutates the set under traffic. Both PBS summary structures are
// linear per element -- inserting or deleting x flips exactly one bin of one
// group's parity bitmap (xor_sum[bin] ^= x, parity[bin] ^= 1), which in turn
// toggles that bin in the group's power-sum sketch (t GF(2^m) multiplies),
// and moves the group checksum by +-x mod 2^sig_bits -- so a store can keep
// the full first-round responder state current in amortized O(t) per
// mutation instead of rebuilding it in O(|set|) at session setup.
//
// Concurrency model (see docs/ARCHITECTURE.md, "Mutable served sets"):
// writers serialize on an internal mutex and publish immutable
// StoreSnapshots via an atomic shared_ptr swap (RCU style). Shard threads
// acquire the current snapshot once at session admit and never look at the
// store again, so an in-flight session observes one consistent epoch no
// matter how fast the set churns; old epochs stay valid until the last
// session holding them drops its shared_ptr.

#ifndef PBS_CORE_ELEMENT_STORE_H_
#define PBS_CORE_ELEMENT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pbs/core/params.h"
#include "pbs/core/parity_bitmap.h"

namespace pbs {

/// One batch of mutations, applied atomically (one published epoch).
struct UpdateBatch {
  std::vector<uint64_t> inserts;
  std::vector<uint64_t> deletes;
};

/// Outcome of applying one UpdateBatch.
struct ApplyResult {
  uint64_t epoch = 0;           ///< Epoch after the batch (post-publish).
  uint32_t inserted = 0;        ///< Inserts applied.
  uint32_t deleted = 0;         ///< Deletes applied.
  uint32_t rejected_inserts = 0;  ///< Duplicates or out-of-universe values.
  uint32_t rejected_deletes = 0;  ///< Elements that were not present.
};

/// Immutable pre-built first-round responder state of one snapshot: per
/// root group the parity bitmap, the t odd syndromes of its odd-parity bin
/// set, and the Section 2.2.2 set checksum. Valid only for sessions whose
/// (seed, config, d_used) match -- PbsBob adopts it when they do and falls
/// back to a from-scratch build otherwise, so adoption is purely a setup
/// optimization, never a correctness dependency.
struct PbsStoreLayout {
  uint64_t seed = 0;     ///< Session hash seed the bitmaps were built under.
  PbsConfig config;      ///< Plan-affecting knobs (sig_bits folded in).
  PbsPlan plan;          ///< PlanFor(config, d_used).
  std::vector<ParityBitmap> bitmaps;  ///< One per group (g entries).
  /// Flat odd syndromes, group-major: g blocks of plan.params.t entries.
  std::vector<uint64_t> syndromes;
  std::vector<uint64_t> checksums;    ///< Per-group SetChecksum values.
};

/// Incrementally-maintained per-shard multiset digests of one snapshot:
/// the Merkle pre-filter leaves of a sharded session
/// (sync/shard_planner.h). Valid only for sessions whose negotiated
/// (shard_count, seed) match -- the responder mux adopts them when they
/// do and streams the digests from the element list otherwise, so
/// adoption is purely a setup optimization, never a correctness
/// dependency.
struct ShardChecksums {
  int shard_count = 0;
  uint64_t seed = 0;             ///< Session seed the plan derives from.
  std::vector<uint64_t> leaves;  ///< MsetHash::Fold64 per shard.
};

/// One published epoch: an immutable view of the element set plus (when a
/// layout is configured) its pre-built responder state.
struct StoreSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<const std::vector<uint64_t>> elements;
  std::shared_ptr<const PbsStoreLayout> layout;  ///< Null when unconfigured.
  /// Null until ConfigureShardChecksums ran.
  std::shared_ptr<const ShardChecksums> shard_checksums;
};

/// Epoch-versioned element set with incremental sketch maintenance.
///
/// Thread safety: Apply/Publish/ApplyInsert/ApplyDelete serialize on an
/// internal mutex; snapshot() is lock-free for readers (atomic shared_ptr
/// load) and safe against concurrent writers. The steady-state single-
/// element paths (ApplyInsert/ApplyDelete on a warm store) perform no heap
/// allocation (tests/core/hotpath_alloc_test.cc pins this); Publish() is
/// the only allocating step, deep-copying the set and layout into a fresh
/// immutable snapshot.
class MutableElementStore {
 public:
  /// Seeds the store. Zero and duplicate values are dropped (the PBS
  /// signature universe of Section 2.1 excludes 0).
  explicit MutableElementStore(std::vector<uint64_t> initial = {});
  ~MutableElementStore();

  MutableElementStore(const MutableElementStore&) = delete;
  MutableElementStore& operator=(const MutableElementStore&) = delete;

  /// Configures the maintained responder layout for sessions keyed by
  /// (seed, config, d_used): builds the per-group bitmaps/sketches from the
  /// current set and keeps them current across every subsequent mutation.
  /// Replaces any previous layout. Returns false (with *error set) if any
  /// stored element exceeds config.sig_bits. Publishes a new epoch.
  bool ConfigureLayout(const PbsConfig& config, uint64_t seed, int d_used,
                       std::string* error = nullptr);

  /// Configures incremental per-shard multiset checksums for sharded
  /// sessions keyed by (shard_count, seed): folds the current set into
  /// shard_count MsetHash digests and keeps them current across every
  /// subsequent mutation (amortized O(1) per mutation), so a session's
  /// Merkle pre-filter leaves come straight off the snapshot instead of
  /// an O(|set|) stream. Replaces any previous shard configuration.
  /// Returns false (with *error set) when shard_count is outside the
  /// negotiation bounds. Publishes a new epoch.
  bool ConfigureShardChecksums(int shard_count, uint64_t seed,
                               std::string* error = nullptr);

  /// Single-element insert. Returns false on rejection (zero, duplicate,
  /// or wider than the configured layout's sig_bits). Does NOT publish;
  /// zero-alloc on a warm store.
  bool ApplyInsert(uint64_t element);

  /// Single-element delete. Returns false if absent. Does NOT publish;
  /// zero-alloc.
  bool ApplyDelete(uint64_t element);

  /// Applies a whole batch (deletes after inserts, element by element) and
  /// publishes one new epoch covering all of it.
  ApplyResult Apply(const UpdateBatch& batch);

  /// Publishes the current state as a new immutable snapshot; returns its
  /// epoch. Readers switching via snapshot() see either the old or the new
  /// epoch, never a torn mix.
  uint64_t Publish();

  /// Current snapshot (lock-free reader side of the RCU swap).
  std::shared_ptr<const StoreSnapshot> snapshot() const;

  /// Epoch of the latest published snapshot.
  uint64_t epoch() const;

  /// Live element count (writer-side; reflects unpublished mutations).
  size_t size() const;

  /// Rebuilds the configured layout from scratch off the current set --
  /// the differential oracle the incremental maintenance is tested
  /// against, and the cost baseline for bench_mutable_churn. Elements are
  /// group/bin-partitioned in hash-kernel-sized blocks through the batched
  /// lanes (group_state.h GroupOfMany + parity_bitmap.h BinIndexManySalted).
  /// Returns null when no layout is configured.
  std::shared_ptr<const PbsStoreLayout> RebuildLayout() const;

  /// Drift self-check: rebuilds the layout from the element list and
  /// compares it against the incrementally maintained one (32-byte-wide
  /// ParityBitmap::Equals plus syndrome/checksum compares). Always true
  /// unless incremental maintenance has a bug; cheap enough to run
  /// periodically on a live store. True when no layout is configured.
  bool VerifyLayout() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbs

#endif  // PBS_CORE_ELEMENT_STORE_H_
