// Blocking convenience drivers for the framed session layer.
//
// The protocol itself lives in core/session_engine.h as a sans-I/O
// poll/feed state machine (SessionEngine); this header is the thin
// blocking shell around it for callers that own a dedicated connection
// and are happy to park a thread on it:
//
//   SchemeRegistry  ->  ReconcileInitiator / ReconcileResponder engines
//   session_engine  ->  the protocol state machine (no I/O, no threads)
//   core/transport  ->  loopback or TCP byte streams
//
// Each driver is a loop over SessionEngine::Status(): kWantWrite drains
// the engine's outbound bytes into ByteTransport::Send, kWantRead feeds
// exactly SessionEngine::NeededBytes() from ByteTransport::Recv, and the
// terminal states return the SessionResult. Servers that multiplex many
// peers should skip this shell and drive engines from an event loop —
// net/reconcile_server.h does exactly that.
//
// Session state machine (initiator drives; every arrow is one frame):
//
//   initiator                         responder
//   HELLO (scheme, options, seed) --> validate, look up scheme
//   [estimate phase unless the initiator supplied an exact d]
//   ESTIMATE_REQ (ToW sketch A)   --> sketch B, d-hat = Estimate(A, B)
//                                 <-- ESTIMATE_REPLY (d-hat)
//   [scheme phase: ping-pong until the initiator engine settles]
//   SCHEME_REQ (round k payload)  --> engine.HandleRequest
//                                 <-- SCHEME_REPLY (round k payload)
//   DONE (summary)                --> log
//                                 <-- DONE (ack)
//
// Either side may abort with an ERROR frame; transport failure at any
// point fails the session. The responder adopts the initiator's options
// (delta, rounds, p0, gamma, sig_bits, ...) from the HELLO payload, so the
// two engines always plan identical parameterizations.

#ifndef PBS_CORE_WIRE_SESSION_H_
#define PBS_CORE_WIRE_SESSION_H_

#include <cstdint>
#include <vector>

#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"

namespace pbs {

/// Drives the initiator (Alice) side: handshake, optional estimate
/// exchange, scheme ping-pong, DONE. `elements` is the initiator's set A.
/// Blocks until the session settles or fails.
SessionResult RunInitiatorSession(ByteTransport& transport,
                                  const SessionConfig& config,
                                  const std::vector<uint64_t>& elements);

/// Drives the responder (Bob) side: accepts one HELLO, adopts its options,
/// serves estimate + scheme requests until DONE or error. `elements` is
/// the responder's set B. Blocks until the peer finishes or fails.
SessionResult RunResponderSession(ByteTransport& transport,
                                  const std::vector<uint64_t>& elements);

/// Drives the writer side of an UPDATE session against a --mutable server:
/// each batch goes out as one kUpdate frame (strict ping-pong with the
/// server's kUpdateAck), then DONE. No HELLO/estimate/scheme phases run.
/// The result's params_summary carries the final published epoch and the
/// cumulative inserted/deleted/rejected counts. Blocks until settled.
SessionResult RunUpdateSession(ByteTransport& transport,
                               const std::vector<UpdateBatch>& batches);

/// Convenience for tests and demos: pumps an initiator and a responder
/// SessionEngine against each other on the calling thread (sans-I/O: no
/// transport, no second thread, no blocking anywhere) and returns the
/// initiator's result.
SessionResult RunLoopbackSession(const SessionConfig& config,
                                 const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b);

}  // namespace pbs

#endif  // PBS_CORE_WIRE_SESSION_H_
