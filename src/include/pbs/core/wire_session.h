// The framed session driver: multi-round reconciliation over byte streams.
//
// ReconcileSession glues the three lower pieces together so two *processes*
// can reconcile key sets with any registered scheme:
//
//   SchemeRegistry  ->  ReconcileInitiator / ReconcileResponder engines
//   core/messages   ->  checksummed, versioned WireFrame envelopes
//   core/transport  ->  loopback or TCP byte streams
//
// Session state machine (initiator drives; every arrow is one frame):
//
//   initiator                         responder
//   HELLO (scheme, options, seed) --> validate, look up scheme
//   [estimate phase unless the initiator supplied an exact d]
//   ESTIMATE_REQ (ToW sketch A)   --> sketch B, d-hat = Estimate(A, B)
//                                 <-- ESTIMATE_REPLY (d-hat)
//   [scheme phase: ping-pong until the initiator engine settles]
//   SCHEME_REQ (round k payload)  --> engine.HandleRequest
//                                 <-- SCHEME_REPLY (round k payload)
//   DONE (summary)                --> log
//                                 <-- DONE (ack)
//
// Either side may abort with an ERROR frame; transport failure at any
// point fails the session. The responder adopts the initiator's options
// (delta, rounds, p0, gamma, sig_bits, ...) from the HELLO payload, so the
// two engines always plan identical parameterizations.

#ifndef PBS_CORE_WIRE_SESSION_H_
#define PBS_CORE_WIRE_SESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pbs/core/set_reconciler.h"
#include "pbs/core/transport.h"

namespace pbs {

/// Everything the initiator pins for one session. The responder adopts
/// these from the HELLO frame; it contributes only its element set.
struct SessionConfig {
  /// Registry key of the scheme to run (must exist on both sides).
  std::string scheme_name = "pbs";
  /// Scheme construction knobs; plan-affecting fields travel in the HELLO.
  SchemeOptions options;
  /// Master seed: drives every random choice of both engines, exactly like
  /// the `seed` argument of SetReconciler::Reconcile.
  uint64_t seed = 0xC11;
  /// Seed of the ToW estimate exchange (kept separate from `seed` so the
  /// estimator and the scheme never share hash functions).
  uint64_t estimate_seed = 0xE57;
  /// When >= 0, skip the estimate phase and hand this d to both engines
  /// (the "d known" setting of Sections 2-5, and the parity tests' way of
  /// matching an in-memory Reconcile call exactly).
  double exact_d = -1.0;
};

/// Result of driving one side of a session to completion.
struct SessionResult {
  bool ok = false;        ///< Handshake + protocol + transport all succeeded.
  std::string error;      ///< Human-readable failure cause when !ok.
  std::string scheme;     ///< Registry key of the scheme that ran.
  double d_hat = 0.0;     ///< The difference estimate the engines consumed.
  /// Scheme outcome with wire_bytes/wire_frames filled in. Only the
  /// initiator recovers the difference; the responder's outcome carries
  /// accounting fields (and success mirrored from the DONE summary).
  ReconcileOutcome outcome;
};

/// Drives the initiator (Alice) side: handshake, optional estimate
/// exchange, scheme ping-pong, DONE. `elements` is the initiator's set A.
/// Blocks until the session settles or fails.
SessionResult RunInitiatorSession(ByteTransport& transport,
                                  const SessionConfig& config,
                                  const std::vector<uint64_t>& elements);

/// Drives the responder (Bob) side: accepts one HELLO, adopts its options,
/// serves estimate + scheme requests until DONE or error. `elements` is
/// the responder's set B. Blocks until the peer finishes or fails.
SessionResult RunResponderSession(ByteTransport& transport,
                                  const std::vector<uint64_t>& elements);

/// Convenience for tests and demos: runs the responder on a second thread
/// over an in-memory loopback pair and the initiator on the calling
/// thread; returns the initiator's result.
SessionResult RunLoopbackSession(const SessionConfig& config,
                                 const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b);

}  // namespace pbs

#endif  // PBS_CORE_WIRE_SESSION_H_
