// Blocking convenience drivers for the framed session layer.
//
// The protocol itself lives in core/session_engine.h as a sans-I/O
// poll/feed state machine (SessionEngine); this header is the thin
// blocking shell around it for callers that own a dedicated connection
// and are happy to park a thread on it:
//
//   SchemeRegistry  ->  ReconcileInitiator / ReconcileResponder engines
//   session_engine  ->  the protocol state machine (no I/O, no threads)
//   core/transport  ->  loopback or TCP byte streams
//
// Each driver is a loop over SessionEngine::Status(): kWantWrite drains
// the engine's outbound bytes into ByteTransport::Send, kWantRead feeds
// exactly SessionEngine::NeededBytes() from ByteTransport::Recv, and the
// terminal states return the SessionResult. Servers that multiplex many
// peers should skip this shell and drive engines from an event loop —
// net/reconcile_server.h does exactly that.
//
// Session state machine (initiator drives; every arrow is one frame):
//
//   initiator                         responder
//   HELLO (scheme, options, seed) --> validate, look up scheme
//   [estimate phase unless the initiator supplied an exact d]
//   ESTIMATE_REQ (ToW sketch A)   --> sketch B, d-hat = Estimate(A, B)
//                                 <-- ESTIMATE_REPLY (d-hat)
//   [scheme phase: ping-pong until the initiator engine settles]
//   SCHEME_REQ (round k payload)  --> engine.HandleRequest
//                                 <-- SCHEME_REPLY (round k payload)
//   DONE (summary)                --> log
//                                 <-- DONE (ack)
//
// Either side may abort with an ERROR frame; transport failure at any
// point fails the session. The responder adopts the initiator's options
// (delta, rounds, p0, gamma, sig_bits, ...) from the HELLO payload, so the
// two engines always plan identical parameterizations.

#ifndef PBS_CORE_WIRE_SESSION_H_
#define PBS_CORE_WIRE_SESSION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pbs/core/session_engine.h"
#include "pbs/core/transport.h"
#include "pbs/net/retry_policy.h"

namespace pbs {

/// Drives the initiator (Alice) side: handshake, optional estimate
/// exchange, scheme ping-pong, DONE. `elements` is the initiator's set A.
/// Blocks until the session settles or fails.
SessionResult RunInitiatorSession(ByteTransport& transport,
                                  const SessionConfig& config,
                                  const std::vector<uint64_t>& elements);

/// Drives the responder (Bob) side: accepts one HELLO, adopts its options,
/// serves estimate + scheme requests until DONE or error. `elements` is
/// the responder's set B. Blocks until the peer finishes or fails.
SessionResult RunResponderSession(ByteTransport& transport,
                                  const std::vector<uint64_t>& elements);

/// Drives the writer side of an UPDATE session against a --mutable server:
/// each batch goes out as one kUpdate frame (strict ping-pong with the
/// server's kUpdateAck), then DONE. No HELLO/estimate/scheme phases run.
/// The result's params_summary carries the final published epoch and the
/// cumulative inserted/deleted/rejected counts. Blocks until settled.
SessionResult RunUpdateSession(ByteTransport& transport,
                               const std::vector<UpdateBatch>& batches);

/// Produces a fresh connection for each (re)attempt of a resilient
/// session. Returns null on connect failure with *error describing why;
/// the runner backs off and tries again until its retry budget runs out.
using TransportFactory =
    std::function<std::unique_ptr<ByteTransport>(std::string* error)>;

/// Knobs of RunResilientInitiatorSession.
struct ResilientOptions {
  /// Attempt budget and backoff shape shared by connect failures and
  /// mid-session faults. max_attempts counts sessions, not connects.
  RetryPolicy retry;
  /// Reconnects re-attach to an interrupted sharded session via its
  /// resume token (RESUME frame) instead of restarting from scratch.
  /// False forces every attempt to be a fresh session.
  bool allow_resume = true;
  /// Optional progress hook ("session attempt 1 failed (...); resuming
  /// in 83ms"); null discards.
  std::function<void(const std::string&)> log;
};

/// What the resilient runner actually did, for stats and assertions.
struct ResilienceReport {
  int connect_attempts = 0;  ///< Transport factory invocations.
  int sessions_run = 0;      ///< Sessions driven to a terminal state.
  int resumed_sessions = 0;  ///< Of those, sessions started from a token.
  bool used_resume = false;  ///< Any attempt re-attached via RESUME.
  bool stale_resume = false; ///< A token was rejected as stale.
  size_t total_wire_bytes = 0;  ///< Sum over every attempt.
  size_t last_wire_bytes = 0;   ///< The final attempt alone.
};

/// Fault-tolerant initiator driver: runs the session, and on transport
/// failure or phase-deadline expiry reconnects through `factory` under
/// capped decorrelated-jitter backoff (net/retry_policy.h). A failed
/// *sharded* session leaves a resume token (SessionResult::resume_state);
/// the next attempt re-attaches with RESUME and finishes only the
/// unsettled shards, so recovery costs strictly less wire than a fresh
/// restart. A "stale resume" rejection (responder set changed) drops the
/// token and restarts clean. Returns the final attempt's result; `report`
/// (optional) says how the session got there.
SessionResult RunResilientInitiatorSession(
    const TransportFactory& factory, const SessionConfig& config,
    const std::vector<uint64_t>& elements, const ResilientOptions& options,
    ResilienceReport* report = nullptr);

/// Convenience for tests and demos: pumps an initiator and a responder
/// SessionEngine against each other on the calling thread (sans-I/O: no
/// transport, no second thread, no blocking anywhere) and returns the
/// initiator's result.
SessionResult RunLoopbackSession(const SessionConfig& config,
                                 const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b);

}  // namespace pbs

#endif  // PBS_CORE_WIRE_SESSION_H_
