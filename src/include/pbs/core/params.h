// PBS configuration and parameter planning.
//
// A PbsConfig captures the knobs the paper exposes: delta (average distinct
// elements per group, fixed at 5 in the paper, swept in Appendix J.2), the
// round target r and success target p0 (Section 3.3), the signature width
// log|U|, and estimator settings (Section 6). PlanFor() turns a
// (conservatively inflated) difference estimate into concrete (g, n, t)
// via the Section 5.1 optimizer.

#ifndef PBS_CORE_PARAMS_H_
#define PBS_CORE_PARAMS_H_

#include <cstdint>

#include "pbs/estimator/tow.h"
#include "pbs/markov/optimizer.h"

namespace pbs {

/// Tunable parameters of a PBS deployment.
struct PbsConfig {
  /// Average number of distinct elements per group (paper: 5).
  int delta = 5;
  /// Target number of rounds r in the guarantee Pr[R <= r] >= p0.
  int target_rounds = 3;
  /// Target overall success probability p0.
  double p0 = 0.99;
  /// Signature width log|U| in bits (paper: 32).
  int sig_bits = 32;
  /// Hard cap on protocol rounds before reporting failure. Experiments use
  /// target_rounds; Appendix J.1 lets the protocol run to completion.
  int max_rounds = 3;
  /// Number of ToW sketches for estimating d (Section 6).
  int ell = kTowDefaultSketches;
  /// Conservative inflation factor on the ToW estimate.
  double gamma = kTowGamma;
  /// Defensive cap on recursive three-way splits.
  int max_split_depth = 16;
  /// Ablation switch (bench_ablation_procedure3): disables the Procedure-3
  /// sub-universe check that discards fake distinct elements produced by
  /// type (II) exceptions. Production code leaves this on; turning it off
  /// quantifies the no-cost protection the paper describes in Section 2.3.
  bool subuniverse_check = true;
  /// Section 2.2.3's belt-and-braces option for mission-critical uses:
  /// after the checksum loop settles, Bob additionally ships a 192-bit
  /// one-way multiset hash of B (common/mset_hash.h) and Alice verifies
  /// H(A /\triangle D-hat) == H(B), driving the false-verification
  /// probability from O(10^-12) to practically zero for constant extra
  /// communication and O(|A| + d) extra hashing.
  bool strong_verification = false;
  /// Worker threads for the per-group encode/decode loops. The paper's
  /// groups are hashed and decoded independently (Section 2.1), so the
  /// per-round BCH decodes parallelize embarrassingly over a small
  /// reusable pool (common/parallel.h) with one Workspace per worker.
  /// 1 = serial (default, and the only path exercised by the zero-
  /// allocation pin); 0 = one worker per hardware thread. A *local*
  /// performance knob: it never travels in the wire HELLO, each session
  /// side applies its own setting, and the recovered difference is
  /// bit-identical for every value (scheme_registry_test pins this).
  int decode_threads = 1;
  /// Search ranges / calibration for the (n, t) optimizer.
  OptimizerOptions optimizer;
};

/// A fully resolved parameterization for one reconciliation session.
struct PbsPlan {
  int d_used = 0;  ///< The inflated difference bound the plan is sized for.
  PbsPlanParams params;  ///< g groups, n bins, m = log2(n+1), capacity t.
};

/// Runs the Section 5.1 optimization for `d_used` expected distinct
/// elements. Falls back to the widest-n / largest-t cell if no cell in the
/// configured range meets p0 (never fails outright: the protocol's checksum
/// loop still guarantees eventual correctness, just without the p0 bound).
PbsPlan PlanFor(const PbsConfig& config, int d_used);

/// Applies the gamma inflation of Section 6.2 to a raw ToW estimate.
int InflateEstimate(double d_hat, double gamma);

}  // namespace pbs

#endif  // PBS_CORE_PARAMS_H_
