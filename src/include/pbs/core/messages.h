// Wire-format helpers for PBS protocol messages.
//
// Message layouts (all bit-packed; see bitio.h):
//
//  EstimateRequest  (Alice -> Bob):
//    varint |A| ; ell counters of ceil(log2(2|A|+1)) bits (zig-zag).
//  EstimateReply    (Bob -> Alice):
//    32-bit d_used = ceil(gamma * d-hat).
//  RoundRequest     (Alice -> Bob), round k:
//    k >= 2: one settled bit per unit that decoded OK in round k-1;
//    then, per active unit in canonical order: BCH sketch (t*m bits).
//  RoundReply       (Bob -> Alice), per active unit:
//    1 bit decode-failed;
//    on success: count (ceil(log2(t+1)) bits), count * position (m bits),
//    count * XOR sum (sig_bits), checksum (sig_bits).
//
// The canonical unit order evolves deterministically on both sides:
// settled units are dropped, failed units are replaced in place by their
// three children, survivors stay put (Section 3.2 / 3.3).

#ifndef PBS_CORE_MESSAGES_H_
#define PBS_CORE_MESSAGES_H_

#include <cstdint>

namespace pbs::wire {

/// Smallest width holding values 0..max_value.
constexpr int BitWidthFor(uint64_t max_value) {
  int bits = 1;
  while ((uint64_t{1} << bits) <= max_value) ++bits;
  return bits;
}

/// Width of the per-unit "number of decoded positions" field; the count is
/// at most t by construction.
constexpr int CountBits(int t) { return BitWidthFor(static_cast<uint64_t>(t)); }

}  // namespace pbs::wire

#endif  // PBS_CORE_MESSAGES_H_
