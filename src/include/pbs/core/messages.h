// Wire-format helpers for PBS protocol messages.
//
// Message layouts (all bit-packed; see bitio.h):
//
//  EstimateRequest  (Alice -> Bob):
//    varint |A| ; ell counters of ceil(log2(2|A|+1)) bits (zig-zag).
//  EstimateReply    (Bob -> Alice):
//    32-bit d_used = ceil(gamma * d-hat).
//  RoundRequest     (Alice -> Bob), round k:
//    k >= 2: one settled bit per unit that decoded OK in round k-1;
//    then, per active unit in canonical order: BCH sketch (t*m bits).
//  RoundReply       (Bob -> Alice), per active unit:
//    1 bit decode-failed;
//    on success: count (ceil(log2(t+1)) bits), count * position (m bits),
//    count * XOR sum (sig_bits), checksum (sig_bits).
//
// The canonical unit order evolves deterministically on both sides:
// settled units are dropped, failed units are replaced in place by their
// three children, survivors stay put (Section 3.2 / 3.3).

#ifndef PBS_CORE_MESSAGES_H_
#define PBS_CORE_MESSAGES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pbs::wire {

/// Smallest width holding values 0..max_value.
constexpr int BitWidthFor(uint64_t max_value) {
  int bits = 1;
  while ((uint64_t{1} << bits) <= max_value) ++bits;
  return bits;
}

/// Width of the per-unit "number of decoded positions" field; the count is
/// at most t by construction.
constexpr int CountBits(int t) { return BitWidthFor(static_cast<uint64_t>(t)); }

// ---------------------------------------------------------------------------
// Framed session layer (docs/WIRE_FORMAT.md).
//
// Everything above describes the *contents* of protocol messages; this part
// describes the envelope that carries them over a byte stream. A frame is a
// fixed 20-byte header followed by an opaque payload:
//
//   offset  size  field
//        0     4  magic "PBSW" (bytes 50 42 53 57)
//        4     1  version (kWireVersion)
//        5     1  frame type (FrameType)
//        6     1  scheme id (SchemeWireId; 0 = named in the HELLO payload)
//        7     1  flags (reserved, must be 0 in version 1)
//        8     4  round number, little-endian
//       12     4  payload length, little-endian
//       16     4  CRC-32 of header bytes [0, 16) then the payload
//       20     -  payload
// ---------------------------------------------------------------------------

/// Wire protocol version carried in every frame header. Bumped on any
/// incompatible layout change; a responder rejects frames whose version it
/// does not speak (see docs/WIRE_FORMAT.md for the compatibility rules).
inline constexpr uint8_t kWireVersion = 1;

/// Frame header size in bytes.
inline constexpr size_t kFrameHeaderSize = 20;

/// Hard cap on a single frame's payload (64 MiB): a length field beyond
/// this is treated as corruption. Stream readers allocate the payload
/// buffer from this length *before* the checksum can be verified, so the
/// cap is sized to the largest legitimate frame (a few MiB at the
/// schemes' capacity limits) with ~10x headroom, not to what the field
/// could express.
inline constexpr uint32_t kMaxFramePayload = 1u << 26;

/// Frame types of wire version 1. The session is a strict ping-pong driven
/// by the initiator; see core/wire_session.h for the state machine.
enum class FrameType : uint8_t {
  kHello = 1,           ///< Initiator's handshake (scheme name + options).
  kHelloAck = 2,        ///< Responder accepts the handshake.
  kEstimateRequest = 3, ///< Initiator's ToW sketch of its set.
  kEstimateReply = 4,   ///< Responder's d-hat computed from both sketches.
  kSchemeRequest = 5,   ///< Scheme-specific round payload, initiator side.
  kSchemeReply = 6,     ///< Scheme-specific round payload, responder side.
  kDone = 7,            ///< Initiator's outcome summary; responder echoes.
  kError = 8,           ///< Either side aborts; payload is a UTF-8 message.
  kUpdate = 9,          ///< Writer's insert/delete batch for a mutable
                        ///< served set (core/element_store.h). Round is the
                        ///< 1-based batch index. Rejected with kError by
                        ///< read-only servers.
  kUpdateAck = 10,      ///< Server's per-batch result: the published epoch
                        ///< and apply/reject counts.
  // Sharded huge-set reconciliation (docs/WIRE_FORMAT.md section 2.5;
  // sync/sharded_session.h). A sharded session replaces the kHello
  // handshake with kShardPlan (which embeds the HELLO payload) and then
  // multiplexes per-shard sub-sessions over one connection.
  kShardPlan = 11,      ///< Initiator's shard proposal: shard count, its
                        ///< shard-digest Merkle root, and the embedded
                        ///< HELLO payload.
  kShardPlanAck = 12,   ///< Responder's accepted shard count (possibly
                        ///< clamped) and its own Merkle root. Equal roots
                        ///< end the session in O(1) bytes.
  kDigestTree = 13,     ///< Initiator's per-shard digest leaves (one u64
                        ///< per shard), sent only when the roots differ.
  kDigestReply = 14,    ///< Responder's differing-shard bitmap (bit k set
                        ///< = shard k's digests disagree).
  kSubSession = 15,     ///< One sub-session frame: shard id, an inner
                        ///< frame type (estimate/scheme/done), and the
                        ///< inner payload. Up to `shard_pipeline` shards
                        ///< are in flight concurrently.
  // Session resilience (docs/WIRE_FORMAT.md section 2.6). A reconnecting
  // sharded initiator re-attaches to an interrupted session instead of
  // restarting it from scratch.
  kResume = 16,         ///< Initiator's resume token: the responder Merkle
                        ///< root it saw before the disconnect, the list of
                        ///< unsettled shards with their attempt counters,
                        ///< and the embedded HELLO payload. Rejected with
                        ///< kError ("stale resume ...") when the root no
                        ///< longer matches the responder's current set.
  kResumeAck = 17,      ///< Responder accepts the resume; echoes its
                        ///< current Merkle root.
};

/// Stable one-byte ids for the built-in schemes, carried in the header so
/// sniffers/loggers can classify frames without parsing the HELLO payload.
/// Out-of-tree schemes use 0 and are identified by name in the HELLO.
uint8_t SchemeWireId(const std::string& name);

/// Inverse of SchemeWireId for the built-in ids; empty string for 0 or an
/// unknown id. Used by graceful degradation, where a sub-session's
/// alternate scheme travels as its one-byte id.
std::string SchemeNameFromWireId(uint8_t id);

/// A decoded frame: header fields plus the payload bytes.
struct WireFrame {
  uint8_t version = kWireVersion;  ///< Protocol version (kWireVersion).
  FrameType type = FrameType::kHello;  ///< Frame type.
  uint8_t scheme = 0;              ///< SchemeWireId of the session's scheme.
  uint32_t round = 0;              ///< Scheme round (0 during handshake).
  std::vector<uint8_t> payload;    ///< Opaque payload bytes.
};

/// Result of decoding a frame from a byte buffer.
enum class FrameStatus {
  kOk,           ///< Frame decoded; *consumed bytes were used.
  kTruncated,    ///< Buffer ends mid-header or mid-payload; read more.
  kBadMagic,     ///< First four bytes are not "PBSW".
  kBadVersion,   ///< Unsupported version byte.
  kBadLength,    ///< Payload length exceeds kMaxFramePayload.
  kBadChecksum,  ///< CRC-32 mismatch (header or payload corrupted).
};

/// Serializes `frame` (header + payload) into a contiguous buffer. The
/// checksum and length fields are computed here; frame.version is
/// respected so tests can emit alien versions.
std::vector<uint8_t> EncodeFrame(const WireFrame& frame);

/// Streaming peer of EncodeFrame: appends one encoded kWireVersion frame
/// (header + payload) to `*out` without disturbing its existing contents,
/// and returns the encoded size. Outbound buffers reused across rounds
/// warm to their peak capacity and stop allocating — the sans-I/O session
/// engine's steady state depends on this.
size_t AppendFrame(FrameType type, uint8_t scheme, uint32_t round,
                   const uint8_t* payload, size_t payload_size,
                   std::vector<uint8_t>* out);

/// Decodes one frame from the front of [data, data+size). On kOk, `*frame`
/// holds the frame and `*consumed` the total bytes used. On any other
/// status, outputs are untouched (kTruncated callers should retry with more
/// bytes; everything else is fatal for the stream).
FrameStatus DecodeFrame(const uint8_t* data, size_t size, WireFrame* frame,
                        size_t* consumed);

/// Validates a complete header (kFrameHeaderSize bytes) and extracts the
/// payload length, so stream readers know how many more bytes to pull
/// before calling DecodeFrame on the assembled buffer. Returns kOk,
/// kBadMagic, kBadVersion, or kBadLength (the checksum spans the payload
/// and is only checked by DecodeFrame).
FrameStatus InspectFrameHeader(const uint8_t* header, size_t* payload_length);

}  // namespace pbs::wire

#endif  // PBS_CORE_MESSAGES_H_
