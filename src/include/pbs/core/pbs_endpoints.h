// The two PBS protocol endpoints.
//
// Alice initiates and ultimately learns A /\triangle B; Bob answers. The
// endpoints exchange opaque byte buffers, so callers can run them over any
// transport (the in-memory PbsSession in reconciler.h, or a real socket as
// in examples/). Message flow per Sections 2-3:
//
//   Alice                       Bob
//   MakeEstimateRequest  ---->  HandleEstimateRequest
//   HandleEstimateReply  <----        (ToW estimate, d_used = gamma*d-hat)
//   MakeRoundRequest     ---->  HandleRoundRequest      \  repeated until
//   HandleRoundReply     <----                          /  all units settle
//
// If d is known a priori (the Sections 2-5 setting), call
// SetDifferenceEstimate on both endpoints and skip the estimate exchange.

#ifndef PBS_CORE_PBS_ENDPOINTS_H_
#define PBS_CORE_PBS_ENDPOINTS_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "pbs/common/checksum.h"
#include "pbs/core/group_state.h"
#include "pbs/core/params.h"
#include "pbs/gf/gf2m.h"
#include "pbs/hash/hash_family.h"

namespace pbs {

struct PbsStoreLayout;

/// Cumulative wall-time breakdown of one endpoint (seconds). Encode is
/// everything that *produces* sketches and wire bytes: Alice's whole
/// round request (her per-group bin + sketch pipeline -- parallel when
/// PbsConfig::decode_threads > 1 -- plus serialization) and Bob's wire
/// staging/serialization. Decode is Bob's per-group bin + sketch +
/// BCH-decode pipeline, timed as one phase (it runs fused and, with
/// decode_threads > 1, concurrently across groups, where per-unit CPU
/// attribution would be meaningless). Both are wall-clock: with a pool,
/// a phase's entry is its elapsed time, not the summed worker CPU.
struct PbsTimers {
  double encode_seconds = 0.0;  ///< Sketch production + (de)serialization.
  double decode_seconds = 0.0;  ///< Bob's per-group decode pipeline.
};

/// The initiating endpoint; learns the set difference.
class PbsAlice {
 public:
  /// `elements` is Alice's set A (nonzero sig_bits-wide signatures).
  /// Both endpoints must be constructed with the same config and seed.
  PbsAlice(std::vector<uint64_t> elements, const PbsConfig& config,
           uint64_t seed);
  ~PbsAlice();

  /// Estimation phase (optional; Section 6.2).
  std::vector<uint8_t> MakeEstimateRequest();
  void HandleEstimateReply(const std::vector<uint8_t>& reply);

  /// Skips estimation: size the plan for `d_used` expected differences.
  void SetDifferenceEstimate(int d_used);

  /// Builds the round-k request (advances the round counter).
  std::vector<uint8_t> MakeRoundRequest();

  /// Buffer-reusing form: writes the request into `*out` (cleared first).
  /// With a caller-reused `out`, steady-state round encoding performs no
  /// heap allocation (tests/core/hotpath_alloc_test.cc).
  void MakeRoundRequest(std::vector<uint8_t>* out);

  /// Consumes Bob's reply; returns true when every unit has settled.
  bool HandleRoundReply(const std::vector<uint8_t>& reply);

  /// True once all units verified their checksums.
  bool finished() const;

  /// Rounds executed so far.
  int round() const;

  /// The reconciled difference D-hat_1 /\triangle ... /\triangle D-hat_r
  /// (valid answer once finished()).
  std::vector<uint64_t> Difference() const;

  /// Strong-verification epilogue (config.strong_verification): checks
  /// Bob's multiset-hash digest against H(A /\triangle D-hat).
  bool VerifyStrongDigest(const std::vector<uint8_t>& digest_msg) const;

  /// Bidirectional completion (Section 1.1): the elements of the
  /// difference that Alice holds (A \ B), which she ships to Bob so he can
  /// form A u B as well. Valid once finished().
  std::vector<uint64_t> ElementsOnlyInA() const;

  const PbsPlan& plan() const;
  const PbsTimers& timers() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The responding endpoint.
class PbsBob {
 public:
  PbsBob(std::vector<uint64_t> elements, const PbsConfig& config,
         uint64_t seed);

  /// Snapshot form (core/element_store.h): shares the element vector
  /// instead of copying it and, when the session's (seed, sig_bits, plan)
  /// match the layout's, adopts the store's pre-built round-1 bitmaps /
  /// syndromes / checksums -- turning session setup from O(|B|) into O(g),
  /// with the O(|B|) group partitioning deferred until a second round is
  /// actually needed. On any mismatch it falls back to the from-scratch
  /// build, so adoption never changes the wire bytes (pinned by
  /// ElementStore differential tests). `elements` must come from a
  /// MutableElementStore, whose insert path enforces the nonzero /
  /// sig_bits-wide element invariants this constructor therefore does not
  /// re-validate. `layout` may be null (pure shared-vector mode).
  PbsBob(std::shared_ptr<const std::vector<uint64_t>> elements,
         std::shared_ptr<const PbsStoreLayout> layout, const PbsConfig& config,
         uint64_t seed);
  ~PbsBob();

  std::vector<uint8_t> HandleEstimateRequest(
      const std::vector<uint8_t>& request);
  void SetDifferenceEstimate(int d_used);

  std::vector<uint8_t> HandleRoundRequest(const std::vector<uint8_t>& request);

  /// Buffer-reusing form: writes the reply into `*reply` (cleared first);
  /// see PbsAlice::MakeRoundRequest(std::vector<uint8_t>*).
  void HandleRoundRequest(const std::vector<uint8_t>& request,
                          std::vector<uint8_t>* reply);

  /// Strong-verification epilogue: the 192-bit multiset hash of B.
  std::vector<uint8_t> MakeStrongDigest() const;

  const PbsPlan& plan() const;
  const PbsTimers& timers() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pbs

#endif  // PBS_CORE_PBS_ENDPOINTS_H_
