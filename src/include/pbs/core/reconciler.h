// One-call PBS reconciliation over an in-memory channel.
//
// PbsSession wires a PbsAlice and PbsBob together, runs the estimate
// exchange (or accepts an externally supplied estimate) and up to
// config.max_rounds protocol rounds, and returns everything the evaluation
// needs: the recovered difference, per-direction byte counts, round count,
// and encode/decode timing breakdowns.

#ifndef PBS_CORE_RECONCILER_H_
#define PBS_CORE_RECONCILER_H_

#include <cstdint>
#include <vector>

#include "pbs/common/transcript.h"
#include "pbs/core/params.h"
#include "pbs/core/pbs_endpoints.h"

namespace pbs {

/// Outcome of one reconciliation.
struct PbsResult {
  bool success = false;          ///< All units settled within max_rounds.
  int rounds = 0;                ///< Rounds actually executed.
  std::vector<uint64_t> difference;  ///< Alice's recovered A /\triangle B.
  size_t data_bytes = 0;         ///< Protocol bytes (excl. estimator).
  size_t estimator_bytes = 0;    ///< Estimate request + reply bytes.
  double encode_seconds = 0.0;   ///< Both endpoints' sketch/bin time.
  double decode_seconds = 0.0;   ///< Both endpoints' decode/recovery time.
  PbsPlan plan;                  ///< The parameterization used.
};

/// In-memory protocol driver.
class PbsSession {
 public:
  /// Reconciles `a` and `b`. If `d_used >= 0` the estimate exchange is
  /// skipped and both endpoints are sized for d_used (callers that already
  /// ran an estimator, or the "d known" setting of Sections 2-5).
  /// If `transcript` is non-null each message is recorded there too.
  static PbsResult Reconcile(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b,
                             const PbsConfig& config, uint64_t seed,
                             int d_used = -1,
                             Transcript* transcript = nullptr);
};

}  // namespace pbs

#endif  // PBS_CORE_RECONCILER_H_
