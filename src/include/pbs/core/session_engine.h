// Sans-I/O session engine: the wire-session protocol as a pure poll/feed
// state machine, with no transport, no threads, and no blocking anywhere.
//
// A SessionEngine holds one side (initiator or responder) of the framed
// reconciliation protocol (docs/WIRE_FORMAT.md). The embedding owns all
// I/O and pumps bytes through three calls:
//
//   Feed(data, size)  hand the engine inbound bytes, in ANY chunking --
//                     partial frames, single bytes, many frames at once;
//   Poll(out, max)    drain up to `max` pending outbound bytes;
//   Status()          what the engine needs next:
//                       kWantWrite  outbound bytes pending (Poll them)
//                       kWantRead   blocked on more inbound bytes (Feed)
//                       kDone       session settled; TakeResult()
//                       kError      session failed; result().error says why
//
// Because the engine never performs I/O, the same state machine serves
// every integration style: the blocking convenience drivers
// (core/wire_session.h) pump one engine over a ByteTransport; the
// single-threaded loopback runner pumps two engines against each other
// with no second thread; and net/ReconcileServer multiplexes thousands of
// engines -- one per connection -- from a single event loop.
//
// Steady-state rounds are allocation-free: inbound/outbound buffers, the
// frame scratch, and the request/reply payload buffers all warm to their
// peak size and are reused, and the scheme engines underneath reuse their
// pbs::Workspace scratch (tests/core/hotpath_alloc_test.cc pins the whole
// stack at zero allocations per round once warm).

#ifndef PBS_CORE_SESSION_ENGINE_H_
#define PBS_CORE_SESSION_ENGINE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pbs/core/element_store.h"
#include "pbs/core/messages.h"
#include "pbs/core/set_reconciler.h"

namespace pbs {

namespace sync {
class ShardedCoordinator;
class ShardedResponderMux;
struct ShardResumeState;
}  // namespace sync

/// Everything the initiator pins for one session. The responder adopts
/// these from the HELLO frame; it contributes only its element set.
struct SessionConfig {
  /// Registry key of the scheme to run (must exist on both sides).
  std::string scheme_name = "pbs";
  /// Scheme construction knobs; plan-affecting fields travel in the HELLO.
  SchemeOptions options;
  /// Master seed: drives every random choice of both engines, exactly like
  /// the `seed` argument of SetReconciler::Reconcile.
  uint64_t seed = 0xC11;
  /// Seed of the ToW estimate exchange (kept separate from `seed` so the
  /// estimator and the scheme never share hash functions).
  uint64_t estimate_seed = 0xE57;
  /// When >= 0, skip the estimate phase and hand this d to both engines
  /// (the "d known" setting of Sections 2-5, and the parity tests' way of
  /// matching an in-memory Reconcile call exactly). In a sharded session
  /// it is the per-shard d (a valid upper bound for every shard).
  double exact_d = -1.0;
  /// Keyspace sharding (sync/shard_planner.h). 0 or 1 runs the classic
  /// monolithic session; >= 2 splits the keyspace into that many
  /// hash-range shards, exchanges the Merkle pre-filter, and reconciles
  /// only differing shards as pipelined sub-sessions. The initiator
  /// proposes the count in SHARD_PLAN; a responder configured with a
  /// smaller (>= 2) count clamps it in SHARD_PLAN_ACK.
  int keyspace_shards = 0;
  /// Max sub-sessions in flight at once on the initiator (sharded
  /// sessions only). Local pacing knob; never travels on the wire.
  int shard_pipeline = 4;
  /// Per-phase deadline in milliseconds: how long this side waits for the
  /// peer's next frame in any one protocol phase before failing the
  /// session with "phase deadline exceeded". 0 disables (wait forever).
  /// Local knob, never on the wire; distinct from the server's idle reap
  /// (which closes whole connections, not phases). Enforced by embeddings
  /// via SessionEngine::CheckDeadline() / DeadlineRemainingMs().
  int phase_deadline_ms = 0;
  /// When set, the sharded initiator re-attaches to a previous partial
  /// session instead of starting fresh: it sends RESUME (instead of
  /// SHARD_PLAN) carrying the token's Merkle root and pending-shard list,
  /// and reconciles only the shards the token left unsettled. Taken from
  /// SessionResult::resume_state of the failed attempt. Ignored for
  /// monolithic sessions and responders.
  std::shared_ptr<const sync::ShardResumeState> resume;
};

/// Result of driving one side of a session to completion.
struct SessionResult {
  bool ok = false;        ///< Handshake + protocol + transport all succeeded.
  std::string error;      ///< Human-readable failure cause when !ok.
  std::string scheme;     ///< Registry key of the scheme that ran.
  double d_hat = 0.0;     ///< The difference estimate the engines consumed.
  /// Scheme outcome with wire_bytes/wire_frames filled in. Only the
  /// initiator recovers the difference; the responder's outcome carries
  /// accounting fields (and success mirrored from the DONE summary).
  ReconcileOutcome outcome;
  /// Shards that settled only after degrading to an alternate scheme
  /// (graceful degradation; sharded sessions only).
  int degraded_shards = 0;
  /// On a failed sharded-initiator session: everything a reconnecting
  /// client needs to finish the job via SessionConfig::resume. Null when
  /// the session was not resumable (monolithic, responder, or failed
  /// before the shard plan was agreed).
  std::shared_ptr<sync::ShardResumeState> resume_state;
};

/// What the engine needs from its embedding to make progress.
enum class SessionStatus {
  kWantRead,   ///< Blocked on inbound bytes: Feed() more (or FeedEof()).
  kWantWrite,  ///< Outbound bytes pending: Poll() / ConsumeOutbound() them.
  kDone,       ///< Session settled successfully; result() is final.
  kError,      ///< Session failed; result().error explains.
};

/// One side of a framed reconciliation session as a sans-I/O state
/// machine. Construct with Initiator() or Responder(), then pump bytes
/// per the file comment. Move-only; one engine per session.
class SessionEngine {
 public:
  /// The engine's (read-only) element set. Engines of one process that
  /// serve the same set share it through this handle instead of each
  /// holding a copy — with thousands of concurrent sessions over one big
  /// key set (net/ReconcileServer), per-connection copies would dominate
  /// server memory.
  using SharedElements = std::shared_ptr<const std::vector<uint64_t>>;

  /// Mints the initiating (Alice) side over `elements` (her set A).
  /// Configuration errors (out-of-range fields, unknown scheme) surface
  /// immediately as Status() == kError. `registry` defaults to the
  /// process-wide SchemeRegistry::Instance(); tests inject their own.
  static SessionEngine Initiator(const SessionConfig& config,
                                 std::vector<uint64_t> elements,
                                 const SchemeRegistry* registry = nullptr);
  static SessionEngine Initiator(const SessionConfig& config,
                                 SharedElements elements,
                                 const SchemeRegistry* registry = nullptr);

  /// Mints the responding (Bob) side over `elements` (his set B). The
  /// scheme and all plan-affecting options arrive in the peer's HELLO.
  static SessionEngine Responder(std::vector<uint64_t> elements,
                                 const SchemeRegistry* registry = nullptr);
  static SessionEngine Responder(SharedElements elements,
                                 const SchemeRegistry* registry = nullptr);

  /// Responder with side-local defaults: fields of `local_config` that
  /// never travel in the HELLO are honored for this side's engines --
  /// currently options.pbs.decode_threads, the local per-group decode
  /// parallelism (each peer parallelizes with its own resources; the
  /// recovered difference is identical either way). Every plan-affecting
  /// field is still adopted from the peer's HELLO.
  static SessionEngine Responder(const SessionConfig& local_config,
                                 SharedElements elements,
                                 const SchemeRegistry* registry = nullptr);

  /// Responder over a mutable store (core/element_store.h): serves
  /// reconciliations against `snapshot` (one consistent epoch for the
  /// whole session, however fast the set churns) and, because `store` is
  /// attached, also accepts UPDATE sessions that mutate the live set.
  /// Schemes with a snapshot fast path (PBS) adopt the snapshot's
  /// pre-built sketches instead of rebuilding at session setup. `snapshot`
  /// must be non-null (take it from store->snapshot() at admit time);
  /// `store` may be null for a frozen snapshot server that still rejects
  /// UPDATE as read-only.
  static SessionEngine Responder(const SessionConfig& local_config,
                                 std::shared_ptr<const StoreSnapshot> snapshot,
                                 std::shared_ptr<MutableElementStore> store,
                                 const SchemeRegistry* registry = nullptr);

  /// Mints the writer side of an UPDATE session: sends each batch as one
  /// kUpdate frame (strict ping-pong with the server's kUpdateAck), then a
  /// DONE summary. No HELLO/estimate/scheme phases run. The result's
  /// params_summary reports the final epoch and cumulative apply counts.
  static SessionEngine Updater(std::vector<UpdateBatch> batches,
                               const SchemeRegistry* registry = nullptr);

  SessionEngine(SessionEngine&&) noexcept;
  SessionEngine& operator=(SessionEngine&&) noexcept;
  SessionEngine(const SessionEngine&) = delete;
  SessionEngine& operator=(const SessionEngine&) = delete;
  ~SessionEngine();

  /// Accepts `size` inbound bytes in any chunking. Complete frames are
  /// processed immediately (possibly queueing outbound bytes); a trailing
  /// partial frame is buffered until more bytes arrive. Bytes fed after
  /// the session settled are ignored.
  void Feed(const uint8_t* data, size_t size);

  /// Signals end-of-stream from the peer. A session that has not settled
  /// fails with the classic "transport closed ..." diagnostics.
  void FeedEof();

  /// Copies up to `max` pending outbound bytes into `out` and consumes
  /// them. Returns the number copied (0 when nothing is pending).
  size_t Poll(uint8_t* out, size_t max);

  /// Zero-copy outbound access for writev/epoll embeddings: a stable view
  /// of the pending bytes, consumed explicitly after a (partial) write.
  /// The view is invalidated by any Feed/Poll/ConsumeOutbound call.
  const uint8_t* outbound_data() const { return outbound_.data() + out_pos_; }
  size_t outbound_size() const { return outbound_.size() - out_pos_; }
  void ConsumeOutbound(size_t n);

  SessionStatus Status() const;

  /// Minimum inbound bytes needed to complete the frame in flight (the
  /// rest of a header, or the rest of a payload). Only meaningful in
  /// kWantRead, where it is always > 0; blocking drivers Recv() exactly
  /// this much, preserving the classic driver's read pattern.
  size_t NeededBytes() const;

  /// Reports that the embedding's transport failed while writing the
  /// pending outbound bytes. Fails the session with
  /// "transport failed <label>" where <label> names the frame in flight
  /// (see pending_write_label()), and drops the undeliverable bytes.
  void FailTransport();

  /// What the pending outbound bytes are, e.g. "sending HELLO",
  /// "sending round request" -- for the embedding's diagnostics.
  const char* pending_write_label() const { return write_label_; }

  /// Enforces SessionConfig::phase_deadline_ms: when a deadline is set,
  /// the session is not settled, and the current phase has overrun, fails
  /// the session with "phase deadline exceeded while <phase>" (a
  /// responder also queues an ERROR frame first so the peer learns why)
  /// and returns true. Embeddings call this whenever they wake up with no
  /// inbound progress (event-loop ticks, RecvTimed timeouts). No-op when
  /// the deadline is disabled or the session already settled.
  bool CheckDeadline();

  /// Milliseconds left in the current phase: -1 when no deadline is set
  /// (or the session settled), otherwise >= 0. Blocking drivers pass this
  /// to ByteTransport::RecvTimed.
  int64_t DeadlineRemainingMs() const;

  /// Human-readable name of the phase in flight ("awaiting HELLO_ACK",
  /// "running sub-sessions", ...) for deadline diagnostics.
  const char* phase_name() const;

  /// The session result; final once Status() is kDone or kError.
  const SessionResult& result() const { return result_; }

  /// Moves the result out (call once, after the session settled).
  SessionResult TakeResult() { return std::move(result_); }

 private:
  enum class State {
    // Initiator.
    kAwaitHelloAck,
    kAwaitEstimateReply,
    kAwaitSchemeReply,
    kAwaitUpdateAck,  // Updater role: batch in flight.
    kAwaitShardPlanAck,  // Sharded initiator: SHARD_PLAN in flight.
    kAwaitResumeAck,     // Sharded initiator: RESUME in flight.
    kAwaitDigestReply,   // Sharded initiator: DIGEST_TREE in flight.
    kShardMux,           // Sharded initiator: sub-sessions running.
    kAwaitDoneAck,
    // Responder.
    kAwaitHello,
    kServing,
    // Both.
    kSettled,
    kFailed,
  };

  SessionEngine(bool is_initiator, const SessionConfig& config,
                SharedElements elements, const SchemeRegistry* registry);

  const SchemeRegistry& registry() const;
  void ProcessInbound();
  void DispatchFrame();
  void DispatchInitiator();
  void DispatchResponder();
  void HandleHello();
  void HandleEstimateRequest();
  void HandleSchemeRequest();
  void HandleUpdate();
  void StartShardedInitiator();
  void StartResumedInitiator();
  void HandleShardPlan();
  void HandleShardPlanAck();
  void HandleResume();
  void HandleResumeAck();
  void HandleDigestTree();
  void HandleDigestReply();
  void SendEstimateRequest();
  void HandleSubSession();
  void FlushShardFrames();
  void FinishShardedInitiator();
  void StartSchemePhase();
  void EmitNextRequest();
  void EmitNextUpdate();
  void FinishUpdater();
  void AppendOutbound(wire::FrameType type, uint32_t round,
                      const uint8_t* payload, size_t size, const char* label);
  void AppendError(const std::string& message);
  void Fail(std::string error);
  void Settle();
  size_t BufferedBytes() const { return inbound_.size() - in_pos_; }

  bool is_initiator_;
  State state_;
  SessionConfig config_;
  SharedElements elements_;
  // Mutable-store plumbing: the snapshot pins this session's view of the
  // set (and carries the adoptable pre-built layout); the store, when
  // attached, accepts UPDATE sessions. Both null for classic sessions.
  std::shared_ptr<const StoreSnapshot> snapshot_;
  std::shared_ptr<MutableElementStore> store_;
  // Updater role (initiator side).
  bool is_updater_ = false;
  std::vector<UpdateBatch> batches_;
  size_t batch_pos_ = 0;
  // Responder side: true once this session's first frame was kUpdate;
  // reconciliation frames are then rejected (sessions are single-purpose).
  bool update_session_ = false;
  UpdateBatch update_scratch_;  // Reused decode target.
  // Cumulative UPDATE accounting (both roles).
  uint64_t update_epoch_ = 0;
  uint32_t update_inserted_ = 0;
  uint32_t update_deleted_ = 0;
  uint32_t update_rejected_ = 0;
  const SchemeRegistry* registry_;  // nullptr = SchemeRegistry::Instance().
  uint8_t scheme_id_ = 0;
  std::unique_ptr<SetReconciler> reconciler_;
  std::unique_ptr<ReconcileInitiator> initiator_engine_;
  std::unique_ptr<ReconcileResponder> responder_engine_;
  // Sharded sessions (sync/sharded_session.h); null in monolithic ones.
  std::unique_ptr<sync::ShardedCoordinator> shard_coordinator_;
  std::unique_ptr<sync::ShardedResponderMux> shard_mux_;
  double d_hat_ = -1.0;
  uint32_t exchange_ = 0;
  size_t estimator_payload_bytes_ = 0;
  // Sharded initiator: the responder's Merkle root from SHARD_PLAN_ACK /
  // RESUME_ACK — carried into resume tokens so the responder can detect
  // a set that changed between attempts (stale resume).
  uint64_t remote_root_ = 0;
  // Phase deadline clock: re-stamped at construction and after every
  // dispatched frame; only read when config_.phase_deadline_ms > 0.
  std::chrono::steady_clock::time_point phase_start_{};

  // Byte plumbing: inbound accumulates fed bytes ahead of a consumed
  // prefix; outbound accumulates encoded frames ahead of a drained
  // prefix. Both warm to peak capacity and stop allocating.
  std::vector<uint8_t> inbound_;
  size_t in_pos_ = 0;
  std::vector<uint8_t> outbound_;
  size_t out_pos_ = 0;
  wire::WireFrame frame_;               // Reused decode target.
  std::vector<uint8_t> payload_scratch_;  // Reused request/reply payload.
  const char* write_label_ = "sending frame";

  size_t wire_bytes_ = 0;
  int wire_frames_ = 0;
  SessionResult result_;
};

}  // namespace pbs

#endif  // PBS_CORE_SESSION_ENGINE_H_
