// Polymorphic scheme abstraction: every reconciliation scheme in the repo
// (PBS and the Section-7/8 baselines alike) is exposed behind one
// interface, constructed by name from a string-keyed registry.
//
// The split of responsibilities mirrors the paper's experiment setup:
// the *caller* (sim/runner, CLI, applications) owns workload generation
// and the ToW estimate exchange, because the estimate is shared across
// schemes (Section 6.2) and its bytes are excluded from the reported
// communication overhead; the *scheme* owns its inflation policy
// (gamma-conservative or raw), parameter planning, and the protocol
// itself. New backends register themselves with SchemeRegistry and are
// immediately usable from the runner, the benches, and pbs_cli without
// touching any of them.

#ifndef PBS_CORE_SET_RECONCILER_H_
#define PBS_CORE_SET_RECONCILER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pbs/core/params.h"

namespace pbs {

struct StoreSnapshot;

/// Unified outcome of one reconciliation, merging what used to be
/// core/PbsResult and baselines/BaselineOutcome.
struct ReconcileOutcome {
  bool success = false;          ///< Protocol settled within its round cap.
  int rounds = 1;                ///< Message rounds actually executed.
  std::vector<uint64_t> difference;  ///< Recovered A /\triangle B.
  size_t data_bytes = 0;         ///< Protocol bytes (excl. estimator).
  size_t estimator_bytes = 0;    ///< Estimate exchange bytes, if the scheme
                                 ///< ran one itself (usually 0: the caller
                                 ///< owns estimation, see header comment).
  double encode_seconds = 0.0;   ///< Sketch/filter construction time.
  double decode_seconds = 0.0;   ///< Decode/peel/recovery time.
  std::string params_summary;    ///< Human-readable parameterization, e.g.
                                 ///< "g=20 n=127 t=8" or "t=138".
  /// Framed bytes actually moved by the session layer (handshake, estimate
  /// exchange, frame headers, payloads — both directions). Zero for
  /// in-memory Reconcile() calls, which transfer nothing; filled by
  /// core/wire_session.h so callers can report *true* transfer sizes next
  /// to the abstract data_bytes accounting above.
  size_t wire_bytes = 0;
  /// Frames exchanged by the session layer (both directions; 0 in-memory).
  int wire_frames = 0;
};

/// Construction-time knobs shared by every scheme. PbsConfig doubles as the
/// common parameter block (delta, target rounds, p0, gamma, optimizer
/// ranges): the partitioned schemes read all of it, the single-shot
/// baselines only the inflation factor gamma.
struct SchemeOptions {
  /// Signature width log|U| in bits (paper: 32).
  int sig_bits = 32;
  /// Appendix J.3: account signature-width-dependent wire fields at this
  /// width while computing over sig_bits (0 = off). Schemes that do not
  /// model it simply ignore it.
  int report_sig_bits = 0;
  /// PBS/partitioning knobs and the shared estimator policy.
  PbsConfig pbs;
};

/// One side's protocol engine for reconciling over a byte stream: the
/// *initiator* (the paper's Alice) drives a strict ping-pong of opaque
/// payloads and ultimately learns the difference. Payloads are scheme-
/// specific (documented in docs/WIRE_FORMAT.md); the session driver in
/// core/wire_session.h wraps each one in a checksummed WireFrame and moves
/// it across a ByteTransport, so endpoint implementations never see
/// framing or sockets.
///
/// Call sequence: while !done(): NextRequest() -> (peer) -> HandleReply().
/// After done(), TakeOutcome() yields the same ReconcileOutcome the
/// scheme's in-memory Reconcile() would have produced for the same inputs,
/// estimate, and seed (the wire_session parity tests pin this).
class ReconcileInitiator {
 public:
  virtual ~ReconcileInitiator() = default;

  /// Builds the next request payload. Precondition: !done(). Advances the
  /// scheme's round state.
  virtual std::vector<uint8_t> NextRequest() = 0;

  /// Buffer-reusing variant of NextRequest(): overwrites `*out` with the
  /// next request payload. The default wraps NextRequest(); multi-round
  /// schemes override it to reuse `out`'s capacity, which is what keeps
  /// steady-state SessionEngine rounds allocation-free
  /// (tests/core/hotpath_alloc_test.cc).
  virtual void NextRequestInto(std::vector<uint8_t>* out) {
    *out = NextRequest();
  }

  /// Consumes the responder's reply to the last request. Returns false on
  /// a malformed reply (the session is then aborted with a wire error).
  virtual bool HandleReply(const std::vector<uint8_t>& reply) = 0;

  /// True once the protocol has settled (successfully or not); no further
  /// requests may be produced.
  virtual bool done() const = 0;

  /// The reconciliation outcome. Valid once done(); may be called once.
  virtual ReconcileOutcome TakeOutcome() = 0;
};

/// The responding side (the paper's Bob): a pure request -> reply state
/// machine. The responder learns protocol parameters from the first
/// request payload and needs no outcome of its own.
class ReconcileResponder {
 public:
  virtual ~ReconcileResponder() = default;

  /// Produces the reply payload for one request. Returns false on a
  /// malformed request (the session is then aborted with a wire error).
  virtual bool HandleRequest(const std::vector<uint8_t>& request,
                             std::vector<uint8_t>* reply) = 0;
};

/// Interface implemented by every reconciliation scheme.
///
/// Implementations must be stateless after construction: Reconcile() is
/// const and may be called concurrently from the runner's worker threads.
/// CreateInitiator()/CreateResponder() mint fresh per-session state, so a
/// single SetReconciler can serve many concurrent wire sessions.
class SetReconciler {
 public:
  virtual ~SetReconciler() = default;

  /// Registry key, e.g. "pbs", "pinsketch-wp".
  virtual const char* name() const = 0;
  /// Paper-style label for tables/figures, e.g. "PBS", "PinSketch/WP".
  virtual const char* display_name() const = 0;
  /// True if the scheme can run additional repair rounds (PBS,
  /// PinSketch/WP); false for one-shot sketch exchanges.
  virtual bool supports_rounds() const { return false; }
  /// True if the scheme's sizing consumes the caller's d-hat estimate.
  /// A scheme returning false ignores the d_hat argument entirely.
  virtual bool needs_estimate() const { return true; }

  /// Reconciles `a` and `b` given the caller's estimate `d_hat` of
  /// |A /\triangle B| (exact when the caller knows d, Sections 2-5; a ToW
  /// estimate otherwise). Each scheme applies its own rounding/inflation
  /// policy to d_hat. `seed` drives every random choice, so equal inputs
  /// give bit-identical outcomes.
  virtual ReconcileOutcome Reconcile(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b,
                                     double d_hat, uint64_t seed) const = 0;

  /// Mints the initiator-side engine for one wire session over `elements`
  /// (the initiator's set A). `d_hat` and `seed` have exactly the
  /// Reconcile() semantics — the scheme applies the same inflation policy
  /// and derives the same random choices, so a session and an in-memory
  /// call recover identical differences. Returns nullptr if the scheme
  /// has no wire protocol (the session driver then reports an error).
  virtual std::unique_ptr<ReconcileInitiator> CreateInitiator(
      std::vector<uint64_t> /*elements*/, double /*d_hat*/,
      uint64_t /*seed*/) const {
    return nullptr;
  }

  /// Mints the responder-side engine for one wire session over `elements`
  /// (the responder's set B). Protocol parameters the responder cannot
  /// derive from `d_hat` arrive in the first request payload.
  virtual std::unique_ptr<ReconcileResponder> CreateResponder(
      std::vector<uint64_t> /*elements*/, double /*d_hat*/,
      uint64_t /*seed*/) const {
    return nullptr;
  }

  /// Mints a responder over a published store snapshot
  /// (core/element_store.h): the element vector is shared rather than
  /// copied and, when the scheme can, the snapshot's pre-built sketch
  /// state replaces the per-session O(|B|) rebuild. The default (and any
  /// scheme without a snapshot fast path) returns nullptr, in which case
  /// the session layer falls back to CreateResponder over the snapshot's
  /// elements -- adoption is an optimization, never a requirement.
  virtual std::unique_ptr<ReconcileResponder> CreateSnapshotResponder(
      std::shared_ptr<const StoreSnapshot> /*snapshot*/, double /*d_hat*/,
      uint64_t /*seed*/) const {
    return nullptr;
  }
};

/// Builds a scheme instance from shared options.
using SchemeFactory =
    std::function<std::unique_ptr<SetReconciler>(const SchemeOptions&)>;

/// String-keyed scheme registry. The five built-in schemes (pbs,
/// pinsketch, pinsketch-wp, ddigest, graphene) are registered on first
/// use; additional backends register via Register() or a static
/// SchemeRegistrar at namespace scope.
class SchemeRegistry {
 public:
  /// The process-wide registry (thread-safe lazy init; built-ins are
  /// registered before the first caller returns).
  static SchemeRegistry& Instance();

  /// Registers a scheme. Returns false (and keeps the existing entry) if
  /// the name is already taken.
  bool Register(const std::string& name, const std::string& display_name,
                SchemeFactory factory);

  /// Constructs the named scheme, or nullptr if unknown.
  std::unique_ptr<SetReconciler> Create(const std::string& name,
                                        const SchemeOptions& options) const;

  bool Contains(const std::string& name) const;

  /// Registered scheme names, sorted.
  std::vector<std::string> Names() const;

  /// Display label for a registered name ("" if unknown). Does not
  /// construct the scheme.
  std::string DisplayName(const std::string& name) const;

 private:
  struct Entry {
    std::string display_name;
    SchemeFactory factory;
  };
  std::vector<std::pair<std::string, Entry>> entries_;
};

/// Registers the five built-in schemes directly into `registry` (called
/// once from SchemeRegistry::Instance(); defined in
/// baselines/baseline_reconcilers.cc so the registration translation unit
/// is always linked).
void RegisterBuiltinSchemes(SchemeRegistry& registry);

/// Static-registration helper for out-of-tree backends:
///   static pbs::SchemeRegistrar reg("myscheme", "MyScheme", MakeMyScheme);
struct SchemeRegistrar {
  SchemeRegistrar(const std::string& name, const std::string& display_name,
                  SchemeFactory factory) {
    SchemeRegistry::Instance().Register(name, display_name,
                                        std::move(factory));
  }
};

}  // namespace pbs

#endif  // PBS_CORE_SET_RECONCILER_H_
