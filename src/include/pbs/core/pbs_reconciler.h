// SetReconciler adapter for PBS itself: wraps the PbsAlice/PbsBob endpoint
// pair (via PbsSession) behind the polymorphic interface, applying the
// gamma-conservative estimate inflation of Section 6.2 and the Appendix
// J.3 wide-signature wire accounting.

#ifndef PBS_CORE_PBS_RECONCILER_H_
#define PBS_CORE_PBS_RECONCILER_H_

#include "pbs/core/set_reconciler.h"

namespace pbs {

class PbsReconciler : public SetReconciler {
 public:
  explicit PbsReconciler(const SchemeOptions& options);

  const char* name() const override { return "pbs"; }
  const char* display_name() const override { return "PBS"; }
  bool supports_rounds() const override { return true; }

  ReconcileOutcome Reconcile(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, double d_hat,
                             uint64_t seed) const override;

  /// Wire-session engines wrapping PbsAlice / PbsBob (docs/WIRE_FORMAT.md,
  /// "pbs payloads"). A loopback session recovers the identical difference
  /// to Reconcile() for equal (d_hat, seed).
  std::unique_ptr<ReconcileInitiator> CreateInitiator(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;
  std::unique_ptr<ReconcileResponder> CreateResponder(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;

  /// Snapshot fast path (core/element_store.h): shares the snapshot's
  /// element vector and hands PbsBob the pre-built layout; Bob adopts it
  /// when the session's (seed, sig_bits, plan shape) match and silently
  /// rebuilds otherwise. Returns nullptr only when the snapshot carries no
  /// layout at all (the engine then uses the plain CreateResponder path,
  /// which re-validates elements).
  std::unique_ptr<ReconcileResponder> CreateSnapshotResponder(
      std::shared_ptr<const StoreSnapshot> snapshot, double d_hat,
      uint64_t seed) const override;

 private:
  PbsConfig config_;       // options.pbs with sig_bits folded in.
  int report_sig_bits_ = 0;
};

}  // namespace pbs

#endif  // PBS_CORE_PBS_RECONCILER_H_
