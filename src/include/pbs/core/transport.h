// Byte-stream transports for the framed session layer.
//
// The session driver (core/wire_session.h) is written against the abstract
// ByteTransport so the same protocol code runs over an in-memory loopback
// pair (tests, single-process demos), a connected POSIX stream socket
// (pbs_cli serve/connect, examples/socket_sync), or any transport an
// application supplies (TLS, QUIC streams, message buses carrying a
// byte-stream abstraction).

#ifndef PBS_CORE_TRANSPORT_H_
#define PBS_CORE_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace pbs {

/// Outcome of a bounded-wait receive (ByteTransport::RecvTimed).
enum class RecvStatus {
  kOk,       ///< All requested bytes arrived.
  kClosed,   ///< EOF or a transport error before they did.
  kTimeout,  ///< The timeout elapsed first (bytes consumed so far, if
             ///< any, are discarded — callers fail the session anyway).
};

/// A reliable, ordered, blocking byte stream — the minimal contract the
/// framed wire format needs. Implementations must deliver bytes exactly
/// once and in order (TCP semantics); framing, checksums, and message
/// boundaries live one layer up in core/messages.h.
class ByteTransport {
 public:
  virtual ~ByteTransport() = default;

  /// Writes exactly `size` bytes. Returns false on a broken/closed peer
  /// (after which the transport is unusable).
  virtual bool Send(const uint8_t* data, size_t size) = 0;

  /// Reads exactly `size` bytes, blocking until they arrive. Returns false
  /// on EOF or error before `size` bytes were received.
  virtual bool Recv(uint8_t* data, size_t size) = 0;

  /// Reads exactly `size` bytes or gives up after `timeout_ms`
  /// milliseconds — what lets the blocking drivers enforce
  /// SessionConfig::phase_deadline_ms without a watchdog thread. The
  /// default ignores the timeout and degrades to Recv (custom transports
  /// then simply cannot time out; the deadline is best-effort for them);
  /// the fd and loopback transports honor it exactly.
  virtual RecvStatus RecvTimed(uint8_t* data, size_t size, int timeout_ms) {
    (void)timeout_ms;
    return Recv(data, size) ? RecvStatus::kOk : RecvStatus::kClosed;
  }

  /// Best-effort non-blocking read: moves up to `size` bytes that are
  /// *already available* into `data` and returns the count — 0 when
  /// nothing is pending right now (including after EOF; use Recv to
  /// distinguish). Never blocks. This is what lets a single thread pump a
  /// SessionEngine pair over a transport pair with no blocking Recv and
  /// therefore no deadlock (core/session_engine.h). The default returns 0;
  /// the loopback and fd transports override it.
  virtual size_t TryRecv(uint8_t* data, size_t size) {
    (void)data;
    (void)size;
    return 0;
  }
};

/// In-memory transport pair: bytes sent on one end are received on the
/// other. Thread-safe; Recv blocks on a condition variable, so the two
/// session halves can run on separate threads (or interleaved on one
/// thread, since the ping-pong protocol never reads before the peer's
/// write completed). Destroying either end unblocks the peer with EOF.
std::pair<std::unique_ptr<ByteTransport>, std::unique_ptr<ByteTransport>>
MakeLoopbackTransportPair();

/// Transport over an open POSIX stream file descriptor (socketpair, pipe
/// pair, or connected socket). Takes ownership: the fd is closed on
/// destruction. Short reads/writes and EINTR are handled internally.
std::unique_ptr<ByteTransport> MakeFdTransport(int fd);

/// Connects to host:port (TCP, IPv4/IPv6 via getaddrinfo). Returns nullptr
/// and fills `*error` on failure.
std::unique_ptr<ByteTransport> TcpConnect(const std::string& host,
                                          uint16_t port, std::string* error);

/// A listening TCP socket accepting one connection at a time.
class TcpListener {
 public:
  ~TcpListener();
  TcpListener(TcpListener&&) noexcept;
  TcpListener& operator=(TcpListener&&) noexcept;

  /// Binds and listens on `port` (0 picks an ephemeral port; read it back
  /// with port()). Returns nullptr and fills `*error` on failure.
  static std::unique_ptr<TcpListener> Listen(uint16_t port,
                                             std::string* error);

  /// Blocks until a client connects; returns its transport (nullptr on
  /// error, e.g. the listener was closed). The accepted socket gets
  /// TCP_NODELAY (the framed ping-pong is latency-bound, not
  /// throughput-bound) and a 30 s receive timeout as an idle cap for
  /// sequential accept loops.
  std::unique_ptr<ByteTransport> Accept();

  /// Accepts one pending connection and returns its raw fd (-1 when none
  /// is pending on a non-blocking listener, or on error; errno is
  /// preserved from accept(2) so callers can tell EAGAIN from fd
  /// exhaustion — EMFILE/ENFILE — and back off accordingly). TCP_NODELAY
  /// is set; no receive timeout is — event-loop callers
  /// (net/ReconcileServer) own their idle policy. The caller owns the fd.
  int AcceptRaw();

  /// The listening socket, for event-loop integration (poll/epoll).
  int fd() const { return fd_; }

  /// Toggles O_NONBLOCK on the listening socket so AcceptRaw() (and the
  /// fd in a poll set) never blocks.
  bool SetNonBlocking(bool enabled);

  /// The bound port (resolves ephemeral port 0 requests).
  uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace pbs

#endif  // PBS_CORE_TRANSPORT_H_
