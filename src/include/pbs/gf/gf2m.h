// The finite field GF(2^m), 2 <= m <= 63.
//
// PBS uses two very different field sizes. The parity-bitmap BCH codes of
// Section 2.5 live in small fields (m = log2(n+1), n in {63..2047}), where
// log/antilog tables make multiplication a couple of table lookups. The
// PinSketch baseline (Section 7) sketches the full 32-bit universe and needs
// GF(2^32), where tables are infeasible and multiplication is carry-less
// multiply + modular reduction (gf2x.h).
//
// A GF2m value is a uint64_t whose bits are the coefficients of the
// residue-class representative; 0 is the additive identity, 1 the
// multiplicative identity. Field objects are cheap to copy (shared-state
// handle) and safe to share across threads after construction.

#ifndef PBS_GF_GF2M_H_
#define PBS_GF_GF2M_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "pbs/gf/gf2x.h"

namespace pbs {

/// GF(2^m) with the canonical (smallest) irreducible modulus of degree m.
class GF2m {
 public:
  /// Largest m for which log/antilog tables are built (2^17 entries).
  static constexpr int kMaxTableBits = 16;

  /// Constructs (or retrieves from a process-wide cache) the field GF(2^m).
  explicit GF2m(int m);

  /// Field extension degree m.
  int m() const { return state_->m; }

  /// Multiplicative group order 2^m - 1; also the largest valid element.
  uint64_t order() const { return state_->order; }

  /// The modulus polynomial, leading x^m bit included.
  uint64_t modulus() const { return state_->modulus; }

  /// Addition (= subtraction) is XOR.
  static uint64_t Add(uint64_t a, uint64_t b) { return a ^ b; }

  /// Field multiplication.
  uint64_t Mul(uint64_t a, uint64_t b) const {
    if (state_->log.empty()) {
      if (a == 0 || b == 0) return 0;
      return gf2x::MulMod(a, b, state_->modulus);
    }
    if (a == 0 || b == 0) return 0;
    return state_->exp[state_->log[a] + state_->log[b]];
  }

  /// Squaring (cheaper than Mul in the table-free path).
  uint64_t Sqr(uint64_t a) const {
    if (state_->log.empty()) return gf2x::SqrMod(a, state_->modulus);
    if (a == 0) return 0;
    uint64_t l = 2 * state_->log[a];
    uint64_t o = state_->order;
    return state_->exp[l >= o ? l - o : l];
  }

  /// Multiplicative inverse; `a` must be nonzero.
  uint64_t Inv(uint64_t a) const;

  /// a / b; `b` must be nonzero.
  uint64_t Div(uint64_t a, uint64_t b) const { return Mul(a, Inv(b)); }

  /// a^e by square-and-multiply (a^0 = 1, including 0^0 = 1 by convention).
  uint64_t Pow(uint64_t a, uint64_t e) const;

  /// True if `a` is a canonical field element (< 2^m).
  bool IsValid(uint64_t a) const { return a <= state_->order; }

  /// True if the two handles denote the same field.
  friend bool operator==(const GF2m& x, const GF2m& y) {
    return x.state_->m == y.state_->m;
  }

 private:
  struct State {
    int m;
    uint64_t order;
    uint64_t modulus;
    // log[a] for a in [1, order]; exp[k] for k in [0, 2*order-1] so that
    // exp[log[a] + log[b]] never needs a modulo.
    std::vector<uint32_t> log;
    std::vector<uint64_t> exp;
  };

  std::shared_ptr<const State> state_;
};

}  // namespace pbs

#endif  // PBS_GF_GF2M_H_
