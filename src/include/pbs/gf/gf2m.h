// The finite field GF(2^m), 2 <= m <= 63.
//
// PBS uses two very different field sizes. The parity-bitmap BCH codes of
// Section 2.5 live in small fields (m = log2(n+1), n in {63..2047}), where
// log/antilog tables make multiplication a couple of table lookups. The
// PinSketch baseline (Section 7) sketches the full 32-bit universe and needs
// GF(2^32), where tables are infeasible and multiplication is carry-less
// multiply + modular reduction (gf2x.h).
//
// A GF2m value is a uint64_t whose bits are the coefficients of the
// residue-class representative; 0 is the additive identity, 1 the
// multiplicative identity. Field objects are cheap to copy (shared-state
// handle) and safe to share across threads after construction.

#ifndef PBS_GF_GF2M_H_
#define PBS_GF_GF2M_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "pbs/common/workspace.h"
#include "pbs/gf/gf2x.h"

namespace pbs {

/// GF(2^m) with the canonical (smallest) irreducible modulus of degree m.
class GF2m {
 public:
  /// Largest m for which log/antilog tables are built (2^17 entries).
  static constexpr int kMaxTableBits = 16;

  /// Constructs (or retrieves from a process-wide cache) the field GF(2^m).
  explicit GF2m(int m);

  /// Field extension degree m.
  int m() const { return state_->m; }

  /// Multiplicative group order 2^m - 1; also the largest valid element.
  uint64_t order() const { return state_->order; }

  /// The modulus polynomial, leading x^m bit included.
  uint64_t modulus() const { return state_->modulus; }

  /// Addition (= subtraction) is XOR.
  static uint64_t Add(uint64_t a, uint64_t b) { return a ^ b; }

  /// Field multiplication.
  uint64_t Mul(uint64_t a, uint64_t b) const {
    if (state_->log.empty()) {
      if (a == 0 || b == 0) return 0;
      return gf2x::MulMod(a, b, state_->modulus);
    }
    if (a == 0 || b == 0) return 0;
    return state_->exp[state_->log[a] + state_->log[b]];
  }

  /// Squaring (cheaper than Mul in the table-free path).
  uint64_t Sqr(uint64_t a) const {
    if (state_->log.empty()) return gf2x::SqrMod(a, state_->modulus);
    if (a == 0) return 0;
    uint64_t l = 2 * state_->log[a];
    uint64_t o = state_->order;
    return state_->exp[l >= o ? l - o : l];
  }

  /// Multiplicative inverse; `a` must be nonzero.
  uint64_t Inv(uint64_t a) const;

  /// a / b; `b` must be nonzero.
  uint64_t Div(uint64_t a, uint64_t b) const { return Mul(a, Inv(b)); }

  /// a^e by square-and-multiply (a^0 = 1, including 0^0 = 1 by convention).
  uint64_t Pow(uint64_t a, uint64_t e) const;

  /// True if `a` is a canonical field element (< 2^m).
  bool IsValid(uint64_t a) const { return a <= state_->order; }

  // -------------------------------------------------------------------------
  // Log-domain access and batch kernels.
  //
  // The decode hot loops (Chien search, LFSR discrepancies, power-sum
  // toggles) are long runs of multiplies against a fixed operand or a
  // fixed stride. Routing each through Mul() costs a zero-branch and two
  // log lookups per element; the kernels below hoist the fixed operand's
  // log once and turn the loop body into add-and-index. The doubled exp
  // table (2*order entries, see State) is what lets every kernel skip the
  // modular reduction of log sums -- it doubles as the per-field "stride
  // table" of the incremental Chien search (gf/roots.h).
  // -------------------------------------------------------------------------

  /// True when the log/antilog tables exist (m <= kMaxTableBits). The
  /// log-domain kernels below work either way; table-free fields fall
  /// back to carry-less multiplies internally.
  bool has_tables() const { return !state_->log.empty(); }

  /// Discrete log of nonzero `a` to the cached generator's base.
  /// Precondition: has_tables() and a != 0.
  uint32_t Log(uint64_t a) const { return state_->log[a]; }

  /// Generator power exp(k), valid for k in [0, 2*order). Precondition:
  /// has_tables().
  uint64_t Exp(uint64_t k) const { return state_->exp[k]; }

  /// Raw doubled antilog table (2*order entries, exp_data()[k] = g^k for
  /// k in [0, 2*order)), for kernels whose inner loop cannot afford the
  /// per-call indirection of Exp() (incremental Chien search).
  /// Precondition: has_tables().
  const uint64_t* exp_data() const { return state_->exp.data(); }

  /// dst[i] ^= c * src[i] for every i (the row-update / LFSR-feedback
  /// form). dst must hold at least src.size() entries; aliasing dst with
  /// src is allowed. c == 0 is a no-op.
  void MulManyAccum(uint64_t c, Span<const uint64_t> src,
                    Span<uint64_t> dst) const;

  /// dst[i] = c * src[i] for every i (row scaling). dst must hold at
  /// least src.size() entries; aliasing dst with src is allowed.
  void MulManyInto(uint64_t c, Span<const uint64_t> src,
                   Span<uint64_t> dst) const;

  /// XOR-accumulated inner product sum_i a[i] * b[i] over the common
  /// prefix (sizes must match).
  uint64_t Dot(Span<const uint64_t> a, Span<const uint64_t> b) const;

  /// XOR-accumulated reversed inner product sum_i a[i] * b[n-1-i] with
  /// n = b.size() (the LFSR-discrepancy / recurrence-check form: with
  /// a = Lambda[1..v] and b = S[k-v .. k-1], this is
  /// sum_j Lambda_j S_{k-j}). Sizes must match.
  uint64_t DotRev(Span<const uint64_t> a, Span<const uint64_t> b) const;

  /// Successive powers out[i] = a^i for i in [0, out.size()), a single
  /// log-domain walk instead of out.size() multiplies.
  void PowTableInto(uint64_t a, Span<uint64_t> out) const;

  /// odd[i] ^= x^(2i+1) for i in [0, odd.size()): the odd power sums of
  /// one element, the per-element cost of a BCH power-sum sketch toggle.
  /// Precondition: x != 0.
  void OddPowerAccum(uint64_t x, Span<uint64_t> odd) const;

  /// True if the two handles denote the same field.
  friend bool operator==(const GF2m& x, const GF2m& y) {
    return x.state_->m == y.state_->m;
  }

 private:
  struct State {
    int m;
    uint64_t order;
    uint64_t modulus;
    // log[a] for a in [1, order]; exp[k] for k in [0, 2*order-1] so that
    // exp[log[a] + log[b]] never needs a modulo.
    std::vector<uint32_t> log;
    std::vector<uint64_t> exp;
  };

  std::shared_ptr<const State> state_;
};

}  // namespace pbs

#endif  // PBS_GF_GF2M_H_
