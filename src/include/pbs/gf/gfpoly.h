// Dense univariate polynomials with coefficients in GF(2^m).
//
// Used by the BCH decoders: Berlekamp-Massey produces an error-locator
// polynomial Lambda; root finding (roots.h) factors it. All operations are
// schoolbook -- degrees here are bounded by the BCH error-correction
// capacity t, which is small for PBS (<= ~60) and moderate for PinSketch
// (t = 1.38 d-hat), so O(t^2) arithmetic matches the complexity the paper
// ascribes to ECC decoding.

#ifndef PBS_GF_GFPOLY_H_
#define PBS_GF_GFPOLY_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "pbs/common/workspace.h"
#include "pbs/gf/gf2m.h"

namespace pbs {

// ---------------------------------------------------------------------------
// Span kernels -- the allocation-free core of polynomial arithmetic.
//
// A polynomial is any contiguous coefficient range (coeffs[i] multiplies
// x^i); trailing zeros are permitted and ignored. The owning GFPoly class
// below delegates to these, and the hot-path decoders (Berlekamp-Massey,
// Chien search, PGZ) call them directly on Workspace scratch.
// ---------------------------------------------------------------------------

/// Degree of the coefficient range: index of the highest nonzero entry,
/// or -1 for the (possibly empty) all-zero range.
int PolyDegree(Span<const uint64_t> coeffs);

/// Horner evaluation at a field point.
uint64_t PolyEval(const GF2m& field, Span<const uint64_t> coeffs, uint64_t x);

/// Schoolbook product into `out`, which must hold at least
/// a.size() + b.size() - 1 entries (0 slots required when either input is
/// empty) and must not alias the inputs. `out` is fully overwritten.
void PolyMulInto(const GF2m& field, Span<const uint64_t> a,
                 Span<const uint64_t> b, Span<uint64_t> out);

/// XOR-sum into `out` (size >= max(a.size(), b.size())); fully overwritten.
/// Aliasing `out` with either input is allowed.
void PolyAddInto(Span<const uint64_t> a, Span<const uint64_t> b,
                 Span<uint64_t> out);

/// Formal derivative into `out` (size >= a.size() - 1; 0 slots when
/// a.size() <= 1). In characteristic 2 the even-power terms vanish.
/// Aliasing `out` with `a` is allowed.
void PolyDerivativeInto(Span<const uint64_t> a, Span<uint64_t> out);

/// Polynomial over GF(2^m). coeff(i) multiplies x^i. The zero polynomial has
/// degree -1. Invariant: the leading stored coefficient is nonzero.
class GFPoly {
 public:
  explicit GFPoly(const GF2m& field) : field_(field) {}
  GFPoly(const GF2m& field, std::vector<uint64_t> coeffs)
      : field_(field), coeffs_(std::move(coeffs)) {
    Trim();
  }

  static GFPoly Zero(const GF2m& field) { return GFPoly(field); }
  static GFPoly One(const GF2m& field) { return GFPoly(field, {1}); }
  /// The monomial c * x^k.
  static GFPoly Monomial(const GF2m& field, uint64_t c, int k);

  const GF2m& field() const { return field_; }
  int degree() const { return static_cast<int>(coeffs_.size()) - 1; }
  bool IsZero() const { return coeffs_.empty(); }

  /// Coefficient of x^i (0 beyond the stored degree).
  uint64_t coeff(int i) const {
    return (i >= 0 && i < static_cast<int>(coeffs_.size())) ? coeffs_[i] : 0;
  }
  uint64_t leading() const { return coeffs_.empty() ? 0 : coeffs_.back(); }
  const std::vector<uint64_t>& coeffs() const { return coeffs_; }

  GFPoly Add(const GFPoly& other) const;
  GFPoly Mul(const GFPoly& other) const;
  GFPoly MulScalar(uint64_t c) const;
  /// Multiplies by x^k.
  GFPoly ShiftUp(int k) const;

  /// Quotient and remainder; divisor must be nonzero.
  std::pair<GFPoly, GFPoly> DivMod(const GFPoly& divisor) const;
  GFPoly Mod(const GFPoly& divisor) const { return DivMod(divisor).second; }
  GFPoly Div(const GFPoly& divisor) const { return DivMod(divisor).first; }

  /// Monic greatest common divisor.
  GFPoly Gcd(const GFPoly& other) const;

  /// Formal derivative (over characteristic 2: even-power terms vanish).
  GFPoly Derivative() const;

  /// Horner evaluation at a field point.
  uint64_t Eval(uint64_t x) const;

  /// this / leading-coefficient.
  GFPoly MakeMonic() const;

  /// (this * other) mod m.
  GFPoly MulMod(const GFPoly& other, const GFPoly& m) const {
    return Mul(other).Mod(m);
  }
  /// this^2 mod m.
  GFPoly SqrMod(const GFPoly& m) const { return Mul(*this).Mod(m); }

  friend bool operator==(const GFPoly& a, const GFPoly& b) {
    return a.coeffs_ == b.coeffs_;
  }

 private:
  void Trim() {
    while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
  }

  GF2m field_;
  std::vector<uint64_t> coeffs_;
};

}  // namespace pbs

#endif  // PBS_GF_GFPOLY_H_
