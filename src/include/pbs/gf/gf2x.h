// Polynomials over GF(2) packed into machine words.
//
// This is the bottom layer of the BCH stack: GF(2^m) (gf2m.h) is defined as
// GF(2)[x] modulo an irreducible polynomial of degree m. Rather than
// hard-coding a table of moduli (and risking a transcription error), the
// library *finds* the lexicographically smallest irreducible polynomial of
// each degree with a Rabin irreducibility test; the result is deterministic,
// cached, and verified independently by unit tests.
//
// Representation: a polynomial of degree <= 63 is a uint64_t whose bit i is
// the coefficient of x^i. Products of two such polynomials need up to 127
// bits and use unsigned __int128.

#ifndef PBS_GF_GF2X_H_
#define PBS_GF_GF2X_H_

#include <cstdint>

namespace pbs::gf2x {

using U128 = unsigned __int128;

/// Degree of `a` (-1 for the zero polynomial).
int Degree(uint64_t a);

/// Degree of a 128-bit packed polynomial (-1 for zero).
int Degree128(U128 a);

/// Carry-less multiplication of two 64-bit polynomials (128-bit product).
/// Dispatches at runtime to a hardware kernel (x86 PCLMULQDQ, AArch64
/// PMULL; see common/cpu_features.h) when the CPU has one and the build
/// allows it (PBS_DISABLE_CLMUL forces the fallback); otherwise the
/// portable shift-and-XOR loop below.
U128 ClMul(uint64_t a, uint64_t b);

/// The portable shift-and-XOR kernel, always available regardless of
/// dispatch. Exposed so the hardware path stays differentially tested
/// (tests/gf/gf2x_test.cc) and benchmarkable against it.
U128 ClMulPortable(uint64_t a, uint64_t b);

/// Reduces a 128-bit polynomial modulo `f` (deg f = m, 1 <= m <= 63; the
/// leading x^m bit must be set in `f`). Returns a polynomial of degree < m.
uint64_t Mod(U128 a, uint64_t f);

/// (a * b) mod f.
uint64_t MulMod(uint64_t a, uint64_t b, uint64_t f);

/// (a * b) mod f through the portable ClMul kernel, bypassing dispatch
/// (differential-test surface for the hardware path).
uint64_t MulModPortable(uint64_t a, uint64_t b, uint64_t f);

/// a^2 mod f.
uint64_t SqrMod(uint64_t a, uint64_t f);

/// Greatest common divisor of two packed polynomials.
uint64_t Gcd(uint64_t a, uint64_t b);

/// Rabin's irreducibility test for `f` (degree taken from the leading bit).
/// f is irreducible over GF(2) iff x^(2^m) == x (mod f) and, for every prime
/// p dividing m, gcd(x^(2^(m/p)) - x, f) = 1.
bool IsIrreducible(uint64_t f);

/// Smallest (as an integer) irreducible polynomial of degree m, 1 <= m <= 63.
/// Deterministic; cached after the first call per degree.
uint64_t FindIrreducible(int m);

}  // namespace pbs::gf2x

#endif  // PBS_GF_GF2X_H_
