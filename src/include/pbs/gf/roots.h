// Root finding for error-locator polynomials over GF(2^m).
//
// Two strategies, selected by field size:
//  * Chien search -- exhaustive evaluation over all nonzero field elements.
//    For the parity-bitmap fields of PBS (n = 2^m - 1 <= 2047) this costs
//    O(n * deg) and is both simple and fast.
//  * Berlekamp trace splitting -- for large fields (PinSketch over the
//    32-bit universe) exhaustive search is impossible; instead the
//    polynomial is recursively split with gcd(f, Tr(beta x) + c) where
//    Tr is the absolute trace GF(2^m) -> GF(2).
//
// Both paths report failure (nullopt) unless the polynomial splits into
// exactly deg(f) *distinct* roots -- the BCH decode-failure detection that
// Section 3.2 relies on ("the decoder would report a failure").

#ifndef PBS_GF_ROOTS_H_
#define PBS_GF_ROOTS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "pbs/gf/gfpoly.h"

namespace pbs {

/// Field-size threshold (on 2^m - 1) below which Chien search is used.
inline constexpr uint64_t kChienThreshold = uint64_t{1} << 13;

/// Finds all roots of `f`, requiring deg(f) distinct roots in GF(2^m)*
/// (zero roots are rejected too: error locators satisfy Lambda(0) = 1).
/// Returns nullopt if f is not a product of distinct nonzero linear factors.
/// `seed` randomizes the trace-splitting path (any value is fine;
/// determinism in tests comes from passing a fixed seed).
std::optional<std::vector<uint64_t>> FindDistinctNonzeroRoots(
    const GFPoly& f, uint64_t seed = 0x9E3779B97F4A7C15ull);

/// Workspace variant of FindDistinctNonzeroRoots over a raw coefficient
/// range. Writes the roots into `out` (at least PolyDegree(coeffs) slots)
/// and returns their count, or -1 if the polynomial is not a product of
/// distinct nonzero linear factors. The Chien path (order < kChienThreshold,
/// i.e. every PBS parity-bitmap field) performs no heap allocation; larger
/// fields fall back to the allocating trace-splitting path.
int FindDistinctNonzeroRootsWs(const GF2m& field, Span<const uint64_t> coeffs,
                               Workspace& ws, Span<uint64_t> out,
                               uint64_t seed = 0x9E3779B97F4A7C15ull);

/// Exhaustive Chien-style search (exposed for testing): evaluates f at every
/// nonzero element by Horner's rule, stopping once deg(f) roots are found
/// (a degree-d polynomial has at most d roots, so the tail scan is provably
/// fruitless). Precondition: field order < 2^20.
std::vector<uint64_t> ChienSearch(const GFPoly& f);

/// Allocation-free Horner Chien search: writes every root of `coeffs` in
/// GF(2^m)* into `out` and returns the count, early-exiting once
/// PolyDegree(coeffs) roots are found. `out` needs at least
/// PolyDegree(coeffs) slots. The zero polynomial reports 0 roots (it has
/// no meaningful locator factorization). Precondition: field order < 2^20.
/// This is the reference implementation the incremental kernel below is
/// differentially tested against; the decode hot path uses the latter.
int ChienSearchInto(const GF2m& field, Span<const uint64_t> coeffs,
                    Span<uint64_t> out);

/// Incremental Chien search -- the decode-hot-path kernel. Walks the
/// nonzero field elements in generator order (x = g^0, g^1, ...); for each
/// nonzero coefficient c_j it keeps the log of the running term c_j x^j
/// and advances it by the per-coefficient stride j each point, so one
/// evaluation is an XOR-reduce of exp-table reads instead of deg(f) Horner
/// multiplies. Early-exits once deg(f) roots are found; degree-1 locators
/// are solved directly. Scratch (the per-term log/stride vectors) comes
/// from `ws`. Finds the same root *set* as ChienSearchInto but reports it
/// in generator order, not ascending order. Preconditions:
/// field.has_tables() and out.size() >= PolyDegree(coeffs).
int ChienSearchIncremental(const GF2m& field, Span<const uint64_t> coeffs,
                           Workspace& ws, Span<uint64_t> out);

/// One polynomial of a cross-group batch root search. `coeffs` holds the
/// locator coefficients c_0..c_deg; roots land in `out` (at least
/// PolyDegree(coeffs) slots) and `count` reports how many were found --
/// exactly what ChienSearchIncremental would have returned and written.
struct ChienBatchPoly {
  Span<const uint64_t> coeffs;  ///< Locator coefficients, low-to-high.
  Span<uint64_t> out;           ///< Root output, generator order.
  int count = 0;                ///< Roots found (result).
};

/// Lane width of the batched Chien kernel: the AVX2 path advances this
/// many locator polynomials (one per BCH group) in lock-step through the
/// doubled antilog table. Callers batching group decodes should aim for
/// multiples of this.
inline constexpr int kChienBatchLanes = 4;

/// Cross-group batch Chien search: finds the roots of every polynomial in
/// `polys` over the shared field, bit-identical (same roots, same order,
/// same counts) to calling ChienSearchIncremental per polynomial. With
/// AVX2, quads of degree >= 2 polynomials are evaluated in SIMD lanes --
/// each lane is one group's locator, advanced in lock-step through the
/// doubled antilog table -- and ragged tails (fewer than kChienBatchLanes
/// polynomials, or degree <= 1 locators) fall back to the scalar kernel.
/// Zero-alloc once `ws` is at steady-state capacity. Precondition:
/// field.has_tables().
void ChienSearchBatch(const GF2m& field, Span<ChienBatchPoly> polys,
                      Workspace& ws);

/// Portable reference for ChienSearchBatch (per-polynomial scalar kernel,
/// no SIMD dispatch): the differential tests pin the batched path against
/// this.
void ChienSearchBatchPortable(const GF2m& field, Span<ChienBatchPoly> polys,
                              Workspace& ws);

}  // namespace pbs

#endif  // PBS_GF_ROOTS_H_
