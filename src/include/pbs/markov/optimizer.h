// Parameter optimization of Section 5.1 / Appendix H.
//
// Among all (n, t) with n = 2^m - 1 and t in a band around delta, find the
// combination that guarantees Pr[R <= r] >= p0 (via the rigorous lower
// bound) while minimizing the per-group first-round communication
//     t log n + delta log n    (+ the constant delta log|U| + log|U|).
// The paper narrows n to {63, ..., 2047} and t to [1.5 delta, 3.5 delta];
// both ranges are configurable here (Section 5.2's r = 1 case needs a wider
// search to be feasible at all).

#ifndef PBS_MARKOV_OPTIMIZER_H_
#define PBS_MARKOV_OPTIMIZER_H_

#include <optional>
#include <vector>

namespace pbs {

/// Inputs to the (n, t) search.
struct OptimizerOptions {
  int d = 1000;          ///< (Estimated, inflated) set-difference size.
  int delta = 5;         ///< Average distinct elements per group.
  int r = 3;             ///< Target number of rounds.
  double p0 = 0.99;      ///< Target overall success probability.
  int sig_bits = 32;     ///< log|U|, for reporting the constant term.
  int min_m = 6;         ///< Smallest bitmap exponent (n = 2^m - 1).
  int max_m = 11;        ///< Largest bitmap exponent.
  double t_low = 1.5;    ///< Lower t bound as a multiple of delta.
  double t_high = 3.5;   ///< Upper t bound as a multiple of delta.
  /// Penalties aligning the analytical chain with the paper's Table 1
  /// (see success_probability.h). Set both to 1.0 for the raw model.
  double base_penalty = 1.5;
  double split_penalty = 9.0;
};

/// One evaluated (n, t) cell.
struct OptimizerCell {
  int n = 0;
  int t = 0;
  double lower_bound = 0.0;   ///< 1 - 2(1 - alpha^g).
  double variable_bits = 0.0; ///< (t + delta) * log2(n+1).
  double total_bits = 0.0;    ///< variable + (delta + 1) * sig_bits.
  bool feasible = false;      ///< lower_bound >= p0.
};

/// The chosen parameterization.
struct PbsPlanParams {
  int g = 1;   ///< Number of groups, ceil(d / delta).
  int n = 0;   ///< Bins per group (2^m - 1).
  int m = 0;   ///< log2(n + 1).
  int t = 0;   ///< BCH error-correction capacity per group.
  double lower_bound = 0.0;
  double bits_per_group = 0.0;  ///< First-round average, formula (1).
};

/// Evaluates the whole (n, t) grid (for Table 1).
std::vector<OptimizerCell> EvaluateGrid(const OptimizerOptions& options);

/// Picks the feasible cell minimizing communication. nullopt if no cell in
/// the search range meets p0.
std::optional<PbsPlanParams> OptimizeParams(const OptimizerOptions& options);

}  // namespace pbs

#endif  // PBS_MARKOV_OPTIMIZER_H_
