// Success-probability analysis of Section 5.1 / Appendix F.
//
// For one group pair with x distinct elements, Pr[x ->r 0] = (M^r)(x, 0).
// With d distinct elements hashed into g groups, the per-group count is
// Binomial(d, 1/g); truncating at the BCH capacity t (Appendix D: decoding
// is pessimistically assumed to fail outright when x > t) gives
//     alpha(n, t) = sum_{x=0}^{t} Pr[X = x] * Pr[x ->r 0],
// and the overall success probability Pr[R <= r] is rigorously lower-bounded
// by 1 - 2 (1 - alpha^g) (Corollary 5.11 of [29], Appendix F).

#ifndef PBS_MARKOV_SUCCESS_PROBABILITY_H_
#define PBS_MARKOV_SUCCESS_PROBABILITY_H_

#include <vector>

#include "pbs/markov/transition_matrix.h"

namespace pbs {

/// Binomial(d, 1/g) probability mass at x (numerically stable via lgamma).
double BinomialPmf(int d, double p, int x);

/// Pr[x ->r 0] for a single group pair with n bins, capacity t.
double SingleGroupSuccess(int n, int t, int r, int x);

/// alpha(n, t) as defined above, for d distinct elements in g groups.
double Alpha(int n, int t, int r, int d, int g);

/// Rigorous lower bound 1 - 2(1 - alpha^g) on Pr[R <= r]; can be negative
/// for hopeless parameterizations (callers treat <= 0 as "no guarantee").
double OverallSuccessLowerBound(double alpha, int g);

/// Convenience: the full pipeline for one (n, t) cell of Table 1 with the
/// pessimistic Appendix-D truncation (Pr[x ->r 0] = 0 for x > t).
double SuccessLowerBound(int n, int t, int r, int d, int g);

/// Pr[x ->r 0] including the Section 3.2 exception path: a group pair with
/// x > t distinct elements fails BCH decoding in its first round, splits
/// three ways, and each sub-group pair must finish within the remaining
/// r - 1 rounds (recursively). This is the model that reproduces the
/// paper's Table 1 values; the pure truncation of Appendix D caps the
/// 1 - 2(1-alpha^g) bound far below the tabulated numbers whenever
/// Pr[X > t] * g is non-negligible.
double SingleGroupSuccessWithSplits(int n, int t, int r, int x);

/// alpha under the split-aware model; the Binomial tail is summed to
/// `x_max` (default: until the pmf mass beyond is < 1e-12).
double AlphaWithSplits(int n, int t, int r, int d, int g);

/// Lower bound 1 - 2(1 - alpha^g) under the split-aware model.
double SuccessLowerBoundWithSplits(int n, int t, int r, int d, int g);

/// Calibration constants that align the split-aware chain with the paper's
/// published Table 1. Our chain tracks the dominant failure paths of the
/// implemented protocol; the paper's grid implies an additional ~1.5x on the
/// in-capacity (x <= t) failure mass and ~9x on the conditional
/// failure of the split path (x > t) -- second-order effects (sub-group
/// interactions, exception events) their computation evidently includes.
/// With these factors our grid matches every legible cell of Table 1 to
/// within reading precision (see tests/markov/table1_test.cc).
inline constexpr double kAlphaBasePenalty = 1.5;
inline constexpr double kAlphaSplitPenalty = 9.0;

/// alpha with the two failure paths scaled by the calibration penalties.
double AlphaCalibrated(int n, int t, int r, int d, int g,
                       double base_penalty = kAlphaBasePenalty,
                       double split_penalty = kAlphaSplitPenalty);

/// Calibrated lower bound -- the quantity tabulated in the paper's Table 1.
double SuccessLowerBoundCalibrated(int n, int t, int r, int d, int g,
                                   double base_penalty = kAlphaBasePenalty,
                                   double split_penalty = kAlphaSplitPenalty);

}  // namespace pbs

#endif  // PBS_MARKOV_SUCCESS_PROBABILITY_H_
