// Piecewise-reconciliability analysis (Section 5.3 / Appendix G).
//
// E[Z_1 + ... + Z_k | x] = sum_y (x - y) (M^k)(x, y) counts the expected
// number of the x distinct elements reconciled within k rounds;
// unconditioning over the Binomial(d, 1/g) group load (truncated at t, as
// everywhere in the framework) and differencing over k yields the expected
// fraction of d reconciled in each round -- the paper's
// 0.962 / 0.0380 / 3.61e-4 / 2.86e-6 sequence for (d=1000, n=127, t=13).

#ifndef PBS_MARKOV_PIECEWISE_H_
#define PBS_MARKOV_PIECEWISE_H_

#include <vector>

namespace pbs {

/// Expected number reconciled within k rounds, conditioned on x initial
/// distinct elements in the group (n bins, capacity t).
double ExpectedReconciledWithin(int n, int t, int k, int x);

/// Expected fraction of the d distinct elements reconciled in each round
/// 1..rounds, over all g groups (entries sum to <= 1; the deficit is the
/// mass truncated at t and any elements unfinished after `rounds`).
std::vector<double> ExpectedRoundFractions(int n, int t, int d, int g,
                                           int rounds);

}  // namespace pbs

#endif  // PBS_MARKOV_PIECEWISE_H_
