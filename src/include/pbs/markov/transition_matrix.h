// The Markov chain of Section 4: states 0..t (bad balls at the start of a
// round), transitions M(i, j) from the balls-into-bins DP, and the r-round
// success probability Pr[x ->r 0] = (M^r)(x, 0).

#ifndef PBS_MARKOV_TRANSITION_MATRIX_H_
#define PBS_MARKOV_TRANSITION_MATRIX_H_

#include <cstddef>
#include <vector>

namespace pbs {

/// Dense (t+1) x (t+1) row-stochastic matrix.
class TransitionMatrix {
 public:
  /// Builds M for a PBS round with n bins, states 0..t.
  static TransitionMatrix ForRound(int n, int t);

  int size() const { return static_cast<int>(dim_); }
  double At(int i, int j) const { return data_[i * dim_ + j]; }

  /// Matrix product (same dimensions).
  TransitionMatrix Multiply(const TransitionMatrix& other) const;

  /// M^r (r >= 0; r = 0 is the identity).
  TransitionMatrix Power(int r) const;

  /// Row sums (should be ~1 for states whose mass is fully tracked).
  double RowSum(int i) const;

 private:
  explicit TransitionMatrix(size_t dim) : dim_(dim), data_(dim * dim, 0.0) {}

  size_t dim_;
  std::vector<double> data_;
};

}  // namespace pbs

#endif  // PBS_MARKOV_TRANSITION_MATRIX_H_
