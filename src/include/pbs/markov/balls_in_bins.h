// The balls-into-bins dynamic program of Appendix E.
//
// One PBS round throws the i yet-unreconciled distinct elements ("balls")
// uniformly into the n bins of a fresh hash partition. Balls that land alone
// are reconciled ("good"); balls sharing a bin remain "bad". Appendix E
// decomposes the composite state "j bad balls" into sub-states (j, k) --
// j bad balls occupying exactly k bad bins -- and derives the recurrence
//
//   M~(i,j,k) = (i-j+1)/n * M~(i-1, j-2, k-1)
//             +       k/n * M~(i-1, j-1, k)
//             + (1 - (i-1-j+k)/n) * M~(i-1, j, k)
//
// (the three cases: the i-th ball joins a good bin, joins a bad bin, or
// opens a new bin). Summing over k yields the one-round transition
// probabilities M(i, j) of the Markov chain in Section 4.

#ifndef PBS_MARKOV_BALLS_IN_BINS_H_
#define PBS_MARKOV_BALLS_IN_BINS_H_

#include <cstddef>
#include <vector>

namespace pbs {

/// Dense table of M~(i, j, k) for 0 <= i, j, k <= t_max.
class BallsInBinsTable {
 public:
  /// Builds the DP for n bins, tracking up to t_max balls.
  BallsInBinsTable(int n, int t_max);

  /// Probability that throwing i balls leaves j bad balls in k bad bins.
  double Prob(int i, int j, int k) const;

  /// One-round transition probability M(i, j) = sum_k M~(i, j, k).
  double Transition(int i, int j) const;

  int n() const { return n_; }
  int t_max() const { return t_max_; }

 private:
  size_t Index(int i, int j, int k) const {
    return (static_cast<size_t>(i) * (t_max_ + 1) + j) * (t_max_ + 1) + k;
  }

  int n_;
  int t_max_;
  std::vector<double> table_;
};

/// Probability that d balls thrown into n bins all land in distinct bins --
/// the "ideal case" probability prod_{k=1}^{d-1} (1 - k/n) of Section 2.2.1.
double IdealCaseProbability(int d, int n);

}  // namespace pbs

#endif  // PBS_MARKOV_BALLS_IN_BINS_H_
