// PinSketch baseline [13] (Section 7).
//
// The whole universe U is conceptually a |U|-bit bitmap; a set is sketched
// by t BCH syndromes of its characteristic vector, i.e. the odd power sums
// of its elements over GF(2^log|U|). Communication is t log|U| bits with
// t = ceil(1.38 d-hat) (Section 8.1.1); decoding costs O(t^2) field
// operations -- the computational bottleneck PBS removes.

#ifndef PBS_BASELINES_PINSKETCH_H_
#define PBS_BASELINES_PINSKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// Common result type for the baseline reconciliation schemes.
struct BaselineOutcome {
  bool success = false;
  std::vector<uint64_t> difference;
  size_t data_bytes = 0;
  double encode_seconds = 0.0;
  double decode_seconds = 0.0;
  int rounds = 1;
};

/// Reconciles a and b with one PinSketch exchange of capacity t.
/// `sig_bits` is the signature width (the BCH field is GF(2^sig_bits)).
BaselineOutcome PinSketchReconcile(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b, int t,
                                   int sig_bits, uint64_t seed);

}  // namespace pbs

#endif  // PBS_BASELINES_PINSKETCH_H_
