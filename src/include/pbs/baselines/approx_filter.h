// Approximate filter-exchange reconciliation (Section 7's BF-based
// lineage: [9, 19, 25]).
//
// Alice and Bob exchange membership filters of their sets; each side keeps
// the elements the other's filter rejects. False positives make the result
// an *underestimate* of A /\triangle B -- "only suitable for applications
// that do not require perfect data synchronization" -- which is exactly
// what these reconcilers measure: the recall achieved for a given filter
// budget, with either a Bloom-filter or a cuckoo-filter transport.

#ifndef PBS_BASELINES_APPROX_FILTER_H_
#define PBS_BASELINES_APPROX_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pbs {

/// Outcome of one approximate reconciliation.
struct ApproxOutcome {
  /// Estimated difference (a subset of the true difference w.h.p., minus
  /// the false-positive misses).
  std::vector<uint64_t> estimated_diff;
  size_t data_bytes = 0;
  /// |estimated n truth| / |truth| -- filled by EvaluateRecall.
  double recall = 0.0;
};

enum class FilterKind { kBloom, kCuckoo };

/// Bidirectional filter exchange at false-positive budget `fpr` (Bloom) or
/// the nearest-achievable cuckoo fingerprint width.
ApproxOutcome ApproxFilterReconcile(const std::vector<uint64_t>& a,
                                    const std::vector<uint64_t>& b,
                                    FilterKind kind, double fpr,
                                    uint64_t seed);

/// Computes recall of `outcome` against the ground-truth difference.
double EvaluateRecall(const ApproxOutcome& outcome,
                      const std::vector<uint64_t>& truth_diff);

}  // namespace pbs

#endif  // PBS_BASELINES_APPROX_FILTER_H_
