// PinSketch "with partition" (PinSketch/WP) baseline (Section 8.3).
//
// PBS's algorithmic trick -- hash-partition both sets into g = d/delta
// groups and reconcile each group pair independently -- applied to
// PinSketch. Per group pair, Alice sends a PinSketch of her group (capacity
// t over GF(2^log|U|)); Bob decodes the merged sketch, obtaining the
// distinct elements *directly* (no parity bitmap, no XOR-sum indirection),
// and replies with them plus a checksum; BCH failures split the group three
// ways exactly as in PBS. The communication difference the paper isolates:
// the (t - delta) log|U| safety margin here costs 3-4x the PBS margin of
// (t - delta) log n.

#ifndef PBS_BASELINES_PINSKETCH_WP_H_
#define PBS_BASELINES_PINSKETCH_WP_H_

#include <cstdint>
#include <vector>

#include "pbs/baselines/pinsketch.h"  // BaselineOutcome.

namespace pbs {

/// Multi-round partitioned PinSketch. `d_used` sizes the grouping
/// (g = ceil(d_used/delta)); `t` is the per-group BCH capacity (use the
/// same t the PBS optimizer picked, per Section 8.3). `report_sig_bits`
/// lets Appendix J.3 account communication as if signatures were wider
/// (e.g. 256 bits) while still computing over sig_bits-wide elements;
/// pass 0 to use sig_bits.
BaselineOutcome PinSketchWpReconcile(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b,
                                     int d_used, int delta, int t,
                                     int sig_bits, int max_rounds,
                                     uint64_t seed, int report_sig_bits = 0);

}  // namespace pbs

#endif  // PBS_BASELINES_PINSKETCH_WP_H_
