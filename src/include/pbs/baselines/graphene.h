// Graphene baseline [32] (Sections 7, 8.2).
//
// Protocol-I shape: Bob sends an (optional) Bloom filter of B plus an IBF
// of B. Alice passes her elements through the BF to form a candidate set Z
// (a superset of A n B), builds IBF(Z) locally, and decodes
// IBF(B) - IBF(Z), which contains only the BF's false positives (Z \ B)
// and any B-only elements. The difference is then
// (A \ Z) u (Z \ B) u (B \ Z). A per-epsilon cost model chooses the BF
// false-positive rate, dropping the BF entirely (epsilon = 1) when its
// O(|B|) cost exceeds the IBF savings -- reproducing the crossover the
// paper discusses for d large relative to |B|.

#ifndef PBS_BASELINES_GRAPHENE_H_
#define PBS_BASELINES_GRAPHENE_H_

#include <cstdint>
#include <vector>

#include "pbs/baselines/pinsketch.h"  // BaselineOutcome.

namespace pbs {

/// Cost-model constants. Defaults are tuned (tests/baselines) so the
/// decode success rate meets the 239/240 target of Section 8.2.
struct GrapheneConfig {
  /// Candidate BF false-positive rates; 1.0 means "no BF" (IBF-only).
  std::vector<double> epsilon_grid = {1.0,  0.5,   0.2,   0.1,  0.05,
                                      0.02, 0.01,  0.005, 0.002, 0.001};
  /// IBF cells per expected recovered element.
  double cells_per_item = 1.7;
  /// Additive slack: cells += slack_mult * sqrt(expected) + slack_const.
  double slack_mult = 3.0;
  double slack_const = 10.0;
  int ibf_hashes = 4;
};

/// The cost model's resolved choice for one exchange: the BF false-positive
/// rate (1.0 = BF dropped) and the IBF cell budget. Exposed so the wire
/// responder (baselines/baseline_endpoints) plans identically to the
/// in-memory GrapheneReconcile for the same (d_est, |B|).
struct GraphenePlan {
  double epsilon = 1.0;  ///< Chosen BF false-positive rate (1.0 = no BF).
  size_t cells = 0;      ///< IBF cells.
  bool use_bf() const { return epsilon < 1.0; }
};

/// Runs the per-epsilon cost model of Section 8.2 over `config`'s grid.
GraphenePlan GrapheneChoosePlan(int d_est, size_t set_b_size, int sig_bits,
                                const GrapheneConfig& config = {});

/// Reconciles a and b given an estimate `d_est` of |A \ B| (Graphene needs
/// no separate estimator message; the paper credits it 336 bytes for this).
BaselineOutcome GrapheneReconcile(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b, int d_est,
                                  int sig_bits, uint64_t seed,
                                  const GrapheneConfig& config = {});

}  // namespace pbs

#endif  // PBS_BASELINES_GRAPHENE_H_
