// SetReconciler adapters for the Section-7/8 baseline schemes. Each wraps
// the corresponding free-function protocol behind the polymorphic
// interface, reproducing exactly the estimate-handling policy the
// experiment runner applied before the refactor:
//
//   PinSketch     t     = max(1, gamma-inflated d-hat)      (Section 8.1.1)
//   D.Digest      d_est = max(1, round(d-hat))              (raw, [15])
//   Graphene      d_est = max(1, gamma-inflated d-hat)      (Section 8.2)
//   PinSketch/WP  d     = gamma-inflated d-hat, t from the PBS plan
//                 (same delta and t as PBS, Section 8.3)
//
// The file also defines RegisterBuiltinSchemes(), which installs these
// four plus PbsReconciler into a SchemeRegistry.

#ifndef PBS_BASELINES_BASELINE_RECONCILERS_H_
#define PBS_BASELINES_BASELINE_RECONCILERS_H_

#include "pbs/core/set_reconciler.h"

namespace pbs {

class PinSketchReconciler : public SetReconciler {
 public:
  explicit PinSketchReconciler(const SchemeOptions& options);

  const char* name() const override { return "pinsketch"; }
  const char* display_name() const override { return "PinSketch"; }

  ReconcileOutcome Reconcile(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, double d_hat,
                             uint64_t seed) const override;

  /// Wire-session engines (docs/WIRE_FORMAT.md); parity with Reconcile()
  /// is pinned by tests/core/wire_session_test.cc.
  std::unique_ptr<ReconcileInitiator> CreateInitiator(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;
  std::unique_ptr<ReconcileResponder> CreateResponder(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;

 private:
  int sig_bits_;
  double gamma_;
};

class DDigestReconciler : public SetReconciler {
 public:
  explicit DDigestReconciler(const SchemeOptions& options);

  const char* name() const override { return "ddigest"; }
  const char* display_name() const override { return "D.Digest"; }

  ReconcileOutcome Reconcile(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, double d_hat,
                             uint64_t seed) const override;

  /// Wire-session engines (docs/WIRE_FORMAT.md); parity with Reconcile()
  /// is pinned by tests/core/wire_session_test.cc.
  std::unique_ptr<ReconcileInitiator> CreateInitiator(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;
  std::unique_ptr<ReconcileResponder> CreateResponder(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;

 private:
  int sig_bits_;
};

class GrapheneReconciler : public SetReconciler {
 public:
  explicit GrapheneReconciler(const SchemeOptions& options);

  const char* name() const override { return "graphene"; }
  const char* display_name() const override { return "Graphene"; }

  ReconcileOutcome Reconcile(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, double d_hat,
                             uint64_t seed) const override;

  /// Wire-session engines (docs/WIRE_FORMAT.md); parity with Reconcile()
  /// is pinned by tests/core/wire_session_test.cc.
  std::unique_ptr<ReconcileInitiator> CreateInitiator(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;
  std::unique_ptr<ReconcileResponder> CreateResponder(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;

 private:
  int sig_bits_;
  double gamma_;
};

class PinSketchWpReconciler : public SetReconciler {
 public:
  explicit PinSketchWpReconciler(const SchemeOptions& options);

  const char* name() const override { return "pinsketch-wp"; }
  const char* display_name() const override { return "PinSketch/WP"; }
  bool supports_rounds() const override { return true; }

  ReconcileOutcome Reconcile(const std::vector<uint64_t>& a,
                             const std::vector<uint64_t>& b, double d_hat,
                             uint64_t seed) const override;

  /// Wire-session engines (docs/WIRE_FORMAT.md); parity with Reconcile()
  /// is pinned by tests/core/wire_session_test.cc.
  std::unique_ptr<ReconcileInitiator> CreateInitiator(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;
  std::unique_ptr<ReconcileResponder> CreateResponder(
      std::vector<uint64_t> elements, double d_hat,
      uint64_t seed) const override;

 private:
  PbsConfig config_;       // Shares delta/t planning with PBS (Section 8.3).
  int report_sig_bits_ = 0;
};

}  // namespace pbs

#endif  // PBS_BASELINES_BASELINE_RECONCILERS_H_
