// Difference Digest (D.Digest) baseline [15] (Sections 7, 8.1).
//
// Bob sends an IBF of B with 2 d-hat cells (3 hashes when d-hat > 200, 4
// otherwise, the configuration guideline of [15]); Alice subtracts her own
// IBF and peels. Each cell carries three log|U|-bit fields, which is where
// the "roughly 6 d log|U|" communication overhead comes from.

#ifndef PBS_BASELINES_DDIGEST_H_
#define PBS_BASELINES_DDIGEST_H_

#include <cstdint>
#include <vector>

#include "pbs/baselines/pinsketch.h"  // BaselineOutcome.

namespace pbs {

/// Reconciles a and b via one IBF exchange sized for `d_est` differences.
BaselineOutcome DDigestReconcile(const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b, int d_est,
                                 int sig_bits, uint64_t seed);

}  // namespace pbs

#endif  // PBS_BASELINES_DDIGEST_H_
