// Recursive-partition reconciliation (Minsky & Trachtenberg [27]),
// the partition-based O(d) ECC scheme the paper contrasts with PBS in
// Section 7.
//
// The universe is recursively bisected by hash-prefix. Each active
// partition pair is reconciled by a fixed-capacity "BASIC-RECON" exact
// reconciler (here: a power-sum BCH sketch of capacity t-bar, the paper's
// stated analogue of PBS-for-small-d); when decoding fails the partition
// splits two ways and both halves retry in the next round. Starting from a
// single partition, a difference of d elements needs ~log2(d / t-bar)
// split generations, so the scheme completes in O(log d) rounds of
// message exchange -- "generally much larger than that in PBS", which is
// the claim bench_related_rounds quantifies.

#ifndef PBS_BASELINES_RECURSIVE_CPI_H_
#define PBS_BASELINES_RECURSIVE_CPI_H_

#include <cstdint>
#include <vector>

#include "pbs/baselines/pinsketch.h"  // BaselineOutcome.

namespace pbs {

/// Reconciles a and b by recursive bisection with per-partition capacity
/// `t_bar` (the paper's small constant; 5 matches PBS's delta).
/// `max_rounds` caps the recursion depth in rounds.
BaselineOutcome RecursiveCpiReconcile(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b,
                                      int t_bar, int sig_bits, int max_rounds,
                                      uint64_t seed);

}  // namespace pbs

#endif  // PBS_BASELINES_RECURSIVE_CPI_H_
