#include "pbs/ibf/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "pbs/hash/xxhash64.h"

namespace pbs {

BloomFilter::BloomFilter(size_t bits, int num_hashes, uint64_t salt)
    : bits_(std::max<size_t>(bits, 8), false),
      num_hashes_(std::max(num_hashes, 1)),
      salt_(salt) {}

BloomFilter BloomFilter::ForCapacity(size_t n, double fpr, uint64_t salt) {
  n = std::max<size_t>(n, 1);
  fpr = std::clamp(fpr, 1e-9, 0.5);
  const double bits_per_key = -std::log(fpr) / (std::log(2.0) * std::log(2.0));
  const size_t bits = static_cast<size_t>(std::ceil(bits_per_key * n));
  const int k = std::max(1, static_cast<int>(std::round(
                                std::log(2.0) * bits_per_key)));
  return BloomFilter(bits, k, salt);
}

size_t BloomFilter::Index(uint64_t key, int probe) const {
  // Double hashing: h1 + i*h2, both full-width xxHash64 digests.
  const uint64_t h1 = XxHash64(key, salt_);
  const uint64_t h2 = XxHash64(key, salt_ ^ 0xD6E8FEB86659FD93ull) | 1;
  return static_cast<size_t>((h1 + static_cast<uint64_t>(probe) * h2) %
                             bits_.size());
}

void BloomFilter::Insert(uint64_t key) {
  for (int i = 0; i < num_hashes_; ++i) bits_[Index(key, i)] = true;
}

bool BloomFilter::Contains(uint64_t key) const {
  for (int i = 0; i < num_hashes_; ++i) {
    if (!bits_[Index(key, i)]) return false;
  }
  return true;
}

void BloomFilter::Serialize(BitWriter* writer) const {
  for (bool bit : bits_) writer->WriteBit(bit);
}

BloomFilter BloomFilter::Deserialize(BitReader* reader, size_t bits,
                                     int num_hashes, uint64_t salt) {
  BloomFilter filter(bits, num_hashes, salt);
  for (size_t i = 0; i < filter.bits_.size(); ++i) {
    filter.bits_[i] = reader->ReadBit();
  }
  return filter;
}

}  // namespace pbs
