#include "pbs/ibf/cuckoo_filter.h"

#include <algorithm>
#include <cassert>

#include "pbs/common/rng.h"
#include "pbs/hash/xxhash64.h"

namespace pbs {

namespace {
size_t NextPowerOfTwo(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

CuckooFilter::CuckooFilter(size_t capacity, int fingerprint_bits,
                           uint64_t salt)
    : fp_bits_(std::clamp(fingerprint_bits, 4, 16)), salt_(salt) {
  // 4 slots per bucket at ~95% load; power-of-two buckets so the
  // partial-key XOR trick stays in range.
  num_buckets_ = NextPowerOfTwo(
      std::max<size_t>(1, (capacity + kSlots - 1) / kSlots * 100 / 95));
  buckets_.assign(num_buckets_ * kSlots, 0);
}

uint16_t CuckooFilter::FingerprintOf(uint64_t key) const {
  const uint64_t h = XxHash64(key, salt_ ^ 0xF16E52ull);
  const uint16_t mask = static_cast<uint16_t>((1u << fp_bits_) - 1);
  uint16_t fp = static_cast<uint16_t>(h & mask);
  return fp == 0 ? 1 : fp;  // 0 marks an empty slot.
}

size_t CuckooFilter::IndexOf(uint64_t key) const {
  return XxHash64(key, salt_ ^ 0x1D8ull) & (num_buckets_ - 1);
}

size_t CuckooFilter::AltIndex(size_t index, uint16_t fingerprint) const {
  return (index ^ XxHash64(fingerprint, salt_ ^ 0xA17ull)) &
         (num_buckets_ - 1);
}

bool CuckooFilter::InsertIntoBucket(size_t bucket, uint16_t fingerprint) {
  for (int s = 0; s < kSlots; ++s) {
    uint16_t& slot = buckets_[bucket * kSlots + s];
    if (slot == 0) {
      slot = fingerprint;
      return true;
    }
  }
  return false;
}

bool CuckooFilter::Insert(uint64_t key) {
  uint16_t fp = FingerprintOf(key);
  size_t i1 = IndexOf(key);
  size_t i2 = AltIndex(i1, fp);
  if (InsertIntoBucket(i1, fp) || InsertIntoBucket(i2, fp)) return true;

  // Evict: kick a random resident fingerprint to its alternate bucket.
  Xoshiro256 rng(salt_ ^ key);
  size_t bucket = rng.Next() & 1 ? i1 : i2;
  for (int attempt = 0; attempt < kMaxEvictions; ++attempt) {
    const int slot = static_cast<int>(rng.NextBounded(kSlots));
    std::swap(fp, buckets_[bucket * kSlots + slot]);
    bucket = AltIndex(bucket, fp);
    if (InsertIntoBucket(bucket, fp)) return true;
  }
  return false;
}

bool CuckooFilter::Contains(uint64_t key) const {
  const uint16_t fp = FingerprintOf(key);
  const size_t i1 = IndexOf(key);
  const size_t i2 = AltIndex(i1, fp);
  for (int s = 0; s < kSlots; ++s) {
    if (buckets_[i1 * kSlots + s] == fp) return true;
    if (buckets_[i2 * kSlots + s] == fp) return true;
  }
  return false;
}

bool CuckooFilter::Delete(uint64_t key) {
  const uint16_t fp = FingerprintOf(key);
  for (size_t bucket : {IndexOf(key), AltIndex(IndexOf(key), fp)}) {
    for (int s = 0; s < kSlots; ++s) {
      uint16_t& slot = buckets_[bucket * kSlots + s];
      if (slot == fp) {
        slot = 0;
        return true;
      }
    }
  }
  return false;
}

}  // namespace pbs
