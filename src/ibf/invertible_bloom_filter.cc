#include "pbs/ibf/invertible_bloom_filter.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "pbs/hash/xxhash64.h"

namespace pbs {

InvertibleBloomFilter::InvertibleBloomFilter(size_t cells, int num_hashes,
                                             uint64_t salt, int sig_bits)
    : num_hashes_(std::max(num_hashes, 1)), salt_(salt), sig_bits_(sig_bits) {
  assert(sig_bits >= 8 && sig_bits <= 64);
  subtable_size_ = std::max<size_t>((cells + num_hashes_ - 1) / num_hashes_, 1);
  cells_.assign(subtable_size_ * num_hashes_, IbfCell{});
}

size_t InvertibleBloomFilter::CellIndex(uint64_t key, int subtable) const {
  const uint64_t h = XxHash64(key, salt_ + static_cast<uint64_t>(subtable));
  return static_cast<size_t>(subtable) * subtable_size_ +
         static_cast<size_t>(h % subtable_size_);
}

uint64_t InvertibleBloomFilter::CheckHash(uint64_t key) const {
  const uint64_t h = XxHash64(key, salt_ ^ 0xA5A5A5A55A5A5A5Aull);
  return sig_bits_ >= 64 ? h : (h & ((uint64_t{1} << sig_bits_) - 1));
}

void InvertibleBloomFilter::Apply(uint64_t key, int64_t delta) {
  ApplyTo(cells_.data(), key, delta);
}

void InvertibleBloomFilter::ApplyTo(IbfCell* cells, uint64_t key,
                                    int64_t delta) const {
  const uint64_t check = CheckHash(key);
  for (int s = 0; s < num_hashes_; ++s) {
    IbfCell& cell = cells[CellIndex(key, s)];
    cell.count += delta;
    cell.key_sum ^= key;
    cell.hash_sum ^= check;
  }
}

void InvertibleBloomFilter::Insert(uint64_t key) { Apply(key, +1); }
void InvertibleBloomFilter::Erase(uint64_t key) { Apply(key, -1); }

void InvertibleBloomFilter::Subtract(const InvertibleBloomFilter& other) {
  assert(cells_.size() == other.cells_.size());
  assert(num_hashes_ == other.num_hashes_ && salt_ == other.salt_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].count -= other.cells_[i].count;
    cells_[i].key_sum ^= other.cells_[i].key_sum;
    cells_[i].hash_sum ^= other.cells_[i].hash_sum;
  }
}

bool InvertibleBloomFilter::IsPure(const IbfCell& cell) const {
  if (cell.count != 1 && cell.count != -1) return false;
  if (cell.key_sum == 0) return false;
  return CheckHash(cell.key_sum) == cell.hash_sum;
}

InvertibleBloomFilter::DecodeResult InvertibleBloomFilter::Decode() const {
  Workspace ws;
  DecodeResult result;
  DecodeInto(ws, &result);
  return result;
}

void InvertibleBloomFilter::DecodeInto(Workspace& ws,
                                       DecodeResult* out) const {
  out->positive.clear();
  out->negative.clear();
  out->complete = false;

  const size_t n = cells_.size();
  auto work = ws.Take<IbfCell>(n);
  std::memcpy(work.data(), cells_.data(), n * sizeof(IbfCell));

  // Pending pure-cell stack. Peeling order is irrelevant (any pure cell
  // may be consumed next), so LIFO replaces the seed code's deque. A cell
  // can be re-pushed each time a neighbor's peel re-purifies it, so the
  // stack can transiently outgrow n; Resize doubles it on demand.
  auto stack = ws.Take<size_t>(n + 1);
  size_t stack_size = 0;
  const auto push = [&stack, &stack_size](size_t idx) {
    if (stack_size == stack.size()) stack.Resize(2 * stack.size());
    stack[stack_size++] = idx;
  };

  for (size_t i = 0; i < n; ++i) {
    if (IsPure(work[i])) push(i);
  }
  while (stack_size > 0) {
    const size_t idx = stack[--stack_size];
    const IbfCell cell = work[idx];
    if (!IsPure(cell)) continue;  // Already consumed via another cell.
    const uint64_t key = cell.key_sum;
    const int64_t side = cell.count;
    if (side > 0) {
      out->positive.push_back(key);
    } else {
      out->negative.push_back(key);
    }
    ApplyTo(work.data(), key, -side);
    for (int s = 0; s < num_hashes_; ++s) {
      const size_t neighbor = CellIndex(key, s);
      if (IsPure(work[neighbor])) push(neighbor);
    }
  }

  out->complete = true;
  for (size_t i = 0; i < n; ++i) {
    const IbfCell& cell = work[i];
    if (cell.count != 0 || cell.key_sum != 0 || cell.hash_sum != 0) {
      out->complete = false;
      break;
    }
  }
}

void InvertibleBloomFilter::Serialize(BitWriter* writer) const {
  for (const IbfCell& cell : cells_) {
    writer->WriteBits(static_cast<uint64_t>(cell.count), sig_bits_);
    writer->WriteBits(cell.key_sum, sig_bits_);
    writer->WriteBits(cell.hash_sum, sig_bits_);
  }
}

InvertibleBloomFilter InvertibleBloomFilter::Deserialize(
    BitReader* reader, size_t cells, int num_hashes, uint64_t salt,
    int sig_bits) {
  InvertibleBloomFilter ibf(cells, num_hashes, salt, sig_bits);
  for (IbfCell& cell : ibf.cells_) {
    uint64_t raw = reader->ReadBits(sig_bits);
    // Sign-extend the wire count.
    const uint64_t sign_bit = uint64_t{1} << (sig_bits - 1);
    int64_t count;
    if (raw & sign_bit) {
      count = static_cast<int64_t>(raw | ~((uint64_t{1} << sig_bits) - 1));
    } else {
      count = static_cast<int64_t>(raw);
    }
    cell.count = count;
    cell.key_sum = reader->ReadBits(sig_bits);
    cell.hash_sum = reader->ReadBits(sig_bits);
  }
  return ibf;
}

}  // namespace pbs
