#include "pbs/ibf/invertible_bloom_filter.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "pbs/common/cpu_features.h"
#include "pbs/hash/xxhash64.h"

// Lane-wide IBF cell arithmetic, dispatched like gf/gf2x.cc: the AVX2
// bodies carry per-function target attributes and are chosen once at
// runtime via cpu::HasAvx2(); SubtractScalar and the byte loops stay live
// as the portable / PBS_DISABLE_SIMD fallback and as the differential
// references. Cells are {count, key_sum, hash_sum} -- three u64 in AoS
// order -- so four cells span exactly three 32-byte vectors, with the
// count lanes (u64 index == 0 mod 3) needing subtraction and the rest XOR.
#if !defined(PBS_DISABLE_SIMD) && defined(__x86_64__)
#include <immintrin.h>
#define PBS_HAVE_AVX2_IBF_KERNEL 1
#endif

namespace pbs {

namespace {

#if defined(PBS_HAVE_AVX2_IBF_KERNEL)

// a - b where the count lanes subtract and the key/hash lanes XOR, four
// cells (12 u64) per iteration. The count-lane pattern repeats every three
// vectors: u64 lanes {0,3} / {2} / {1}, i.e. epi32 blend immediates
// 0b11000011 / 0b00110000 / 0b00001100 (epi32 lanes 2l, 2l+1 make up u64
// lane l).
__attribute__((target("avx2"))) void SubtractCellsAvx2(IbfCell* dst,
                                                       const IbfCell* src,
                                                       size_t n_cells) {
  uint64_t* d = reinterpret_cast<uint64_t*>(dst);
  const uint64_t* s = reinterpret_cast<const uint64_t*>(src);
  const size_t words = n_cells * 3;
  size_t i = 0;
  for (; i + 12 <= words; i += 12) {
    const __m256i a0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i));
    const __m256i a1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i + 4));
    const __m256i a2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(d + i + 8));
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 4));
    const __m256i b2 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(s + i + 8));
    const __m256i r0 = _mm256_blend_epi32(_mm256_xor_si256(a0, b0),
                                          _mm256_sub_epi64(a0, b0), 0xC3);
    const __m256i r1 = _mm256_blend_epi32(_mm256_xor_si256(a1, b1),
                                          _mm256_sub_epi64(a1, b1), 0x30);
    const __m256i r2 = _mm256_blend_epi32(_mm256_xor_si256(a2, b2),
                                          _mm256_sub_epi64(a2, b2), 0x0C);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i), r0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + 4), r1);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(d + i + 8), r2);
  }
  for (; i < words; i += 3) {
    d[i] = static_cast<uint64_t>(static_cast<int64_t>(d[i]) -
                                 static_cast<int64_t>(s[i]));
    d[i + 1] ^= s[i + 1];
    d[i + 2] ^= s[i + 2];
  }
}

__attribute__((target("avx2"))) bool AllZeroAvx2(const uint8_t* p,
                                                 size_t bytes) {
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 32 <= bytes; i += 32) {
    acc = _mm256_or_si256(
        acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i)));
  }
  if (!_mm256_testz_si256(acc, acc)) return false;
  for (; i < bytes; ++i) {
    if (p[i] != 0) return false;
  }
  return true;
}

#endif  // PBS_HAVE_AVX2_IBF_KERNEL

// True iff every cell is fully zeroed (peeling emptied the IBF).
bool CellsAllZero(const IbfCell* cells, size_t n) {
#if defined(PBS_HAVE_AVX2_IBF_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    return AllZeroAvx2(reinterpret_cast<const uint8_t*>(cells),
                       n * sizeof(IbfCell));
  }
#endif
  for (size_t i = 0; i < n; ++i) {
    if (cells[i].count != 0 || cells[i].key_sum != 0 ||
        cells[i].hash_sum != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

InvertibleBloomFilter::InvertibleBloomFilter(size_t cells, int num_hashes,
                                             uint64_t salt, int sig_bits)
    : num_hashes_(std::max(num_hashes, 1)), salt_(salt), sig_bits_(sig_bits) {
  assert(sig_bits >= 8 && sig_bits <= 64);
  subtable_size_ = std::max<size_t>((cells + num_hashes_ - 1) / num_hashes_, 1);
  cells_.assign(subtable_size_ * num_hashes_, IbfCell{});
}

size_t InvertibleBloomFilter::CellIndex(uint64_t key, int subtable) const {
  const uint64_t h = XxHash64(key, salt_ + static_cast<uint64_t>(subtable));
  return static_cast<size_t>(subtable) * subtable_size_ +
         static_cast<size_t>(h % subtable_size_);
}

uint64_t InvertibleBloomFilter::CheckHash(uint64_t key) const {
  const uint64_t h = XxHash64(key, salt_ ^ 0xA5A5A5A55A5A5A5Aull);
  return sig_bits_ >= 64 ? h : (h & ((uint64_t{1} << sig_bits_) - 1));
}

void InvertibleBloomFilter::Apply(uint64_t key, int64_t delta) {
  ApplyTo(cells_.data(), key, delta);
}

void InvertibleBloomFilter::ApplyTo(IbfCell* cells, uint64_t key,
                                    int64_t delta) const {
  const uint64_t check = CheckHash(key);
  // One hash per subtable, all of the same key under consecutive salts:
  // the per-lane-seed batch kernel computes a block of them at once
  // (bit-identical to scalar CellIndex).
  uint64_t xs[kXxHashBatch];
  uint64_t seeds[kXxHashBatch];
  for (int s0 = 0; s0 < num_hashes_;
       s0 += static_cast<int>(kXxHashBatch)) {
    const size_t blk = std::min(kXxHashBatch,
                                static_cast<size_t>(num_hashes_ - s0));
    for (size_t i = 0; i < blk; ++i) {
      xs[i] = key;
      seeds[i] = salt_ + static_cast<uint64_t>(s0) + i;
    }
    XxHash64Batch(xs, seeds, blk, xs);
    for (size_t i = 0; i < blk; ++i) {
      const size_t idx =
          (static_cast<size_t>(s0) + i) * subtable_size_ +
          static_cast<size_t>(xs[i] % subtable_size_);
      IbfCell& cell = cells[idx];
      cell.count += delta;
      cell.key_sum ^= key;
      cell.hash_sum ^= check;
    }
  }
}

void InvertibleBloomFilter::Insert(uint64_t key) { Apply(key, +1); }
void InvertibleBloomFilter::Erase(uint64_t key) { Apply(key, -1); }

void InvertibleBloomFilter::SubtractScalar(const InvertibleBloomFilter& other) {
  assert(cells_.size() == other.cells_.size());
  assert(num_hashes_ == other.num_hashes_ && salt_ == other.salt_);
  for (size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].count -= other.cells_[i].count;
    cells_[i].key_sum ^= other.cells_[i].key_sum;
    cells_[i].hash_sum ^= other.cells_[i].hash_sum;
  }
}

void InvertibleBloomFilter::Subtract(const InvertibleBloomFilter& other) {
#if defined(PBS_HAVE_AVX2_IBF_KERNEL)
  static const bool use_hw = cpu::HasAvx2();
  if (use_hw) {
    assert(cells_.size() == other.cells_.size());
    assert(num_hashes_ == other.num_hashes_ && salt_ == other.salt_);
    SubtractCellsAvx2(cells_.data(), other.cells_.data(), cells_.size());
    return;
  }
#endif
  SubtractScalar(other);
}

bool InvertibleBloomFilter::IsPure(const IbfCell& cell) const {
  if (cell.count != 1 && cell.count != -1) return false;
  if (cell.key_sum == 0) return false;
  return CheckHash(cell.key_sum) == cell.hash_sum;
}

InvertibleBloomFilter::DecodeResult InvertibleBloomFilter::Decode() const {
  Workspace ws;
  DecodeResult result;
  DecodeInto(ws, &result);
  return result;
}

void InvertibleBloomFilter::DecodeInto(Workspace& ws,
                                       DecodeResult* out) const {
  out->positive.clear();
  out->negative.clear();
  out->complete = false;

  const size_t n = cells_.size();
  auto work = ws.Take<IbfCell>(n);
  std::memcpy(work.data(), cells_.data(), n * sizeof(IbfCell));

  // Pending pure-cell stack. Peeling order is irrelevant (any pure cell
  // may be consumed next), so LIFO replaces the seed code's deque. A cell
  // can be re-pushed each time a neighbor's peel re-purifies it, so the
  // stack can transiently outgrow n; Resize doubles it on demand.
  auto stack = ws.Take<size_t>(n + 1);
  size_t stack_size = 0;
  const auto push = [&stack, &stack_size](size_t idx) {
    if (stack_size == stack.size()) stack.Resize(2 * stack.size());
    stack[stack_size++] = idx;
  };

  for (size_t i = 0; i < n; ++i) {
    if (IsPure(work[i])) push(i);
  }
  uint64_t xs[kXxHashBatch];
  uint64_t seeds[kXxHashBatch];
  while (stack_size > 0) {
    const size_t idx = stack[--stack_size];
    const IbfCell cell = work[idx];
    if (!IsPure(cell)) continue;  // Already consumed via another cell.
    const uint64_t key = cell.key_sum;
    const int64_t side = cell.count;
    if (side > 0) {
      out->positive.push_back(key);
    } else {
      out->negative.push_back(key);
    }
    // Peel the key out of its k cells. The k cells are distinct (one per
    // subtable), so updating and purity-testing each one immediately is
    // equivalent to the update-all-then-test order -- and the per-subtable
    // hashes come from one batched call instead of 2k scalar ones.
    const uint64_t check = CheckHash(key);
    for (int s0 = 0; s0 < num_hashes_;
         s0 += static_cast<int>(kXxHashBatch)) {
      const size_t blk = std::min(kXxHashBatch,
                                  static_cast<size_t>(num_hashes_ - s0));
      for (size_t i = 0; i < blk; ++i) {
        xs[i] = key;
        seeds[i] = salt_ + static_cast<uint64_t>(s0) + i;
      }
      XxHash64Batch(xs, seeds, blk, xs);
      for (size_t i = 0; i < blk; ++i) {
        const size_t neighbor =
            (static_cast<size_t>(s0) + i) * subtable_size_ +
            static_cast<size_t>(xs[i] % subtable_size_);
        IbfCell& c = work[neighbor];
        c.count -= side;
        c.key_sum ^= key;
        c.hash_sum ^= check;
        if (IsPure(c)) push(neighbor);
      }
    }
  }

  out->complete = CellsAllZero(work.data(), n);
}

void InvertibleBloomFilter::Serialize(BitWriter* writer) const {
  for (const IbfCell& cell : cells_) {
    writer->WriteBits(static_cast<uint64_t>(cell.count), sig_bits_);
    writer->WriteBits(cell.key_sum, sig_bits_);
    writer->WriteBits(cell.hash_sum, sig_bits_);
  }
}

InvertibleBloomFilter InvertibleBloomFilter::Deserialize(
    BitReader* reader, size_t cells, int num_hashes, uint64_t salt,
    int sig_bits) {
  InvertibleBloomFilter ibf(cells, num_hashes, salt, sig_bits);
  for (IbfCell& cell : ibf.cells_) {
    uint64_t raw = reader->ReadBits(sig_bits);
    // Sign-extend the wire count.
    const uint64_t sign_bit = uint64_t{1} << (sig_bits - 1);
    int64_t count;
    if (raw & sign_bit) {
      count = static_cast<int64_t>(raw | ~((uint64_t{1} << sig_bits) - 1));
    } else {
      count = static_cast<int64_t>(raw);
    }
    cell.count = count;
    cell.key_sum = reader->ReadBits(sig_bits);
    cell.hash_sum = reader->ReadBits(sig_bits);
  }
  return ibf;
}

}  // namespace pbs
