#include "pbs/net/reconcile_server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "pbs/core/messages.h"
#include "pbs/core/transport.h"

namespace pbs {

namespace {

using Clock = std::chrono::steady_clock;

bool SetNonBlockingFd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

class ReconcileServer::Impl {
 public:
  Impl(const ServerOptions& options, std::vector<uint64_t> elements,
       std::unique_ptr<TcpListener> listener, int wake_read, int wake_write)
      : options_(options),
        // One copy for the whole server: every connection's engine shares
        // this set instead of holding its own (memory would otherwise
        // scale O(active_sessions * set_size)).
        elements_(std::make_shared<const std::vector<uint64_t>>(
            std::move(elements))),
        listener_(std::move(listener)),
        wake_read_(wake_read),
        wake_write_(wake_write) {}

  ~Impl() {
    for (auto& [fd, conn] : connections_) {
      (void)conn;
      ::close(fd);
    }
    ::close(wake_read_);
    ::close(wake_write_);
  }

  uint16_t port() const { return listener_->port(); }

  void set_session_logger(SessionLogger logger) {
    logger_ = std::move(logger);
  }

  void Stop() {
    stop_.store(true, std::memory_order_release);
    const uint8_t byte = 1;
    // Best-effort: a full pipe already guarantees a wakeup.
    (void)!::write(wake_write_, &byte, 1);
  }

  uint64_t Run() {
    const uint64_t before = finished_;
    while (RunOnce(/*timeout_ms=*/250)) {
    }
    return finished_ - before;
  }

  bool RunOnce(int timeout_ms) {
    if (ShouldStop()) return false;

    pollfds_.clear();
    // Slot 0: the wake pipe; slot 1: the listener (only while below the
    // session cap — beyond it we still accept, to say why we refuse).
    pollfds_.push_back({wake_read_, POLLIN, 0});
    pollfds_.push_back({listener_->fd(), POLLIN, 0});
    poll_fd_of_slot_.clear();
    poll_fd_of_slot_.push_back(-1);
    poll_fd_of_slot_.push_back(-1);
    for (auto& [fd, conn] : connections_) {
      short events = POLLIN;  // Always: data, EOF, and resets all surface here.
      if (conn.engine->outbound_size() > 0) events |= POLLOUT;
      pollfds_.push_back({fd, events, 0});
      poll_fd_of_slot_.push_back(fd);
    }

    const int wait_ms = ClampToIdleDeadline(timeout_ms);
    const int ready = ::poll(pollfds_.data(),
                             static_cast<nfds_t>(pollfds_.size()), wait_ms);
    if (ready < 0 && errno != EINTR) {
      // A persistent poll failure (e.g. ENOMEM) must not turn Run() into
      // a hot spin: back off for the interval poll would have waited,
      // and still fall through to the idle sweep below.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, wait_ms)));
    }

    if (ready > 0) {
      if ((pollfds_[0].revents & POLLIN) != 0) DrainWakePipe();
      if ((pollfds_[1].revents & POLLIN) != 0) AcceptPending();
      for (size_t slot = 2; slot < pollfds_.size(); ++slot) {
        const short revents = pollfds_[slot].revents;
        if (revents == 0) continue;
        const int fd = poll_fd_of_slot_[slot];
        auto it = connections_.find(fd);
        if (it == connections_.end()) continue;
        ServiceConnection(fd, it->second, revents);
      }
    }
    SweepIdle();
    return !ShouldStop();
  }

  ServerStats stats() const {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    return stats_;  // stats_.active is maintained under the same mutex.
  }

 private:
  struct Connection {
    std::unique_ptr<SessionEngine> engine;
    Clock::time_point last_active;
  };

  bool ShouldStop() const {
    if (stop_.load(std::memory_order_acquire)) return true;
    return options_.serve_limit > 0 && finished_ >= options_.serve_limit;
  }

  void DrainWakePipe() {
    uint8_t sink[64];
    while (::read(wake_read_, sink, sizeof(sink)) > 0) {
    }
  }

  // Nearest idle deadline bounds the poll timeout so a silent peer is
  // dropped on time even when no fd ever becomes ready.
  int ClampToIdleDeadline(int timeout_ms) const {
    if (connections_.empty() || options_.idle_timeout_ms <= 0) {
      return timeout_ms;
    }
    const Clock::time_point now = Clock::now();
    Clock::time_point oldest = now;
    for (const auto& [fd, conn] : connections_) {
      (void)fd;
      if (conn.last_active < oldest) oldest = conn.last_active;
    }
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - oldest)
            .count();
    const int remaining =
        static_cast<int>(options_.idle_timeout_ms - elapsed);
    return std::max(0, std::min(timeout_ms, remaining));
  }

  void AcceptPending() {
    while (true) {
      const int fd = listener_->AcceptRaw();
      if (fd < 0) return;
      if (static_cast<int>(connections_.size()) >= options_.max_sessions) {
        RejectAtCapacity(fd);
        continue;
      }
      if (!SetNonBlockingFd(fd)) {
        ::close(fd);
        continue;
      }
      Connection conn;
      SessionConfig local_config;
      local_config.options.pbs.decode_threads = options_.decode_threads;
      conn.engine = std::make_unique<SessionEngine>(
          SessionEngine::Responder(local_config, elements_));
      conn.last_active = Clock::now();
      connections_.emplace(fd, std::move(conn));
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.accepted += 1;
        stats_.active += 1;
      }
    }
  }

  // A peer beyond the cap learns why instead of watching the connection
  // drop: one best-effort ERROR frame, then close. The write is a single
  // non-blocking attempt — a client too slow to take ~60 bytes gets the
  // close alone.
  void RejectAtCapacity(int fd) {
    static const char kMessage[] = "server at session capacity";
    std::vector<uint8_t> frame;
    wire::AppendFrame(wire::FrameType::kError, 0, 0,
                      reinterpret_cast<const uint8_t*>(kMessage),
                      sizeof(kMessage) - 1, &frame);
    SetNonBlockingFd(fd);
    (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(fd);
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.rejected_capacity += 1;
  }

  void ServiceConnection(int fd, Connection& conn, short revents) {
    bool peer_gone = false;
    if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      peer_gone = !ReadReady(fd, conn);
    }
    if (!peer_gone) FlushWrites(fd, conn);
    MaybeFinalize(fd, conn, peer_gone);
  }

  // Reads until EAGAIN, feeding the engine as bytes arrive. Returns false
  // once the peer is gone (EOF or hard error).
  bool ReadReady(int fd, Connection& conn) {
    while (true) {
      const ssize_t n = ::recv(fd, read_buffer_, sizeof(read_buffer_),
                               MSG_DONTWAIT);
      if (n > 0) {
        conn.engine->Feed(read_buffer_, static_cast<size_t>(n));
        conn.last_active = Clock::now();
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.bytes_in += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      }
      // EOF or hard error: let the engine turn it into a diagnostic.
      conn.engine->FeedEof();
      return false;
    }
  }

  // Writes the engine's pending outbound bytes until EAGAIN or empty.
  // Anything left keeps the fd registered for POLLOUT (backpressure).
  void FlushWrites(int fd, Connection& conn) {
    while (conn.engine->outbound_size() > 0) {
      const ssize_t n = ::send(fd, conn.engine->outbound_data(),
                               conn.engine->outbound_size(), MSG_NOSIGNAL);
      if (n > 0) {
        conn.engine->ConsumeOutbound(static_cast<size_t>(n));
        conn.last_active = Clock::now();
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.bytes_out += static_cast<uint64_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn.engine->FailTransport();
      return;
    }
  }

  // Closes and accounts a session once it settled and its last bytes
  // (DONE ack, ERROR) are on the wire — or immediately when the peer is
  // gone and nothing can be delivered anymore.
  void MaybeFinalize(int fd, Connection& conn, bool peer_gone) {
    const SessionStatus status = conn.engine->Status();
    const bool settled =
        status == SessionStatus::kDone || status == SessionStatus::kError;
    if (!settled && !peer_gone) return;
    if (settled && !peer_gone && conn.engine->outbound_size() > 0) return;
    FinishSession(fd, /*timed_out=*/false);
  }

  void SweepIdle() {
    if (options_.idle_timeout_ms <= 0) return;
    const Clock::time_point cutoff =
        Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
    // Collect first: FinishSession erases from connections_.
    idle_fds_.clear();
    for (const auto& [fd, conn] : connections_) {
      if (conn.last_active < cutoff) idle_fds_.push_back(fd);
    }
    for (int fd : idle_fds_) FinishSession(fd, /*timed_out=*/true);
  }

  void FinishSession(int fd, bool timed_out) {
    auto it = connections_.find(fd);
    if (it == connections_.end()) return;
    SessionResult result = it->second.engine->TakeResult();
    if (timed_out && result.error.empty()) {
      result.ok = false;
      result.error = "idle timeout";
    }
    ::close(fd);
    connections_.erase(it);
    finished_ += 1;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.active -= 1;
      if (timed_out) {
        stats_.timed_out += 1;
      } else if (result.ok) {
        stats_.completed += 1;
        stats_.completed_by_scheme[result.scheme] += 1;
      } else {
        stats_.failed += 1;
      }
    }
    if (logger_) logger_(result);
  }

  const ServerOptions options_;
  const SessionEngine::SharedElements elements_;
  std::unique_ptr<TcpListener> listener_;
  const int wake_read_;
  const int wake_write_;

  std::unordered_map<int, Connection> connections_;
  std::vector<pollfd> pollfds_;
  std::vector<int> poll_fd_of_slot_;
  std::vector<int> idle_fds_;
  uint8_t read_buffer_[64 * 1024];
  uint64_t finished_ = 0;  // Loop-thread only; stats_ has the split.

  std::atomic<bool> stop_{false};
  mutable std::mutex stats_mutex_;
  ServerStats stats_;
  SessionLogger logger_;
};

// ----------------------------------------------------------- public shim --

std::unique_ptr<ReconcileServer> ReconcileServer::Create(
    const ServerOptions& options, std::vector<uint64_t> elements,
    std::string* error) {
  auto listener = TcpListener::Listen(options.port, error);
  if (!listener) return nullptr;
  if (!listener->SetNonBlocking(true)) {
    if (error) *error = "cannot make listener non-blocking";
    return nullptr;
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return nullptr;
  }
  SetNonBlockingFd(pipe_fds[0]);
  SetNonBlockingFd(pipe_fds[1]);
  auto impl = std::make_unique<Impl>(options, std::move(elements),
                                     std::move(listener), pipe_fds[0],
                                     pipe_fds[1]);
  return std::unique_ptr<ReconcileServer>(
      new ReconcileServer(std::move(impl)));
}

ReconcileServer::ReconcileServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ReconcileServer::~ReconcileServer() = default;

uint16_t ReconcileServer::port() const { return impl_->port(); }
uint64_t ReconcileServer::Run() { return impl_->Run(); }
bool ReconcileServer::RunOnce(int timeout_ms) {
  return impl_->RunOnce(timeout_ms);
}
void ReconcileServer::Stop() { impl_->Stop(); }
ServerStats ReconcileServer::stats() const { return impl_->stats(); }
void ReconcileServer::set_session_logger(SessionLogger logger) {
  impl_->set_session_logger(std::move(logger));
}

}  // namespace pbs
