#include "pbs/net/reconcile_server.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include "pbs/core/messages.h"
#include "pbs/core/transport.h"
#include "pbs/net/shard.h"

namespace pbs {

namespace {

using Clock = std::chrono::steady_clock;

// Acceptor event-loop tags.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

bool SetNonBlockingFd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

int ResolveShardCount(int requested) {
  if (requested > 0) return std::min(requested, 64);
  const unsigned hw = std::thread::hardware_concurrency();
  return static_cast<int>(std::max(1u, std::min(hw, 64u)));
}

}  // namespace

AcceptErrorAction ClassifyAcceptError(int error) {
  switch (error) {
    // Per-connection failures: the aborted/broken connection is consumed
    // by the failed accept itself, so the very next accept can succeed.
    // Linux also surfaces errors of the *accepted* socket here (the
    // network-down family), which likewise say nothing about the
    // listener's health.
    case ECONNABORTED:
    case EINTR:
    case EPROTO:
    case EPERM:
    case ENETDOWN:
    case ENETUNREACH:
    case EHOSTDOWN:
    case EHOSTUNREACH:
    case EOPNOTSUPP:
#ifdef ENONET
    case ENONET:
#endif
      return AcceptErrorAction::kRetry;
    // EMFILE/ENFILE/ENOBUFS/ENOMEM, and anything unrecognized: retrying
    // immediately spins hot on a readiness the kernel cannot satisfy.
    default:
      return AcceptErrorAction::kBackoff;
  }
}

class ReconcileServer::Impl {
 public:
  Impl(const ServerOptions& options, std::vector<uint64_t> elements,
       std::unique_ptr<TcpListener> listener, int wake_read, int wake_write)
      : options_(options),
        // One copy for the whole server: every connection's engine shares
        // this set instead of holding its own (memory would otherwise
        // scale O(active_sessions * set_size)).
        elements_(std::make_shared<const std::vector<uint64_t>>(
            std::move(elements))),
        listener_(std::move(listener)),
        wake_read_(wake_read),
        wake_write_(wake_write),
        loop_(options.event_backend) {
    shared_.serve_limit = options_.serve_limit;
    shared_.acceptor_wake_fd = wake_write_;

    Shard::Options shard_options;
    shard_options.idle_timeout_ms = options_.idle_timeout_ms;
    shard_options.decode_threads = options_.decode_threads;
    shard_options.keyspace_shards = options_.keyspace_shards;
    shard_options.phase_deadline_ms = options_.phase_deadline_ms;
    shard_options.backend = options_.event_backend;
    const int shard_count = ResolveShardCount(options_.shards);
    shards_.reserve(shard_count);
    for (int i = 0; i < shard_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(
          i, shard_options, elements_, options_.mutable_store,
          options_.registry, &shared_));
    }
  }

  ~Impl() {
    Shutdown();
    ::close(wake_read_);
    ::close(wake_write_);
  }

  bool Init(std::string* error) {
    if (!loop_.ok()) {
      if (error) *error = "acceptor event loop initialization failed";
      return false;
    }
    for (const auto& shard : shards_) {
      if (!shard->ok()) {
        if (error) *error = shard->error();
        return false;
      }
    }
    if (!loop_.Add(wake_read_, EventLoop::kRead, kWakeTag) ||
        !loop_.Add(listener_->fd(), EventLoop::kRead, kListenerTag)) {
      if (error) *error = "cannot register acceptor fds";
      return false;
    }
    listener_watched_ = true;
    return true;
  }

  uint16_t port() const { return listener_->port(); }
  int shard_count() const { return static_cast<int>(shards_.size()); }

  void set_session_logger(SessionLogger logger) {
    shared_.logger = std::move(logger);
  }

  void Stop() {
    shared_.stop.store(true, std::memory_order_release);
    const uint8_t byte = 1;
    // Best-effort: a full pipe already guarantees a wakeup.
    (void)!::write(wake_write_, &byte, 1);
  }

  uint64_t Run() {
    const uint64_t before = shared_.finished.load(std::memory_order_acquire);
    EnsureStarted();
    while (AcceptorOnce(/*timeout_ms=*/250)) {
    }
    Shutdown();
    return shared_.finished.load(std::memory_order_acquire) - before;
  }

  bool RunOnce(int timeout_ms) {
    EnsureStarted();
    if (!AcceptorOnce(timeout_ms)) {
      Shutdown();
      return false;
    }
    return true;
  }

  ServerStats stats() const {
    ServerStats out;
    out.accepted = accepted_.load(std::memory_order_relaxed);
    out.rejected_capacity = rejected_.load(std::memory_order_relaxed);
    out.active = shared_.active.load(std::memory_order_relaxed);
    for (const auto& shard : shards_) {
      const ShardStats& s = shard->stats();
      out.completed += s.completed.load(std::memory_order_relaxed);
      out.failed += s.failed.load(std::memory_order_relaxed);
      out.timed_out += s.timed_out.load(std::memory_order_relaxed);
      out.bytes_in += s.bytes_in.load(std::memory_order_relaxed);
      out.bytes_out += s.bytes_out.load(std::memory_order_relaxed);
      out.degraded_shards += s.degraded.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(s.scheme_mutex);
      for (const auto& [scheme, count] : s.completed_by_scheme) {
        out.completed_by_scheme[scheme] += count;
      }
    }
    return out;
  }

 private:
  bool ShouldStop() const {
    return shared_.stop.load(std::memory_order_acquire);
  }

  void EnsureStarted() {
    if (started_) return;
    started_ = true;
    threads_.reserve(shards_.size());
    for (const auto& shard : shards_) {
      threads_.emplace_back([s = shard.get()] { s->Loop(); });
    }
  }

  // Idempotent: stop flag, wake + join every shard thread.
  void Shutdown() {
    shared_.stop.store(true, std::memory_order_release);
    for (const auto& shard : shards_) shard->Wake();
    for (auto& thread : threads_) {
      if (thread.joinable()) thread.join();
    }
    threads_.clear();
  }

  bool AcceptorOnce(int timeout_ms) {
    if (ShouldStop()) return false;
    int wait_ms = std::max(0, timeout_ms);
    const Clock::time_point now = Clock::now();
    if (!listener_watched_) {
      if (now >= backoff_until_) {
        ResumeAccepting();
      } else {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                backoff_until_ - now)
                .count();
        wait_ms = std::min(wait_ms, static_cast<int>(remaining) + 1);
      }
    }
    const int ready = loop_.Wait(wait_ms);
    if (ready < 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(std::max(1, wait_ms)));
    }
    for (int i = 0; i < ready; ++i) {
      const EventLoop::Event& event = loop_.events()[i];
      if (event.tag == kWakeTag) {
        DrainWakePipe();
      } else if (event.tag == kListenerTag) {
        AcceptPending();
      }
    }
    if (!listener_watched_ && Clock::now() >= backoff_until_) {
      ResumeAccepting();
    }
    return !ShouldStop();
  }

  void DrainWakePipe() {
    uint8_t sink[64];
    while (::read(wake_read_, sink, sizeof(sink)) > 0) {
    }
  }

  // Batch accept: drains the listener's accept queue, admitting up to the
  // session cap and distributing admitted fds round-robin across shards.
  void AcceptPending() {
    while (true) {
      const int fd = listener_->AcceptRaw();
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (ClassifyAcceptError(errno) == AcceptErrorAction::kBackoff) {
          // Out of fds (or kernel memory, or something unrecognized):
          // readiness can't be satisfied, so polling the listener again
          // would spin hot. Drop it from the loop for a backoff window;
          // in-flight sessions keep draining and freeing fds meanwhile.
          PauseAccepting();
          return;
        }
        // Transient per-connection failures (ECONNABORTED, EINTR,
        // EPROTO, ...): skip this connection, keep draining the queue.
        continue;
      }
      if (ShouldStop()) {
        ::close(fd);
        continue;
      }
      if (shared_.active.load(std::memory_order_relaxed) >=
          static_cast<uint64_t>(options_.max_sessions)) {
        RejectAtCapacity(fd);
        continue;
      }
      if (!SetNonBlockingFd(fd)) {
        ::close(fd);
        continue;
      }
      shared_.active.fetch_add(1, std::memory_order_relaxed);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      if (!shards_[next_shard_]->Handoff(fd)) {
        // The shard's handoff pipe is full — thousands of adoptions
        // already pending there. Treat as capacity.
        shared_.active.fetch_sub(1, std::memory_order_relaxed);
        accepted_.fetch_sub(1, std::memory_order_relaxed);
        RejectAtCapacity(fd);
      }
      next_shard_ = (next_shard_ + 1) % shards_.size();
    }
  }

  void PauseAccepting() {
    if (!listener_watched_) return;
    loop_.Remove(listener_->fd());
    listener_watched_ = false;
    backoff_until_ =
        Clock::now() +
        std::chrono::milliseconds(std::max(1, options_.accept_backoff_ms));
  }

  void ResumeAccepting() {
    if (listener_watched_) return;
    if (loop_.Add(listener_->fd(), EventLoop::kRead, kListenerTag)) {
      listener_watched_ = true;
    } else {
      // Re-registration failed (should not happen); retry next window
      // rather than busy-loop.
      backoff_until_ = Clock::now() + std::chrono::milliseconds(
                                          std::max(1, options_.accept_backoff_ms));
    }
  }

  // A peer beyond the cap learns why instead of watching the connection
  // drop: one best-effort ERROR frame, then close. The write is a single
  // non-blocking attempt — a client too slow to take ~60 bytes gets the
  // close alone.
  void RejectAtCapacity(int fd) {
    static const char kMessage[] = "server at session capacity";
    std::vector<uint8_t> frame;
    wire::AppendFrame(wire::FrameType::kError, 0, 0,
                      reinterpret_cast<const uint8_t*>(kMessage),
                      sizeof(kMessage) - 1, &frame);
    SetNonBlockingFd(fd);
    (void)!::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
    ::close(fd);
    rejected_.fetch_add(1, std::memory_order_relaxed);
  }

  const ServerOptions options_;
  const SessionEngine::SharedElements elements_;
  std::unique_ptr<TcpListener> listener_;
  const int wake_read_;
  const int wake_write_;

  EventLoop loop_;  // Acceptor's own loop: listener + wake pipe.
  bool listener_watched_ = false;
  Clock::time_point backoff_until_{};

  ShardShared shared_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> threads_;
  bool started_ = false;
  size_t next_shard_ = 0;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
};

// ----------------------------------------------------------- public shim --

std::unique_ptr<ReconcileServer> ReconcileServer::Create(
    const ServerOptions& options, std::vector<uint64_t> elements,
    std::string* error) {
  auto listener = TcpListener::Listen(options.port, error);
  if (!listener) return nullptr;
  if (!listener->SetNonBlocking(true)) {
    if (error) *error = "cannot make listener non-blocking";
    return nullptr;
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error) *error = std::string("pipe: ") + std::strerror(errno);
    return nullptr;
  }
  SetNonBlockingFd(pipe_fds[0]);
  SetNonBlockingFd(pipe_fds[1]);
  auto impl = std::make_unique<Impl>(options, std::move(elements),
                                     std::move(listener), pipe_fds[0],
                                     pipe_fds[1]);
  if (!impl->Init(error)) return nullptr;
  return std::unique_ptr<ReconcileServer>(
      new ReconcileServer(std::move(impl)));
}

ReconcileServer::ReconcileServer(std::unique_ptr<Impl> impl)
    : impl_(std::move(impl)) {}

ReconcileServer::~ReconcileServer() = default;

uint16_t ReconcileServer::port() const { return impl_->port(); }
int ReconcileServer::shard_count() const { return impl_->shard_count(); }
uint64_t ReconcileServer::Run() { return impl_->Run(); }
bool ReconcileServer::RunOnce(int timeout_ms) {
  return impl_->RunOnce(timeout_ms);
}
void ReconcileServer::Stop() { impl_->Stop(); }
ServerStats ReconcileServer::stats() const { return impl_->stats(); }
void ReconcileServer::set_session_logger(SessionLogger logger) {
  impl_->set_session_logger(std::move(logger));
}

}  // namespace pbs
