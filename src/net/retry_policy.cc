#include "pbs/net/retry_policy.h"

#include <algorithm>

namespace pbs {

RetryBackoff::RetryBackoff(const RetryPolicy& policy)
    : policy_(policy), rng_(policy.seed != 0 ? policy.seed : 1) {
  policy_.base_delay_ms = std::max(1, policy_.base_delay_ms);
  policy_.max_delay_ms = std::max(policy_.base_delay_ms, policy_.max_delay_ms);
  prev_ms_ = policy_.base_delay_ms;
}

int RetryBackoff::NextDelayMs() {
  // Decorrelated jitter (Brooker): next = min(cap, U(base, prev * 3)).
  const int64_t lo = policy_.base_delay_ms;
  const int64_t hi =
      std::min<int64_t>(policy_.max_delay_ms, int64_t{prev_ms_} * 3);
  int64_t next = lo;
  if (hi > lo) {
    next = lo + static_cast<int64_t>(
                    rng_.NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }
  prev_ms_ = static_cast<int>(next);
  return prev_ms_;
}

void RetryBackoff::Reset() { prev_ms_ = policy_.base_delay_ms; }

}  // namespace pbs
