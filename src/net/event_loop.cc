#include "pbs/net/event_loop.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

namespace pbs {

namespace {

EventLoop::Backend ResolveAuto(EventLoop::Backend preferred) {
  if (preferred != EventLoop::Backend::kAuto) return preferred;
  if (const char* env = std::getenv("PBS_EVENT_LOOP")) {
    if (std::strcmp(env, "poll") == 0) return EventLoop::Backend::kPoll;
    if (std::strcmp(env, "epoll") == 0) return EventLoop::Backend::kEpoll;
  }
#ifdef __linux__
  return EventLoop::Backend::kEpoll;
#else
  return EventLoop::Backend::kPoll;
#endif
}

short ToPollEvents(uint32_t interest) {
  short events = 0;
  if (interest & EventLoop::kRead) events |= POLLIN;
  if (interest & EventLoop::kWrite) events |= POLLOUT;
  return events;
}

uint32_t FromPollRevents(short revents) {
  uint32_t ready = 0;
  if (revents & POLLIN) ready |= EventLoop::kRead;
  if (revents & POLLOUT) ready |= EventLoop::kWrite;
  if (revents & (POLLHUP | POLLERR | POLLNVAL)) ready |= EventLoop::kHangup;
  return ready;
}

#ifdef __linux__
uint32_t ToEpollEvents(uint32_t interest) {
  uint32_t events = 0;
  if (interest & EventLoop::kRead) events |= EPOLLIN;
  if (interest & EventLoop::kWrite) events |= EPOLLOUT;
  return events;
}

uint32_t FromEpollEvents(uint32_t events) {
  uint32_t ready = 0;
  if (events & EPOLLIN) ready |= EventLoop::kRead;
  if (events & EPOLLOUT) ready |= EventLoop::kWrite;
  if (events & (EPOLLHUP | EPOLLERR)) ready |= EventLoop::kHangup;
  return ready;
}
#endif

}  // namespace

EventLoop::EventLoop(Backend preferred) {
  const Backend backend = ResolveAuto(preferred);
#ifdef __linux__
  use_epoll_ = backend == Backend::kEpoll;
  if (use_epoll_) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) {
      // Fall back rather than fail: poll needs no kernel object.
      use_epoll_ = false;
    }
  }
#else
  (void)backend;
  use_epoll_ = false;
#endif
  ok_ = true;
}

EventLoop::~EventLoop() {
#ifdef __linux__
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
#endif
}

const char* EventLoop::backend_name() const {
  return use_epoll_ ? "epoll" : "poll";
}

bool EventLoop::Add(int fd, uint32_t interest, uint64_t tag) {
  if (!ok_ || fd < 0) return false;
#ifdef __linux__
  if (use_epoll_) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = ToEpollEvents(interest);
    ev.data.u64 = tag;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) return false;
    ++watched_;
    if (epoll_scratch_.size() < watched_ * sizeof(struct epoll_event)) {
      epoll_scratch_.resize(watched_ * sizeof(struct epoll_event));
    }
    if (ready_.capacity() < watched_) ready_.reserve(watched_);
    return true;
  }
#endif
  if (index_of_fd_.count(fd) != 0) return false;
  index_of_fd_.emplace(fd, fds_.size());
  fds_.push_back({fd, ToPollEvents(interest), 0});
  tags_.push_back(tag);
  ++watched_;
  if (ready_.capacity() < watched_) ready_.reserve(watched_);
  return true;
}

bool EventLoop::Modify(int fd, uint32_t interest, uint64_t tag) {
  if (!ok_) return false;
#ifdef __linux__
  if (use_epoll_) {
    struct epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = ToEpollEvents(interest);
    ev.data.u64 = tag;
    return ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0;
  }
#endif
  auto it = index_of_fd_.find(fd);
  if (it == index_of_fd_.end()) return false;
  fds_[it->second].events = ToPollEvents(interest);
  tags_[it->second] = tag;
  return true;
}

bool EventLoop::Remove(int fd) {
  if (!ok_) return false;
#ifdef __linux__
  if (use_epoll_) {
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr) != 0) return false;
    --watched_;
    return true;
  }
#endif
  auto it = index_of_fd_.find(fd);
  if (it == index_of_fd_.end()) return false;
  const size_t i = it->second;
  const size_t last = fds_.size() - 1;
  if (i != last) {
    fds_[i] = fds_[last];
    tags_[i] = tags_[last];
    index_of_fd_[fds_[i].fd] = i;
  }
  fds_.pop_back();
  tags_.pop_back();
  index_of_fd_.erase(it);
  --watched_;
  return true;
}

int EventLoop::Wait(int timeout_ms) {
  if (!ok_) return -1;
  ready_.clear();
#ifdef __linux__
  if (use_epoll_) {
    const int cap = static_cast<int>(
        epoll_scratch_.size() / sizeof(struct epoll_event));
    if (cap == 0) {
      // Nothing registered: epoll_wait needs maxevents >= 1; emulate the
      // pure-timeout wait poll gives for free.
      const int n = ::poll(nullptr, 0, timeout_ms);
      return n < 0 && errno != EINTR ? -1 : 0;
    }
    auto* events = reinterpret_cast<struct epoll_event*>(
        epoll_scratch_.data());
    const int n = ::epoll_wait(epoll_fd_, events, cap, timeout_ms);
    if (n < 0) return errno == EINTR ? 0 : -1;
    for (int i = 0; i < n; ++i) {
      ready_.push_back({events[i].data.u64, FromEpollEvents(events[i].events)});
    }
    return n;
  }
#endif
  const int n = ::poll(fds_.data(), static_cast<nfds_t>(fds_.size()),
                       timeout_ms);
  if (n < 0) return errno == EINTR ? 0 : -1;
  if (n > 0) {
    for (size_t i = 0; i < fds_.size(); ++i) {
      if (fds_[i].revents == 0) continue;
      ready_.push_back({tags_[i], FromPollRevents(fds_[i].revents)});
      if (static_cast<int>(ready_.size()) == n) break;
    }
  }
  return static_cast<int>(ready_.size());
}

}  // namespace pbs
