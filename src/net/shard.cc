#include "pbs/net/shard.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

namespace pbs {

namespace {

// The handoff pipe shares the shard's event loop under this tag; session
// slots use their (small, non-negative) slot index.
constexpr uint64_t kWakeTag = ~uint64_t{0};

// The 4-byte handoff message that means "no fd, just wake up".
constexpr int kWakeSentinel = -1;

bool SetNonBlockingFd(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Shard::Shard(int index, const Options& options,
             SessionEngine::SharedElements elements,
             std::shared_ptr<MutableElementStore> store,
             const SchemeRegistry* registry, ShardShared* shared)
    : index_(index),
      options_(options),
      elements_(std::move(elements)),
      store_(std::move(store)),
      registry_(registry),
      shared_(shared),
      loop_(options.backend) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    error_ = std::string("shard pipe: ") + std::strerror(errno);
    return;
  }
  handoff_read_ = pipe_fds[0];
  handoff_write_ = pipe_fds[1];
  SetNonBlockingFd(handoff_read_);
  SetNonBlockingFd(handoff_write_);
  if (!loop_.ok() || !loop_.Add(handoff_read_, EventLoop::kRead, kWakeTag)) {
    error_ = "shard event loop initialization failed";
    return;
  }
  ok_ = true;
}

Shard::~Shard() {
  for (Slot& s : slots_) {
    if (s.fd >= 0) ::close(s.fd);
  }
  if (handoff_read_ >= 0) ::close(handoff_read_);
  if (handoff_write_ >= 0) ::close(handoff_write_);
}

bool Shard::Handoff(int fd) {
  // 4-byte writes are atomic below PIPE_BUF, so concurrent Wake() calls
  // never interleave with a handoff message. A full pipe means thousands
  // of adoptions are already queued on this shard — overload, reported
  // to the caller instead of blocking the acceptor.
  const int value = fd;
  while (true) {
    const ssize_t n = ::write(handoff_write_, &value, sizeof(value));
    if (n == sizeof(value)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
}

void Shard::Wake() {
  const int value = kWakeSentinel;
  // Best-effort: a full pipe already guarantees a wakeup.
  (void)!::write(handoff_write_, &value, sizeof(value));
}

void Shard::Loop() {
  while (LoopOnce(/*timeout_ms=*/250)) {
  }
}

bool Shard::LoopOnce(int timeout_ms) {
  if (shared_->stop.load(std::memory_order_acquire)) return false;
  const int wait_ms = ClampToIdleDeadline(timeout_ms);
  const int ready = loop_.Wait(wait_ms);
  if (ready < 0) {
    // A persistent backend failure (e.g. ENOMEM) must not become a hot
    // spin: back off for the interval the wait would have covered.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(std::max(1, wait_ms)));
  }
  for (int i = 0; i < ready; ++i) {
    const EventLoop::Event& event = loop_.events()[i];
    if (event.tag == kWakeTag) {
      DrainHandoffPipe();
    } else {
      ServiceSlot(static_cast<int>(event.tag), event.ready);
    }
  }
  SweepDeadlines();
  SweepIdle();
  return !shared_->stop.load(std::memory_order_acquire);
}

void Shard::DrainHandoffPipe() {
  while (true) {
    const ssize_t n = ::read(handoff_read_, carry_ + carry_len_,
                             sizeof(carry_) - carry_len_);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN: drained.
    }
    if (n == 0) break;  // Write end closed (shutdown).
    carry_len_ += static_cast<size_t>(n);
    size_t consumed = 0;
    while (carry_len_ - consumed >= sizeof(int)) {
      int fd;
      std::memcpy(&fd, carry_ + consumed, sizeof(fd));
      consumed += sizeof(fd);
      if (fd >= 0) Adopt(fd);
    }
    if (consumed > 0) {
      std::memmove(carry_, carry_ + consumed, carry_len_ - consumed);
      carry_len_ -= consumed;
    }
  }
}

void Shard::Adopt(int fd) {
  const int slot = PopFreeSlot();
  Slot& s = slots_[slot];
  s.fd = fd;
  SessionConfig local_config;
  local_config.options.pbs.decode_threads = options_.decode_threads;
  local_config.keyspace_shards = options_.keyspace_shards;
  local_config.phase_deadline_ms = options_.phase_deadline_ms;
  if (store_ != nullptr) {
    // Mutable serving: pin the store's current snapshot for this whole
    // session. Concurrent writers keep publishing new epochs; this
    // session reconciles against exactly the one it admitted with (and,
    // with the store attached, also accepts UPDATE sessions).
    s.engine = std::make_unique<SessionEngine>(SessionEngine::Responder(
        local_config, store_->snapshot(), store_, registry_));
  } else {
    s.engine = std::make_unique<SessionEngine>(
        SessionEngine::Responder(local_config, elements_, registry_));
  }
  s.last_active = Clock::now();
  s.interest = EventLoop::kRead;
  if (!loop_.Add(fd, s.interest, static_cast<uint64_t>(slot))) {
    // Registration failure is a failed session, accounted like any other
    // so the server-wide active/finished bookkeeping never drifts.
    ::close(fd);
    s.fd = -1;
    s.engine.reset();
    PushFreeSlot(slot);
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
    shared_->active.fetch_sub(1, std::memory_order_relaxed);
    shared_->finished.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  LruAppend(slot);
  stats_.active.fetch_add(1, std::memory_order_relaxed);
}

int Shard::PopFreeSlot() {
  if (free_head_ >= 0) {
    const int slot = free_head_;
    free_head_ = slots_[slot].next_free;
    slots_[slot].next_free = -1;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<int>(slots_.size()) - 1;
}

void Shard::PushFreeSlot(int slot) {
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

void Shard::LruUnlink(int slot) {
  Slot& s = slots_[slot];
  if (s.lru_prev >= 0) {
    slots_[s.lru_prev].lru_next = s.lru_next;
  } else if (lru_head_ == slot) {
    lru_head_ = s.lru_next;
  }
  if (s.lru_next >= 0) {
    slots_[s.lru_next].lru_prev = s.lru_prev;
  } else if (lru_tail_ == slot) {
    lru_tail_ = s.lru_prev;
  }
  s.lru_prev = s.lru_next = -1;
}

void Shard::LruAppend(int slot) {
  Slot& s = slots_[slot];
  s.lru_prev = lru_tail_;
  s.lru_next = -1;
  if (lru_tail_ >= 0) {
    slots_[lru_tail_].lru_next = slot;
  } else {
    lru_head_ = slot;
  }
  lru_tail_ = slot;
}

void Shard::LruTouch(int slot) {
  slots_[slot].last_active = Clock::now();
  if (lru_tail_ == slot) return;  // Already newest.
  LruUnlink(slot);
  LruAppend(slot);
}

// The oldest session's deadline bounds the wait so a silent peer is
// dropped on time even when no fd ever becomes ready. O(1): the LRU head
// IS the oldest.
int Shard::ClampToIdleDeadline(int timeout_ms) const {
  if (lru_head_ < 0 || options_.idle_timeout_ms <= 0) return timeout_ms;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - slots_[lru_head_].last_active)
                           .count();
  const int remaining =
      static_cast<int>(options_.idle_timeout_ms - elapsed);
  return std::max(0, std::min(timeout_ms, remaining));
}

void Shard::ServiceSlot(int slot, uint32_t ready) {
  if (slot < 0 || slot >= static_cast<int>(slots_.size())) return;
  Slot& s = slots_[slot];
  if (s.fd < 0 || s.engine == nullptr) return;  // Already finalized.
  bool peer_gone = false;
  if ((ready & (EventLoop::kRead | EventLoop::kHangup)) != 0) {
    peer_gone = !ReadReady(s);
  }
  // Catch slow-loris peers that keep the socket warm with partial
  // frames: bytes arrived but the phase clock (which only restarts on
  // complete frames) may still have expired. CheckDeadline queues the
  // ERROR diagnostic, which the flush below delivers.
  if (!peer_gone) (void)s.engine->CheckDeadline();
  if (!peer_gone && (s.engine->outbound_size() > 0)) FlushWrites(s);
  MaybeFinalize(slot, peer_gone);
}

// Reads until EAGAIN, feeding the engine as bytes arrive. Returns false
// once the peer is gone (EOF or hard error).
bool Shard::ReadReady(Slot& s) {
  while (true) {
    const ssize_t n =
        ::recv(s.fd, read_buffer_, sizeof(read_buffer_), MSG_DONTWAIT);
    if (n > 0) {
      s.engine->Feed(read_buffer_, static_cast<size_t>(n));
      LruTouch(static_cast<int>(&s - slots_.data()));
      stats_.bytes_in.fetch_add(static_cast<uint64_t>(n),
                                std::memory_order_relaxed);
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    }
    // EOF or hard error: let the engine turn it into a diagnostic.
    s.engine->FeedEof();
    return false;
  }
}

// Writes the engine's pending outbound bytes until EAGAIN or empty.
// Anything left keeps the fd registered for writability (backpressure).
void Shard::FlushWrites(Slot& s) {
  while (s.engine->outbound_size() > 0) {
    const ssize_t n = ::send(s.fd, s.engine->outbound_data(),
                             s.engine->outbound_size(), MSG_NOSIGNAL);
    if (n > 0) {
      s.engine->ConsumeOutbound(static_cast<size_t>(n));
      LruTouch(static_cast<int>(&s - slots_.data()));
      stats_.bytes_out.fetch_add(static_cast<uint64_t>(n),
                                 std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    s.engine->FailTransport();
    return;
  }
}

void Shard::UpdateInterest(int slot) {
  Slot& s = slots_[slot];
  const uint32_t wanted =
      EventLoop::kRead |
      (s.engine->outbound_size() > 0 ? EventLoop::kWrite : 0u);
  if (wanted == s.interest) return;
  if (loop_.Modify(s.fd, wanted, static_cast<uint64_t>(slot))) {
    s.interest = wanted;
  }
}

// Closes and accounts a session once it settled and its last bytes (DONE
// ack, ERROR) are on the wire — or immediately when the peer is gone and
// nothing can be delivered anymore.
void Shard::MaybeFinalize(int slot, bool peer_gone) {
  Slot& s = slots_[slot];
  const SessionStatus status = s.engine->Status();
  const bool settled =
      status == SessionStatus::kDone || status == SessionStatus::kError;
  if (!settled && !peer_gone) {
    UpdateInterest(slot);
    return;
  }
  if (settled && !peer_gone && s.engine->outbound_size() > 0) {
    UpdateInterest(slot);
    return;
  }
  FinishSession(slot, /*timed_out=*/false);
}

// Fails sessions whose peer sent no complete frame within the phase
// deadline, even if the fd never becomes ready again (a silent peer
// generates no events, so ServiceSlot alone cannot catch it). Only runs
// when the feature is on; the walk is O(slots) per loop tick.
void Shard::SweepDeadlines() {
  if (options_.phase_deadline_ms <= 0) return;
  for (int slot = 0; slot < static_cast<int>(slots_.size()); ++slot) {
    Slot& s = slots_[slot];
    if (s.fd < 0 || s.engine == nullptr) continue;
    if (s.engine->CheckDeadline()) {
      FlushWrites(s);  // Best-effort delivery of the queued ERROR frame.
      FinishSession(slot, /*timed_out=*/false);
    }
  }
}

void Shard::SweepIdle() {
  if (options_.idle_timeout_ms <= 0) return;
  const Clock::time_point cutoff =
      Clock::now() - std::chrono::milliseconds(options_.idle_timeout_ms);
  // The LRU is ordered oldest-first, so reaping is a walk from the head.
  while (lru_head_ >= 0 && slots_[lru_head_].last_active < cutoff) {
    FinishSession(lru_head_, /*timed_out=*/true);
  }
}

void Shard::FinishSession(int slot, bool timed_out) {
  Slot& s = slots_[slot];
  if (s.fd < 0 || s.engine == nullptr) return;
  SessionResult result = s.engine->TakeResult();
  if (timed_out && result.error.empty()) {
    result.ok = false;
    result.error = "idle timeout";
  }
  loop_.Remove(s.fd);
  ::close(s.fd);
  s.fd = -1;
  s.engine.reset();
  LruUnlink(slot);
  PushFreeSlot(slot);

  if (timed_out) {
    stats_.timed_out.fetch_add(1, std::memory_order_relaxed);
  } else if (result.ok) {
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    if (result.degraded_shards > 0) {
      stats_.degraded.fetch_add(static_cast<uint64_t>(result.degraded_shards),
                                std::memory_order_relaxed);
    }
    std::lock_guard<std::mutex> lock(stats_.scheme_mutex);
    stats_.completed_by_scheme[result.scheme] += 1;
  } else {
    stats_.failed.fetch_add(1, std::memory_order_relaxed);
  }
  stats_.active.fetch_sub(1, std::memory_order_relaxed);
  shared_->active.fetch_sub(1, std::memory_order_relaxed);

  if (shared_->logger) {
    std::lock_guard<std::mutex> lock(shared_->logger_mutex);
    shared_->logger(result);
  }

  const uint64_t finished =
      shared_->finished.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (shared_->serve_limit > 0 && finished >= shared_->serve_limit &&
      !shared_->stop.exchange(true, std::memory_order_acq_rel)) {
    // Serve limit reached: stop the server and poke the acceptor, which
    // in turn wakes and joins every shard.
    if (shared_->acceptor_wake_fd >= 0) {
      const uint8_t byte = 1;
      (void)!::write(shared_->acceptor_wake_fd, &byte, 1);
    }
  }
}

}  // namespace pbs
