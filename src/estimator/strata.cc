#include "pbs/estimator/strata.h"

#include <cassert>

#include "pbs/hash/xxhash64.h"

namespace pbs {

StrataEstimator::StrataEstimator(int num_strata, size_t cells_per_stratum,
                                 uint64_t seed, int sig_bits)
    : seed_(seed), sig_bits_(sig_bits) {
  assert(num_strata >= 1);
  strata_.reserve(num_strata);
  for (int i = 0; i < num_strata; ++i) {
    strata_.emplace_back(cells_per_stratum, /*num_hashes=*/4,
                         seed ^ (0x51A7A0000ull + i), sig_bits);
  }
}

int StrataEstimator::StratumOf(uint64_t element) const {
  const uint64_t h = XxHash64(element, seed_ ^ 0x5354524154414Cull);
  const int tz = h == 0 ? 63 : __builtin_ctzll(h);
  return tz >= num_strata() ? num_strata() - 1 : tz;
}

void StrataEstimator::Add(uint64_t element) {
  strata_[StratumOf(element)].Insert(element);
}

void StrataEstimator::AddAll(const std::vector<uint64_t>& elements) {
  for (uint64_t e : elements) Add(e);
}

double StrataEstimator::Estimate(const StrataEstimator& a,
                                 const StrataEstimator& b) {
  assert(a.num_strata() == b.num_strata());
  uint64_t count = 0;
  for (int i = a.num_strata() - 1; i >= 0; --i) {
    InvertibleBloomFilter diff = a.strata_[i];
    diff.Subtract(b.strata_[i]);
    const auto decoded = diff.Decode();
    if (!decoded.complete) {
      return static_cast<double>(uint64_t{1} << (i + 1)) *
             static_cast<double>(count);
    }
    count += decoded.positive.size() + decoded.negative.size();
  }
  return static_cast<double>(count);
}

size_t StrataEstimator::bit_size() const {
  size_t bits = 0;
  for (const auto& ibf : strata_) bits += ibf.bit_size();
  return bits;
}

}  // namespace pbs
