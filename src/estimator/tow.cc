#include "pbs/estimator/tow.h"

#include <cassert>
#include <cmath>

#include "pbs/common/rng.h"
#include "pbs/hash/fourwise.h"

namespace pbs {

TowSketch::TowSketch(int ell, uint64_t seed) : counters_(ell, 0) {
  assert(ell >= 1);
  SplitMix64 sm(seed ^ 0x7077536B65746368ull);  // "towSketch"
  hash_seeds_.reserve(ell);
  for (int i = 0; i < ell; ++i) hash_seeds_.push_back(sm.Next());
}

void TowSketch::Add(uint64_t element) {
  for (size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += FourWiseHash(hash_seeds_[i]).Sign(element);
  }
}

void TowSketch::AddAll(const std::vector<uint64_t>& elements) {
  // Construct each hash once and stream the set through it: cache-friendlier
  // than re-deriving coefficients per element.
  for (size_t i = 0; i < counters_.size(); ++i) {
    FourWiseHash h(hash_seeds_[i]);
    int64_t acc = 0;
    for (uint64_t e : elements) acc += h.Sign(e);
    counters_[i] += acc;
  }
}

double TowSketch::Estimate(const TowSketch& a, const TowSketch& b) {
  assert(a.ell() == b.ell());
  double sum = 0.0;
  for (int i = 0; i < a.ell(); ++i) {
    const double diff =
        static_cast<double>(a.counters_[i] - b.counters_[i]);
    sum += diff * diff;
  }
  return sum / a.ell();
}

int TowSketch::BitSize(int ell, uint64_t set_size) {
  const int bits_per_counter = static_cast<int>(
      std::ceil(std::log2(2.0 * static_cast<double>(set_size) + 1.0)));
  return ell * bits_per_counter;
}

void TowSketch::Serialize(BitWriter* writer, uint64_t set_size) const {
  const int bits = BitSize(1, set_size);
  for (int64_t c : counters_) {
    // Zig-zag so negative counters fit the fixed width.
    const uint64_t zz = (static_cast<uint64_t>(c) << 1) ^
                        static_cast<uint64_t>(c >> 63);
    writer->WriteBits(zz, bits);
  }
}

TowSketch TowSketch::Deserialize(BitReader* reader, int ell, uint64_t seed,
                                 uint64_t set_size) {
  TowSketch sketch(ell, seed);
  const int bits = BitSize(1, set_size);
  for (int i = 0; i < ell; ++i) {
    const uint64_t zz = reader->ReadBits(bits);
    sketch.counters_[i] =
        static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  }
  return sketch;
}

TowExchange TowEstimateExchange(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b, int ell,
                                uint64_t seed) {
  TowSketch sketch_a(ell, seed);
  TowSketch sketch_b(ell, seed);
  sketch_a.AddAll(a);
  sketch_b.AddAll(b);
  TowExchange exchange;
  exchange.d_hat = TowSketch::Estimate(sketch_a, sketch_b);
  exchange.bytes =
      (static_cast<size_t>(TowSketch::BitSize(ell, b.size())) + 7) / 8;
  return exchange;
}

double TowEstimateFromDifference(const std::vector<uint64_t>& sym_diff,
                                 int ell, uint64_t seed) {
  TowSketch diff_sketch(ell, seed);
  diff_sketch.AddAll(sym_diff);
  TowSketch empty(ell, seed);
  return TowSketch::Estimate(diff_sketch, empty);
}

}  // namespace pbs
