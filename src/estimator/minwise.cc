#include "pbs/estimator/minwise.h"

#include <cassert>
#include <limits>

#include "pbs/common/rng.h"
#include "pbs/hash/xxhash64.h"

namespace pbs {

MinwiseEstimator::MinwiseEstimator(int k, uint64_t seed)
    : minima_(k, std::numeric_limits<uint64_t>::max()) {
  assert(k >= 1);
  SplitMix64 sm(seed ^ 0x6D696E77697365ull);  // "minwise"
  seeds_.reserve(k);
  for (int i = 0; i < k; ++i) seeds_.push_back(sm.Next());
}

void MinwiseEstimator::Add(uint64_t element) {
  for (size_t i = 0; i < minima_.size(); ++i) {
    const uint64_t h = XxHash64(element, seeds_[i]);
    if (h < minima_[i]) minima_[i] = h;
  }
}

void MinwiseEstimator::AddAll(const std::vector<uint64_t>& elements) {
  for (uint64_t e : elements) Add(e);
}

double MinwiseEstimator::Estimate(const MinwiseEstimator& a, uint64_t size_a,
                                  const MinwiseEstimator& b,
                                  uint64_t size_b) {
  assert(a.minima_.size() == b.minima_.size());
  int matches = 0;
  for (size_t i = 0; i < a.minima_.size(); ++i) {
    if (a.minima_[i] == b.minima_[i]) ++matches;
  }
  const double jaccard =
      static_cast<double>(matches) / static_cast<double>(a.minima_.size());
  const double d = (1.0 - jaccard) / (1.0 + jaccard) *
                   static_cast<double>(size_a + size_b);
  return d < 0 ? 0 : d;
}

}  // namespace pbs
