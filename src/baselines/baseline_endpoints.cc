// Wire-session engines for the baseline schemes (docs/WIRE_FORMAT.md).
//
// Each engine realizes the *same* algorithm as the corresponding in-memory
// free function, split at the protocol's natural message boundary, using
// the same primitives, seeds, and processing order — so a session recovers
// a difference identical to the in-memory call (pinned by
// tests/core/wire_session_test.cc). One-shot schemes (PinSketch, D.Digest,
// Graphene) are a single exchange: the initiator ships its sizing
// parameter, the responder ships its sketch/filter, the initiator decodes.
// PinSketch/WP is the genuinely interactive one and mirrors the PBS round
// structure (settled bits, three-way splits) at PinSketch field widths.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <unordered_set>
#include <utility>

#include "pbs/baselines/baseline_reconcilers.h"
#include "pbs/baselines/graphene.h"
#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/bitio.h"
#include "pbs/common/checksum.h"
#include "pbs/core/group_state.h"
#include "pbs/core/messages.h"
#include "pbs/gf/gf2m.h"
#include "pbs/ibf/bloom_filter.h"
#include "pbs/ibf/invertible_bloom_filter.h"

namespace pbs {

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::string Summary(const char* format, int value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// D.Digest sizing shared by both sides (mirrors DDigestReconcile).
size_t DDigestCells(int d_est) { return static_cast<size_t>(2) * d_est; }
int DDigestHashes(int d_est) { return d_est > 200 ? 3 : 4; }

// Responder-side cap on peer-requested difference capacities (t, d_est).
// These fields arrive in a tiny request but drive O(d) allocations on the
// serving side, so they are bounded to ~10x the paper's largest d rather
// than by what a 4-byte integer can express.
constexpr int kMaxWireDifference = 1 << 20;

// ------------------------------------------------------------- pinsketch --

class PinSketchInitiator : public ReconcileInitiator {
 public:
  PinSketchInitiator(std::vector<uint64_t> elements, double d_hat,
                     uint64_t seed, int sig_bits, double gamma)
      : elements_(std::move(elements)),
        seed_(seed),
        sig_bits_(sig_bits),
        t_(std::max(1, InflateEstimate(d_hat, gamma))) {}

  std::vector<uint8_t> NextRequest() override {
    BitWriter w;
    w.WriteBits(static_cast<uint32_t>(t_), 32);
    return w.TakeBytes();
  }

  bool HandleReply(const std::vector<uint8_t>& reply) override {
    const GF2m field(sig_bits_);
    const auto encode_start = Clock::now();
    PowerSumSketch alice_sketch(field, t_);
    for (uint64_t e : elements_) alice_sketch.Toggle(e);
    const auto decode_start = Clock::now();
    outcome_.encode_seconds = Seconds(encode_start, decode_start);

    BitReader r(reply);
    PowerSumSketch received = PowerSumSketch::Deserialize(&r, field, t_);
    if (r.overflowed()) return false;
    received.Merge(alice_sketch);
    auto decoded = received.Decode(/*verify=*/true, seed_);
    outcome_.decode_seconds = Seconds(decode_start, Clock::now());
    if (decoded.has_value()) {
      outcome_.success = true;
      outcome_.difference = std::move(*decoded);
    }
    outcome_.data_bytes = reply.size();
    outcome_.params_summary = Summary("t=%d", t_);
    done_ = true;
    return true;
  }

  bool done() const override { return done_; }
  ReconcileOutcome TakeOutcome() override { return std::move(outcome_); }

 private:
  std::vector<uint64_t> elements_;
  uint64_t seed_;
  int sig_bits_;
  int t_;
  bool done_ = false;
  ReconcileOutcome outcome_;
};

class PinSketchResponder : public ReconcileResponder {
 public:
  PinSketchResponder(std::vector<uint64_t> elements, int sig_bits)
      : elements_(std::move(elements)), sig_bits_(sig_bits) {}

  bool HandleRequest(const std::vector<uint8_t>& request,
                     std::vector<uint8_t>* reply) override {
    BitReader r(request);
    const int t = static_cast<int>(r.ReadBits(32));
    if (r.overflowed() || t < 1 || t > kMaxWireDifference) return false;
    const GF2m field(sig_bits_);
    PowerSumSketch sketch(field, t);
    for (uint64_t e : elements_) sketch.Toggle(e);
    BitWriter w;
    sketch.Serialize(&w);
    *reply = w.TakeBytes();
    return true;
  }

 private:
  std::vector<uint64_t> elements_;
  int sig_bits_;
};

// --------------------------------------------------------------- ddigest --

class DDigestInitiator : public ReconcileInitiator {
 public:
  DDigestInitiator(std::vector<uint64_t> elements, double d_hat,
                   uint64_t seed, int sig_bits)
      : elements_(std::move(elements)),
        seed_(seed),
        sig_bits_(sig_bits),
        d_est_(std::max(
            1, std::max(0, static_cast<int>(std::llround(d_hat))))) {}

  std::vector<uint8_t> NextRequest() override {
    BitWriter w;
    w.WriteBits(static_cast<uint32_t>(d_est_), 32);
    return w.TakeBytes();
  }

  bool HandleReply(const std::vector<uint8_t>& reply) override {
    const size_t cells = DDigestCells(d_est_);
    const int num_hashes = DDigestHashes(d_est_);
    const auto encode_start = Clock::now();
    InvertibleBloomFilter alice_ibf(cells, num_hashes, seed_, sig_bits_);
    for (uint64_t e : elements_) alice_ibf.Insert(e);
    const auto decode_start = Clock::now();
    outcome_.encode_seconds = Seconds(encode_start, decode_start);

    BitReader r(reply);
    InvertibleBloomFilter bob_ibf = InvertibleBloomFilter::Deserialize(
        &r, cells, num_hashes, seed_, sig_bits_);
    if (r.overflowed()) return false;
    alice_ibf.Subtract(bob_ibf);
    auto decoded = alice_ibf.Decode();
    outcome_.decode_seconds = Seconds(decode_start, Clock::now());

    outcome_.success = decoded.complete;
    outcome_.difference = std::move(decoded.positive);
    outcome_.difference.insert(outcome_.difference.end(),
                               decoded.negative.begin(),
                               decoded.negative.end());
    outcome_.data_bytes = reply.size();
    outcome_.params_summary = Summary("d_est=%d", d_est_);
    done_ = true;
    return true;
  }

  bool done() const override { return done_; }
  ReconcileOutcome TakeOutcome() override { return std::move(outcome_); }

 private:
  std::vector<uint64_t> elements_;
  uint64_t seed_;
  int sig_bits_;
  int d_est_;
  bool done_ = false;
  ReconcileOutcome outcome_;
};

class DDigestResponder : public ReconcileResponder {
 public:
  DDigestResponder(std::vector<uint64_t> elements, uint64_t seed,
                   int sig_bits)
      : elements_(std::move(elements)), seed_(seed), sig_bits_(sig_bits) {}

  bool HandleRequest(const std::vector<uint8_t>& request,
                     std::vector<uint8_t>* reply) override {
    BitReader r(request);
    const int d_est = static_cast<int>(r.ReadBits(32));
    if (r.overflowed() || d_est < 1 || d_est > kMaxWireDifference) {
      return false;
    }
    InvertibleBloomFilter ibf(DDigestCells(d_est), DDigestHashes(d_est),
                              seed_, sig_bits_);
    for (uint64_t e : elements_) ibf.Insert(e);
    BitWriter w;
    ibf.Serialize(&w);
    *reply = w.TakeBytes();
    return true;
  }

 private:
  std::vector<uint64_t> elements_;
  uint64_t seed_;
  int sig_bits_;
};

// -------------------------------------------------------------- graphene --

class GrapheneInitiator : public ReconcileInitiator {
 public:
  GrapheneInitiator(std::vector<uint64_t> elements, double d_hat,
                    uint64_t seed, int sig_bits, double gamma)
      : elements_(std::move(elements)),
        seed_(seed),
        sig_bits_(sig_bits),
        d_est_(std::max(InflateEstimate(d_hat, gamma), 1)) {}

  std::vector<uint8_t> NextRequest() override {
    BitWriter w;
    w.WriteBits(static_cast<uint32_t>(d_est_), 32);
    return w.TakeBytes();
  }

  bool HandleReply(const std::vector<uint8_t>& reply) override {
    const GrapheneConfig config;
    BitReader r(reply);
    const bool use_bf = r.ReadBit();
    r.AlignToByte();
    const uint64_t bf_bits = r.ReadBits(64);
    const int bf_hashes = static_cast<int>(r.ReadBits(16));
    const uint64_t cells = r.ReadBits(64);
    // The geometry fields must be backed by bytes actually present in the
    // reply; anything larger is corruption (or a hostile peer) and must
    // not drive allocation.
    const uint64_t reply_bits = static_cast<uint64_t>(reply.size()) * 8;
    if (r.overflowed() || cells == 0 ||
        cells > reply_bits / (3 * static_cast<uint64_t>(sig_bits_)) ||
        (use_bf && (bf_bits > reply_bits || bf_hashes < 1 ||
                    bf_hashes > 64))) {
      // bf_hashes also bounds per-element probe work during filtering;
      // ForCapacity produces ~10, so 64 is already generous.
      return false;
    }
    const BloomFilter bf = use_bf ? BloomFilter::Deserialize(
                                        &r, bf_bits, bf_hashes, seed_)
                                  : BloomFilter(8, 1, seed_);
    r.AlignToByte();
    InvertibleBloomFilter bob_ibf = InvertibleBloomFilter::Deserialize(
        &r, cells, config.ibf_hashes, seed_ ^ 0x1BF, sig_bits_);
    if (r.overflowed()) return false;
    const size_t wire_accounted_bytes =
        (use_bf ? bf.byte_size() : 0) + bob_ibf.byte_size() + 8;

    // Candidate set Z and IBF(Z), exactly as GrapheneReconcile.
    const auto encode_start = Clock::now();
    std::vector<uint64_t> z;
    z.reserve(elements_.size());
    std::vector<uint64_t> a_minus_z;
    for (uint64_t e : elements_) {
      if (!use_bf || bf.Contains(e)) {
        z.push_back(e);
      } else {
        a_minus_z.push_back(e);
      }
    }
    InvertibleBloomFilter z_ibf(cells, config.ibf_hashes, seed_ ^ 0x1BF,
                                sig_bits_);
    for (uint64_t e : z) z_ibf.Insert(e);
    const auto decode_start = Clock::now();
    outcome_.encode_seconds = Seconds(encode_start, decode_start);

    bob_ibf.Subtract(z_ibf);
    auto decoded = bob_ibf.Decode();
    outcome_.decode_seconds = Seconds(decode_start, Clock::now());

    outcome_.success = decoded.complete;
    outcome_.difference = std::move(a_minus_z);
    outcome_.difference.insert(outcome_.difference.end(),
                               decoded.negative.begin(),
                               decoded.negative.end());
    outcome_.difference.insert(outcome_.difference.end(),
                               decoded.positive.begin(),
                               decoded.positive.end());
    // Same accounting as the in-memory path: BF + IBF + the 8-byte
    // geometry surcharge the paper credits Graphene.
    outcome_.data_bytes = wire_accounted_bytes;
    outcome_.params_summary = Summary("d_est=%d", d_est_);
    done_ = true;
    return true;
  }

  bool done() const override { return done_; }
  ReconcileOutcome TakeOutcome() override { return std::move(outcome_); }

 private:
  std::vector<uint64_t> elements_;
  uint64_t seed_;
  int sig_bits_;
  int d_est_;
  bool done_ = false;
  ReconcileOutcome outcome_;
};

class GrapheneResponder : public ReconcileResponder {
 public:
  GrapheneResponder(std::vector<uint64_t> elements, uint64_t seed,
                    int sig_bits)
      : elements_(std::move(elements)), seed_(seed), sig_bits_(sig_bits) {}

  bool HandleRequest(const std::vector<uint8_t>& request,
                     std::vector<uint8_t>* reply) override {
    BitReader r(request);
    const int d_est = static_cast<int>(r.ReadBits(32));
    if (r.overflowed() || d_est < 1 || d_est > kMaxWireDifference) {
      return false;
    }
    const GrapheneConfig config;
    const GraphenePlan plan =
        GrapheneChoosePlan(d_est, elements_.size(), sig_bits_, config);

    BloomFilter bf = plan.use_bf() ? BloomFilter::ForCapacity(
                                         elements_.size(), plan.epsilon,
                                         seed_)
                                   : BloomFilter(8, 1, seed_);
    if (plan.use_bf()) {
      for (uint64_t e : elements_) bf.Insert(e);
    }
    InvertibleBloomFilter ibf(plan.cells, config.ibf_hashes, seed_ ^ 0x1BF,
                              sig_bits_);
    for (uint64_t e : elements_) ibf.Insert(e);

    BitWriter w;
    w.WriteBit(plan.use_bf());
    w.AlignToByte();
    w.WriteBits(plan.use_bf() ? bf.bit_count() : 0, 64);
    w.WriteBits(static_cast<uint64_t>(bf.num_hashes()), 16);
    w.WriteBits(plan.cells, 64);
    if (plan.use_bf()) bf.Serialize(&w);
    w.AlignToByte();
    ibf.Serialize(&w);
    *reply = w.TakeBytes();
    return true;
  }

 private:
  std::vector<uint64_t> elements_;
  uint64_t seed_;
  int sig_bits_;
};

// ---------------------------------------------------------- pinsketch/wp --

// True two-endpoint realization of PinSketchWpReconcile. Canonical unit
// order evolves identically on both sides: settled units are dropped (the
// initiator announces settlement bits at the head of the next round's
// request), decode-failed units are replaced in place by their three
// children, survivors stay put — the Section 3.2/3.3 discipline at
// PinSketch field widths.
class PinSketchWpInitiator : public ReconcileInitiator {
 public:
  PinSketchWpInitiator(std::vector<uint64_t> elements, double d_hat,
                       uint64_t seed, const PbsConfig& config,
                       int report_sig_bits)
      : field_(config.sig_bits),
        family_(seed),
        config_(config),
        report_sig_bits_(report_sig_bits),
        mask_(SetChecksum::MaskFor(config.sig_bits)),
        d_used_(InflateEstimate(d_hat, config.gamma)) {
    const PbsPlan plan = PlanFor(config_, d_used_);
    t_ = std::max(plan.params.t, 1);
    g_ = d_used_ <= 0 ? 1
                      : static_cast<uint32_t>((d_used_ + config_.delta - 1) /
                                              config_.delta);
    count_bits_ = wire::CountBits(t_);
    units_.resize(g_);
    for (uint32_t i = 0; i < g_; ++i) {
      units_[i].core = UnitCore::Root(family_, i);
    }
    for (uint64_t e : elements) {
      Unit& u = units_[GroupOf(family_, e, g_)];
      u.working.insert(e);
      u.checksum = (u.checksum + e) & mask_;
    }
  }

  std::vector<uint8_t> NextRequest() override {
    ++round_;
    BitWriter w;
    if (round_ == 1) {
      w.WriteBits(g_, 32);
      w.WriteBits(static_cast<uint32_t>(t_), 32);
    } else {
      for (bool settled : settled_bits_) w.WriteBit(settled);
      w.AlignToByte();
    }
    settled_bits_.clear();
    for (const Unit& unit : units_) {
      PowerSumSketch sketch(field_, t_);
      for (uint64_t e : unit.working) sketch.Toggle(e);
      sketch.Serialize(&w);
      sig_fields_ += static_cast<size_t>(t_);  // t syndromes per unit.
    }
    request_bytes_ = w.byte_size();
    return w.TakeBytes();
  }

  bool HandleReply(const std::vector<uint8_t>& reply) override {
    BitReader r(reply);
    data_bytes_ += request_bytes_ + reply.size();
    std::vector<Unit> next_units;
    for (Unit& unit : units_) {
      const bool failed = r.ReadBit();
      if (failed) {
        // Three-way split, children redistributed exactly as the monolith.
        const uint64_t salt = unit.core.SplitSalt(family_);
        std::vector<Unit> children(3);
        for (int c = 0; c < 3; ++c) {
          children[c].core = unit.core.Child(family_,
                                             static_cast<uint8_t>(c));
        }
        for (uint64_t e : unit.working) {
          Unit& ch = children[UnitCore::ChildIndexOf(e, salt)];
          ch.working.insert(e);
          ch.checksum = (ch.checksum + e) & mask_;
        }
        for (Unit& ch : children) next_units.push_back(std::move(ch));
        continue;
      }
      const uint64_t count = r.ReadBits(count_bits_);
      if (count > static_cast<uint64_t>(t_)) return false;
      sig_fields_ += count + 1;  // Recovered elements + Bob's checksum.
      for (uint64_t i = 0; i < count; ++i) {
        const uint64_t s = r.ReadBits(config_.sig_bits);
        if (s == 0) continue;
        if (!unit.core.InSubUniverse(family_, s, g_)) continue;
        Toggle(unit, s);
      }
      const uint64_t bob_checksum = r.ReadBits(config_.sig_bits);
      if (r.overflowed()) return false;
      if (unit.checksum != bob_checksum) {
        settled_bits_.push_back(false);
        next_units.push_back(std::move(unit));
      } else {
        settled_bits_.push_back(true);
      }
    }
    if (r.overflowed()) return false;
    units_ = std::move(next_units);
    if (units_.empty() || round_ >= config_.max_rounds) done_ = true;
    return true;
  }

  bool done() const override { return done_; }

  ReconcileOutcome TakeOutcome() override {
    ReconcileOutcome outcome;
    outcome.success = units_.empty();
    outcome.rounds = round_;
    outcome.difference.assign(diff_.begin(), diff_.end());
    outcome.data_bytes = data_bytes_;
    if (report_sig_bits_ > config_.sig_bits) {
      // Appendix J.3: the monolith accounts every signature-width field
      // (syndromes, recovered elements, checksums) at report_sig_bits.
      outcome.data_bytes += sig_fields_ *
                            static_cast<size_t>(report_sig_bits_ -
                                                config_.sig_bits) / 8;
    }
    char summary[64];
    std::snprintf(summary, sizeof(summary), "g=%u t=%d delta=%d d_used=%d",
                  g_, t_, config_.delta, d_used_);
    outcome.params_summary = summary;
    return outcome;
  }

 private:
  struct Unit {
    UnitCore core;
    std::unordered_set<uint64_t> working;  // A_unit (xor running D-hat).
    uint64_t checksum = 0;
  };

  void Toggle(Unit& unit, uint64_t s) {
    if (auto it = unit.working.find(s); it != unit.working.end()) {
      unit.working.erase(it);
      unit.checksum = (unit.checksum - s) & mask_;
    } else {
      unit.working.insert(s);
      unit.checksum = (unit.checksum + s) & mask_;
    }
    if (auto it = diff_.find(s); it != diff_.end()) {
      diff_.erase(it);
    } else {
      diff_.insert(s);
    }
  }

  GF2m field_;
  HashFamily family_;
  PbsConfig config_;
  int report_sig_bits_ = 0;
  uint64_t mask_;
  int d_used_;
  int t_ = 1;
  uint32_t g_ = 1;
  int count_bits_ = 1;
  std::vector<Unit> units_;
  std::vector<bool> settled_bits_;
  std::unordered_set<uint64_t> diff_;
  size_t request_bytes_ = 0;
  size_t data_bytes_ = 0;
  size_t sig_fields_ = 0;
  int round_ = 0;
  bool done_ = false;
};

class PinSketchWpResponder : public ReconcileResponder {
 public:
  PinSketchWpResponder(std::vector<uint64_t> elements, uint64_t seed,
                       const PbsConfig& config)
      : elements_(std::move(elements)),
        field_(config.sig_bits),
        family_(seed),
        seed_(seed),
        mask_(SetChecksum::MaskFor(config.sig_bits)),
        sig_bits_(config.sig_bits) {}

  bool HandleRequest(const std::vector<uint8_t>& request,
                     std::vector<uint8_t>* reply) override {
    BitReader r(request);
    if (first_) {
      first_ = false;
      g_ = static_cast<uint32_t>(r.ReadBits(32));
      t_ = static_cast<int>(r.ReadBits(32));
      // The header must be followed by g sketches of t*sig_bits bits, so
      // a request this size can only back so many units — reject anything
      // bigger before allocating the unit table.
      const uint64_t sketch_bits = static_cast<uint64_t>(request.size()) * 8 -
                                   64;
      if (r.overflowed() || g_ == 0 || t_ < 1 ||
          static_cast<uint64_t>(g_) * static_cast<uint64_t>(t_) >
              sketch_bits / static_cast<uint64_t>(sig_bits_)) {
        return false;
      }
      count_bits_ = wire::CountBits(t_);
      units_.resize(g_);
      for (uint32_t i = 0; i < g_; ++i) {
        units_[i].core = UnitCore::Root(family_, i);
      }
      for (uint64_t e : elements_) {
        Unit& u = units_[GroupOf(family_, e, g_)];
        u.elements.push_back(e);
        u.checksum = (u.checksum + e) & mask_;
      }
    } else {
      // Settled bits for every unit that decoded OK last round, in
      // canonical order; then the stream re-aligns to a byte boundary.
      std::vector<Unit> kept;
      kept.reserve(units_.size());
      for (Unit& unit : units_) {
        if (unit.ok_last) {
          unit.ok_last = false;
          if (r.ReadBit()) continue;  // Settled: dropped on both sides.
        }
        kept.push_back(std::move(unit));
      }
      r.AlignToByte();
      if (r.overflowed()) return false;
      units_ = std::move(kept);
    }

    BitWriter w;
    std::vector<Unit> next_units;
    for (Unit& unit : units_) {
      PowerSumSketch alice_sketch =
          PowerSumSketch::Deserialize(&r, field_, t_);
      if (r.overflowed()) return false;
      PowerSumSketch merged(field_, t_);
      for (uint64_t e : unit.elements) merged.Toggle(e);
      merged.Merge(alice_sketch);
      auto decoded = merged.Decode(/*verify=*/true, seed_ ^ unit.core.key);
      if (!decoded.has_value()) {
        w.WriteBit(true);  // Decode failed; both sides split.
        const uint64_t salt = unit.core.SplitSalt(family_);
        std::vector<Unit> children(3);
        for (int c = 0; c < 3; ++c) {
          children[c].core = unit.core.Child(family_,
                                             static_cast<uint8_t>(c));
        }
        for (uint64_t e : unit.elements) {
          Unit& ch = children[UnitCore::ChildIndexOf(e, salt)];
          ch.elements.push_back(e);
          ch.checksum = (ch.checksum + e) & mask_;
        }
        for (Unit& ch : children) next_units.push_back(std::move(ch));
        continue;
      }
      w.WriteBit(false);
      w.WriteBits(decoded->size(), count_bits_);
      for (uint64_t s : *decoded) w.WriteBits(s, sig_bits_);
      w.WriteBits(unit.checksum, sig_bits_);
      unit.ok_last = true;
      next_units.push_back(std::move(unit));
    }
    units_ = std::move(next_units);
    *reply = w.TakeBytes();
    return true;
  }

 private:
  struct Unit {
    UnitCore core;
    std::vector<uint64_t> elements;
    uint64_t checksum = 0;
    bool ok_last = false;
  };

  std::vector<uint64_t> elements_;
  GF2m field_;
  HashFamily family_;
  uint64_t seed_;
  uint64_t mask_;
  int sig_bits_;
  uint32_t g_ = 0;
  int t_ = 1;
  int count_bits_ = 1;
  bool first_ = true;
  std::vector<Unit> units_;
};

}  // namespace

// ----------------------------------------------------- factory overrides --

std::unique_ptr<ReconcileInitiator> PinSketchReconciler::CreateInitiator(
    std::vector<uint64_t> elements, double d_hat, uint64_t seed) const {
  return std::make_unique<PinSketchInitiator>(std::move(elements), d_hat,
                                              seed, sig_bits_, gamma_);
}

std::unique_ptr<ReconcileResponder> PinSketchReconciler::CreateResponder(
    std::vector<uint64_t> elements, double /*d_hat*/, uint64_t /*seed*/)
    const {
  return std::make_unique<PinSketchResponder>(std::move(elements),
                                              sig_bits_);
}

std::unique_ptr<ReconcileInitiator> DDigestReconciler::CreateInitiator(
    std::vector<uint64_t> elements, double d_hat, uint64_t seed) const {
  return std::make_unique<DDigestInitiator>(std::move(elements), d_hat, seed,
                                            sig_bits_);
}

std::unique_ptr<ReconcileResponder> DDigestReconciler::CreateResponder(
    std::vector<uint64_t> elements, double /*d_hat*/, uint64_t seed) const {
  return std::make_unique<DDigestResponder>(std::move(elements), seed,
                                            sig_bits_);
}

std::unique_ptr<ReconcileInitiator> GrapheneReconciler::CreateInitiator(
    std::vector<uint64_t> elements, double d_hat, uint64_t seed) const {
  return std::make_unique<GrapheneInitiator>(std::move(elements), d_hat,
                                             seed, sig_bits_, gamma_);
}

std::unique_ptr<ReconcileResponder> GrapheneReconciler::CreateResponder(
    std::vector<uint64_t> elements, double /*d_hat*/, uint64_t seed) const {
  return std::make_unique<GrapheneResponder>(std::move(elements), seed,
                                             sig_bits_);
}

std::unique_ptr<ReconcileInitiator> PinSketchWpReconciler::CreateInitiator(
    std::vector<uint64_t> elements, double d_hat, uint64_t seed) const {
  return std::make_unique<PinSketchWpInitiator>(std::move(elements), d_hat,
                                                seed, config_,
                                                report_sig_bits_);
}

std::unique_ptr<ReconcileResponder> PinSketchWpReconciler::CreateResponder(
    std::vector<uint64_t> elements, double /*d_hat*/, uint64_t seed) const {
  return std::make_unique<PinSketchWpResponder>(std::move(elements), seed,
                                                config_);
}

}  // namespace pbs
