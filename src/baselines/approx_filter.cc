#include "pbs/baselines/approx_filter.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "pbs/ibf/bloom_filter.h"
#include "pbs/ibf/cuckoo_filter.h"

namespace pbs {

namespace {

// Fingerprint width whose 2f/2^w false-positive rate is closest to `fpr`
// from below (f = slots per bucket pair = 8 candidate slots).
int CuckooBitsFor(double fpr) {
  for (int bits = 4; bits <= 16; ++bits) {
    if (8.0 / (1u << bits) <= fpr) return bits;
  }
  return 16;
}

}  // namespace

ApproxOutcome ApproxFilterReconcile(const std::vector<uint64_t>& a,
                                    const std::vector<uint64_t>& b,
                                    FilterKind kind, double fpr,
                                    uint64_t seed) {
  ApproxOutcome out;

  if (kind == FilterKind::kBloom) {
    BloomFilter fa = BloomFilter::ForCapacity(a.size(), fpr, seed);
    BloomFilter fb = BloomFilter::ForCapacity(b.size(), fpr, seed ^ 1);
    for (uint64_t e : a) fa.Insert(e);
    for (uint64_t e : b) fb.Insert(e);
    out.data_bytes = fa.byte_size() + fb.byte_size();
    // Alice keeps what Bob's filter rejects (A-hat \ B) and vice versa.
    for (uint64_t e : a) {
      if (!fb.Contains(e)) out.estimated_diff.push_back(e);
    }
    for (uint64_t e : b) {
      if (!fa.Contains(e)) out.estimated_diff.push_back(e);
    }
    return out;
  }

  const int bits = CuckooBitsFor(fpr);
  CuckooFilter fa(a.size(), bits, seed);
  CuckooFilter fb(b.size(), bits, seed ^ 1);
  for (uint64_t e : a) fa.Insert(e);
  for (uint64_t e : b) fb.Insert(e);
  out.data_bytes = fa.byte_size() + fb.byte_size();
  for (uint64_t e : a) {
    if (!fb.Contains(e)) out.estimated_diff.push_back(e);
  }
  for (uint64_t e : b) {
    if (!fa.Contains(e)) out.estimated_diff.push_back(e);
  }
  return out;
}

double EvaluateRecall(const ApproxOutcome& outcome,
                      const std::vector<uint64_t>& truth_diff) {
  if (truth_diff.empty()) return 1.0;
  std::unordered_set<uint64_t> found(outcome.estimated_diff.begin(),
                                     outcome.estimated_diff.end());
  size_t hits = 0;
  for (uint64_t e : truth_diff) {
    if (found.count(e)) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth_diff.size());
}

}  // namespace pbs
