#include "pbs/baselines/graphene.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "pbs/ibf/bloom_filter.h"
#include "pbs/ibf/invertible_bloom_filter.h"

namespace pbs {

namespace {

using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

size_t CellsFor(double expected_items, const GrapheneConfig& config) {
  const double cells = config.cells_per_item * expected_items +
                       config.slack_mult * std::sqrt(expected_items) +
                       config.slack_const;
  return static_cast<size_t>(std::ceil(cells));
}

// Total wire bits for a candidate epsilon.
double CostBits(double epsilon, size_t set_b, double d_est, int sig_bits,
                const GrapheneConfig& config) {
  const double expected = epsilon < 1.0 ? epsilon * d_est : d_est;
  const double ibf_bits =
      static_cast<double>(CellsFor(expected, config)) * 3 * sig_bits;
  if (epsilon >= 1.0) return ibf_bits;
  const double bf_bits = 1.44 * std::log2(1.0 / epsilon) *
                         static_cast<double>(set_b);
  return bf_bits + ibf_bits;
}

}  // namespace

GraphenePlan GrapheneChoosePlan(int d_est, size_t set_b_size, int sig_bits,
                                const GrapheneConfig& config) {
  const double d_clamped = std::max(d_est, 1);
  double best_eps = 1.0;
  double best_cost = CostBits(1.0, set_b_size, d_clamped, sig_bits, config);
  for (double eps : config.epsilon_grid) {
    const double cost = CostBits(eps, set_b_size, d_clamped, sig_bits, config);
    if (cost < best_cost) {
      best_cost = cost;
      best_eps = eps;
    }
  }
  GraphenePlan plan;
  plan.epsilon = best_eps;
  const double expected = best_eps < 1.0 ? best_eps * d_clamped : d_clamped;
  plan.cells = CellsFor(expected, config);
  return plan;
}

BaselineOutcome GrapheneReconcile(const std::vector<uint64_t>& a,
                                  const std::vector<uint64_t>& b, int d_est,
                                  int sig_bits, uint64_t seed,
                                  const GrapheneConfig& config) {
  BaselineOutcome out;
  const GraphenePlan plan = GrapheneChoosePlan(d_est, b.size(), sig_bits,
                                               config);
  const double best_eps = plan.epsilon;
  const bool use_bf = plan.use_bf();
  const size_t cells = plan.cells;

  // --- Bob encodes ---
  const auto encode_start = Clock::now();
  BloomFilter bf = use_bf
                       ? BloomFilter::ForCapacity(b.size(), best_eps, seed)
                       : BloomFilter(8, 1, seed);
  if (use_bf) {
    for (uint64_t e : b) bf.Insert(e);
  }
  InvertibleBloomFilter bob_ibf(cells, config.ibf_hashes, seed ^ 0x1BF,
                                sig_bits);
  for (uint64_t e : b) bob_ibf.Insert(e);
  out.data_bytes = (use_bf ? bf.byte_size() : 0) + bob_ibf.byte_size() + 8;

  // --- Alice: candidate set Z and local IBF(Z) ---
  std::vector<uint64_t> z;
  z.reserve(a.size());
  std::vector<uint64_t> a_minus_z;
  for (uint64_t e : a) {
    if (!use_bf || bf.Contains(e)) {
      z.push_back(e);
    } else {
      a_minus_z.push_back(e);
    }
  }
  InvertibleBloomFilter z_ibf(cells, config.ibf_hashes, seed ^ 0x1BF,
                              sig_bits);
  for (uint64_t e : z) z_ibf.Insert(e);
  const auto decode_start = Clock::now();
  out.encode_seconds = Seconds(encode_start, decode_start);

  // --- Decode IBF(B) - IBF(Z) ---
  bob_ibf.Subtract(z_ibf);
  auto decoded = bob_ibf.Decode();
  out.decode_seconds = Seconds(decode_start, Clock::now());

  out.success = decoded.complete;
  out.difference = std::move(a_minus_z);              // A \ Z.
  out.difference.insert(out.difference.end(), decoded.negative.begin(),
                        decoded.negative.end());      // Z \ B.
  out.difference.insert(out.difference.end(), decoded.positive.begin(),
                        decoded.positive.end());      // B \ Z.
  return out;
}

}  // namespace pbs
