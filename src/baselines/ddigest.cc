#include "pbs/baselines/ddigest.h"

#include <algorithm>
#include <chrono>

#include "pbs/ibf/invertible_bloom_filter.h"

namespace pbs {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

BaselineOutcome DDigestReconcile(const std::vector<uint64_t>& a,
                                 const std::vector<uint64_t>& b, int d_est,
                                 int sig_bits, uint64_t seed) {
  BaselineOutcome out;
  d_est = std::max(d_est, 1);
  const size_t cells = static_cast<size_t>(2) * d_est;
  const int num_hashes = d_est > 200 ? 3 : 4;

  const auto encode_start = Clock::now();
  InvertibleBloomFilter bob_ibf(cells, num_hashes, seed, sig_bits);
  for (uint64_t e : b) bob_ibf.Insert(e);
  out.data_bytes = bob_ibf.byte_size();

  InvertibleBloomFilter alice_ibf(cells, num_hashes, seed, sig_bits);
  for (uint64_t e : a) alice_ibf.Insert(e);
  const auto decode_start = Clock::now();
  out.encode_seconds = Seconds(encode_start, decode_start);

  alice_ibf.Subtract(bob_ibf);
  auto decoded = alice_ibf.Decode();
  out.decode_seconds = Seconds(decode_start, Clock::now());

  out.success = decoded.complete;
  out.difference = std::move(decoded.positive);
  out.difference.insert(out.difference.end(), decoded.negative.begin(),
                        decoded.negative.end());
  return out;
}

}  // namespace pbs
