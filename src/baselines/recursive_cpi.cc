#include "pbs/baselines/recursive_cpi.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/checksum.h"
#include "pbs/gf/gf2m.h"
#include "pbs/hash/hash_family.h"

namespace pbs {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

BaselineOutcome RecursiveCpiReconcile(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b,
                                      int t_bar, int sig_bits, int max_rounds,
                                      uint64_t seed) {
  BaselineOutcome out;
  t_bar = std::max(t_bar, 1);
  const GF2m field(sig_bits);
  const SaltedHash prefix_hash(HashFamily(seed).Salt(HashFamily::kSplitPartition));

  // A partition is identified by (depth, prefix): it contains the elements
  // whose hash's low `depth` bits equal `prefix`. Elements are carried as
  // index ranges into depth-sorted working vectors for O(1) splitting.
  struct Partition {
    int depth = 0;
    uint64_t prefix = 0;
    std::unordered_set<uint64_t> alice;  // Alice's working set.
    std::vector<uint64_t> bob;
    uint64_t alice_checksum = 0;
    uint64_t bob_checksum = 0;
  };
  const uint64_t mask = SetChecksum::MaskFor(sig_bits);

  Partition root;
  for (uint64_t e : a) {
    root.alice.insert(e);
    root.alice_checksum = (root.alice_checksum + e) & mask;
  }
  root.bob.assign(b.begin(), b.end());
  for (uint64_t e : b) root.bob_checksum = (root.bob_checksum + e) & mask;

  std::vector<Partition> active;
  active.push_back(std::move(root));

  std::unordered_set<uint64_t> diff;
  auto toggle = [&diff](Partition& p, uint64_t s, uint64_t m) {
    if (auto it = p.alice.find(s); it != p.alice.end()) {
      p.alice.erase(it);
      p.alice_checksum = (p.alice_checksum - s) & m;
    } else {
      p.alice.insert(s);
      p.alice_checksum = (p.alice_checksum + s) & m;
    }
    if (auto it = diff.find(s); it != diff.end()) {
      diff.erase(it);
    } else {
      diff.insert(s);
    }
  };

  size_t bits_on_wire = 0;
  int round = 0;
  while (!active.empty() && round < max_rounds) {
    ++round;
    std::vector<Partition> next;
    for (Partition& part : active) {
      // Bob -> Alice: sketch + checksum of his partition.
      const auto encode_start = Clock::now();
      PowerSumSketch bob_sketch(field, t_bar);
      for (uint64_t e : part.bob) bob_sketch.Toggle(e);
      bits_on_wire += static_cast<size_t>(t_bar) * sig_bits + sig_bits + 1;

      PowerSumSketch merged = bob_sketch;
      for (uint64_t e : part.alice) merged.Toggle(e);
      const auto decode_start = Clock::now();
      out.encode_seconds += Seconds(encode_start, decode_start);
      auto decoded = merged.Decode(/*verify=*/true, seed ^ part.prefix);

      bool settled = false;
      if (decoded.has_value()) {
        for (uint64_t s : *decoded) {
          if (s == 0) continue;
          // Sub-universe check: s must belong to this partition.
          if ((prefix_hash(s) & ((uint64_t{1} << part.depth) - 1)) !=
              part.prefix) {
            continue;
          }
          toggle(part, s, mask);
        }
        settled = part.alice_checksum == part.bob_checksum;
      }
      out.decode_seconds += Seconds(decode_start, Clock::now());
      if (settled) continue;

      // Two-way split by the next hash bit.
      Partition children[2];
      for (int c = 0; c < 2; ++c) {
        children[c].depth = part.depth + 1;
        children[c].prefix =
            part.prefix | (static_cast<uint64_t>(c) << part.depth);
      }
      for (uint64_t e : part.alice) {
        Partition& ch = children[(prefix_hash(e) >> part.depth) & 1];
        ch.alice.insert(e);
        ch.alice_checksum = (ch.alice_checksum + e) & mask;
      }
      for (uint64_t e : part.bob) {
        Partition& ch = children[(prefix_hash(e) >> part.depth) & 1];
        ch.bob.push_back(e);
        ch.bob_checksum = (ch.bob_checksum + e) & mask;
      }
      next.push_back(std::move(children[0]));
      next.push_back(std::move(children[1]));
    }
    active = std::move(next);
  }

  out.success = active.empty();
  out.rounds = round;
  out.data_bytes = (bits_on_wire + 7) / 8;
  out.difference.assign(diff.begin(), diff.end());
  return out;
}

}  // namespace pbs
