#include "pbs/baselines/pinsketch_wp.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/checksum.h"
#include "pbs/core/group_state.h"
#include "pbs/core/messages.h"
#include "pbs/gf/gf2m.h"

namespace pbs {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

BaselineOutcome PinSketchWpReconcile(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b,
                                     int d_used, int delta, int t,
                                     int sig_bits, int max_rounds,
                                     uint64_t seed, int report_sig_bits) {
  BaselineOutcome out;
  if (report_sig_bits <= 0) report_sig_bits = sig_bits;
  t = std::max(t, 1);
  const GF2m field(sig_bits);
  const HashFamily family(seed);
  const uint32_t g = d_used <= 0
                         ? 1
                         : static_cast<uint32_t>((d_used + delta - 1) / delta);
  const int count_bits = wire::CountBits(t);

  // One unit per group pair; in-memory simulation of both sides with exact
  // wire accounting (bits counted at report_sig_bits width).
  struct Unit {
    UnitCore core;
    std::unordered_set<uint64_t> alice_working;  // A_unit /\triangle D-hat.
    std::vector<uint64_t> bob_elements;
    uint64_t alice_checksum = 0;
    uint64_t bob_checksum = 0;
  };

  std::vector<Unit> units(g);
  for (uint32_t i = 0; i < g; ++i) units[i].core = UnitCore::Root(family, i);
  {
    for (uint64_t e : a) {
      Unit& u = units[GroupOf(family, e, g)];
      u.alice_working.insert(e);
      u.alice_checksum = (u.alice_checksum + e) & SetChecksum::MaskFor(sig_bits);
    }
    for (uint64_t e : b) {
      Unit& u = units[GroupOf(family, e, g)];
      u.bob_elements.push_back(e);
      u.bob_checksum = (u.bob_checksum + e) & SetChecksum::MaskFor(sig_bits);
    }
  }

  std::unordered_set<uint64_t> diff;
  auto toggle = [&diff](std::unordered_set<uint64_t>& working,
                        uint64_t& checksum, uint64_t mask, uint64_t s) {
    if (auto it = working.find(s); it != working.end()) {
      working.erase(it);
      checksum = (checksum - s) & mask;
    } else {
      working.insert(s);
      checksum = (checksum + s) & mask;
    }
    if (auto it = diff.find(s); it != diff.end()) {
      diff.erase(it);
    } else {
      diff.insert(s);
    }
  };
  const uint64_t mask = SetChecksum::MaskFor(sig_bits);

  size_t bits_on_wire = 0;
  int round = 0;
  while (!units.empty() && round < max_rounds) {
    ++round;
    std::vector<Unit> next_units;
    for (Unit& unit : units) {
      // Alice -> Bob: sketch of her working set (t syndromes).
      const auto encode_start = Clock::now();
      PowerSumSketch alice_sketch(field, t);
      for (uint64_t e : unit.alice_working) alice_sketch.Toggle(e);
      bits_on_wire += static_cast<size_t>(t) * report_sig_bits;

      // Bob: merge with his sketch, decode.
      PowerSumSketch merged(field, t);
      for (uint64_t e : unit.bob_elements) merged.Toggle(e);
      merged.Merge(alice_sketch);
      const auto decode_start = Clock::now();
      out.encode_seconds += Seconds(encode_start, decode_start);
      auto decoded = merged.Decode(/*verify=*/true, seed ^ unit.core.key);
      bits_on_wire += 1;  // ok/fail flag.

      if (!decoded.has_value()) {
        out.decode_seconds += Seconds(decode_start, Clock::now());
        // Three-way split; children retry from the next round.
        std::vector<Unit> children(3);
        const uint64_t salt = unit.core.SplitSalt(family);
        for (int c = 0; c < 3; ++c) {
          children[c].core = unit.core.Child(family, static_cast<uint8_t>(c));
        }
        for (uint64_t e : unit.alice_working) {
          Unit& ch = children[UnitCore::ChildIndexOf(e, salt)];
          ch.alice_working.insert(e);
          ch.alice_checksum = (ch.alice_checksum + e) & mask;
        }
        for (uint64_t e : unit.bob_elements) {
          Unit& ch = children[UnitCore::ChildIndexOf(e, salt)];
          ch.bob_elements.push_back(e);
          ch.bob_checksum = (ch.bob_checksum + e) & mask;
        }
        for (Unit& ch : children) next_units.push_back(std::move(ch));
        continue;
      }

      // Bob -> Alice: the recovered elements and his checksum.
      bits_on_wire += count_bits +
                      decoded->size() * static_cast<size_t>(report_sig_bits) +
                      report_sig_bits;

      // Alice: sub-universe check and toggle, then verify.
      for (uint64_t s : *decoded) {
        if (s == 0) continue;
        if (!unit.core.InSubUniverse(family, s, g)) continue;
        toggle(unit.alice_working, unit.alice_checksum, mask, s);
      }
      out.decode_seconds += Seconds(decode_start, Clock::now());
      if (unit.alice_checksum != unit.bob_checksum) {
        next_units.push_back(std::move(unit));
      }
    }
    units = std::move(next_units);
  }

  out.success = units.empty();
  out.rounds = round;
  out.data_bytes = (bits_on_wire + 7) / 8;
  out.difference.assign(diff.begin(), diff.end());
  return out;
}

}  // namespace pbs
