#include "pbs/baselines/pinsketch.h"

#include <algorithm>
#include <chrono>

#include "pbs/bch/power_sum_sketch.h"
#include "pbs/common/bitio.h"
#include "pbs/gf/gf2m.h"

namespace pbs {

namespace {
using Clock = std::chrono::steady_clock;
double Seconds(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

BaselineOutcome PinSketchReconcile(const std::vector<uint64_t>& a,
                                   const std::vector<uint64_t>& b, int t,
                                   int sig_bits, uint64_t seed) {
  BaselineOutcome out;
  t = std::max(t, 1);
  const GF2m field(sig_bits);

  // Encode: both parties sketch their sets; Bob ships his to Alice.
  const auto encode_start = Clock::now();
  PowerSumSketch bob_sketch(field, t);
  for (uint64_t e : b) bob_sketch.Toggle(e);
  BitWriter w;
  bob_sketch.Serialize(&w);
  out.data_bytes = w.byte_size();

  PowerSumSketch alice_sketch(field, t);
  for (uint64_t e : a) alice_sketch.Toggle(e);
  const auto decode_start = Clock::now();
  out.encode_seconds = Seconds(encode_start, decode_start);

  // Decode: the XOR of the sketches is the sketch of A /\triangle B.
  BitReader r(w.bytes());
  PowerSumSketch received = PowerSumSketch::Deserialize(&r, field, t);
  received.Merge(alice_sketch);
  auto decoded = received.Decode(/*verify=*/true, seed);
  out.decode_seconds = Seconds(decode_start, Clock::now());

  if (decoded.has_value()) {
    out.success = true;
    out.difference = std::move(*decoded);
  }
  return out;
}

}  // namespace pbs
