#include "pbs/baselines/baseline_reconcilers.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>

#include "pbs/baselines/ddigest.h"
#include "pbs/baselines/graphene.h"
#include "pbs/baselines/pinsketch.h"
#include "pbs/baselines/pinsketch_wp.h"
#include "pbs/core/pbs_reconciler.h"

namespace pbs {

namespace {

// Shared translation from a BaselineOutcome to the unified outcome.
ReconcileOutcome FromBaseline(const BaselineOutcome& r,
                              std::string params_summary) {
  ReconcileOutcome outcome;
  outcome.success = r.success;
  outcome.rounds = r.rounds;
  outcome.difference = r.difference;
  outcome.data_bytes = r.data_bytes;
  outcome.encode_seconds = r.encode_seconds;
  outcome.decode_seconds = r.decode_seconds;
  outcome.params_summary = std::move(params_summary);
  return outcome;
}

int RoundEstimate(double d_hat) {
  return std::max(0, static_cast<int>(std::llround(d_hat)));
}

std::string Summary(const char* format, int value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

}  // namespace

PinSketchReconciler::PinSketchReconciler(const SchemeOptions& options)
    : sig_bits_(options.sig_bits), gamma_(options.pbs.gamma) {}

ReconcileOutcome PinSketchReconciler::Reconcile(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
    double d_hat, uint64_t seed) const {
  const int t = std::max(1, InflateEstimate(d_hat, gamma_));
  return FromBaseline(PinSketchReconcile(a, b, t, sig_bits_, seed),
                      Summary("t=%d", t));
}

DDigestReconciler::DDigestReconciler(const SchemeOptions& options)
    : sig_bits_(options.sig_bits) {}

ReconcileOutcome DDigestReconciler::Reconcile(const std::vector<uint64_t>& a,
                                              const std::vector<uint64_t>& b,
                                              double d_hat,
                                              uint64_t seed) const {
  const int d_est = std::max(RoundEstimate(d_hat), 1);
  return FromBaseline(DDigestReconcile(a, b, d_est, sig_bits_, seed),
                      Summary("d_est=%d", d_est));
}

GrapheneReconciler::GrapheneReconciler(const SchemeOptions& options)
    : sig_bits_(options.sig_bits), gamma_(options.pbs.gamma) {}

ReconcileOutcome GrapheneReconciler::Reconcile(const std::vector<uint64_t>& a,
                                               const std::vector<uint64_t>& b,
                                               double d_hat,
                                               uint64_t seed) const {
  const int d_est = std::max(InflateEstimate(d_hat, gamma_), 1);
  return FromBaseline(GrapheneReconcile(a, b, d_est, sig_bits_, seed),
                      Summary("d_est=%d", d_est));
}

PinSketchWpReconciler::PinSketchWpReconciler(const SchemeOptions& options)
    : config_(options.pbs), report_sig_bits_(options.report_sig_bits) {
  config_.sig_bits = options.sig_bits;
}

ReconcileOutcome PinSketchWpReconciler::Reconcile(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b,
    double d_hat, uint64_t seed) const {
  const int d_used = InflateEstimate(d_hat, config_.gamma);
  // Same delta and t as PBS (Section 8.3): derive t from the PBS plan.
  const PbsPlan plan = PlanFor(config_, d_used);
  const BaselineOutcome r = PinSketchWpReconcile(
      a, b, d_used, config_.delta, plan.params.t, config_.sig_bits,
      config_.max_rounds, seed, report_sig_bits_);
  char summary[64];
  std::snprintf(summary, sizeof(summary), "g=%d t=%d delta=%d d_used=%d",
                plan.params.g, plan.params.t, config_.delta, d_used);
  return FromBaseline(r, summary);
}

void RegisterBuiltinSchemes(SchemeRegistry& registry) {
  registry.Register("pbs", "PBS", [](const SchemeOptions& options) {
    return std::make_unique<PbsReconciler>(options);
  });
  registry.Register("pinsketch", "PinSketch",
                    [](const SchemeOptions& options) {
                      return std::make_unique<PinSketchReconciler>(options);
                    });
  registry.Register("ddigest", "D.Digest", [](const SchemeOptions& options) {
    return std::make_unique<DDigestReconciler>(options);
  });
  registry.Register("graphene", "Graphene",
                    [](const SchemeOptions& options) {
                      return std::make_unique<GrapheneReconciler>(options);
                    });
  registry.Register("pinsketch-wp", "PinSketch/WP",
                    [](const SchemeOptions& options) {
                      return std::make_unique<PinSketchWpReconciler>(options);
                    });
}

}  // namespace pbs
