#include "pbs/gf/gf2x.h"

#include <array>
#include <cassert>
#include <mutex>

#include "pbs/common/cpu_features.h"

// The hardware kernels are compiled with per-function target attributes so
// the rest of the library needs no -mpclmul/-march flags; they are only
// ever *called* after cpu::HasCarrylessMul() confirmed the instructions
// exist. PBS_DISABLE_CLMUL (CMake: -DPBS_DISABLE_CLMUL=ON) compiles them
// out entirely, leaving the portable path as the only one -- the CI leg
// that keeps the fallback honest.
#if !defined(PBS_DISABLE_CLMUL) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#include <smmintrin.h>
#include <wmmintrin.h>
#define PBS_HAVE_CLMUL_KERNEL 1
#elif !defined(PBS_DISABLE_CLMUL) && defined(__aarch64__) && \
    (defined(__GNUC__) || defined(__clang__))
#include <arm_neon.h>
#define PBS_HAVE_CLMUL_KERNEL 1
#endif

namespace pbs::gf2x {

int Degree(uint64_t a) {
  if (a == 0) return -1;
  return 63 - __builtin_clzll(a);
}

int Degree128(U128 a) {
  uint64_t hi = static_cast<uint64_t>(a >> 64);
  if (hi != 0) return 64 + Degree(hi);
  return Degree(static_cast<uint64_t>(a));
}

U128 ClMulPortable(uint64_t a, uint64_t b) {
  // Portable shift-and-XOR fallback. (A masked-integer-multiply "ctmul"
  // trick exists but silently corrupts dense 64-bit operands: up to 16
  // partial products can collide on one bit position, and the resulting
  // carry lands 4 positions up -- back in the *same* residue class the
  // mask keeps. The plain loop is branch-light and always correct.)
  U128 result = 0;
  while (b != 0) {
    const int i = __builtin_ctzll(b);
    result ^= static_cast<U128>(a) << i;
    b &= b - 1;
  }
  return result;
}

#if defined(PBS_HAVE_CLMUL_KERNEL)
#if defined(__x86_64__)

__attribute__((target("pclmul,sse4.1")))
static U128 ClMulHw(uint64_t a, uint64_t b) {
  __m128i va = _mm_set_epi64x(0, static_cast<long long>(a));
  __m128i vb = _mm_set_epi64x(0, static_cast<long long>(b));
  __m128i prod = _mm_clmulepi64_si128(va, vb, 0x00);
  uint64_t lo = static_cast<uint64_t>(_mm_cvtsi128_si64(prod));
  uint64_t hi = static_cast<uint64_t>(_mm_extract_epi64(prod, 1));
  return (static_cast<U128>(hi) << 64) | lo;
}

#elif defined(__aarch64__)

__attribute__((target("+crypto")))
static U128 ClMulHw(uint64_t a, uint64_t b) {
  return static_cast<U128>(
      vmull_p64(static_cast<poly64_t>(a), static_cast<poly64_t>(b)));
}

#endif
#endif  // PBS_HAVE_CLMUL_KERNEL

U128 ClMul(uint64_t a, uint64_t b) {
#if defined(PBS_HAVE_CLMUL_KERNEL)
  // One cached bool; the branch predicts perfectly after the first call.
  static const bool use_hw = cpu::HasCarrylessMul();
  if (use_hw) return ClMulHw(a, b);
#endif
  return ClMulPortable(a, b);
}

uint64_t Mod(U128 a, uint64_t f) {
  const int m = Degree(f);
  assert(m >= 1 && m <= 63);
  int d = Degree128(a);
  while (d >= m) {
    a ^= static_cast<U128>(f) << (d - m);
    d = Degree128(a);
  }
  return static_cast<uint64_t>(a);
}

uint64_t MulMod(uint64_t a, uint64_t b, uint64_t f) {
  return Mod(ClMul(a, b), f);
}

uint64_t MulModPortable(uint64_t a, uint64_t b, uint64_t f) {
  return Mod(ClMulPortable(a, b), f);
}

uint64_t SqrMod(uint64_t a, uint64_t f) { return Mod(ClMul(a, a), f); }

uint64_t Gcd(uint64_t a, uint64_t b) {
  while (b != 0) {
    // a mod b via long division.
    int db = Degree(b);
    int da = Degree(a);
    while (da >= db && a != 0) {
      a ^= b << (da - db);
      da = Degree(a);
    }
    uint64_t t = a;
    a = b;
    b = t;
  }
  return a;
}

bool IsIrreducible(uint64_t f) {
  const int m = Degree(f);
  if (m < 1) return false;
  if (m == 1) return true;  // x and x+1.
  if ((f & 1) == 0) return false;  // divisible by x.

  // h = x^(2^k) mod f, iterated; record intermediate values at k = m/p for
  // prime divisors p of m.
  uint64_t h = 2;  // the polynomial x
  // Collect the distinct prime divisors of m.
  std::array<int, 8> primes{};
  int num_primes = 0;
  int mm = m;
  for (int p = 2; p * p <= mm; ++p) {
    if (mm % p == 0) {
      primes[num_primes++] = p;
      while (mm % p == 0) mm /= p;
    }
  }
  if (mm > 1) primes[num_primes++] = mm;

  for (int k = 1; k <= m; ++k) {
    h = SqrMod(h, f);
    for (int i = 0; i < num_primes; ++i) {
      if (k == m / primes[i]) {
        // gcd(x^(2^(m/p)) - x, f) must be 1.
        if (Degree(Gcd(h ^ 2, f)) != 0) return false;
      }
    }
  }
  return h == 2;  // x^(2^m) == x (mod f)
}

uint64_t FindIrreducible(int m) {
  assert(m >= 1 && m <= 63);
  static std::array<uint64_t, 64> cache{};
  static std::mutex mu;
  {
    std::lock_guard<std::mutex> lock(mu);
    if (cache[m] != 0) return cache[m];
  }
  const uint64_t lead = uint64_t{1} << m;
  uint64_t found = 0;
  // An irreducible polynomial (other than x) has nonzero constant term.
  for (uint64_t low = 1; low < lead; low += 2) {
    if (IsIrreducible(lead | low)) {
      found = lead | low;
      break;
    }
  }
  assert(found != 0);
  std::lock_guard<std::mutex> lock(mu);
  cache[m] = found;
  return found;
}

}  // namespace pbs::gf2x
