#include "pbs/gf/gfpoly.h"

#include <algorithm>
#include <cassert>

namespace pbs {

int PolyDegree(Span<const uint64_t> coeffs) {
  for (size_t i = coeffs.size(); i-- > 0;) {
    if (coeffs[i] != 0) return static_cast<int>(i);
  }
  return -1;
}

uint64_t PolyEval(const GF2m& field, Span<const uint64_t> coeffs, uint64_t x) {
  uint64_t acc = 0;
  for (size_t i = coeffs.size(); i-- > 0;) {
    acc = field.Mul(acc, x) ^ coeffs[i];
  }
  return acc;
}

void PolyMulInto(const GF2m& field, Span<const uint64_t> a,
                 Span<const uint64_t> b, Span<uint64_t> out) {
  if (a.empty() || b.empty()) return;
  assert(out.size() >= a.size() + b.size() - 1);
  assert(out.data() != a.data() && out.data() != b.data());
  for (size_t i = 0; i < out.size(); ++i) out[i] = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      if (b[j] == 0) continue;
      out[i + j] ^= field.Mul(a[i], b[j]);
    }
  }
}

void PolyAddInto(Span<const uint64_t> a, Span<const uint64_t> b,
                 Span<uint64_t> out) {
  assert(out.size() >= std::max(a.size(), b.size()));
  for (size_t i = 0; i < out.size(); ++i) {
    const uint64_t av = i < a.size() ? a[i] : 0;
    const uint64_t bv = i < b.size() ? b[i] : 0;
    out[i] = av ^ bv;
  }
}

void PolyDerivativeInto(Span<const uint64_t> a, Span<uint64_t> out) {
  if (a.size() <= 1) return;
  assert(out.size() >= a.size() - 1);
  for (size_t i = 1; i < a.size(); ++i) {
    out[i - 1] = (i % 2 == 1) ? a[i] : 0;
  }
}

GFPoly GFPoly::Monomial(const GF2m& field, uint64_t c, int k) {
  if (c == 0) return Zero(field);
  std::vector<uint64_t> coeffs(k + 1, 0);
  coeffs[k] = c;
  return GFPoly(field, std::move(coeffs));
}

GFPoly GFPoly::Add(const GFPoly& other) const {
  std::vector<uint64_t> out(std::max(coeffs_.size(), other.coeffs_.size()), 0);
  PolyAddInto(coeffs_, other.coeffs_, out);
  return GFPoly(field_, std::move(out));
}

GFPoly GFPoly::Mul(const GFPoly& other) const {
  if (IsZero() || other.IsZero()) return Zero(field_);
  std::vector<uint64_t> out(coeffs_.size() + other.coeffs_.size() - 1, 0);
  PolyMulInto(field_, coeffs_, other.coeffs_, out);
  return GFPoly(field_, std::move(out));
}

GFPoly GFPoly::MulScalar(uint64_t c) const {
  if (c == 0) return Zero(field_);
  std::vector<uint64_t> out(coeffs_);
  for (auto& v : out) v = field_.Mul(v, c);
  return GFPoly(field_, std::move(out));
}

GFPoly GFPoly::ShiftUp(int k) const {
  if (IsZero() || k == 0) return *this;
  std::vector<uint64_t> out(coeffs_.size() + k, 0);
  for (size_t i = 0; i < coeffs_.size(); ++i) out[i + k] = coeffs_[i];
  return GFPoly(field_, std::move(out));
}

std::pair<GFPoly, GFPoly> GFPoly::DivMod(const GFPoly& divisor) const {
  assert(!divisor.IsZero());
  if (degree() < divisor.degree()) return {Zero(field_), *this};
  std::vector<uint64_t> rem(coeffs_);
  std::vector<uint64_t> quot(degree() - divisor.degree() + 1, 0);
  const uint64_t lead_inv = field_.Inv(divisor.leading());
  for (int shift = degree() - divisor.degree(); shift >= 0; --shift) {
    uint64_t top = rem[shift + divisor.degree()];
    if (top == 0) continue;
    uint64_t factor = field_.Mul(top, lead_inv);
    quot[shift] = factor;
    for (int i = 0; i <= divisor.degree(); ++i) {
      rem[shift + i] ^= field_.Mul(factor, divisor.coeff(i));
    }
  }
  return {GFPoly(field_, std::move(quot)), GFPoly(field_, std::move(rem))};
}

GFPoly GFPoly::Gcd(const GFPoly& other) const {
  GFPoly a = *this;
  GFPoly b = other;
  while (!b.IsZero()) {
    GFPoly r = a.Mod(b);
    a = b;
    b = r;
  }
  if (a.IsZero()) return a;
  return a.MakeMonic();
}

GFPoly GFPoly::Derivative() const {
  if (degree() < 1) return Zero(field_);
  std::vector<uint64_t> out(coeffs_.size() - 1, 0);
  PolyDerivativeInto(coeffs_, out);
  return GFPoly(field_, std::move(out));
}

uint64_t GFPoly::Eval(uint64_t x) const {
  return PolyEval(field_, coeffs_, x);
}

GFPoly GFPoly::MakeMonic() const {
  assert(!IsZero());
  if (leading() == 1) return *this;
  return MulScalar(field_.Inv(leading()));
}

}  // namespace pbs
